// Command adamant-train trains and evaluates the ADAMANT neural-network
// configurator on a labeled dataset (from adamant-dataset). Without
// -dataset it builds a small one on the fly. -jobs workers parallelize
// the dataset build, the gradient accumulation inside each training, the
// cross-validation folds, and the -sweep training grid; trained weights
// are byte-identical at any worker count.
//
//	adamant-train -dataset data/training.csv -hidden 24 -save adamant.ann
//	adamant-train -dataset data/training.csv -cv            # 10-fold CV
//	adamant-train -dataset data/training.csv -sweep         # Figures 18/19
//	adamant-train -combos 48 -jobs 8                        # build + train
package main

import (
	"flag"
	"fmt"
	"os"

	"adamant/internal/ann"
	"adamant/internal/core"
	"adamant/internal/experiment"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "adamant-train:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		dataset   = flag.String("dataset", "", "training CSV (default: build one on the fly)")
		combos    = flag.Int("combos", 48, "environment combos when building a dataset on the fly (paper: 197)")
		jobs      = flag.Int("jobs", 0, "parallel workers for dataset build, training, CV, and sweep (0 = all CPUs)")
		hidden    = flag.Int("hidden", 24, "hidden nodes (paper's best: 24)")
		stopError = flag.Float64("stop", 1e-4, "MSE stopping error")
		maxEpochs = flag.Int("epochs", 2000, "max training epochs")
		seed      = flag.Int64("seed", 1, "weight-init seed")
		save      = flag.String("save", "", "write the trained network to this path")
		cv        = flag.Bool("cv", false, "10-fold cross-validation instead of full training")
		sweep     = flag.Bool("sweep", false, "hidden-node sweep (Figures 18 and 19)")
		verbose   = flag.Bool("v", false, "progress logging")
	)
	flag.Parse()
	progress := func(string, ...any) {}
	if *verbose {
		progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	var rows []experiment.Row
	var err error
	if *dataset != "" {
		rows, err = experiment.ReadCSVFile(*dataset)
	} else {
		progress("building %d-combo dataset (pass -dataset to reuse a generated one)", *combos)
		rows, err = experiment.BuildDataset(experiment.DatasetOptions{
			Combos: *combos, Seed: *seed, Jobs: *jobs, Progress: progress,
		})
	}
	if err != nil {
		return err
	}
	opts := experiment.ANNOptions{
		StopError: *stopError, MaxEpochs: *maxEpochs, Seed: *seed, Jobs: *jobs, Progress: progress,
	}

	if *sweep {
		for _, fig := range []func([]experiment.Row, experiment.ANNOptions) (experiment.Table, error){
			experiment.Figure18, experiment.Figure19,
		} {
			tab, err := fig(rows, opts)
			if err != nil {
				return err
			}
			fmt.Println(tab.Format())
		}
		return nil
	}

	ds := experiment.ToANNDataset(rows)
	cfg := ann.Config{Layers: []int{core.NumInputs, *hidden, core.NumCandidates}, Seed: *seed}
	if *cv {
		res, err := ann.CrossValidate(cfg, ds, 10, ann.TrainOptions{
			MaxEpochs: *maxEpochs, DesiredError: *stopError, Jobs: *jobs,
		})
		if err != nil {
			return err
		}
		fmt.Printf("10-fold CV: mean accuracy %.2f%% (train %.2f%%)\n",
			100*res.MeanAccuracy, 100*res.TrainAccuracy)
		for i, a := range res.FoldAccuracy {
			fmt.Printf("  fold %2d: %.2f%%\n", i+1, 100*a)
		}
		return nil
	}

	net, err := ann.New(cfg)
	if err != nil {
		return err
	}
	tr, err := net.Train(ds, ann.TrainOptions{MaxEpochs: *maxEpochs, DesiredError: *stopError, Jobs: *jobs})
	if err != nil {
		return err
	}
	acc, err := net.Accuracy(ds)
	if err != nil {
		return err
	}
	fmt.Printf("trained %d rows: epochs=%d mse=%.6f converged=%v accuracy=%.2f%%\n",
		ds.Len(), tr.Epochs, tr.MSE, tr.Converged, 100*acc)
	if *save != "" {
		if err := net.SaveFile(*save); err != nil {
			return err
		}
		fmt.Printf("saved network to %s\n", *save)
	}
	return nil
}
