// Command adamant-broker runs the NATS-style pub/sub broker used by the
// real-network examples (the "conventional cloud pub/sub" contrast to the
// QoS-enabled DDS/ANT stack).
//
//	adamant-broker -addr :4222
//	adamant-broker -shards 16 -queue-frames 32768 -slow-policy drop
//	adamant-broker -admission-bytes 67108864 -admission-timeout 2s
//
// Brokers federate into a full mesh: give each broker a cluster
// listener and at least one seed route, and gossip completes the mesh.
//
//	adamant-broker -addr :4222 -cluster-listen :6222
//	adamant-broker -addr :4223 -cluster-listen :6223 -routes localhost:6222
//
// SIGINT/SIGTERM trigger a graceful drain: the broker stops accepting,
// flushes every client's queued deliveries (bounded by -drain-timeout),
// and prints the final ServerStats.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"adamant/internal/broker"
)

func main() {
	addr := flag.String("addr", ":4222", "listen address")
	shards := flag.Int("shards", 0, "routing-table shards (0 = default)")
	seed := flag.Int64("seed", 0, "queue-group rng seed (0 = ADAMANT_BROKER_SEED env or time-based)")
	queueFrames := flag.Int("queue-frames", 0, "per-client outbound queue bound in frames (0 = default)")
	queueBytes := flag.Int64("queue-bytes", 0, "per-client outbound queue bound in bytes (0 = default)")
	slowPolicy := flag.String("slow-policy", "disconnect", "slow-consumer policy: disconnect or drop")
	admissionBytes := flag.Int64("admission-bytes", 0, "publish-admission window in queued bytes (0 = default 32MiB, -1 = disabled)")
	admissionTimeout := flag.Duration("admission-timeout", 0, "max time a publish batch parks on admission (0 = default 1s)")
	serverID := flag.String("server-id", "", "server ID for the route handshake (default: unique per process)")
	clusterListen := flag.String("cluster-listen", "", "dedicated listener for inter-broker routes (empty = routes share -addr)")
	clusterAdvertise := flag.String("cluster-advertise", "", "address gossiped to peers (default: -cluster-listen if set)")
	routes := flag.String("routes", "", "comma-separated seed route addresses to dial")
	heartbeat := flag.Duration("route-heartbeat", 0, "route heartbeat interval (0 = default 500ms)")
	suspect := flag.Duration("route-suspect", 0, "route silence bound before teardown (0 = default 2s)")
	drainTimeout := flag.Duration("drain-timeout", 5*time.Second, "max time to drain client queues on shutdown (0 = abrupt)")
	flag.Parse()

	var opts []broker.Option
	if *shards > 0 {
		opts = append(opts, broker.WithShards(*shards))
	}
	if *seed != 0 {
		opts = append(opts, broker.WithSeed(*seed))
	}
	if *queueFrames > 0 || *queueBytes > 0 {
		opts = append(opts, broker.WithWriteQueue(*queueFrames, *queueBytes))
	}
	if *admissionBytes != 0 || *admissionTimeout > 0 {
		opts = append(opts, broker.WithPublishAdmission(*admissionBytes, *admissionTimeout))
	}
	switch *slowPolicy {
	case "disconnect":
		opts = append(opts, broker.WithSlowConsumerPolicy(broker.SlowConsumerDisconnect))
	case "drop":
		opts = append(opts, broker.WithSlowConsumerPolicy(broker.SlowConsumerDrop))
	default:
		fmt.Fprintf(os.Stderr, "adamant-broker: -slow-policy must be disconnect or drop, got %q\n", *slowPolicy)
		os.Exit(1)
	}
	if *serverID != "" {
		opts = append(opts, broker.WithServerID(*serverID))
	}
	if adv := *clusterAdvertise; adv != "" {
		opts = append(opts, broker.WithClusterAdvertise(adv))
	} else if *clusterListen != "" {
		opts = append(opts, broker.WithClusterAdvertise(*clusterListen))
	}
	if *heartbeat > 0 || *suspect > 0 {
		opts = append(opts, broker.WithRouteHeartbeat(*heartbeat, *suspect))
	}

	srv := broker.NewServer(opts...)
	if err := srv.ListenAndServe(*addr); err != nil {
		fmt.Fprintln(os.Stderr, "adamant-broker:", err)
		os.Exit(1)
	}
	fmt.Printf("adamant-broker %s listening on %s\n", srv.ID(), srv.Addr())
	if *clusterListen != "" {
		if err := srv.ListenRoutes(*clusterListen); err != nil {
			fmt.Fprintln(os.Stderr, "adamant-broker:", err)
			os.Exit(1)
		}
		fmt.Printf("adamant-broker cluster listener on %s\n", srv.RouteAddr())
	}
	for _, r := range strings.Split(*routes, ",") {
		if r = strings.TrimSpace(r); r != "" {
			srv.AddRoute(r)
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("adamant-broker: draining...")
	srv.DrainShutdown(*drainTimeout)
	st := srv.Stats()
	fmt.Printf("shut down: %d connections, %d msgs in (%d bytes), %d msgs out (%d bytes), %d subs, %d slow drops, %d evictions, %d admission waits (%d timeouts), %d routes, %d remote subs, %d routed, %d dups suppressed\n",
		st.Connections, st.MsgsIn, st.BytesIn, st.MsgsOut, st.BytesOut,
		st.Subscriptions, st.SlowConsumerDrops, st.SlowConsumerDisconnects,
		st.AdmissionWaits, st.AdmissionTimeouts,
		st.Routes, st.RemoteSubs, st.RoutedMsgs, st.DupsSuppressed)
}
