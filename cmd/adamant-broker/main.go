// Command adamant-broker runs the NATS-style pub/sub broker used by the
// real-network examples (the "conventional cloud pub/sub" contrast to the
// QoS-enabled DDS/ANT stack).
//
//	adamant-broker -addr :4222
//	adamant-broker -shards 16 -queue-frames 32768 -slow-policy drop
//	adamant-broker -admission-bytes 67108864 -admission-timeout 2s
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"adamant/internal/broker"
)

func main() {
	addr := flag.String("addr", ":4222", "listen address")
	shards := flag.Int("shards", 0, "routing-table shards (0 = default)")
	seed := flag.Int64("seed", 0, "queue-group rng seed (0 = ADAMANT_BROKER_SEED env or time-based)")
	queueFrames := flag.Int("queue-frames", 0, "per-client outbound queue bound in frames (0 = default)")
	queueBytes := flag.Int64("queue-bytes", 0, "per-client outbound queue bound in bytes (0 = default)")
	slowPolicy := flag.String("slow-policy", "disconnect", "slow-consumer policy: disconnect or drop")
	admissionBytes := flag.Int64("admission-bytes", 0, "publish-admission window in queued bytes (0 = default 32MiB, -1 = disabled)")
	admissionTimeout := flag.Duration("admission-timeout", 0, "max time a publish batch parks on admission (0 = default 1s)")
	flag.Parse()

	var opts []broker.Option
	if *shards > 0 {
		opts = append(opts, broker.WithShards(*shards))
	}
	if *seed != 0 {
		opts = append(opts, broker.WithSeed(*seed))
	}
	if *queueFrames > 0 || *queueBytes > 0 {
		opts = append(opts, broker.WithWriteQueue(*queueFrames, *queueBytes))
	}
	if *admissionBytes != 0 || *admissionTimeout > 0 {
		opts = append(opts, broker.WithPublishAdmission(*admissionBytes, *admissionTimeout))
	}
	switch *slowPolicy {
	case "disconnect":
		opts = append(opts, broker.WithSlowConsumerPolicy(broker.SlowConsumerDisconnect))
	case "drop":
		opts = append(opts, broker.WithSlowConsumerPolicy(broker.SlowConsumerDrop))
	default:
		fmt.Fprintf(os.Stderr, "adamant-broker: -slow-policy must be disconnect or drop, got %q\n", *slowPolicy)
		os.Exit(1)
	}

	srv := broker.NewServer(opts...)
	if err := srv.ListenAndServe(*addr); err != nil {
		fmt.Fprintln(os.Stderr, "adamant-broker:", err)
		os.Exit(1)
	}
	fmt.Printf("adamant-broker listening on %s\n", srv.Addr())
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	srv.Shutdown()
	st := srv.Stats()
	fmt.Printf("shut down: %d connections, %d msgs in, %d msgs out, %d slow-consumer drops, %d evictions\n",
		st.Connections, st.MsgsIn, st.MsgsOut, st.SlowConsumerDrops, st.SlowConsumerDisconnects)
}
