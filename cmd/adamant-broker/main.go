// Command adamant-broker runs the NATS-style pub/sub broker used by the
// real-network examples (the "conventional cloud pub/sub" contrast to the
// QoS-enabled DDS/ANT stack).
//
//	adamant-broker -addr :4222
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"adamant/internal/broker"
)

func main() {
	addr := flag.String("addr", ":4222", "listen address")
	flag.Parse()
	srv := broker.NewServer()
	if err := srv.ListenAndServe(*addr); err != nil {
		fmt.Fprintln(os.Stderr, "adamant-broker:", err)
		os.Exit(1)
	}
	fmt.Printf("adamant-broker listening on %s\n", srv.Addr())
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	srv.Shutdown()
	st := srv.Stats()
	fmt.Printf("shut down: %d connections, %d msgs in, %d msgs out\n",
		st.Connections, st.MsgsIn, st.MsgsOut)
}
