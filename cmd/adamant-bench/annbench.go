package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"

	"adamant/internal/ann"
	"adamant/internal/ann/bench"
	"adamant/internal/core"
	"adamant/internal/experiment"
	"adamant/internal/netem"
)

// annReport is the schema of BENCH_ann.json: the paper's sub-10 µs
// bounded-decision table (Sect. 5.3) as measured latency distributions,
// plus the parallel-training speedup and determinism check.
type annReport struct {
	GeneratedBy string `json:"generated_by"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	CPUs        int    `json:"cpus"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	DatasetRows int    `json:"dataset_rows"`
	Layers      []int  `json:"layers"`
	Connections int    `json:"connections"`

	// Classify latency per emulated platform; "host" is the direct
	// measurement, the others scale it by the platform CPU factor the
	// same way Figures 20/21 do.
	Classify map[string]bench.Distribution `json:"classify_latency"`

	// CrossValidation compares serial vs parallel 10-fold CV wall clock.
	CrossValidation bench.CVTiming `json:"cross_validation"`

	// TrainDeterministic is true when weights trained with 1, 2, and 8
	// workers serialize byte-identically.
	TrainDeterministic bool  `json:"train_deterministic"`
	TrainJobsChecked   []int `json:"train_jobs_checked"`

	Note string `json:"note,omitempty"`
}

// runANNBench measures the ANN decision path and writes the JSON report.
func runANNBench(dataset string, combos int, outPath string, queries int, seed int64, jobs int, verbose bool) error {
	progress := func(string, ...any) {}
	if verbose {
		progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	var rows []experiment.Row
	var err error
	if dataset != "" {
		rows, err = experiment.ReadCSVFile(dataset)
	} else {
		progress("building %d-combo dataset (pass -dataset to reuse a generated one)", combos)
		rows, err = experiment.BuildDataset(experiment.DatasetOptions{
			Combos: combos, Seed: seed, Jobs: jobs, Progress: progress,
		})
	}
	if err != nil {
		return err
	}
	ds := experiment.ToANNDataset(rows)

	// The paper's best configuration: 24 hidden nodes, stop error 1e-4.
	cfg := ann.Config{Layers: []int{core.NumInputs, 24, core.NumCandidates}, Seed: seed}
	opts := ann.TrainOptions{MaxEpochs: 2000, DesiredError: 1e-4, Jobs: jobs}

	progress("training %v network on %d rows", cfg.Layers, ds.Len())
	net, err := ann.New(cfg)
	if err != nil {
		return err
	}
	if _, err := net.Train(ds, opts); err != nil {
		return err
	}

	progress("timing %d Classify calls", queries)
	host, err := bench.MeasureClassify(net, ds.Inputs, bench.Options{Queries: queries})
	if err != nil {
		return err
	}
	classify := map[string]bench.Distribution{"host": host}
	for _, m := range []netem.Machine{netem.PC3000, netem.PC850} {
		classify[m.Name] = host.Scale(m.CPUFactor)
	}

	// The canonical comparison is 8 workers vs serial (the same worker
	// counts the determinism test pins), regardless of the host's CPU
	// count — a single-CPU host simply measures scheduling overhead.
	cvJobs := jobs
	if cvJobs <= 0 {
		cvJobs = 8
	}
	progress("10-fold cross-validation, serial vs %d workers", cvJobs)
	cv, err := bench.MeasureCV(cfg, ds, 10, opts, cvJobs)
	if err != nil {
		return err
	}

	jobsChecked := []int{1, 2, 8}
	progress("checking trained-weight determinism across jobs %v", jobsChecked)
	deterministic, err := bench.TrainedBytesIdentical(cfg, ds, opts, jobsChecked)
	if err != nil {
		return err
	}

	rep := annReport{
		GeneratedBy:        "adamant-bench -ann",
		GOOS:               runtime.GOOS,
		GOARCH:             runtime.GOARCH,
		CPUs:               runtime.NumCPU(),
		GOMAXPROCS:         runtime.GOMAXPROCS(0),
		DatasetRows:        ds.Len(),
		Layers:             net.Layers(),
		Connections:        net.NumConnections(),
		Classify:           classify,
		CrossValidation:    cv,
		TrainDeterministic: deterministic,
		TrainJobsChecked:   jobsChecked,
	}
	if rep.CPUs == 1 {
		rep.Note = "single-CPU host: parallel cross-validation cannot beat serial wall-clock here; " +
			"the speedup column reflects scheduling overhead only. Weights remain byte-identical " +
			"at every worker count, and the same harness demonstrates the speedup on multi-core hosts."
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("ANN bench: p50 %.3fus p99 %.3fus p99.9 %.3fus max %.3fus over %d queries (host)\n",
		host.P50Us, host.P99Us, host.P999Us, host.MaxUs, host.Queries)
	fmt.Printf("10-fold CV: serial %.1fms, %d workers %.1fms (%.2fx); deterministic=%v\n",
		cv.SerialMs, cv.ParallelJobs, cv.ParallelMs, cv.Speedup, deterministic)
	fmt.Printf("wrote %s\n", outPath)
	return nil
}
