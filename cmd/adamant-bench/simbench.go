package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"

	"adamant/internal/sim/bench"
)

// simReport is the schema of BENCH_sim.json: the event-core throughput
// trajectory. Every cell pairs the wheel+heap scheduler against the
// pre-overhaul container/heap baseline on the same deterministic workload,
// so the speedup column is like-for-like.
type simReport struct {
	GeneratedBy string `json:"generated_by"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	CPUs        int    `json:"cpus"`
	GOMAXPROCS  int    `json:"gomaxprocs"`

	// EventsPerCell is the minimum events fired per measurement (deeper
	// sweep cells fire more so the queue can fill and drain).
	EventsPerCell uint64 `json:"events_per_cell"`

	// QueueSweep holds steady-state churn at fixed pending-set depths.
	QueueSweep []bench.SweepPoint `json:"queue_sweep"`

	// HopMix is the netem-shaped workload: arrival -> CPU-done -> next-send
	// chains plus cancel-and-rearm protocol timers.
	HopMix bench.Comparison `json:"hop_mix"`

	// Netem runs the real emulator data path end to end on the current
	// kernel (no baseline pairing: the emulator only targets one kernel).
	Netem bench.Result `json:"netem_pump"`
}

// simSweepDepths covers 1e2-1e6 pending events, the range between an idle
// transport pair and a full 1200-combo experiment fan-out.
var simSweepDepths = []int{100, 1_000, 10_000, 100_000, 1_000_000}

// runSimBench measures the kernel workloads and writes the JSON report.
func runSimBench(outPath string, events uint64, verbose bool) error {
	progress := func(string, ...any) {}
	if verbose {
		progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	rep := simReport{
		GeneratedBy:   "adamant-bench -sim",
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		CPUs:          runtime.NumCPU(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		EventsPerCell: events,
	}

	progress("queue sweep over depths %v, >=%d events per cell", simSweepDepths, events)
	rep.QueueSweep = bench.QueueSweep(simSweepDepths, events)
	for _, p := range rep.QueueSweep {
		progress("  depth %7d: kernel %6.1f ns/ev, baseline %6.1f ns/ev (%.2fx)",
			p.Depth, p.Kernel.NsPerEvent, p.Baseline.NsPerEvent, p.Speedup)
	}

	progress("netem hop mix, 64 flows, >=%d events", events)
	rep.HopMix = bench.HopMix(64, events)

	progress("netem pump, 16 nodes, >=%d events", events)
	var err error
	rep.Netem, err = bench.NetemPump(16, events, 256)
	if err != nil {
		return err
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}

	for _, p := range rep.QueueSweep {
		fmt.Printf("sim bench: depth %7d  kernel %7.1f ns/ev %5.2f allocs/ev %11.0f ev/s  |  baseline %7.1f ns/ev %5.2f allocs/ev  (%.2fx)\n",
			p.Depth, p.Kernel.NsPerEvent, p.Kernel.AllocsPerEvent, p.Kernel.EventsPerSec,
			p.Baseline.NsPerEvent, p.Baseline.AllocsPerEvent, p.Speedup)
	}
	fmt.Printf("sim bench: hop mix          kernel %7.1f ns/ev %5.2f allocs/ev %11.0f ev/s  |  baseline %7.1f ns/ev %5.2f allocs/ev  (%.2fx)\n",
		rep.HopMix.Kernel.NsPerEvent, rep.HopMix.Kernel.AllocsPerEvent, rep.HopMix.Kernel.EventsPerSec,
		rep.HopMix.Baseline.NsPerEvent, rep.HopMix.Baseline.AllocsPerEvent, rep.HopMix.Speedup)
	fmt.Printf("sim bench: netem pump       kernel %7.1f ns/ev %5.2f allocs/ev %11.0f ev/s\n",
		rep.Netem.NsPerEvent, rep.Netem.AllocsPerEvent, rep.Netem.EventsPerSec)
	fmt.Printf("wrote %s\n", outPath)
	return nil
}
