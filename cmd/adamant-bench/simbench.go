package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"

	"adamant/internal/sim/bench"
)

// simReport is the schema of BENCH_sim.json: the event-core throughput
// trajectory. Every cell pairs the wheel+heap scheduler against the
// pre-overhaul container/heap baseline on the same deterministic workload,
// so the speedup column is like-for-like.
type simReport struct {
	GeneratedBy string `json:"generated_by"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	CPUs        int    `json:"cpus"`
	GOMAXPROCS  int    `json:"gomaxprocs"`

	// EventsPerCell is the minimum events fired per measurement (deeper
	// sweep cells fire more so the queue can fill and drain).
	EventsPerCell uint64 `json:"events_per_cell"`

	// QueueSweep holds steady-state churn at fixed pending-set depths.
	QueueSweep []bench.SweepPoint `json:"queue_sweep"`

	// HopMix is the netem-shaped workload: arrival -> CPU-done -> next-send
	// chains plus cancel-and-rearm protocol timers.
	HopMix bench.Comparison `json:"hop_mix"`

	// Netem runs the real emulator data path end to end on the current
	// kernel (no baseline pairing: the emulator only targets one kernel).
	Netem bench.Result `json:"netem_pump"`

	// ShardScaling is the multicast-storm table on the sharded engine:
	// group sizes x worker counts. Interpret speedup_vs_1 against the cpus
	// and gomaxprocs fields above — workers beyond the CPU count cannot
	// buy wall-clock time, only overlap; on a 1-CPU host every row of a
	// group is the same work and the column is honest about that.
	ShardScaling []bench.ShardPoint `json:"shard_scaling"`
}

// simSweepDepths covers 1e2-1e6 pending events, the range between an idle
// transport pair and a full 1200-combo experiment fan-out.
var simSweepDepths = []int{100, 1_000, 10_000, 100_000, 1_000_000}

// runSimBench measures the kernel workloads and writes the JSON report.
func runSimBench(outPath string, events uint64, shardGroups, shardWorkers []int, verbose bool) error {
	progress := func(string, ...any) {}
	if verbose {
		progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	rep := simReport{
		GeneratedBy:   "adamant-bench -sim",
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		CPUs:          runtime.NumCPU(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		EventsPerCell: events,
	}

	progress("queue sweep over depths %v, >=%d events per cell", simSweepDepths, events)
	rep.QueueSweep = bench.QueueSweep(simSweepDepths, events)
	for _, p := range rep.QueueSweep {
		progress("  depth %7d: kernel %6.1f ns/ev, baseline %6.1f ns/ev (%.2fx)",
			p.Depth, p.Kernel.NsPerEvent, p.Baseline.NsPerEvent, p.Speedup)
	}

	progress("netem hop mix, 64 flows, >=%d events", events)
	rep.HopMix = bench.HopMix(64, events)

	progress("netem pump, 16 nodes, >=%d events", events)
	var err error
	rep.Netem, err = bench.NetemPump(16, events, 256)
	if err != nil {
		return err
	}

	progress("shard scaling, groups %v x workers %v, >=%d events per cell", shardGroups, shardWorkers, events)
	rep.ShardScaling, err = bench.ShardScaling(shardGroups, shardWorkers, events, 256)
	if err != nil {
		return err
	}
	for _, p := range rep.ShardScaling {
		progress("  group %5d workers %2d: %6.1f ns/ev %11.0f ev/s  %6d windows  (%.2fx vs w=%d)",
			p.Group, p.Workers, p.NsPerEvent, p.EventsPerSec, p.Windows, p.SpeedupVs1, shardWorkers[0])
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}

	for _, p := range rep.QueueSweep {
		fmt.Printf("sim bench: depth %7d  kernel %7.1f ns/ev %5.2f allocs/ev %11.0f ev/s  |  baseline %7.1f ns/ev %5.2f allocs/ev  (%.2fx)\n",
			p.Depth, p.Kernel.NsPerEvent, p.Kernel.AllocsPerEvent, p.Kernel.EventsPerSec,
			p.Baseline.NsPerEvent, p.Baseline.AllocsPerEvent, p.Speedup)
	}
	fmt.Printf("sim bench: hop mix          kernel %7.1f ns/ev %5.2f allocs/ev %11.0f ev/s  |  baseline %7.1f ns/ev %5.2f allocs/ev  (%.2fx)\n",
		rep.HopMix.Kernel.NsPerEvent, rep.HopMix.Kernel.AllocsPerEvent, rep.HopMix.Kernel.EventsPerSec,
		rep.HopMix.Baseline.NsPerEvent, rep.HopMix.Baseline.AllocsPerEvent, rep.HopMix.Speedup)
	fmt.Printf("sim bench: netem pump       kernel %7.1f ns/ev %5.2f allocs/ev %11.0f ev/s\n",
		rep.Netem.NsPerEvent, rep.Netem.AllocsPerEvent, rep.Netem.EventsPerSec)
	for _, p := range rep.ShardScaling {
		fmt.Printf("sim bench: storm g=%-5d w=%-2d %7.1f ns/ev %5.2f allocs/ev %11.0f ev/s  %7d windows  (%.2fx)\n",
			p.Group, p.Workers, p.NsPerEvent, p.AllocsPerEvent, p.EventsPerSec, p.Windows, p.SpeedupVs1)
	}
	fmt.Printf("wrote %s\n", outPath)
	return nil
}
