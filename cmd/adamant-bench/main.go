// Command adamant-bench regenerates the paper's evaluation artifacts:
// Tables 1-2 and Figures 4-21 (see DESIGN.md for the experiment index).
//
// QoS figures (4-17) run on the deterministic network simulator; the ANN
// figures (18-21) need the labeled training set, which either comes from
// -dataset <csv> (generate one with adamant-dataset) or is built on the
// fly with -combos.
//
// Examples:
//
//	adamant-bench -fig 4              # one figure
//	adamant-bench -all                # everything (takes a while)
//	adamant-bench -fig 19 -dataset data/training.csv
//	adamant-bench -fig 5 -samples 20000 -runs 5   # paper-scale workload
//	adamant-bench -ann -dataset data/training.csv -out BENCH_ann.json
//	adamant-bench -sim                # event-core throughput, BENCH_sim.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"adamant/internal/experiment"
)

func main() {
	var (
		figFlag   = flag.String("fig", "", "figure/table to regenerate: 4..21, 't1', 't2', or comma list")
		all       = flag.Bool("all", false, "regenerate every table and figure")
		samples   = flag.Int("samples", 2000, "samples per run (paper: 20000)")
		runs      = flag.Int("runs", 5, "runs per configuration (paper: 5)")
		seed      = flag.Int64("seed", 1, "simulation seed")
		dataset   = flag.String("dataset", "", "training-set CSV for figures 18-21 (default: build a small one)")
		combos    = flag.Int("combos", 48, "environment combos when building a dataset on the fly (paper: 197)")
		csvOut    = flag.Bool("csv", false, "emit CSV instead of ASCII tables")
		ablations = flag.Bool("ablations", false, "also run the design-choice ablation studies (A1-A5)")
		jobs      = flag.Int("jobs", 0, "parallel workers (0 = all CPUs)")
		annBench  = flag.Bool("ann", false, "run the ANN inference-latency harness and emit a JSON report")
		simBench  = flag.Bool("sim", false, "run the sim-kernel throughput harness and emit a JSON report")
		outPath   = flag.String("out", "", "JSON report path (default BENCH_ann.json for -ann, BENCH_sim.json for -sim)")
		queries   = flag.Int("queries", 100000, "timed Classify calls for the -ann harness")
		events    = flag.Uint64("events", 2_000_000, "minimum events per measurement for the -sim harness")
		shardW    = flag.String("shard-workers", "1,2,4,8", "worker counts for the -sim shard-scaling table (comma list)")
		shardG    = flag.String("shard-groups", "50,200,500,1000", "group sizes for the -sim shard-scaling table (comma list)")
		verbose   = flag.Bool("v", false, "progress logging")
	)
	flag.Parse()
	if *simBench {
		out := *outPath
		if out == "" {
			out = "BENCH_sim.json"
		}
		workers, err := parseIntList(*shardW)
		if err != nil {
			fmt.Fprintln(os.Stderr, "adamant-bench: -shard-workers:", err)
			os.Exit(1)
		}
		groups, err := parseIntList(*shardG)
		if err != nil {
			fmt.Fprintln(os.Stderr, "adamant-bench: -shard-groups:", err)
			os.Exit(1)
		}
		if err := runSimBench(out, *events, groups, workers, *verbose); err != nil {
			fmt.Fprintln(os.Stderr, "adamant-bench:", err)
			os.Exit(1)
		}
		if *figFlag == "" && !*all && !*ablations && !*annBench {
			return
		}
	}
	if *annBench {
		out := *outPath
		if out == "" {
			out = "BENCH_ann.json"
		}
		if err := runANNBench(*dataset, *combos, out, *queries, *seed, *jobs, *verbose); err != nil {
			fmt.Fprintln(os.Stderr, "adamant-bench:", err)
			os.Exit(1)
		}
		if *figFlag == "" && !*all && !*ablations {
			return
		}
	}
	if *ablations {
		tables, err := experiment.Ablations(experiment.AblationOptions{Samples: *samples, Seed: *seed, Jobs: *jobs})
		if err != nil {
			fmt.Fprintln(os.Stderr, "adamant-bench:", err)
			os.Exit(1)
		}
		for _, t := range tables {
			if *csvOut {
				fmt.Printf("# %s — %s\n%s\n", t.ID, t.Title, t.CSV())
			} else {
				fmt.Println(t.Format())
			}
		}
		if *figFlag == "" && !*all {
			return
		}
	}
	if err := run(*figFlag, *all, *samples, *runs, *seed, *dataset, *combos, *jobs, *csvOut, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "adamant-bench:", err)
		os.Exit(1)
	}
}

func parseIntList(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad entry %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

func run(figFlag string, all bool, samples, runs int, seed int64, dataset string,
	combos, jobs int, csvOut, verbose bool) error {
	var wanted []string
	switch {
	case all:
		wanted = append(wanted, "t1", "t2")
		for f := 4; f <= 21; f++ {
			wanted = append(wanted, strconv.Itoa(f))
		}
	case figFlag != "":
		for _, f := range strings.Split(figFlag, ",") {
			wanted = append(wanted, strings.TrimSpace(f))
		}
	default:
		return fmt.Errorf("nothing to do: pass -fig or -all")
	}
	progress := func(string, ...any) {}
	if verbose {
		progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	needQoS, needANN := false, false
	for _, f := range wanted {
		if n, err := strconv.Atoi(f); err == nil {
			if n >= 4 && n <= 17 {
				needQoS = true
			}
			if n >= 18 && n <= 21 {
				needANN = true
			}
		}
	}

	var qos *experiment.QoSFigures
	if needQoS {
		var err error
		qos, err = experiment.RunQoSFigures(experiment.QoSOptions{
			Samples: samples, Runs: runs, Seed: seed, Jobs: jobs, Progress: progress,
		})
		if err != nil {
			return err
		}
	}
	var rows []experiment.Row
	if needANN {
		var err error
		if dataset != "" {
			rows, err = experiment.ReadCSVFile(dataset)
		} else {
			progress("building %d-combo dataset (pass -dataset to reuse a generated one)", combos)
			rows, err = experiment.BuildDataset(experiment.DatasetOptions{
				Combos: combos, Seed: seed, Jobs: jobs, Progress: progress,
			})
		}
		if err != nil {
			return err
		}
	}

	emit := func(t experiment.Table) {
		if csvOut {
			fmt.Printf("# %s — %s\n%s\n", t.ID, t.Title, t.CSV())
		} else {
			fmt.Println(t.Format())
		}
	}
	annOpts := experiment.ANNOptions{Seed: seed, Jobs: jobs, Progress: progress}
	for _, f := range wanted {
		switch f {
		case "t1", "T1":
			emit(experiment.EnvironmentTable())
			continue
		case "t2", "T2":
			emit(experiment.ApplicationTable())
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil {
			return fmt.Errorf("unknown figure %q", f)
		}
		var tab experiment.Table
		switch {
		case n >= 4 && n <= 17:
			tab, err = qos.Figure(n)
		case n == 18:
			tab, err = experiment.Figure18(rows, annOpts)
		case n == 19:
			tab, err = experiment.Figure19(rows, annOpts)
		case n == 20:
			tab, err = experiment.Figure20(rows, annOpts)
		case n == 21:
			tab, err = experiment.Figure21(rows, annOpts)
		default:
			return fmt.Errorf("figure %d out of range (4-21)", n)
		}
		if err != nil {
			return err
		}
		emit(tab)
	}
	return nil
}
