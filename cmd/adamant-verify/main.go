// Command adamant-verify checks the simulator calibration against the paper's
// qualitative targets (see DESIGN.md).
//
// With -chaos it instead runs the transport crucible: every registered
// protocol through the chaos scenario library under invariant checkers,
// each cell executed twice with byte-identical outcomes required (see
// EXPERIMENTS.md for reproducing a failing cell from its printed line).
package main

import (
	"flag"
	"fmt"
	"os"

	"adamant/internal/core"
	"adamant/internal/dds"
	"adamant/internal/experiment"
	"adamant/internal/metrics"
	"adamant/internal/netem"
	"adamant/internal/netem/chaos"
	"adamant/internal/transport"
	"adamant/internal/transport/conformance"
	"adamant/internal/transport/fountcast"
)

// mustSpec parses a known-good spec literal.
func mustSpec(s string) transport.Spec {
	spec, err := transport.ParseSpec(s)
	if err != nil {
		panic(err)
	}
	return spec
}

const (
	idxNak1  = 3 // nakcast(timeout=1ms)
	idxRicR4 = 4 // ricochet(c=3,r=4)
)

func mean(ss []metrics.Summary, f func(metrics.Summary) float64) float64 {
	var t float64
	for _, s := range ss {
		t += f(s)
	}
	return t / float64(len(ss))
}

func main() {
	chaosMode := flag.Bool("chaos", false, "run the transport crucible (chaos scenario matrix) instead of calibration")
	adaptMode := flag.Bool("adapt", false, "run the adaptation figure (static candidates vs live hot-swap in a drifting environment)")
	jobs := flag.Int("jobs", 0, "worker pool width for the crucible matrix (0 = GOMAXPROCS)")
	seeds := flag.Int("seeds", 2, "number of seeds per crucible cell (seeds 1..n)")
	scenario := flag.String("scenario", "", "restrict the crucible to one scenario by name")
	flag.Parse()
	if *chaosMode {
		os.Exit(runChaos(*jobs, *seeds, *scenario))
	}
	if *adaptMode {
		os.Exit(runAdapt())
	}

	runs := 3
	samples := 2000
	fail := 0
	check := func(name string, ok bool, detail string) {
		mark := "PASS"
		if !ok {
			mark = "FAIL"
			fail++
		}
		fmt.Printf("%-4s %-50s %s\n", mark, name, detail)
	}

	type plat struct {
		m    netem.Machine
		bw   netem.Bandwidth
		name string
	}
	fast := plat{netem.PC3000, netem.Gbps1, "fast"}
	slow := plat{netem.PC850, netem.Mbps100, "slow"}

	// --- 3 receivers, Figs 4-9 ---
	type res3 struct{ nak, ric []metrics.Summary }
	get := func(p plat, recv int, rate float64) res3 {
		cfg := experiment.Config{Machine: p.m, Bandwidth: p.bw, Impl: dds.ImplB,
			LossPct: 5, Receivers: recv, RateHz: rate, Samples: samples, Seed: 77}
		cands, err := experiment.RunCandidates(cfg, runs)
		if err != nil {
			fmt.Println("ERR", err)
			os.Exit(1)
		}
		w2 := experiment.Winner(cands, core.MetricReLate2)
		wj := experiment.Winner(cands, core.MetricReLate2Jit)
		fmt.Printf("  [%s %drcv %gHz] ReLate2 winner=%s  ReLate2Jit winner=%s\n",
			p.name, recv, rate, cands[w2].Spec, cands[wj].Spec)
		for i, c := range cands {
			fmt.Printf("    %-24s rel=%6.2f lat=%7.0f jit=%7.0f r2=%9.0f r2j=%10.3g\n",
				c.Spec.String(), mean(c.Summaries, metrics.Summary.Reliability),
				mean(c.Summaries, func(s metrics.Summary) float64 { return s.AvgLatencyUs }),
				mean(c.Summaries, func(s metrics.Summary) float64 { return s.JitterUs }),
				mean(c.Summaries, func(s metrics.Summary) float64 { return s.ReLate2 }),
				mean(c.Summaries, func(s metrics.Summary) float64 { return s.ReLate2Jit }))
			_ = i
		}
		return res3{nak: cands[idxNak1].Summaries, ric: cands[idxRicR4].Summaries}
	}

	r2 := func(ss []metrics.Summary) float64 {
		return mean(ss, func(s metrics.Summary) float64 { return s.ReLate2 })
	}
	r2j := func(ss []metrics.Summary) float64 {
		return mean(ss, func(s metrics.Summary) float64 { return s.ReLate2Jit })
	}
	lat := func(ss []metrics.Summary) float64 {
		return mean(ss, func(s metrics.Summary) float64 { return s.AvgLatencyUs })
	}
	jit := func(ss []metrics.Summary) float64 {
		return mean(ss, func(s metrics.Summary) float64 { return s.JitterUs })
	}
	rel := func(ss []metrics.Summary) float64 {
		return mean(ss, metrics.Summary.Reliability)
	}

	f10 := get(fast, 3, 10)
	f25 := get(fast, 3, 25)
	s10 := get(slow, 3, 10)
	s25 := get(slow, 3, 25)

	check("C1 fast/3/10: ric beats nak ReLate2", r2(f10.ric) < r2(f10.nak),
		fmt.Sprintf("ric=%.0f nak=%.0f", r2(f10.ric), r2(f10.nak)))
	check("C2 fast/3/25: ric beats nak ReLate2", r2(f25.ric) < r2(f25.nak),
		fmt.Sprintf("ric=%.0f nak=%.0f", r2(f25.ric), r2(f25.nak)))
	check("C3 slow/3/10: nak beats ric ReLate2", r2(s10.nak) < r2(s10.ric),
		fmt.Sprintf("nak=%.0f ric=%.0f", r2(s10.nak), r2(s10.ric)))
	check("C4 slow/3/25: nak beats ric ReLate2", r2(s25.nak) < r2(s25.ric),
		fmt.Sprintf("nak=%.0f ric=%.0f", r2(s25.nak), r2(s25.ric)))
	// The slow/3/25 latency sign is a documented deviation (EXPERIMENTS.md):
	// NAKcast's detection improves with rate while Ricochet's CPU-bound
	// cost on pc850 is rate-flat, so at 25 Hz on pc850 Ricochet's average
	// latency slightly exceeds NAKcast's in our model.
	check("C5 ric latency lower (3rcv; 10Hz both, 25Hz fast)",
		lat(f10.ric) < lat(f10.nak) && lat(f25.ric) < lat(f25.nak) &&
			lat(s10.ric) < lat(s10.nak), "")
	gapFast := lat(f10.nak) - lat(f10.ric)
	gapSlow := lat(s10.nak) - lat(s10.ric)
	check("C6 latency gap wider on fast (10Hz)", gapFast > gapSlow,
		fmt.Sprintf("fast=%.0fus slow=%.0fus", gapFast, gapSlow))
	check("C7 nak reliability > ric, flat across hw",
		rel(f10.nak) > rel(f10.ric) && rel(s10.nak) > rel(s10.ric) &&
			rel(f10.ric) > 98 &&
			abs(rel(f10.ric)-rel(s10.ric)) < 0.3 && abs(rel(f10.nak)-rel(s10.nak)) < 0.2,
		fmt.Sprintf("nak %.2f/%.2f ric %.2f/%.2f", rel(f10.nak), rel(s10.nak), rel(f10.ric), rel(s10.ric)))

	// --- 15 receivers, 10 Hz, Figs 10-17 ---
	f15 := get(fast, 15, 10)
	s15 := get(slow, 15, 10)
	check("C8 fast/15/10: ric beats nak ReLate2Jit", r2j(f15.ric) < r2j(f15.nak),
		fmt.Sprintf("ric=%.3g nak=%.3g", r2j(f15.ric), r2j(f15.nak)))
	// The paper reports this as NAKcast winning 4 of 5 runs — a near-tie.
	// We accept the mean within 15% and report per-run outcomes.
	nakWins := 0
	for i := range s15.nak {
		if s15.nak[i].ReLate2Jit < s15.ric[i].ReLate2Jit {
			nakWins++
		}
	}
	check("C9 slow/15/10: nak ~beats ric ReLate2Jit (near-tie)",
		r2j(s15.nak) < r2j(s15.ric)*1.15,
		fmt.Sprintf("nak=%.3g ric=%.3g nak wins %d/%d runs", r2j(s15.nak), r2j(s15.ric), nakWins, len(s15.nak)))
	check("C10 ric latency lower, 15rcv both platforms",
		lat(f15.ric) < lat(f15.nak) && lat(s15.ric) < lat(s15.nak),
		fmt.Sprintf("fast %.0f<%.0f slow %.0f<%.0f", lat(f15.ric), lat(f15.nak), lat(s15.ric), lat(s15.nak)))
	check("C11 ric jitter lower, 15rcv both platforms",
		jit(f15.ric) < jit(f15.nak) && jit(s15.ric) < jit(s15.nak),
		fmt.Sprintf("fast %.0f<%.0f slow %.0f<%.0f", jit(f15.ric), jit(f15.nak), jit(s15.ric), jit(s15.nak)))
	check("C12 nak reliability > ric at 15rcv",
		rel(f15.nak) > rel(f15.ric) && rel(s15.nak) > rel(s15.ric),
		fmt.Sprintf("nak %.2f/%.2f ric %.2f/%.2f", rel(f15.nak), rel(s15.nak), rel(f15.ric), rel(s15.ric)))

	// --- Gilbert-Elliott bursty loss: fountcast vs ricochet at matched
	// bandwidth overhead. Correlated multi-packet loss bursts defeat
	// ricochet's one-XOR-per-panel repair, while the fountain code spends
	// the same repair bandwidth as freely combinable symbols. The fountain
	// overhead is calibrated to ricochet's measured byte overhead in two
	// passes, with bemcast (no repair traffic) as the zero-overhead
	// bandwidth baseline: a probe run at oh=100 measures the bytes-per-
	// overhead-point slope (repair framing differs from data framing, so
	// the configured rate and the byte ratio are not identical), then the
	// rate is rescaled to land on ricochet's byte total. The 100 Hz rate
	// keeps the fountain's block-fill delay (K x period) small relative to
	// the loss penalty, which is where a rateless code belongs.
	geCfg := experiment.Config{Machine: fast.m, Bandwidth: fast.bw, Impl: dds.ImplB,
		BurstPGB: 0.013, BurstPBG: 0.25, BurstDropBad: 1.0,
		Receivers: 3, RateHz: 100, Samples: samples, Seed: 77}
	runGE := func(spec transport.Spec) []metrics.Summary {
		cfg := geCfg
		cfg.Protocol = spec
		sums, err := experiment.RunN(cfg, runs)
		if err != nil {
			fmt.Println("ERR", err)
			os.Exit(1)
		}
		return sums
	}
	bytesOf := func(ss []metrics.Summary) float64 {
		return mean(ss, func(s metrics.Summary) float64 { return float64(s.Bytes) })
	}
	fntSpec := func(oh int) transport.Spec {
		return mustSpec(fmt.Sprintf("fountcast(hold=15ms,k=4,oh=%d)", oh))
	}
	base := runGE(mustSpec("bemcast"))
	ric := runGE(core.Candidates()[idxRicR4])
	overheadPct := func(ss []metrics.Summary) float64 {
		return 100 * (bytesOf(ss) - bytesOf(base)) / bytesOf(base)
	}
	ricOverheadPct := overheadPct(ric)
	const probeOh = 100
	probe := runGE(fntSpec(probeOh))
	oh := probeOh
	if p := overheadPct(probe); p > 0 {
		oh = int(probeOh*ricOverheadPct/p + 0.5)
	}
	if oh < 1 {
		oh = 1
	} else if oh > fountcast.MaxOverheadPct {
		oh = fountcast.MaxOverheadPct
	}
	fnt := runGE(fntSpec(oh))
	fntOverheadPct := overheadPct(fnt)
	fmt.Printf("  [GE burst pGB=%g pBG=%g rate=%gHz] ric overhead=%.1f%% -> fountcast oh=%d (measured %.1f%%)\n",
		geCfg.BurstPGB, geCfg.BurstPBG, geCfg.RateHz, ricOverheadPct, oh, fntOverheadPct)
	for _, row := range []struct {
		name string
		ss   []metrics.Summary
	}{{"ricochet(c=3,r=4)", ric}, {fntSpec(oh).String(), fnt}} {
		fmt.Printf("    %-28s rel=%6.2f lat=%7.0f r2=%9.0f bytes=%.0f\n",
			row.name, rel(row.ss), lat(row.ss), r2(row.ss), bytesOf(row.ss))
	}
	check("C13 GE burst: fountcast ReLate2 <= ricochet, matched overhead",
		r2(fnt) <= r2(ric),
		fmt.Sprintf("fnt=%.0f ric=%.0f", r2(fnt), r2(ric)))
	check("C14 GE burst: fountcast overhead within budget of ricochet's",
		fntOverheadPct <= 1.15*ricOverheadPct,
		fmt.Sprintf("fnt=%.1f%% ric=%.1f%%", fntOverheadPct, ricOverheadPct))

	fmt.Printf("\n%d failures\n", fail)
	if fail > 0 {
		os.Exit(1)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// runChaos executes the crucible matrix and reports one line per cell.
// Every cell runs twice with the same seed; a hash mismatch between the two
// runs is a determinism failure. Returns the process exit code.
func runChaos(jobs, seeds int, scenario string) int {
	scenarios := chaos.Library()
	if scenario != "" {
		sc, ok := chaos.ByName(scenario)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown scenario %q; library:\n", scenario)
			for _, s := range scenarios {
				fmt.Fprintf(os.Stderr, "  %-16s %s\n", s.Name, s.Info)
			}
			return 2
		}
		scenarios = []chaos.Scenario{sc}
	}
	if seeds < 1 {
		seeds = 1
	}
	seedList := make([]int64, seeds)
	for i := range seedList {
		seedList[i] = int64(i + 1)
	}
	specs := conformance.DefaultCrucibleSpecs()
	cells := conformance.CrucibleCells(specs, scenarios, seedList)
	static := len(cells)
	if scenario == "" {
		// The full matrix also exercises live hot-swaps: a calm switch, a
		// switch at the loss peak, a switch at the partition heal, and
		// back-to-back flapping, for every base protocol.
		cells = append(cells, conformance.SwitchCells(specs, seedList)...)
	}
	fmt.Printf("chaos crucible: %d specs x %d scenarios x %d seeds = %d cells + %d switch cells (each run twice)\n",
		len(specs), len(scenarios), len(seedList), static, len(cells)-static)

	results := conformance.RunCrucibleMatrix(cells, jobs, nil)
	failed := 0
	for _, res := range results {
		switch {
		case res.Err != nil:
			failed++
			fmt.Printf("FAIL %-50s %v\n", res.Cell.Name(), res.Err)
		case len(res.Failures) > 0:
			failed++
			fmt.Printf("FAIL %-50s hash=%.12s\n", res.Cell.Name(), res.Hash)
			for _, f := range res.Failures {
				fmt.Printf("     - %s\n", f)
			}
		default:
			fmt.Printf("PASS %-50s hash=%.12s\n", res.Cell.Name(), res.Hash)
		}
	}
	fmt.Printf("\n%d cells, %d failures\n", len(results), failed)
	if failed > 0 {
		fmt.Println("reproduce a cell from its line: see EXPERIMENTS.md, \"Reproducing a crucible failure\"")
		return 1
	}
	return 0
}

// runAdapt executes the adaptation figure: a drifting environment driven
// once per static candidate and once with the in-mission adaptor hot-swapping
// the transport, reporting composite scores and the reconfiguration cost
// (Rebind apply time + old-generation drain latency). Returns the exit code.
func runAdapt() int {
	report, err := experiment.RunAdaptationFigure(experiment.AdaptationConfig{
		Seed: 11, Metric: core.MetricReLate2,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ERR", err)
		return 1
	}
	fmt.Print(report)
	if !report.AdaptiveWins(0.05) {
		fmt.Println("\nFAIL adaptive run lost to the best static configuration")
		return 1
	}
	fmt.Println("\nPASS adaptive run matched or beat every static configuration")
	return 0
}
