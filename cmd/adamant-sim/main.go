// Command adamant-sim runs one experiment configuration on the
// deterministic cloud emulator and prints the full QoS scorecard —
// the quickest way to poke at a "what if" without editing the harness.
//
//	adamant-sim -machine pc850 -bw 100Mb -loss 5 -receivers 3 -rate 10 \
//	            -proto 'ricochet(r=4,c=3)' -samples 2000
//	adamant-sim -sweep    # all six candidate protocols on one environment
//	adamant-sim -storm -shards 8   # 1000-receiver multicast storm, sharded engine
//	adamant-sim -receivers 500 -shards 4 -proto bemcast   # any config, sharded
package main

import (
	"flag"
	"fmt"
	"os"

	"adamant/internal/core"
	"adamant/internal/dds"
	"adamant/internal/experiment"
	"adamant/internal/metrics"
	"adamant/internal/netem"
	"adamant/internal/transport"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "adamant-sim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		machine   = flag.String("machine", "pc3000", "machine type: pc850|pc1500|pc3000|pc5000")
		bw        = flag.String("bw", "1Gb", "LAN bandwidth: 10Mb|100Mb|1Gb")
		implName  = flag.String("impl", "opensplice", "middleware profile: opendds|opensplice")
		loss      = flag.Float64("loss", 5, "end-host loss percent")
		receivers = flag.Int("receivers", 3, "data readers")
		rate      = flag.Float64("rate", 25, "sending rate, Hz")
		samples   = flag.Int("samples", 2000, "samples to publish")
		protoStr  = flag.String("proto", "nakcast(timeout=1ms)", "transport spec")
		seed      = flag.Int64("seed", 1, "simulation seed")
		runs      = flag.Int("runs", 1, "runs (summaries averaged per run line)")
		sweep     = flag.Bool("sweep", false, "run all six ADAMANT candidates instead of -proto")
		shards    = flag.Int("shards", 0, "run on the sharded engine with this many workers (0 = serial kernel)")
		storm     = flag.Bool("storm", false, "multicast-storm preset: 1000 bemcast receivers at 100Hz (override with -receivers etc.)")
	)
	flag.Parse()
	if *storm {
		preset := experiment.Storm(1000, *shards, *seed)
		setIfDefault := func(name string, f func()) {
			if fl := flag.Lookup(name); fl != nil && fl.Value.String() == fl.DefValue {
				f()
			}
		}
		setIfDefault("bw", func() { *bw = preset.Bandwidth.String() })
		setIfDefault("loss", func() { *loss = preset.LossPct })
		setIfDefault("receivers", func() { *receivers = preset.Receivers })
		setIfDefault("rate", func() { *rate = preset.RateHz })
		setIfDefault("samples", func() { *samples = preset.Samples })
		setIfDefault("proto", func() { *protoStr = preset.Protocol.String() })
		setIfDefault("shards", func() { *shards = 8 })
	}

	m, err := netem.MachineByName(*machine)
	if err != nil {
		return err
	}
	b, err := netem.BandwidthByName(*bw)
	if err != nil {
		return err
	}
	impl, err := dds.ImplByName(*implName)
	if err != nil {
		return err
	}
	cfg := experiment.Config{
		Machine: m, Bandwidth: b, Impl: impl, LossPct: *loss,
		Receivers: *receivers, RateHz: *rate, Samples: *samples, Seed: *seed,
		Shards: *shards,
	}

	specs := []transport.Spec{}
	if *sweep {
		specs = core.Candidates()
	} else {
		spec, err := transport.ParseSpec(*protoStr)
		if err != nil {
			return err
		}
		specs = append(specs, spec)
	}

	engine := "serial kernel"
	if *shards > 0 {
		engine = fmt.Sprintf("sharded x%d", *shards)
	}
	fmt.Printf("environment: %s/%s/%s loss=%g%% receivers=%d rate=%gHz samples=%d seed=%d engine=%s\n\n",
		m.Name, b, impl, *loss, *receivers, *rate, *samples, *seed, engine)
	for _, spec := range specs {
		cfg.Protocol = spec
		fmt.Printf("%s\n", spec)
		for i := 0; i < *runs; i++ {
			runCfg := cfg
			if *runs > 1 {
				runCfg.Seed = cfg.Seed + int64(i)
			}
			s, report, err := experiment.RunDetailed(runCfg)
			if err != nil {
				return err
			}
			printSummary(s, report)
		}
		fmt.Println()
	}
	return nil
}

func printSummary(s metrics.Summary, r experiment.NetReport) {
	fmt.Printf("  reliability %7.3f%%   delivered %d/%d (recovered %d, lost-reported %d)\n",
		s.Reliability(), s.Delivered, s.Sent, s.Recovered, s.Sent-s.Delivered)
	fmt.Printf("  latency avg %8.0fus  p50 %8.0fus  p95 %8.0fus  p99 %8.0fus  max %8.0fus\n",
		s.AvgLatencyUs, s.P50LatencyUs, s.P95LatencyUs, s.P99LatencyUs, s.MaxLatencyUs)
	fmt.Printf("  jitter      %8.0fus  burstiness %.0f B/s  avg bw %.0f B/s\n",
		s.JitterUs, s.BurstinessBps, s.AvgBps)
	fmt.Printf("  ReLate2 %12.0f   ReLate2Jit %12.4g\n", s.ReLate2, s.ReLate2Jit)
	fmt.Printf("  traffic: writer tx %d pkts; total tx %d pkts (%.2f pkts/sample)\n",
		r.Writer.TxPackets, r.TotalTx(), float64(r.TotalTx())/float64(s.Sent)*float64(len(r.Readers)))
}
