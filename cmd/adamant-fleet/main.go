// Command adamant-fleet is the broker scale harness: it multiplexes
// 100k+ mock subscribers over a handful of real TCP connections against
// an in-process broker, sweeps fan-out group size x publish rate x
// payload size, and writes fan-out throughput plus p50/p99/p99.9
// delivery latency into BENCH_broker.json. With -compare it also runs
// the like-for-like seed-broker comparison (current trie+coalescing
// core vs the pre-overhaul global-mutex broker on the same driver).
//
// Examples:
//
//	adamant-fleet                              # default sweep -> BENCH_broker.json
//	adamant-fleet -groups 1000,10000,100000 -payloads 16,128,1024
//	adamant-fleet -compare -v                  # include the seed speedup section
//	adamant-fleet -groups 200 -budget 100000   # quick smoke cell
//	adamant-fleet -mesh -mesh-brokers 3 -mesh-groups 1000  # cross-broker cells
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"adamant/internal/broker/bench"
	"adamant/internal/broker/fleet"
)

// fleetReport is the schema of BENCH_broker.json.
type fleetReport struct {
	GeneratedBy string `json:"generated_by"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	CPUs        int    `json:"cpus"`
	GOMAXPROCS  int    `json:"gomaxprocs"`

	// Notes spells out how to read the numbers: subscribers are mock
	// sids multiplexed over real conns on one box, the publisher, the
	// fleet, and the broker share the CPUs above, and a rate of 0 means
	// the publisher runs unpaced.
	Notes string `json:"notes"`

	// SeedComparison pairs the current broker against the pre-overhaul
	// seed broker on an identical 10k-subscription workload (present
	// only with -compare).
	SeedComparison *bench.Comparison `json:"seed_comparison,omitempty"`

	// LoadLatency is the open-loop load–latency section (present only
	// with -ll): the offered-rate ladder walked to the saturation knee
	// on both data planes.
	LoadLatency *loadLatency `json:"load_latency,omitempty"`

	// Mesh is the cross-broker federation section (present only with
	// -mesh): publisher pinned to broker 0 of an in-process full mesh,
	// subscribers split across the remaining brokers, so every delivery
	// crosses one inter-broker route.
	Mesh []fleet.MeshResult `json:"mesh,omitempty"`

	// Sweep is the fan-out grid: one cell per group size x payload size
	// x publish rate.
	Sweep []fleet.Result `json:"sweep"`
}

// loadLatency is the open-loop curve: p50/p99/p99.9 vs offered rate on
// the vectored (PR 9) and legacy (pre-PR 9) data planes, measured by the
// identical harness.
type loadLatency struct {
	Subscribers  int     `json:"subscribers"`
	PayloadBytes int     `json:"payload_bytes"`
	SecondsPerPt float64 `json:"seconds_per_point"`
	KneeP99Ms    float64 `json:"knee_p99_ms"`
	// RepeatsPerPt is how many times each ladder point ran; the
	// observation with the lowest p99 is the one recorded (external CPU
	// contention on a shared box only ever adds latency).
	RepeatsPerPt int `json:"repeats_per_point"`

	Vectored fleet.Sweep `json:"vectored"`
	Legacy   fleet.Sweep `json:"legacy"`

	// PacedP99SpeedupX is max(legacy p99 / vectored p99) over the
	// offered rates both planes completed: how much better the PR 9
	// plane's tail is at a load the old plane still nominally handles.
	PacedP99SpeedupX float64 `json:"paced_p99_speedup_x"`
	// At the rate where that maximum occurred:
	SpeedupAtRateHz int `json:"speedup_at_rate_hz"`
}

func main() {
	var (
		groups   = flag.String("groups", "1000,10000,100000", "fan-out group sizes (comma list)")
		payloads = flag.String("payloads", "16,128,1024", "payload sizes in bytes (comma list)")
		rates    = flag.String("rates", "0", "publish rates in Hz, 0 = unpaced (comma list)")
		conns    = flag.Int("conns", 16, "real TCP connections the fleet multiplexes over")
		budget   = flag.Int("budget", 2_000_000, "target deliveries per sweep cell (messages = budget/group)")
		minMsgs  = flag.Int("min-msgs", 20, "floor on publishes per cell")
		seed     = flag.Int64("seed", 1, "broker rng seed")
		shards   = flag.Int("shards", 0, "routing shards (0 = broker default)")
		compare  = flag.Bool("compare", false, "also run the seed-broker comparison at 10k subscriptions")
		outPath  = flag.String("out", "BENCH_broker.json", "JSON report path")
		verbose  = flag.Bool("v", false, "progress logging")

		ll        = flag.Bool("ll", false, "run the open-loop load-latency rate sweep (both data planes)")
		llSubs    = flag.Int("ll-subs", 1000, "load-latency: fan-out group size")
		llPayload = flag.Int("ll-payload", 128, "load-latency: payload bytes")
		llRates   = flag.String("ll-rates", "500,1000,2000,4000,8000,16000,32000", "load-latency: offered-rate ladder in Hz (comma list)")
		llSeconds = flag.Float64("ll-seconds", 1.0, "load-latency: measured seconds per ladder point")
		llKneeMs  = flag.Float64("ll-knee-ms", 100, "load-latency: p99 bound that marks the saturation knee")
		llRepeats = flag.Int("ll-repeats", 3, "load-latency: repeats per ladder point (best p99 kept)")

		mesh        = flag.Bool("mesh", false, "run the cross-broker mesh cells (publisher and subscribers on different brokers)")
		meshBrokers = flag.Int("mesh-brokers", 3, "mesh: broker count (publisher on broker 0, subscribers on the rest)")
		meshGroups  = flag.String("mesh-groups", "1000", "mesh: total subscriber counts (comma list)")
		meshPayload = flag.Int("mesh-payload", 128, "mesh: payload bytes")
		meshRates   = flag.String("mesh-rates", "0,2000", "mesh: publish rates in Hz, 0 = unpaced (comma list)")
	)
	flag.Parse()

	progress := func(string, ...any) {}
	if *verbose {
		progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	groupList, err := parseIntList(*groups)
	if err != nil {
		fatal("-groups: %v", err)
	}
	payloadList, err := parseIntList(*payloads)
	if err != nil {
		fatal("-payloads: %v", err)
	}
	rateList, err := parseIntList(*rates)
	if err != nil {
		fatal("-rates: %v", err)
	}

	rep := fleetReport{
		GeneratedBy: "adamant-fleet",
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		CPUs:        runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Notes: "subscribers are mock sids multiplexed over `conns` real TCP connections; " +
			"publisher, fleet, and broker share the CPUs above, so deliveries/s is a " +
			"single-box number, not a cluster claim; latency is publish-stamp to " +
			"subscriber-read over loopback. Paced cells (rate_hz > 0) are open-loop: " +
			"stamps carry the intended send time, so publisher stalls count against " +
			"latency (no coordinated omission) and behind_schedule/max_send_lag_ms " +
			"report unsustained load. Unpaced cells (rate_hz 0) are closed-loop " +
			"throughput probes: stamps are actual send times, internal queueing " +
			"appears as latency, and their percentiles must not be read as " +
			"service latency under load — use the load_latency section for that. " +
			"Mesh cells add one in-process inter-broker route hop to every " +
			"delivery (publisher on broker 0, subscribers on the rest).",
	}

	if *compare {
		progress("seed comparison: 10000 subs, 100 subjects, 20 conns")
		cmp, err := bench.CompareFanout(10_000, 100, 20, 200, 128)
		if err != nil {
			fatal("seed comparison: %v", err)
		}
		progress("  current %.0f del/s, seed %.0f del/s, speedup %.2fx",
			cmp.Current.DeliveriesPerSec, cmp.Seed.DeliveriesPerSec, cmp.Speedup)
		rep.SeedComparison = &cmp
	}

	if *ll {
		rateLadder, err := parseIntList(*llRates)
		if err != nil {
			fatal("-ll-rates: %v", err)
		}
		sec := &loadLatency{
			Subscribers:  *llSubs,
			PayloadBytes: *llPayload,
			SecondsPerPt: *llSeconds,
			KneeP99Ms:    *llKneeMs,
			RepeatsPerPt: *llRepeats,
		}
		base := fleet.Config{
			Subscribers:  *llSubs,
			Conns:        *conns,
			PayloadBytes: *llPayload,
			Seed:         *seed,
			Shards:       *shards,
		}
		progress("load-latency sweep: %d subs, %dB payload, vectored plane", *llSubs, *llPayload)
		sec.Vectored, err = fleet.RateSweep(fleet.SweepConfig{
			Base: base, Rates: rateLadder, Seconds: *llSeconds, KneeP99Ms: *llKneeMs, Repeats: *llRepeats,
		}, progress)
		if err != nil {
			fatal("load-latency (vectored): %v", err)
		}
		legacyBase := base
		legacyBase.Legacy = true
		progress("load-latency sweep: legacy plane")
		sec.Legacy, err = fleet.RateSweep(fleet.SweepConfig{
			Base: legacyBase, Rates: rateLadder, Seconds: *llSeconds, KneeP99Ms: *llKneeMs, Repeats: *llRepeats,
		}, progress)
		if err != nil {
			fatal("load-latency (legacy): %v", err)
		}
		// Headline: worst legacy-vs-vectored p99 ratio at a common
		// offered rate.
		vp99 := map[int]float64{}
		for _, p := range sec.Vectored.Points {
			vp99[p.RateHz] = p.LatencyP99Ms
		}
		for _, p := range sec.Legacy.Points {
			v, ok := vp99[p.RateHz]
			if !ok || v <= 0 {
				continue
			}
			if x := p.LatencyP99Ms / v; x > sec.PacedP99SpeedupX {
				sec.PacedP99SpeedupX = x
				sec.SpeedupAtRateHz = p.RateHz
			}
		}
		progress("load-latency: paced p99 speedup %.1fx at %d Hz", sec.PacedP99SpeedupX, sec.SpeedupAtRateHz)
		rep.LoadLatency = sec
	}

	if *mesh {
		meshGroupList, err := parseIntList(*meshGroups)
		if err != nil {
			fatal("-mesh-groups: %v", err)
		}
		meshRateList, err := parseIntList(*meshRates)
		if err != nil {
			fatal("-mesh-rates: %v", err)
		}
		for _, g := range meshGroupList {
			for _, r := range meshRateList {
				msgs := max(*budget/g, *minMsgs)
				progress("mesh cell: brokers=%d group=%d payload=%dB rate=%dHz msgs=%d",
					*meshBrokers, g, *meshPayload, r, msgs)
				res, err := fleet.RunMesh(fleet.MeshConfig{
					Brokers:      *meshBrokers,
					Subscribers:  g,
					Conns:        *conns,
					PayloadBytes: *meshPayload,
					Messages:     msgs,
					RateHz:       r,
					Seed:         *seed,
					Shards:       *shards,
				})
				if err != nil {
					fatal("mesh cell brokers=%d group=%d rate=%d: %v", *meshBrokers, g, r, err)
				}
				progress("  %.0f deliveries/s, p50 %.3fms p99 %.3fms (%d routed, %d dups suppressed, %d dropped)",
					res.DeliveriesPerSec, res.LatencyP50Ms, res.LatencyP99Ms,
					res.RoutedMsgs, res.DupsSuppressed, res.Dropped)
				rep.Mesh = append(rep.Mesh, res)
			}
		}
	}

	for _, g := range groupList {
		for _, p := range payloadList {
			for _, r := range rateList {
				msgs := max(*budget/g, *minMsgs)
				progress("cell: group=%d payload=%dB rate=%dHz msgs=%d", g, p, r, msgs)
				res, err := fleet.Run(fleet.Config{
					Subscribers:  g,
					Conns:        *conns,
					PayloadBytes: p,
					Messages:     msgs,
					RateHz:       r,
					Seed:         *seed,
					Shards:       *shards,
				})
				if err != nil {
					fatal("cell group=%d payload=%d rate=%d: %v", g, p, r, err)
				}
				progress("  %.0f deliveries/s, p50 %.3fms p99 %.3fms p99.9 %.3fms (%d dropped)",
					res.DeliveriesPerSec, res.LatencyP50Ms, res.LatencyP99Ms, res.LatencyP999Ms, res.Dropped)
				rep.Sweep = append(rep.Sweep, res)
			}
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal("%v", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*outPath, data, 0o644); err != nil {
		fatal("%v", err)
	}
	fmt.Printf("wrote %s (%d sweep cells)\n", *outPath, len(rep.Sweep))
}

func parseIntList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad entry %q", part)
		}
		if n < 0 {
			return nil, fmt.Errorf("negative entry %d", n)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "adamant-fleet: "+format+"\n", args...)
	os.Exit(1)
}
