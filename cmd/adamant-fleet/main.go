// Command adamant-fleet is the broker scale harness: it multiplexes
// 100k+ mock subscribers over a handful of real TCP connections against
// an in-process broker, sweeps fan-out group size x publish rate x
// payload size, and writes fan-out throughput plus p50/p99/p99.9
// delivery latency into BENCH_broker.json. With -compare it also runs
// the like-for-like seed-broker comparison (current trie+coalescing
// core vs the pre-overhaul global-mutex broker on the same driver).
//
// Examples:
//
//	adamant-fleet                              # default sweep -> BENCH_broker.json
//	adamant-fleet -groups 1000,10000,100000 -payloads 16,128,1024
//	adamant-fleet -compare -v                  # include the seed speedup section
//	adamant-fleet -groups 200 -budget 100000   # quick smoke cell
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"adamant/internal/broker/bench"
	"adamant/internal/broker/fleet"
)

// fleetReport is the schema of BENCH_broker.json.
type fleetReport struct {
	GeneratedBy string `json:"generated_by"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	CPUs        int    `json:"cpus"`
	GOMAXPROCS  int    `json:"gomaxprocs"`

	// Notes spells out how to read the numbers: subscribers are mock
	// sids multiplexed over real conns on one box, the publisher, the
	// fleet, and the broker share the CPUs above, and a rate of 0 means
	// the publisher runs unpaced.
	Notes string `json:"notes"`

	// SeedComparison pairs the current broker against the pre-overhaul
	// seed broker on an identical 10k-subscription workload (present
	// only with -compare).
	SeedComparison *bench.Comparison `json:"seed_comparison,omitempty"`

	// Sweep is the fan-out grid: one cell per group size x payload size
	// x publish rate.
	Sweep []fleet.Result `json:"sweep"`
}

func main() {
	var (
		groups   = flag.String("groups", "1000,10000,100000", "fan-out group sizes (comma list)")
		payloads = flag.String("payloads", "16,128,1024", "payload sizes in bytes (comma list)")
		rates    = flag.String("rates", "0", "publish rates in Hz, 0 = unpaced (comma list)")
		conns    = flag.Int("conns", 16, "real TCP connections the fleet multiplexes over")
		budget   = flag.Int("budget", 2_000_000, "target deliveries per sweep cell (messages = budget/group)")
		minMsgs  = flag.Int("min-msgs", 20, "floor on publishes per cell")
		seed     = flag.Int64("seed", 1, "broker rng seed")
		shards   = flag.Int("shards", 0, "routing shards (0 = broker default)")
		compare  = flag.Bool("compare", false, "also run the seed-broker comparison at 10k subscriptions")
		outPath  = flag.String("out", "BENCH_broker.json", "JSON report path")
		verbose  = flag.Bool("v", false, "progress logging")
	)
	flag.Parse()

	progress := func(string, ...any) {}
	if *verbose {
		progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	groupList, err := parseIntList(*groups)
	if err != nil {
		fatal("-groups: %v", err)
	}
	payloadList, err := parseIntList(*payloads)
	if err != nil {
		fatal("-payloads: %v", err)
	}
	rateList, err := parseIntList(*rates)
	if err != nil {
		fatal("-rates: %v", err)
	}

	rep := fleetReport{
		GeneratedBy: "adamant-fleet",
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		CPUs:        runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Notes: "subscribers are mock sids multiplexed over `conns` real TCP connections; " +
			"publisher, fleet, and broker share the CPUs above, so deliveries/s is a " +
			"single-box number, not a cluster claim; rate_hz 0 = unpaced publisher; " +
			"latency is publish-stamp to subscriber-read over loopback.",
	}

	if *compare {
		progress("seed comparison: 10000 subs, 100 subjects, 20 conns")
		cmp, err := bench.CompareFanout(10_000, 100, 20, 200, 128)
		if err != nil {
			fatal("seed comparison: %v", err)
		}
		progress("  current %.0f del/s, seed %.0f del/s, speedup %.2fx",
			cmp.Current.DeliveriesPerSec, cmp.Seed.DeliveriesPerSec, cmp.Speedup)
		rep.SeedComparison = &cmp
	}

	for _, g := range groupList {
		for _, p := range payloadList {
			for _, r := range rateList {
				msgs := max(*budget/g, *minMsgs)
				progress("cell: group=%d payload=%dB rate=%dHz msgs=%d", g, p, r, msgs)
				res, err := fleet.Run(fleet.Config{
					Subscribers:  g,
					Conns:        *conns,
					PayloadBytes: p,
					Messages:     msgs,
					RateHz:       r,
					Seed:         *seed,
					Shards:       *shards,
				})
				if err != nil {
					fatal("cell group=%d payload=%d rate=%d: %v", g, p, r, err)
				}
				progress("  %.0f deliveries/s, p50 %.3fms p99 %.3fms p99.9 %.3fms (%d dropped)",
					res.DeliveriesPerSec, res.LatencyP50Ms, res.LatencyP99Ms, res.LatencyP999Ms, res.Dropped)
				rep.Sweep = append(rep.Sweep, res)
			}
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal("%v", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*outPath, data, 0o644); err != nil {
		fatal("%v", err)
	}
	fmt.Printf("wrote %s (%d sweep cells)\n", *outPath, len(rep.Sweep))
}

func parseIntList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad entry %q", part)
		}
		if n < 0 {
			return nil, fmt.Errorf("negative entry %d", n)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "adamant-fleet: "+format+"\n", args...)
	os.Exit(1)
}
