// Command adamant-probe runs the ADAMANT startup flow on the local host:
// probe computing and networking resources, map them onto the trained
// environment grid, and (given a trained network from adamant-train)
// recommend the transport protocol configuration.
//
//	adamant-probe                                  # probe only
//	adamant-probe -ann adamant.ann -receivers 9 -rate 25 -loss 3
package main

import (
	"flag"
	"fmt"
	"os"

	"adamant/internal/ann"
	"adamant/internal/core"
	"adamant/internal/dds"
	"adamant/internal/probe"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "adamant-probe:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		annPath   = flag.String("ann", "", "trained network from adamant-train (optional)")
		receivers = flag.Int("receivers", 3, "expected data readers")
		rate      = flag.Float64("rate", 25, "data sending rate, Hz")
		loss      = flag.Float64("loss", 2, "expected end-host loss, percent")
		implName  = flag.String("impl", "opensplice", "middleware profile: opendds|opensplice")
		metric    = flag.String("metric", "ReLate2", "metric of interest: ReLate2|ReLate2Jit")
	)
	flag.Parse()

	src := probe.RealSource{}
	info, err := src.Probe()
	if err != nil {
		return err
	}
	machine := probe.NearestMachine(info)
	bw := probe.NearestBandwidth(info)
	fmt.Printf("probed: %s\n", info)
	fmt.Printf("nearest trained machine profile: %s (%d MHz)\n", machine.Name, machine.MHz)
	fmt.Printf("nearest trained bandwidth: %s\n", bw)

	if *annPath == "" {
		fmt.Println("no -ann network given; probe only")
		return nil
	}
	net, err := ann.LoadFile(*annPath)
	if err != nil {
		return err
	}
	selector, err := core.NewANNSelector(net)
	if err != nil {
		return err
	}
	impl, err := dds.ImplByName(*implName)
	if err != nil {
		return err
	}
	m := core.MetricReLate2
	if *metric == core.MetricReLate2Jit.String() {
		m = core.MetricReLate2Jit
	}
	ctl, err := core.NewController(src, selector, core.AppParams{
		Receivers: *receivers, RateHz: *rate, LossPct: *loss, Impl: impl, Metric: m,
	})
	if err != nil {
		return err
	}
	d, err := ctl.Decide()
	if err != nil {
		return err
	}
	fmt.Printf("features: %s\n", d.Features)
	fmt.Printf("recommended transport: %s\n", d.Spec)
	fmt.Printf("decision time: probe=%v select=%v\n", d.ProbeTime, d.SelectTime)
	return nil
}
