// Command adamant-dataset generates the labeled training set the paper's
// supervised-learning configurator is built from: it sweeps sampled
// environment combinations (Table 1 x Table 2), runs every candidate
// transport protocol over each, and labels the winner under both composite
// QoS metrics. The paper's training set had 394 inputs (197 environments x
// 2 metrics); -combos 197 reproduces that shape.
//
//	adamant-dataset -o data/training.csv -combos 197 -v
package main

import (
	"flag"
	"fmt"
	"os"

	"adamant/internal/experiment"
)

func main() {
	var (
		out     = flag.String("o", "training.csv", "output CSV path")
		combos  = flag.Int("combos", 197, "environment combinations to sample (x2 metrics = rows)")
		runs    = flag.Int("runs", 3, "runs per (environment, protocol)")
		samples = flag.Int("samples", 600, "samples per run")
		seed    = flag.Int64("seed", 1, "sampling and simulation seed")
		verbose = flag.Bool("v", false, "progress logging")
	)
	flag.Parse()
	progress := func(string, ...any) {}
	if *verbose {
		progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	rows, err := experiment.BuildDataset(experiment.DatasetOptions{
		Combos: *combos, Runs: *runs, Samples: *samples, Seed: *seed, Progress: progress,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "adamant-dataset:", err)
		os.Exit(1)
	}
	if err := experiment.WriteCSVFile(*out, rows); err != nil {
		fmt.Fprintln(os.Stderr, "adamant-dataset:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d rows to %s\n", len(rows), *out)
}
