// Command adamant-dataset generates the labeled training set the paper's
// supervised-learning configurator is built from: it sweeps sampled
// environment combinations (Table 1 x Table 2), runs every candidate
// transport protocol over each, and labels the winner under both composite
// QoS metrics. The paper's training set had 394 inputs (197 environments x
// 2 metrics); -combos 197 reproduces that shape.
//
// Runs are spread over a worker pool (-jobs, default: all CPUs); the
// output CSV is byte-identical at any worker count.
//
//	adamant-dataset -o data/training.csv -combos 197 -jobs 8 -v
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"adamant/internal/core"
	"adamant/internal/experiment"
)

func main() {
	var (
		out     = flag.String("o", "training.csv", "output CSV path")
		combos  = flag.Int("combos", 197, "environment combinations to sample (x2 metrics = rows)")
		runs    = flag.Int("runs", 3, "runs per (environment, protocol)")
		samples = flag.Int("samples", 600, "samples per run")
		seed    = flag.Int64("seed", 1, "sampling and simulation seed")
		jobs    = flag.Int("jobs", 0, "parallel workers (0 = all CPUs)")
		verbose = flag.Bool("v", false, "per-combo progress logging")
	)
	flag.Parse()
	progress := func(string, ...any) {}
	if *verbose {
		progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	// Run-level progress with ETA. The runner serializes OnRun calls, so
	// this needs no locking of its own.
	runsPerCombo := core.NumCandidates * *runs
	start := time.Now()
	onRun := func(done, total int) {
		elapsed := time.Since(start)
		eta := time.Duration(float64(elapsed) / float64(done) * float64(total-done))
		fmt.Fprintf(os.Stderr, "\rdataset: combo %d/%d (%d/%d runs, %.0f%%) elapsed %s eta %s   ",
			done/runsPerCombo, total/runsPerCombo, done, total,
			100*float64(done)/float64(total),
			elapsed.Round(time.Second), eta.Round(time.Second))
		if done == total {
			fmt.Fprintln(os.Stderr)
		}
	}
	rows, err := experiment.BuildDataset(experiment.DatasetOptions{
		Combos: *combos, Runs: *runs, Samples: *samples, Seed: *seed, Jobs: *jobs,
		Progress: progress, OnRun: onRun,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "adamant-dataset:", err)
		os.Exit(1)
	}
	if err := experiment.WriteCSVFile(*out, rows); err != nil {
		fmt.Fprintln(os.Stderr, "adamant-dataset:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d rows to %s\n", len(rows), *out)
}
