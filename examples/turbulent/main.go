// Turbulent: runtime autonomic adaptation — the paper's future-work section
// made concrete ("When the system detects environmental changes (e.g.,
// increase in number of receivers or increase in sending rate), supervised
// machine learning can provide guidance to support QoS for the new
// configuration").
//
// A datacenter starts small: 3 subscribers on a pc3000/1Gb cloud at 25 Hz,
// and ADAMANT configures Ricochet. Mid-mission the disaster-recovery
// operation scales out — 12 more fusion applications subscribe and the
// sending rate drops to 10 Hz for wide-area scanning. The adaptation
// manager notices the drift, re-queries the (constant-time) selector, and
// swaps the transport for the next mission phase without operator action.
//
//	go run ./examples/turbulent
package main

import (
	"fmt"
	"log"
	"time"

	"adamant/internal/core"
	"adamant/internal/dds"
	"adamant/internal/env"
	"adamant/internal/netem"
	"adamant/internal/sim"
	"adamant/internal/transport"
)

// missionSelector encodes the trained knowledge base's decision boundary
// for the pc850-class degraded cloud this mission runs on: NAKcast for
// small reader sets, Ricochet once lateral repair has enough peers to pay
// off. (examples/autoconfig shows the same flow with a real trained ANN.)
type missionSelector struct{}

func (missionSelector) Select(f core.Features) (transport.Spec, error) {
	if f.Receivers >= 10 {
		return core.Candidates()[4], nil // ricochet(c=3,r=4)
	}
	return core.Candidates()[3], nil // nakcast(timeout=1ms)
}

func main() {
	kernel := sim.New(99)
	e := env.NewSim(kernel)

	phase := 1
	obs := core.Observation{Receivers: 3, RateHz: 25, LossPct: 2}
	initial := core.Decision{
		Features: core.FeaturesFor(netem.PC850, netem.Mbps100, dds.ImplB,
			obs.LossPct, obs.Receivers, obs.RateHz, core.MetricReLate2),
		Spec: core.Candidates()[3],
	}
	fmt.Printf("[t=%6s] phase %d: %d receivers @ %gHz -> boot transport %s\n",
		dur(kernel), phase, obs.Receivers, obs.RateHz, initial.Spec)

	adaptor, err := core.NewAdaptor(e, missionSelector{}, initial,
		func() core.Observation { return obs },
		func(d core.Decision) {
			fmt.Printf("[t=%6s] ADAPT: environment drifted to %d receivers @ %gHz "+
				"-> switching transport to %s\n",
				dur(kernel), d.Features.Receivers, d.Features.RateHz, d.Spec)
		},
		core.AdaptorOptions{
			Interval: 500 * time.Millisecond,
			Cooldown: 2 * time.Second,
		})
	if err != nil {
		log.Fatal(err)
	}
	defer adaptor.Close()

	// Mission timeline.
	e.After(5*time.Second, func() {
		phase = 2
		obs = core.Observation{Receivers: 15, RateHz: 10, LossPct: 2}
		fmt.Printf("[t=%6s] phase %d: scale-out — 12 more fusion apps subscribe, "+
			"rate drops to %gHz for wide-area scanning\n", dur(kernel), phase, obs.RateHz)
	})
	e.After(12*time.Second, func() {
		phase = 3
		obs.LossPct = 4.5 // storm degrades the satellite uplink
		fmt.Printf("[t=%6s] phase %d: uplink degradation — observed loss rises to %g%%\n",
			dur(kernel), phase, obs.LossPct)
	})

	if err := kernel.RunFor(20 * time.Second); err != nil {
		log.Fatal(err)
	}
	st := adaptor.Stats()
	fmt.Printf("\nadaptation manager: %d checks, %d drift triggers, %d reconfigurations, %d suppressed by cooldown\n",
		st.Checks, st.Triggers, st.Reconfigures, st.Suppressed)
	fmt.Printf("final configuration: for %s\n", adaptor.Current())

	// The adaptation decision latency is the same bounded ANN/selector
	// query measured in Figures 20/21 — which is why the paper argues this
	// style of in-mission adaptation is viable for DRE systems.
}

func dur(k *sim.Kernel) time.Duration { return k.Now().Sub(sim.Epoch).Round(100 * time.Millisecond) }
