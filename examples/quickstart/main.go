// Quickstart: the smallest end-to-end ADAMANT program.
//
// It builds a three-node simulated cloud (one publisher, two subscribers),
// lets ADAMANT pick the transport protocol for the environment, publishes a
// handful of samples through the DDS-style API, and prints what arrived.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"adamant/internal/core"
	"adamant/internal/dds"
	"adamant/internal/env"
	"adamant/internal/netem"
	"adamant/internal/sim"
	"adamant/internal/transport"
	"adamant/internal/transport/protocols"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. A simulated cloud environment: fast machines on a gigabit LAN,
	//    with 2% end-host loss at the subscribers.
	kernel := sim.New(42)
	e := env.NewSim(kernel)
	network, err := netem.New(e, netem.Config{Bandwidth: netem.Gbps1})
	if err != nil {
		return err
	}
	pub := network.AddNode(netem.PC3000)
	subA := network.AddNode(netem.PC3000)
	subB := network.AddNode(netem.PC3000)
	subA.SetLoss(2)
	subB.SetLoss(2)

	// 2. ADAMANT decides the transport. Here we use the exact-match table
	//    selector seeded with the environment we know we built; a trained
	//    neural network does this for unknown environments (see the
	//    autoconfig example).
	features := core.FeaturesFor(netem.PC3000, netem.Gbps1, dds.ImplB,
		2 /*loss%*/, 2 /*receivers*/, 50 /*Hz*/, core.MetricReLate2)
	table := core.NewTableSelector()
	table.Put(features, core.Candidates()[4]) // ricochet(c=3,r=4) wins on fast hardware
	spec, err := table.Select(features)
	if err != nil {
		return err
	}
	fmt.Printf("ADAMANT selected transport: %s\n\n", spec)

	// 3. DDS-style pub/sub on top of the chosen transport.
	reg := protocols.MustRegistry()
	receivers := transport.StaticReceivers(subA.Local(), subB.Local())
	mkParticipant := func(node *netem.Node) (*dds.DomainParticipant, error) {
		return dds.NewParticipant(dds.ParticipantConfig{
			Env: e, Endpoint: node, Registry: reg, Transport: spec,
			Impl: dds.ImplB, SenderID: pub.Local(), Receivers: receivers,
		})
	}
	pubP, err := mkParticipant(pub)
	if err != nil {
		return err
	}
	topic, err := pubP.CreateTopic("sensors/temperature", dds.TopicQoS{Reliability: dds.Reliable})
	if err != nil {
		return err
	}
	writer, err := pubP.CreateDataWriter(topic, dds.WriterQoS{Reliability: dds.Reliable})
	if err != nil {
		return err
	}
	for i, node := range []*netem.Node{subA, subB} {
		name := string(rune('A' + i))
		p, err := mkParticipant(node)
		if err != nil {
			return err
		}
		rt, err := p.CreateTopic("sensors/temperature", dds.TopicQoS{Reliability: dds.Reliable})
		if err != nil {
			return err
		}
		if _, err := p.CreateDataReader(rt, dds.ReaderQoS{Reliability: dds.Reliable},
			dds.ListenerFuncs{Data: func(s dds.Sample) {
				fmt.Printf("subscriber %s: %-12q seq=%d latency=%v recovered=%v\n",
					name, s.Data, s.Info.Seq, s.Info.Latency().Round(time.Microsecond),
					s.Info.Recovered)
			}}); err != nil {
			return err
		}
	}

	// 4. Publish ten samples at 50 Hz and run the virtual clock.
	for i := 0; i < 10; i++ {
		i := i
		e.After(time.Duration(i)*20*time.Millisecond, func() {
			if err := writer.Write([]byte(fmt.Sprintf("%.1fC", 20+float64(i)/2))); err != nil {
				log.Println("write:", err)
			}
		})
	}
	if err := kernel.RunFor(5 * time.Second); err != nil {
		return err
	}
	fmt.Printf("\npublished %d samples; simulation processed %d events in virtual time\n",
		writer.Seq(), kernel.Fired())
	return nil
}
