// Search-and-rescue (SAR): the paper's motivating scenario (Section 2).
//
// An ad-hoc datacenter stood up after a regional disaster fuses two
// correlated event streams — UAV infrared scans and infrastructure-camera
// video frames — to detect survivors. Fusion only works when matching
// infrared and video samples arrive within a tight correlation window;
// late or missing samples cause false negatives (missed survivors).
//
// The cloud provisions whatever hardware it has. This example runs the SAME
// SAR workload on two provisioned environments — fast (pc3000 + 1 Gb) and
// degraded (pc850 + 100 Mb) — and, for each, compares the fusion hit rate
// when the middleware transport is chosen by ADAMANT versus a fixed
// one-size-fits-all configuration. It is Figure 1/2 of the paper turned
// into runnable code.
//
//	go run ./examples/sar
package main

import (
	"fmt"
	"log"
	"time"

	"adamant/internal/core"
	"adamant/internal/dds"
	"adamant/internal/env"
	"adamant/internal/netem"
	"adamant/internal/sim"
	"adamant/internal/transport"
	"adamant/internal/transport/protocols"
	"adamant/internal/wire"
)

const (
	rateHz        = 25
	samples       = 500
	lossPct       = 5
	fusionWindow  = 30 * time.Millisecond // IR and video must match this closely
	fusionReaders = 3                     // survivor detection, fire detection, damage survey
)

func main() {
	platforms := []struct {
		name    string
		machine netem.Machine
		bw      netem.Bandwidth
	}{
		{"fast cloud (pc3000, 1Gb)", netem.PC3000, netem.Gbps1},
		{"degraded cloud (pc850, 100Mb)", netem.PC850, netem.Mbps100},
	}
	fixed := core.Candidates()[4] // ricochet(c=3,r=4): great on fast hardware...

	for _, plat := range platforms {
		fmt.Printf("=== %s ===\n", plat.name)

		// ADAMANT's recommendation for this environment (the trained
		// knowledge base's decision boundary; examples/autoconfig shows
		// the full probe -> ANN flow).
		adamantChoice := core.Candidates()[3] // nakcast(timeout=1ms)
		if plat.machine.Name == "pc3000" {
			adamantChoice = core.Candidates()[4] // ricochet(c=3,r=4)
		}

		for _, cfg := range []struct {
			label string
			spec  transport.Spec
		}{
			{"fixed    " + fixed.String(), fixed},
			{"ADAMANT  " + adamantChoice.String(), adamantChoice},
		} {
			hits, misses, avgSkew, err := runSAR(plat.machine, plat.bw, cfg.spec)
			if err != nil {
				log.Fatal(err)
			}
			rate := 100 * float64(hits) / float64(hits+misses)
			fmt.Printf("  %-32s fusion hits %4d/%4d (%.1f%%)  mean stream skew %v\n",
				cfg.label, hits, hits+misses, rate, avgSkew.Round(time.Microsecond))
		}
		fmt.Println()
	}
	fmt.Println("ADAMANT matches the transport to the provisioned resources; a fixed")
	fmt.Println("configuration is only right on the hardware it was tuned for.")
}

// runSAR publishes correlated IR and video streams through the DDS stack on
// the given platform and fuses them at the survivor-detection application.
func runSAR(machine netem.Machine, bw netem.Bandwidth, spec transport.Spec) (hits, misses int, avgSkew time.Duration, err error) {
	kernel := sim.New(7)
	e := env.NewSim(kernel)
	network, err := netem.New(e, netem.Config{Bandwidth: bw})
	if err != nil {
		return 0, 0, 0, err
	}
	uav := network.AddNode(machine)    // publishes infrared scans
	camera := network.AddNode(machine) // publishes video frames
	var fusionNodes []*netem.Node
	var fusionIDs []wire.NodeID
	for i := 0; i < fusionReaders; i++ {
		n := network.AddNode(machine)
		n.SetLoss(lossPct)
		fusionNodes = append(fusionNodes, n)
		fusionIDs = append(fusionIDs, n.Local())
	}
	reg := protocols.MustRegistry()
	receivers := transport.StaticReceivers(fusionIDs...)

	participant := func(node *netem.Node, sender wire.NodeID) (*dds.DomainParticipant, error) {
		return dds.NewParticipant(dds.ParticipantConfig{
			Env: e, Endpoint: node, Registry: reg, Transport: spec,
			Impl: dds.ImplB, SenderID: sender, Receivers: receivers,
		})
	}

	// Publishers.
	uavP, err := participant(uav, uav.Local())
	if err != nil {
		return 0, 0, 0, err
	}
	irTopic, err := uavP.CreateTopic("sar/infrared", dds.TopicQoS{Reliability: dds.Reliable})
	if err != nil {
		return 0, 0, 0, err
	}
	irWriter, err := uavP.CreateDataWriter(irTopic, dds.WriterQoS{Reliability: dds.Reliable})
	if err != nil {
		return 0, 0, 0, err
	}
	camP, err := participant(camera, camera.Local())
	if err != nil {
		return 0, 0, 0, err
	}
	vidTopic, err := camP.CreateTopic("sar/video", dds.TopicQoS{Reliability: dds.Reliable})
	if err != nil {
		return 0, 0, 0, err
	}
	vidWriter, err := camP.CreateDataWriter(vidTopic, dds.WriterQoS{Reliability: dds.Reliable})
	if err != nil {
		return 0, 0, 0, err
	}

	// Every fusion node subscribes to both streams (one participant per
	// node; NAKs auto-target each topic's actual writer, and Ricochet's
	// lateral repairs flow among all subscribing datacenter nodes). The
	// primary survivor-detection application on fusionNodes[0] correlates
	// IR scan k with video frame k.
	irArrival := make(map[uint64]time.Time)
	vidArrival := make(map[uint64]time.Time)
	for i, node := range fusionNodes {
		primary := i == 0
		p, err := participant(node, uav.Local())
		if err != nil {
			return 0, 0, 0, err
		}
		fuseIR, err := p.CreateTopic("sar/infrared", dds.TopicQoS{Reliability: dds.Reliable})
		if err != nil {
			return 0, 0, 0, err
		}
		if _, err := p.CreateDataReader(fuseIR, dds.ReaderQoS{Reliability: dds.Reliable},
			dds.ListenerFuncs{Data: func(s dds.Sample) {
				if primary {
					irArrival[s.Info.Seq] = s.Info.ReceivedAt
				}
			}}); err != nil {
			return 0, 0, 0, err
		}
		fuseVid, err := p.CreateTopic("sar/video", dds.TopicQoS{Reliability: dds.Reliable})
		if err != nil {
			return 0, 0, 0, err
		}
		if _, err := p.CreateDataReader(fuseVid, dds.ReaderQoS{Reliability: dds.Reliable},
			dds.ListenerFuncs{Data: func(s dds.Sample) {
				if primary {
					vidArrival[s.Info.Seq] = s.Info.ReceivedAt
				}
			}}); err != nil {
			return 0, 0, 0, err
		}
	}

	// Drive both streams at rateHz.
	period := time.Second / rateHz
	for i := 0; i < samples; i++ {
		i := i
		e.After(time.Duration(i)*period, func() {
			if err := irWriter.Write([]byte(fmt.Sprintf("ir-scan-%04d", i))); err != nil {
				log.Println("ir write:", err)
			}
			if err := vidWriter.Write([]byte(fmt.Sprintf("vid-frame-%04d", i))); err != nil {
				log.Println("vid write:", err)
			}
		})
	}
	if err := kernel.RunFor(time.Duration(samples)*period + 30*time.Second); err != nil {
		return 0, 0, 0, err
	}

	// Fuse: a "hit" is a pair whose arrivals are both present and within
	// the correlation window.
	var skewTotal time.Duration
	for k := uint64(1); k <= samples; k++ {
		ir, okIR := irArrival[k]
		vid, okVid := vidArrival[k]
		if !okIR || !okVid {
			misses++
			continue
		}
		skew := ir.Sub(vid)
		if skew < 0 {
			skew = -skew
		}
		if skew <= fusionWindow {
			hits++
			skewTotal += skew
		} else {
			misses++
		}
	}
	if hits > 0 {
		avgSkew = skewTotal / time.Duration(hits)
	}
	return hits, misses, avgSkew, nil
}
