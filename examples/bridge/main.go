// Bridge: conventional cloud pub/sub meets the QoS-enabled DRE stack.
//
// The paper positions JMS/WS-Notification-class brokers as what clouds
// offer out of the box — easy subject-based routing, but no fine-grained
// QoS or transport configurability. Real deployments therefore front DRE
// datacenters with a gateway: commodity feeds arrive over the broker,
// and a bridge republishes them into the ADAMANT-configured domain.
//
// This example runs, over real sockets on loopback:
//
//	city cameras --TCP--> NATS-style broker --bridge--> ANT transport --UDP--> fusion apps
//
// The bridge subscribes to the wildcard subject "city.cameras.>" and
// republishes every frame through the ADAMANT-selected transport protocol.
//
//	go run ./examples/bridge
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"adamant/internal/broker"
	"adamant/internal/core"
	"adamant/internal/env"
	"adamant/internal/transport"
	"adamant/internal/transport/protocols"
	"adamant/internal/udpnet"
	"adamant/internal/wire"
)

const (
	cameras        = 3
	framesPerCam   = 10
	fusionReaders  = 2
	bridgeStreamID = 1
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// --- The commodity side: a broker and some cameras. ---
	srv := broker.NewServer()
	if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
		return err
	}
	defer srv.Shutdown()
	addr := srv.Addr().String()
	fmt.Printf("broker up at %s\n", addr)

	// --- The DRE side: ADAMANT picks the transport, udpnet carries it. ---
	spec := core.Candidates()[3] // nakcast(timeout=1ms); see examples/autoconfig for the ANN flow
	fmt.Printf("ADAMANT-selected transport for the fusion domain: %s\n\n", spec)
	reg := protocols.MustRegistry()

	envs := make([]*env.RealEnv, fusionReaders+1)
	eps := make([]*udpnet.Endpoint, fusionReaders+1)
	for i := range envs {
		envs[i] = env.NewReal(int64(i + 1))
		ep, err := udpnet.New(envs[i], wire.NodeID(i), "127.0.0.1:0", nil)
		if err != nil {
			return err
		}
		eps[i] = ep
		defer ep.Close()
		defer envs[i].Close()
	}
	for i, ep := range eps {
		for j, other := range eps {
			if i != j {
				ep.SetPeerAddr(wire.NodeID(j), other.LocalAddr())
			}
		}
	}
	receiverIDs := make([]wire.NodeID, fusionReaders)
	for i := range receiverIDs {
		receiverIDs[i] = wire.NodeID(i + 1)
	}
	receivers := transport.StaticReceivers(receiverIDs...)

	// Fusion readers in the DRE domain.
	var mu sync.Mutex
	received := make([]int, fusionReaders)
	for i := 1; i <= fusionReaders; i++ {
		i := i
		onEnv(envs[i], func() {
			if _, err := reg.NewReceiver(spec, transport.Config{
				Env: envs[i], Endpoint: eps[i], Stream: bridgeStreamID, SenderID: 0,
				Receivers: receivers,
				Deliver: func(d transport.Delivery) {
					mu.Lock()
					received[i-1]++
					mu.Unlock()
				},
			}); err != nil {
				log.Println("receiver:", err)
			}
		})
	}

	// The bridge: broker subscriber -> ANT sender on node 0.
	var sender transport.Sender
	onEnv(envs[0], func() {
		var err error
		sender, err = reg.NewSender(spec, transport.Config{
			Env: envs[0], Endpoint: eps[0], Stream: bridgeStreamID, Receivers: receivers,
		})
		if err != nil {
			log.Println("sender:", err)
		}
	})
	if sender == nil {
		return fmt.Errorf("bridge sender construction failed")
	}
	gw, err := broker.Dial(addr)
	if err != nil {
		return err
	}
	defer gw.Close()
	var bridged int
	if _, err := gw.Subscribe("city.cameras.>", func(m broker.Msg) {
		payload := append([]byte(m.Subject+"|"), m.Data...)
		envs[0].Post(func() {
			if err := sender.Publish(payload); err != nil {
				log.Println("bridge publish:", err)
			}
		})
		mu.Lock()
		bridged++
		mu.Unlock()
	}); err != nil {
		return err
	}
	if err := gw.Flush(time.Second); err != nil {
		return err
	}

	// Cameras publish frames to the broker.
	for cam := 0; cam < cameras; cam++ {
		client, err := broker.Dial(addr)
		if err != nil {
			return err
		}
		defer client.Close()
		subject := fmt.Sprintf("city.cameras.cam%d", cam)
		for f := 0; f < framesPerCam; f++ {
			if err := client.Publish(subject, []byte(fmt.Sprintf("frame-%02d", f))); err != nil {
				return err
			}
		}
		if err := client.Flush(time.Second); err != nil {
			return err
		}
	}

	// Wait for everything to traverse broker -> bridge -> transport.
	want := cameras * framesPerCam
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		done := bridged == want && received[0] == want && received[1] == want
		mu.Unlock()
		if done {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	fmt.Printf("cameras published:  %d frames over TCP to the broker\n", want)
	fmt.Printf("bridge republished: %d frames into the DRE domain (%s)\n", bridged, spec)
	for i, n := range received {
		fmt.Printf("fusion reader %d:    %d frames delivered over UDP\n", i+1, n)
	}
	st := srv.Stats()
	fmt.Printf("\nbroker stats: %d connections, %d msgs in, %d msgs out\n",
		st.Connections, st.MsgsIn, st.MsgsOut)
	return nil
}

func onEnv(e *env.RealEnv, fn func()) {
	e.Post(fn)
	e.Barrier()
}
