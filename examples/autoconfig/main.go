// Autoconfig: the complete ADAMANT startup loop on a real machine.
//
//  1. Probe this host's computing and networking resources
//     (/proc/cpuinfo, NIC speeds — the paper's ethtool step).
//
//  2. Train the supervised-learning knowledge base from the labeled
//     experiment dataset (data/training.csv, regenerable with
//     adamant-dataset), or load a saved network.
//
//  3. Query the neural network for the transport protocol matching the
//     probed environment + application parameters — and time the decision.
//
//  4. Stand the chosen protocol up over REAL UDP sockets on loopback and
//     push traffic through it.
//
//     go run ./examples/autoconfig [-dataset data/training.csv]
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	"adamant/internal/ann"
	"adamant/internal/core"
	"adamant/internal/dds"
	"adamant/internal/env"
	"adamant/internal/experiment"
	"adamant/internal/probe"
	"adamant/internal/transport"
	"adamant/internal/transport/protocols"
	"adamant/internal/udpnet"
	"adamant/internal/wire"
)

func main() {
	dataset := flag.String("dataset", "data/training.csv", "labeled training set CSV")
	flag.Parse()
	if err := run(*dataset); err != nil {
		log.Fatal(err)
	}
}

func run(datasetPath string) error {
	// --- 1. Probe the environment. ---
	info, err := probe.RealSource{}.Probe()
	if err != nil {
		return fmt.Errorf("probing host: %w", err)
	}
	fmt.Printf("probed environment: %s\n", info)

	// --- 2. Train the knowledge base. ---
	rows, err := experiment.ReadCSVFile(datasetPath)
	if err != nil {
		return fmt.Errorf("loading training set (run adamant-dataset first): %w", err)
	}
	ds := experiment.ToANNDataset(rows)
	net, err := ann.New(ann.Config{
		Layers: []int{core.NumInputs, 24, core.NumCandidates}, Seed: 11,
	})
	if err != nil {
		return err
	}
	t0 := time.Now()
	res, err := net.Train(ds, ann.TrainOptions{MaxEpochs: 3000, DesiredError: 1e-4})
	if err != nil {
		return err
	}
	acc, err := net.Accuracy(ds)
	if err != nil {
		return err
	}
	fmt.Printf("trained ANN on %d environments in %v (epochs=%d, accuracy=%.1f%%)\n",
		ds.Len(), time.Since(t0).Round(time.Millisecond), res.Epochs, 100*acc)

	// --- 3. Decide. ---
	selector, err := core.NewANNSelector(net)
	if err != nil {
		return err
	}
	ctl, err := core.NewController(probe.StaticSource{Info: info}, selector, core.AppParams{
		Receivers: 3, RateHz: 25, LossPct: 2, Impl: dds.ImplB, Metric: core.MetricReLate2,
	})
	if err != nil {
		return err
	}
	decision, err := ctl.Decide()
	if err != nil {
		return err
	}
	fmt.Printf("environment features: %s\n", decision.Features)
	fmt.Printf("ADAMANT decision: %s (select time %v — bounded, single forward pass)\n",
		decision.Spec, decision.SelectTime)

	// --- 4. Run it over real UDP sockets. ---
	return runLive(decision.Spec)
}

// runLive stands up 1 writer + 3 readers over loopback UDP with the chosen
// transport and publishes two seconds of 25 Hz traffic.
func runLive(spec transport.Spec) error {
	fmt.Printf("\nstanding up live loopback cluster with %s...\n", spec)
	const readers = 3
	reg := protocols.MustRegistry()

	envs := make([]*env.RealEnv, readers+1)
	eps := make([]*udpnet.Endpoint, readers+1)
	for i := range envs {
		envs[i] = env.NewReal(int64(i + 1))
		ep, err := udpnet.New(envs[i], wire.NodeID(i), "127.0.0.1:0", nil)
		if err != nil {
			return err
		}
		eps[i] = ep
	}
	defer func() {
		for i := range envs {
			eps[i].Close()
			envs[i].Close()
		}
	}()
	for i, ep := range eps {
		for j, other := range eps {
			if i != j {
				ep.SetPeerAddr(wire.NodeID(j), other.LocalAddr())
			}
		}
	}
	receiverIDs := make([]wire.NodeID, readers)
	for i := range receiverIDs {
		receiverIDs[i] = wire.NodeID(i + 1)
	}
	receivers := transport.StaticReceivers(receiverIDs...)

	var sender transport.Sender
	onEnv(envs[0], func() {
		var err error
		sender, err = reg.NewSender(spec, transport.Config{
			Env: envs[0], Endpoint: eps[0], Stream: 1, Receivers: receivers,
		})
		if err != nil {
			log.Println("sender:", err)
		}
	})
	if sender == nil {
		return fmt.Errorf("sender construction failed")
	}
	var mu sync.Mutex
	var delivered int
	var totalLatency time.Duration
	for i := 1; i <= readers; i++ {
		i := i
		onEnv(envs[i], func() {
			if _, err := reg.NewReceiver(spec, transport.Config{
				Env: envs[i], Endpoint: eps[i], Stream: 1, SenderID: 0,
				Receivers: receivers,
				Deliver: func(d transport.Delivery) {
					mu.Lock()
					delivered++
					totalLatency += d.Latency()
					mu.Unlock()
				},
			}); err != nil {
				log.Println("receiver:", err)
			}
		})
	}

	const n = 50
	for k := 0; k < n; k++ {
		payload := []byte(fmt.Sprintf("live-sample-%02d", k))
		envs[0].Post(func() {
			if err := sender.Publish(payload); err != nil {
				log.Println("publish:", err)
			}
		})
		time.Sleep(40 * time.Millisecond) // 25 Hz
	}
	time.Sleep(300 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	avg := time.Duration(0)
	if delivered > 0 {
		avg = totalLatency / time.Duration(delivered)
	}
	fmt.Printf("live run: %d/%d deliveries across %d readers, mean latency %v\n",
		delivered, n*readers, readers, avg.Round(time.Microsecond))
	return nil
}

func onEnv(e *env.RealEnv, fn func()) {
	e.Post(fn)
	e.Barrier()
}
