GO ?= go

.PHONY: tier1 race bench check

# tier1 is the gating check: vet, build, and the full test suite.
tier1:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test ./...

# race runs the concurrency-sensitive packages (the parallel experiment
# engine, the simulation kernel, and the transports) under the race
# detector.
race:
	$(GO) test -race ./internal/experiment ./internal/sim ./internal/transport/...

# bench runs the allocation-sensitive micro benchmarks with allocation
# counters.
bench:
	$(GO) test -bench 'BenchmarkSchedule' -benchmem -run NONE ./internal/sim/
	$(GO) test -bench 'BenchmarkPacket' -benchmem -run NONE ./internal/wire/
	$(GO) test -bench 'BenchmarkRunMany|BenchmarkEndToEndSim' -benchmem -benchtime 3x -run NONE .

check: tier1 race
