GO ?= go

.PHONY: tier1 race bench bench-ann bench-sim bench-broker check fuzz-smoke chaos

# tier1 is the gating check: vet, build, and the full test suite.
tier1:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test ./...

# race runs the concurrency-sensitive packages (the parallel experiment
# engine including the sharded-engine paths, the parallel ANN trainer, the
# simulation kernel including the sharded conservative-time engine, the
# transports including the crucible matrix and its sharded cells, the
# broker, membership, the chaos engine, the adaptation loop (core + dds
# hot-swap path), and the integration failure suite) under the race
# detector.
race:
	$(GO) test -race ./internal/experiment ./internal/ann/... ./internal/sim/... \
		./internal/transport/... ./internal/broker/... ./internal/membership \
		./internal/netem/... ./internal/core/... ./internal/dds/... \
		./internal/integration

# fuzz-smoke gives every fuzz target a short budget; CI runs this to keep
# the corpora honest without burning minutes.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -run NONE -fuzz FuzzDecode$$ -fuzztime $(FUZZTIME) ./internal/wire
	$(GO) test -run NONE -fuzz FuzzDecodeSymbol -fuzztime $(FUZZTIME) ./internal/wire
	$(GO) test -run NONE -fuzz FuzzParseSpec -fuzztime $(FUZZTIME) ./internal/transport
	$(GO) test -run NONE -fuzz FuzzFountDecode -fuzztime $(FUZZTIME) ./internal/transport/fountcast
	$(GO) test -run NONE -fuzz FuzzMatch -fuzztime $(FUZZTIME) ./internal/broker
	$(GO) test -run NONE -fuzz FuzzServerCommand -fuzztime $(FUZZTIME) ./internal/broker
	$(GO) test -run NONE -fuzz FuzzRouteCommand -fuzztime $(FUZZTIME) ./internal/broker
	$(GO) test -run NONE -fuzz FuzzLoad -fuzztime $(FUZZTIME) ./internal/ann
	$(GO) test -run NONE -fuzz FuzzSchedule -fuzztime $(FUZZTIME) ./internal/netem/chaos
	$(GO) test -run NONE -fuzz FuzzShardedKernel -fuzztime $(FUZZTIME) ./internal/netem/chaos
	$(GO) test -run NONE -fuzz FuzzKernelOrder -fuzztime $(FUZZTIME) ./internal/sim
	$(GO) test -run NONE -fuzz FuzzRebind -fuzztime $(FUZZTIME) ./internal/transport/conformance

# chaos runs the full transport crucible from the command line.
chaos:
	$(GO) run ./cmd/adamant-verify -chaos

# bench runs the allocation-sensitive micro benchmarks with allocation
# counters.
bench:
	$(GO) test -bench 'BenchmarkSchedule' -benchmem -run NONE ./internal/sim/
	$(GO) test -bench 'BenchmarkPacket' -benchmem -run NONE ./internal/wire/
	$(GO) test -bench 'BenchmarkRunMany|BenchmarkEndToEndSim' -benchmem -benchtime 3x -run NONE .

# bench-ann asserts the zero-alloc inference kernels (-benchmem) and
# regenerates BENCH_ann.json, the sub-10us query-latency report.
bench-ann:
	$(GO) test -bench 'BenchmarkRun|BenchmarkTrainEpoch' -benchmem -run NONE ./internal/ann/
	$(GO) test -bench 'BenchmarkANN' -benchmem -benchtime 100x -run NONE .
	$(GO) run ./cmd/adamant-bench -ann -dataset data/training.csv -out BENCH_ann.json

# bench-sim asserts the zero-alloc scheduler hot paths (-benchmem) and
# regenerates BENCH_sim.json, the event-core throughput report comparing
# the wheel+heap scheduler against the container/heap baseline, plus the
# shard-scaling storm table (group sizes 50-1000 at 1 and 8 workers, with
# intermediate widths for the curve).
bench-sim:
	$(GO) test -bench 'BenchmarkSchedule' -benchmem -run NONE ./internal/sim/
	$(GO) test -bench . -benchmem -benchtime 2x -run NONE ./internal/sim/bench/
	$(GO) run ./cmd/adamant-bench -sim -shard-workers 1,2,4,8 -shard-groups 50,200,500,1000 -out BENCH_sim.json

# bench-broker asserts the zero-alloc publish and delivery paths, the
# wire byte-identity of the vectored data plane, and the >=2x
# routing+delivery speedup over the seed broker at 10k subscriptions,
# then regenerates BENCH_broker.json: the open-loop load-latency curve
# (offered rate walked to the saturation knee on both data planes) plus
# the fan-out sweep (group size x payload size) and the seed comparison.
bench-broker:
	$(GO) test -run 'TestPublishZeroAlloc|TestDeliveryAllocs|TestWireByteIdentityAcrossDataPlanes|TestFanoutSpeedup' -v ./internal/broker/...
	$(GO) test -bench 'BenchmarkFanout' -benchtime 200x -run NONE ./internal/broker/bench/
	$(GO) run ./cmd/adamant-fleet -compare -ll -out BENCH_broker.json -v

check: tier1 race
