GO ?= go

.PHONY: tier1 race bench bench-ann check

# tier1 is the gating check: vet, build, and the full test suite.
tier1:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test ./...

# race runs the concurrency-sensitive packages (the parallel experiment
# engine, the parallel ANN trainer, the simulation kernel, and the
# transports) under the race detector.
race:
	$(GO) test -race ./internal/experiment ./internal/ann/... ./internal/sim ./internal/transport/...

# bench runs the allocation-sensitive micro benchmarks with allocation
# counters.
bench:
	$(GO) test -bench 'BenchmarkSchedule' -benchmem -run NONE ./internal/sim/
	$(GO) test -bench 'BenchmarkPacket' -benchmem -run NONE ./internal/wire/
	$(GO) test -bench 'BenchmarkRunMany|BenchmarkEndToEndSim' -benchmem -benchtime 3x -run NONE .

# bench-ann asserts the zero-alloc inference kernels (-benchmem) and
# regenerates BENCH_ann.json, the sub-10us query-latency report.
bench-ann:
	$(GO) test -bench 'BenchmarkRun|BenchmarkTrainEpoch' -benchmem -run NONE ./internal/ann/
	$(GO) test -bench 'BenchmarkANN' -benchmem -benchtime 100x -run NONE .
	$(GO) run ./cmd/adamant-bench -ann -dataset data/training.csv -out BENCH_ann.json

check: tier1 race
