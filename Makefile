GO ?= go

.PHONY: tier1 race bench bench-ann check fuzz-smoke chaos

# tier1 is the gating check: vet, build, and the full test suite.
tier1:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test ./...

# race runs the concurrency-sensitive packages (the parallel experiment
# engine, the parallel ANN trainer, the simulation kernel, the transports
# including the crucible matrix, the broker, membership, the chaos engine,
# and the integration failure suite) under the race detector.
race:
	$(GO) test -race ./internal/experiment ./internal/ann/... ./internal/sim \
		./internal/transport/... ./internal/broker ./internal/membership \
		./internal/netem/... ./internal/integration

# fuzz-smoke gives every fuzz target a short budget; CI runs this to keep
# the corpora honest without burning minutes.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -run NONE -fuzz FuzzDecode$$ -fuzztime $(FUZZTIME) ./internal/wire
	$(GO) test -run NONE -fuzz FuzzParseSpec -fuzztime $(FUZZTIME) ./internal/transport
	$(GO) test -run NONE -fuzz FuzzMatch -fuzztime $(FUZZTIME) ./internal/broker
	$(GO) test -run NONE -fuzz FuzzLoad -fuzztime $(FUZZTIME) ./internal/ann
	$(GO) test -run NONE -fuzz FuzzSchedule -fuzztime $(FUZZTIME) ./internal/netem/chaos

# chaos runs the full transport crucible from the command line.
chaos:
	$(GO) run ./cmd/adamant-verify -chaos

# bench runs the allocation-sensitive micro benchmarks with allocation
# counters.
bench:
	$(GO) test -bench 'BenchmarkSchedule' -benchmem -run NONE ./internal/sim/
	$(GO) test -bench 'BenchmarkPacket' -benchmem -run NONE ./internal/wire/
	$(GO) test -bench 'BenchmarkRunMany|BenchmarkEndToEndSim' -benchmem -benchtime 3x -run NONE .

# bench-ann asserts the zero-alloc inference kernels (-benchmem) and
# regenerates BENCH_ann.json, the sub-10us query-latency report.
bench-ann:
	$(GO) test -bench 'BenchmarkRun|BenchmarkTrainEpoch' -benchmem -run NONE ./internal/ann/
	$(GO) test -bench 'BenchmarkANN' -benchmem -benchtime 100x -run NONE .
	$(GO) run ./cmd/adamant-bench -ann -dataset data/training.csv -out BENCH_ann.json

check: tier1 race
