// Package adamant is a from-scratch Go implementation of ADAMANT — the
// ADAptive Middleware And Network Transports platform from "Adapting
// Distributed Real-Time and Embedded Pub/Sub Middleware for Cloud Computing
// Environments" (Hoffert, Schmidt, Gokhale; Middleware 2010) — together
// with every substrate the paper's evaluation depends on: a deterministic
// discrete-event network emulator standing in for Emulab, a DDS-style
// QoS-enabled pub/sub middleware with pluggable transports, the Ricochet
// (lateral error correction) and NAKcast multicast protocols, a FANN-style
// neural network, composite QoS metrics (ReLate2, ReLate2Jit), and the full
// experiment harness that regenerates the paper's Tables 1-2 and
// Figures 4-21.
//
// Start with README.md for the layout, DESIGN.md for the system inventory
// and per-experiment index, and EXPERIMENTS.md for paper-versus-measured
// results. The root package holds the repository-level benchmark suite
// (bench_test.go): one benchmark per paper table and figure.
package adamant

// Version identifies this reproduction release.
const Version = "1.0.0"
