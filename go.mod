module adamant

go 1.23
