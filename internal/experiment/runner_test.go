package experiment

import (
	"bytes"
	"strings"
	"testing"

	"adamant/internal/core"
	"adamant/internal/metrics"
)

// TestRunManyMatchesSerial checks that the worker pool returns exactly what
// sequential Run calls return, in input order, at a width that forces
// interleaving.
func TestRunManyMatchesSerial(t *testing.T) {
	var cfgs []Config
	for i, proto := range []int{0, 3, 4, 5} {
		cfg := Config{Receivers: 2 + i, RateHz: 50, Samples: 150, LossPct: float64(i), Seed: int64(10 + i)}
		cfg.Protocol = core.Candidates()[proto]
		cfgs = append(cfgs, cfg)
	}
	want := make([]metrics.Summary, len(cfgs))
	for i, cfg := range cfgs {
		s, err := Run(cfg)
		if err != nil {
			t.Fatalf("serial run %d: %v", i, err)
		}
		want[i] = s
	}
	got, err := (&Runner{Jobs: 4}).RunMany(cfgs)
	if err != nil {
		t.Fatalf("RunMany: %v", err)
	}
	for i := range cfgs {
		if got[i] != want[i] {
			t.Errorf("config %d: parallel %v != serial %v", i, got[i], want[i])
		}
	}
}

// TestBuildDatasetParallelByteIdentical is the engine's core contract: the
// training-set CSV is byte-for-byte identical whether the combo x candidate
// x run product runs on one worker or eight.
func TestBuildDatasetParallelByteIdentical(t *testing.T) {
	opts := DatasetOptions{Combos: 32, Runs: 1, Samples: 120, Seed: 11}
	serial := opts
	serial.Jobs = 1
	parallel := opts
	parallel.Jobs = 8

	rowsSerial, err := BuildDataset(serial)
	if err != nil {
		t.Fatalf("BuildDataset jobs=1: %v", err)
	}
	rowsParallel, err := BuildDataset(parallel)
	if err != nil {
		t.Fatalf("BuildDataset jobs=8: %v", err)
	}
	var bufSerial, bufParallel bytes.Buffer
	if err := WriteCSV(&bufSerial, rowsSerial); err != nil {
		t.Fatal(err)
	}
	if err := WriteCSV(&bufParallel, rowsParallel); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufSerial.Bytes(), bufParallel.Bytes()) {
		t.Fatalf("dataset CSV differs between jobs=1 and jobs=8:\n--- jobs=1 ---\n%s\n--- jobs=8 ---\n%s",
			bufSerial.String(), bufParallel.String())
	}
}

// TestRunQoSFiguresParallelDeterminism checks the figure data is identical
// at different worker counts.
func TestRunQoSFiguresParallelDeterminism(t *testing.T) {
	run := func(jobs int) *QoSFigures {
		q, err := RunQoSFigures(QoSOptions{Samples: 150, Runs: 2, Seed: 3, Jobs: jobs})
		if err != nil {
			t.Fatalf("RunQoSFigures jobs=%d: %v", jobs, err)
		}
		return q
	}
	serial, parallel := run(1), run(4)
	for key, ss := range serial.data {
		ps := parallel.data[key]
		if len(ps) != len(ss) {
			t.Fatalf("cell %+v: %d runs parallel vs %d serial", key, len(ps), len(ss))
		}
		for i := range ss {
			if ss[i] != ps[i] {
				t.Errorf("cell %+v run %d: parallel %v != serial %v", key, i, ps[i], ss[i])
			}
		}
	}
}

// TestRunManyErrorCancelsPool checks that one failing config propagates its
// error and stops the pool from claiming the rest of the queue.
func TestRunManyErrorCancelsPool(t *testing.T) {
	cfgs := make([]Config, 64)
	for i := range cfgs {
		cfgs[i] = Config{Receivers: 2, RateHz: 50, Samples: 100, Seed: int64(i)}
	}
	cfgs[0].LossPct = 150 // invalid: Validate rejects loss > 100
	var calls int
	r := &Runner{Jobs: 2, Progress: func(done, total int) { calls = done }}
	if _, err := r.RunMany(cfgs); err == nil {
		t.Fatal("RunMany with an invalid config returned nil error")
	} else if !strings.Contains(err.Error(), "run 1 of 64") {
		t.Errorf("error %q does not identify the failing run", err)
	}
	if calls == len(cfgs) {
		t.Errorf("pool ran all %d configs despite the early failure", len(cfgs))
	}
}

// TestRunnerProgressSerialized checks Progress sees every completion with a
// strictly incrementing done count (the runner serializes the callback).
func TestRunnerProgressSerialized(t *testing.T) {
	cfgs := make([]Config, 9)
	for i := range cfgs {
		cfgs[i] = Config{Receivers: 2, RateHz: 100, Samples: 80, Seed: int64(i)}
	}
	var seen []int
	r := &Runner{Jobs: 3, Progress: func(done, total int) {
		if total != len(cfgs) {
			t.Errorf("total = %d, want %d", total, len(cfgs))
		}
		seen = append(seen, done)
	}}
	if _, err := r.RunMany(cfgs); err != nil {
		t.Fatalf("RunMany: %v", err)
	}
	if len(seen) != len(cfgs) {
		t.Fatalf("progress called %d times, want %d", len(seen), len(cfgs))
	}
	for i, d := range seen {
		if d != i+1 {
			t.Fatalf("progress sequence %v is not 1..%d", seen, len(cfgs))
		}
	}
}

// TestRunCandidatesJobsMatchesSerial checks the parallel candidate sweep
// reproduces the serial one.
func TestRunCandidatesJobsMatchesSerial(t *testing.T) {
	cfg := Config{Receivers: 3, RateHz: 25, Samples: 150, LossPct: 3, Seed: 9}
	serial, err := RunCandidates(cfg, 2)
	if err != nil {
		t.Fatalf("RunCandidates: %v", err)
	}
	parallel, err := RunCandidatesJobs(cfg, 2, 4)
	if err != nil {
		t.Fatalf("RunCandidatesJobs: %v", err)
	}
	for i := range serial {
		if serial[i].Spec.String() != parallel[i].Spec.String() {
			t.Fatalf("candidate %d spec mismatch", i)
		}
		for j := range serial[i].Summaries {
			if serial[i].Summaries[j] != parallel[i].Summaries[j] {
				t.Errorf("candidate %d run %d: parallel %v != serial %v",
					i, j, parallel[i].Summaries[j], serial[i].Summaries[j])
			}
		}
	}
}
