package experiment

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result: one paper figure or table.
type Table struct {
	// ID names the paper artifact ("Figure 4", "Table 1", ...).
	ID string
	// Title describes the content.
	Title  string
	Header []string
	Rows   [][]string
	// Note records interpretation help (e.g. "lower is better").
	Note string
}

// Format renders the table as aligned ASCII.
func (t Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Note)
	}
	return b.String()
}

// CSV renders the table as RFC-4180-ish CSV (no embedded quotes expected in
// experiment output).
func (t Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Header, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}
