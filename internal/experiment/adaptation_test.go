package experiment

import (
	"testing"
	"time"

	"adamant/internal/core"
)

// TestAdaptationFigure is the paper's future-work claim made executable: in
// a drifting environment, in-mission adaptation (monitor -> re-select ->
// live Rebind) must do at least as well as the best protocol chosen
// statically up front, and the cost of switching must be measured.
func TestAdaptationFigure(t *testing.T) {
	cfg := AdaptationConfig{Seed: 11, Metric: core.MetricReLate2}
	if testing.Short() {
		cfg.Phases = []DriftPhase{
			{Samples: 300, RateHz: 50, LossPct: 0},
			{Samples: 300, RateHz: 25, LossPct: 5},
		}
	}
	report, err := RunAdaptationFigure(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", report)

	if len(report.Static) != core.NumCandidates {
		t.Fatalf("static rows = %d, want %d", len(report.Static), core.NumCandidates)
	}
	best := report.Static[report.BestStatic]
	for _, row := range report.Static {
		if row.Score < best.Score {
			t.Errorf("BestStatic mis-ranked: %s scored %.1f < %.1f", row.Label, row.Score, best.Score)
		}
	}
	if !report.AdaptiveWins(0.05) {
		t.Errorf("adaptive scored %.1f, best static (%s) %.1f: adaptation lost the drift",
			report.Adaptive.Score, best.Label, best.Score)
	}
	// The default drift is built so the phase winners differ; the adaptor
	// must actually have switched, and the switch cost must be measured.
	if report.PhaseWinners[0].String() != report.PhaseWinners[1].String() {
		if len(report.Switches) == 0 {
			t.Fatal("phase winners differ but the adaptor never switched")
		}
		for i, sw := range report.Switches {
			if sw.Err != nil {
				t.Errorf("switch %d failed: %v", i, sw.Err)
			}
			if sw.ApplyTime <= 0 {
				t.Errorf("switch %d: ApplyTime = %v, want > 0", i, sw.ApplyTime)
			}
		}
		if len(report.DrainLatencyMax) != len(report.Switches) {
			t.Fatalf("drain latencies = %d, switches = %d", len(report.DrainLatencyMax), len(report.Switches))
		}
		for i, d := range report.DrainLatencyMax {
			// Zero is legitimate: an old generation with nothing in flight
			// at the cut is drained the moment it is superseded.
			if d < 0 {
				t.Errorf("superseded generation %d: negative drain latency %v", i, d)
			}
		}
	} else {
		t.Logf("phase winners tied on %s; adaptive ran without switching", report.PhaseWinners[0])
	}
}

// TestAdaptationConfigValidation pins the input checks.
func TestAdaptationConfigValidation(t *testing.T) {
	bad := []AdaptationConfig{
		{Phases: []DriftPhase{{Samples: 0, RateHz: 50}}},
		{Phases: []DriftPhase{{Samples: 10, RateHz: -1}}},
		{Phases: []DriftPhase{{Samples: 10, RateHz: 50, LossPct: 120}}},
	}
	for i, cfg := range bad {
		cfg.fillDefaults()
		if err := cfg.validate(); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

// TestDriftStaticMatchesSteadyPhases sanity-checks the drift harness
// itself: a single-phase "drift" is just a steady run and must deliver
// everything on a reliable transport.
func TestDriftStaticMatchesSteadyPhases(t *testing.T) {
	cfg := AdaptationConfig{
		Seed:   5,
		Phases: []DriftPhase{{Samples: 200, RateHz: 100, LossPct: 2}},
	}
	cfg.fillDefaults()
	res, err := runDrift(cfg, core.Candidates()[3], nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.summary.Delivered != uint64(200*cfg.Receivers) {
		t.Errorf("delivered %d, want %d", res.summary.Delivered, 200*cfg.Receivers)
	}
	if len(res.switches) != 0 {
		t.Errorf("static run recorded switches: %+v", res.switches)
	}
	_ = time.Second
}
