package experiment

import (
	"bytes"
	"strings"
	"testing"

	"adamant/internal/core"
	"adamant/internal/dds"
	"adamant/internal/netem"
)

func TestRunLossless(t *testing.T) {
	s, err := Run(Config{Receivers: 3, RateHz: 50, Samples: 200, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.Reliability() != 100 {
		t.Errorf("lossless reliability = %.2f, want 100", s.Reliability())
	}
	if s.Sent != 600 || s.Delivered != 600 {
		t.Errorf("sent/delivered = %d/%d, want 600/600", s.Sent, s.Delivered)
	}
	if s.AvgLatencyUs <= 0 || s.ReLate2 <= 0 {
		t.Errorf("summary = %+v", s)
	}
	if s.Bytes == 0 {
		t.Error("no bandwidth recorded")
	}
	if s.P50LatencyUs <= 0 || s.P50LatencyUs > s.P95LatencyUs || s.P95LatencyUs > s.P99LatencyUs {
		t.Errorf("latency tail not monotone: p50=%v p95=%v p99=%v",
			s.P50LatencyUs, s.P95LatencyUs, s.P99LatencyUs)
	}
}

func TestRunWithLossStaysReliable(t *testing.T) {
	s, err := Run(Config{Receivers: 3, RateHz: 50, Samples: 500, LossPct: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Default protocol is NAKcast 1ms: should recover essentially all.
	if s.Reliability() < 99.9 {
		t.Errorf("NAKcast reliability = %.2f at 5%% loss", s.Reliability())
	}
	if s.Recovered == 0 {
		t.Error("no recoveries at 5% loss")
	}
}

func TestRunValidation(t *testing.T) {
	bad := []Config{
		{Receivers: -1},
		{RateHz: -5, Receivers: 3},
		{LossPct: 150, Receivers: 3, RateHz: 10},
		{Samples: -1, Receivers: 3, RateHz: 10},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, cfg)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := Config{Receivers: 3, RateHz: 25, Samples: 300, LossPct: 3, Seed: 9}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed produced different summaries:\n%+v\n%+v", a, b)
	}
	cfg.Seed = 10
	c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Error("different seeds produced identical summaries (suspicious)")
	}
}

func TestRunNDistinctSeeds(t *testing.T) {
	ss, err := RunN(Config{Receivers: 2, RateHz: 50, Samples: 200, LossPct: 5, Seed: 4}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ss) != 3 {
		t.Fatalf("got %d summaries", len(ss))
	}
	if ss[0] == ss[1] && ss[1] == ss[2] {
		t.Error("per-run seeds look identical")
	}
	if _, err := RunN(Config{}, 0); err == nil {
		t.Error("runs=0 should error")
	}
}

func TestScoreAndWinner(t *testing.T) {
	cfg := Config{Receivers: 3, RateHz: 25, Samples: 400, LossPct: 5, Seed: 5,
		Machine: netem.PC3000, Bandwidth: netem.Gbps1}
	results, err := RunCandidates(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != core.NumCandidates {
		t.Fatalf("got %d candidate results", len(results))
	}
	w := Winner(results, core.MetricReLate2)
	best := MeanScore(results[w].Summaries, core.MetricReLate2)
	for i, r := range results {
		if s := MeanScore(r.Summaries, core.MetricReLate2); s < best {
			t.Errorf("winner %d (%.0f) is not minimal; candidate %d has %.0f", w, best, i, s)
		}
	}
	if MeanScore(nil, core.MetricReLate2) != 0 {
		t.Error("MeanScore(nil) != 0")
	}
}

// TestCrossover is the repository's headline integration test: the paper's
// Figure 4/5 result that the best protocol flips with the platform.
func TestCrossover(t *testing.T) {
	if testing.Short() {
		t.Skip("crossover integration test skipped in -short mode")
	}
	run := func(m netem.Machine, bw netem.Bandwidth) (ric, nak float64) {
		base := Config{Machine: m, Bandwidth: bw, Impl: dds.ImplB,
			LossPct: 5, Receivers: 3, RateHz: 10, Samples: 2000, Seed: 77}
		cfgN := base
		cfgN.Protocol = core.Candidates()[3]
		cfgR := base
		cfgR.Protocol = core.Candidates()[4]
		sn, err := RunN(cfgN, 2)
		if err != nil {
			t.Fatal(err)
		}
		sr, err := RunN(cfgR, 2)
		if err != nil {
			t.Fatal(err)
		}
		return MeanScore(sr, core.MetricReLate2), MeanScore(sn, core.MetricReLate2)
	}
	ricFast, nakFast := run(netem.PC3000, netem.Gbps1)
	if ricFast >= nakFast {
		t.Errorf("pc3000/1Gb: Ricochet ReLate2 %.0f should beat NAKcast %.0f", ricFast, nakFast)
	}
	ricSlow, nakSlow := run(netem.PC850, netem.Mbps100)
	if nakSlow >= ricSlow {
		t.Errorf("pc850/100Mb: NAKcast ReLate2 %.0f should beat Ricochet %.0f", nakSlow, ricSlow)
	}
}

func TestQoSFiguresRender(t *testing.T) {
	q, err := RunQoSFigures(QoSOptions{Samples: 300, Runs: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, num := range QoSFigureIDs() {
		tab, err := q.Figure(num)
		if err != nil {
			t.Fatalf("figure %d: %v", num, err)
		}
		wantRows := 2 // one per protocol
		if num <= 9 {
			wantRows = 4 // two rates
		}
		if len(tab.Rows) != wantRows {
			t.Errorf("figure %d has %d rows, want %d", num, len(tab.Rows), wantRows)
		}
		if len(tab.Rows[0]) != len(tab.Header) {
			t.Errorf("figure %d ragged rows", num)
		}
		if !strings.Contains(tab.Format(), "Figure") {
			t.Errorf("figure %d Format() missing title", num)
		}
		if !strings.Contains(tab.CSV(), ",") {
			t.Errorf("figure %d CSV() empty", num)
		}
	}
	if _, err := q.Figure(99); err == nil {
		t.Error("unknown figure should error")
	}
	if got := q.Summaries(true, 3, 10, 0); len(got) != 2 {
		t.Errorf("Summaries returned %d runs", len(got))
	}
}

func TestStaticTables(t *testing.T) {
	t1 := EnvironmentTable()
	if t1.ID != "Table 1" || len(t1.Rows) != 4 {
		t.Errorf("Table 1 = %+v", t1)
	}
	t2 := ApplicationTable()
	if t2.ID != "Table 2" || len(t2.Rows) != 2 {
		t.Errorf("Table 2 = %+v", t2)
	}
}

func TestFullAndSampledSpace(t *testing.T) {
	all := FullSpace()
	if len(all) != 1200 {
		t.Fatalf("FullSpace = %d combos, want 1200", len(all))
	}
	s1 := SampleSpace(197, 1)
	if len(s1) != 197 {
		t.Fatalf("SampleSpace = %d", len(s1))
	}
	s2 := SampleSpace(197, 1)
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatal("SampleSpace not deterministic")
		}
	}
	if len(SampleSpace(5000, 1)) != 1200 {
		t.Error("oversized sample should return the full space")
	}
	seen := map[EnvCombo]bool{}
	for _, c := range s1 {
		if seen[c] {
			t.Fatal("duplicate combo in sample")
		}
		seen[c] = true
	}
}

func TestBuildDatasetAndCSVRoundTrip(t *testing.T) {
	rows, err := BuildDataset(DatasetOptions{Combos: 3, Runs: 1, Samples: 200, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 { // 3 combos x 2 metrics
		t.Fatalf("got %d rows, want 6", len(rows))
	}
	for i, r := range rows {
		if r.Winner < 0 || r.Winner >= core.NumCandidates {
			t.Errorf("row %d winner %d out of range", i, r.Winner)
		}
		if len(r.Scores) != core.NumCandidates {
			t.Errorf("row %d has %d scores", i, len(r.Scores))
		}
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(rows) {
		t.Fatalf("round-trip row count %d != %d", len(back), len(rows))
	}
	for i := range rows {
		if back[i].Features.Key() != rows[i].Features.Key() || back[i].Winner != rows[i].Winner {
			t.Errorf("row %d round-trip mismatch:\n%+v\n%+v", i, back[i], rows[i])
		}
	}
	ds := ToANNDataset(rows)
	if ds.Len() != 6 || len(ds.Inputs[0]) != core.NumInputs || len(ds.Targets[0]) != core.NumCandidates {
		t.Errorf("ANN dataset shape wrong: %d x %d -> %d", ds.Len(), len(ds.Inputs[0]), len(ds.Targets[0]))
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"h1,h2\nbad",
		strings.Join(csvHeader, ",") + "\nx,100,opendds,5,3,10,ReLate2,0\n",
		strings.Join(csvHeader, ",") + "\n3000,100,nope,5,3,10,ReLate2,0\n",
		strings.Join(csvHeader, ",") + "\n3000,100,opendds,5,3,10,Bogus,0\n",
		strings.Join(csvHeader, ",") + "\n3000,100,opendds,5,3,10,ReLate2,99\n",
	}
	for i, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: bad CSV accepted", i)
		}
	}
}

func TestCSVFileHelpers(t *testing.T) {
	rows := []Row{{
		Features: core.FeaturesFor(netem.PC3000, netem.Gbps1, dds.ImplA, 2, 3, 10, core.MetricReLate2),
		Winner:   1,
		Scores:   []float64{1, 2, 3, 4, 5, 6},
	}}
	path := t.TempDir() + "/ds.csv"
	if err := WriteCSVFile(path, rows); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSVFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].Winner != 1 {
		t.Errorf("file round-trip = %+v", back)
	}
	if _, err := ReadCSVFile(path + ".missing"); err == nil {
		t.Error("missing file should error")
	}
}
