package experiment

import (
	"errors"
	"fmt"
	"time"

	"adamant/internal/ann"
	"adamant/internal/core"
	"adamant/internal/metrics"
	"adamant/internal/netem"
)

// ANNOptions parameterize the neural-network figures (Figures 18-21).
type ANNOptions struct {
	// HiddenSizes are the hidden-node counts to sweep (paper: 4..32).
	HiddenSizes []int
	// TrainsPerSize is how many independently seeded trainings per size
	// (the paper trains 5 times per size; Figure 18 shows 10 runs).
	TrainsPerSize int
	// Folds for cross-validation (paper: 10).
	Folds int
	// StopError is the MSE stopping error (paper: 0.0001).
	StopError float64
	// MaxEpochs bounds each training.
	MaxEpochs int
	// Seed drives weight init and fold shuffles.
	Seed int64
	// Jobs caps worker goroutines for the training grids and
	// cross-validation folds; <= 0 means GOMAXPROCS. Results are
	// identical at any Jobs value.
	Jobs int
	// Progress, when non-nil, receives status lines.
	Progress func(format string, args ...any)
}

func (o *ANNOptions) fillDefaults() {
	if len(o.HiddenSizes) == 0 {
		o.HiddenSizes = []int{4, 8, 12, 16, 20, 24, 28, 32}
	}
	if o.TrainsPerSize <= 0 {
		o.TrainsPerSize = 5
	}
	if o.Folds <= 0 {
		o.Folds = 10
	}
	if o.StopError <= 0 {
		o.StopError = 1e-4
	}
	if o.MaxEpochs <= 0 {
		o.MaxEpochs = 2000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Progress == nil {
		o.Progress = func(string, ...any) {}
	}
}

// Figure18 reproduces "ANN accuracy for environments known a priori":
// for each hidden-node count, train TrainsPerSize networks on the full
// dataset and report how many reach 100% training-set accuracy, plus the
// mean accuracy.
func Figure18(rows []Row, opts ANNOptions) (Table, error) {
	opts.fillDefaults()
	ds := ToANNDataset(rows)
	if ds.Len() == 0 {
		return Table{}, errors.New("experiment: empty dataset")
	}
	t := Table{
		ID:     "Figure 18",
		Title:  fmt.Sprintf("ANN accuracy, environments known a priori (%d inputs, stop error %g)", ds.Len(), opts.StopError),
		Header: []string{"hidden nodes", "runs at 100%", "mean accuracy %", "min accuracy %"},
		Note:   "trained and tested on the same data; the best sizes reach 100%",
	}
	// The (hidden size × run) grid cells are independent trainings, so
	// they fan out over the Runner pool; each cell trains serially
	// (Jobs: 1) since the grid is the coarser unit of work. Per-cell
	// accuracies land at their grid index and are aggregated in order
	// afterward, so the table is identical at any worker count.
	runs := opts.TrainsPerSize
	cells := make([]float64, len(opts.HiddenSizes)*runs)
	r := &Runner{Jobs: opts.Jobs}
	err := r.ForEach(len(cells), func(i int) error {
		h := opts.HiddenSizes[i/runs]
		run := i % runs
		net, err := ann.New(ann.Config{
			Layers: []int{core.NumInputs, h, core.NumCandidates},
			Seed:   opts.Seed + int64(h*1000+run),
		})
		if err != nil {
			return err
		}
		if _, err := net.Train(ds, ann.TrainOptions{
			MaxEpochs: opts.MaxEpochs, DesiredError: opts.StopError, Jobs: 1,
		}); err != nil {
			return err
		}
		cells[i], err = net.Accuracy(ds)
		return err
	})
	if err != nil {
		return Table{}, err
	}
	for hi, h := range opts.HiddenSizes {
		perfect := 0
		var acc metrics.Welford
		for run := 0; run < runs; run++ {
			a := cells[hi*runs+run]
			if a >= 1.0 {
				perfect++
			}
			acc.Add(100 * a)
		}
		opts.Progress("fig18 hidden=%d: %d/%d perfect, mean %.2f%%", h, perfect, opts.TrainsPerSize, acc.Mean())
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", h),
			fmt.Sprintf("%d/%d", perfect, opts.TrainsPerSize),
			fmt.Sprintf("%.2f", acc.Mean()),
			fmt.Sprintf("%.2f", acc.Min()),
		})
	}
	return t, nil
}

// Figure19 reproduces "ANN accuracy for environments unknown until
// runtime": k-fold cross-validated accuracy per hidden-node count.
func Figure19(rows []Row, opts ANNOptions) (Table, error) {
	opts.fillDefaults()
	ds := ToANNDataset(rows)
	if ds.Len() < opts.Folds {
		return Table{}, fmt.Errorf("experiment: %d rows cannot make %d folds", ds.Len(), opts.Folds)
	}
	t := Table{
		ID:     "Figure 19",
		Title:  fmt.Sprintf("ANN accuracy, environments unknown until runtime (%d-fold CV, stop error %g)", opts.Folds, opts.StopError),
		Header: []string{"hidden nodes", "mean CV accuracy %", "min fold %", "max fold %"},
		Note:   "the paper's best average was 89.49% at 24 hidden nodes",
	}
	for _, h := range opts.HiddenSizes {
		res, err := ann.CrossValidate(ann.Config{
			Layers: []int{core.NumInputs, h, core.NumCandidates},
			Seed:   opts.Seed + int64(h),
		}, ds, opts.Folds, ann.TrainOptions{
			MaxEpochs: opts.MaxEpochs, DesiredError: opts.StopError, Jobs: opts.Jobs,
		})
		if err != nil {
			return Table{}, err
		}
		var folds metrics.Welford
		for _, a := range res.FoldAccuracy {
			folds.Add(100 * a)
		}
		opts.Progress("fig19 hidden=%d: CV %.2f%%", h, folds.Mean())
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", h),
			fmt.Sprintf("%.2f", folds.Mean()),
			fmt.Sprintf("%.2f", folds.Min()),
			fmt.Sprintf("%.2f", folds.Max()),
		})
	}
	return t, nil
}

// TimingResult holds Figures 20/21 data for one emulated platform.
type TimingResult struct {
	Platform  string
	MeanUs    float64
	StdDevUs  float64
	MaxUs     float64
	Queries   int
	HostScale float64 // CPUFactor applied to the host measurement
}

// QueryTimings reproduces Figures 20/21: train the best network (24 hidden
// nodes), query it with every dataset input `experiments` times, and report
// mean and standard deviation of the per-query response time. The host
// measurement is taken with a monotonic clock; the pc850/pc3000 rows scale
// it by the machines' CPU factors (host ~ reference pc3000).
func QueryTimings(rows []Row, experiments int, opts ANNOptions) ([]TimingResult, error) {
	opts.fillDefaults()
	if experiments <= 0 {
		experiments = 5
	}
	ds := ToANNDataset(rows)
	if ds.Len() == 0 {
		return nil, errors.New("experiment: empty dataset")
	}
	net, err := ann.New(ann.Config{
		Layers: []int{core.NumInputs, 24, core.NumCandidates},
		Seed:   opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	if _, err := net.Train(ds, ann.TrainOptions{
		MaxEpochs: opts.MaxEpochs, DesiredError: opts.StopError, Jobs: opts.Jobs,
	}); err != nil {
		return nil, err
	}
	var w metrics.Welford
	for e := 0; e < experiments; e++ {
		for _, in := range ds.Inputs {
			start := time.Now()
			if _, err := net.Classify(in); err != nil {
				return nil, err
			}
			w.Add(float64(time.Since(start)) / float64(time.Microsecond))
		}
	}
	out := []TimingResult{
		{Platform: "host", MeanUs: w.Mean(), StdDevUs: w.StdDev(), MaxUs: w.Max(),
			Queries: int(w.Count()), HostScale: 1},
	}
	for _, m := range []netem.Machine{netem.PC3000, netem.PC850} {
		out = append(out, TimingResult{
			Platform:  m.Name,
			MeanUs:    w.Mean() * m.CPUFactor,
			StdDevUs:  w.StdDev() * m.CPUFactor,
			MaxUs:     w.Max() * m.CPUFactor,
			Queries:   int(w.Count()),
			HostScale: m.CPUFactor,
		})
	}
	return out, nil
}

// Figure20 renders average ANN response times.
func Figure20(rows []Row, opts ANNOptions) (Table, error) {
	timings, err := QueryTimings(rows, 5, opts)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:     "Figure 20",
		Title:  "ANN average response times",
		Header: []string{"platform", "queries", "mean (us)", "max (us)"},
		Note:   "paper: <10us with bounded time complexity; pc850/pc3000 rows are CPU-factor-scaled host measurements",
	}
	for _, r := range timings {
		t.Rows = append(t.Rows, []string{r.Platform, fmt.Sprintf("%d", r.Queries),
			fmt.Sprintf("%.3f", r.MeanUs), fmt.Sprintf("%.3f", r.MaxUs)})
	}
	return t, nil
}

// Figure21 renders the standard deviation of ANN response times.
func Figure21(rows []Row, opts ANNOptions) (Table, error) {
	timings, err := QueryTimings(rows, 5, opts)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:     "Figure 21",
		Title:  "Standard deviation of ANN response times",
		Header: []string{"platform", "queries", "stddev (us)"},
		Note:   "small, predictable spread: the query is one fixed-size forward pass",
	}
	for _, r := range timings {
		t.Rows = append(t.Rows, []string{r.Platform, fmt.Sprintf("%d", r.Queries),
			fmt.Sprintf("%.3f", r.StdDevUs)})
	}
	return t, nil
}
