package experiment

import (
	"fmt"

	"adamant/internal/core"
	"adamant/internal/dds"
	"adamant/internal/metrics"
	"adamant/internal/netem"
	"adamant/internal/transport"
)

// QoSOptions parameterize the QoS figure reproduction (Figures 4-17).
type QoSOptions struct {
	// Samples per run. The paper publishes 20000 samples per run; smaller
	// values preserve the metric shape proportionally faster. Default 2000.
	Samples int
	// Runs per configuration (paper: 5). Default 5.
	Runs int
	// Seed drives the run seeds. Default 1.
	Seed int64
	// Jobs is the worker-pool width for the cell x run product; <= 0
	// means GOMAXPROCS. Output is identical at any width.
	Jobs int
	// Progress, when non-nil, receives status lines.
	Progress func(format string, args ...any)
}

func (o *QoSOptions) fillDefaults() {
	if o.Samples <= 0 {
		o.Samples = 2000
	}
	if o.Runs <= 0 {
		o.Runs = 5
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Progress == nil {
		o.Progress = func(string, ...any) {}
	}
}

// The two platforms the paper's Figures 4-17 compare.
var (
	platformFast = struct {
		Machine netem.Machine
		BW      netem.Bandwidth
	}{netem.PC3000, netem.Gbps1}
	platformSlow = struct {
		Machine netem.Machine
		BW      netem.Bandwidth
	}{netem.PC850, netem.Mbps100}
)

// The two protocols the figures plot: the best NAKcast and best Ricochet
// configurations ("these were the only protocols that produced the best
// ReLate2 values for these operating environments").
func figureProtocols() []transport.Spec {
	return []transport.Spec{
		core.Candidates()[3], // nakcast(timeout=1ms)
		core.Candidates()[4], // ricochet(c=3,r=4)
	}
}

// qosKey identifies one (platform, receivers, rate, protocol) cell.
type qosKey struct {
	fast      bool
	receivers int
	rateHz    int
	protoIdx  int
}

// QoSFigures holds the runs behind Figures 4-17 so each figure is a cheap
// projection of shared data.
type QoSFigures struct {
	opts QoSOptions
	data map[qosKey][]metrics.Summary
}

// RunQoSFigures executes every run needed by Figures 4-17: both platforms,
// {3 receivers x 10/25 Hz} and {15 receivers x 10 Hz}, NAKcast-1ms and
// Ricochet-R4C3, Runs seeds each, OpenSplice-profile middleware at 5% loss.
// The cell x run product is flattened over a Jobs-wide worker pool; per-run
// seeds match the serial RunN schedule, so the figures are identical at any
// worker count.
func RunQoSFigures(opts QoSOptions) (*QoSFigures, error) {
	opts.fillDefaults()
	q := &QoSFigures{opts: opts, data: make(map[qosKey][]metrics.Summary)}
	type cell struct {
		receivers, rate int
	}
	cells := []cell{{3, 10}, {3, 25}, {15, 10}}
	var keys []qosKey
	var cfgs []Config
	for _, fast := range []bool{true, false} {
		plat := platformSlow
		if fast {
			plat = platformFast
		}
		for _, c := range cells {
			for pi, spec := range figureProtocols() {
				cfg := Config{
					Machine:   plat.Machine,
					Bandwidth: plat.BW,
					Impl:      dds.ImplB, // OpenSplice profile, as in the figures
					LossPct:   5,
					Receivers: c.receivers,
					RateHz:    float64(c.rate),
					Samples:   opts.Samples,
					Protocol:  spec,
					Seed:      opts.Seed,
				}
				opts.Progress("running %s x%d", cfg, opts.Runs)
				keys = append(keys, qosKey{fast, c.receivers, c.rate, pi})
				cfgs = append(cfgs, runConfigs(cfg, opts.Runs)...)
			}
		}
	}
	sums, err := (&Runner{Jobs: opts.Jobs}).RunMany(cfgs)
	if err != nil {
		return nil, err
	}
	for ki, key := range keys {
		q.data[key] = sums[ki*opts.Runs : (ki+1)*opts.Runs]
	}
	return q, nil
}

// figSpec describes how one figure projects the shared data.
type figSpec struct {
	title     string
	fast      bool
	receivers int
	rates     []int
	field     func(metrics.Summary) float64
	unit      string
	note      string
}

var qosFigSpecs = map[int]figSpec{
	4: {"ReLate2: pc3000, 1Gb LAN, 3 receivers, 5% loss, 10 & 25Hz", true, 3, []int{10, 25},
		func(s metrics.Summary) float64 { return s.ReLate2 }, "ReLate2", "lower is better; Ricochet R4C3 should win"},
	5: {"ReLate2: pc850, 100Mb LAN, 3 receivers, 5% loss, 10 & 25Hz", false, 3, []int{10, 25},
		func(s metrics.Summary) float64 { return s.ReLate2 }, "ReLate2", "lower is better; NAKcast 1ms should win"},
	6: {"Reliability: pc3000, 1Gb LAN, 3 receivers, 5% loss, 10 & 25Hz", true, 3, []int{10, 25},
		metrics.Summary.Reliability, "percent", "NAKcast higher; hardware-invariant"},
	7: {"Reliability: pc850, 100Mb LAN, 3 receivers, 5% loss, 10 & 25Hz", false, 3, []int{10, 25},
		metrics.Summary.Reliability, "percent", "NAKcast higher; hardware-invariant"},
	8: {"Latency: pc3000, 1Gb LAN, 3 receivers, 5% loss, 10 & 25Hz", true, 3, []int{10, 25},
		func(s metrics.Summary) float64 { return s.AvgLatencyUs }, "us", "Ricochet lower; gap wider than on pc850"},
	9: {"Latency: pc850, 100Mb LAN, 3 receivers, 5% loss, 10 & 25Hz", false, 3, []int{10, 25},
		func(s metrics.Summary) float64 { return s.AvgLatencyUs }, "us", "gap narrower than on pc3000"},
	10: {"ReLate2Jit: pc3000, 1Gb LAN, 15 receivers, 5% loss, 10Hz", true, 15, []int{10},
		func(s metrics.Summary) float64 { return s.ReLate2Jit }, "ReLate2Jit", "lower is better; Ricochet should win every run"},
	11: {"ReLate2Jit: pc850, 100Mb LAN, 15 receivers, 5% loss, 10Hz", false, 15, []int{10},
		func(s metrics.Summary) float64 { return s.ReLate2Jit }, "ReLate2Jit", "near-tie; paper reports NAKcast winning 4 of 5 runs"},
	12: {"Latency: pc3000, 1Gb LAN, 15 receivers, 5% loss, 10Hz", true, 15, []int{10},
		func(s metrics.Summary) float64 { return s.AvgLatencyUs }, "us", "Ricochet lower"},
	13: {"Latency: pc850, 100Mb LAN, 15 receivers, 5% loss, 10Hz", false, 15, []int{10},
		func(s metrics.Summary) float64 { return s.AvgLatencyUs }, "us", "Ricochet lower"},
	14: {"Jitter: pc3000, 1Gb LAN, 15 receivers, 5% loss, 10Hz", true, 15, []int{10},
		func(s metrics.Summary) float64 { return s.JitterUs }, "us", "Ricochet lower"},
	15: {"Jitter: pc850, 100Mb LAN, 15 receivers, 5% loss, 10Hz", false, 15, []int{10},
		func(s metrics.Summary) float64 { return s.JitterUs }, "us", "Ricochet lower"},
	16: {"Reliability: pc3000, 1Gb LAN, 15 receivers, 5% loss, 10Hz", true, 15, []int{10},
		metrics.Summary.Reliability, "percent", "NAKcast higher"},
	17: {"Reliability: pc850, 100Mb LAN, 15 receivers, 5% loss, 10Hz", false, 15, []int{10},
		metrics.Summary.Reliability, "percent", "NAKcast higher"},
}

// QoSFigureIDs lists the figure numbers RunQoSFigures can project.
func QoSFigureIDs() []int {
	return []int{4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17}
}

// Figure renders one of Figures 4-17 from the shared runs.
func (q *QoSFigures) Figure(num int) (Table, error) {
	spec, ok := qosFigSpecs[num]
	if !ok {
		return Table{}, fmt.Errorf("experiment: figure %d is not a QoS figure", num)
	}
	t := Table{
		ID:    fmt.Sprintf("Figure %d", num),
		Title: spec.title,
		Note:  spec.note,
	}
	t.Header = []string{"protocol", "rate"}
	for i := 0; i < q.opts.Runs; i++ {
		t.Header = append(t.Header, fmt.Sprintf("run%d (%s)", i+1, spec.unit))
	}
	t.Header = append(t.Header, "mean")
	for _, rate := range spec.rates {
		for pi, proto := range figureProtocols() {
			ss, ok := q.data[qosKey{spec.fast, spec.receivers, rate, pi}]
			if !ok {
				return Table{}, fmt.Errorf("experiment: missing data for figure %d", num)
			}
			row := []string{proto.String(), fmt.Sprintf("%dHz", rate)}
			var mean float64
			for _, s := range ss {
				v := spec.field(s)
				mean += v / float64(len(ss))
				row = append(row, formatValue(v))
			}
			row = append(row, formatValue(mean))
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}

// Summaries exposes the raw per-run summaries for one cell (tests and the
// benchmark harness use this).
func (q *QoSFigures) Summaries(fast bool, receivers, rateHz, protoIdx int) []metrics.Summary {
	return q.data[qosKey{fast, receivers, rateHz, protoIdx}]
}

func formatValue(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.3g", v)
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// EnvironmentTable reproduces Table 1 (the environment variable space).
func EnvironmentTable() Table {
	return Table{
		ID:     "Table 1",
		Title:  "Environment Variables",
		Header: []string{"point of variability", "values"},
		Rows: [][]string{
			{"Machine type", "pc850, pc3000"},
			{"Network bandwidth", "1Gb, 100Mb, 10Mb"},
			{"DDS Implementation", "opendds-like (ImplA), opensplice-like (ImplB)"},
			{"Percent end-host network loss", "1 to 5 %"},
		},
	}
}

// ApplicationTable reproduces Table 2 (the application variable space).
func ApplicationTable() Table {
	return Table{
		ID:     "Table 2",
		Title:  "Application Variables",
		Header: []string{"point of variability", "values"},
		Rows: [][]string{
			{"Number of receiving data readers", "3 - 15"},
			{"Frequency of sending data", "10 Hz, 25 Hz, 50 Hz, 100 Hz"},
		},
	}
}
