package experiment

import (
	"fmt"

	"adamant/internal/metrics"
	"adamant/internal/netem"
	"adamant/internal/transport"
)

// Ablations isolate the design choices DESIGN.md calls out: in-order
// delivery (head-of-line blocking), the Ricochet flush timer and group
// stagger, the R/C trade-off, and ACK- versus NAK-based reliability.
// Each returns a Table in the same format as the paper figures.

// AblationOptions parameterize the ablation studies.
type AblationOptions struct {
	Samples int   // default 1500
	Seed    int64 // default 1
	Jobs    int   // worker-pool width; <= 0 means GOMAXPROCS
}

func (o *AblationOptions) fillDefaults() {
	if o.Samples <= 0 {
		o.Samples = 1500
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

func ablationBase(opts AblationOptions) Config {
	return Config{
		Machine:   netem.PC3000,
		Bandwidth: netem.Gbps1,
		LossPct:   5,
		Receivers: 3,
		RateHz:    25,
		Samples:   opts.Samples,
		Seed:      opts.Seed,
	}
}

func ablationRow(label string, s metrics.Summary) []string {
	return []string{
		label,
		fmt.Sprintf("%.2f", s.Reliability()),
		fmt.Sprintf("%.0f", s.AvgLatencyUs),
		fmt.Sprintf("%.0f", s.JitterUs),
		fmt.Sprintf("%.0f", s.ReLate2),
	}
}

var ablationHeader = []string{"variant", "reliability %", "latency (us)", "jitter (us)", "ReLate2"}

// AblationOrdering contrasts NAKcast's in-order delivery (head-of-line
// blocking) with an unordered variant that recovers identically but
// delivers on arrival.
func AblationOrdering(opts AblationOptions) (Table, error) {
	opts.fillDefaults()
	t := Table{
		ID:     "Ablation A1",
		Title:  "NAKcast in-order vs unordered delivery (pc3000/1Gb, 3 rcv, 5% loss, 25Hz)",
		Header: ablationHeader,
		Note:   "head-of-line blocking is most of NAKcast's latency/jitter cost; reliability is unchanged",
	}
	variants := []struct {
		label  string
		params transport.Params
	}{
		{"ordered (DDS RELIABLE semantics)", transport.Params{"timeout": "1ms"}},
		{"unordered (deliver on arrival)", transport.Params{"timeout": "1ms", "unordered": "1"}},
	}
	cfgs := make([]Config, len(variants))
	for i, v := range variants {
		cfgs[i] = ablationBase(opts)
		cfgs[i].Protocol = transport.Spec{Name: "nakcast", Params: v.params}
	}
	sums, err := (&Runner{Jobs: opts.Jobs}).RunMany(cfgs)
	if err != nil {
		return Table{}, err
	}
	for i, v := range variants {
		t.Rows = append(t.Rows, ablationRow(v.label, sums[i]))
	}
	return t, nil
}

// AblationFlush contrasts Ricochet with and without the partial-group
// flush timer at a low data rate, where fixed-R grouping leaves losses
// waiting for R packets.
func AblationFlush(opts AblationOptions) (Table, error) {
	opts.fillDefaults()
	t := Table{
		ID:     "Ablation A2",
		Title:  "Ricochet flush timer at low rate (pc3000/1Gb, 3 rcv, 5% loss, 10Hz)",
		Header: ablationHeader,
		Note:   "without the flush, recovery waits for R=4 packets (~400ms at 10Hz)",
	}
	variants := []struct {
		label string
		flush string
	}{
		{"flush 8ms (default)", "8ms"},
		{"flush disabled (fixed R groups)", "-1ms"},
	}
	cfgs := make([]Config, len(variants))
	for i, v := range variants {
		cfgs[i] = ablationBase(opts)
		cfgs[i].RateHz = 10
		cfgs[i].Protocol = transport.Spec{Name: "ricochet",
			Params: transport.Params{"r": "4", "c": "3", "flush": v.flush}}
	}
	sums, err := (&Runner{Jobs: opts.Jobs}).RunMany(cfgs)
	if err != nil {
		return Table{}, err
	}
	for i, v := range variants {
		t.Rows = append(t.Rows, ablationRow(v.label, sums[i]))
	}
	return t, nil
}

// AblationStagger contrasts Ricochet with and without per-receiver group
// stagger, with the flush disabled so XOR groups matter (high rate).
func AblationStagger(opts AblationOptions) (Table, error) {
	opts.fillDefaults()
	t := Table{
		ID:     "Ablation A3",
		Title:  "Ricochet group stagger (pc3000/1Gb, 5 rcv, 5% loss, 100Hz, flush off)",
		Header: ablationHeader,
		Note:   "shifted boundaries enable double-loss cascades but dilute per-repair coverage; the net reliability effect is second-order",
	}
	variants := []struct {
		label   string
		stagger string
	}{
		{"staggered groups (default)", "0"},
		{"aligned groups", "-1"},
	}
	cfgs := make([]Config, len(variants))
	for i, v := range variants {
		cfgs[i] = ablationBase(opts)
		cfgs[i].Receivers = 5
		cfgs[i].RateHz = 100
		cfgs[i].Protocol = transport.Spec{Name: "ricochet",
			Params: transport.Params{"r": "4", "c": "3", "flush": "-1ms", "stagger": v.stagger}}
	}
	sums, err := (&Runner{Jobs: opts.Jobs}).RunMany(cfgs)
	if err != nil {
		return Table{}, err
	}
	for i, v := range variants {
		t.Rows = append(t.Rows, ablationRow(v.label, sums[i]))
	}
	return t, nil
}

// AblationRC sweeps Ricochet's R and C tunables, reporting the repair
// traffic alongside the QoS outcome.
func AblationRC(opts AblationOptions) (Table, error) {
	opts.fillDefaults()
	t := Table{
		ID:     "Ablation A4",
		Title:  "Ricochet R/C sweep (pc3000/1Gb, 5 rcv, 5% loss, 100Hz, flush off)",
		Header: append(append([]string{}, ablationHeader...), "total pkts tx"),
		Note:   "higher R: less repair traffic, weaker recovery; higher C: more fan-out, stronger recovery",
	}
	sweep := []struct{ r, c int }{{2, 3}, {4, 1}, {4, 3}, {8, 3}}
	cfgs := make([]Config, len(sweep))
	for i, rc := range sweep {
		cfgs[i] = ablationBase(opts)
		cfgs[i].Receivers = 5
		cfgs[i].RateHz = 100
		cfgs[i].Protocol = transport.Spec{Name: "ricochet", Params: transport.Params{
			"r": fmt.Sprintf("%d", rc.r), "c": fmt.Sprintf("%d", rc.c), "flush": "-1ms"}}
	}
	sums, reports, err := (&Runner{Jobs: opts.Jobs}).RunManyDetailed(cfgs)
	if err != nil {
		return Table{}, err
	}
	for i, rc := range sweep {
		row := ablationRow(fmt.Sprintf("R=%d C=%d", rc.r, rc.c), sums[i])
		row = append(row, fmt.Sprintf("%d", reports[i].TotalTx()))
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// AblationACKvsNAK contrasts positive- and negative-acknowledgment
// reliability as the receiver set grows: the ACK-implosion argument for
// NAK/FEC protocols in DRE pub/sub.
func AblationACKvsNAK(opts AblationOptions) (Table, error) {
	opts.fillDefaults()
	t := Table{
		ID:     "Ablation A5",
		Title:  "ACK- vs NAK-based reliability as receivers scale (pc3000/1Gb, 5% loss, 50Hz)",
		Header: []string{"protocol", "receivers", "reliability %", "latency (us)", "control+data pkts tx", "pkts/sample"},
		Note:   "ackcast's transmit count grows ~linearly with receivers (one ACK per sample per receiver)",
	}
	var cfgs []Config
	for _, recv := range []int{3, 9, 15} {
		for _, spec := range []transport.Spec{
			{Name: "nakcast", Params: transport.Params{"timeout": "1ms"}},
			{Name: "ackcast", Params: transport.Params{"window": "64", "rto": "50ms"}},
		} {
			cfg := ablationBase(opts)
			cfg.Receivers = recv
			cfg.RateHz = 50
			cfg.Protocol = spec
			cfgs = append(cfgs, cfg)
		}
	}
	sums, reports, err := (&Runner{Jobs: opts.Jobs}).RunManyDetailed(cfgs)
	if err != nil {
		return Table{}, err
	}
	for i, cfg := range cfgs {
		t.Rows = append(t.Rows, []string{
			cfg.Protocol.Name,
			fmt.Sprintf("%d", cfg.Receivers),
			fmt.Sprintf("%.2f", sums[i].Reliability()),
			fmt.Sprintf("%.0f", sums[i].AvgLatencyUs),
			fmt.Sprintf("%d", reports[i].TotalTx()),
			fmt.Sprintf("%.2f", float64(reports[i].TotalTx())/float64(cfg.Samples)),
		})
	}
	return t, nil
}

// Ablations runs every ablation study.
func Ablations(opts AblationOptions) ([]Table, error) {
	var out []Table
	for _, f := range []func(AblationOptions) (Table, error){
		AblationOrdering, AblationFlush, AblationStagger, AblationRC, AblationACKvsNAK,
	} {
		t, err := f(opts)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}
