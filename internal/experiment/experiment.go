// Package experiment reproduces the paper's evaluation: it assembles
// simulated cloud environments (machine type, LAN bandwidth, DDS
// implementation profile, end-host loss) and application workloads
// (receiver count, sending rate), runs the DDS/ANT stack over them, scores
// the composite QoS metrics, builds the 394-row training set for the
// neural-network configurator, and regenerates every figure in Section 4.
package experiment

import (
	"errors"
	"fmt"
	"time"

	"adamant/internal/core"
	"adamant/internal/dds"
	"adamant/internal/env"
	"adamant/internal/metrics"
	"adamant/internal/netem"
	"adamant/internal/sim"
	"adamant/internal/transport"
	"adamant/internal/transport/protocols"
	"adamant/internal/wire"
)

// Config describes one experiment run: the paper's Table 1 environment
// variables, Table 2 application variables, the workload shape, and the
// transport protocol under test.
type Config struct {
	Machine   netem.Machine
	Bandwidth netem.Bandwidth
	Impl      dds.Impl
	LossPct   float64
	// BurstPGB/BurstPBG/BurstDropBad, when BurstPGB > 0, enable the
	// Gilbert-Elliott two-state bursty loss model on every reader node in
	// addition to the uniform LossPct: per-packet good->bad and bad->good
	// transition probabilities and the drop probability in the bad state.
	BurstPGB     float64
	BurstPBG     float64
	BurstDropBad float64
	Receivers    int
	RateHz       float64
	// Samples is the number of data samples the writer publishes. The
	// paper sends 20000 per run; smaller counts preserve the metric
	// shape and run proportionally faster.
	Samples int
	// PayloadBytes is the sample size (paper: 12 bytes).
	PayloadBytes int
	// Protocol is the ANT transport under test.
	Protocol transport.Spec
	// Seed makes the run reproducible.
	Seed int64
	// Shards > 0 runs the experiment on the sharded conservative-time
	// engine with that many workers instead of the serial kernel. The
	// sharded result is deterministic and identical at every worker
	// count, but is a distinct trajectory from the serial kernel's (the
	// two engines order same-instant arrivals differently), so published
	// tables pick one engine and stay on it. Use for large groups, where
	// the serial kernel is the bottleneck.
	Shards int
}

func (c *Config) fillDefaults() {
	if c.Machine.Name == "" {
		c.Machine = netem.PC3000
	}
	if c.Bandwidth == 0 {
		c.Bandwidth = netem.Gbps1
	}
	if c.Receivers == 0 {
		c.Receivers = 3
	}
	if c.RateHz == 0 {
		c.RateHz = 25
	}
	if c.Samples == 0 {
		c.Samples = 2000
	}
	if c.PayloadBytes == 0 {
		c.PayloadBytes = 12
	}
	if c.Protocol.Name == "" {
		c.Protocol = core.Candidates()[3] // nakcast(timeout=1ms)
	}
}

// Validate reports config errors.
func (c Config) Validate() error {
	if c.Receivers < 1 {
		return errors.New("experiment: need at least one receiver")
	}
	if c.RateHz <= 0 {
		return errors.New("experiment: non-positive rate")
	}
	if c.LossPct < 0 || c.LossPct > 100 {
		return fmt.Errorf("experiment: loss %v%% out of range", c.LossPct)
	}
	if c.BurstPGB < 0 || c.BurstPGB > 1 || c.BurstPBG < 0 || c.BurstPBG > 1 ||
		c.BurstDropBad < 0 || c.BurstDropBad > 1 {
		return fmt.Errorf("experiment: burst-loss probabilities (%v,%v,%v) out of [0,1]",
			c.BurstPGB, c.BurstPBG, c.BurstDropBad)
	}
	if c.BurstPGB > 0 && c.BurstPBG == 0 {
		return errors.New("experiment: burst loss needs a bad->good transition probability")
	}
	if c.Samples < 1 {
		return errors.New("experiment: need at least one sample")
	}
	if c.Shards < 0 {
		return errors.New("experiment: negative shard count")
	}
	return nil
}

// String identifies the configuration in logs and tables.
func (c Config) String() string {
	s := fmt.Sprintf("%s/%s/%s loss=%g%% rcv=%d rate=%gHz proto=%s",
		c.Machine.Name, c.Bandwidth, c.Impl, c.LossPct, c.Receivers, c.RateHz, c.Protocol)
	if c.BurstPGB > 0 {
		s += fmt.Sprintf(" ge=%g/%g/%g", c.BurstPGB, c.BurstPBG, c.BurstDropBad)
	}
	if c.Shards > 0 {
		s += fmt.Sprintf(" shards=%d", c.Shards)
	}
	return s
}

// topicName is the single experiment data stream.
const topicName = "adamant/experiment"

// NetReport carries per-node traffic counters from one run, for ablations
// that study protocol overhead (control traffic, repair traffic).
type NetReport struct {
	Writer  netem.Stats
	Readers []netem.Stats
}

// TotalTx sums transmitted packets across all nodes.
func (r NetReport) TotalTx() uint64 {
	total := r.Writer.TxPackets
	for _, s := range r.Readers {
		total += s.TxPackets
	}
	return total
}

// Run executes one experiment and returns the merged QoS summary across
// all receivers (per-receiver expected counts sum into Summary.Sent).
func Run(cfg Config) (metrics.Summary, error) {
	s, _, err := RunDetailed(cfg)
	return s, err
}

// simDriver is the engine surface RunDetailed needs: the serial Kernel and
// the sharded conservative-time engine both satisfy it.
type simDriver interface {
	SetEventLimit(n uint64)
	Run() error
}

// RunDetailed is Run plus the per-node traffic report.
func RunDetailed(cfg Config) (metrics.Summary, NetReport, error) {
	cfg.fillDefaults()
	if err := cfg.Validate(); err != nil {
		return metrics.Summary{}, NetReport{}, err
	}
	var (
		network *netem.Network
		drv     simDriver
		kernel  *sim.Kernel
		err     error
	)
	if cfg.Shards > 0 {
		sh := sim.NewSharded(cfg.Seed, netem.DefaultPropDelay)
		sh.SetWorkers(cfg.Shards)
		network, err = netem.NewSharded(sh, netem.Config{Bandwidth: cfg.Bandwidth})
		drv = sh
	} else {
		kernel = sim.New(cfg.Seed)
		network, err = netem.New(env.NewSim(kernel), netem.Config{Bandwidth: cfg.Bandwidth})
		drv = kernel
	}
	if err != nil {
		return metrics.Summary{}, NetReport{}, err
	}
	// The sharded engine fires one arrival event per multicast target where
	// the serial kernel loops all targets in one event, so give it double
	// headroom.
	limit := uint64(cfg.Samples)*uint64(cfg.Receivers)*200 + 10_000_000
	if cfg.Shards > 0 {
		limit *= 2
	}
	drv.SetEventLimit(limit)
	reg := protocols.MustRegistry()

	writerNode := network.AddNode(cfg.Machine)
	readerNodes := make([]*netem.Node, cfg.Receivers)
	readerIDs := make([]wire.NodeID, cfg.Receivers)
	for i := range readerNodes {
		readerNodes[i] = network.AddNode(cfg.Machine)
		readerNodes[i].SetLoss(cfg.LossPct)
		if cfg.BurstPGB > 0 {
			readerNodes[i].SetBurstLoss(cfg.BurstPGB, cfg.BurstPBG, cfg.BurstDropBad)
		}
		readerIDs[i] = readerNodes[i].Local()
	}
	receivers := transport.StaticReceivers(readerIDs...)

	// Each participant lives on its node's env — the shared sim env in
	// serial mode, the node's lane env in sharded mode.
	mkParticipant := func(node *netem.Node) (*dds.DomainParticipant, error) {
		return dds.NewParticipant(dds.ParticipantConfig{
			Env:       node.Env(),
			Endpoint:  node,
			Registry:  reg,
			Transport: cfg.Protocol,
			Impl:      cfg.Impl,
			SenderID:  writerNode.Local(),
			Receivers: receivers,
		})
	}
	writerP, err := mkParticipant(writerNode)
	if err != nil {
		return metrics.Summary{}, NetReport{}, err
	}
	topic, err := writerP.CreateTopic(topicName, dds.TopicQoS{Reliability: dds.Reliable})
	if err != nil {
		return metrics.Summary{}, NetReport{}, err
	}
	writer, err := writerP.CreateDataWriter(topic, dds.WriterQoS{Reliability: dds.Reliable})
	if err != nil {
		return metrics.Summary{}, NetReport{}, err
	}
	collectors := make([]metrics.Collector, cfg.Receivers)
	tail := metrics.NewLatencyTail()
	// Sharded mode runs receiver lanes concurrently, and the P2 tail
	// estimator is both unsynchronized and order-sensitive, so listeners
	// buffer latencies per receiver (lane-local, race-free) and the tail is
	// fed in deterministic receiver-major order after the run.
	var latencies [][]float64
	if cfg.Shards > 0 {
		latencies = make([][]float64, cfg.Receivers)
	}
	for i := range readerNodes {
		i := i
		p, err := mkParticipant(readerNodes[i])
		if err != nil {
			return metrics.Summary{}, NetReport{}, err
		}
		rt, err := p.CreateTopic(topicName, dds.TopicQoS{Reliability: dds.Reliable})
		if err != nil {
			return metrics.Summary{}, NetReport{}, err
		}
		if _, err := p.CreateDataReader(rt, dds.ReaderQoS{Reliability: dds.Reliable, History: dds.KeepLast, Depth: 1},
			dds.ListenerFuncs{Data: func(s dds.Sample) {
				collectors[i].OnDeliver(s.Info.SentAt, s.Info.ReceivedAt, s.Info.Recovered)
				lat := float64(s.Info.Latency()) / float64(time.Microsecond)
				if latencies != nil {
					latencies[i] = append(latencies[i], lat)
				} else {
					tail.Add(lat)
				}
			}}); err != nil {
			return metrics.Summary{}, NetReport{}, err
		}
	}

	// Publish Samples samples at RateHz, then close the writer (EOS). The
	// payload stream derives from (seed, name) alone, so the writer lane's
	// kernel hands out the same bytes the serial kernel would.
	period := time.Duration(float64(time.Second) / cfg.RateHz)
	payload := make([]byte, cfg.PayloadBytes)
	payloadKernel := kernel
	if payloadKernel == nil {
		payloadKernel = network.Sharded().LaneKernel(writerNode.Lane())
	}
	rng := payloadKernel.Rand("experiment/payload")
	writerEnv := writerNode.Env()
	published := 0
	var writeErr error
	var tick func()
	tick = func() {
		if published >= cfg.Samples {
			writeErr = writer.Close()
			return
		}
		rng.Read(payload)
		if err := writer.Write(payload); err != nil {
			writeErr = err
			return
		}
		published++
		writerEnv.Schedule(period, tick)
	}
	writerEnv.Post(tick)

	if err := drv.Run(); err != nil {
		return metrics.Summary{}, NetReport{}, fmt.Errorf("experiment: %s: %w", cfg, err)
	}
	if writeErr != nil {
		return metrics.Summary{}, NetReport{}, fmt.Errorf("experiment: %s: %w", cfg, writeErr)
	}
	for _, ls := range latencies {
		for _, l := range ls {
			tail.Add(l)
		}
	}

	var merged metrics.Collector
	var bw metrics.Bandwidth
	for i := range collectors {
		merged.Merge(&collectors[i])
		bw.Merge(readerNodes[i].RxBandwidth())
	}
	summary := merged.Summary(uint64(cfg.Samples) * uint64(cfg.Receivers))
	summary.P50LatencyUs, summary.P95LatencyUs, summary.P99LatencyUs = tail.Snapshot()
	summary.Bytes = bw.Total()
	summary.AvgBps = bw.MeanRate()
	summary.BurstinessBps = bw.Burstiness()
	report := NetReport{Writer: writerNode.Stats()}
	for _, n := range readerNodes {
		report.Readers = append(report.Readers, n.Stats())
	}
	return summary, report, nil
}

// runConfigs expands cfg into `runs` configs with derived per-run seeds —
// the seed schedule every multi-run helper (RunN, RunCandidates,
// BuildDataset, RunQoSFigures) shares, so serial and parallel execution
// produce identical results.
func runConfigs(cfg Config, runs int) []Config {
	out := make([]Config, runs)
	for i := range out {
		out[i] = cfg
		out[i].Seed = sim.DeriveSeed(cfg.Seed, fmt.Sprintf("run-%d", i))
	}
	return out
}

// RunN executes the experiment `runs` times with derived seeds (the paper
// runs every configuration five times) and returns the per-run summaries.
func RunN(cfg Config, runs int) ([]metrics.Summary, error) {
	if runs < 1 {
		return nil, errors.New("experiment: runs must be >= 1")
	}
	return (&Runner{Jobs: 1}).RunMany(runConfigs(cfg, runs))
}

// Score extracts the configured composite metric from a summary.
func Score(s metrics.Summary, metric core.Metric) float64 {
	if metric == core.MetricReLate2Jit {
		return s.ReLate2Jit
	}
	return s.ReLate2
}

// MeanScore averages Score over runs.
func MeanScore(ss []metrics.Summary, metric core.Metric) float64 {
	if len(ss) == 0 {
		return 0
	}
	var total float64
	for _, s := range ss {
		total += Score(s, metric)
	}
	return total / float64(len(ss))
}

// CandidateResult holds one candidate protocol's summaries for a config.
type CandidateResult struct {
	Spec      transport.Spec
	Summaries []metrics.Summary
}

// candidateConfigs expands cfg into one config per (candidate, run) in
// candidate-major order, with the same per-run seed derivation RunN uses.
func candidateConfigs(cfg Config, runs int) []Config {
	cands := core.Candidates()
	out := make([]Config, 0, len(cands)*runs)
	for _, spec := range cands {
		c := cfg
		c.Protocol = spec
		out = append(out, runConfigs(c, runs)...)
	}
	return out
}

// RunCandidates runs every ADAMANT candidate protocol over the same
// environment (same derived seeds), returning results in Candidates()
// order.
func RunCandidates(cfg Config, runs int) ([]CandidateResult, error) {
	return RunCandidatesJobs(cfg, runs, 1)
}

// RunCandidatesJobs is RunCandidates with the candidate x run product
// spread over `jobs` workers (<= 0 means GOMAXPROCS). Results are
// identical to the serial path.
func RunCandidatesJobs(cfg Config, runs, jobs int) ([]CandidateResult, error) {
	if runs < 1 {
		return nil, errors.New("experiment: runs must be >= 1")
	}
	cands := core.Candidates()
	sums, err := (&Runner{Jobs: jobs}).RunMany(candidateConfigs(cfg, runs))
	if err != nil {
		return nil, err
	}
	out := make([]CandidateResult, len(cands))
	for i, spec := range cands {
		out[i] = CandidateResult{Spec: spec, Summaries: sums[i*runs : (i+1)*runs]}
	}
	return out, nil
}

// Winner returns the candidate index with the lowest (best) mean score for
// the metric.
func Winner(results []CandidateResult, metric core.Metric) int {
	best := 0
	bestScore := MeanScore(results[0].Summaries, metric)
	for i := 1; i < len(results); i++ {
		if s := MeanScore(results[i].Summaries, metric); s < bestScore {
			best, bestScore = i, s
		}
	}
	return best
}
