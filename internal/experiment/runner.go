package experiment

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"adamant/internal/metrics"
)

// Runner fans independent experiment runs out over a worker pool. Every run
// builds its own simulation kernel, network, and protocol stack from its
// Config (including the seed), so runs share no mutable state and results
// are bit-identical regardless of worker count or completion order — the
// pool changes wall-clock time, never output. The zero value runs with
// GOMAXPROCS workers.
type Runner struct {
	// Jobs is the worker count; <= 0 means runtime.GOMAXPROCS(0).
	Jobs int
	// Progress, when non-nil, is called after each run completes with the
	// number of finished runs and the total. Calls are serialized (the
	// callback needs no locking of its own) but may arrive from any worker
	// goroutine, and done is monotonically increasing across calls.
	Progress func(done, total int)
}

func (r *Runner) jobs() int {
	if r != nil && r.Jobs > 0 {
		return r.Jobs
	}
	return runtime.GOMAXPROCS(0)
}

// RunMany executes every config and returns the summaries in input order.
// On the first failure the remaining queue is abandoned (in-flight runs
// finish), and that first error is returned.
func (r *Runner) RunMany(configs []Config) ([]metrics.Summary, error) {
	sums, _, err := r.RunManyDetailed(configs)
	return sums, err
}

// RunManyDetailed is RunMany plus each run's per-node traffic report.
func (r *Runner) RunManyDetailed(configs []Config) ([]metrics.Summary, []NetReport, error) {
	total := len(configs)
	sums := make([]metrics.Summary, total)
	reports := make([]NetReport, total)
	err := r.ForEach(total, func(i int) error {
		s, rep, err := RunDetailed(configs[i])
		if err != nil {
			return fmt.Errorf("experiment: run %d of %d: %w", i+1, total, err)
		}
		sums[i], reports[i] = s, rep
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return sums, reports, nil
}

// ForEach invokes fn(i) for every i in [0, n) across the worker pool.
// Indices are claimed by atomic increment, so fn observes each index
// exactly once; fn must write results into caller-owned, index-disjoint
// storage (no two calls share a slot). The first error cancels the
// remaining queue (in-flight calls finish) and is returned. Progress, if
// set, fires serially after each successful call.
func (r *Runner) ForEach(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := r.jobs()
	if workers > n {
		workers = n
	}
	ctx, cancel := context.WithCancelCause(context.Background())
	defer cancel(nil)
	var (
		next int64      = -1
		done int        // guarded by mu
		mu   sync.Mutex // serializes Progress
		wg   sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n || ctx.Err() != nil {
					return
				}
				if err := fn(i); err != nil {
					cancel(err)
					return
				}
				if r.Progress != nil {
					mu.Lock()
					done++
					r.Progress(done, n)
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return context.Cause(ctx)
}
