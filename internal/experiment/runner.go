package experiment

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"adamant/internal/metrics"
)

// Runner fans independent experiment runs out over a worker pool. Every run
// builds its own simulation kernel, network, and protocol stack from its
// Config (including the seed), so runs share no mutable state and results
// are bit-identical regardless of worker count or completion order — the
// pool changes wall-clock time, never output. The zero value runs with
// GOMAXPROCS workers.
type Runner struct {
	// Jobs is the worker count; <= 0 means runtime.GOMAXPROCS(0).
	Jobs int
	// Progress, when non-nil, is called after each run completes with the
	// number of finished runs and the total. Calls are serialized (the
	// callback needs no locking of its own) but may arrive from any worker
	// goroutine, and done is monotonically increasing across calls.
	Progress func(done, total int)
}

func (r *Runner) jobs() int {
	if r != nil && r.Jobs > 0 {
		return r.Jobs
	}
	return runtime.GOMAXPROCS(0)
}

// RunMany executes every config and returns the summaries in input order.
// On the first failure the remaining queue is abandoned (in-flight runs
// finish), and that first error is returned.
func (r *Runner) RunMany(configs []Config) ([]metrics.Summary, error) {
	sums, _, err := r.RunManyDetailed(configs)
	return sums, err
}

// RunManyDetailed is RunMany plus each run's per-node traffic report.
func (r *Runner) RunManyDetailed(configs []Config) ([]metrics.Summary, []NetReport, error) {
	total := len(configs)
	sums := make([]metrics.Summary, total)
	reports := make([]NetReport, total)
	if total == 0 {
		return sums, reports, nil
	}
	workers := r.jobs()
	if workers > total {
		workers = total
	}

	// Workers claim the next unclaimed config by atomic increment; results
	// land at the claimed index, so output order is input order no matter
	// which worker finishes when. The first error cancels the context,
	// which stops workers from claiming further configs.
	ctx, cancel := context.WithCancelCause(context.Background())
	defer cancel(nil)
	var (
		next int64 = -1
		done int        // guarded by mu
		mu   sync.Mutex // serializes Progress
		wg   sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= total || ctx.Err() != nil {
					return
				}
				s, rep, err := RunDetailed(configs[i])
				if err != nil {
					cancel(fmt.Errorf("experiment: run %d of %d: %w", i+1, total, err))
					return
				}
				sums[i], reports[i] = s, rep
				if r.Progress != nil {
					mu.Lock()
					done++
					r.Progress(done, total)
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if err := context.Cause(ctx); err != nil {
		return nil, nil, err
	}
	return sums, reports, nil
}
