package experiment

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"

	"adamant/internal/ann"
	"adamant/internal/core"
	"adamant/internal/dds"
	"adamant/internal/netem"
	"adamant/internal/sim"
	"adamant/internal/transport"
)

// Row is one labeled training example for the configurator: an environment
// + application description, the metric of interest, the winning candidate
// protocol, and every candidate's mean score (kept for analysis).
type Row struct {
	Features core.Features
	Winner   int // index into core.Candidates()
	Scores   []float64
}

// EnvCombo is one sampled point of the Table 1 x Table 2 space.
type EnvCombo struct {
	Machine   netem.Machine
	Bandwidth netem.Bandwidth
	Impl      dds.Impl
	LossPct   float64
	Receivers int
	RateHz    float64
}

// FullSpace enumerates the complete Table 1 x Table 2 cross product:
// 2 machines x 3 bandwidths x 2 implementations x 5 loss levels x
// 5 receiver counts x 4 rates = 1200 combinations.
func FullSpace() []EnvCombo {
	var out []EnvCombo
	for _, m := range []netem.Machine{netem.PC850, netem.PC3000} {
		for _, bw := range []netem.Bandwidth{netem.Mbps10, netem.Mbps100, netem.Gbps1} {
			for _, impl := range dds.Impls() {
				for loss := 1; loss <= 5; loss++ {
					for _, recv := range []int{3, 6, 9, 12, 15} {
						for _, rate := range []float64{10, 25, 50, 100} {
							out = append(out, EnvCombo{
								Machine: m, Bandwidth: bw, Impl: impl,
								LossPct: float64(loss), Receivers: recv, RateHz: rate,
							})
						}
					}
				}
			}
		}
	}
	return out
}

// SampleSpace deterministically samples n combinations from FullSpace —
// the paper's coarse-grained exploration kept 197 environment
// configurations, which with both metrics of interest yields its 394
// training inputs.
func SampleSpace(n int, seed int64) []EnvCombo {
	all := FullSpace()
	if n >= len(all) {
		return all
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	return all[:n]
}

// DatasetOptions parameterize BuildDataset.
type DatasetOptions struct {
	// Combos is the number of environment combinations (paper: 197,
	// giving 394 rows across the two metrics). Default 197.
	Combos int
	// Runs per (combo, protocol). Default 3.
	Runs int
	// Samples per run. Default 600 (the winner labels stabilize well
	// below the paper's 20000).
	Samples int
	// Seed drives sampling and run seeds. Default 1.
	Seed int64
	// Jobs is the worker-pool width for the combo x candidate x run
	// product; <= 0 means GOMAXPROCS. Output is identical at any width.
	Jobs int
	// Progress, when non-nil, receives status lines.
	Progress func(format string, args ...any)
	// OnRun, when non-nil, is called after each individual run completes
	// with (done, total) run counts. Calls are serialized by the runner.
	OnRun func(done, total int)
}

func (o *DatasetOptions) fillDefaults() {
	if o.Combos <= 0 {
		o.Combos = 197
	}
	if o.Runs <= 0 {
		o.Runs = 3
	}
	if o.Samples <= 0 {
		o.Samples = 600
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Progress == nil {
		o.Progress = func(string, ...any) {}
	}
}

// BuildDataset runs every candidate protocol over each sampled environment
// and labels the winner under both composite metrics, producing
// 2 x Combos rows. The whole combo x candidate x run product is flattened
// into one job list and spread over Jobs workers; per-run seeds are derived
// exactly as the serial path derived them, so the rows (and their CSV
// serialization) are byte-identical at any worker count.
func BuildDataset(opts DatasetOptions) ([]Row, error) {
	opts.fillDefaults()
	combos := SampleSpace(opts.Combos, opts.Seed)
	cands := core.Candidates()
	perCombo := len(cands) * opts.Runs
	cfgs := make([]Config, 0, len(combos)*perCombo)
	for i, combo := range combos {
		cfg := Config{
			Machine:   combo.Machine,
			Bandwidth: combo.Bandwidth,
			Impl:      combo.Impl,
			LossPct:   combo.LossPct,
			Receivers: combo.Receivers,
			RateHz:    combo.RateHz,
			Samples:   opts.Samples,
			Seed:      sim.DeriveSeed(opts.Seed, fmt.Sprintf("dataset-%d", i)),
		}
		cfgs = append(cfgs, candidateConfigs(cfg, opts.Runs)...)
	}
	runner := &Runner{Jobs: opts.Jobs, Progress: opts.OnRun}
	sums, err := runner.RunMany(cfgs)
	if err != nil {
		return nil, fmt.Errorf("experiment: dataset: %w", err)
	}
	rows := make([]Row, 0, 2*len(combos))
	for i, combo := range combos {
		results := make([]CandidateResult, len(cands))
		for ci, spec := range cands {
			k := i*perCombo + ci*opts.Runs
			results[ci] = CandidateResult{Spec: spec, Summaries: sums[k : k+opts.Runs]}
		}
		for _, metric := range core.Metrics() {
			scores := make([]float64, len(results))
			for ci, res := range results {
				scores[ci] = MeanScore(res.Summaries, metric)
			}
			rows = append(rows, Row{
				Features: core.FeaturesFor(combo.Machine, combo.Bandwidth, combo.Impl,
					combo.LossPct, combo.Receivers, combo.RateHz, metric),
				Winner: Winner(results, metric),
				Scores: scores,
			})
		}
		base := cfgs[i*perCombo]
		base.Protocol = transport.Spec{}
		opts.Progress("dataset %d/%d: %s -> %s / %s", i+1, len(combos), base.String(),
			core.Candidates()[rows[len(rows)-2].Winner], core.Candidates()[rows[len(rows)-1].Winner])
	}
	return rows, nil
}

// ToANNDataset converts labeled rows to the neural network's input/target
// representation.
func ToANNDataset(rows []Row) *ann.Dataset {
	var ds ann.Dataset
	for _, r := range rows {
		ds.Add(r.Features.Vector(), ann.OneHot(core.NumCandidates, r.Winner))
	}
	return &ds
}

// csvHeader is the dataset CSV schema.
var csvHeader = []string{
	"machine_mhz", "bandwidth_mbps", "impl", "loss_pct", "receivers", "rate_hz",
	"overhead_pct", "metric", "winner",
	"score_nakcast50ms", "score_nakcast25ms", "score_nakcast10ms", "score_nakcast1ms",
	"score_ricochet_r4c3", "score_ricochet_r8c3", "score_fountcast_k8oh25",
}

// WriteCSV writes rows in the documented schema.
func WriteCSV(w io.Writer, rows []Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			strconv.FormatFloat(r.Features.MachineMHz, 'g', -1, 64),
			strconv.FormatFloat(r.Features.BandwidthMbps, 'g', -1, 64),
			r.Features.Impl.String(),
			strconv.FormatFloat(r.Features.LossPct, 'g', -1, 64),
			strconv.Itoa(r.Features.Receivers),
			strconv.FormatFloat(r.Features.RateHz, 'g', -1, 64),
			strconv.FormatFloat(r.Features.OverheadPct, 'g', -1, 64),
			r.Features.Metric.String(),
			strconv.Itoa(r.Winner),
		}
		for _, s := range r.Scores {
			rec = append(rec, strconv.FormatFloat(s, 'g', 8, 64))
		}
		for len(rec) < len(csvHeader) {
			rec = append(rec, "")
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses rows written by WriteCSV.
func ReadCSV(r io.Reader) ([]Row, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	records, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(records) == 0 {
		return nil, errors.New("experiment: empty dataset CSV")
	}
	var rows []Row
	for i, rec := range records[1:] {
		if len(rec) < 9 {
			return nil, fmt.Errorf("experiment: CSV row %d has %d fields", i+2, len(rec))
		}
		var row Row
		var err error
		if row.Features.MachineMHz, err = strconv.ParseFloat(rec[0], 64); err != nil {
			return nil, fmt.Errorf("experiment: CSV row %d machine_mhz: %w", i+2, err)
		}
		if row.Features.BandwidthMbps, err = strconv.ParseFloat(rec[1], 64); err != nil {
			return nil, fmt.Errorf("experiment: CSV row %d bandwidth: %w", i+2, err)
		}
		if row.Features.Impl, err = dds.ImplByName(rec[2]); err != nil {
			return nil, fmt.Errorf("experiment: CSV row %d: %w", i+2, err)
		}
		if row.Features.LossPct, err = strconv.ParseFloat(rec[3], 64); err != nil {
			return nil, fmt.Errorf("experiment: CSV row %d loss: %w", i+2, err)
		}
		if row.Features.Receivers, err = strconv.Atoi(rec[4]); err != nil {
			return nil, fmt.Errorf("experiment: CSV row %d receivers: %w", i+2, err)
		}
		if row.Features.RateHz, err = strconv.ParseFloat(rec[5], 64); err != nil {
			return nil, fmt.Errorf("experiment: CSV row %d rate: %w", i+2, err)
		}
		if row.Features.OverheadPct, err = strconv.ParseFloat(rec[6], 64); err != nil {
			return nil, fmt.Errorf("experiment: CSV row %d overhead: %w", i+2, err)
		}
		switch rec[7] {
		case core.MetricReLate2.String():
			row.Features.Metric = core.MetricReLate2
		case core.MetricReLate2Jit.String():
			row.Features.Metric = core.MetricReLate2Jit
		default:
			return nil, fmt.Errorf("experiment: CSV row %d unknown metric %q", i+2, rec[7])
		}
		if row.Winner, err = strconv.Atoi(rec[8]); err != nil {
			return nil, fmt.Errorf("experiment: CSV row %d winner: %w", i+2, err)
		}
		if row.Winner < 0 || row.Winner >= core.NumCandidates {
			return nil, fmt.Errorf("experiment: CSV row %d winner %d out of range", i+2, row.Winner)
		}
		for _, f := range rec[9:] {
			if f == "" {
				continue
			}
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("experiment: CSV row %d score: %w", i+2, err)
			}
			row.Scores = append(row.Scores, v)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// WriteCSVFile writes rows to path.
func WriteCSVFile(path string, rows []Row) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteCSV(f, rows); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadCSVFile reads rows from path.
func ReadCSVFile(path string) ([]Row, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(f)
}
