package experiment

import (
	"strconv"
	"strings"
	"testing"

	"adamant/internal/core"
	"adamant/internal/dds"
	"adamant/internal/netem"
)

// syntheticRows builds a learnable labeled dataset without running
// simulations: fast machines prefer Ricochet R4C3, slow ones NAKcast 1ms —
// the paper's actual decision boundary.
func syntheticRows(n int) []Row {
	machines := []netem.Machine{netem.PC850, netem.PC3000}
	bws := []netem.Bandwidth{netem.Mbps10, netem.Mbps100, netem.Gbps1}
	var rows []Row
	for i := 0; i < n; i++ {
		m := machines[i%2]
		bw := bws[i%3]
		impl := dds.Impls()[i%2]
		loss := float64(1 + i%5)
		recv := 3 + 3*(i%5)
		rate := []float64{10, 25, 50, 100}[i%4]
		metric := core.Metrics()[i%2]
		winner := 3 // nakcast 1ms
		if m.Name == "pc3000" {
			winner = 4 // ricochet r4c3
		}
		rows = append(rows, Row{
			Features: core.FeaturesFor(m, bw, impl, loss, recv, rate, metric),
			Winner:   winner,
			Scores:   make([]float64, core.NumCandidates),
		})
	}
	return rows
}

func fastANNOpts() ANNOptions {
	return ANNOptions{
		HiddenSizes:   []int{4, 12},
		TrainsPerSize: 2,
		Folds:         5,
		StopError:     1e-3,
		MaxEpochs:     400,
		Seed:          2,
	}
}

func TestFigure18(t *testing.T) {
	tab, err := Figure18(syntheticRows(60), fastANNOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d, want one per hidden size", len(tab.Rows))
	}
	// The synthetic problem is trivially separable: the larger network
	// must reach 100% training accuracy in every run.
	last := tab.Rows[len(tab.Rows)-1]
	if last[1] != "2/2" {
		t.Errorf("hidden=12 perfect runs = %s, want 2/2 (rows: %v)", last[1], tab.Rows)
	}
	if _, err := Figure18(nil, fastANNOpts()); err == nil {
		t.Error("empty rows should error")
	}
}

func TestFigure19(t *testing.T) {
	tab, err := Figure19(syntheticRows(60), fastANNOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	acc, err := strconv.ParseFloat(tab.Rows[1][1], 64)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 90 {
		t.Errorf("CV accuracy %.2f%% on separable problem, want >= 90%%", acc)
	}
	if _, err := Figure19(syntheticRows(3), fastANNOpts()); err == nil {
		t.Error("too few rows for folds should error")
	}
}

func TestQueryTimings(t *testing.T) {
	rows := syntheticRows(40)
	opts := fastANNOpts()
	timings, err := QueryTimings(rows, 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(timings) != 3 { // host, pc3000, pc850
		t.Fatalf("got %d timing rows", len(timings))
	}
	host := timings[0]
	if host.Queries != 80 {
		t.Errorf("Queries = %d, want 2x40", host.Queries)
	}
	if host.MeanUs <= 0 || host.MeanUs > 1000 {
		t.Errorf("host mean %.3fus implausible", host.MeanUs)
	}
	// Paper's headline: the query is bounded and fast (<10us on decade-
	// newer hardware than the paper's; allow margin for CI noise).
	if host.MeanUs > 10 {
		t.Logf("warning: host mean query time %.3fus exceeds 10us target", host.MeanUs)
	}
	var pc850, pc3000 TimingResult
	for _, r := range timings[1:] {
		switch r.Platform {
		case "pc850":
			pc850 = r
		case "pc3000":
			pc3000 = r
		}
	}
	if pc850.MeanUs <= pc3000.MeanUs {
		t.Error("pc850 emulated timing should exceed pc3000")
	}
	if _, err := QueryTimings(nil, 2, opts); err == nil {
		t.Error("empty rows should error")
	}
}

func TestFigures20And21(t *testing.T) {
	rows := syntheticRows(40)
	opts := fastANNOpts()
	t20, err := Figure20(rows, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(t20.Rows) != 3 || !strings.Contains(t20.Format(), "mean (us)") {
		t.Errorf("Figure 20 = %+v", t20)
	}
	t21, err := Figure21(rows, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(t21.Rows) != 3 {
		t.Errorf("Figure 21 rows = %d", len(t21.Rows))
	}
}
