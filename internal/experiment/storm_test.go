package experiment

import (
	"testing"
)

// TestRunShardedWidthInvariance pins the engine contract at the experiment
// level: the same config produces an identical QoS summary at every worker
// count, so -shards is a wall-clock knob, never a results knob.
func TestRunShardedWidthInvariance(t *testing.T) {
	cfg := Config{Receivers: 8, RateHz: 100, Samples: 200, LossPct: 3, Seed: 7, Shards: 1}
	base, baseRep, err := RunDetailed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if base.Delivered == 0 {
		t.Fatalf("sharded run delivered nothing: %+v", base)
	}
	for _, shards := range []int{2, 8} {
		cfg.Shards = shards
		s, rep, err := RunDetailed(cfg)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if s != base {
			t.Errorf("shards=%d summary diverged:\n got %+v\nwant %+v", shards, s, base)
		}
		if rep.TotalTx() != baseRep.TotalTx() {
			t.Errorf("shards=%d tx packets %d, want %d", shards, rep.TotalTx(), baseRep.TotalTx())
		}
	}
}

// TestRunShardedReplay pins same-seed replayability on the sharded engine.
func TestRunShardedReplay(t *testing.T) {
	cfg := Config{Receivers: 6, RateHz: 100, Samples: 150, LossPct: 5, Seed: 3, Shards: 4}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed, different summaries:\n a %+v\n b %+v", a, b)
	}
}

// TestStormEndToEnd runs the full 1000-receiver multicast storm. This is
// the headline large-scale scenario; -short trims the group so the smoke
// check stays cheap.
func TestStormEndToEnd(t *testing.T) {
	receivers := 1000
	samples := 0 // preset default
	if testing.Short() {
		receivers = 100
		samples = 100
	}
	cfg := Storm(receivers, 8, 1)
	if samples != 0 {
		cfg.Samples = samples
	}
	s, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(cfg.Samples) * uint64(receivers); s.Sent != want {
		t.Errorf("sent %d, want %d", s.Sent, want)
	}
	if s.Reliability() < 95 {
		t.Errorf("storm reliability %.2f%%, want >= 95%% at 1%% loss with no repair", s.Reliability())
	}
	if s.AvgLatencyUs <= 0 || s.P99LatencyUs < s.P50LatencyUs {
		t.Errorf("implausible latency profile: %+v", s)
	}
}
