package experiment

// The adaptation figure closes the loop the paper leaves as future work:
// "when the system detects environmental changes... supervised machine
// learning can provide guidance to support QoS for the new configuration".
// A drifting environment (the workload's rate and the network's loss change
// mid-run) is driven twice: once per candidate protocol held fixed for the
// whole run (the best any static configuration can do), and once with the
// in-mission Adaptor hot-swapping the transport through Participant.Rebind
// when the drift crosses its tolerances. The figure reports the composite
// QoS score of every static run against the adaptive run, plus the cost of
// adapting: the Rebind apply time and how long each superseded transport
// generation took to drain on the slowest receiver.

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"adamant/internal/core"
	"adamant/internal/dds"
	"adamant/internal/env"
	"adamant/internal/metrics"
	"adamant/internal/netem"
	"adamant/internal/sim"
	"adamant/internal/transport"
	"adamant/internal/transport/protocols"
	"adamant/internal/wire"
)

// DriftPhase is one leg of a drifting environment: the writer publishes
// Samples samples at RateHz while every receiver sees LossPct end-host
// loss. Consecutive phases model the environmental change the adaptor is
// meant to notice.
type DriftPhase struct {
	Samples int
	RateHz  float64
	LossPct float64
}

func (p DriftPhase) period() time.Duration {
	return time.Duration(float64(time.Second) / p.RateHz)
}

// AdaptationConfig describes the drifting-environment experiment.
type AdaptationConfig struct {
	Machine      netem.Machine
	Bandwidth    netem.Bandwidth
	Impl         dds.Impl
	Receivers    int
	PayloadBytes int
	Metric       core.Metric
	Seed         int64
	// Phases is the drift script, played in order. At each phase boundary
	// the publish rate changes and every receiver's loss is re-set.
	Phases []DriftPhase
	// Interval and Cooldown tune the in-mission Adaptor.
	Interval time.Duration
	Cooldown time.Duration
}

func (c *AdaptationConfig) fillDefaults() {
	if c.Machine.Name == "" {
		c.Machine = netem.PC3000
	}
	if c.Bandwidth == 0 {
		c.Bandwidth = netem.Gbps1
	}
	if c.Receivers == 0 {
		c.Receivers = 3
	}
	if c.PayloadBytes == 0 {
		c.PayloadBytes = 12
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if len(c.Phases) == 0 {
		// A calm high-rate start (any NAKcast wins: no loss, nothing to
		// repair), then the network degrades while the application slows —
		// the regime where Ricochet's proactive FEC beats reactive NAK
		// repair (the paper's Figure 4 environment). The two phases have
		// different winners, so a static choice must lose one of them.
		c.Phases = []DriftPhase{
			{Samples: 600, RateHz: 50, LossPct: 0},
			{Samples: 600, RateHz: 25, LossPct: 5},
		}
	}
	if c.Interval <= 0 {
		c.Interval = 50 * time.Millisecond
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 250 * time.Millisecond
	}
}

func (c AdaptationConfig) validate() error {
	if len(c.Phases) < 1 {
		return errors.New("experiment: adaptation needs at least one phase")
	}
	for i, p := range c.Phases {
		if p.Samples < 1 || p.RateHz <= 0 || p.LossPct < 0 || p.LossPct > 100 {
			return fmt.Errorf("experiment: adaptation phase %d invalid: %+v", i, p)
		}
	}
	if c.Receivers < 1 {
		return errors.New("experiment: adaptation needs at least one receiver")
	}
	return nil
}

func (c AdaptationConfig) totalSamples() int {
	total := 0
	for _, p := range c.Phases {
		total += p.Samples
	}
	return total
}

func (c AdaptationConfig) publishTime() time.Duration {
	var total time.Duration
	for _, p := range c.Phases {
		total += time.Duration(p.Samples) * p.period()
	}
	return total
}

func (c AdaptationConfig) features(p DriftPhase) core.Features {
	return core.FeaturesFor(c.Machine, c.Bandwidth, c.Impl,
		p.LossPct, c.Receivers, p.RateHz, c.Metric)
}

// AdaptationRow is one contender's result over the full drifting run.
type AdaptationRow struct {
	Label   string
	Spec    transport.Spec // zero-valued for the adaptive row
	Summary metrics.Summary
	Score   float64 // lower is better (ReLate2 family)
}

// AdaptationReport is everything the adaptation figure shows.
type AdaptationReport struct {
	Config AdaptationConfig
	// PhaseWinners[k] is the candidate the calibration sweep measured best
	// for phase k in isolation — the oracle the adaptive run's table
	// selector is loaded with.
	PhaseWinners []transport.Spec
	// Static holds one row per candidate protocol held fixed across the
	// whole drift, in Candidates() order; BestStatic indexes the winner.
	Static     []AdaptationRow
	BestStatic int
	Adaptive   AdaptationRow
	// Switches are the live reconfigurations the adaptive run performed;
	// ApplyTime is the host-clock cost of each Participant.Rebind call.
	// SwitchAt[k] is switch k's simulation time relative to run start.
	Switches []core.SwitchRecord
	SwitchAt []time.Duration
	// DrainLatencyMax[k] is how long superseded transport generation k took
	// to finish delivering on the slowest receiver after its handoff — the
	// tail of the reconfiguration cost.
	DrainLatencyMax []time.Duration
}

// AdaptiveWins reports whether the adaptive run scored at least as well as
// the best static run, within tolerance (a fraction: 0.05 allows adaptive
// to be up to 5% worse — switch transients are not free).
func (r AdaptationReport) AdaptiveWins(tolerance float64) bool {
	if len(r.Static) == 0 {
		return false
	}
	return r.Adaptive.Score <= r.Static[r.BestStatic].Score*(1+tolerance)
}

// String renders the figure as a text table.
func (r AdaptationReport) String() string {
	var b strings.Builder
	metric := "ReLate2"
	if r.Config.Metric == core.MetricReLate2Jit {
		metric = "ReLate2Jit"
	}
	fmt.Fprintf(&b, "adaptation figure: %d-phase drift, %s (lower is better)\n", len(r.Config.Phases), metric)
	for i, p := range r.Config.Phases {
		fmt.Fprintf(&b, "  phase %d: %d samples @ %gHz, %g%% loss  (isolated winner: %s)\n",
			i, p.Samples, p.RateHz, p.LossPct, r.PhaseWinners[i])
	}
	for i, row := range r.Static {
		mark := "  "
		if i == r.BestStatic {
			mark = "* "
		}
		fmt.Fprintf(&b, "  %sstatic %-28s %-10s %10.1f  rel=%.2f%% lat=%.0fus\n",
			mark, row.Label, metric, row.Score, row.Summary.Reliability(), row.Summary.AvgLatencyUs)
	}
	fmt.Fprintf(&b, "  > adaptive %-26s %-10s %10.1f  rel=%.2f%% lat=%.0fus\n",
		r.Adaptive.Label, metric, r.Adaptive.Score, r.Adaptive.Summary.Reliability(), r.Adaptive.Summary.AvgLatencyUs)
	for i, sw := range r.Switches {
		drain := time.Duration(0)
		if i < len(r.DrainLatencyMax) {
			drain = r.DrainLatencyMax[i]
		}
		at := time.Duration(0)
		if i < len(r.SwitchAt) {
			at = r.SwitchAt[i]
		}
		fmt.Fprintf(&b, "  switch %d: -> %s at t=%v (apply %v, old generation drained in %v)\n",
			i, sw.Spec, at, sw.ApplyTime, drain)
	}
	return b.String()
}

// RunAdaptationFigure runs the whole figure: a per-phase calibration sweep
// over every candidate (building the oracle table), one full drifting run
// per static candidate, and one adaptive run.
func RunAdaptationFigure(cfg AdaptationConfig) (AdaptationReport, error) {
	cfg.fillDefaults()
	if err := cfg.validate(); err != nil {
		return AdaptationReport{}, err
	}
	report := AdaptationReport{Config: cfg}

	// Calibration: measure every candidate against each phase held steady,
	// exactly the paper's offline supervised sweep, and load the winners
	// into the exact-match table the adaptor queries at runtime.
	table := core.NewTableSelector()
	cands := core.Candidates()
	for pi, p := range cfg.Phases {
		best, bestScore := 0, 0.0
		for ci, spec := range cands {
			ss, err := RunN(Config{
				Machine: cfg.Machine, Bandwidth: cfg.Bandwidth, Impl: cfg.Impl,
				LossPct: p.LossPct, Receivers: cfg.Receivers, RateHz: p.RateHz,
				Samples: p.Samples, PayloadBytes: cfg.PayloadBytes, Protocol: spec,
				Seed: sim.DeriveSeed(cfg.Seed, fmt.Sprintf("adapt-cal-%d-%d", pi, ci)),
			}, 3)
			if err != nil {
				return AdaptationReport{}, fmt.Errorf("calibrating phase %d with %s: %w", pi, spec, err)
			}
			if score := MeanScore(ss, cfg.Metric); ci == 0 || score < bestScore {
				best, bestScore = ci, score
			}
		}
		report.PhaseWinners = append(report.PhaseWinners, cands[best])
		table.Put(cfg.features(p), cands[best])
	}

	// Static baselines: every candidate rides out the full drift unchanged.
	for ci, spec := range cands {
		res, err := runDrift(cfg, spec, nil)
		if err != nil {
			return AdaptationReport{}, fmt.Errorf("static %s: %w", spec, err)
		}
		row := AdaptationRow{Label: spec.String(), Spec: spec,
			Summary: res.summary, Score: Score(res.summary, cfg.Metric)}
		report.Static = append(report.Static, row)
		if row.Score < report.Static[report.BestStatic].Score {
			report.BestStatic = ci
		}
	}

	// The adaptive run: boot on phase 0's winner, let the adaptor re-query
	// the table when the environment drifts and hot-swap the live writers.
	res, err := runDrift(cfg, report.PhaseWinners[0], table)
	if err != nil {
		return AdaptationReport{}, fmt.Errorf("adaptive run: %w", err)
	}
	report.Adaptive = AdaptationRow{Label: "(oracle table)",
		Summary: res.summary, Score: Score(res.summary, cfg.Metric)}
	report.Switches = res.switches
	report.SwitchAt = res.switchAt
	report.DrainLatencyMax = res.drains
	return report, nil
}

// driftResult is one drifting run's outcome.
type driftResult struct {
	summary  metrics.Summary
	switches []core.SwitchRecord
	switchAt []time.Duration // sim time of each switch, relative to start
	drains   []time.Duration // per superseded generation, slowest receiver
}

// runDrift plays the drift script over a live DDS stack. With a nil
// selector the transport stays fixed (a static baseline); with a selector
// an Adaptor watches the drift and a Rebinder hot-swaps the writer's
// transport mid-run.
func runDrift(cfg AdaptationConfig, initial transport.Spec, selector core.Selector) (driftResult, error) {
	kernel := sim.New(sim.DeriveSeed(cfg.Seed, "adapt-drift-"+initial.String()))
	totalSamples := cfg.totalSamples()
	var start time.Time
	kernel.SetEventLimit(uint64(totalSamples)*uint64(cfg.Receivers)*200 + 10_000_000)
	e := env.NewSim(kernel)
	start = e.Now()
	network, err := netem.New(e, netem.Config{Bandwidth: cfg.Bandwidth})
	if err != nil {
		return driftResult{}, err
	}
	reg := protocols.MustRegistry()

	writerNode := network.AddNode(cfg.Machine)
	readerNodes := make([]*netem.Node, cfg.Receivers)
	readerIDs := make([]wire.NodeID, cfg.Receivers)
	for i := range readerNodes {
		readerNodes[i] = network.AddNode(cfg.Machine)
		readerNodes[i].SetLoss(cfg.Phases[0].LossPct)
		readerIDs[i] = readerNodes[i].Local()
	}
	receivers := transport.StaticReceivers(readerIDs...)

	mkParticipant := func(node *netem.Node) (*dds.DomainParticipant, error) {
		return dds.NewParticipant(dds.ParticipantConfig{
			Env: e, Endpoint: node, Registry: reg, Transport: initial,
			Impl: cfg.Impl, SenderID: writerNode.Local(), Receivers: receivers,
		})
	}
	writerP, err := mkParticipant(writerNode)
	if err != nil {
		return driftResult{}, err
	}
	topic, err := writerP.CreateTopic(topicName, dds.TopicQoS{Reliability: dds.Reliable})
	if err != nil {
		return driftResult{}, err
	}
	writer, err := writerP.CreateDataWriter(topic, dds.WriterQoS{Reliability: dds.Reliable})
	if err != nil {
		return driftResult{}, err
	}
	collectors := make([]metrics.Collector, cfg.Receivers)
	tail := metrics.NewLatencyTail()
	readers := make([]*dds.DataReader, cfg.Receivers)
	for i := range readerNodes {
		i := i
		p, err := mkParticipant(readerNodes[i])
		if err != nil {
			return driftResult{}, err
		}
		rt, err := p.CreateTopic(topicName, dds.TopicQoS{Reliability: dds.Reliable})
		if err != nil {
			return driftResult{}, err
		}
		readers[i], err = p.CreateDataReader(rt, dds.ReaderQoS{Reliability: dds.Reliable, History: dds.KeepLast, Depth: 1},
			dds.ListenerFuncs{Data: func(s dds.Sample) {
				collectors[i].OnDeliver(s.Info.SentAt, s.Info.ReceivedAt, s.Info.Recovered)
				tail.Add(float64(s.Info.Latency()) / float64(time.Microsecond))
			}})
		if err != nil {
			return driftResult{}, err
		}
	}

	// The drift script: phase index advances as samples go out; each phase
	// boundary re-sets every receiver's loss. phase is read by both the
	// publish tick and the adaptor's observe callback (serial env context).
	phase := 0
	var rebinder *core.Rebinder
	var adaptor *core.Adaptor
	if selector != nil {
		rebinder, err = core.NewRebinder(e, writerP)
		if err != nil {
			return driftResult{}, err
		}
		adaptor, err = core.NewAdaptor(e, selector,
			core.Decision{Features: cfg.features(cfg.Phases[0]), Spec: initial},
			func() core.Observation {
				p := cfg.Phases[phase]
				return core.Observation{Receivers: cfg.Receivers, RateHz: p.RateHz, LossPct: p.LossPct}
			},
			rebinder.Reconfigure,
			core.AdaptorOptions{Interval: cfg.Interval, Cooldown: cfg.Cooldown})
		if err != nil {
			return driftResult{}, err
		}
	}

	payload := make([]byte, cfg.PayloadBytes)
	rng := kernel.Rand("experiment/payload")
	published, phaseSent := 0, 0
	var writeErr error
	var tick func()
	tick = func() {
		if published >= totalSamples {
			writeErr = writer.Close()
			return
		}
		if phaseSent >= cfg.Phases[phase].Samples {
			phase++
			phaseSent = 0
			for _, n := range readerNodes {
				n.SetLoss(cfg.Phases[phase].LossPct)
			}
		}
		rng.Read(payload)
		if err := writer.Write(payload); err != nil {
			writeErr = err
			return
		}
		published++
		phaseSent++
		e.Schedule(cfg.Phases[phase].period(), tick)
	}
	e.Post(tick)

	// The adaptor re-arms its check timer forever, so the kernel cannot
	// simply drain: run past the publish window, stop the adaptor, then
	// drain the rest (tail recovery, swap announcements) to quiescence.
	if err := kernel.RunFor(cfg.publishTime() + 5*time.Second); err != nil {
		return driftResult{}, err
	}
	if adaptor != nil {
		if err := adaptor.Close(); err != nil {
			return driftResult{}, err
		}
	}
	if err := kernel.Run(); err != nil {
		return driftResult{}, err
	}
	if writeErr != nil {
		return driftResult{}, writeErr
	}

	var merged metrics.Collector
	var bw metrics.Bandwidth
	for i := range collectors {
		merged.Merge(&collectors[i])
		bw.Merge(readerNodes[i].RxBandwidth())
	}
	res := driftResult{}
	res.summary = merged.Summary(uint64(totalSamples) * uint64(cfg.Receivers))
	res.summary.P50LatencyUs, res.summary.P95LatencyUs, res.summary.P99LatencyUs = tail.Snapshot()
	res.summary.Bytes = bw.Total()
	res.summary.AvgBps = bw.MeanRate()
	res.summary.BurstinessBps = bw.Burstiness()
	if rebinder != nil {
		res.switches = rebinder.Switches()
		for _, sw := range res.switches {
			res.switchAt = append(res.switchAt, sw.At.Sub(start))
		}
		// Drain cost of superseded generation k = the slowest receiver's
		// DrainLatency for epoch k.
		for k := 0; k < len(res.switches); k++ {
			var max time.Duration
			for _, r := range readers {
				for _, ep := range r.TransportEpochs() {
					if int(ep.Epoch) == k && ep.Done && ep.DrainLatency > max {
						max = ep.DrainLatency
					}
				}
			}
			res.drains = append(res.drains, max)
		}
	}
	return res, nil
}
