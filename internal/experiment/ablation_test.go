package experiment

import (
	"strconv"
	"strings"
	"testing"
)

func cell(t *testing.T, tab Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSpace(tab.Rows[row][col]), 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q: %v", row, col, tab.Rows[row][col], err)
	}
	return v
}

func fastAblationOpts() AblationOptions { return AblationOptions{Samples: 800, Seed: 4} }

func TestAblationOrdering(t *testing.T) {
	tab, err := AblationOrdering(fastAblationOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	ordLat, unordLat := cell(t, tab, 0, 2), cell(t, tab, 1, 2)
	if unordLat >= ordLat {
		t.Errorf("unordered latency %.0f should be below ordered %.0f (HOL blocking)", unordLat, ordLat)
	}
	ordRel, unordRel := cell(t, tab, 0, 1), cell(t, tab, 1, 1)
	if unordRel < ordRel-0.1 {
		t.Errorf("unordered reliability %.2f dropped vs ordered %.2f; recovery should be unchanged", unordRel, ordRel)
	}
}

func TestAblationFlush(t *testing.T) {
	tab, err := AblationFlush(fastAblationOpts())
	if err != nil {
		t.Fatal(err)
	}
	withLat, withoutLat := cell(t, tab, 0, 2), cell(t, tab, 1, 2)
	if withLat >= withoutLat {
		t.Errorf("flush-on latency %.0f should beat flush-off %.0f at 10Hz", withLat, withoutLat)
	}
	// Without the flush, recovery waits ~R/rate = 400ms; the latency gap
	// should be substantial, not marginal.
	if withoutLat < withLat*2 {
		t.Errorf("flush-off latency %.0f not clearly worse than %.0f", withoutLat, withLat)
	}
}

func TestAblationStagger(t *testing.T) {
	tab, err := AblationStagger(fastAblationOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Stagger's reliability effect is small and can go either way (shifted
	// groups enable double-loss cascades but dilute per-repair coverage);
	// what the ablation must show is that both variants recover the bulk
	// of the 5% injected loss and stay within a point of each other.
	stagRel, alignRel := cell(t, tab, 0, 1), cell(t, tab, 1, 1)
	if stagRel < 99 || alignRel < 99 {
		t.Errorf("reliabilities %.2f/%.2f; both variants should recover most loss", stagRel, alignRel)
	}
	if diff := stagRel - alignRel; diff > 1 || diff < -1 {
		t.Errorf("stagger changed reliability by %.2f points; expected a second-order effect", diff)
	}
}

func TestAblationRC(t *testing.T) {
	tab, err := AblationRC(fastAblationOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// R=8 C=3 must transmit fewer packets than R=2 C=3 (repairs every 8th
	// vs every 2nd packet).
	r2tx, r8tx := cell(t, tab, 0, 5), cell(t, tab, 3, 5)
	if r8tx >= r2tx {
		t.Errorf("R=8 tx %.0f should be below R=2 tx %.0f", r8tx, r2tx)
	}
	// And R=2's reliability should be at least R=8's.
	r2rel, r8rel := cell(t, tab, 0, 1), cell(t, tab, 3, 1)
	if r2rel < r8rel-0.05 {
		t.Errorf("R=2 reliability %.2f vs R=8 %.2f", r2rel, r8rel)
	}
}

func TestAblationACKvsNAK(t *testing.T) {
	tab, err := AblationACKvsNAK(fastAblationOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Rows alternate nakcast/ackcast for 3, 9, 15 receivers. ACK traffic
	// per sample must grow with receivers; NAK traffic must not.
	nak3, nak15 := cell(t, tab, 0, 5), cell(t, tab, 4, 5)
	ack3, ack15 := cell(t, tab, 1, 5), cell(t, tab, 5, 5)
	if ack15 < ack3*2 {
		t.Errorf("ackcast pkts/sample did not implode with receivers: %.2f -> %.2f", ack3, ack15)
	}
	if nak15 > nak3*2 {
		t.Errorf("nakcast pkts/sample grew too fast: %.2f -> %.2f", nak3, nak15)
	}
	// At every scale, ackcast transmits more than nakcast.
	for i := 0; i < 6; i += 2 {
		nak, ack := cell(t, tab, i, 4), cell(t, tab, i+1, 4)
		if ack <= nak {
			t.Errorf("row %d: ackcast tx %.0f should exceed nakcast %.0f", i, ack, nak)
		}
	}
}

func TestAblationsAll(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations in -short mode")
	}
	tables, err := Ablations(AblationOptions{Samples: 300, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 5 {
		t.Fatalf("got %d ablation tables", len(tables))
	}
	for _, tab := range tables {
		if len(tab.Rows) == 0 || tab.Format() == "" {
			t.Errorf("%s is empty", tab.ID)
		}
	}
}
