package experiment

import (
	"errors"
	"reflect"
	"sync/atomic"
	"testing"
)

func TestForEach(t *testing.T) {
	const n = 100
	var hits [n]atomic.Int64
	r := &Runner{Jobs: 8}
	if err := r.ForEach(n, func(i int) error {
		hits[i].Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range hits {
		if got := hits[i].Load(); got != 1 {
			t.Errorf("index %d visited %d times, want exactly once", i, got)
		}
	}
	if err := r.ForEach(0, func(int) error { t.Error("fn called for n=0"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestForEachFirstErrorCancels(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int64
	r := &Runner{Jobs: 2}
	err := r.ForEach(1000, func(i int) error {
		calls.Add(1)
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if c := calls.Load(); c >= 1000 {
		t.Errorf("all %d indices ran despite early error", c)
	}
}

func TestForEachProgressMonotonic(t *testing.T) {
	var seen []int
	r := &Runner{Jobs: 4, Progress: func(done, total int) {
		if total != 50 {
			t.Errorf("total = %d, want 50", total)
		}
		seen = append(seen, done) // Progress is serialized, so no lock needed
	}}
	if err := r.ForEach(50, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	want := make([]int, 50)
	for i := range want {
		want[i] = i + 1
	}
	if !reflect.DeepEqual(seen, want) {
		t.Errorf("progress sequence not monotonic 1..50: %v", seen)
	}
}

// TestFigure18ParallelIdentical pins the Jobs-invariance of the training
// grid: the rendered table must not depend on the worker count.
func TestFigure18ParallelIdentical(t *testing.T) {
	rows := syntheticRows(60)
	serialOpts := fastANNOpts()
	serialOpts.Jobs = 1
	serial, err := Figure18(rows, serialOpts)
	if err != nil {
		t.Fatal(err)
	}
	parOpts := fastANNOpts()
	parOpts.Jobs = 8
	par, err := Figure18(rows, parOpts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Rows, par.Rows) {
		t.Errorf("Figure 18 differs by worker count:\nserial: %v\n8 jobs: %v", serial.Rows, par.Rows)
	}
}

func TestFigure19ParallelIdentical(t *testing.T) {
	rows := syntheticRows(60)
	serialOpts := fastANNOpts()
	serialOpts.Jobs = 1
	serial, err := Figure19(rows, serialOpts)
	if err != nil {
		t.Fatal(err)
	}
	parOpts := fastANNOpts()
	parOpts.Jobs = 8
	par, err := Figure19(rows, parOpts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Rows, par.Rows) {
		t.Errorf("Figure 19 differs by worker count:\nserial: %v\n8 jobs: %v", serial.Rows, par.Rows)
	}
}
