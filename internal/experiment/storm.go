// The multicast-storm scenario: the large-scale regime the sharded engine
// exists for, sized past anything in the paper's tables (the paper tops out
// at small reader groups; cloud deployments fan out to hundreds or
// thousands).
package experiment

import (
	"adamant/internal/netem"
	"adamant/internal/transport/bemcast"
)

// Storm returns the multicast-storm configuration: one publisher flooding
// `receivers` readers at 100 Hz over a gigabit LAN with light end-host
// loss, on the sharded engine with `shards` workers. The protocol is
// bemcast — pure multicast fan-out with no repair traffic — so every event
// the engine fires is storm traffic and the run measures raw fan-out
// scale, not a repair protocol's backoff behavior.
//
// Storm(1000, 8, seed) is the canonical 1000-receiver cell; run it from
// the command line with
//
//	adamant-sim -storm -shards 8
func Storm(receivers, shards int, seed int64) Config {
	return Config{
		Machine:   netem.PC3000,
		Bandwidth: netem.Gbps1,
		LossPct:   1,
		Receivers: receivers,
		RateHz:    100,
		Samples:   500,
		Protocol:  bemcast.Spec(),
		Shards:    shards,
		Seed:      seed,
	}
}
