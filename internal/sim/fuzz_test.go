package sim

import (
	"bytes"
	"encoding/binary"
	"testing"
	"time"
)

// FuzzKernelOrder is the differential determinism proof for the wheel+heap
// scheduler: it decodes the fuzz input into a randomized interleaving of
// At/After/Schedule/ScheduleArg/Cancel/Step operations, replays it through
// both the current kernel and the preserved container/heap reference queue
// (refqueue_test.go), and demands bit-identical fire orders, clocks, and
// pending counts at every step.
//
// The delay encoding deliberately straddles the scheduler's internal
// boundaries: scale 0-1 stays inside the timer wheel's ~16.8 ms horizon,
// scale 2-3 lands in the far heap (up to ~268 s), and op 5 schedules
// follow-ups from inside callbacks, exercising insertion into the bucket
// currently being drained (the Post / Schedule(0) storm case).
func FuzzKernelOrder(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 10, 0, 0, 1, 0, 0, 0, 2, 10, 0, 0, 4, 0, 0, 0})
	// Same-instant FIFO: several ops with equal delays.
	f.Add(bytes.Repeat([]byte{0, 5, 0, 0}, 12))
	// Wheel/far straddle: short, horizon-edge, and far delays interleaved
	// with steps and cancels.
	f.Add([]byte{
		0, 1, 0, 0, 0x40, 0xff, 0xff, 0, 0x80, 0xff, 0xff, 0,
		0xc0, 0xff, 0xff, 0, 4, 1, 0, 0, 5, 50, 0, 0,
		3, 200, 0, 0, 6, 0, 0, 0, 6, 0, 0, 0,
	})
	// Chained callbacks at zero delay (Post storms).
	f.Add(bytes.Repeat([]byte{5, 0, 0, 0, 6, 0, 0, 0}, 8))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4096 {
			data = data[:4096]
		}
		k := New(1)
		r := newRefKernel()
		var gotK, gotR []uint64
		var handlesK []*Event
		var handlesR []*refEvent
		nextID := uint64(0)

		// record returns a pair of callbacks appending the same id to each
		// kernel's fire log.
		record := func() (func(), func()) {
			id := nextID
			nextID++
			return func() { gotK = append(gotK, id) },
				func() { gotR = append(gotR, id) }
		}

		for i := 0; i+3 < len(data); i += 4 {
			op := data[i] & 0x07
			scale := uint(data[i]>>6) * 4 // 0, 4, 8, 12 extra bits
			d := time.Duration(binary.LittleEndian.Uint16(data[i+1:i+3])) *
				time.Microsecond << scale
			switch op {
			case 0, 1: // After
				fk, fr := record()
				handlesK = append(handlesK, k.After(d, fk))
				handlesR = append(handlesR, r.After(d, fr))
			case 2: // At, absolute; Epoch-anchored times clamp once the clock moves
				at := Epoch.Add(d)
				fk, fr := record()
				handlesK = append(handlesK, k.At(at, fk))
				handlesR = append(handlesR, r.At(at, fr))
			case 3: // Schedule (pooled fire-and-forget)
				fk, fr := record()
				k.Schedule(d, fk)
				r.Schedule(d, fr)
			case 4: // ScheduleArg (closure-free path) vs reference closure
				id := nextID
				nextID++
				k.ScheduleArg(d, func(a any) { gotK = append(gotK, a.(uint64)) }, id)
				r.Schedule(d, func() { gotR = append(gotR, id) })
			case 5: // chained: callback schedules a follow-up at half the delay
				id := nextID
				nextID++
				k.Schedule(d, func() {
					gotK = append(gotK, id)
					k.Schedule(d/2, func() { gotK = append(gotK, ^id) })
				})
				r.Schedule(d, func() {
					gotR = append(gotR, id)
					r.Schedule(d/2, func() { gotR = append(gotR, ^id) })
				})
			case 6: // Step both
				sk, sr := k.Step(), r.Step()
				if sk != sr {
					t.Fatalf("op %d: Step() = %v (kernel) vs %v (reference)", i/4, sk, sr)
				}
			case 7: // Cancel a pseudo-random handle
				if len(handlesK) == 0 {
					continue
				}
				j := int(binary.LittleEndian.Uint16(data[i+1:i+3])) % len(handlesK)
				ck, cr := handlesK[j].Cancel(), handlesR[j].Cancel()
				if ck != cr {
					t.Fatalf("op %d: Cancel(%d) = %v (kernel) vs %v (reference)", i/4, j, ck, cr)
				}
			}
			if k.Pending() != r.Pending() {
				t.Fatalf("op %d: Pending() = %d (kernel) vs %d (reference)", i/4, k.Pending(), r.Pending())
			}
		}

		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		r.Run()

		if len(gotK) != len(gotR) {
			t.Fatalf("fired %d events (kernel) vs %d (reference)", len(gotK), len(gotR))
		}
		for i := range gotK {
			if gotK[i] != gotR[i] {
				t.Fatalf("fire order diverged at event %d: kernel %d, reference %d\nkernel:    %v\nreference: %v",
					i, gotK[i], gotR[i], gotK, gotR)
			}
		}
		if k.Fired() != r.Fired() {
			t.Fatalf("Fired() = %d (kernel) vs %d (reference)", k.Fired(), r.Fired())
		}
		if !k.Now().Equal(r.Now()) {
			t.Fatalf("Now() = %v (kernel) vs %v (reference)", k.Now(), r.Now())
		}
	})
}
