package sim

import (
	"container/heap"
	"time"
)

// This file preserves the kernel's previous event queue — container/heap
// over any-boxed *refEvent, ordered by (time, seq) — verbatim as a
// reference model. FuzzKernelOrder and the differential tests replay
// randomized schedules through both this queue and the wheel+heap scheduler
// and demand identical fire orders, which is the determinism proof for the
// scheduler overhaul.

type refEvent struct {
	at    time.Time
	seq   uint64
	fn    func()
	index int
	owner *refKernel
}

func (e *refEvent) Cancel() bool {
	if e == nil || e.index < 0 || e.fn == nil {
		return false
	}
	h := e.owner
	if h != nil && e.index >= 0 {
		heap.Remove(&h.queue, e.index)
		e.index = -1
		e.fn = nil
	}
	return true
}

type refKernel struct {
	now    time.Time
	queue  refQueue
	nextID uint64
	fired  uint64
}

func newRefKernel() *refKernel { return &refKernel{now: Epoch} }

func (k *refKernel) Now() time.Time { return k.now }
func (k *refKernel) Pending() int   { return k.queue.Len() }
func (k *refKernel) Fired() uint64  { return k.fired }

func (k *refKernel) At(t time.Time, fn func()) *refEvent {
	if t.Before(k.now) {
		t = k.now
	}
	e := &refEvent{at: t, seq: k.nextID, fn: fn, owner: k}
	k.nextID++
	heap.Push(&k.queue, e)
	return e
}

func (k *refKernel) After(d time.Duration, fn func()) *refEvent {
	return k.At(k.now.Add(d), fn)
}

func (k *refKernel) Schedule(d time.Duration, fn func()) {
	k.After(d, fn)
}

func (k *refKernel) Step() bool {
	if k.queue.Len() == 0 {
		return false
	}
	e := heap.Pop(&k.queue).(*refEvent)
	k.now = e.at
	fn := e.fn
	e.fn = nil
	e.index = -1
	k.fired++
	fn()
	return true
}

func (k *refKernel) Run() {
	for k.Step() {
	}
}

type refQueue []*refEvent

func (q refQueue) Len() int { return len(q) }

func (q refQueue) Less(i, j int) bool {
	if !q[i].at.Equal(q[j].at) {
		return q[i].at.Before(q[j].at)
	}
	return q[i].seq < q[j].seq
}

func (q refQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *refQueue) Push(x any) {
	e := x.(*refEvent)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *refQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}
