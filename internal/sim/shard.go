package sim

// shard.go is the lane-sharded conservative-time execution engine: the
// parallel counterpart of the single Kernel, built for 500+ node emulations
// whose event load no longer fits one core.
//
// The model is classic conservative PDES (parallel discrete-event
// simulation) specialized to the netem topology:
//
//   - The simulated world is partitioned into *lanes* (one per emulated
//     node, or per link domain). Each lane owns a full Kernel — its own
//     timer wheel, 4-ary heaps, clock, sequence counter, and event free
//     list — and every piece of per-node state is only ever touched by its
//     own lane's callbacks.
//
//   - Cross-lane interaction (a packet arriving at another node) goes
//     through Send, which requires a *lookahead*: the event must fire at
//     least Lookahead after the sending lane's current time. For netem the
//     lookahead is the minimum link propagation delay (Config.PropDelay,
//     default 30µs) — no packet can affect another node sooner than one
//     propagation time.
//
//   - Execution proceeds in conservative time windows of width Lookahead.
//     Window [W, W+L) is safe to run on every lane in parallel: no event
//     fired inside it can schedule a cross-lane event before W+L. At the
//     window barrier, buffered cross-lane messages are merged into their
//     destination kernels in a fixed total order — (fire time, source lane,
//     per-source sequence) — and restamped with the destination kernel's
//     own (time, seq) keys.
//
// Determinism contract: the merged event stream — and therefore every
// observable simulation output — is byte-identical for any worker count,
// including 1. The number of OS workers only decides which threads drain
// which lanes; every ordering decision is derived from lane-local values
// (virtual times, lane IDs, per-lane counters) that do not depend on thread
// interleaving. A Sharded with a single lane degenerates to exactly the
// plain Kernel: same containers, same (time, seq) order, same pools.
//
// Sharded is not safe for concurrent driving: Run/RunUntil/RunFor must be
// called from one goroutine, and lane kernels may only be touched from
// their own lane's callbacks or between runs.

import (
	"errors"
	"fmt"
	"math"
	"slices"
	"sync"
	"time"
)

// xmsg is one buffered cross-lane event. Messages are merged into the
// destination kernel at window barriers ordered by (key, src, srcSeq) —
// all three are lane-local deterministic values, which is what makes the
// merge independent of worker scheduling.
type xmsg struct {
	key    int64 // fire time, UnixNano
	at     time.Time
	dst    int32
	src    int32
	srcSeq uint64
	fn     func()
	argFn  func(any)
	arg    any
}

// Sharded executes a lane-partitioned simulation under a conservative
// time-window barrier. Create one with NewSharded, add lanes, then drive it
// with the same Run/RunUntil/RunFor/Pending surface as a Kernel.
type Sharded struct {
	seed      int64
	lookahead int64 // ns; also the window width

	lanes   []*Kernel
	nextKey []int64  // cached earliest pending key per lane (maxInt64 = empty)
	outbox  [][]xmsg // per source lane, appended only by the owning worker
	msgSeq  []uint64 // per source lane Send counter
	staging [][]xmsg // per destination lane, reused merge buffer

	workers   int
	now       time.Time
	nowKey    int64
	maxEvents uint64

	// Window state shared with workers during a phase; written by the
	// coordinator strictly before the phase broadcast.
	winEnd  int64
	budget  uint64
	windows uint64

	// Worker pool, alive only inside run().
	cmd  []chan int
	done sync.WaitGroup
}

const laneEmpty = math.MaxInt64

// Worker phase codes.
const (
	phaseRun = iota + 1
	phaseMerge
)

// NewSharded returns an engine with no lanes, deriving all randomness from
// seed. lookahead is the conservative window width: every cross-lane Send
// must fire at least lookahead after the sending lane's current time.
func NewSharded(seed int64, lookahead time.Duration) *Sharded {
	if lookahead <= 0 {
		panic("sim: non-positive sharded lookahead")
	}
	return &Sharded{
		seed:      seed,
		lookahead: int64(lookahead),
		workers:   1,
		now:       Epoch,
		nowKey:    Epoch.UnixNano(),
	}
}

// AddLane creates a new lane and returns its index. Lanes must be added
// before the first run.
func (s *Sharded) AddLane() int {
	k := New(s.seed)
	s.lanes = append(s.lanes, k)
	s.nextKey = append(s.nextKey, laneEmpty)
	s.outbox = append(s.outbox, nil)
	s.msgSeq = append(s.msgSeq, 0)
	s.staging = append(s.staging, nil)
	return len(s.lanes) - 1
}

// Lanes returns the number of lanes.
func (s *Sharded) Lanes() int { return len(s.lanes) }

// LaneKernel returns lane i's kernel. It may only be used from lane i's own
// callbacks or between runs — the same single-threaded contract as Kernel.
func (s *Sharded) LaneKernel(i int) *Kernel { return s.lanes[i] }

// Seed returns the seed the engine was created with.
func (s *Sharded) Seed() int64 { return s.seed }

// Lookahead returns the conservative window width.
func (s *Sharded) Lookahead() time.Duration { return time.Duration(s.lookahead) }

// SetWorkers sets the number of OS workers that drain lanes in parallel.
// The worker count never changes simulation output — only wall-clock time.
func (s *Sharded) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	s.workers = n
}

// Workers returns the configured worker count.
func (s *Sharded) Workers() int { return s.workers }

// SetEventLimit bounds the total number of events across all lanes; 0 means
// unlimited. Exceeding the limit makes the run methods return ErrEventLimit.
func (s *Sharded) SetEventLimit(n uint64) { s.maxEvents = n }

// Now returns the global virtual time: the deadline reached by the last
// RunUntil/RunFor, or Epoch before the first run.
func (s *Sharded) Now() time.Time { return s.now }

// Fired returns the total number of events executed across all lanes.
func (s *Sharded) Fired() uint64 {
	var n uint64
	for _, k := range s.lanes {
		n += k.fired
	}
	return n
}

// Windows returns the number of conservative time windows executed so
// far — the barrier count. events/windows is the parallelism grain: how
// much work each barrier crossing amortizes.
func (s *Sharded) Windows() uint64 { return s.windows }

// Pending returns the number of queued events plus buffered cross-lane
// messages.
func (s *Sharded) Pending() int {
	n := 0
	for _, k := range s.lanes {
		n += k.Pending()
	}
	for _, ob := range s.outbox {
		n += len(ob)
	}
	return n
}

// Send schedules fn(arg) (or fn() when argFn is nil) on lane dst at
// absolute time at. It must be called from lane src's executing callback
// (or between runs), and at must be at least Lookahead after lane src's
// current time — the conservative guarantee the window barrier relies on.
// Sends to the source's own lane are ordinary local scheduling.
func (s *Sharded) Send(src, dst int, at time.Time, argFn func(any), arg any, fn func()) {
	key := at.UnixNano()
	if dst == src {
		s.lanes[src].insertAt(key, at, fn, argFn, arg)
		if key < s.nextKey[src] {
			s.nextKey[src] = key
		}
		return
	}
	if min := s.lanes[src].nowKey + s.lookahead; key < min {
		panic(fmt.Sprintf("sim: cross-lane send violates lookahead: fires %s early",
			time.Duration(min-key)))
	}
	s.msgSeq[src]++
	s.outbox[src] = append(s.outbox[src], xmsg{
		key: key, at: at, dst: int32(dst), src: int32(src),
		srcSeq: s.msgSeq[src], fn: fn, argFn: argFn, arg: arg,
	})
}

// refreshKey recaches lane l's earliest pending key.
func (s *Sharded) refreshKey(l int) {
	if key, ok := s.lanes[l].peekKey(); ok {
		s.nextKey[l] = key
	} else {
		s.nextKey[l] = laneEmpty
	}
}

// globalMin returns the earliest pending key across lanes and outboxes.
func (s *Sharded) globalMin() int64 {
	min := int64(laneEmpty)
	for _, k := range s.nextKey {
		if k < min {
			min = k
		}
	}
	return min
}

// runLanes is the worker body for phaseRun: drain every owned lane whose
// earliest event falls inside the current window. Lane l is owned by worker
// l mod stride in every phase — ownership never migrates, so per-lane state
// is only ever touched by one worker between barriers.
func (s *Sharded) runLanes(w, stride int) {
	for l := w; l < len(s.lanes); l += stride {
		if s.nextKey[l] >= s.winEnd {
			continue
		}
		s.lanes[l].runWindow(s.winEnd, s.budget)
		s.refreshKey(l)
	}
}

// mergeLanes is the worker body for phaseMerge: order each owned lane's
// staged batch by (key, src, srcSeq) and insert it into the lane kernel —
// the (time, seq) restamping that makes the merged stream independent of
// worker interleaving. Staging was filled by distribute() on the
// coordinator; the dispatch barrier publishes it to the owning worker.
func (s *Sharded) mergeLanes(w, stride int) {
	for l := w; l < len(s.lanes); l += stride {
		stg := s.staging[l]
		if len(stg) == 0 {
			continue
		}
		// Distribution order is (src, srcSeq); a stable sort by key yields
		// the full (key, src, srcSeq) order.
		slices.SortStableFunc(stg, func(a, b xmsg) int {
			switch {
			case a.key < b.key:
				return -1
			case a.key > b.key:
				return 1
			}
			return 0
		})
		k := s.lanes[l]
		for i := range stg {
			m := &stg[i]
			k.insertAt(m.key, m.at, m.fn, m.argFn, m.arg)
			stg[i] = xmsg{}
		}
		s.staging[l] = stg[:0]
		s.refreshKey(l)
	}
}

// dispatch runs one phase across all workers and waits for the barrier.
// With a single worker the coordinator does the work inline — the
// single-threaded reference execution has zero synchronization.
func (s *Sharded) dispatch(phase int) {
	if s.cmd == nil {
		s.work(0, 1, phase)
		return
	}
	s.done.Add(len(s.cmd))
	for _, c := range s.cmd {
		c <- phase
	}
	s.done.Wait()
}

func (s *Sharded) work(w, stride, phase int) {
	switch phase {
	case phaseRun:
		s.runLanes(w, stride)
	case phaseMerge:
		s.mergeLanes(w, stride)
	}
}

// startWorkers spins up the pool for one run; stopWorkers tears it down.
func (s *Sharded) startWorkers() {
	n := s.workers
	if n > len(s.lanes) {
		n = len(s.lanes)
	}
	if n <= 1 {
		return
	}
	s.cmd = make([]chan int, n)
	for w := range s.cmd {
		c := make(chan int, 1)
		s.cmd[w] = c
		go func(w int, c chan int) {
			for phase := range c {
				s.work(w, n, phase)
				s.done.Done()
			}
		}(w, c)
	}
}

func (s *Sharded) stopWorkers() {
	for _, c := range s.cmd {
		close(c)
	}
	s.cmd = nil
}

// distribute routes every buffered cross-lane message to its destination
// lane's staging slice and empties the outboxes. It runs single-threaded
// on the coordinator between the run and merge barriers: one O(messages)
// pass, instead of every destination scanning every source's outbox.
// Outboxes are consumed immediately, so a message can never survive into
// a later merge and be delivered twice. Iterating sources in lane order
// keeps each staging batch in (src, srcSeq) order for the merge sort.
func (s *Sharded) distribute() bool {
	staged := false
	for src := range s.outbox {
		ob := s.outbox[src]
		if len(ob) == 0 {
			continue
		}
		staged = true
		for i := range ob {
			m := &ob[i]
			s.staging[m.dst] = append(s.staging[m.dst], *m)
			ob[i] = xmsg{}
		}
		s.outbox[src] = ob[:0]
	}
	return staged
}

// run executes conservative windows until no event at or before limitKey
// remains. The caller owns clock advancement past the deadline.
func (s *Sharded) run(limitKey int64) error {
	if len(s.lanes) == 0 {
		return nil
	}
	// Route messages staged between runs (e.g. a harness closing components
	// from the driving goroutine) and refresh every lane's cached key: lane
	// kernels may have been scheduled into directly since the last run.
	for l := range s.lanes {
		s.refreshKey(l)
	}
	if s.distribute() {
		// Merge serially: between runs there is no worker pool.
		s.mergeLanes(0, 1)
	}
	s.startWorkers()
	defer s.stopWorkers()
	for {
		min := s.globalMin()
		if min == laneEmpty || min > limitKey {
			return nil
		}
		winEnd := min + s.lookahead
		if winEnd < min {
			winEnd = math.MaxInt64 // overflow guard
		}
		if limitKey != math.MaxInt64 && winEnd > limitKey+1 {
			winEnd = limitKey + 1
		}
		s.winEnd = winEnd
		s.budget = math.MaxUint64
		if s.maxEvents > 0 {
			fired := s.Fired()
			if fired > s.maxEvents {
				return fmt.Errorf("%w: %d events", ErrEventLimit, fired)
			}
			s.budget = s.maxEvents - fired + 1
		}
		s.windows++
		s.dispatch(phaseRun)
		if s.distribute() {
			s.dispatch(phaseMerge)
		}
	}
}

// Run executes events until every lane is empty.
func (s *Sharded) Run() error {
	if err := s.run(math.MaxInt64); err != nil {
		return err
	}
	// Bring the global clock to the latest lane time so a subsequent
	// RunFor measures from the end of the drained work.
	for _, k := range s.lanes {
		if k.nowKey > s.nowKey {
			s.nowKey = k.nowKey
			s.now = k.now
		}
	}
	return nil
}

// RunUntil executes events with time <= deadline, then advances every
// lane's clock (and the global clock) to the deadline.
func (s *Sharded) RunUntil(deadline time.Time) error {
	dk := deadline.UnixNano()
	if err := s.run(dk); err != nil {
		return err
	}
	for _, k := range s.lanes {
		if k.nowKey < dk {
			k.now = deadline
			k.nowKey = dk
		}
	}
	if s.nowKey < dk {
		s.now = deadline
		s.nowKey = dk
	}
	return nil
}

// RunFor executes events for virtual duration d from the global clock.
func (s *Sharded) RunFor(d time.Duration) error {
	return s.RunUntil(s.now.Add(d))
}

// ErrNoLanes is returned by drivers that require at least one lane.
var ErrNoLanes = errors.New("sim: sharded engine has no lanes")

// runWindow fires lane events with key < endKey, up to budget events. The
// clock is left at the last fired event, exactly as Step leaves it.
func (k *Kernel) runWindow(endKey int64, budget uint64) {
	for budget > 0 {
		key, ok := k.peekKey()
		if !ok || key >= endKey {
			return
		}
		k.Step()
		budget--
	}
}

// insertAt enqueues a fire-and-forget event at an absolute key, assigning
// the kernel's next sequence number — the restamping step of the barrier
// merge. key must not precede the lane clock (the lookahead guarantees it).
func (k *Kernel) insertAt(key int64, at time.Time, fn func(), argFn func(any), arg any) {
	if key < k.nowKey {
		panic("sim: cross-lane insert into the past")
	}
	var e *Event
	if n := len(k.free); n > 0 {
		e = k.free[n-1]
		k.free[n-1] = nil
		k.free = k.free[:n-1]
	} else {
		e = new(Event)
	}
	*e = Event{at: at, key: key, seq: k.nextID, fn: fn, argFn: argFn, arg: arg, owner: k, pooled: true}
	k.nextID++
	k.enqueue(e)
}
