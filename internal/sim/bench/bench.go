// Package bench measures the simulation kernel's event-processing
// throughput: ns/event, allocs/event, and events/sec for the wheel+heap
// scheduler against the pre-overhaul container/heap baseline, across queue
// depths and a netem-shaped packet-hop mix. The adamant-bench -sim harness
// runs these workloads and emits BENCH_sim.json so the sim-throughput
// trajectory is pinned the same way BENCH_ann.json pins query latency.
//
// Both implementations run identical deterministic workloads: the same
// splitmix64 delay streams, consumed in the same order (the kernels fire
// events in the same order by the determinism contract, so the streams stay
// aligned). Workload parameters are modeled on what internal/netem
// schedules per packet hop: arrival and CPU-done callbacks µs–ms ahead,
// sprinkled with canceled-and-rearmed protocol timers tens of ms out.
package bench

import (
	"runtime"
	"time"

	"adamant/internal/env"
	"adamant/internal/netem"
	"adamant/internal/sim"
	"adamant/internal/wire"
)

// Result summarizes one timed workload run.
type Result struct {
	Events         uint64  `json:"events"`
	NsPerEvent     float64 `json:"ns_per_event"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
	EventsPerSec   float64 `json:"events_per_sec"`
}

// Comparison pairs the current kernel against the container/heap baseline
// on the same workload.
type Comparison struct {
	Kernel   Result `json:"kernel"`
	Baseline Result `json:"baseline_heap"`
	// Speedup is baseline ns/event divided by kernel ns/event.
	Speedup float64 `json:"speedup"`
}

// SweepPoint is one queue-depth cell of the churn sweep.
type SweepPoint struct {
	Depth int `json:"depth"`
	Comparison
}

// measure times run, attributing wall clock and allocator traffic to the
// number of events run reports having fired.
func measure(run func() uint64) Result {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	events := run()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	if events == 0 {
		return Result{}
	}
	ns := float64(elapsed.Nanoseconds()) / float64(events)
	res := Result{
		Events:         events,
		NsPerEvent:     ns,
		AllocsPerEvent: float64(m1.Mallocs-m0.Mallocs) / float64(events),
	}
	if elapsed > 0 {
		res.EventsPerSec = float64(events) / elapsed.Seconds()
	}
	return res
}

// splitmix64 is the deterministic delay stream shared by both kernels.
type splitmix64 struct{ state uint64 }

func (s *splitmix64) next() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// churnDelay is the queue-sweep delay mix: 80% wheel-range (1 µs – 10 ms),
// 20% beyond the horizon (20 – 200 ms), so every scheduler container works.
func churnDelay(rng *splitmix64) time.Duration {
	r := rng.next()
	if r%5 == 0 {
		return time.Duration(20_000+r%180_000) * time.Microsecond
	}
	return time.Duration(1+r%10_000) * time.Microsecond
}

// QueueSweep measures steady-state churn (pop one, schedule one) holding
// the pending set at each requested depth, firing at least events per cell.
func QueueSweep(depths []int, events uint64) []SweepPoint {
	points := make([]SweepPoint, 0, len(depths))
	for _, depth := range depths {
		target := events
		if min := uint64(depth) * 2; target < min {
			target = min
		}
		p := SweepPoint{Depth: depth}
		p.Kernel = measure(func() uint64 { return kernelChurn(depth, target) })
		p.Baseline = measure(func() uint64 { return baselineChurn(depth, target) })
		if p.Kernel.NsPerEvent > 0 {
			p.Speedup = p.Baseline.NsPerEvent / p.Kernel.NsPerEvent
		}
		points = append(points, p)
	}
	return points
}

func kernelChurn(depth int, target uint64) uint64 {
	k := sim.New(1)
	rng := &splitmix64{state: 42}
	var fired uint64
	var tick func()
	tick = func() {
		fired++
		if fired+uint64(depth) <= target {
			k.Schedule(churnDelay(rng), tick)
		}
	}
	for i := 0; i < depth; i++ {
		k.Schedule(churnDelay(rng), tick)
	}
	for k.Step() {
	}
	return k.Fired()
}

func baselineChurn(depth int, target uint64) uint64 {
	k := newBoxedKernel()
	rng := &splitmix64{state: 42}
	var fired uint64
	var tick func()
	tick = func() {
		fired++
		if fired+uint64(depth) <= target {
			k.schedule(churnDelay(rng), tick)
		}
	}
	for i := 0; i < depth; i++ {
		k.schedule(churnDelay(rng), tick)
	}
	k.run()
	return k.fired
}

// Hop-mix constants: the shape internal/netem gives one packet hop.
const (
	hopArrivalBase = 30 * time.Microsecond  // propagation + store-and-forward
	hopArrivalJit  = 900 * time.Microsecond // serialization spread
	hopCPUBase     = 25 * time.Microsecond  // receiver CPU cost
	hopCPUJit      = 120 * time.Microsecond
	hopGapBase     = 200 * time.Microsecond // inter-packet pacing
	hopGapJit      = 800 * time.Microsecond
	hopTimerRearm  = 8                     // packets between heartbeat rearms
	hopTimerDelay  = 50 * time.Millisecond // heartbeat distance (far heap)
)

func jitter(rng *splitmix64, base, spread time.Duration) time.Duration {
	return base + time.Duration(rng.next()%uint64(spread))
}

// HopMix measures the emulator's event shape end to end on both kernels:
// per packet a send schedules an arrival, the arrival schedules a CPU-done
// dispatch, the dispatch schedules the next send; every hopTimerRearm
// packets a flow cancels and rearms a 50 ms heartbeat, exercising the
// cancel path like the transport timer sites do.
//
// The kernel side dispatches through ScheduleArg with static callbacks and
// persistent per-flow state — the shape internal/netem uses after the
// overhaul. The baseline side allocates a fresh closure per hop — the shape
// the old kernel forced, since it had no closure-free path. The allocs/event
// gap between the two columns is therefore the netem hot-path alloc drop,
// not a workload artifact: both consume the same delay stream and fire the
// same events in the same order.
func HopMix(flows int, events uint64) Comparison {
	var c Comparison
	c.Kernel = measure(func() uint64 { return kernelHopMix(flows, events) })
	c.Baseline = measure(func() uint64 { return baselineHopMix(flows, events) })
	if c.Kernel.NsPerEvent > 0 {
		c.Speedup = c.Baseline.NsPerEvent / c.Kernel.NsPerEvent
	}
	return c
}

// hopFlow is one flow's persistent dispatch state; rng, fired, and target
// are shared across all flows so the delay stream and event budget match
// the baseline's closure-captured outer variables exactly.
type hopFlow struct {
	k       *sim.Kernel
	rng     *splitmix64
	fired   *uint64
	target  uint64
	timer   *sim.Event
	packets int
}

func (f *hopFlow) budget() bool {
	*f.fired++
	return *f.fired+3 <= f.target // each packet costs three events
}

func hopHeartbeat() {}

func hopSend(a any) {
	f := a.(*hopFlow)
	if !f.budget() {
		return
	}
	f.k.ScheduleArg(jitter(f.rng, hopArrivalBase, hopArrivalJit), hopArrive, f)
}

func hopArrive(a any) {
	f := a.(*hopFlow)
	if !f.budget() {
		return
	}
	f.k.ScheduleArg(jitter(f.rng, hopCPUBase, hopCPUJit), hopCPUDone, f)
}

func hopCPUDone(a any) {
	f := a.(*hopFlow)
	if !f.budget() {
		return
	}
	f.packets++
	if f.packets%hopTimerRearm == 0 {
		if f.timer != nil {
			f.timer.Cancel()
		}
		f.timer = f.k.After(hopTimerDelay, hopHeartbeat)
	}
	f.k.ScheduleArg(jitter(f.rng, hopGapBase, hopGapJit), hopSend, f)
}

func kernelHopMix(flows int, target uint64) uint64 {
	k := sim.New(1)
	rng := &splitmix64{state: 7}
	var fired uint64
	for i := 0; i < flows; i++ {
		f := &hopFlow{k: k, rng: rng, fired: &fired, target: target}
		k.ScheduleArg(jitter(rng, hopGapBase, hopGapJit), hopSend, f)
	}
	for k.Step() {
	}
	return k.Fired()
}

func baselineHopMix(flows int, target uint64) uint64 {
	k := newBoxedKernel()
	rng := &splitmix64{state: 7}
	var fired uint64
	budget := func() bool {
		fired++
		return fired+3 <= target
	}
	hb := func() {}
	for f := 0; f < flows; f++ {
		var timer *boxedEvent
		packets := 0
		var send func()
		send = func() {
			if !budget() {
				return
			}
			k.schedule(jitter(rng, hopArrivalBase, hopArrivalJit), func() {
				if !budget() {
					return
				}
				k.schedule(jitter(rng, hopCPUBase, hopCPUJit), func() {
					if !budget() {
						return
					}
					packets++
					if packets%hopTimerRearm == 0 {
						if timer != nil {
							timer.cancel()
						}
						timer = k.after(hopTimerDelay, hb)
					}
					k.schedule(jitter(rng, hopGapBase, hopGapJit), send)
				})
			})
		}
		k.schedule(jitter(rng, hopGapBase, hopGapJit), send)
	}
	k.run()
	return k.fired
}

// NetemPump measures the real emulator on the current kernel: nodes nodes
// on a 100 Mb LAN with 5% end-host loss, one publisher multicasting
// payload-carrying packets until the kernel has fired at least events
// events. Events/sec here is the whole emulation data path — scheduler,
// closure-free dispatch, loss bitset, CPU and link modeling.
func NetemPump(nodes int, events uint64, payload int) (Result, error) {
	k := sim.New(1)
	e := env.NewSim(k)
	net, err := netem.New(e, netem.Config{Bandwidth: netem.Mbps100})
	if err != nil {
		return Result{}, err
	}
	for i := 0; i < nodes; i++ {
		n := net.AddNode(netem.PC3000)
		if i > 0 {
			n.SetLoss(5)
			n.SetHandler(func(wire.NodeID, *wire.Packet) {})
		}
	}
	sender := net.Node(0)
	pkt := &wire.Packet{Type: wire.TypeData, Src: 0, Stream: 1, Payload: make([]byte, payload)}
	var seq uint64
	var pump func()
	pump = func() {
		if k.Fired() >= events {
			return
		}
		seq++
		pkt.Seq = seq
		pkt.SentAt = k.Now()
		if err := sender.Multicast(pkt); err != nil {
			panic(err)
		}
		k.Schedule(500*time.Microsecond, pump)
	}
	return measure(func() uint64 {
		k.Schedule(0, pump)
		for k.Step() {
		}
		return k.Fired()
	}), nil
}
