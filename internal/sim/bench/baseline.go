package bench

import (
	"container/heap"
	"time"

	"adamant/internal/sim"
)

// boxedKernel reproduces the kernel's pre-overhaul event queue —
// container/heap over any-boxed events with time.Time comparisons in Less,
// including the pooled fire-and-forget free list — so BENCH_sim.json can
// report a like-for-like speedup for the wheel+heap scheduler. It is the
// measurement baseline only; the behavioral reference copy used by the
// differential fuzz test lives in internal/sim/refqueue_test.go.
type boxedKernel struct {
	now    time.Time
	queue  boxedQueue
	nextID uint64
	fired  uint64
	free   []*boxedEvent
}

const maxFreeBoxed = 1 << 15

type boxedEvent struct {
	at     time.Time
	seq    uint64
	fn     func()
	index  int
	owner  *boxedKernel
	pooled bool
}

func (e *boxedEvent) cancel() bool {
	if e == nil || e.index < 0 || e.fn == nil {
		return false
	}
	h := e.owner
	if h != nil && e.index >= 0 {
		heap.Remove(&h.queue, e.index)
		e.index = -1
		e.fn = nil
	}
	return true
}

func newBoxedKernel() *boxedKernel { return &boxedKernel{now: sim.Epoch} }

func (k *boxedKernel) after(d time.Duration, fn func()) *boxedEvent {
	t := k.now.Add(d)
	if t.Before(k.now) {
		t = k.now
	}
	e := &boxedEvent{at: t, seq: k.nextID, fn: fn, owner: k}
	k.nextID++
	heap.Push(&k.queue, e)
	return e
}

func (k *boxedKernel) schedule(d time.Duration, fn func()) {
	t := k.now.Add(d)
	if t.Before(k.now) {
		t = k.now
	}
	var e *boxedEvent
	if n := len(k.free); n > 0 {
		e = k.free[n-1]
		k.free[n-1] = nil
		k.free = k.free[:n-1]
		*e = boxedEvent{at: t, seq: k.nextID, fn: fn, owner: k, pooled: true}
	} else {
		e = &boxedEvent{at: t, seq: k.nextID, fn: fn, owner: k, pooled: true}
	}
	k.nextID++
	heap.Push(&k.queue, e)
}

func (k *boxedKernel) step() bool {
	if k.queue.Len() == 0 {
		return false
	}
	e := heap.Pop(&k.queue).(*boxedEvent)
	k.now = e.at
	fn := e.fn
	e.fn = nil
	e.index = -1
	k.fired++
	if e.pooled && len(k.free) < maxFreeBoxed {
		k.free = append(k.free, e)
	}
	fn()
	return true
}

func (k *boxedKernel) run() {
	for k.step() {
	}
}

type boxedQueue []*boxedEvent

func (q boxedQueue) Len() int { return len(q) }

func (q boxedQueue) Less(i, j int) bool {
	if !q[i].at.Equal(q[j].at) {
		return q[i].at.Before(q[j].at)
	}
	return q[i].seq < q[j].seq
}

func (q boxedQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *boxedQueue) Push(x any) {
	e := x.(*boxedEvent)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *boxedQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}
