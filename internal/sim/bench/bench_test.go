package bench

import (
	"testing"
)

// TestChurnParity checks the two churn drivers execute the same workload:
// identical event counts over identical delay streams, so the comparison in
// BENCH_sim.json is like-for-like.
func TestChurnParity(t *testing.T) {
	for _, depth := range []int{1, 100, 1000} {
		kf := kernelChurn(depth, 5000)
		bf := baselineChurn(depth, 5000)
		if kf != bf {
			t.Errorf("depth %d: kernel fired %d events, baseline %d", depth, kf, bf)
		}
		if kf < 5000 {
			t.Errorf("depth %d: fired %d events, want >= 5000", depth, kf)
		}
	}
}

// TestHopMixParity does the same for the netem-shaped workload.
func TestHopMixParity(t *testing.T) {
	kf := kernelHopMix(16, 20000)
	bf := baselineHopMix(16, 20000)
	if kf != bf {
		t.Errorf("kernel fired %d events, baseline %d", kf, bf)
	}
}

func TestQueueSweep(t *testing.T) {
	points := QueueSweep([]int{10, 100}, 2000)
	if len(points) != 2 {
		t.Fatalf("got %d sweep points, want 2", len(points))
	}
	for _, p := range points {
		if p.Kernel.Events == 0 || p.Baseline.Events == 0 {
			t.Errorf("depth %d: zero events measured", p.Depth)
		}
		if p.Kernel.NsPerEvent <= 0 || p.Speedup <= 0 {
			t.Errorf("depth %d: implausible measurement %+v", p.Depth, p.Comparison)
		}
	}
}

func TestNetemPump(t *testing.T) {
	r, err := NetemPump(4, 5000, 256)
	if err != nil {
		t.Fatal(err)
	}
	if r.Events < 5000 {
		t.Errorf("netem pump fired %d events, want >= 5000", r.Events)
	}
}

// BenchmarkKernelChurn100k is the deep-queue steady state on the new
// scheduler; BenchmarkBaselineChurn100k is the same workload on the
// container/heap replica, for go-test-level before/after reading.
func BenchmarkKernelChurn100k(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		kernelChurn(100_000, 300_000)
	}
}

func BenchmarkBaselineChurn100k(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		baselineChurn(100_000, 300_000)
	}
}

func BenchmarkKernelHopMix(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		kernelHopMix(64, 200_000)
	}
}

func BenchmarkBaselineHopMix(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		baselineHopMix(64, 200_000)
	}
}

func BenchmarkNetemPump(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := NetemPump(8, 100_000, 256); err != nil {
			b.Fatal(err)
		}
	}
}

// TestShardScaling checks the scaling table is well-formed and that the
// storm workload fires an identical event stream at every worker count
// (the width-invariance contract, visible here as equal event counts).
func TestShardScaling(t *testing.T) {
	points, err := ShardScaling([]int{8, 32}, []int{1, 2}, 10_000, 256)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("got %d points, want 4", len(points))
	}
	byGroup := map[int][]ShardPoint{}
	for _, p := range points {
		if p.Events < 10_000 {
			t.Errorf("group %d workers %d: fired %d events, want >= 10000", p.Group, p.Workers, p.Events)
		}
		if p.Windows == 0 || p.NsPerEvent <= 0 || p.SpeedupVs1 <= 0 {
			t.Errorf("group %d workers %d: implausible measurement %+v", p.Group, p.Workers, p)
		}
		byGroup[p.Group] = append(byGroup[p.Group], p)
	}
	for g, ps := range byGroup {
		for _, p := range ps[1:] {
			if p.Events != ps[0].Events || p.Windows != ps[0].Windows {
				t.Errorf("group %d: events/windows vary with worker count: %+v vs %+v", g, ps[0], p)
			}
		}
	}
}

func BenchmarkShardStorm500(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := shardStorm(500, 8, 500_000, 256); err != nil {
			b.Fatal(err)
		}
	}
}
