package bench

import (
	"time"

	"adamant/internal/netem"
	"adamant/internal/sim"
	"adamant/internal/wire"
)

// ShardPoint is one cell of the shard-scaling table: the multicast-storm
// workload at one group size and one worker count.
type ShardPoint struct {
	Group   int    `json:"group"`
	Workers int    `json:"workers"`
	Events  uint64 `json:"events"`
	// Windows counts conservative-time barrier rounds; events/window is
	// the per-barrier batch size, the quantity that must stay large for
	// worker parallelism to pay for synchronization.
	Windows        uint64  `json:"windows"`
	NsPerEvent     float64 `json:"ns_per_event"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
	EventsPerSec   float64 `json:"events_per_sec"`
	// SpeedupVs1 is events/sec relative to the workers=1 row of the same
	// group size. On a single-CPU host this hovers near 1.0 by design:
	// worker count changes OS parallelism only, never the event stream.
	SpeedupVs1 float64 `json:"speedup_vs_1"`
}

// ShardScaling runs the multicast storm — one publisher flooding a receiver
// group on a sharded 100 Mb LAN with 5% end-host loss — at every group size
// x worker count cell, firing at least events events per cell. The workload
// is the sharded analogue of NetemPump, so the two tables are comparable;
// determinism across worker counts means every row of a group fires the
// identical event stream and the column differences are pure scheduling.
func ShardScaling(groups, workers []int, events uint64, payload int) ([]ShardPoint, error) {
	points := make([]ShardPoint, 0, len(groups)*len(workers))
	for _, g := range groups {
		var base float64
		for _, w := range workers {
			p := ShardPoint{Group: g, Workers: w}
			var windows uint64
			var runErr error
			res := measure(func() uint64 {
				fired, wins, err := shardStorm(g, w, events, payload)
				windows, runErr = wins, err
				return fired
			})
			if runErr != nil {
				return nil, runErr
			}
			p.Events = res.Events
			p.Windows = windows
			p.NsPerEvent = res.NsPerEvent
			p.AllocsPerEvent = res.AllocsPerEvent
			p.EventsPerSec = res.EventsPerSec
			if w == workers[0] && base == 0 {
				base = res.EventsPerSec
			}
			if base > 0 {
				p.SpeedupVs1 = res.EventsPerSec / base
			}
			points = append(points, p)
		}
	}
	return points, nil
}

// shardStorm builds the sharded storm topology and pumps multicasts until
// the engine has fired at least target events. The pump runs on the
// sender's lane, so it paces by its own packet counter (lane-local state);
// the stop check against Fired happens between pump ticks on the sender
// lane only, which is safe because Fired is read after the engine parks.
func shardStorm(group, workerCount int, target uint64, payload int) (uint64, uint64, error) {
	sh := sim.NewSharded(1, netem.DefaultPropDelay)
	sh.SetWorkers(workerCount)
	net, err := netem.NewSharded(sh, netem.Config{Bandwidth: netem.Mbps100})
	if err != nil {
		return 0, 0, err
	}
	for i := 0; i <= group; i++ {
		n := net.AddNode(netem.PC3000)
		if i > 0 {
			n.SetLoss(5)
			n.SetHandler(func(wire.NodeID, *wire.Packet) {})
		}
	}
	sender := net.Node(0)
	pkt := &wire.Packet{Type: wire.TypeData, Src: 0, Stream: 1, Payload: make([]byte, payload)}
	// Each multicast costs roughly two events per receiver on the sharded
	// engine (a cross-lane arrival plus a CPU-done dispatch), minus the 5%
	// the loss model drops before dispatch; size the packet budget from
	// that with margin and let the tail drain naturally.
	packets := (target*11/10)/uint64(2*group) + 1
	var seq uint64
	var pump func()
	pump = func() {
		if seq >= packets {
			return
		}
		seq++
		pkt.Seq = seq
		pkt.SentAt = sender.Env().Now()
		if err := sender.Multicast(pkt); err != nil {
			panic(err)
		}
		sender.Env().Schedule(500*time.Microsecond, pump)
	}
	sender.Env().Schedule(0, pump)
	if err := sh.Run(); err != nil {
		return 0, 0, err
	}
	return sh.Fired(), sh.Windows(), nil
}
