package sim

// Differential tests for the lane-sharded conservative-window engine, in
// the style of refqueue_test.go: drive randomized workloads through the
// engine at several worker widths and demand bit-identical observable
// traces, with the plain Kernel as the reference model for the single-lane
// degenerate case.

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"
)

const testLookahead = 30 * time.Microsecond

// shardEnt is one observable firing: the lane clock at fire time and the
// lane-local rng draw made by the callback. Together with per-lane append
// order this captures everything protocol code can observe.
type shardEnt struct {
	key int64
	r   uint64
}

// laneCtx is one lane's workload state. All events that run on the lane
// share it, so the rng consumption order is itself part of the trace.
type laneCtx struct {
	sh     *Sharded
	lane   int
	rng    splitmixTest
	budget int
	trace  []shardEnt
	all    []*laneCtx
}

type splitmixTest struct{ state uint64 }

func (s *splitmixTest) next() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// fire is the workload step: record the observation, then perpetuate the
// simulation with a mix of local scheduling, zero-delay events, timer
// cancel churn, and cross-lane sends at minimum-lookahead distance.
func (c *laneCtx) fire() {
	k := c.sh.LaneKernel(c.lane)
	r := c.rng.next()
	c.trace = append(c.trace, shardEnt{key: k.Now().UnixNano(), r: r})
	if c.budget <= 0 {
		return
	}
	c.budget--
	switch r % 5 {
	case 0: // cross-lane send, tight against the lookahead bound
		dst := c.lane
		if n := len(c.all); n > 1 {
			dst = (c.lane + 1 + int(r>>8)%(n-1)) % n
		}
		at := k.Now().Add(testLookahead + time.Duration((r>>16)%300)*time.Microsecond)
		d := c.all[dst]
		c.sh.Send(c.lane, dst, at, nil, nil, d.fire)
	case 1: // zero-delay local event (same-instant FIFO ordering)
		k.Schedule(0, c.fire)
	case 2: // cancel churn through the wheel
		ev := k.After(time.Duration(1+(r>>12)%5000)*time.Microsecond, c.fire)
		if r%10 == 2 {
			ev.Cancel()
			k.Schedule(time.Duration((r>>20)%800)*time.Microsecond, c.fire)
		}
	case 3: // far-horizon timer
		k.Schedule(time.Duration(20+(r>>10)%180)*time.Millisecond, c.fire)
	default: // near-future local jitter
		k.Schedule(time.Duration((r>>9)%2000)*time.Microsecond, c.fire)
	}
}

// runShardWorkload executes the randomized workload on a fresh engine and
// returns the per-lane traces plus (fired, final now) for comparison.
func runShardWorkload(t *testing.T, lanes, workers, budget int, seed int64) ([][]shardEnt, uint64, int64) {
	t.Helper()
	sh := NewSharded(seed, testLookahead)
	sh.SetWorkers(workers)
	ctxs := make([]*laneCtx, lanes)
	for l := 0; l < lanes; l++ {
		ctxs[l] = &laneCtx{
			sh: sh, lane: sh.AddLane(),
			rng:    splitmixTest{state: uint64(seed)*2654435761 + uint64(l)},
			budget: budget,
		}
	}
	for _, c := range ctxs {
		c.all = ctxs
		d := time.Duration(c.rng.next()%1000) * time.Microsecond
		c.sh.LaneKernel(c.lane).Schedule(d, c.fire)
	}
	// Alternate bounded runs and a final drain so the deadline/advance path
	// is exercised alongside the run-to-empty path.
	if err := sh.RunFor(50 * time.Millisecond); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if err := sh.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	traces := make([][]shardEnt, lanes)
	for l, c := range ctxs {
		traces[l] = c.trace
	}
	return traces, sh.Fired(), sh.Now().UnixNano()
}

// TestShardedWorkerWidthInvariance is the tentpole determinism pin: the
// same topology and workload must produce byte-identical per-lane traces,
// fired counts, and final clocks at every worker width, including the
// single-threaded reference (workers=1).
func TestShardedWorkerWidthInvariance(t *testing.T) {
	for _, lanes := range []int{2, 3, 8, 33} {
		lanes := lanes
		t.Run(fmt.Sprintf("lanes=%d", lanes), func(t *testing.T) {
			refTrace, refFired, refNow := runShardWorkload(t, lanes, 1, 400, 11)
			var total int
			for _, tr := range refTrace {
				total += len(tr)
			}
			if total == 0 {
				t.Fatal("workload fired no events")
			}
			for _, workers := range []int{2, 4, 8} {
				gotTrace, gotFired, gotNow := runShardWorkload(t, lanes, workers, 400, 11)
				if gotFired != refFired || gotNow != refNow {
					t.Fatalf("workers=%d: fired/now = %d/%d, want %d/%d",
						workers, gotFired, gotNow, refFired, refNow)
				}
				for l := range refTrace {
					if !reflect.DeepEqual(gotTrace[l], refTrace[l]) {
						t.Fatalf("workers=%d: lane %d trace diverges (len %d vs %d)",
							workers, l, len(gotTrace[l]), len(refTrace[l]))
					}
				}
			}
		})
	}
}

// TestShardedSingleLaneMatchesKernel pins the degenerate case: one lane
// runs the exact same containers and (time, seq) order as a plain Kernel,
// so an identical workload driven through both must produce an identical
// trace.
func TestShardedSingleLaneMatchesKernel(t *testing.T) {
	const budget = 2000
	run := func(schedule func(d time.Duration, fn func()), after func(d time.Duration, fn func()) *Event,
		now func() time.Time, sendSelf func(at time.Time, fn func())) *[]shardEnt {
		rng := splitmixTest{state: 99}
		trace := new([]shardEnt)
		left := budget
		var fire func()
		fire = func() {
			r := rng.next()
			*trace = append(*trace, shardEnt{key: now().UnixNano(), r: r})
			if left <= 0 {
				return
			}
			left--
			switch r % 5 {
			case 0:
				sendSelf(now().Add(testLookahead+time.Duration((r>>16)%300)*time.Microsecond), fire)
			case 1:
				schedule(0, fire)
			case 2:
				ev := after(time.Duration(1+(r>>12)%5000)*time.Microsecond, fire)
				if r%10 == 2 {
					ev.Cancel()
					schedule(time.Duration((r>>20)%800)*time.Microsecond, fire)
				}
			case 3:
				schedule(time.Duration(20+(r>>10)%180)*time.Millisecond, fire)
			default:
				schedule(time.Duration((r>>9)%2000)*time.Microsecond, fire)
			}
		}
		schedule(0, fire)
		return trace
	}

	k := New(7)
	kTrace := run(k.Schedule, k.After, k.Now, func(at time.Time, fn func()) { k.At(at, fn) })
	if err := k.Run(); err != nil {
		t.Fatalf("kernel run: %v", err)
	}

	sh := NewSharded(7, testLookahead)
	lane := sh.AddLane()
	lk := sh.LaneKernel(lane)
	sTrace := run(lk.Schedule, lk.After, lk.Now, func(at time.Time, fn func()) { sh.Send(lane, lane, at, nil, nil, fn) })
	if err := sh.Run(); err != nil {
		t.Fatalf("sharded run: %v", err)
	}

	if len(*kTrace) == 0 {
		t.Fatal("reference kernel fired no events")
	}
	if sh.Fired() != k.Fired() {
		t.Fatalf("fired: sharded %d, kernel %d", sh.Fired(), k.Fired())
	}
	if !reflect.DeepEqual(*sTrace, *kTrace) {
		t.Fatalf("traces diverge: sharded %d entries, kernel %d entries", len(*sTrace), len(*kTrace))
	}
}

// TestShardedEventLimit checks the runaway-loop guard crosses the window
// barrier: a zero-delay self-perpetuating event must trip ErrEventLimit
// instead of spinning inside one window forever.
func TestShardedEventLimit(t *testing.T) {
	sh := NewSharded(1, testLookahead)
	l := sh.AddLane()
	sh.SetEventLimit(1000)
	k := sh.LaneKernel(l)
	var spin func()
	spin = func() { k.Schedule(0, spin) }
	k.Schedule(0, spin)
	err := sh.Run()
	if !errors.Is(err, ErrEventLimit) {
		t.Fatalf("Run = %v, want ErrEventLimit", err)
	}
}

// TestShardedLookaheadViolationPanics pins the conservative guarantee: a
// cross-lane send inside the lookahead horizon would break the window
// safety argument and must fail loudly.
func TestShardedLookaheadViolationPanics(t *testing.T) {
	sh := NewSharded(1, testLookahead)
	a, b := sh.AddLane(), sh.AddLane()
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("Send inside the lookahead did not panic")
		}
		if !strings.Contains(fmt.Sprint(p), "lookahead") {
			t.Fatalf("unexpected panic: %v", p)
		}
	}()
	sh.Send(a, b, sh.LaneKernel(a).Now().Add(testLookahead/2), nil, nil, func() {})
}

// TestShardedRunUntilAdvancesClocks pins RunUntil's deadline semantics:
// every lane clock and the global clock land exactly on the deadline, and
// later events stay queued.
func TestShardedRunUntilAdvancesClocks(t *testing.T) {
	sh := NewSharded(3, testLookahead)
	for i := 0; i < 4; i++ {
		sh.AddLane()
	}
	fired := 0
	sh.LaneKernel(2).Schedule(time.Millisecond, func() { fired++ })
	sh.LaneKernel(3).Schedule(time.Hour, func() { fired += 100 })
	deadline := Epoch.Add(10 * time.Millisecond)
	if err := sh.RunUntil(deadline); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if !sh.Now().Equal(deadline) {
		t.Fatalf("Now = %v, want %v", sh.Now(), deadline)
	}
	for i := 0; i < sh.Lanes(); i++ {
		if got := sh.LaneKernel(i).Now(); !got.Equal(deadline) {
			t.Fatalf("lane %d clock = %v, want %v", i, got, deadline)
		}
	}
	if sh.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", sh.Pending())
	}
	if err := sh.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired != 101 {
		t.Fatalf("fired = %d, want 101 after drain", fired)
	}
}

// TestShardedSendBetweenRuns covers the harness pattern of injecting
// cross-lane work from the driving goroutine between run calls (the shape
// a crucible teardown uses): the message must be merged and delivered on
// the next run.
func TestShardedSendBetweenRuns(t *testing.T) {
	sh := NewSharded(5, testLookahead)
	a, b := sh.AddLane(), sh.AddLane()
	if err := sh.RunFor(time.Millisecond); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	var got int64
	at := sh.LaneKernel(a).Now().Add(testLookahead)
	sh.Send(a, b, at, nil, nil, func() {
		got = sh.LaneKernel(b).Now().UnixNano()
	})
	if err := sh.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got != at.UnixNano() {
		t.Fatalf("delivery time = %d, want %d", got, at.UnixNano())
	}
}
