package sim

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestKernelStartsAtEpoch(t *testing.T) {
	k := New(1)
	if !k.Now().Equal(Epoch) {
		t.Errorf("Now() = %v, want %v", k.Now(), Epoch)
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	k := New(1)
	var order []int
	k.After(30*time.Millisecond, func() { order = append(order, 3) })
	k.After(10*time.Millisecond, func() { order = append(order, 1) })
	k.After(20*time.Millisecond, func() { order = append(order, 2) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i+1 {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestSameInstantFIFO(t *testing.T) {
	k := New(1)
	var order []int
	at := k.Now().Add(5 * time.Millisecond)
	for i := 0; i < 10; i++ {
		i := i
		k.At(at, func() { order = append(order, i) })
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !sort.IntsAreSorted(order) {
		t.Errorf("same-instant events fired out of scheduling order: %v", order)
	}
}

func TestClockAdvancesToEventTime(t *testing.T) {
	k := New(1)
	var at time.Time
	k.After(42*time.Millisecond, func() { at = k.Now() })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if want := Epoch.Add(42 * time.Millisecond); !at.Equal(want) {
		t.Errorf("callback saw Now() = %v, want %v", at, want)
	}
}

func TestPastEventsClampToNow(t *testing.T) {
	k := New(1)
	k.After(10*time.Millisecond, func() {
		k.At(Epoch, func() {
			if k.Now().Before(Epoch.Add(10 * time.Millisecond)) {
				t.Error("clock moved backwards")
			}
		})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCancel(t *testing.T) {
	k := New(1)
	fired := false
	e := k.After(time.Millisecond, func() { fired = true })
	if !e.Cancel() {
		t.Error("first Cancel returned false")
	}
	if e.Cancel() {
		t.Error("second Cancel returned true; want idempotent false")
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Error("canceled event fired")
	}
}

func TestCancelAfterFire(t *testing.T) {
	k := New(1)
	e := k.After(time.Millisecond, func() {})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Cancel() {
		t.Error("Cancel after fire returned true")
	}
}

func TestCancelNil(t *testing.T) {
	var e *Event
	if e.Cancel() {
		t.Error("nil Cancel returned true")
	}
}

func TestCancelMiddleOfHeap(t *testing.T) {
	k := New(1)
	var fired []int
	events := make([]*Event, 20)
	for i := range events {
		i := i
		events[i] = k.After(time.Duration(i)*time.Millisecond, func() { fired = append(fired, i) })
	}
	for i := 5; i < 15; i++ {
		events[i].Cancel()
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 10 {
		t.Fatalf("fired %d events, want 10: %v", len(fired), fired)
	}
	if !sort.IntsAreSorted(fired) {
		t.Errorf("fired out of order after cancels: %v", fired)
	}
}

func TestRunUntil(t *testing.T) {
	k := New(1)
	var fired []int
	k.After(10*time.Millisecond, func() { fired = append(fired, 1) })
	k.After(30*time.Millisecond, func() { fired = append(fired, 2) })
	deadline := Epoch.Add(20 * time.Millisecond)
	if err := k.RunUntil(deadline); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 1 {
		t.Errorf("fired = %v, want just the first event", fired)
	}
	if !k.Now().Equal(deadline) {
		t.Errorf("Now() = %v, want clock advanced to deadline %v", k.Now(), deadline)
	}
	if k.Pending() != 1 {
		t.Errorf("Pending() = %d, want 1", k.Pending())
	}
}

func TestRunFor(t *testing.T) {
	k := New(1)
	n := 0
	var tick func()
	tick = func() {
		n++
		k.After(time.Second, tick)
	}
	k.After(time.Second, tick)
	if err := k.RunFor(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Errorf("ticked %d times in 10s, want 10", n)
	}
}

func TestEventLimit(t *testing.T) {
	k := New(1)
	k.SetEventLimit(100)
	var loop func()
	loop = func() { k.After(time.Microsecond, loop) }
	k.After(0, loop)
	if err := k.Run(); !errors.Is(err, ErrEventLimit) {
		t.Errorf("err = %v, want ErrEventLimit", err)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func(seed int64) []int64 {
		k := New(seed)
		rng := k.Rand("workload")
		var draws []int64
		var tick func()
		tick = func() {
			draws = append(draws, rng.Int63())
			if len(draws) < 50 {
				k.After(time.Duration(rng.Intn(1000))*time.Microsecond, tick)
			}
		}
		k.After(0, tick)
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return draws
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at draw %d", i)
		}
	}
	c := run(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical draws")
	}
}

func TestRandStreamsIndependent(t *testing.T) {
	k := New(3)
	a := k.Rand("alpha")
	b := k.Rand("beta")
	a2 := k.Rand("alpha")
	if a.Int63() != a2.Int63() {
		t.Error("equal stream names must yield identical streams")
	}
	equal := 0
	for i := 0; i < 20; i++ {
		if a.Int63() == b.Int63() {
			equal++
		}
	}
	if equal > 2 {
		t.Errorf("streams alpha and beta look correlated: %d equal draws", equal)
	}
}

func TestDeriveSeedDistinct(t *testing.T) {
	seen := map[int64]string{}
	names := []string{"", "a", "b", "ab", "ba", "node-1", "node-2", "loss", "cpu"}
	for _, n := range names {
		s := DeriveSeed(42, n)
		if prev, ok := seen[s]; ok {
			t.Errorf("DeriveSeed collision between %q and %q", prev, n)
		}
		seen[s] = n
	}
	if DeriveSeed(1, "x") == DeriveSeed(2, "x") {
		t.Error("same name with different seeds must differ")
	}
}

// Property: any batch of events with arbitrary delays fires in nondecreasing
// time order, and the clock never moves backwards.
func TestHeapOrderingProperty(t *testing.T) {
	f := func(delaysRaw []uint32) bool {
		if len(delaysRaw) > 200 {
			delaysRaw = delaysRaw[:200]
		}
		k := New(11)
		var times []time.Time
		for _, d := range delaysRaw {
			k.After(time.Duration(d%1_000_000)*time.Microsecond, func() {
				times = append(times, k.Now())
			})
		}
		if err := k.Run(); err != nil {
			return false
		}
		for i := 1; i < len(times); i++ {
			if times[i].Before(times[i-1]) {
				return false
			}
		}
		return len(times) == len(delaysRaw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: random interleaving of schedules and cancels never corrupts the
// heap: every non-canceled event fires exactly once, in order.
func TestScheduleCancelProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := New(seed)
		fired := map[int]int{}
		var events []*Event
		canceled := map[int]bool{}
		n := 100
		for i := 0; i < n; i++ {
			i := i
			events = append(events, k.After(time.Duration(rng.Intn(5000))*time.Microsecond,
				func() { fired[i]++ }))
			if rng.Intn(3) == 0 && len(events) > 0 {
				victim := rng.Intn(len(events))
				if events[victim].Cancel() {
					canceled[victim] = true
				}
			}
		}
		if err := k.Run(); err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			want := 1
			if canceled[i] {
				want = 0
			}
			if fired[i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestScheduleArgOrderAndPooling pins the closure-free dispatch path: it
// interleaves with Schedule in strict (time, seq) order and recycles events
// through the free list like Schedule does.
func TestScheduleArgOrderAndPooling(t *testing.T) {
	k := New(1)
	var order []int
	at := 3 * time.Millisecond
	k.Schedule(at, func() { order = append(order, 0) })
	k.ScheduleArg(at, func(a any) { order = append(order, a.(int)) }, 1)
	k.Schedule(at, func() { order = append(order, 2) })
	k.ScheduleArg(at, func(a any) { order = append(order, a.(int)) }, 3)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !sort.IntsAreSorted(order) || len(order) != 4 {
		t.Errorf("same-instant Schedule/ScheduleArg fired out of order: %v", order)
	}
	if len(k.free) != 4 {
		t.Errorf("free list holds %d events after run, want 4", len(k.free))
	}
}

// TestScheduleArgAllocationFree verifies the whole point of ScheduleArg: in
// steady state (warm free list, pointer-shaped arg) it never allocates.
func TestScheduleArgAllocationFree(t *testing.T) {
	k := New(1)
	type payload struct{ n int }
	p := &payload{}
	fn := func(a any) { a.(*payload).n++ }
	k.ScheduleArg(time.Microsecond, fn, p) // warm the free list
	k.Step()
	allocs := testing.AllocsPerRun(1000, func() {
		k.ScheduleArg(time.Microsecond, fn, p)
		k.Step()
	})
	if allocs != 0 {
		t.Errorf("ScheduleArg allocated %.1f times per event, want 0", allocs)
	}
}

// TestWheelHorizonBoundary schedules events just inside, exactly at, and
// beyond the wheel horizon and checks global fire order across the three
// internal containers.
func TestWheelHorizonBoundary(t *testing.T) {
	k := New(1)
	horizon := time.Duration(wheelSlots * tickNanos)
	delays := []time.Duration{
		0, time.Nanosecond, tickNanos - 1, tickNanos, // cur and first bucket
		horizon - time.Nanosecond, horizon, horizon + time.Nanosecond, // straddle
		10 * horizon, // deep far heap
	}
	var fired []time.Duration
	for _, d := range delays {
		d := d
		k.Schedule(d, func() { fired = append(fired, d) })
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != len(delays) {
		t.Fatalf("fired %d of %d events", len(fired), len(delays))
	}
	for i := 1; i < len(fired); i++ {
		if fired[i] < fired[i-1] {
			t.Fatalf("fired out of order: %v", fired)
		}
	}
}

// TestCancelInEveryContainer cancels events parked in the cur heap, a wheel
// bucket, and the far heap, plus one mid-bucket swap-removal.
func TestCancelInEveryContainer(t *testing.T) {
	k := New(1)
	horizon := time.Duration(wheelSlots * tickNanos)
	fired := 0
	count := func() { fired++ }
	cur := k.After(0, count)                   // current tick → cur heap
	wheelA := k.After(time.Millisecond, count) // wheel bucket
	wheelB := k.After(time.Millisecond, count) // same bucket, swap-remove path
	far := k.After(horizon+time.Second, count) // far heap
	keep := k.After(2*time.Millisecond, count) // survives
	for _, e := range []*Event{cur, wheelA, far} {
		if !e.Cancel() {
			t.Fatal("Cancel returned false for a queued event")
		}
		if e.Cancel() {
			t.Fatal("second Cancel returned true")
		}
	}
	if !wheelB.Cancel() {
		t.Fatal("Cancel of bucket-mate returned false")
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Errorf("fired = %d, want 1 (only the kept event)", fired)
	}
	if keep.Cancel() {
		t.Error("Cancel after fire returned true")
	}
}

// TestPendingAcrossContainers checks Pending sums all three containers.
func TestPendingAcrossContainers(t *testing.T) {
	k := New(1)
	horizon := time.Duration(wheelSlots * tickNanos)
	k.After(0, func() {})
	k.After(time.Millisecond, func() {})
	k.After(horizon+time.Minute, func() {})
	if got := k.Pending(); got != 3 {
		t.Errorf("Pending() = %d, want 3", got)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got := k.Pending(); got != 0 {
		t.Errorf("Pending() after Run = %d, want 0", got)
	}
}

// TestRunUntilAcrossWheel drains exactly the events at or before the
// deadline even when they span wheel buckets and the far heap.
func TestRunUntilAcrossWheel(t *testing.T) {
	k := New(1)
	horizon := time.Duration(wheelSlots * tickNanos)
	var fired []int
	k.After(time.Millisecond, func() { fired = append(fired, 1) })
	k.After(horizon+time.Second, func() { fired = append(fired, 2) })
	deadline := Epoch.Add(horizon + time.Second)
	if err := k.RunUntil(deadline); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 {
		t.Errorf("fired = %v, want both events (deadline inclusive)", fired)
	}
	if !k.Now().Equal(deadline) {
		t.Errorf("Now() = %v, want %v", k.Now(), deadline)
	}
}

func BenchmarkScheduleAndFire(b *testing.B) {
	k := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k.After(time.Microsecond, func() {})
		k.Step()
	}
}

// BenchmarkSchedulePooled measures the fire-and-forget path: after warmup
// every event comes from the kernel free list, so steady state allocates
// nothing per event.
func BenchmarkSchedulePooled(b *testing.B) {
	k := New(1)
	fn := func() {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k.Schedule(time.Microsecond, fn)
		k.Step()
	}
}

// BenchmarkScheduleArg measures the closure-free dispatch path.
func BenchmarkScheduleArg(b *testing.B) {
	k := New(1)
	fn := func(any) {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k.ScheduleArg(time.Microsecond, fn, nil)
		k.Step()
	}
}

// BenchmarkScheduleDeep measures steady-state pop/push with a large pending
// set: 100k events resident, delays straddling the wheel horizon, so every
// container is exercised.
func BenchmarkScheduleDeep(b *testing.B) {
	k := New(1)
	fn := func() {}
	rng := rand.New(rand.NewSource(7))
	delay := func() time.Duration {
		if rng.Intn(5) == 0 {
			return time.Duration(rng.Intn(200_000)) * time.Microsecond // far heap
		}
		return time.Duration(rng.Intn(10_000)) * time.Microsecond // wheel
	}
	for i := 0; i < 100_000; i++ {
		k.Schedule(delay(), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Schedule(delay(), fn)
		k.Step()
	}
}
