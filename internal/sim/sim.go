// Package sim provides a deterministic discrete-event simulation kernel: a
// virtual clock, an event queue, and seeded random-number streams.
//
// The kernel is the substitute for the paper's Emulab testbed time base.
// Everything above it (network emulation, transport protocols, middleware)
// is written against the environment abstraction in package env, so the same
// protocol code runs under this kernel in virtual time and under the real
// clock in the examples.
//
// The event queue is a hybrid scheduler (see queue.go): a short-horizon
// timer wheel absorbs the dense near-future churn of packet-hop simulation
// at O(1) per insert/cancel, backed by monomorphic index-tracking 4-ary
// min-heaps for the current tick and the long tail. There is no interface
// boxing anywhere on the hot path.
//
// Determinism contract: given the same seed and the same sequence of
// Schedule calls, a simulation produces bit-identical event orderings.
// Events scheduled for the same instant fire in scheduling order. This
// holds regardless of which internal container an event passes through:
// all three share one (time, seq) total order.
package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// Epoch is the virtual time at which every simulation starts. The concrete
// value is arbitrary; a fixed nonzero epoch catches code that confuses
// wall-clock and simulated time.
var Epoch = time.Date(2010, time.November, 29, 0, 0, 0, 0, time.UTC)

// Event is a scheduled callback. The zero value is not useful; events are
// created by Kernel.At and Kernel.After.
type Event struct {
	at  time.Time
	key int64  // at.UnixNano(): the scheduler ordering key
	seq uint64 // tie-breaker: FIFO among events at the same instant
	fn  func()
	// argFn/arg are the closure-free dispatch path used by ScheduleArg: hot
	// paths pass a static function and a pooled argument instead of
	// allocating a capturing closure per event.
	argFn func(any)
	arg   any
	owner *Kernel
	where int32 // container tag: locCur, locFar, or a wheel slot number
	index int32 // position within the container, -1 once fired or canceled
	// pooled marks fire-and-forget events created by Schedule/ScheduleArg:
	// no handle escapes to callers, so the kernel recycles them through its
	// free list after they fire. Events returned by At/After are never
	// pooled because a caller may hold the pointer and Cancel it later.
	pooled bool
}

// Cancel removes the event from the queue. It returns false if the event
// already fired or was already canceled. Cancel is idempotent.
func (e *Event) Cancel() bool {
	if e == nil || e.index < 0 || (e.fn == nil && e.argFn == nil) {
		return false
	}
	k := e.owner
	switch e.where {
	case locCur:
		k.cur.remove(e.index)
	case locFar:
		k.far.remove(e.index)
	default:
		k.w.remove(e)
	}
	e.fn = nil
	e.argFn = nil
	e.arg = nil
	return true
}

// Time returns the virtual time the event is (or was) scheduled for.
func (e *Event) Time() time.Time { return e.at }

// Kernel is a single-threaded discrete-event executor. It is not safe for
// concurrent use: all scheduling must happen from the driving goroutine or
// from within event callbacks (which the kernel runs serially).
type Kernel struct {
	now    time.Time
	nowKey int64 // now.UnixNano()
	cur    evHeap
	far    evHeap
	w      wheel
	nextID uint64
	seed   int64
	fired  uint64
	// maxEvents guards against runaway event loops in tests; 0 = unlimited.
	maxEvents uint64
	// free recycles pooled events (see Schedule). Packet-hop simulations
	// churn one event per hop, so reuse keeps the workers out of the
	// allocator on the hot path.
	free []*Event
}

// maxFreeEvents bounds the free list so a scheduling burst cannot pin an
// arbitrarily large pool of dead events.
const maxFreeEvents = 1 << 15

// New returns a kernel with its clock at Epoch, deriving all randomness from
// seed.
func New(seed int64) *Kernel {
	k := &Kernel{now: Epoch, nowKey: Epoch.UnixNano(), seed: seed}
	k.cur.loc = locCur
	k.far.loc = locFar
	k.w.curTick = k.nowKey >> tickShift
	return k
}

// Now returns the current virtual time.
func (k *Kernel) Now() time.Time { return k.now }

// Seed returns the seed the kernel was created with.
func (k *Kernel) Seed() int64 { return k.seed }

// Fired returns the number of events executed so far.
func (k *Kernel) Fired() uint64 { return k.fired }

// Pending returns the number of events waiting in the queue.
func (k *Kernel) Pending() int { return len(k.cur.ev) + len(k.far.ev) + k.w.count }

// SetEventLimit bounds the total number of events Run will execute; 0 means
// unlimited. Exceeding the limit makes Run return ErrEventLimit.
func (k *Kernel) SetEventLimit(n uint64) { k.maxEvents = n }

// ErrEventLimit is returned by the run methods when the configured event
// limit is exceeded, which almost always indicates a protocol timer loop
// that fails to terminate.
var ErrEventLimit = errors.New("sim: event limit exceeded")

// enqueue routes an event to the container matching its tick: current tick
// (or due now) to the cur heap, within the wheel horizon to a wheel bucket,
// beyond it to the far heap.
func (k *Kernel) enqueue(e *Event) {
	tn := e.key >> tickShift
	switch {
	case tn <= k.w.curTick:
		k.cur.push(e)
	case tn-k.w.curTick < wheelSlots:
		k.w.insert(e, tn)
	default:
		k.far.push(e)
	}
}

// At schedules fn to run at virtual time t. Times in the past (before Now)
// are clamped to Now, preserving causal ordering.
func (k *Kernel) At(t time.Time, fn func()) *Event {
	if fn == nil {
		panic("sim: At called with nil callback") // programmer error, not runtime condition
	}
	key := t.UnixNano()
	if key < k.nowKey {
		key = k.nowKey
		t = k.now
	}
	e := &Event{at: t, key: key, seq: k.nextID, fn: fn, owner: k}
	k.nextID++
	k.enqueue(e)
	return e
}

// After schedules fn to run d from now. Negative d is treated as zero.
func (k *Kernel) After(d time.Duration, fn func()) *Event {
	return k.At(k.now.Add(d), fn)
}

// Schedule is the fire-and-forget form of After: fn runs d from now and the
// event cannot be canceled. Because no handle escapes, the kernel recycles
// the event through an internal free list after it fires, so hot paths that
// never cancel (packet hops, delivery callbacks) schedule without
// allocating. Ordering is identical to After: events fire by (time, FIFO).
func (k *Kernel) Schedule(d time.Duration, fn func()) {
	if fn == nil {
		panic("sim: Schedule called with nil callback")
	}
	k.schedulePooled(d, fn, nil, nil)
}

// ScheduleArg is the closure-free form of Schedule: at the scheduled time
// the kernel calls fn(arg). Hot paths that would otherwise allocate a
// capturing closure per event (one per packet hop) pass a static function
// and a pooled argument instead; combined with the event free list the
// steady-state cost is zero allocations per event. Ordering is identical to
// Schedule.
func (k *Kernel) ScheduleArg(d time.Duration, fn func(arg any), arg any) {
	if fn == nil {
		panic("sim: ScheduleArg called with nil callback")
	}
	k.schedulePooled(d, nil, fn, arg)
}

func (k *Kernel) schedulePooled(d time.Duration, fn func(), argFn func(any), arg any) {
	if d < 0 {
		d = 0
	}
	var e *Event
	if n := len(k.free); n > 0 {
		e = k.free[n-1]
		k.free[n-1] = nil
		k.free = k.free[:n-1]
	} else {
		e = new(Event)
	}
	*e = Event{
		at: k.now.Add(d), key: k.nowKey + int64(d), seq: k.nextID,
		fn: fn, argFn: argFn, arg: arg, owner: k, pooled: true,
	}
	k.nextID++
	k.enqueue(e)
}

// promote drains the earliest occupied wheel bucket into the cur heap when
// cur is empty, establishing exact (time, seq) order among that bucket's
// events. After promote, the global minimum is the smaller of cur.min and
// far.min.
func (k *Kernel) promote() {
	for len(k.cur.ev) == 0 && k.w.count > 0 {
		tick, slot := k.w.nextTick()
		k.w.curTick = tick
		k.w.bitmap[slot>>6] &^= 1 << (uint(slot) & 63)
		sl := k.w.slots[slot]
		k.w.count -= len(sl)
		for i, e := range sl {
			sl[i] = nil
			k.cur.push(e)
		}
		k.w.slots[slot] = sl[:0]
	}
}

// popMin removes and returns the (time, seq)-smallest pending event, or nil.
func (k *Kernel) popMin() *Event {
	k.promote()
	switch {
	case len(k.cur.ev) == 0 && len(k.far.ev) == 0:
		return nil
	case len(k.far.ev) == 0:
		return k.cur.pop()
	case len(k.cur.ev) == 0:
		return k.far.pop()
	case evLess(k.far.ev[0], k.cur.ev[0]):
		return k.far.pop()
	default:
		return k.cur.pop()
	}
}

// peekKey returns the key of the earliest pending event without removing it.
func (k *Kernel) peekKey() (int64, bool) {
	k.promote()
	switch {
	case len(k.cur.ev) == 0 && len(k.far.ev) == 0:
		return 0, false
	case len(k.far.ev) == 0:
		return k.cur.ev[0].key, true
	case len(k.cur.ev) == 0:
		return k.far.ev[0].key, true
	case evLess(k.far.ev[0], k.cur.ev[0]):
		return k.far.ev[0].key, true
	default:
		return k.cur.ev[0].key, true
	}
}

// Step fires the earliest pending event, advancing the clock to its time.
// It returns false if the queue is empty.
func (k *Kernel) Step() bool {
	e := k.popMin()
	if e == nil {
		return false
	}
	k.now = e.at
	k.nowKey = e.key
	fn, argFn, arg := e.fn, e.argFn, e.arg
	e.fn, e.argFn, e.arg = nil, nil, nil
	k.fired++
	if e.pooled && len(k.free) < maxFreeEvents {
		k.free = append(k.free, e)
	}
	if argFn != nil {
		argFn(arg)
	} else {
		fn()
	}
	return true
}

// Run executes events until the queue is empty.
func (k *Kernel) Run() error {
	for k.Step() {
		if k.maxEvents > 0 && k.fired > k.maxEvents {
			return fmt.Errorf("%w: %d events", ErrEventLimit, k.fired)
		}
	}
	return nil
}

// RunUntil executes events with time <= deadline, then advances the clock to
// the deadline. Events scheduled after the deadline remain queued.
func (k *Kernel) RunUntil(deadline time.Time) error {
	deadlineKey := deadline.UnixNano()
	for {
		key, ok := k.peekKey()
		if !ok || key > deadlineKey {
			break
		}
		k.Step()
		if k.maxEvents > 0 && k.fired > k.maxEvents {
			return fmt.Errorf("%w: %d events", ErrEventLimit, k.fired)
		}
	}
	if k.now.Before(deadline) {
		k.now = deadline
		k.nowKey = deadlineKey
	}
	return nil
}

// RunFor executes events for virtual duration d from the current time.
func (k *Kernel) RunFor(d time.Duration) error {
	return k.RunUntil(k.now.Add(d))
}

// Rand returns an independent deterministic random stream derived from the
// kernel seed and the given name. Equal names yield identical streams;
// distinct names yield decorrelated streams. Components should each own a
// named stream so that adding a component does not perturb others' draws.
func (k *Kernel) Rand(name string) *rand.Rand {
	return rand.New(rand.NewSource(DeriveSeed(k.seed, name)))
}

// DeriveSeed mixes a base seed with a component name into a new seed using
// an FNV-1a / splitmix64 construction. It is exported for components that
// need raw seeds rather than *rand.Rand streams.
func DeriveSeed(seed int64, name string) int64 {
	h := uint64(1469598103934665603) // FNV offset basis
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211 // FNV prime
	}
	h ^= uint64(seed)
	// splitmix64 finalizer for avalanche.
	h += 0x9E3779B97F4A7C15
	h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9
	h = (h ^ (h >> 27)) * 0x94D049BB133111EB
	h ^= h >> 31
	return int64(h)
}
