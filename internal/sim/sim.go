// Package sim provides a deterministic discrete-event simulation kernel: a
// virtual clock, an event queue, and seeded random-number streams.
//
// The kernel is the substitute for the paper's Emulab testbed time base.
// Everything above it (network emulation, transport protocols, middleware)
// is written against the environment abstraction in package env, so the same
// protocol code runs under this kernel in virtual time and under the real
// clock in the examples.
//
// Determinism contract: given the same seed and the same sequence of
// Schedule calls, a simulation produces bit-identical event orderings.
// Events scheduled for the same instant fire in scheduling order.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// Epoch is the virtual time at which every simulation starts. The concrete
// value is arbitrary; a fixed nonzero epoch catches code that confuses
// wall-clock and simulated time.
var Epoch = time.Date(2010, time.November, 29, 0, 0, 0, 0, time.UTC)

// Event is a scheduled callback. The zero value is not useful; events are
// created by Kernel.At and Kernel.After.
type Event struct {
	at    time.Time
	seq   uint64 // tie-breaker: FIFO among events at the same instant
	fn    func()
	index int // heap index, -1 once fired or canceled
	owner *Kernel
	// pooled marks fire-and-forget events created by Schedule: no handle
	// escapes to callers, so the kernel recycles them through its free list
	// after they fire. Events returned by At/After are never pooled because
	// a caller may hold the pointer and Cancel it later.
	pooled bool
}

// Cancel removes the event from the queue. It returns false if the event
// already fired or was already canceled. Cancel is idempotent.
func (e *Event) Cancel() bool {
	if e == nil || e.index < 0 || e.fn == nil {
		return false
	}
	e.kernelRemove()
	return true
}

// Time returns the virtual time the event is (or was) scheduled for.
func (e *Event) Time() time.Time { return e.at }

// kernelRemove is set up by the owning kernel; splitting it out keeps Event
// free of a kernel back-pointer field in the hot path.
func (e *Event) kernelRemove() {
	h := e.owner
	if h != nil && e.index >= 0 {
		heap.Remove(&h.queue, e.index)
		e.index = -1
		e.fn = nil
	}
}

// Kernel is a single-threaded discrete-event executor. It is not safe for
// concurrent use: all scheduling must happen from the driving goroutine or
// from within event callbacks (which the kernel runs serially).
type Kernel struct {
	now    time.Time
	queue  eventQueue
	nextID uint64
	seed   int64
	fired  uint64
	// maxEvents guards against runaway event loops in tests; 0 = unlimited.
	maxEvents uint64
	// free recycles pooled events (see Schedule). Packet-hop simulations
	// churn one event per hop, so reuse keeps the workers out of the
	// allocator on the hot path.
	free []*Event
}

// maxFreeEvents bounds the free list so a scheduling burst cannot pin an
// arbitrarily large pool of dead events.
const maxFreeEvents = 1 << 15

// New returns a kernel with its clock at Epoch, deriving all randomness from
// seed.
func New(seed int64) *Kernel {
	return &Kernel{now: Epoch, seed: seed}
}

// Now returns the current virtual time.
func (k *Kernel) Now() time.Time { return k.now }

// Seed returns the seed the kernel was created with.
func (k *Kernel) Seed() int64 { return k.seed }

// Fired returns the number of events executed so far.
func (k *Kernel) Fired() uint64 { return k.fired }

// Pending returns the number of events waiting in the queue.
func (k *Kernel) Pending() int { return k.queue.Len() }

// SetEventLimit bounds the total number of events Run will execute; 0 means
// unlimited. Exceeding the limit makes Run return ErrEventLimit.
func (k *Kernel) SetEventLimit(n uint64) { k.maxEvents = n }

// ErrEventLimit is returned by the run methods when the configured event
// limit is exceeded, which almost always indicates a protocol timer loop
// that fails to terminate.
var ErrEventLimit = errors.New("sim: event limit exceeded")

// At schedules fn to run at virtual time t. Times in the past (before Now)
// are clamped to Now, preserving causal ordering.
func (k *Kernel) At(t time.Time, fn func()) *Event {
	if fn == nil {
		panic("sim: At called with nil callback") // programmer error, not runtime condition
	}
	if t.Before(k.now) {
		t = k.now
	}
	e := &Event{at: t, seq: k.nextID, fn: fn, owner: k}
	k.nextID++
	heap.Push(&k.queue, e)
	return e
}

// After schedules fn to run d from now. Negative d is treated as zero.
func (k *Kernel) After(d time.Duration, fn func()) *Event {
	return k.At(k.now.Add(d), fn)
}

// Schedule is the fire-and-forget form of After: fn runs d from now and the
// event cannot be canceled. Because no handle escapes, the kernel recycles
// the event through an internal free list after it fires, so hot paths that
// never cancel (packet hops, delivery callbacks) schedule without
// allocating. Ordering is identical to After: events fire by (time, FIFO).
func (k *Kernel) Schedule(d time.Duration, fn func()) {
	if fn == nil {
		panic("sim: Schedule called with nil callback")
	}
	t := k.now.Add(d)
	if t.Before(k.now) {
		t = k.now
	}
	var e *Event
	if n := len(k.free); n > 0 {
		e = k.free[n-1]
		k.free[n-1] = nil
		k.free = k.free[:n-1]
		*e = Event{at: t, seq: k.nextID, fn: fn, owner: k, pooled: true}
	} else {
		e = &Event{at: t, seq: k.nextID, fn: fn, owner: k, pooled: true}
	}
	k.nextID++
	heap.Push(&k.queue, e)
}

// Step fires the earliest pending event, advancing the clock to its time.
// It returns false if the queue is empty.
func (k *Kernel) Step() bool {
	if k.queue.Len() == 0 {
		return false
	}
	e := heap.Pop(&k.queue).(*Event)
	k.now = e.at
	fn := e.fn
	e.fn = nil
	e.index = -1
	k.fired++
	if e.pooled && len(k.free) < maxFreeEvents {
		k.free = append(k.free, e)
	}
	fn()
	return true
}

// Run executes events until the queue is empty.
func (k *Kernel) Run() error {
	for k.Step() {
		if k.maxEvents > 0 && k.fired > k.maxEvents {
			return fmt.Errorf("%w: %d events", ErrEventLimit, k.fired)
		}
	}
	return nil
}

// RunUntil executes events with time <= deadline, then advances the clock to
// the deadline. Events scheduled after the deadline remain queued.
func (k *Kernel) RunUntil(deadline time.Time) error {
	for k.queue.Len() > 0 && !k.queue[0].at.After(deadline) {
		k.Step()
		if k.maxEvents > 0 && k.fired > k.maxEvents {
			return fmt.Errorf("%w: %d events", ErrEventLimit, k.fired)
		}
	}
	if k.now.Before(deadline) {
		k.now = deadline
	}
	return nil
}

// RunFor executes events for virtual duration d from the current time.
func (k *Kernel) RunFor(d time.Duration) error {
	return k.RunUntil(k.now.Add(d))
}

// Rand returns an independent deterministic random stream derived from the
// kernel seed and the given name. Equal names yield identical streams;
// distinct names yield decorrelated streams. Components should each own a
// named stream so that adding a component does not perturb others' draws.
func (k *Kernel) Rand(name string) *rand.Rand {
	return rand.New(rand.NewSource(DeriveSeed(k.seed, name)))
}

// DeriveSeed mixes a base seed with a component name into a new seed using
// an FNV-1a / splitmix64 construction. It is exported for components that
// need raw seeds rather than *rand.Rand streams.
func DeriveSeed(seed int64, name string) int64 {
	h := uint64(1469598103934665603) // FNV offset basis
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211 // FNV prime
	}
	h ^= uint64(seed)
	// splitmix64 finalizer for avalanche.
	h += 0x9E3779B97F4A7C15
	h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9
	h = (h ^ (h >> 27)) * 0x94D049BB133111EB
	h ^= h >> 31
	return int64(h)
}

// eventQueue implements heap.Interface ordered by (time, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if !q[i].at.Equal(q[j].at) {
		return q[i].at.Before(q[j].at)
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}
