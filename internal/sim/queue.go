package sim

import "math/bits"

// The kernel's pending-event set is a hybrid of three monomorphic
// containers, all ordered by the same (key, seq) total order:
//
//   - a timer wheel of wheelSlots buckets, each tickNanos wide, holding the
//     near-future events that packet-hop simulation churns (arrival and
//     CPU-done callbacks scheduled µs–ms ahead): O(1) insert, O(1) cancel;
//   - the "cur" 4-ary min-heap, holding events in the wheel's current tick
//     (including events inserted *during* the current tick, e.g. Post /
//     Schedule(0) storms) — the wheel bucket being drained, kept as a real
//     heap so same-instant FIFO order is exact, not bucket-approximate;
//   - the "far" 4-ary min-heap for the long tail beyond the wheel horizon
//     (protocol timers, experiment deadlines).
//
// Correctness invariant: every event in a wheel bucket has tick strictly
// greater than wheel.curTick, and every event in cur has tick <= curTick,
// so cur.min always precedes every wheel event. The global minimum is
// therefore min(cur.min, far.min) once promote() has drained the earliest
// occupied bucket into cur. far is compared on every pop because events
// that were beyond the horizon when inserted become due as time advances
// without ever migrating.
//
// Everything is keyed on int64 UnixNano. Within the range of times a
// simulation can reach (the epoch is 2010; UnixNano is valid until 2262)
// this ordering is identical to time.Time.Before/Equal on wall-clock
// times, which is what the previous container/heap implementation used.
const (
	tickShift  = 14 // 16.384 µs per wheel tick
	tickNanos  = 1 << tickShift
	wheelSlots = 1024 // horizon = slots * tick ≈ 16.8 ms
	wheelMask  = wheelSlots - 1
	wheelWords = wheelSlots / 64
)

// Event location tags stored in Event.where. Non-negative values are wheel
// slot numbers.
const (
	locNone int32 = -1
	locCur  int32 = -2
	locFar  int32 = -3
)

// evLess is the scheduler's total order: time, then FIFO by sequence.
func evLess(a, b *Event) bool {
	return a.key < b.key || (a.key == b.key && a.seq < b.seq)
}

// evHeap is a monomorphic 4-ary min-heap of events. Four-way branching
// halves the tree depth of a binary heap, and sifting compares inline int64
// keys instead of going through heap.Interface with any-boxed Push/Pop.
// Each event records its heap index so Cancel stays O(log n).
type evHeap struct {
	ev  []*Event
	loc int32 // stamped into Event.where on insert (locCur or locFar)
}

func (h *evHeap) push(e *Event) {
	e.where = h.loc
	i := len(h.ev)
	h.ev = append(h.ev, e)
	h.up(i, e)
}

// up sifts e toward the root from position i, moving blockers down.
func (h *evHeap) up(i int, e *Event) {
	for i > 0 {
		p := (i - 1) >> 2
		if !evLess(e, h.ev[p]) {
			break
		}
		h.ev[i] = h.ev[p]
		h.ev[i].index = int32(i)
		i = p
	}
	h.ev[i] = e
	e.index = int32(i)
}

// down sifts e toward the leaves from position i.
func (h *evHeap) down(i int, e *Event) {
	n := len(h.ev)
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if evLess(h.ev[j], h.ev[m]) {
				m = j
			}
		}
		if !evLess(h.ev[m], e) {
			break
		}
		h.ev[i] = h.ev[m]
		h.ev[i].index = int32(i)
		i = m
	}
	h.ev[i] = e
	e.index = int32(i)
}

// pop removes and returns the minimum event.
func (h *evHeap) pop() *Event {
	e := h.ev[0]
	n := len(h.ev) - 1
	last := h.ev[n]
	h.ev[n] = nil
	h.ev = h.ev[:n]
	if n > 0 {
		h.down(0, last)
	}
	e.index = -1
	e.where = locNone
	return e
}

// remove deletes the event at index i (Cancel path).
func (h *evHeap) remove(i int32) {
	e := h.ev[i]
	n := len(h.ev) - 1
	last := h.ev[n]
	h.ev[n] = nil
	h.ev = h.ev[:n]
	if int(i) < n {
		// Reinsert the displaced last element at i: it may need to move
		// either direction, so sift down then up (one of the two is a no-op).
		h.down(int(i), last)
		h.up(int(i), h.ev[i])
	}
	e.index = -1
	e.where = locNone
}

// wheel is the short-horizon timer wheel. Buckets are unsorted slices —
// order within a bucket is established only when the bucket is promoted
// into the cur heap — with an occupancy bitmap so finding the next
// non-empty bucket is a handful of word scans instead of a 1024-slot walk.
type wheel struct {
	slots   [wheelSlots][]*Event
	bitmap  [wheelWords]uint64
	count   int
	curTick int64 // tick of the bucket currently draining through cur
}

func (w *wheel) insert(e *Event, tn int64) {
	s := int32(tn & wheelMask)
	e.where = s
	e.index = int32(len(w.slots[s]))
	w.slots[s] = append(w.slots[s], e)
	w.bitmap[s>>6] |= 1 << (uint(s) & 63)
	w.count++
}

// remove deletes e from its bucket by swap-with-last: O(1).
func (w *wheel) remove(e *Event) {
	s := e.where
	sl := w.slots[s]
	n := len(sl) - 1
	moved := sl[n]
	sl[e.index] = moved
	moved.index = e.index
	sl[n] = nil
	w.slots[s] = sl[:n]
	if n == 0 {
		w.bitmap[s>>6] &^= 1 << (uint(s) & 63)
	}
	w.count--
	e.index = -1
	e.where = locNone
}

// nextTick returns the absolute tick and slot of the first occupied bucket
// after curTick. All wheel events live in (curTick, curTick+wheelSlots), so
// a single circular pass over the bitmap must find one; the caller
// guarantees count > 0.
func (w *wheel) nextTick() (int64, int32) {
	base := w.curTick + 1
	for off := int64(0); off < wheelSlots; {
		s := (base + off) & wheelMask
		word := w.bitmap[s>>6] >> (uint(s) & 63)
		if word != 0 {
			off += int64(bits.TrailingZeros64(word))
			if off >= wheelSlots {
				break
			}
			return base + off, int32((base + off) & wheelMask)
		}
		off += 64 - (int64(s) & 63)
	}
	panic("sim: timer wheel occupancy bitmap out of sync")
}
