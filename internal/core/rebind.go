package core

import (
	"errors"
	"time"

	"adamant/internal/dds"
	"adamant/internal/env"
	"adamant/internal/transport"
)

// This file closes the paper's adaptation loop: the Adaptor produces
// Decisions, and a Rebinder applies them to the running middleware through
// DomainParticipant.Rebind — the live drain-and-handoff transport swap —
// instead of requiring a restart with a new static configuration.

// SwitchRecord documents one applied reconfiguration.
type SwitchRecord struct {
	// At is the (simulation) time the decision was applied.
	At time.Time
	// Spec is the transport the middleware switched to.
	Spec transport.Spec
	// Writers is the number of data writers whose binding was swapped.
	Writers int
	// ApplyTime is the host-clock cost of the Rebind call itself: building
	// the new protocol generation and closing the old one into drain mode.
	// The subsequent in-flight drain completes asynchronously; its latency
	// is observable per reader via DataReader.TransportEpochs.
	ApplyTime time.Duration
	// Err is non-nil if some writer failed to swap (it keeps its previous
	// binding; Rebind is atomic per writer).
	Err error
}

// Rebinder adapts a DomainParticipant to the Adaptor's ReconfigureFunc
// seam, recording every applied switch.
type Rebinder struct {
	env      env.Env
	p        *dds.DomainParticipant
	switches []SwitchRecord
}

// NewRebinder builds a Rebinder for the participant.
func NewRebinder(e env.Env, p *dds.DomainParticipant) (*Rebinder, error) {
	if e == nil || p == nil {
		return nil, errors.New("core: rebinder needs env and participant")
	}
	return &Rebinder{env: e, p: p}, nil
}

// Reconfigure is a ReconfigureFunc: pass it to NewAdaptor.
func (r *Rebinder) Reconfigure(d Decision) {
	rec := SwitchRecord{At: r.env.Now(), Spec: d.Spec}
	t0 := time.Now()
	rec.Writers, rec.Err = r.p.Rebind(d.Spec)
	rec.ApplyTime = time.Since(t0)
	r.switches = append(r.switches, rec)
}

// Switches returns a copy of the applied-switch log.
func (r *Rebinder) Switches() []SwitchRecord {
	return append([]SwitchRecord(nil), r.switches...)
}
