package core_test

import (
	"errors"
	"testing"

	"adamant/internal/ann"
	"adamant/internal/core"
	"adamant/internal/dds"
	"adamant/internal/netem"
	"adamant/internal/transport"
)

func TestAppendVectorMatchesVector(t *testing.T) {
	f := core.FeaturesFor(netem.PC850, netem.Mbps100, dds.ImplB, 2.5, 6, 50, core.MetricReLate2Jit)
	want := f.Vector()
	got := f.AppendVector(nil)
	if len(got) != core.NumInputs {
		t.Fatalf("AppendVector length = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("input %d: AppendVector %v != Vector %v", i, got[i], want[i])
		}
	}
	// Appending to a non-empty slice preserves the prefix.
	pre := []float64{7, 8}
	out := f.AppendVector(pre)
	if len(out) != 2+core.NumInputs || out[0] != 7 || out[1] != 8 {
		t.Errorf("prefix not preserved: %v", out)
	}
	// Reusing a dirty buffer must not leak stale one-hot values.
	dirty := make([]float64, core.NumInputs)
	for i := range dirty {
		dirty[i] = 99
	}
	reused := f.AppendVector(dirty[:0])
	for i := range want {
		if reused[i] != want[i] {
			t.Errorf("dirty reuse, input %d: %v != %v", i, reused[i], want[i])
		}
	}
}

// TestDecisionHotPathAllocs pins the paper's bounded-decision-time property
// down to allocations: after warmup, one Select is zero-alloc, and so is a
// candidate index lookup.
func TestDecisionHotPathAllocs(t *testing.T) {
	net, err := ann.New(ann.Config{Layers: []int{core.NumInputs, 24, core.NumCandidates}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sel, err := core.NewANNSelector(net)
	if err != nil {
		t.Fatal(err)
	}
	f := core.FeaturesFor(netem.PC3000, netem.Gbps1, dds.ImplB, 3, 9, 25, core.MetricReLate2)
	if _, err := sel.Select(f); err != nil { // warmup: grows the input buffer
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(200, func() {
		if _, err := sel.Select(f); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("ANNSelector.Select allocates %v per run, want 0", avg)
	}

	cands := core.Candidates()
	if avg := testing.AllocsPerRun(200, func() {
		for i := range cands {
			if _, err := core.CandidateIndex(cands[i]); err != nil {
				t.Fatal(err)
			}
		}
	}); avg != 0 {
		t.Errorf("CandidateIndex allocates %v per run, want 0", avg)
	}

	buf := make([]float64, 0, core.NumInputs)
	if avg := testing.AllocsPerRun(200, func() {
		buf = f.AppendVector(buf[:0])
	}); avg != 0 {
		t.Errorf("AppendVector into sized buffer allocates %v per run, want 0", avg)
	}
}

func TestCandidateIndexEquivalentSpec(t *testing.T) {
	// A spec built by hand with its own Params map (not the candidate's
	// instance) must still resolve.
	spec := transport.Spec{Name: "nakcast", Params: transport.Params{"timeout": "10ms"}}
	idx, err := core.CandidateIndex(spec)
	if err != nil || idx != 2 {
		t.Errorf("CandidateIndex(fresh nakcast 10ms) = %d, %v; want 2", idx, err)
	}
	// Same name, different param value: not a candidate.
	if _, err := core.CandidateIndex(transport.Spec{Name: "nakcast",
		Params: transport.Params{"timeout": "7ms"}}); err == nil {
		t.Error("non-candidate timeout accepted")
	}
}

func TestHybridSelectorNilTable(t *testing.T) {
	annSel, err := core.NewANNSelector(trainedNet(t))
	if err != nil {
		t.Fatal(err)
	}
	h := &core.HybridSelector{ANN: annSel}
	f := core.FeaturesFor(netem.PC3000, netem.Gbps1, dds.ImplB, 3, 9, 25, core.MetricReLate2)
	spec, err := h.Select(f)
	if err != nil || spec.Name != "ricochet" {
		t.Errorf("nil-table hybrid = %v, %v; want ANN answer", spec, err)
	}
	// Table miss wraps ErrUnknownEnvironment; the hybrid must swallow it
	// and fall through, not surface it.
	tbl := core.NewTableSelector()
	if _, err := tbl.Select(f); !errors.Is(err, core.ErrUnknownEnvironment) {
		t.Fatalf("table miss err = %v", err)
	}
	h.Table = tbl
	if spec, err = h.Select(f); err != nil || spec.Name != "ricochet" {
		t.Errorf("table-miss hybrid = %v, %v; want ANN answer", spec, err)
	}
	// A table hit must answer even with no ANN fallback at all.
	tbl.Put(f, core.Candidates()[1])
	noANN := &core.HybridSelector{Table: tbl}
	if spec, err = noANN.Select(f); err != nil || spec.String() != core.Candidates()[1].String() {
		t.Errorf("table-hit without ANN = %v, %v; want table answer", spec, err)
	}
}
