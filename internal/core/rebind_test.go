package core_test

import (
	"fmt"
	"testing"
	"time"

	"adamant/internal/core"
	"adamant/internal/dds"
	"adamant/internal/env"
	"adamant/internal/netem"
	"adamant/internal/sim"
	"adamant/internal/transport"
	"adamant/internal/transport/protocols"
)

func TestRebinderValidation(t *testing.T) {
	k := sim.New(1)
	e := env.NewSim(k)
	if _, err := core.NewRebinder(nil, nil); err == nil {
		t.Error("nil args accepted")
	}
	if _, err := core.NewRebinder(e, nil); err == nil {
		t.Error("nil participant accepted")
	}
}

// TestAdaptationLoopEndToEnd closes the whole loop the paper leaves as
// future work: live dds traffic, an Adaptor watching the workload, and a
// Rebinder applying its decisions as hot transport swaps — no restart, no
// lost samples.
func TestAdaptationLoopEndToEnd(t *testing.T) {
	k := sim.New(7)
	e := env.NewSim(k)
	net, err := netem.New(e, netem.Config{Bandwidth: netem.Gbps1})
	if err != nil {
		t.Fatal(err)
	}
	reg := protocols.MustRegistry()
	writerNode := net.AddNode(netem.PC3000)
	readerNode := net.AddNode(netem.PC3000)
	receivers := transport.StaticReceivers(readerNode.Local())

	initialSpec := core.Candidates()[3] // nakcast(timeout=1ms)
	mk := func(node *netem.Node) *dds.DomainParticipant {
		p, err := dds.NewParticipant(dds.ParticipantConfig{
			Env: e, Endpoint: node, Registry: reg, Transport: initialSpec,
			Impl: dds.ImplB, SenderID: writerNode.Local(), Receivers: receivers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	writerP, readerP := mk(writerNode), mk(readerNode)
	topic, err := writerP.CreateTopic("adaptive", dds.TopicQoS{})
	if err != nil {
		t.Fatal(err)
	}
	writer, err := writerP.CreateDataWriter(topic, dds.WriterQoS{Reliability: dds.Reliable})
	if err != nil {
		t.Fatal(err)
	}
	rt, _ := readerP.CreateTopic("adaptive", dds.TopicQoS{})
	var got []dds.Sample
	var observedSwitch []string
	if _, err := readerP.CreateDataReader(rt, dds.ReaderQoS{Reliability: dds.Reliable},
		dds.ListenerFuncs{
			Data:             func(s dds.Sample) { got = append(got, s) },
			TransportChanged: func(_ string, spec transport.Spec) { observedSwitch = append(observedSwitch, spec.String()) },
		}); err != nil {
		t.Fatal(err)
	}

	// The observation the adaptor sees; receivers will "grow" mid-run.
	obs := core.Observation{Receivers: 3, RateHz: 50, LossPct: 1}
	rebinder, err := core.NewRebinder(e, writerP)
	if err != nil {
		t.Fatal(err)
	}
	initial := core.Decision{
		Features: core.FeaturesFor(netem.PC3000, netem.Gbps1, dds.ImplB, 1, 3, 50, core.MetricReLate2),
		Spec:     initialSpec,
	}
	adaptor, err := core.NewAdaptor(e, flipSelector{threshold: 10}, initial,
		func() core.Observation { return obs },
		rebinder.Reconfigure,
		core.AdaptorOptions{Interval: 100 * time.Millisecond, Cooldown: 500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer adaptor.Close()

	publish := func(n int) {
		for j := 0; j < n; j++ {
			if err := writer.Write([]byte(fmt.Sprintf("m-%d", writer.Seq()))); err != nil {
				t.Fatal(err)
			}
			if err := k.RunFor(20 * time.Millisecond); err != nil {
				t.Fatal(err)
			}
		}
	}

	publish(40) // 800ms of steady traffic under nakcast
	obs.Receivers = 15
	publish(40) // the adaptor notices within ~100ms and rebinds mid-traffic
	if err := writer.Close(); err != nil {
		t.Fatal(err)
	}
	if err := k.RunFor(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	switches := rebinder.Switches()
	if len(switches) != 1 {
		t.Fatalf("switches = %+v, want exactly 1", switches)
	}
	sw := switches[0]
	if sw.Spec.Name != "ricochet" || sw.Writers != 1 || sw.Err != nil {
		t.Errorf("switch record = %+v", sw)
	}
	if sw.ApplyTime <= 0 {
		t.Errorf("ApplyTime = %v, want > 0", sw.ApplyTime)
	}
	if writer.TransportSpec().Name != "ricochet" || writer.TransportEpoch() != 1 {
		t.Errorf("writer ended on %s epoch %d", writer.TransportSpec(), writer.TransportEpoch())
	}
	if len(observedSwitch) != 1 || observedSwitch[0] != "ricochet(c=3,r=4)" {
		t.Errorf("reader observed switches %v", observedSwitch)
	}
	if len(got) != 80 {
		t.Errorf("reader got %d samples, want 80 (none may be lost across the swap)", len(got))
	}
	seen := make(map[uint64]bool)
	for _, s := range got {
		if seen[s.Info.Seq] {
			t.Errorf("duplicate seq %d across swap", s.Info.Seq)
		}
		seen[s.Info.Seq] = true
	}
	if adaptor.Stats().Reconfigures != 1 {
		t.Errorf("adaptor stats = %+v", adaptor.Stats())
	}
}
