package core

import (
	"errors"
	"time"

	"adamant/internal/env"
)

// This file implements the paper's stated future work ("Fast, predictable
// configuration for DRE pub/sub systems can support dynamic autonomic
// adaptation... When the system detects environmental changes (e.g.
// increase in number of receivers or increase in sending rate), supervised
// machine learning can provide guidance to support QoS for the new
// configuration"): an adaptation manager that monitors the observed
// environment while the system runs and re-queries the selector when it
// drifts.

// Observation is a point-in-time view of the running system's environment
// and workload, produced by whatever monitoring the application has.
type Observation struct {
	Receivers int
	RateHz    float64
	LossPct   float64
}

// ObserveFunc supplies the current Observation. It runs in env callback
// context and must not block.
type ObserveFunc func() Observation

// ReconfigureFunc applies a new transport configuration to the running
// middleware. It runs in env callback context.
type ReconfigureFunc func(d Decision)

// AdaptorOptions tune the adaptation manager.
type AdaptorOptions struct {
	// Interval between environment checks. Default 1s.
	Interval time.Duration
	// RateTolerance is the relative change in sending rate that triggers
	// re-selection (0.25 = 25%). Default 0.25.
	RateTolerance float64
	// LossTolerance is the absolute percentage-point change in observed
	// loss that triggers re-selection. Default 1.0.
	LossTolerance float64
	// Cooldown is the minimum time between reconfigurations, bounding
	// flapping. Default 5s.
	Cooldown time.Duration
}

func (o *AdaptorOptions) fillDefaults() {
	if o.Interval <= 0 {
		o.Interval = time.Second
	}
	if o.RateTolerance <= 0 {
		o.RateTolerance = 0.25
	}
	if o.LossTolerance <= 0 {
		o.LossTolerance = 1.0
	}
	if o.Cooldown <= 0 {
		o.Cooldown = 5 * time.Second
	}
}

// AdaptorStats count the manager's activity.
type AdaptorStats struct {
	Checks       uint64
	Triggers     uint64 // drift detected
	Reconfigures uint64 // selector produced a different protocol
	Suppressed   uint64 // drift detected but inside the cooldown window
}

// Adaptor periodically compares the observed environment against the one
// the current configuration was selected for and re-queries the selector
// on drift. Because the ANN query is constant-time, the monitoring loop's
// cost is bounded and small — the property that makes in-mission
// adaptation viable for DRE systems.
type Adaptor struct {
	env         env.Env
	selector    Selector
	observe     ObserveFunc
	reconfigure ReconfigureFunc
	opts        AdaptorOptions

	base       Features // environment axes that don't drift at runtime
	current    Features
	spec       string // canonical form of the active protocol
	lastChange time.Time
	timer      env.Timer
	stats      AdaptorStats
	closed     bool
}

// NewAdaptor starts the monitoring loop. initial is the decision the
// system booted with; observe supplies live workload readings; reconfigure
// is invoked with every new decision.
func NewAdaptor(e env.Env, selector Selector, initial Decision,
	observe ObserveFunc, reconfigure ReconfigureFunc, opts AdaptorOptions) (*Adaptor, error) {
	if e == nil || selector == nil || observe == nil || reconfigure == nil {
		return nil, errors.New("core: adaptor needs env, selector, observe, and reconfigure")
	}
	if initial.Spec.Name == "" {
		return nil, errors.New("core: adaptor needs the initial decision")
	}
	opts.fillDefaults()
	a := &Adaptor{
		env:         e,
		selector:    selector,
		observe:     observe,
		reconfigure: reconfigure,
		opts:        opts,
		base:        initial.Features,
		current:     initial.Features,
		spec:        initial.Spec.String(),
		lastChange:  e.Now(),
	}
	a.timer = e.After(opts.Interval, a.tick)
	return a, nil
}

// Stats returns a snapshot of the adaptor counters.
func (a *Adaptor) Stats() AdaptorStats { return a.stats }

// Current returns the features the active configuration was selected for.
func (a *Adaptor) Current() Features { return a.current }

// Close stops the monitoring loop.
func (a *Adaptor) Close() error {
	if a.closed {
		return nil
	}
	a.closed = true
	if a.timer != nil {
		a.timer.Stop()
	}
	return nil
}

func (a *Adaptor) tick() {
	if a.closed {
		return
	}
	a.timer = a.env.After(a.opts.Interval, a.tick)
	a.stats.Checks++

	obs := a.observe()
	if !a.drifted(obs) {
		return
	}
	a.stats.Triggers++
	if a.env.Now().Sub(a.lastChange) < a.opts.Cooldown {
		a.stats.Suppressed++
		return
	}
	next := a.base
	next.Receivers = obs.Receivers
	next.RateHz = obs.RateHz
	next.LossPct = obs.LossPct
	spec, err := a.selector.Select(next)
	if err != nil {
		return // keep the current configuration; selector may recover
	}
	a.current = next
	if spec.String() == a.spec {
		// Same protocol is still right for the new environment. The
		// baseline moves (so this drift stops re-triggering) but the
		// cooldown clock must not: nothing was reconfigured, and rebasing
		// it here would let a stream of same-spec decisions indefinitely
		// postpone a needed switch.
		return
	}
	a.spec = spec.String()
	a.lastChange = a.env.Now()
	a.stats.Reconfigures++
	a.reconfigure(Decision{Features: next, Spec: spec})
}

// drifted reports whether the observation moved outside the tolerances
// around the currently configured environment.
func (a *Adaptor) drifted(obs Observation) bool {
	if obs.Receivers != a.current.Receivers {
		return true
	}
	if a.current.RateHz > 0 {
		rel := (obs.RateHz - a.current.RateHz) / a.current.RateHz
		if rel < 0 {
			rel = -rel
		}
		if rel > a.opts.RateTolerance {
			return true
		}
	}
	dl := obs.LossPct - a.current.LossPct
	if dl < 0 {
		dl = -dl
	}
	return dl > a.opts.LossTolerance
}
