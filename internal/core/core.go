// Package core is ADAMANT itself — the ADAptive Middleware And Network
// Transports controller that ties the repository together. At startup it
// (1) probes the cloud environment's computing and networking resources,
// (2) combines them with the application's parameters (receiver count,
// data rate, the QoS metric that matters) into a feature vector,
// (3) asks a Selector — normally the trained artificial neural network —
// for the transport protocol that best serves those resources, and
// (4) configures the DDS middleware with that protocol.
//
// The paper's headline property lives here: because the ANN query is one
// fixed-size forward pass, Decide runs in bounded, sub-10-microsecond time
// regardless of environment, unlike reinforcement-learning configurators
// whose decision time is unbounded.
package core

import (
	"errors"
	"fmt"
	"math"
	"time"

	"adamant/internal/ann"
	"adamant/internal/dds"
	"adamant/internal/netem"
	"adamant/internal/probe"
	"adamant/internal/transport"
	"adamant/internal/transport/fountcast"
	"adamant/internal/transport/nakcast"
	"adamant/internal/transport/ricochet"
)

// Metric selects which composite QoS metric the application optimizes.
type Metric int

// Metrics of interest (the paper trains on both, as an input feature).
const (
	// MetricReLate2 optimizes reliability x average latency.
	MetricReLate2 Metric = iota
	// MetricReLate2Jit additionally weights jitter.
	MetricReLate2Jit
)

// String implements fmt.Stringer.
func (m Metric) String() string {
	switch m {
	case MetricReLate2:
		return "ReLate2"
	case MetricReLate2Jit:
		return "ReLate2Jit"
	}
	return fmt.Sprintf("Metric(%d)", int(m))
}

// Metrics returns both composite metrics in stable order.
func Metrics() []Metric { return []Metric{MetricReLate2, MetricReLate2Jit} }

// candidates is the fixed selection space, built once; candidateIndex maps
// each candidate's canonical spec string to its position. Both back the
// decision hot path, which must not allocate.
var (
	candidates = []transport.Spec{
		nakcast.Spec(50 * time.Millisecond),
		nakcast.Spec(25 * time.Millisecond),
		nakcast.Spec(10 * time.Millisecond),
		nakcast.Spec(1 * time.Millisecond),
		ricochet.Spec(4, 3),
		ricochet.Spec(8, 3),
		fountcast.Spec(fountcast.DefaultK, fountcast.DefaultOverheadPct),
	}
	candidateIndex = func() map[string]int {
		m := make(map[string]int, len(candidates))
		for i, c := range candidates {
			m[c.String()] = i
		}
		return m
	}()
)

// Candidates is the protocol configuration space ADAMANT selects from —
// the six configurations the paper's experiments sweep (NAKcast with
// 50/25/10/1 ms NAK timeouts, Ricochet with R=4,C=3 and R=8,C=3) plus the
// rateless fountain code at its default K=8 block and 25% repair budget.
// New candidates are appended so trained-model indices stay stable.
func Candidates() []transport.Spec {
	return append([]transport.Spec(nil), candidates...)
}

// NumCandidates is the size of the selection space (the ANN output width).
const NumCandidates = 7

// CandidateIndex returns the index of spec within Candidates. The common
// case — spec structurally equal to a candidate — is an allocation-free
// field comparison; specs whose params render to the same canonical string
// through a different map instance fall back to the precomputed index.
func CandidateIndex(spec transport.Spec) (int, error) {
	for i := range candidates {
		if specEqual(candidates[i], spec) {
			return i, nil
		}
	}
	if i, ok := candidateIndex[spec.String()]; ok {
		return i, nil
	}
	return 0, fmt.Errorf("core: %s is not a candidate protocol", spec)
}

func specEqual(a, b transport.Spec) bool {
	if a.Name != b.Name || len(a.Params) != len(b.Params) {
		return false
	}
	for k, v := range a.Params {
		if b.Params[k] != v {
			return false
		}
	}
	return true
}

// Features is the environment + application description fed to a Selector:
// the paper's Table 1 (machine type, network bandwidth, DDS implementation,
// percent loss) and Table 2 (receiver count, sending rate) variables plus
// the metric of interest.
type Features struct {
	MachineMHz    float64
	BandwidthMbps float64
	Impl          dds.Impl
	LossPct       float64
	Receivers     int
	RateHz        float64
	Metric        Metric
	// OverheadPct is the proactive-FEC bandwidth budget the application
	// grants (percent of source bytes spendable on repair traffic); it is
	// what makes the fountain-coded candidate comparable at a fixed cost.
	OverheadPct float64
}

// NumInputs is the ANN input width produced by Vector.
const NumInputs = 10

// Vector encodes the features as normalized ANN inputs in [0, ~1.2]:
// CPU MHz (/3000), log10 bandwidth (/3 from Mbps), one-hot implementation,
// loss (/5), receivers (/15), rate (/100), one-hot metric, FEC overhead
// budget (/100).
func (f Features) Vector() []float64 {
	return f.AppendVector(make([]float64, 0, NumInputs))
}

// AppendVector appends the Vector encoding to dst and returns the extended
// slice. Callers on the decision hot path pass a reused buffer (dst[:0]) so
// encoding does not allocate.
func (f Features) AppendVector(dst []float64) []float64 {
	n := len(dst)
	dst = append(dst, make([]float64, NumInputs)...)
	v := dst[n : n+NumInputs]
	v[0] = f.MachineMHz / 3000
	if f.BandwidthMbps > 0 {
		v[1] = math.Log10(f.BandwidthMbps) / 3
	}
	if f.Impl == dds.ImplA {
		v[2] = 1
	} else {
		v[3] = 1
	}
	v[4] = f.LossPct / 5
	v[5] = float64(f.Receivers) / 15
	v[6] = f.RateHz / 100
	if f.Metric == MetricReLate2 {
		v[7] = 1
	} else {
		v[8] = 1
	}
	v[9] = f.OverheadPct / 100
	return dst
}

// Key returns a canonical string identity for exact-match lookup (the
// TableSelector / manual-configuration baseline).
func (f Features) Key() string {
	return fmt.Sprintf("%gMHz|%gMbps|%s|%g%%|%d|%gHz|%s|oh%g",
		f.MachineMHz, f.BandwidthMbps, f.Impl, f.LossPct, f.Receivers, f.RateHz, f.Metric,
		f.OverheadPct)
}

// String implements fmt.Stringer.
func (f Features) String() string { return f.Key() }

// Selector chooses a transport protocol for an environment.
type Selector interface {
	Select(f Features) (transport.Spec, error)
}

// ANNSelector queries a trained neural network — ADAMANT's production
// selector, with constant-time decisions and generalization to
// environments unknown until runtime.
type ANNSelector struct {
	net *ann.Network
	// buf is the reused input-encoding buffer; Select runs in env callback
	// context (serial), so no synchronization is needed.
	buf []float64
}

var _ Selector = (*ANNSelector)(nil)

// NewANNSelector wraps a trained network; its input/output widths must
// match NumInputs/NumCandidates.
func NewANNSelector(net *ann.Network) (*ANNSelector, error) {
	if net == nil {
		return nil, errors.New("core: nil network")
	}
	layers := net.Layers()
	if layers[0] != NumInputs || layers[len(layers)-1] != NumCandidates {
		return nil, fmt.Errorf("core: network shape %v, want %d inputs and %d outputs",
			layers, NumInputs, NumCandidates)
	}
	return &ANNSelector{net: net}, nil
}

// Select implements Selector. After the first call it does not allocate:
// the input encoding reuses an internal buffer and the result is served
// from the fixed candidate set.
func (s *ANNSelector) Select(f Features) (transport.Spec, error) {
	s.buf = f.AppendVector(s.buf[:0])
	idx, err := s.net.Classify(s.buf)
	if err != nil {
		return transport.Spec{}, err
	}
	return candidates[idx], nil
}

// TableSelector is the manual-configuration baseline the paper contrasts
// with: an exact-match lookup table (the programmatic equivalent of a
// hand-written switch statement). It cannot answer for environments it has
// not seen — the development-complexity and brittleness argument for the
// ANN.
type TableSelector struct {
	table map[string]transport.Spec
}

var _ Selector = (*TableSelector)(nil)

// NewTableSelector builds an empty table.
func NewTableSelector() *TableSelector {
	return &TableSelector{table: make(map[string]transport.Spec)}
}

// Put records the best protocol for an exact environment.
func (s *TableSelector) Put(f Features, spec transport.Spec) { s.table[f.Key()] = spec }

// Len returns the number of table entries.
func (s *TableSelector) Len() int { return len(s.table) }

// ErrUnknownEnvironment is returned by TableSelector for environments not
// in the table.
var ErrUnknownEnvironment = errors.New("core: environment not in configuration table")

// Select implements Selector.
func (s *TableSelector) Select(f Features) (transport.Spec, error) {
	spec, ok := s.table[f.Key()]
	if !ok {
		return transport.Spec{}, fmt.Errorf("%w: %s", ErrUnknownEnvironment, f.Key())
	}
	return spec, nil
}

// HybridSelector answers from the exact table when possible (100% accuracy
// for environments known a priori) and falls back to the ANN for
// environments unknown until runtime — the deployment configuration the
// paper's accuracy figures describe.
type HybridSelector struct {
	Table *TableSelector
	ANN   *ANNSelector
}

var _ Selector = (*HybridSelector)(nil)

// Select implements Selector.
func (s *HybridSelector) Select(f Features) (transport.Spec, error) {
	if s.Table != nil {
		if spec, err := s.Table.Select(f); err == nil {
			return spec, nil
		}
	}
	if s.ANN == nil {
		return transport.Spec{}, errors.New("core: hybrid selector has no ANN fallback")
	}
	return s.ANN.Select(f)
}

// AppParams are the application-side inputs the controller combines with
// the probed environment.
type AppParams struct {
	Receivers int
	RateHz    float64
	LossPct   float64 // expected end-host loss (e.g. from the cloud SLA)
	Impl      dds.Impl
	Metric    Metric
	// OverheadPct is the proactive-FEC bandwidth budget in percent;
	// 0 means the default fountain-code budget.
	OverheadPct float64
}

// overheadOrDefault maps an unset (zero) overhead budget to the fountain
// code's default repair rate so existing callers keep a sensible feature.
func overheadOrDefault(oh float64) float64 {
	if oh <= 0 {
		return fountcast.DefaultOverheadPct
	}
	return oh
}

// Controller is the ADAMANT startup configurator.
type Controller struct {
	source   probe.Source
	selector Selector
	params   AppParams
}

// NewController assembles a controller.
func NewController(source probe.Source, selector Selector, params AppParams) (*Controller, error) {
	if source == nil {
		return nil, errors.New("core: nil probe source")
	}
	if selector == nil {
		return nil, errors.New("core: nil selector")
	}
	if params.Receivers <= 0 || params.RateHz <= 0 {
		return nil, errors.New("core: app params need positive receivers and rate")
	}
	return &Controller{source: source, selector: selector, params: params}, nil
}

// Decision is the controller's output: the features it derived, the chosen
// protocol, and how long each stage took.
type Decision struct {
	Info       probe.Info
	Features   Features
	Spec       transport.Spec
	ProbeTime  time.Duration
	SelectTime time.Duration
}

// Decide probes the environment and selects a transport protocol.
func (c *Controller) Decide() (Decision, error) {
	var d Decision
	t0 := time.Now()
	info, err := c.source.Probe()
	if err != nil {
		return d, fmt.Errorf("core: probing environment: %w", err)
	}
	d.ProbeTime = time.Since(t0)
	d.Info = info

	machine := probe.NearestMachine(info)
	bw := probe.NearestBandwidth(info)
	d.Features = Features{
		MachineMHz:    float64(machine.MHz),
		BandwidthMbps: float64(int64(bw)) / 1e6,
		Impl:          c.params.Impl,
		LossPct:       c.params.LossPct,
		Receivers:     c.params.Receivers,
		RateHz:        c.params.RateHz,
		Metric:        c.params.Metric,
		OverheadPct:   overheadOrDefault(c.params.OverheadPct),
	}
	t1 := time.Now()
	spec, err := c.selector.Select(d.Features)
	if err != nil {
		return d, fmt.Errorf("core: selecting protocol: %w", err)
	}
	d.SelectTime = time.Since(t1)
	d.Spec = spec
	return d, nil
}

// FeaturesFor assembles Features directly from a known environment —
// used by the experiment harness and examples when the environment is
// simulated rather than probed.
func FeaturesFor(m netem.Machine, bw netem.Bandwidth, impl dds.Impl,
	lossPct float64, receivers int, rateHz float64, metric Metric) Features {
	return Features{
		MachineMHz:    float64(m.MHz),
		BandwidthMbps: float64(int64(bw)) / 1e6,
		Impl:          impl,
		LossPct:       lossPct,
		Receivers:     receivers,
		RateHz:        rateHz,
		Metric:        metric,
		OverheadPct:   overheadOrDefault(0),
	}
}
