package core_test

import (
	"errors"
	"testing"
	"time"

	"adamant/internal/ann"
	"adamant/internal/core"
	"adamant/internal/dds"
	"adamant/internal/netem"
	"adamant/internal/probe"
	"adamant/internal/transport"
)

func TestCandidates(t *testing.T) {
	cands := core.Candidates()
	if len(cands) != core.NumCandidates {
		t.Fatalf("Candidates = %d, want %d", len(cands), core.NumCandidates)
	}
	want := []string{
		"nakcast(timeout=50ms)", "nakcast(timeout=25ms)",
		"nakcast(timeout=10ms)", "nakcast(timeout=1ms)",
		"ricochet(c=3,r=4)", "ricochet(c=3,r=8)",
		"fountcast(k=8,oh=25)",
	}
	for i, c := range cands {
		if c.String() != want[i] {
			t.Errorf("candidate %d = %s, want %s", i, c, want[i])
		}
		idx, err := core.CandidateIndex(c)
		if err != nil || idx != i {
			t.Errorf("CandidateIndex(%s) = %d, %v", c, idx, err)
		}
	}
	if _, err := core.CandidateIndex(transport.Spec{Name: "tcp"}); err == nil {
		t.Error("unknown spec should error")
	}
}

func TestFeaturesVector(t *testing.T) {
	f := core.FeaturesFor(netem.PC3000, netem.Gbps1, dds.ImplA, 5, 15, 100, core.MetricReLate2)
	v := f.Vector()
	if len(v) != core.NumInputs {
		t.Fatalf("vector length %d", len(v))
	}
	if v[0] != 1.0 { // 3000/3000
		t.Errorf("machine input = %v", v[0])
	}
	if v[1] != 1.0 { // log10(1000)/3
		t.Errorf("bandwidth input = %v", v[1])
	}
	if v[2] != 1 || v[3] != 0 {
		t.Errorf("impl one-hot = %v %v", v[2], v[3])
	}
	if v[4] != 1 || v[5] != 1 || v[6] != 1 {
		t.Errorf("loss/receivers/rate = %v %v %v", v[4], v[5], v[6])
	}
	if v[7] != 1 || v[8] != 0 {
		t.Errorf("metric one-hot = %v %v", v[7], v[8])
	}
	if v[9] != 0.25 { // default 25% FEC budget
		t.Errorf("overhead input = %v", v[9])
	}
	g := core.FeaturesFor(netem.PC850, netem.Mbps10, dds.ImplB, 1, 3, 10, core.MetricReLate2Jit)
	w := g.Vector()
	if w[2] != 0 || w[3] != 1 || w[7] != 0 || w[8] != 1 {
		t.Errorf("one-hots wrong: %v", w)
	}
	if f.Key() == g.Key() {
		t.Error("distinct features share a key")
	}
	if f.String() != f.Key() {
		t.Error("String != Key")
	}
}

func TestMetricString(t *testing.T) {
	if core.MetricReLate2.String() != "ReLate2" || core.MetricReLate2Jit.String() != "ReLate2Jit" {
		t.Error("metric names wrong")
	}
	if core.Metric(9).String() == "" {
		t.Error("unknown metric should stringify")
	}
	if len(core.Metrics()) != 2 {
		t.Error("Metrics() wrong")
	}
}

// trainedNet returns a network that learned "pc3000 -> ricochet r4c3,
// else nakcast 1ms".
func trainedNet(t *testing.T) *ann.Network {
	t.Helper()
	var ds ann.Dataset
	for _, m := range []netem.Machine{netem.PC850, netem.PC3000} {
		for _, bw := range []netem.Bandwidth{netem.Mbps100, netem.Gbps1} {
			for loss := 1.0; loss <= 5; loss++ {
				for _, recv := range []int{3, 9, 15} {
					winner := 3
					if m.Name == "pc3000" {
						winner = 4
					}
					f := core.FeaturesFor(m, bw, dds.ImplB, loss, recv, 25, core.MetricReLate2)
					ds.Add(f.Vector(), ann.OneHot(core.NumCandidates, winner))
				}
			}
		}
	}
	net, err := ann.New(ann.Config{Layers: []int{core.NumInputs, 12, core.NumCandidates}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Train(&ds, ann.TrainOptions{MaxEpochs: 500, DesiredError: 1e-3}); err != nil {
		t.Fatal(err)
	}
	return net
}

func TestANNSelector(t *testing.T) {
	sel, err := core.NewANNSelector(trainedNet(t))
	if err != nil {
		t.Fatal(err)
	}
	fast := core.FeaturesFor(netem.PC3000, netem.Gbps1, dds.ImplB, 3, 9, 25, core.MetricReLate2)
	spec, err := sel.Select(fast)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "ricochet" {
		t.Errorf("fast environment -> %s, want ricochet", spec)
	}
	slow := core.FeaturesFor(netem.PC850, netem.Mbps100, dds.ImplB, 3, 9, 25, core.MetricReLate2)
	spec, err = sel.Select(slow)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "nakcast" {
		t.Errorf("slow environment -> %s, want nakcast", spec)
	}
}

func TestANNSelectorValidation(t *testing.T) {
	if _, err := core.NewANNSelector(nil); err == nil {
		t.Error("nil net should error")
	}
	bad, err := ann.New(ann.Config{Layers: []int{3, 4, 2}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.NewANNSelector(bad); err == nil {
		t.Error("wrong-shape net should error")
	}
}

func TestTableSelector(t *testing.T) {
	sel := core.NewTableSelector()
	f := core.FeaturesFor(netem.PC3000, netem.Gbps1, dds.ImplA, 5, 3, 10, core.MetricReLate2)
	if _, err := sel.Select(f); !errors.Is(err, core.ErrUnknownEnvironment) {
		t.Errorf("empty table err = %v", err)
	}
	want := core.Candidates()[4]
	sel.Put(f, want)
	if sel.Len() != 1 {
		t.Errorf("Len = %d", sel.Len())
	}
	got, err := sel.Select(f)
	if err != nil || got.String() != want.String() {
		t.Errorf("Select = %v, %v", got, err)
	}
	// A near-miss environment (different rate) must NOT match: the
	// brittleness the paper's Challenge 4 describes.
	g := core.FeaturesFor(netem.PC3000, netem.Gbps1, dds.ImplA, 5, 3, 25, core.MetricReLate2)
	if _, err := sel.Select(g); err == nil {
		t.Error("table selector matched an unseen environment")
	}
}

func TestHybridSelector(t *testing.T) {
	table := core.NewTableSelector()
	known := core.FeaturesFor(netem.PC850, netem.Gbps1, dds.ImplA, 2, 6, 50, core.MetricReLate2)
	table.Put(known, core.Candidates()[0])
	annSel, err := core.NewANNSelector(trainedNet(t))
	if err != nil {
		t.Fatal(err)
	}
	h := &core.HybridSelector{Table: table, ANN: annSel}
	// Known environment: exact table answer (even if the ANN would say
	// otherwise).
	got, err := h.Select(known)
	if err != nil || got.String() != core.Candidates()[0].String() {
		t.Errorf("known env = %v, %v", got, err)
	}
	// Unknown environment: ANN fallback.
	unknown := core.FeaturesFor(netem.PC3000, netem.Gbps1, dds.ImplB, 3, 9, 25, core.MetricReLate2)
	got, err = h.Select(unknown)
	if err != nil || got.Name != "ricochet" {
		t.Errorf("unknown env = %v, %v", got, err)
	}
	empty := &core.HybridSelector{}
	if _, err := empty.Select(unknown); err == nil {
		t.Error("hybrid without ANN should error on unknown env")
	}
}

func TestController(t *testing.T) {
	src := probe.ForMachine(netem.PC3000, netem.Gbps1)
	sel, err := core.NewANNSelector(trainedNet(t))
	if err != nil {
		t.Fatal(err)
	}
	params := core.AppParams{Receivers: 9, RateHz: 25, LossPct: 3,
		Impl: dds.ImplB, Metric: core.MetricReLate2}
	ctl, err := core.NewController(src, sel, params)
	if err != nil {
		t.Fatal(err)
	}
	d, err := ctl.Decide()
	if err != nil {
		t.Fatal(err)
	}
	if d.Spec.Name != "ricochet" {
		t.Errorf("decision = %s, want ricochet for pc3000/1Gb", d.Spec)
	}
	if d.Features.MachineMHz != 3000 || d.Features.BandwidthMbps != 1000 {
		t.Errorf("features = %+v", d.Features)
	}
	if d.SelectTime <= 0 || d.SelectTime > 5*time.Millisecond {
		t.Errorf("SelectTime = %v; want fast, bounded decision", d.SelectTime)
	}
}

func TestControllerValidation(t *testing.T) {
	src := probe.ForMachine(netem.PC3000, netem.Gbps1)
	sel := core.NewTableSelector()
	ok := core.AppParams{Receivers: 3, RateHz: 10}
	if _, err := core.NewController(nil, sel, ok); err == nil {
		t.Error("nil source accepted")
	}
	if _, err := core.NewController(src, nil, ok); err == nil {
		t.Error("nil selector accepted")
	}
	if _, err := core.NewController(src, sel, core.AppParams{}); err == nil {
		t.Error("empty app params accepted")
	}
	ctl, err := core.NewController(src, sel, ok)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.Decide(); err == nil {
		t.Error("empty table should propagate selection error")
	}
}

func BenchmarkAdamantDecide(b *testing.B) {
	var ds ann.Dataset
	f := core.FeaturesFor(netem.PC3000, netem.Gbps1, dds.ImplB, 3, 9, 25, core.MetricReLate2)
	ds.Add(f.Vector(), ann.OneHot(core.NumCandidates, 4))
	net, err := ann.New(ann.Config{Layers: []int{core.NumInputs, 24, core.NumCandidates}, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	sel, err := core.NewANNSelector(net)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sel.Select(f); err != nil {
			b.Fatal(err)
		}
	}
}
