package core_test

import (
	"testing"
	"time"

	"adamant/internal/core"
	"adamant/internal/dds"
	"adamant/internal/env"
	"adamant/internal/netem"
	"adamant/internal/sim"
	"adamant/internal/transport"
)

// flipSelector returns nakcast below the receiver threshold and ricochet at
// or above it — a deterministic stand-in for the trained ANN.
type flipSelector struct{ threshold int }

func (s flipSelector) Select(f core.Features) (transport.Spec, error) {
	if f.Receivers >= s.threshold {
		return core.Candidates()[4], nil
	}
	return core.Candidates()[3], nil
}

func newAdaptorHarness(t *testing.T, opts core.AdaptorOptions) (*sim.Kernel, *core.Adaptor,
	*core.Observation, *[]core.Decision) {
	t.Helper()
	k := sim.New(1)
	e := env.NewSim(k)
	obs := &core.Observation{Receivers: 3, RateHz: 25, LossPct: 2}
	initial := core.Decision{
		Features: core.FeaturesFor(netem.PC3000, netem.Gbps1, dds.ImplB, 2, 3, 25, core.MetricReLate2),
		Spec:     core.Candidates()[3],
	}
	var decisions []core.Decision
	a, err := core.NewAdaptor(e, flipSelector{threshold: 10}, initial,
		func() core.Observation { return *obs },
		func(d core.Decision) { decisions = append(decisions, d) },
		opts)
	if err != nil {
		t.Fatal(err)
	}
	return k, a, obs, &decisions
}

func TestAdaptorStableEnvironmentNoChanges(t *testing.T) {
	k, a, _, decisions := newAdaptorHarness(t, core.AdaptorOptions{Interval: 100 * time.Millisecond})
	if err := k.RunFor(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(*decisions) != 0 {
		t.Errorf("reconfigured %d times in a stable environment", len(*decisions))
	}
	st := a.Stats()
	if st.Checks < 40 {
		t.Errorf("Checks = %d, want ~50", st.Checks)
	}
	if st.Triggers != 0 {
		t.Errorf("Triggers = %d in stable environment", st.Triggers)
	}
}

func TestAdaptorReconfiguresOnReceiverGrowth(t *testing.T) {
	k, a, obs, decisions := newAdaptorHarness(t, core.AdaptorOptions{
		Interval: 100 * time.Millisecond, Cooldown: time.Second,
	})
	if err := k.RunFor(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	// The datacenter scales out: many more readers join.
	obs.Receivers = 15
	if err := k.RunFor(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(*decisions) != 1 {
		t.Fatalf("decisions = %d, want 1", len(*decisions))
	}
	d := (*decisions)[0]
	if d.Spec.Name != "ricochet" {
		t.Errorf("new spec = %s, want ricochet above threshold", d.Spec)
	}
	if d.Features.Receivers != 15 {
		t.Errorf("features.Receivers = %d", d.Features.Receivers)
	}
	if a.Current().Receivers != 15 {
		t.Errorf("Current() not updated: %+v", a.Current())
	}
}

func TestAdaptorDriftWithoutProtocolChange(t *testing.T) {
	// Rate doubles, but the selector still answers nakcast: features update,
	// no reconfigure callback.
	k, a, obs, decisions := newAdaptorHarness(t, core.AdaptorOptions{
		Interval: 100 * time.Millisecond, Cooldown: time.Second,
	})
	if err := k.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	obs.RateHz = 100
	if err := k.RunFor(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(*decisions) != 0 {
		t.Errorf("reconfigured despite same protocol: %v", *decisions)
	}
	if a.Current().RateHz != 100 {
		t.Errorf("Current().RateHz = %v, want 100", a.Current().RateHz)
	}
	if a.Stats().Triggers == 0 {
		t.Error("drift not detected")
	}
}

func TestAdaptorCooldownSuppressesFlapping(t *testing.T) {
	k, a, obs, decisions := newAdaptorHarness(t, core.AdaptorOptions{
		Interval: 100 * time.Millisecond, Cooldown: time.Hour,
	})
	if err := k.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	obs.Receivers = 15
	if err := k.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	obs.Receivers = 3
	if err := k.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	// Initial change allowed (lastChange set at construction + 1h cooldown
	// means nothing may change at all within the hour).
	if got := a.Stats().Suppressed; got == 0 {
		t.Error("cooldown never suppressed")
	}
	if len(*decisions) != 0 {
		t.Errorf("decisions = %d, want 0 under hour-long cooldown", len(*decisions))
	}
}

// TestAdaptorSameSpecDecisionKeepsCooldownClock is the regression test for
// a cooldown bookkeeping bug: a drift that re-selected the SAME protocol
// used to rebase lastChange, so a stream of same-spec decisions could
// postpone a genuinely needed switch indefinitely.
func TestAdaptorSameSpecDecisionKeepsCooldownClock(t *testing.T) {
	k, a, obs, decisions := newAdaptorHarness(t, core.AdaptorOptions{
		Interval: 100 * time.Millisecond, Cooldown: time.Second,
	})
	if err := k.RunFor(500 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// Rate drifts but the selector still answers nakcast. Ticks inside the
	// cooldown window suppress; the first tick after t=1s applies the
	// same-spec decision — which must NOT reset the cooldown clock.
	obs.RateHz = 100
	if err := k.RunFor(700 * time.Millisecond); err != nil { // t = 1.2s
		t.Fatal(err)
	}
	if len(*decisions) != 0 {
		t.Fatalf("same-spec drift reconfigured: %v", *decisions)
	}
	if a.Current().RateHz != 100 {
		t.Fatalf("baseline not rebased after same-spec decision: %+v", a.Current())
	}
	// Receivers now jump past the selector threshold. The last actual
	// reconfigure was at t=0, so the switch is due immediately.
	obs.Receivers = 15
	if err := k.RunFor(300 * time.Millisecond); err != nil { // t = 1.5s
		t.Fatal(err)
	}
	if len(*decisions) != 1 {
		t.Fatalf("decisions = %d, want 1 (cooldown clock was rebased by a same-spec decision)",
			len(*decisions))
	}
	if (*decisions)[0].Spec.Name != "ricochet" {
		t.Errorf("switched to %s, want ricochet", (*decisions)[0].Spec)
	}
}

func TestAdaptorLossDrift(t *testing.T) {
	k, a, obs, _ := newAdaptorHarness(t, core.AdaptorOptions{
		Interval: 100 * time.Millisecond, Cooldown: time.Millisecond,
		LossTolerance: 1.0,
	})
	if err := k.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	obs.LossPct = 2.5 // within tolerance
	if err := k.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	if a.Stats().Triggers != 0 {
		t.Error("sub-tolerance loss drift triggered")
	}
	obs.LossPct = 4.5 // outside tolerance
	if err := k.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	if a.Stats().Triggers == 0 {
		t.Error("loss drift not detected")
	}
	if a.Current().LossPct != 4.5 {
		t.Errorf("Current().LossPct = %v", a.Current().LossPct)
	}
}

func TestAdaptorClose(t *testing.T) {
	k, a, obs, decisions := newAdaptorHarness(t, core.AdaptorOptions{Interval: 100 * time.Millisecond})
	if err := k.RunFor(500 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
	obs.Receivers = 15
	if err := k.RunFor(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(*decisions) != 0 {
		t.Error("adaptor kept reconfiguring after Close")
	}
}

func TestAdaptorValidation(t *testing.T) {
	k := sim.New(1)
	e := env.NewSim(k)
	sel := flipSelector{}
	obs := func() core.Observation { return core.Observation{} }
	rec := func(core.Decision) {}
	good := core.Decision{Spec: core.Candidates()[0]}
	if _, err := core.NewAdaptor(nil, sel, good, obs, rec, core.AdaptorOptions{}); err == nil {
		t.Error("nil env accepted")
	}
	if _, err := core.NewAdaptor(e, nil, good, obs, rec, core.AdaptorOptions{}); err == nil {
		t.Error("nil selector accepted")
	}
	if _, err := core.NewAdaptor(e, sel, core.Decision{}, obs, rec, core.AdaptorOptions{}); err == nil {
		t.Error("empty initial decision accepted")
	}
	if _, err := core.NewAdaptor(e, sel, good, nil, rec, core.AdaptorOptions{}); err == nil {
		t.Error("nil observe accepted")
	}
	if _, err := core.NewAdaptor(e, sel, good, obs, nil, core.AdaptorOptions{}); err == nil {
		t.Error("nil reconfigure accepted")
	}
}
