package integration

import (
	"fmt"
	"testing"
	"time"

	"adamant/internal/env"
	"adamant/internal/membership"
	"adamant/internal/netem"
	"adamant/internal/sim"
	"adamant/internal/transport"
	"adamant/internal/transport/nakcast"
	"adamant/internal/transport/ricochet"
	"adamant/internal/wire"
)

// world is a simulated LAN with one sender and n receivers on raw
// transports (no DDS layer), for precise failure injection.
type world struct {
	k       *sim.Kernel
	e       *env.SimEnv
	net     *netem.Network
	sender  *netem.Node
	readers []*netem.Node
}

func newWorld(t *testing.T, receivers int, seed int64) *world {
	t.Helper()
	w := &world{k: sim.New(seed)}
	w.e = env.NewSim(w.k)
	var err error
	w.net, err = netem.New(w.e, netem.Config{Bandwidth: netem.Gbps1})
	if err != nil {
		t.Fatal(err)
	}
	w.sender = w.net.AddNode(netem.PC3000)
	for i := 0; i < receivers; i++ {
		w.readers = append(w.readers, w.net.AddNode(netem.PC3000))
	}
	return w
}

func (w *world) readerIDs() []wire.NodeID {
	ids := make([]wire.NodeID, len(w.readers))
	for i, r := range w.readers {
		ids[i] = r.Local()
	}
	return ids
}

// publish drives n samples at the given rate and then closes the sender.
func publish(t *testing.T, w *world, s transport.Sender, n int, period time.Duration) {
	t.Helper()
	count := 0
	var tick func()
	tick = func() {
		if count >= n {
			if err := s.Close(); err != nil {
				t.Error(err)
			}
			return
		}
		if err := s.Publish([]byte(fmt.Sprintf("s%04d", count))); err != nil {
			t.Error(err)
			return
		}
		count++
		w.e.After(period, tick)
	}
	w.e.Post(tick)
}

// TestReceiverCrashRicochetSurvivors injects a mid-run receiver crash: the
// membership detectors must evict it, Ricochet repair targeting must shrink
// to the survivors, and the survivors must keep recovering losses. The
// simulation must also terminate (no timer leaks from the dead node).
func TestReceiverCrashRicochetSurvivors(t *testing.T) {
	w := newWorld(t, 4, 21)
	for _, r := range w.readers {
		r.SetLoss(5)
	}

	// Membership: one detector per receiver node, sharing the endpoint
	// with the data-plane protocol via a mux... detectors and protocol
	// instances need separate routes, so run membership through a
	// dedicated control split per node.
	splits := make([]*transport.Splitter, len(w.readers))
	views := make([]*membership.Detector, len(w.readers))
	delivered := make([]int, len(w.readers))
	recovered := make([]int, len(w.readers))

	for i, node := range w.readers {
		i := i
		splits[i] = transport.NewSplitter(node)
		ctlMux := transport.NewMux(splits[i].Route(wire.ControlStream))
		det, err := membership.NewDetector(w.e, ctlMux, membership.DetectorOptions{
			Interval:     50 * time.Millisecond,
			SuspectAfter: 175 * time.Millisecond,
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		views[i] = det
		if _, err := ricochet.NewReceiver(transport.Config{
			Env:      w.e,
			Endpoint: splits[i].Route(1),
			Stream:   1,
			SenderID: w.sender.Local(),
			// Live receiver set from the failure detector, minus the
			// sender's node (detectors only run on receivers here).
			Receivers: det.Receivers,
			Deliver: func(d transport.Delivery) {
				delivered[i]++
				if d.Recovered {
					recovered[i]++
				}
			},
		}, ricochet.Options{R: 4, C: 3}); err != nil {
			t.Fatal(err)
		}
	}
	sender, err := ricochet.NewSender(transport.Config{
		Env: w.e, Endpoint: w.sender, Stream: 1,
	})
	if err != nil {
		t.Fatal(err)
	}

	const samples = 300
	publish(t, w, sender, samples, 10*time.Millisecond)

	// Crash receiver 3 one second in (no LEAVE: a real crash).
	w.e.After(time.Second, func() { w.readers[3].SetPartitioned(true) })

	if err := w.k.RunFor(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	// Detectors heartbeat forever by design; after closing them the
	// simulation must quiesce (nothing else may leak timers).
	for _, det := range views {
		if err := det.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.k.RunFor(time.Minute); err != nil {
		t.Fatal(err)
	}
	if pending := w.k.Pending(); pending > 0 {
		t.Errorf("%d events still pending after closing detectors; timers leaked", pending)
	}

	// Survivors evicted the crashed node from membership.
	for i := 0; i < 3; i++ {
		if views[i].View().Contains(w.readers[3].Local()) {
			t.Errorf("survivor %d still lists the crashed node", i)
		}
	}
	// Survivors kept delivering and recovering after the crash.
	for i := 0; i < 3; i++ {
		rate := 100 * float64(delivered[i]) / samples
		if rate < 99 {
			t.Errorf("survivor %d delivered %.1f%%, want >= 99%%", i, rate)
		}
		if recovered[i] == 0 {
			t.Errorf("survivor %d recovered nothing; repair flow broke after the crash", i)
		}
	}
	// The crashed receiver stopped at the crash point.
	if got := delivered[3]; got > samples/2 {
		t.Errorf("crashed receiver delivered %d; partition not effective", got)
	}
}

// TestPartitionHealNAKcast cuts a receiver off mid-stream and heals it: the
// NAK/retransmission path must backfill everything the receiver missed.
func TestPartitionHealNAKcast(t *testing.T) {
	w := newWorld(t, 2, 33)
	delivered := make([]int, len(w.readers))
	for i, node := range w.readers {
		i := i
		if _, err := nakcast.NewReceiver(transport.Config{
			Env: w.e, Endpoint: node, Stream: 1, SenderID: w.sender.Local(),
			Deliver: func(transport.Delivery) { delivered[i]++ },
		}, nakcast.Options{Timeout: 5 * time.Millisecond}); err != nil {
			t.Fatal(err)
		}
	}
	sender, err := nakcast.NewSender(transport.Config{
		Env: w.e, Endpoint: w.sender, Stream: 1,
	}, nakcast.Options{Timeout: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}

	const samples = 200
	publish(t, w, sender, samples, 10*time.Millisecond)
	// Partition reader 1 from 0.5s to 1.2s (~70 samples missed live).
	w.e.After(500*time.Millisecond, func() { w.readers[1].SetPartitioned(true) })
	w.e.After(1200*time.Millisecond, func() { w.readers[1].SetPartitioned(false) })

	if err := w.k.RunFor(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if delivered[0] != samples {
		t.Errorf("unpartitioned reader delivered %d/%d", delivered[0], samples)
	}
	if delivered[1] != samples {
		t.Errorf("healed reader delivered %d/%d; retransmission backfill failed", delivered[1], samples)
	}
}

// TestSenderCrashTerminates kills the sender mid-stream: receivers must
// abandon the missing tail after bounded NAK retries and the simulation
// must quiesce rather than NAK forever.
func TestSenderCrashTerminates(t *testing.T) {
	w := newWorld(t, 2, 44)
	delivered := make([]int, len(w.readers))
	for i, node := range w.readers {
		i := i
		node.SetLoss(5)
		if _, err := nakcast.NewReceiver(transport.Config{
			Env: w.e, Endpoint: node, Stream: 1, SenderID: w.sender.Local(),
			Deliver: func(transport.Delivery) { delivered[i]++ },
		}, nakcast.Options{Timeout: 5 * time.Millisecond, MaxNaks: 5}); err != nil {
			t.Fatal(err)
		}
	}
	sender, err := nakcast.NewSender(transport.Config{
		Env: w.e, Endpoint: w.sender, Stream: 1,
	}, nakcast.Options{Timeout: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	publish(t, w, sender, 1000, 5*time.Millisecond) // would run 5s...
	w.e.After(time.Second, func() { w.sender.SetPartitioned(true) })

	if err := w.k.RunFor(5 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if w.k.Pending() > 1 {
		t.Errorf("%d events pending after sender crash; NAK retries did not terminate", w.k.Pending())
	}
	for i, d := range delivered {
		if d < 150 || d > 300 {
			t.Errorf("reader %d delivered %d; expected ~200 (1s at 200Hz)", i, d)
		}
	}
}

// TestBurstLossProtocols compares protocol behavior under Gilbert-Elliott
// bursty loss: NAKcast must still recover essentially everything; Ricochet
// suffers more than under uniform loss because bursts wipe whole XOR
// groups.
func TestBurstLossProtocols(t *testing.T) {
	run := func(spec transport.Spec, burst bool) float64 {
		w := newWorld(t, 3, 55)
		for _, r := range w.readers {
			if burst {
				// ~5% average loss concentrated in bursts.
				r.SetBurstLoss(0.013, 0.25, 1.0)
				r.SetLoss(0)
			} else {
				r.SetLoss(5)
			}
		}
		reg := map[string]func(cfg transport.Config) (transport.Receiver, error){
			"nakcast": func(cfg transport.Config) (transport.Receiver, error) {
				return nakcast.NewReceiver(cfg, nakcast.Options{Timeout: 5 * time.Millisecond})
			},
			"ricochet": func(cfg transport.Config) (transport.Receiver, error) {
				return ricochet.NewReceiver(cfg, ricochet.Options{R: 4, C: 3})
			},
		}
		delivered := 0
		ids := w.readerIDs()
		for _, node := range w.readers {
			if _, err := reg[spec.Name](transport.Config{
				Env: w.e, Endpoint: node, Stream: 1, SenderID: w.sender.Local(),
				Receivers: transport.StaticReceivers(ids...),
				Deliver:   func(transport.Delivery) { delivered++ },
			}); err != nil {
				t.Fatal(err)
			}
		}
		var sender transport.Sender
		var err error
		if spec.Name == "nakcast" {
			sender, err = nakcast.NewSender(transport.Config{Env: w.e, Endpoint: w.sender, Stream: 1},
				nakcast.Options{Timeout: 5 * time.Millisecond})
		} else {
			sender, err = ricochet.NewSender(transport.Config{Env: w.e, Endpoint: w.sender, Stream: 1})
		}
		if err != nil {
			t.Fatal(err)
		}
		const samples = 600
		publish(t, w, sender, samples, 10*time.Millisecond)
		if err := w.k.RunFor(3 * time.Minute); err != nil {
			t.Fatal(err)
		}
		return 100 * float64(delivered) / float64(samples*3)
	}

	nakBurst := run(transport.Spec{Name: "nakcast"}, true)
	if nakBurst < 99.9 {
		t.Errorf("NAKcast reliability %.2f%% under burst loss, want ~100%%", nakBurst)
	}
	ricUniform := run(transport.Spec{Name: "ricochet"}, false)
	ricBurst := run(transport.Spec{Name: "ricochet"}, true)
	if ricBurst >= ricUniform {
		t.Errorf("Ricochet under burst loss (%.2f%%) should be worse than uniform (%.2f%%)",
			ricBurst, ricUniform)
	}
	if ricBurst < 90 {
		t.Errorf("Ricochet burst reliability %.2f%% implausibly low", ricBurst)
	}
}
