package integration

import (
	"fmt"
	"testing"
	"time"

	"adamant/internal/env"
	"adamant/internal/membership"
	"adamant/internal/netem"
	"adamant/internal/netem/chaos"
	"adamant/internal/sim"
	"adamant/internal/transport"
	"adamant/internal/transport/protocols"
	"adamant/internal/wire"
)

// world is a simulated LAN with one sender and n receivers on raw
// transports (no DDS layer), for precise failure injection. Faults are
// scripted through the chaos schedule engine rather than ad-hoc timers, so
// every test here is a named, seed-replayable scenario.
type world struct {
	k       *sim.Kernel
	e       *env.SimEnv
	net     *netem.Network
	sender  *netem.Node
	readers []*netem.Node
}

func newWorld(t *testing.T, receivers int, seed int64) *world {
	t.Helper()
	w := &world{k: sim.New(seed)}
	w.e = env.NewSim(w.k)
	var err error
	w.net, err = netem.New(w.e, netem.Config{Bandwidth: netem.Gbps1})
	if err != nil {
		t.Fatal(err)
	}
	w.sender = w.net.AddNode(netem.PC3000)
	for i := 0; i < receivers; i++ {
		w.readers = append(w.readers, w.net.AddNode(netem.PC3000))
	}
	return w
}

func (w *world) readerIDs() []wire.NodeID {
	ids := make([]wire.NodeID, len(w.readers))
	for i, r := range w.readers {
		ids[i] = r.Local()
	}
	return ids
}

func (w *world) nodes() chaos.Nodes {
	return chaos.Nodes{Sender: w.sender, Receivers: w.readers}
}

// schedule arms a chaos scenario against the world.
func (w *world) schedule(t *testing.T, sc chaos.Scenario) {
	t.Helper()
	if _, err := chaos.Schedule(w.e, w.nodes(), sc, chaos.Hooks{}); err != nil {
		t.Fatal(err)
	}
}

// publish drives n samples at the given rate and then closes the sender.
func publish(t *testing.T, w *world, s transport.Sender, n int, period time.Duration) {
	t.Helper()
	count := 0
	var tick func()
	tick = func() {
		if count >= n {
			if err := s.Close(); err != nil {
				t.Error(err)
			}
			return
		}
		if err := s.Publish([]byte(fmt.Sprintf("s%04d", count))); err != nil {
			t.Error(err)
			return
		}
		count++
		w.e.After(period, tick)
	}
	w.e.Post(tick)
}

// specsUnderTest is the full registered protocol matrix with the tunings
// the failure scenarios assume (fast NAK retries, small ACK window).
func specsUnderTest(t *testing.T) []transport.Spec {
	t.Helper()
	var specs []transport.Spec
	for _, s := range []string{
		"bemcast",
		"nakcast(timeout=5ms)",
		"ackcast(window=64,rto=20ms)",
		"ricochet(c=3,r=4)",
	} {
		spec, err := transport.ParseSpec(s)
		if err != nil {
			t.Fatal(err)
		}
		specs = append(specs, spec)
	}
	return specs
}

func reliable(t *testing.T, spec transport.Spec) bool {
	t.Helper()
	f, err := protocols.MustRegistry().Lookup(spec.Name)
	if err != nil {
		t.Fatal(err)
	}
	return f.Props.Has(transport.PropNAKReliability) || f.Props.Has(transport.PropACKReliability)
}

// TestReceiverCrashSurvivors injects a mid-run receiver crash under 5%
// loss, for every registered transport: the membership detectors must evict
// the crashed node, survivors must keep their protocol's guarantee
// (complete delivery for reliable transports, near-complete for Ricochet,
// loss-rate-bounded for best effort), and the simulation must terminate
// once the detectors close (no timer leaks from the dead node).
func TestReceiverCrashSurvivors(t *testing.T) {
	for _, spec := range specsUnderTest(t) {
		spec := spec
		t.Run(spec.String(), func(t *testing.T) {
			w := newWorld(t, 4, 21)
			for _, r := range w.readers {
				r.SetLoss(5)
			}
			const samples = 300
			crashed := 3

			// Membership and the data-plane protocol share each node via a
			// splitter: detectors on the control stream, data on stream 1.
			views := make([]*membership.Detector, len(w.readers))
			delivered := make([]int, len(w.readers))
			recovered := make([]int, len(w.readers))
			for i, node := range w.readers {
				i := i
				split := transport.NewSplitter(node)
				ctlMux := transport.NewMux(split.Route(wire.ControlStream))
				det, err := membership.NewDetector(w.e, ctlMux, membership.DetectorOptions{
					Interval:     50 * time.Millisecond,
					SuspectAfter: 175 * time.Millisecond,
				}, nil)
				if err != nil {
					t.Fatal(err)
				}
				views[i] = det
				if _, err := protocols.MustRegistry().NewReceiver(spec, transport.Config{
					Env:       w.e,
					Endpoint:  split.Route(1),
					Stream:    1,
					SenderID:  w.sender.Local(),
					Receivers: det.Receivers,
					Deliver: func(d transport.Delivery) {
						delivered[i]++
						if d.Recovered {
							recovered[i]++
						}
					},
				}); err != nil {
					t.Fatal(err)
				}
			}
			sender, err := protocols.MustRegistry().NewSender(spec, transport.Config{
				Env: w.e, Endpoint: w.sender, Stream: 1,
				Receivers: transport.StaticReceivers(w.readerIDs()...),
			})
			if err != nil {
				t.Fatal(err)
			}

			publish(t, w, sender, samples, 10*time.Millisecond)
			w.schedule(t, chaos.Scenario{
				Name: "receiver-crash",
				Events: []chaos.Event{
					{At: time.Second, Kind: chaos.KindCrash, Target: chaos.Receiver(crashed)},
				},
			})

			if err := w.k.RunFor(2 * time.Minute); err != nil {
				t.Fatal(err)
			}
			// Detectors heartbeat forever by design; after closing them the
			// simulation must quiesce (nothing else may leak timers).
			for _, det := range views {
				if err := det.Close(); err != nil {
					t.Fatal(err)
				}
			}
			if err := w.k.RunFor(time.Minute); err != nil {
				t.Fatal(err)
			}
			if pending := w.k.Pending(); pending > 0 {
				t.Errorf("%d events still pending after closing detectors; timers leaked", pending)
			}

			for i := 0; i < crashed; i++ {
				if views[i].View().Contains(w.readers[crashed].Local()) {
					t.Errorf("survivor %d still lists the crashed node", i)
				}
				rate := 100 * float64(delivered[i]) / samples
				switch {
				case reliable(t, spec):
					if delivered[i] != samples {
						t.Errorf("survivor %d delivered %d/%d; reliable transport did not converge", i, delivered[i], samples)
					}
				case spec.Name == "ricochet":
					if rate < 99 {
						t.Errorf("survivor %d delivered %.1f%%, want >= 99%%", i, rate)
					}
					if recovered[i] == 0 {
						t.Errorf("survivor %d recovered nothing; repair flow broke after the crash", i)
					}
				default: // best effort: bounded by the 5% loss only
					if rate < 90 {
						t.Errorf("survivor %d delivered %.1f%%, want >= 90%%", i, rate)
					}
				}
			}
			if got := delivered[crashed]; got > samples*2/3 {
				t.Errorf("crashed receiver delivered %d; crash not effective", got)
			}
		})
	}
}

// TestPartitionHealBackfill cuts a receiver off mid-stream and heals it,
// for every registered transport: reliable transports must backfill
// everything missed during the partition; best-effort transports must show
// the hole (proving the fault was real).
func TestPartitionHealBackfill(t *testing.T) {
	for _, spec := range specsUnderTest(t) {
		spec := spec
		t.Run(spec.String(), func(t *testing.T) {
			w := newWorld(t, 2, 33)
			delivered := make([]int, len(w.readers))
			ids := w.readerIDs()
			for i, node := range w.readers {
				i := i
				if _, err := protocols.MustRegistry().NewReceiver(spec, transport.Config{
					Env: w.e, Endpoint: node, Stream: 1, SenderID: w.sender.Local(),
					Receivers: transport.StaticReceivers(ids...),
					Deliver:   func(transport.Delivery) { delivered[i]++ },
				}); err != nil {
					t.Fatal(err)
				}
			}
			sender, err := protocols.MustRegistry().NewSender(spec, transport.Config{
				Env: w.e, Endpoint: w.sender, Stream: 1,
				Receivers: transport.StaticReceivers(ids...),
			})
			if err != nil {
				t.Fatal(err)
			}

			const samples = 200
			publish(t, w, sender, samples, 10*time.Millisecond)
			// Partition reader 1 from 0.5s to 1.2s (~70 samples missed live).
			w.schedule(t, chaos.Scenario{
				Name: "partition-heal",
				Events: []chaos.Event{
					{At: 500 * time.Millisecond, Kind: chaos.KindPartition, Target: chaos.Receiver(1)},
					{At: 1200 * time.Millisecond, Kind: chaos.KindHeal, Target: chaos.Receiver(1)},
				},
			})

			if err := w.k.RunFor(2 * time.Minute); err != nil {
				t.Fatal(err)
			}
			if delivered[0] != samples {
				t.Errorf("unpartitioned reader delivered %d/%d", delivered[0], samples)
			}
			if reliable(t, spec) {
				if delivered[1] != samples {
					t.Errorf("healed reader delivered %d/%d; backfill failed", delivered[1], samples)
				}
			} else {
				if delivered[1] >= samples {
					t.Errorf("best-effort reader delivered %d/%d through a partition", delivered[1], samples)
				}
				if delivered[1] < samples/2 {
					t.Errorf("healed reader delivered only %d/%d", delivered[1], samples)
				}
			}
		})
	}
}

// TestSenderCrashTerminates kills the sender mid-stream for both reliable
// transports: receivers must abandon the missing tail after bounded retries
// and the simulation must quiesce rather than retry forever.
func TestSenderCrashTerminates(t *testing.T) {
	for _, name := range []string{"nakcast(timeout=5ms,maxnaks=5)", "ackcast(window=64,rto=20ms)"} {
		spec, err := transport.ParseSpec(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(spec.String(), func(t *testing.T) {
			w := newWorld(t, 2, 44)
			delivered := make([]int, len(w.readers))
			ids := w.readerIDs()
			for i, node := range w.readers {
				i := i
				node.SetLoss(5)
				if _, err := protocols.MustRegistry().NewReceiver(spec, transport.Config{
					Env: w.e, Endpoint: node, Stream: 1, SenderID: w.sender.Local(),
					Receivers: transport.StaticReceivers(ids...),
					Deliver:   func(transport.Delivery) { delivered[i]++ },
				}); err != nil {
					t.Fatal(err)
				}
			}
			sender, err := protocols.MustRegistry().NewSender(spec, transport.Config{
				Env: w.e, Endpoint: w.sender, Stream: 1,
				Receivers: transport.StaticReceivers(ids...),
			})
			if err != nil {
				t.Fatal(err)
			}
			publish(t, w, sender, 1000, 5*time.Millisecond) // would run 5s...
			w.schedule(t, chaos.Scenario{
				Name: "sender-crash",
				Events: []chaos.Event{
					{At: time.Second, Kind: chaos.KindCrash, Target: chaos.Sender()},
				},
			})

			if err := w.k.RunFor(5 * time.Minute); err != nil {
				t.Fatal(err)
			}
			if w.k.Pending() > 1 {
				t.Errorf("%d events pending after sender crash; retries did not terminate", w.k.Pending())
			}
			for i, d := range delivered {
				if d < 150 || d > 300 {
					t.Errorf("reader %d delivered %d; expected ~200 (1s at 200Hz)", i, d)
				}
			}
		})
	}
}

// TestBurstLossProtocols compares protocol behavior under Gilbert-Elliott
// bursty loss (scripted as a chaos scenario): NAKcast must still recover
// essentially everything; Ricochet suffers more than under uniform loss
// because bursts wipe whole XOR groups.
func TestBurstLossProtocols(t *testing.T) {
	run := func(specStr string, burst bool) float64 {
		spec, err := transport.ParseSpec(specStr)
		if err != nil {
			t.Fatal(err)
		}
		w := newWorld(t, 3, 55)
		var ev chaos.Event
		if burst {
			// ~5% average loss concentrated in bursts, from t=0.
			ev = chaos.Event{Kind: chaos.KindBurst, Target: chaos.AllReceivers(),
				PGB: 0.013, PBG: 0.25, DropBad: 1.0}
		} else {
			ev = chaos.Event{Kind: chaos.KindLoss, Target: chaos.AllReceivers(), Pct: 5}
		}
		w.schedule(t, chaos.Scenario{Name: "loss-model", Events: []chaos.Event{ev}})

		delivered := 0
		ids := w.readerIDs()
		for _, node := range w.readers {
			if _, err := protocols.MustRegistry().NewReceiver(spec, transport.Config{
				Env: w.e, Endpoint: node, Stream: 1, SenderID: w.sender.Local(),
				Receivers: transport.StaticReceivers(ids...),
				Deliver:   func(transport.Delivery) { delivered++ },
			}); err != nil {
				t.Fatal(err)
			}
		}
		sender, err := protocols.MustRegistry().NewSender(spec, transport.Config{
			Env: w.e, Endpoint: w.sender, Stream: 1,
			Receivers: transport.StaticReceivers(ids...),
		})
		if err != nil {
			t.Fatal(err)
		}
		const samples = 600
		publish(t, w, sender, samples, 10*time.Millisecond)
		if err := w.k.RunFor(3 * time.Minute); err != nil {
			t.Fatal(err)
		}
		return 100 * float64(delivered) / float64(samples*3)
	}

	nakBurst := run("nakcast(timeout=5ms)", true)
	if nakBurst < 99.9 {
		t.Errorf("NAKcast reliability %.2f%% under burst loss, want ~100%%", nakBurst)
	}
	ricUniform := run("ricochet(c=3,r=4)", false)
	ricBurst := run("ricochet(c=3,r=4)", true)
	if ricBurst >= ricUniform {
		t.Errorf("Ricochet under burst loss (%.2f%%) should be worse than uniform (%.2f%%)",
			ricBurst, ricUniform)
	}
	if ricBurst < 90 {
		t.Errorf("Ricochet burst reliability %.2f%% implausibly low", ricBurst)
	}
}
