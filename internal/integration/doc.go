// Package integration holds cross-module failure-injection scenarios:
// receiver crashes, sender crashes, network partitions, and bursty loss,
// driven through the full netem + transport + membership stack. The
// package contains only tests.
package integration
