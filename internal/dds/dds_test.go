package dds_test

import (
	"fmt"
	"testing"
	"time"

	"adamant/internal/dds"
	"adamant/internal/env"
	"adamant/internal/netem"
	"adamant/internal/sim"
	"adamant/internal/transport"
	"adamant/internal/transport/protocols"
	"adamant/internal/wire"
)

// world is a simulated LAN with one writer participant and n reader
// participants, all on the same transport spec.
type world struct {
	k       *sim.Kernel
	net     *netem.Network
	writerP *dds.DomainParticipant
	readerP []*dds.DomainParticipant
}

func newWorld(t *testing.T, nReaders int, spec transport.Spec, impl dds.Impl) *world {
	t.Helper()
	w := &world{k: sim.New(3)}
	e := env.NewSim(w.k)
	var err error
	w.net, err = netem.New(e, netem.Config{Bandwidth: netem.Gbps1})
	if err != nil {
		t.Fatal(err)
	}
	reg := protocols.MustRegistry()
	writerNode := w.net.AddNode(netem.PC3000)
	readerIDs := make([]wire.NodeID, nReaders)
	readerNodes := make([]*netem.Node, nReaders)
	for i := 0; i < nReaders; i++ {
		readerNodes[i] = w.net.AddNode(netem.PC3000)
		readerIDs[i] = readerNodes[i].Local()
	}
	receivers := transport.StaticReceivers(readerIDs...)
	w.writerP, err = dds.NewParticipant(dds.ParticipantConfig{
		Env: e, Endpoint: writerNode, Registry: reg, Transport: spec,
		Impl: impl, SenderID: writerNode.Local(), Receivers: receivers,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nReaders; i++ {
		p, err := dds.NewParticipant(dds.ParticipantConfig{
			Env: e, Endpoint: readerNodes[i], Registry: reg, Transport: spec,
			Impl: impl, SenderID: writerNode.Local(), Receivers: receivers,
		})
		if err != nil {
			t.Fatal(err)
		}
		w.readerP = append(w.readerP, p)
	}
	return w
}

func TestPubSubEndToEnd(t *testing.T) {
	specs := []transport.Spec{
		{Name: "nakcast", Params: transport.Params{"timeout": "1ms"}},
		{Name: "ricochet", Params: transport.Params{"r": "4", "c": "2"}},
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec.String(), func(t *testing.T) {
			w := newWorld(t, 3, spec, dds.ImplB)
			topic, err := w.writerP.CreateTopic("sensors/infrared", dds.TopicQoS{})
			if err != nil {
				t.Fatal(err)
			}
			writer, err := w.writerP.CreateDataWriter(topic, dds.WriterQoS{Reliability: dds.Reliable})
			if err != nil {
				t.Fatal(err)
			}
			got := make([][]dds.Sample, 3)
			for i, p := range w.readerP {
				i := i
				rt, err := p.CreateTopic("sensors/infrared", dds.TopicQoS{})
				if err != nil {
					t.Fatal(err)
				}
				if _, err := p.CreateDataReader(rt, dds.ReaderQoS{Reliability: dds.Reliable},
					dds.ListenerFuncs{Data: func(s dds.Sample) { got[i] = append(got[i], s) }}); err != nil {
					t.Fatal(err)
				}
			}
			for n := 0; n < 30; n++ {
				if err := writer.Write([]byte(fmt.Sprintf("scan-%d", n))); err != nil {
					t.Fatal(err)
				}
				if err := w.k.RunFor(10 * time.Millisecond); err != nil {
					t.Fatal(err)
				}
			}
			if err := w.k.RunFor(time.Second); err != nil {
				t.Fatal(err)
			}
			for i, samples := range got {
				if len(samples) != 30 {
					t.Errorf("reader %d got %d samples, want 30", i, len(samples))
				}
			}
			if writer.Seq() != 30 {
				t.Errorf("writer Seq = %d", writer.Seq())
			}
		})
	}
}

func TestTopicIsolation(t *testing.T) {
	w := newWorld(t, 1, transport.Spec{Name: "nakcast", Params: transport.Params{"timeout": "1ms"}}, dds.ImplA)
	tA, err := w.writerP.CreateTopic("alpha", dds.TopicQoS{})
	if err != nil {
		t.Fatal(err)
	}
	tB, err := w.writerP.CreateTopic("beta", dds.TopicQoS{})
	if err != nil {
		t.Fatal(err)
	}
	wA, err := w.writerP.CreateDataWriter(tA, dds.WriterQoS{Reliability: dds.Reliable})
	if err != nil {
		t.Fatal(err)
	}
	wB, err := w.writerP.CreateDataWriter(tB, dds.WriterQoS{Reliability: dds.Reliable})
	if err != nil {
		t.Fatal(err)
	}
	p := w.readerP[0]
	rA, _ := p.CreateTopic("alpha", dds.TopicQoS{})
	var gotA, gotB []string
	if _, err := p.CreateDataReader(rA, dds.ReaderQoS{Reliability: dds.Reliable},
		dds.ListenerFuncs{Data: func(s dds.Sample) { gotA = append(gotA, string(s.Data)) }}); err != nil {
		t.Fatal(err)
	}
	rB, _ := p.CreateTopic("beta", dds.TopicQoS{})
	if _, err := p.CreateDataReader(rB, dds.ReaderQoS{Reliability: dds.Reliable},
		dds.ListenerFuncs{Data: func(s dds.Sample) { gotB = append(gotB, string(s.Data)) }}); err != nil {
		t.Fatal(err)
	}
	if err := wA.Write([]byte("from-alpha")); err != nil {
		t.Fatal(err)
	}
	if err := wB.Write([]byte("from-beta")); err != nil {
		t.Fatal(err)
	}
	if err := w.k.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	if len(gotA) != 1 || gotA[0] != "from-alpha" {
		t.Errorf("topic alpha got %v", gotA)
	}
	if len(gotB) != 1 || gotB[0] != "from-beta" {
		t.Errorf("topic beta got %v", gotB)
	}
}

func TestReliableRecoversLoss(t *testing.T) {
	w := newWorld(t, 1, transport.Spec{Name: "nakcast", Params: transport.Params{"timeout": "1ms"}}, dds.ImplB)
	w.net.Node(1).SetLoss(20)
	topic, _ := w.writerP.CreateTopic("lossy", dds.TopicQoS{})
	writer, err := w.writerP.CreateDataWriter(topic, dds.WriterQoS{Reliability: dds.Reliable})
	if err != nil {
		t.Fatal(err)
	}
	rt, _ := w.readerP[0].CreateTopic("lossy", dds.TopicQoS{})
	var got int
	reader, err := w.readerP[0].CreateDataReader(rt, dds.ReaderQoS{Reliability: dds.Reliable},
		dds.ListenerFuncs{Data: func(dds.Sample) { got++ }})
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 200; n++ {
		if err := writer.Write([]byte("x")); err != nil {
			t.Fatal(err)
		}
		if err := w.k.RunFor(5 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	if err := writer.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.k.RunFor(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got != 200 {
		t.Errorf("reliable reader got %d/200 at 20%% loss", got)
	}
	if st := reader.TransportStats(); st.Recovered == 0 {
		t.Error("no recoveries despite loss")
	}
}

func TestBestEffortUsesBemcast(t *testing.T) {
	w := newWorld(t, 1, transport.Spec{Name: "nakcast", Params: transport.Params{"timeout": "1ms"}}, dds.ImplB)
	w.net.Node(1).SetLoss(30)
	topic, _ := w.writerP.CreateTopic("video", dds.TopicQoS{})
	writer, err := w.writerP.CreateDataWriter(topic, dds.WriterQoS{Reliability: dds.BestEffort})
	if err != nil {
		t.Fatal(err)
	}
	rt, _ := w.readerP[0].CreateTopic("video", dds.TopicQoS{})
	var got int
	reader, err := w.readerP[0].CreateDataReader(rt, dds.ReaderQoS{Reliability: dds.BestEffort},
		dds.ListenerFuncs{Data: func(dds.Sample) { got++ }})
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 200; n++ {
		if err := writer.Write([]byte("frame")); err != nil {
			t.Fatal(err)
		}
		if err := w.k.RunFor(2 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.k.RunFor(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got >= 200 || got < 100 {
		t.Errorf("best-effort at 30%% loss delivered %d/200; want lossy but functional", got)
	}
	if st := reader.TransportStats(); st.Recovered != 0 {
		t.Errorf("best-effort should not recover; got %d", st.Recovered)
	}
}

func TestHistoryKeepLast(t *testing.T) {
	w := newWorld(t, 1, transport.Spec{Name: "bemcast"}, dds.ImplA)
	topic, _ := w.writerP.CreateTopic("hist", dds.TopicQoS{})
	writer, _ := w.writerP.CreateDataWriter(topic, dds.WriterQoS{})
	rt, _ := w.readerP[0].CreateTopic("hist", dds.TopicQoS{})
	reader, err := w.readerP[0].CreateDataReader(rt,
		dds.ReaderQoS{History: dds.KeepLast, Depth: 5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 12; n++ {
		if err := writer.Write([]byte{byte(n)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.k.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	if reader.CacheLen() != 5 {
		t.Errorf("CacheLen = %d, want 5", reader.CacheLen())
	}
	if reader.DroppedByQoS() != 7 {
		t.Errorf("DroppedByQoS = %d, want 7", reader.DroppedByQoS())
	}
	samples := reader.Read()
	if len(samples) != 5 || samples[0].Data[0] != 7 || samples[4].Data[0] != 11 {
		t.Errorf("Read() = %v", samples)
	}
	taken := reader.Take()
	if len(taken) != 5 || reader.CacheLen() != 0 {
		t.Errorf("Take left %d cached", reader.CacheLen())
	}
}

func TestHistoryKeepAllResourceLimit(t *testing.T) {
	w := newWorld(t, 1, transport.Spec{Name: "bemcast"}, dds.ImplA)
	topic, _ := w.writerP.CreateTopic("hist", dds.TopicQoS{})
	writer, _ := w.writerP.CreateDataWriter(topic, dds.WriterQoS{})
	rt, _ := w.readerP[0].CreateTopic("hist", dds.TopicQoS{})
	reader, err := w.readerP[0].CreateDataReader(rt,
		dds.ReaderQoS{History: dds.KeepAll, ResourceLimit: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 5; n++ {
		if err := writer.Write([]byte{byte(n)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.k.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	if reader.CacheLen() != 3 {
		t.Errorf("CacheLen = %d, want 3 (resource limit)", reader.CacheLen())
	}
	if reader.DroppedByQoS() != 2 {
		t.Errorf("DroppedByQoS = %d, want 2", reader.DroppedByQoS())
	}
	// KeepAll retains the OLDEST samples when full.
	if got := reader.Read(); got[0].Data[0] != 0 {
		t.Errorf("first sample = %d, want 0", got[0].Data[0])
	}
}

func TestDeadlineMissed(t *testing.T) {
	w := newWorld(t, 1, transport.Spec{Name: "bemcast"}, dds.ImplA)
	topic, _ := w.writerP.CreateTopic("dl", dds.TopicQoS{})
	writer, _ := w.writerP.CreateDataWriter(topic, dds.WriterQoS{})
	rt, _ := w.readerP[0].CreateTopic("dl", dds.TopicQoS{})
	missed := 0
	if _, err := w.readerP[0].CreateDataReader(rt,
		dds.ReaderQoS{Deadline: 50 * time.Millisecond},
		dds.ListenerFuncs{DeadlineMissed: func(topic string) {
			if topic != "dl" {
				t.Errorf("deadline topic = %q", topic)
			}
			missed++
		}}); err != nil {
		t.Fatal(err)
	}
	// Steady writes at 20ms: no deadline misses.
	for n := 0; n < 10; n++ {
		if err := writer.Write(nil); err != nil {
			t.Fatal(err)
		}
		if err := w.k.RunFor(20 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	if missed != 0 {
		t.Errorf("missed %d deadlines during steady traffic", missed)
	}
	// Silence for 500ms: ~10 misses.
	if err := w.k.RunFor(500 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if missed < 8 {
		t.Errorf("missed = %d after silence, want ~10", missed)
	}
}

func TestStreamIDForTopic(t *testing.T) {
	a, b := dds.StreamIDForTopic("alpha"), dds.StreamIDForTopic("beta")
	if a == b {
		t.Error("distinct topics mapped to same stream")
	}
	if a == wire.ControlStream || b == wire.ControlStream {
		t.Error("topic mapped to reserved control stream")
	}
	if dds.StreamIDForTopic("alpha") != a {
		t.Error("stream mapping not deterministic")
	}
}

func TestImplProfiles(t *testing.T) {
	if dds.ImplA.String() != "opendds" || dds.ImplB.String() != "opensplice" {
		t.Errorf("impl names: %v %v", dds.ImplA, dds.ImplB)
	}
	im, err := dds.ImplByName("opensplice")
	if err != nil || im != dds.ImplB {
		t.Errorf("ImplByName: %v %v", im, err)
	}
	if _, err := dds.ImplByName("rti"); err == nil {
		t.Error("unknown impl should error")
	}
	if len(dds.Impls()) != 2 {
		t.Error("Impls() wrong length")
	}
	if dds.Impl(9).String() == "" {
		t.Error("unknown impl String empty")
	}
}

func TestEntityValidationAndClose(t *testing.T) {
	w := newWorld(t, 1, transport.Spec{Name: "bemcast"}, dds.ImplA)
	if _, err := w.writerP.CreateTopic("", dds.TopicQoS{}); err == nil {
		t.Error("empty topic name should error")
	}
	topic, _ := w.writerP.CreateTopic("t", dds.TopicQoS{})
	again, err := w.writerP.CreateTopic("t", dds.TopicQoS{})
	if err != nil || again != topic {
		t.Error("re-creating a topic should return the same instance")
	}
	if topic.Name() != "t" || topic.Stream() == 0 {
		t.Error("topic accessors wrong")
	}
	// Foreign topic rejection.
	foreign, _ := w.readerP[0].CreateTopic("t", dds.TopicQoS{})
	if _, err := w.writerP.CreateDataWriter(foreign, dds.WriterQoS{}); err == nil {
		t.Error("foreign topic should be rejected")
	}
	if _, err := w.writerP.CreateDataReader(foreign, dds.ReaderQoS{}, nil); err == nil {
		t.Error("foreign topic should be rejected for readers")
	}
	// Negative deadline rejected.
	if _, err := w.readerP[0].CreateDataReader(foreign, dds.ReaderQoS{Deadline: -1}, nil); err == nil {
		t.Error("negative deadline should error")
	}
	// Unknown transport spec.
	if _, err := w.writerP.CreateDataWriter(topic, dds.WriterQoS{
		Reliability: dds.Reliable,
		Transport:   transport.Spec{Name: "warp-drive"},
	}); err == nil {
		t.Error("unknown transport should error")
	}

	writer, _ := w.writerP.CreateDataWriter(topic, dds.WriterQoS{})
	if err := w.writerP.Close(); err != nil {
		t.Fatal(err)
	}
	if err := writer.Write(nil); err == nil {
		t.Error("write after participant close should error")
	}
	if _, err := w.writerP.CreateTopic("new", dds.TopicQoS{}); err == nil {
		t.Error("create on closed participant should error")
	}
	if _, err := w.writerP.CreateDataWriter(topic, dds.WriterQoS{}); err == nil {
		t.Error("create writer on closed participant should error")
	}
	if err := w.writerP.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestQoSKindStrings(t *testing.T) {
	if dds.BestEffort.String() != "BEST_EFFORT" || dds.Reliable.String() != "RELIABLE" {
		t.Error("reliability strings wrong")
	}
	if dds.KeepLast.String() != "KEEP_LAST" || dds.KeepAll.String() != "KEEP_ALL" {
		t.Error("history strings wrong")
	}
	if dds.ReliabilityKind(7).String() == "" || dds.HistoryKind(7).String() == "" {
		t.Error("unknown kinds should stringify")
	}
}

func TestParticipantConfigValidation(t *testing.T) {
	k := sim.New(1)
	e := env.NewSim(k)
	n, err := netem.New(e, netem.Config{})
	if err != nil {
		t.Fatal(err)
	}
	node := n.AddNode(netem.PC3000)
	reg := protocols.MustRegistry()
	good := dds.ParticipantConfig{Env: e, Endpoint: node, Registry: reg,
		Transport: transport.Spec{Name: "bemcast"}}
	cases := []func(c dds.ParticipantConfig) dds.ParticipantConfig{
		func(c dds.ParticipantConfig) dds.ParticipantConfig { c.Env = nil; return c },
		func(c dds.ParticipantConfig) dds.ParticipantConfig { c.Endpoint = nil; return c },
		func(c dds.ParticipantConfig) dds.ParticipantConfig { c.Registry = nil; return c },
		func(c dds.ParticipantConfig) dds.ParticipantConfig { c.Transport = transport.Spec{}; return c },
		func(c dds.ParticipantConfig) dds.ParticipantConfig { c.Impl = dds.Impl(9); return c },
	}
	for i, mutate := range cases {
		if _, err := dds.NewParticipant(mutate(good)); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if _, err := dds.NewParticipant(good); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}
