package dds_test

import (
	"testing"
	"time"

	"adamant/internal/dds"
	"adamant/internal/transport"
)

// TestSampleLostStatus drives the SAMPLE_LOST path: under total blackout of
// one sample (data and retransmissions all dropped), NAKcast exhausts its
// retry budget and the reader's listener must be told which sample died.
func TestSampleLostStatus(t *testing.T) {
	// Tiny sender history: samples that fall out of it during the blackout
	// are genuinely unrecoverable, forcing the abandon path.
	spec := transport.Spec{Name: "nakcast",
		Params: transport.Params{"timeout": "2ms", "maxnaks": "3", "history": "8"}}
	w := newWorld(t, 1, spec, dds.ImplB)
	// Drop absolutely everything to reader node 1 between two instants, so
	// a contiguous run of samples is unrecoverable.
	w.net.Node(1).SetLoss(0)

	topic, err := w.writerP.CreateTopic("lossy", dds.TopicQoS{Reliability: dds.Reliable})
	if err != nil {
		t.Fatal(err)
	}
	writer, err := w.writerP.CreateDataWriter(topic, dds.WriterQoS{Reliability: dds.Reliable})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := w.readerP[0].CreateTopic("lossy", dds.TopicQoS{Reliability: dds.Reliable})
	if err != nil {
		t.Fatal(err)
	}
	var delivered int
	var lostSeqs []uint64
	reader, err := w.readerP[0].CreateDataReader(rt, dds.ReaderQoS{Reliability: dds.Reliable},
		dds.ListenerFuncs{
			Data: func(dds.Sample) { delivered++ },
			SampleLost: func(topic string, seq uint64) {
				if topic != "lossy" {
					t.Errorf("lost topic = %q", topic)
				}
				lostSeqs = append(lostSeqs, seq)
			},
		})
	if err != nil {
		t.Fatal(err)
	}

	blackout := func(on bool) { w.net.Node(1).SetPartitioned(on) }
	for n := 0; n < 40; n++ {
		if n == 10 {
			blackout(true)
		}
		if n == 30 {
			blackout(false)
		}
		if err := writer.Write([]byte{byte(n)}); err != nil {
			t.Fatal(err)
		}
		if err := w.k.RunFor(10 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	if err := writer.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.k.RunFor(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Samples 11..30 went into the blackout; by heal time only the last 8
	// remain in the sender's history, so most of the blackout window must
	// be reported lost, and every sample accounted for exactly once.
	if len(lostSeqs) == 0 {
		t.Fatal("no SAMPLE_LOST notifications despite a blackout")
	}
	if delivered+len(lostSeqs) != 40 {
		t.Errorf("delivered %d + lost %d != 40 sent", delivered, len(lostSeqs))
	}
	if len(lostSeqs) < 10 {
		t.Errorf("only %d samples lost; expected most of the evicted blackout window", len(lostSeqs))
	}
	if got := reader.SamplesLost(); got != uint64(len(lostSeqs)) {
		t.Errorf("SamplesLost() = %d, listener saw %d", got, len(lostSeqs))
	}
	seen := map[uint64]bool{}
	for _, s := range lostSeqs {
		if seen[s] {
			t.Errorf("seq %d reported lost twice", s)
		}
		seen[s] = true
	}
}

// TestContentFilter verifies the ContentFilteredTopic analog: samples
// failing the predicate never reach the cache or listener, but are counted.
func TestContentFilter(t *testing.T) {
	w := newWorld(t, 1, transport.Spec{Name: "bemcast"}, dds.ImplA)
	topic, err := w.writerP.CreateTopic("filtered", dds.TopicQoS{})
	if err != nil {
		t.Fatal(err)
	}
	writer, err := w.writerP.CreateDataWriter(topic, dds.WriterQoS{})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := w.readerP[0].CreateTopic("filtered", dds.TopicQoS{})
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	reader, err := w.readerP[0].CreateDataReader(rt, dds.ReaderQoS{
		Filter: func(data []byte) bool { return len(data) > 0 && data[0]%2 == 0 },
	}, dds.ListenerFuncs{Data: func(s dds.Sample) { got = append(got, s.Data[0]) }})
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 10; n++ {
		if err := writer.Write([]byte{byte(n)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.k.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("listener saw %d samples, want 5 even ones: %v", len(got), got)
	}
	for _, b := range got {
		if b%2 != 0 {
			t.Errorf("odd sample %d passed the filter", b)
		}
	}
	if reader.FilteredOut() != 5 {
		t.Errorf("FilteredOut = %d, want 5", reader.FilteredOut())
	}
	if reader.CacheLen() != 5 {
		t.Errorf("CacheLen = %d; filtered samples must not be cached", reader.CacheLen())
	}
}
