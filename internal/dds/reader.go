package dds

import (
	"fmt"
	"time"

	"adamant/internal/env"
	"adamant/internal/transport"
)

// SampleInfo carries the metadata of one received sample.
type SampleInfo struct {
	Topic      string
	Seq        uint64
	SentAt     time.Time
	ReceivedAt time.Time
	Recovered  bool
}

// Latency returns the sample's end-to-end latency.
func (i SampleInfo) Latency() time.Duration { return i.ReceivedAt.Sub(i.SentAt) }

// Sample is one received data sample.
type Sample struct {
	Data []byte
	Info SampleInfo
}

// Listener receives reader callbacks. Callbacks run in env callback context
// and must not block. The zero-value NoopListener embeds safely.
type Listener interface {
	// OnData fires for every sample delivered by the transport.
	OnData(s Sample)
	// OnDeadlineMissed fires when the DEADLINE QoS period elapses without
	// a sample.
	OnDeadlineMissed(topic string)
	// OnSampleLost fires when the transport gives up recovering a sample
	// (the DDS SAMPLE_LOST status).
	OnSampleLost(topic string, seq uint64)
	// OnTransportChanged fires when the reader's transport binding learns
	// that the writer hot-swapped the topic onto a new protocol (see
	// DomainParticipant.Rebind). The spec is the new epoch's transport.
	OnTransportChanged(topic string, spec transport.Spec)
}

// ListenerFuncs adapts plain functions to Listener; nil fields are no-ops.
type ListenerFuncs struct {
	Data             func(s Sample)
	DeadlineMissed   func(topic string)
	SampleLost       func(topic string, seq uint64)
	TransportChanged func(topic string, spec transport.Spec)
}

var _ Listener = ListenerFuncs{}

// OnData implements Listener.
func (l ListenerFuncs) OnData(s Sample) {
	if l.Data != nil {
		l.Data(s)
	}
}

// OnDeadlineMissed implements Listener.
func (l ListenerFuncs) OnDeadlineMissed(topic string) {
	if l.DeadlineMissed != nil {
		l.DeadlineMissed(topic)
	}
}

// OnSampleLost implements Listener.
func (l ListenerFuncs) OnSampleLost(topic string, seq uint64) {
	if l.SampleLost != nil {
		l.SampleLost(topic, seq)
	}
}

// OnTransportChanged implements Listener.
func (l ListenerFuncs) OnTransportChanged(topic string, spec transport.Spec) {
	if l.TransportChanged != nil {
		l.TransportChanged(topic, spec)
	}
}

// DataReader receives samples on one topic into a history cache and an
// optional listener.
type DataReader struct {
	participant *DomainParticipant
	topic       *Topic
	qos         ReaderQoS
	listener    Listener
	receiver    *transport.ReceiverBinding

	cache         []Sample
	samplesLost   uint64
	filteredOut   uint64
	droppedByQoS  uint64
	deadlineTimer env.Timer
	closed        bool
}

// CreateDataReader builds a reader for topic with the given QoS and
// listener (nil listener is allowed; samples then land only in the cache).
func (p *DomainParticipant) CreateDataReader(topic *Topic, qos ReaderQoS, listener Listener) (*DataReader, error) {
	if p.closed {
		return nil, ErrEntityClosed
	}
	if topic == nil || topic.participant != p {
		return nil, fmt.Errorf("dds: topic does not belong to this participant")
	}
	if err := qos.validate(); err != nil {
		return nil, err
	}
	qos.fillDefaults()
	r := &DataReader{participant: p, topic: topic, qos: qos, listener: listener}
	spec := resolveSpec(p.cfg.Transport, qos.Transport, qos.Reliability)
	cfg := p.transportConfig(topic, r.onDelivery)
	cfg.OnLost = func(seq uint64) {
		if r.closed {
			return
		}
		r.samplesLost++
		if r.listener != nil {
			r.listener.OnSampleLost(r.topic.name, seq)
		}
	}
	receiver, err := transport.NewReceiverBinding(transport.BindingConfig{
		Config:   cfg,
		Registry: p.cfg.Registry,
		Spec:     spec,
		OnTransportChanged: func(_ uint16, s transport.Spec) {
			if r.closed {
				return
			}
			if r.listener != nil {
				r.listener.OnTransportChanged(r.topic.name, s)
			}
		},
	})
	if err != nil {
		return nil, fmt.Errorf("dds: creating reader transport %s: %w", spec, err)
	}
	r.receiver = receiver
	if qos.Deadline > 0 {
		r.armDeadline()
	}
	p.readers = append(p.readers, r)
	return r, nil
}

// transportConfig assembles the transport.Config for one topic endpoint.
func (p *DomainParticipant) transportConfig(topic *Topic, deliver transport.DeliverFunc) transport.Config {
	return transport.Config{
		Env:       p.cfg.Env,
		Endpoint:  p.splitter.Route(topic.stream),
		Stream:    topic.stream,
		SenderID:  p.cfg.SenderID,
		Receivers: p.cfg.Receivers,
		Deliver:   deliver,
	}
}

func (r *DataReader) onDelivery(d transport.Delivery) {
	if r.closed {
		return
	}
	// Implementation-profile dispatch cost.
	r.participant.cfg.Endpoint.Work(r.participant.profile.dispatchCost)
	if r.qos.Filter != nil && !r.qos.Filter(d.Payload) {
		r.filteredOut++
		return
	}
	s := Sample{
		Data: d.Payload,
		Info: SampleInfo{
			Topic:      r.topic.name,
			Seq:        d.Seq,
			SentAt:     d.SentAt,
			ReceivedAt: d.DeliveredAt,
			Recovered:  d.Recovered,
		},
	}
	r.cacheSample(s)
	if r.qos.Deadline > 0 {
		r.armDeadline()
	}
	if r.listener != nil {
		r.listener.OnData(s)
	}
}

func (r *DataReader) cacheSample(s Sample) {
	switch r.qos.History {
	case KeepLast:
		r.cache = append(r.cache, s)
		if len(r.cache) > r.qos.Depth {
			over := len(r.cache) - r.qos.Depth
			r.droppedByQoS += uint64(over)
			r.cache = append(r.cache[:0], r.cache[over:]...)
		}
	case KeepAll:
		if len(r.cache) >= r.qos.ResourceLimit {
			r.droppedByQoS++
			return
		}
		r.cache = append(r.cache, s)
	}
}

func (r *DataReader) armDeadline() {
	if r.deadlineTimer != nil {
		r.deadlineTimer.Stop()
	}
	r.deadlineTimer = r.participant.cfg.Env.After(r.qos.Deadline, func() {
		if r.closed {
			return
		}
		if r.listener != nil {
			r.listener.OnDeadlineMissed(r.topic.name)
		}
		r.armDeadline()
	})
}

// Take returns and removes all cached samples.
func (r *DataReader) Take() []Sample {
	out := r.cache
	r.cache = nil
	return out
}

// Read returns a copy of the cached samples without consuming them.
func (r *DataReader) Read() []Sample {
	return append([]Sample(nil), r.cache...)
}

// CacheLen returns the number of samples currently cached.
func (r *DataReader) CacheLen() int { return len(r.cache) }

// DroppedByQoS returns the number of samples evicted or rejected by the
// HISTORY / resource-limit policies.
func (r *DataReader) DroppedByQoS() uint64 { return r.droppedByQoS }

// SamplesLost returns the number of samples the transport reported as
// permanently unrecoverable (the DDS SAMPLE_LOST total count).
func (r *DataReader) SamplesLost() uint64 { return r.samplesLost }

// FilteredOut returns the number of samples rejected by the content filter.
func (r *DataReader) FilteredOut() uint64 { return r.filteredOut }

// TransportStats exposes the underlying transport receiver counters.
func (r *DataReader) TransportStats() transport.ReceiverStats { return r.receiver.Stats() }

// TransportSpec returns the spec of the newest transport epoch the reader's
// binding has learned (the initial spec until a hot-swap is announced).
func (r *DataReader) TransportSpec() transport.Spec { return r.receiver.Spec() }

// TransportEpochs reports every transport generation the reader has seen on
// this topic, oldest first, including drain progress and latency.
func (r *DataReader) TransportEpochs() []transport.EpochInfo { return r.receiver.Epochs() }

// Topic returns the reader's topic.
func (r *DataReader) Topic() *Topic { return r.topic }

// QoS returns the reader's QoS.
func (r *DataReader) QoS() ReaderQoS { return r.qos }

// Close releases the reader's transport instance and timers.
func (r *DataReader) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	if r.deadlineTimer != nil {
		r.deadlineTimer.Stop()
	}
	return r.receiver.Close()
}
