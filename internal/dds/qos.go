package dds

import (
	"errors"
	"fmt"
	"time"

	"adamant/internal/transport"
)

// ReliabilityKind mirrors the DDS RELIABILITY QoS policy kinds.
type ReliabilityKind int

// Reliability kinds.
const (
	// BestEffort delivers what arrives; no recovery is attempted.
	BestEffort ReliabilityKind = iota
	// Reliable asks the transport to recover losses (how well it does so
	// depends on the configured transport protocol — that is exactly the
	// trade ADAMANT's configurator optimizes).
	Reliable
)

// String implements fmt.Stringer.
func (k ReliabilityKind) String() string {
	switch k {
	case BestEffort:
		return "BEST_EFFORT"
	case Reliable:
		return "RELIABLE"
	}
	return fmt.Sprintf("ReliabilityKind(%d)", int(k))
}

// HistoryKind mirrors the DDS HISTORY QoS policy kinds.
type HistoryKind int

// History kinds.
const (
	// KeepLast retains the most recent Depth samples in the reader cache.
	KeepLast HistoryKind = iota
	// KeepAll retains every sample until taken (bounded by ResourceLimit).
	KeepAll
)

// String implements fmt.Stringer.
func (k HistoryKind) String() string {
	switch k {
	case KeepLast:
		return "KEEP_LAST"
	case KeepAll:
		return "KEEP_ALL"
	}
	return fmt.Sprintf("HistoryKind(%d)", int(k))
}

// TopicQoS is the topic-level QoS subset this implementation supports.
type TopicQoS struct {
	// Reliability is the default reliability for endpoints on this topic.
	Reliability ReliabilityKind
}

func (q *TopicQoS) fillDefaults() {}

// WriterQoS configures a DataWriter.
type WriterQoS struct {
	// Reliability selects best-effort or reliable publication.
	Reliability ReliabilityKind
	// Transport overrides the participant-wide transport spec when
	// non-empty (Name != "").
	Transport transport.Spec
}

// ReaderQoS configures a DataReader.
type ReaderQoS struct {
	// Reliability selects best-effort or reliable subscription. The
	// reader's transport must match the writer's for recovery to work;
	// ADAMANT configures both sides from the same recommendation.
	Reliability ReliabilityKind
	// Transport overrides the participant-wide transport spec when
	// non-empty.
	Transport transport.Spec
	// History controls the reader cache.
	History HistoryKind
	// Depth is the KeepLast cache depth. Default 32.
	Depth int
	// ResourceLimit bounds the KeepAll cache. Default 65536.
	ResourceLimit int
	// Deadline, when positive, arms a deadline monitor: if no sample
	// arrives within Deadline, the listener's OnDeadlineMissed fires (and
	// re-arms). Mirrors the DDS DEADLINE policy.
	Deadline time.Duration
	// Filter, when non-nil, is a content filter: samples for which it
	// returns false are counted and dropped before the cache and listener
	// (the Go analog of a DDS ContentFilteredTopic; samples here are
	// opaque bytes, so the filter is a predicate rather than a SQL
	// expression).
	Filter func(data []byte) bool
}

func (q *ReaderQoS) fillDefaults() {
	if q.Depth <= 0 {
		q.Depth = 32
	}
	if q.ResourceLimit <= 0 {
		q.ResourceLimit = 1 << 16
	}
}

func (q ReaderQoS) validate() error {
	if q.Deadline < 0 {
		return errors.New("dds: negative deadline")
	}
	return nil
}

// bestEffortSpec is the transport used when reliability is BestEffort and
// no explicit transport override is given.
var bestEffortSpec = transport.Spec{Name: "bemcast"}

// resolveSpec picks the transport spec for an endpoint: explicit override,
// else best-effort multicast for BestEffort reliability, else the
// participant-wide (ADAMANT-chosen) spec.
func resolveSpec(participant transport.Spec, override transport.Spec, rel ReliabilityKind) transport.Spec {
	if override.Name != "" {
		return override
	}
	if rel == BestEffort {
		return bestEffortSpec
	}
	return participant
}
