package dds_test

import (
	"fmt"
	"time"

	"adamant/internal/dds"
	"adamant/internal/env"
	"adamant/internal/netem"
	"adamant/internal/sim"
	"adamant/internal/transport"
	"adamant/internal/transport/protocols"
)

// Example shows the full DDS-style API surface on a two-node simulated
// LAN: participant -> topic -> writer/reader with RELIABLE QoS over an
// ADAMANT-selectable transport.
func Example() {
	kernel := sim.New(1)
	e := env.NewSim(kernel)
	network, err := netem.New(e, netem.Config{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	writerNode := network.AddNode(netem.PC3000)
	readerNode := network.AddNode(netem.PC3000)
	reg := protocols.MustRegistry()
	spec := transport.Spec{Name: "nakcast", Params: transport.Params{"timeout": "1ms"}}

	mk := func(node *netem.Node) (*dds.DomainParticipant, error) {
		return dds.NewParticipant(dds.ParticipantConfig{
			Env: e, Endpoint: node, Registry: reg, Transport: spec,
			Impl: dds.ImplB, SenderID: writerNode.Local(),
			Receivers: transport.StaticReceivers(readerNode.Local()),
		})
	}
	wp, err := mk(writerNode)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	topic, err := wp.CreateTopic("telemetry", dds.TopicQoS{Reliability: dds.Reliable})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	writer, err := wp.CreateDataWriter(topic, dds.WriterQoS{Reliability: dds.Reliable})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	rp, err := mk(readerNode)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	rt, err := rp.CreateTopic("telemetry", dds.TopicQoS{Reliability: dds.Reliable})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	if _, err := rp.CreateDataReader(rt, dds.ReaderQoS{Reliability: dds.Reliable},
		dds.ListenerFuncs{Data: func(s dds.Sample) {
			fmt.Printf("received %q (seq %d)\n", s.Data, s.Info.Seq)
		}}); err != nil {
		fmt.Println("error:", err)
		return
	}

	if err := writer.Write([]byte("hello DRE cloud")); err != nil {
		fmt.Println("error:", err)
		return
	}
	if err := kernel.RunFor(time.Second); err != nil {
		fmt.Println("error:", err)
		return
	}
	// Output: received "hello DRE cloud" (seq 1)
}
