package dds_test

import (
	"fmt"
	"testing"
	"time"

	"adamant/internal/dds"
	"adamant/internal/transport"
)

// TestRebindLiveSwap hot-swaps the participant transport mid-stream and
// checks nothing is lost, duplicated, or reordered across the swap.
func TestRebindLiveSwap(t *testing.T) {
	w := newWorld(t, 2, transport.Spec{Name: "nakcast", Params: transport.Params{"timeout": "2ms"}}, dds.ImplB)
	topic, err := w.writerP.CreateTopic("telemetry", dds.TopicQoS{})
	if err != nil {
		t.Fatal(err)
	}
	writer, err := w.writerP.CreateDataWriter(topic, dds.WriterQoS{Reliability: dds.Reliable})
	if err != nil {
		t.Fatal(err)
	}
	got := make([][]dds.Sample, 2)
	changes := make([][]string, 2)
	for i, p := range w.readerP {
		i := i
		rt, err := p.CreateTopic("telemetry", dds.TopicQoS{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.CreateDataReader(rt, dds.ReaderQoS{Reliability: dds.Reliable},
			dds.ListenerFuncs{
				Data:             func(s dds.Sample) { got[i] = append(got[i], s) },
				TransportChanged: func(_ string, spec transport.Spec) { changes[i] = append(changes[i], spec.String()) },
			}); err != nil {
			t.Fatal(err)
		}
	}
	write := func(n int) {
		for j := 0; j < n; j++ {
			if err := writer.Write([]byte(fmt.Sprintf("s-%d", writer.Seq()))); err != nil {
				t.Fatal(err)
			}
			if err := w.k.RunFor(5 * time.Millisecond); err != nil {
				t.Fatal(err)
			}
		}
	}

	write(25)
	next := transport.Spec{Name: "ackcast", Params: transport.Params{"window": "32", "rto": "20ms"}}
	swapped, err := w.writerP.Rebind(next)
	if err != nil {
		t.Fatal(err)
	}
	if swapped != 1 {
		t.Fatalf("Rebind swapped %d writers, want 1", swapped)
	}
	if w.writerP.TransportSpec().Name != "ackcast" {
		t.Errorf("TransportSpec after Rebind = %s", w.writerP.TransportSpec())
	}
	if writer.TransportEpoch() != 1 || writer.TransportSpec().Name != "ackcast" {
		t.Errorf("writer epoch/spec = %d/%s", writer.TransportEpoch(), writer.TransportSpec())
	}
	write(25)
	if err := writer.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.k.RunFor(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	for i := range got {
		if len(got[i]) != 50 {
			t.Errorf("reader %d got %d samples, want 50", i, len(got[i]))
		}
		for j, s := range got[i] {
			if s.Info.Seq != uint64(j+1) {
				t.Fatalf("reader %d sample %d has seq %d (order broken across swap)", i, j, s.Info.Seq)
			}
		}
		if len(changes[i]) != 1 || changes[i][0] != next.String() {
			t.Errorf("reader %d TransportChanged calls = %v", i, changes[i])
		}
	}
}

// TestRebindSkipsPinnedWriters checks that writers whose transport was
// fixed by QoS (override or best-effort) do not follow a participant-wide
// rebind.
func TestRebindSkipsPinnedWriters(t *testing.T) {
	w := newWorld(t, 1, transport.Spec{Name: "nakcast", Params: transport.Params{"timeout": "2ms"}}, dds.ImplA)
	tAdaptive, _ := w.writerP.CreateTopic("adaptive", dds.TopicQoS{})
	tPinned, _ := w.writerP.CreateTopic("pinned", dds.TopicQoS{})
	tVideo, _ := w.writerP.CreateTopic("video", dds.TopicQoS{})
	adaptive, err := w.writerP.CreateDataWriter(tAdaptive, dds.WriterQoS{Reliability: dds.Reliable})
	if err != nil {
		t.Fatal(err)
	}
	pinned, err := w.writerP.CreateDataWriter(tPinned, dds.WriterQoS{
		Reliability: dds.Reliable,
		Transport:   transport.Spec{Name: "ricochet", Params: transport.Params{"r": "4", "c": "2"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	video, err := w.writerP.CreateDataWriter(tVideo, dds.WriterQoS{Reliability: dds.BestEffort})
	if err != nil {
		t.Fatal(err)
	}
	if adaptive.Pinned() || !pinned.Pinned() || !video.Pinned() {
		t.Fatalf("pinned flags = %v/%v/%v", adaptive.Pinned(), pinned.Pinned(), video.Pinned())
	}

	swapped, err := w.writerP.Rebind(transport.Spec{Name: "bemcast"})
	if err != nil {
		t.Fatal(err)
	}
	if swapped != 1 {
		t.Errorf("Rebind swapped %d writers, want 1", swapped)
	}
	if adaptive.TransportSpec().Name != "bemcast" {
		t.Errorf("adaptive writer = %s, want bemcast", adaptive.TransportSpec())
	}
	if pinned.TransportSpec().Name != "ricochet" || video.TransportSpec().Name != "bemcast" {
		t.Errorf("pinned specs moved: %s / %s", pinned.TransportSpec(), video.TransportSpec())
	}
	if pinned.TransportEpoch() != 0 || video.TransportEpoch() != 0 {
		t.Errorf("pinned writers changed epoch: %d / %d", pinned.TransportEpoch(), video.TransportEpoch())
	}
}

func TestRebindValidation(t *testing.T) {
	w := newWorld(t, 1, transport.Spec{Name: "bemcast"}, dds.ImplA)
	if _, err := w.writerP.Rebind(transport.Spec{}); err == nil {
		t.Error("empty spec should be rejected")
	}
	if _, err := w.writerP.Rebind(transport.Spec{Name: "warp-drive"}); err == nil {
		t.Error("unknown protocol should be rejected")
	}
	// Same spec: no-op, no error.
	swapped, err := w.writerP.Rebind(transport.Spec{Name: "bemcast"})
	if err != nil || swapped != 0 {
		t.Errorf("same-spec rebind = (%d, %v)", swapped, err)
	}
	if err := w.writerP.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.writerP.Rebind(transport.Spec{Name: "bemcast"}); err != dds.ErrEntityClosed {
		t.Errorf("rebind after close = %v, want ErrEntityClosed", err)
	}
}

// TestRebindReaderEpochs checks the reader-side drain bookkeeping is
// exposed through TransportEpochs.
func TestRebindReaderEpochs(t *testing.T) {
	w := newWorld(t, 1, transport.Spec{Name: "nakcast", Params: transport.Params{"timeout": "2ms"}}, dds.ImplB)
	topic, _ := w.writerP.CreateTopic("epochs", dds.TopicQoS{})
	writer, err := w.writerP.CreateDataWriter(topic, dds.WriterQoS{Reliability: dds.Reliable})
	if err != nil {
		t.Fatal(err)
	}
	rt, _ := w.readerP[0].CreateTopic("epochs", dds.TopicQoS{})
	reader, err := w.readerP[0].CreateDataReader(rt, dds.ReaderQoS{Reliability: dds.Reliable}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 10; j++ {
		if err := writer.Write([]byte("x")); err != nil {
			t.Fatal(err)
		}
		if err := w.k.RunFor(5 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := w.writerP.Rebind(transport.Spec{Name: "ricochet", Params: transport.Params{"r": "4", "c": "2"}}); err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 10; j++ {
		if err := writer.Write([]byte("y")); err != nil {
			t.Fatal(err)
		}
		if err := w.k.RunFor(5 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	if err := writer.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.k.RunFor(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	epochs := reader.TransportEpochs()
	if len(epochs) != 2 {
		t.Fatalf("reader saw %d epochs, want 2", len(epochs))
	}
	if e0 := epochs[0]; !e0.Done || e0.Cut != 10 || e0.Spec.Name != "nakcast" {
		t.Errorf("epoch 0 = %+v", e0)
	}
	if reader.TransportSpec().Name != "ricochet" {
		t.Errorf("reader TransportSpec = %s", reader.TransportSpec())
	}
	if st := reader.TransportStats(); st.Delivered != 20 {
		t.Errorf("Delivered = %d, want 20", st.Delivered)
	}
}
