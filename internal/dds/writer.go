package dds

import (
	"fmt"

	"adamant/internal/transport"
)

// DataWriter publishes samples on one topic.
type DataWriter struct {
	participant *DomainParticipant
	topic       *Topic
	qos         WriterQoS
	sender      *transport.SenderBinding
	// pinned marks writers whose transport was fixed by QoS (an explicit
	// override or best-effort reliability); Rebind leaves them alone.
	pinned bool
	closed bool
}

// CreateDataWriter builds a writer for topic with the given QoS. The
// writer's transport instance is resolved from the participant registry and
// wrapped in a hot-swap binding so Rebind can change it live.
func (p *DomainParticipant) CreateDataWriter(topic *Topic, qos WriterQoS) (*DataWriter, error) {
	if p.closed {
		return nil, ErrEntityClosed
	}
	if topic == nil || topic.participant != p {
		return nil, fmt.Errorf("dds: topic does not belong to this participant")
	}
	spec := resolveSpec(p.cfg.Transport, qos.Transport, qos.Reliability)
	sender, err := transport.NewSenderBinding(transport.BindingConfig{
		Config:   p.transportConfig(topic, nil),
		Registry: p.cfg.Registry,
		Spec:     spec,
	})
	if err != nil {
		return nil, fmt.Errorf("dds: creating writer transport %s: %w", spec, err)
	}
	pinned := qos.Transport.Name != "" || qos.Reliability == BestEffort
	w := &DataWriter{participant: p, topic: topic, qos: qos, sender: sender, pinned: pinned}
	p.writers = append(p.writers, w)
	return w, nil
}

// Write publishes one sample. The sample is timestamped at the transport
// layer; end-to-end latency is measured from this call.
func (w *DataWriter) Write(data []byte) error {
	if w.closed {
		return ErrEntityClosed
	}
	// Implementation-profile marshal cost (the Table 1 "DDS
	// implementation" axis).
	w.participant.cfg.Endpoint.Work(w.participant.profile.writeCost)
	return w.sender.Publish(data)
}

// Topic returns the writer's topic.
func (w *DataWriter) Topic() *Topic { return w.topic }

// QoS returns the writer's QoS.
func (w *DataWriter) QoS() WriterQoS { return w.qos }

// Seq returns the number of samples written.
func (w *DataWriter) Seq() uint64 { return w.sender.Seq() }

// TransportSpec returns the writer's current (newest-epoch) transport spec.
func (w *DataWriter) TransportSpec() transport.Spec { return w.sender.Spec() }

// TransportEpoch returns the writer's current transport generation number.
func (w *DataWriter) TransportEpoch() uint16 { return w.sender.Epoch() }

// Pinned reports whether the writer's transport is fixed by its QoS and
// therefore exempt from participant-wide Rebind.
func (w *DataWriter) Pinned() bool { return w.pinned }

// Close releases the writer's transport instance.
func (w *DataWriter) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	return w.sender.Close()
}
