package dds

import (
	"fmt"
)

// DataWriter publishes samples on one topic.
type DataWriter struct {
	participant *DomainParticipant
	topic       *Topic
	qos         WriterQoS
	sender      transportSender
	closed      bool
}

// transportSender is the subset of transport.Sender the writer uses;
// aliased for test seams.
type transportSender interface {
	Publish(payload []byte) error
	Seq() uint64
	Close() error
}

// CreateDataWriter builds a writer for topic with the given QoS. The
// writer's transport instance is resolved from the participant registry.
func (p *DomainParticipant) CreateDataWriter(topic *Topic, qos WriterQoS) (*DataWriter, error) {
	if p.closed {
		return nil, ErrEntityClosed
	}
	if topic == nil || topic.participant != p {
		return nil, fmt.Errorf("dds: topic does not belong to this participant")
	}
	spec := resolveSpec(p.cfg.Transport, qos.Transport, qos.Reliability)
	sender, err := p.cfg.Registry.NewSender(spec, p.transportConfig(topic, nil))
	if err != nil {
		return nil, fmt.Errorf("dds: creating writer transport %s: %w", spec, err)
	}
	w := &DataWriter{participant: p, topic: topic, qos: qos, sender: sender}
	p.writers = append(p.writers, w)
	return w, nil
}

// Write publishes one sample. The sample is timestamped at the transport
// layer; end-to-end latency is measured from this call.
func (w *DataWriter) Write(data []byte) error {
	if w.closed {
		return ErrEntityClosed
	}
	// Implementation-profile marshal cost (the Table 1 "DDS
	// implementation" axis).
	w.participant.cfg.Endpoint.Work(w.participant.profile.writeCost)
	return w.sender.Publish(data)
}

// Topic returns the writer's topic.
func (w *DataWriter) Topic() *Topic { return w.topic }

// QoS returns the writer's QoS.
func (w *DataWriter) QoS() WriterQoS { return w.qos }

// Seq returns the number of samples written.
func (w *DataWriter) Seq() uint64 { return w.sender.Seq() }

// Close releases the writer's transport instance.
func (w *DataWriter) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	return w.sender.Close()
}
