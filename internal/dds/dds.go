// Package dds is a QoS-enabled publish/subscribe middleware layer modeled
// on the OMG Data Distribution Service entity hierarchy: a
// DomainParticipant owns Topics, DataWriters publish typed samples on
// topics, and DataReaders receive them through listeners and a history
// cache. There is no mature DDS implementation in Go, so this package is
// the repository's stand-in for OpenDDS/OpenSplice (see DESIGN.md): a
// NATS-style pub/sub data model with DDS-style QoS policies and, crucially
// for the paper, a pluggable ANT transport underneath.
//
// Two implementation profiles (ImplA "opendds-like" and ImplB
// "opensplice-like") model the per-sample processing cost differences
// between middleware implementations — the "DDS implementation" axis of the
// paper's Table 1, which the machine-learning configurator treats as a
// categorical environment feature.
package dds

import (
	"errors"
	"fmt"
	"time"

	"adamant/internal/env"
	"adamant/internal/transport"
	"adamant/internal/wire"
)

// Impl selects a middleware implementation profile.
type Impl int

// Implementation profiles.
const (
	// ImplA models an OpenDDS-1.2-like implementation: portable C++
	// broker-less data path with heavier per-sample marshal/dispatch.
	ImplA Impl = iota
	// ImplB models an OpenSplice-3.4-like implementation: shared-memory-
	// assisted data path with lighter per-sample costs.
	ImplB
)

// implProfile gives per-sample CPU costs at reference machine speed.
type implProfile struct {
	name         string
	writeCost    time.Duration
	dispatchCost time.Duration
}

var implProfiles = map[Impl]implProfile{
	ImplA: {name: "opendds", writeCost: 7 * time.Microsecond, dispatchCost: 9 * time.Microsecond},
	ImplB: {name: "opensplice", writeCost: 5 * time.Microsecond, dispatchCost: 6 * time.Microsecond},
}

// String implements fmt.Stringer ("opendds" / "opensplice").
func (im Impl) String() string {
	if p, ok := implProfiles[im]; ok {
		return p.name
	}
	return fmt.Sprintf("Impl(%d)", int(im))
}

// ImplByName resolves an implementation profile from its name.
func ImplByName(name string) (Impl, error) {
	for im, p := range implProfiles {
		if p.name == name {
			return im, nil
		}
	}
	return 0, fmt.Errorf("dds: unknown implementation %q", name)
}

// Impls returns all implementation profiles in stable order.
func Impls() []Impl { return []Impl{ImplA, ImplB} }

// ParticipantConfig configures a DomainParticipant.
type ParticipantConfig struct {
	// Env supplies time and timers.
	Env env.Env
	// Endpoint is the node's network attachment. The participant wraps it
	// in a stream splitter; nothing else may set its handler.
	Endpoint transport.Endpoint
	// Registry resolves transport specs; use protocols.NewRegistry().
	Registry *transport.Registry
	// Transport is the participant-wide transport protocol configuration
	// (ADAMANT sets this from the machine-learning recommendation).
	// Individual writers/readers may override via their QoS.
	Transport transport.Spec
	// Impl selects the implementation cost profile.
	Impl Impl
	// SenderID is the node that publishes data streams in this domain
	// (receivers NAK/subscribe toward it). Defaults to the endpoint's own
	// ID for participants that write.
	SenderID wire.NodeID
	// Receivers enumerates the data reader nodes in the domain, for
	// protocols that need the peer set (Ricochet repairs, ackcast ACKs).
	Receivers func() []wire.NodeID
}

func (c *ParticipantConfig) validate() error {
	if c.Env == nil {
		return errors.New("dds: config missing Env")
	}
	if c.Endpoint == nil {
		return errors.New("dds: config missing Endpoint")
	}
	if c.Registry == nil {
		return errors.New("dds: config missing Registry")
	}
	if c.Transport.Name == "" {
		return errors.New("dds: config missing Transport spec")
	}
	if _, ok := implProfiles[c.Impl]; !ok {
		return fmt.Errorf("dds: unknown impl %d", int(c.Impl))
	}
	return nil
}

// DomainParticipant is the root DDS entity on one node.
type DomainParticipant struct {
	cfg      ParticipantConfig
	profile  implProfile
	splitter *transport.Splitter
	topics   map[string]*Topic
	byStream map[wire.StreamID]*Topic
	writers  []*DataWriter
	readers  []*DataReader
	closed   bool
}

// NewParticipant creates a participant on the given endpoint.
func NewParticipant(cfg ParticipantConfig) (*DomainParticipant, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &DomainParticipant{
		cfg:      cfg,
		profile:  implProfiles[cfg.Impl],
		splitter: transport.NewSplitter(cfg.Endpoint),
		topics:   make(map[string]*Topic),
		byStream: make(map[wire.StreamID]*Topic),
	}, nil
}

// Impl returns the participant's implementation profile.
func (p *DomainParticipant) Impl() Impl { return p.cfg.Impl }

// TransportSpec returns the participant-wide transport configuration.
func (p *DomainParticipant) TransportSpec() transport.Spec { return p.cfg.Transport }

// Rebind hot-swaps the participant-wide transport to spec while writers and
// readers stay live. Every non-pinned writer's binding drains its current
// protocol generation and hands the sequence space to the new one (see
// transport.SenderBinding); readers learn the change in-band and surface it
// through Listener.OnTransportChanged. Writers whose transport was fixed by
// QoS (explicit override or best-effort reliability) are skipped. Returns
// the number of writers swapped. On a per-writer failure the error is
// returned but remaining writers are still attempted; a failed writer keeps
// its old binding (Swap is atomic per writer).
func (p *DomainParticipant) Rebind(spec transport.Spec) (int, error) {
	if p.closed {
		return 0, ErrEntityClosed
	}
	if spec.Name == "" {
		return 0, errors.New("dds: Rebind with empty spec")
	}
	if _, err := p.cfg.Registry.Lookup(spec.Name); err != nil {
		return 0, err
	}
	p.cfg.Transport = spec
	swapped := 0
	var firstErr error
	for _, w := range p.writers {
		if w.pinned || w.closed {
			continue
		}
		before := w.sender.Spec().String()
		if err := w.sender.Swap(spec); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("dds: rebinding topic %q: %w", w.topic.name, err)
			}
			continue
		}
		if before != spec.String() {
			swapped++
		}
	}
	return swapped, firstErr
}

// CreateTopic registers (or returns the existing) topic with the given
// name. Topic names map deterministically to wire stream IDs; a hash
// collision between distinct names is reported as an error.
func (p *DomainParticipant) CreateTopic(name string, qos TopicQoS) (*Topic, error) {
	if p.closed {
		return nil, ErrEntityClosed
	}
	if name == "" {
		return nil, errors.New("dds: empty topic name")
	}
	if t, ok := p.topics[name]; ok {
		return t, nil
	}
	stream := StreamIDForTopic(name)
	if prev, collision := p.byStream[stream]; collision {
		return nil, fmt.Errorf("dds: topic %q collides with %q on stream %d", name, prev.name, stream)
	}
	qos.fillDefaults()
	t := &Topic{participant: p, name: name, stream: stream, qos: qos}
	p.topics[name] = t
	p.byStream[stream] = t
	return t, nil
}

// Close tears down every writer and reader created by the participant.
func (p *DomainParticipant) Close() error {
	if p.closed {
		return nil
	}
	p.closed = true
	var firstErr error
	for _, w := range p.writers {
		if err := w.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, r := range p.readers {
		if err := r.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// ErrEntityClosed is returned by operations on closed DDS entities.
var ErrEntityClosed = errors.New("dds: entity closed")

// StreamIDForTopic maps a topic name to its wire stream ID (FNV-1a, never
// the reserved control stream 0).
func StreamIDForTopic(name string) wire.StreamID {
	h := uint32(2166136261)
	for i := 0; i < len(name); i++ {
		h ^= uint32(name[i])
		h *= 16777619
	}
	if h == uint32(wire.ControlStream) {
		h = 1
	}
	return wire.StreamID(h)
}

// Topic is a named data stream within a domain.
type Topic struct {
	participant *DomainParticipant
	name        string
	stream      wire.StreamID
	qos         TopicQoS
}

// Name returns the topic name.
func (t *Topic) Name() string { return t.name }

// Stream returns the topic's wire stream ID.
func (t *Topic) Stream() wire.StreamID { return t.stream }

// QoS returns the topic-level QoS.
func (t *Topic) QoS() TopicQoS { return t.qos }
