package broker

// Inter-broker federation: routes, interest propagation, and membership.
//
// A route is a broker↔broker connection built on the same link substrate
// as a client connection (link.go). The mesh keeps a full-mesh, one-hop
// topology with three cooperating mechanisms:
//
//   - Interest propagation. Every local (pattern, queue) subscription is
//     refcounted in Server.localInterest; the 0→1 and 1→0 transitions
//     broadcast RS+/RS- to every route, and a newly registered route
//     receives the full dump. A peer's interest is installed in the
//     routing trie as ordinary serverSub entries with rt set, so
//     routeBatch sees local clients and remote brokers through one match
//     — a broker forwards a publish only to peers that proved interest.
//
//   - Origin-tagged forwarding with one-hop dedup. A forwarded message
//     (RMSG) carries the origin broker's server ID. The receiver delivers
//     it to local clients only — remote interests matched on the
//     receiving side are skipped — so a publish traverses at most one
//     inter-broker hop and reaches each subscriber exactly once in a
//     full mesh. An RMSG that echoes back carrying our own ID (a loop a
//     misconfigured topology would create) is dropped and counted in
//     DupsSuppressed. Queue groups stay exactly-once mesh-wide: the
//     origin broker picks one member treating each interested peer as a
//     candidate, and at most one peer receives the group's name in the
//     RMSG; that peer picks one local member.
//
//   - Gossip membership and failure detection. Route registration
//     exchanges RINFO <id> <addr> lines describing the rest of the mesh,
//     and a broker dials every advertised peer it has no route to — one
//     seed route is enough to join a full mesh. A monitor goroutine
//     PINGs every route each heartbeat interval and tears down routes
//     silent past the suspect bound; teardown withdraws the peer's
//     interest from the trie, so publishes stop being routed to a dead
//     broker within the detection bound. Dialed routes redial with
//     backoff, so a restarted broker rejoins by itself.
//
// Simultaneous dials (A dials B while B dials A) resolve without flapping:
// the connection dialed by the lexicographically higher server ID wins,
// evaluated identically on both sides.

import (
	"errors"
	"net"
	"strconv"
	"sync/atomic"
	"time"
)

const (
	defaultRouteHeartbeat = 500 * time.Millisecond
	defaultRouteSuspect   = 2 * time.Second

	routeDialTimeout = 2 * time.Second
	routeRedialMin   = 50 * time.Millisecond
	routeRedialMax   = 2 * time.Second
)

// route is one broker↔broker connection. The reader goroutine (routeLoop)
// owns every non-atomic field after registration; lastRecv is shared with
// the heartbeat monitor.
type route struct {
	ln         *link
	id         string // peer server ID (ROUTE handshake)
	addr       string // peer's advertised cluster address, "-" if none
	dialed     bool   // we initiated this connection
	registered bool
	dupLost    bool // lost the duplicate-route tie-break (or self-connect)
	lastRecv   atomic.Int64

	// The peer's propagated interest, installed in our routing trie.
	subs map[interestKey]*serverSub

	// Reader-goroutine scratch. RMSG header fields borrow the bufio
	// buffer, which the payload read refills — they are copied here
	// first. Queue names are recorded as spans into qArena because the
	// arena may reallocate while spans are being appended.
	subjBuf   []byte
	originBuf []byte
	qArena    []byte
	qSpans    []qspan
	localQ    []*serverSub
}

type qspan struct{ off, n int }

// dialedByHigher reports whether this connection was initiated by the
// mesh-wide tie-break winner for the (selfID, r.id) pair. Both sides of
// a duplicate compute the same answer, so exactly one connection
// survives a simultaneous dial.
func (r *route) dialedByHigher(selfID string) bool {
	if r.dialed {
		return selfID > r.id
	}
	return r.id > selfID
}

// sendRMsg enqueues one origin-tagged forwarded message. Routes always
// use the disconnect overflow policy: silently dropping inter-broker
// traffic would violate exactly-once delivery invisibly, while a
// disconnect is detected and repaired by the redial/gossip machinery.
func (r *route) sendRMsg(subject []byte, origin string, queues []string, pb *payloadRef) sendResult {
	return r.ln.enqueueMsg(encodeRMsgHeader(subject, origin, len(pb.data), queues), pb, SlowConsumerDisconnect)
}

// encodeRMsgHeader appends "RMSG <subject> <origin> <n> [queue...]\r\n"
// to a pooled buffer. Queue names trail the fixed fields so the parser
// takes everything after the size as group names.
func encodeRMsgHeader(subject []byte, origin string, n int, queues []string) *headerBuf {
	h := getHeaderBuf()
	b := h.b
	b = append(b, "RMSG "...)
	b = append(b, subject...)
	b = append(b, ' ')
	b = append(b, origin...)
	b = append(b, ' ')
	b = strconv.AppendInt(b, int64(n), 10)
	for _, q := range queues {
		b = append(b, ' ')
		b = append(b, q...)
	}
	b = append(b, '\r', '\n')
	h.b = b
	return h
}

// AddRoute asks the broker to establish and maintain a route to the
// broker listening at addr (its client or cluster listener — both speak
// the ROUTE handshake). The dial retries with backoff until the server
// shuts down, so routes given before peers are up, and routes to peers
// that restart, converge on their own. Idempotent per address.
func (s *Server) AddRoute(addr string) {
	select {
	case <-s.quit:
		return
	default:
	}
	s.fedMu.Lock()
	if s.dialing[addr] {
		s.fedMu.Unlock()
		return
	}
	s.dialing[addr] = true
	s.fedMu.Unlock()
	go s.dialRoute(addr)
}

// dialRoute is the persistent dialer for one route target.
func (s *Server) dialRoute(addr string) {
	defer func() {
		s.fedMu.Lock()
		delete(s.dialing, addr)
		s.fedMu.Unlock()
	}()
	backoff := routeRedialMin
	for {
		select {
		case <-s.quit:
			return
		default:
		}
		conn, err := net.DialTimeout("tcp", addr, routeDialTimeout)
		if err == nil {
			l := &link{}
			l.init(conn, s.opts.queueFrames, s.opts.queueBytes, s.adm)
			l.startWriter(s.opts.legacy, s.adm)
			r := &route{ln: l, dialed: true, addr: "-", subs: make(map[interestKey]*serverSub)}
			r.lastRecv.Store(time.Now().UnixNano())
			l.sendLine("ROUTE " + s.id + " " + s.opts.clusterAddr)
			stop := make(chan struct{})
			go func() {
				select {
				case <-s.quit:
					conn.Close()
				case <-stop:
				}
			}()
			s.routeLoop(r) // returns when the route dies
			close(stop)
			if r.dupLost {
				// The mesh already has a live route to this peer (or the
				// address is our own): park at max backoff so a later
				// failure of the winning route is still repaired.
				backoff = routeRedialMax
			} else if r.registered {
				backoff = routeRedialMin // a real route died: redial promptly
			}
		}
		select {
		case <-s.quit:
			return
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > routeRedialMax {
			backoff = routeRedialMax
		}
	}
}

// acceptRoute upgrades an accepted connection into a route after its
// ROUTE <id> [addr] line (fields). It returns when the route dies; the
// caller's deferred client teardown closes the shared link.
func (s *Server) acceptRoute(c *serverClient, fields [][]byte) {
	if len(fields) < 2 || len(fields) > 3 || len(fields[1]) == 0 {
		c.sendErr("ROUTE requires <serverID> [clusterAddr]")
		return
	}
	s.clearSubs(c) // a route holds no client subscriptions
	r := &route{ln: &c.link, addr: "-", subs: make(map[interestKey]*serverSub)}
	r.id = string(fields[1])
	if len(fields) == 3 && len(fields[2]) > 0 {
		r.addr = string(fields[2])
	}
	r.lastRecv.Store(time.Now().UnixNano())
	if !s.registerRoute(r) {
		c.sendErr("duplicate route")
		return
	}
	r.ln.sendLine("ROUTE " + s.id + " " + s.opts.clusterAddr) // our half of the handshake
	s.routeLoop(r)
}

// registerRoute installs r in the route table, resolving duplicate
// routes to the same peer by the dialed-by-higher-ID rule. On success
// the new peer receives our full local-interest dump and the mesh
// gossips the new member (RINFO) in both directions.
func (s *Server) registerRoute(r *route) bool {
	st := &s.stats
	s.fedMu.Lock()
	if r.id == s.id || r.id == "" {
		s.fedMu.Unlock()
		r.dupLost = true
		return false
	}
	if ex, ok := s.routes[r.id]; ok {
		if ex.dialedByHigher(s.id) || !r.dialedByHigher(s.id) {
			s.fedMu.Unlock()
			r.dupLost = true
			return false
		}
		// The new connection wins the tie-break: evict the old one. Its
		// teardown skips the table delete because the entry now points
		// at r.
		ex.ln.conn.Close()
	}
	s.routes[r.id] = r
	r.registered = true
	st.write(func() { st.routes.Store(uint64(len(s.routes))) })
	for k, n := range s.localInterest {
		if n > 0 {
			r.ln.sendLine(rsLine("RS+", k))
		}
	}
	for id, other := range s.routes {
		if other == r {
			continue
		}
		if routableAddr(other.addr) {
			r.ln.sendLine("RINFO " + id + " " + other.addr)
		}
		if routableAddr(r.addr) {
			other.ln.sendLine("RINFO " + r.id + " " + r.addr)
		}
	}
	s.ensureMonitor()
	s.fedMu.Unlock()
	return true
}

func routableAddr(addr string) bool { return addr != "" && addr != "-" }

// routeLoop is the route's command loop; the reader goroutine stays in
// it until the connection dies, then teardown withdraws the peer's
// interest. For dialed routes the peer's ROUTE reply arrives here as the
// first line and completes registration.
func (s *Server) routeLoop(r *route) {
	defer s.teardownRoute(r)
	var fields [16][]byte
	for {
		line, err := readLineSlice(r.ln.r)
		if err != nil {
			return
		}
		r.lastRecv.Store(time.Now().UnixNano())
		nf := splitFields(line, fields[:0])
		if len(nf) == 0 {
			continue
		}
		cmd := nf[0]
		switch {
		case asciiFold(cmd, "RMSG"):
			if err := s.handleRMsg(r, nf); err != nil {
				return
			}
		case asciiFold(cmd, "RS+"):
			s.handleRSub(r, nf, true)
		case asciiFold(cmd, "RS-"):
			s.handleRSub(r, nf, false)
		case asciiFold(cmd, "PING"):
			r.ln.sendLine("PONG")
		case asciiFold(cmd, "PONG"):
			// lastRecv refresh above is the whole point
		case asciiFold(cmd, "RINFO"):
			s.handleRInfo(nf)
		case asciiFold(cmd, "ROUTE"):
			if r.registered {
				continue // duplicate handshake line: ignore
			}
			if len(nf) < 2 || len(nf) > 3 || len(nf[1]) == 0 {
				r.ln.sendErr("ROUTE requires <serverID> [clusterAddr]")
				return
			}
			r.id = string(nf[1])
			if len(nf) == 3 && len(nf[2]) > 0 {
				r.addr = string(nf[2])
			}
			if !s.registerRoute(r) {
				return
			}
		case asciiFold(cmd, "-ERR"):
			if !r.registered {
				// Handshake rejected (duplicate route): park the redial.
				r.dupLost = true
				return
			}
		default:
			r.ln.sendErr("unknown route command " + string(cmd))
		}
	}
}

// teardownRoute deregisters r and withdraws the peer's interest from
// the routing trie, so publishes stop being forwarded to a dead peer
// the moment its failure is detected.
func (s *Server) teardownRoute(r *route) {
	r.ln.out.close() // writer drains, flushes, closes the conn
	st := &s.stats
	s.fedMu.Lock()
	if r.registered && s.routes[r.id] == r {
		delete(s.routes, r.id)
		st.write(func() { st.routes.Store(uint64(len(s.routes))) })
	}
	s.fedMu.Unlock()
	if len(r.subs) == 0 {
		return
	}
	for _, sub := range r.subs {
		s.eachPatternShard(sub.pattern, func(sh *shard) {
			sh.remove(sub)
		})
	}
	n := uint64(len(r.subs))
	st.write(func() { st.remoteSubs.Add(^(n - 1)) })
	r.subs = nil
}

// handleRSub applies one RS+ (add=true) or RS- interest line from the
// peer. Interest entries are idempotent per (pattern, queue): the peer
// refcounts on its side and only sends edge transitions.
func (s *Server) handleRSub(r *route, fields [][]byte, add bool) {
	var pattern, queue string
	switch len(fields) {
	case 2:
		pattern = string(fields[1])
	case 3:
		pattern, queue = string(fields[1]), string(fields[2])
	default:
		r.ln.sendErr("RS requires <pattern> [queue]")
		return
	}
	if err := ValidatePattern(pattern); err != nil {
		r.ln.sendErr(err.Error())
		return
	}
	k := interestKey{pattern: pattern, queue: queue}
	st := &s.stats
	if add {
		if _, ok := r.subs[k]; ok {
			return
		}
		sub := &serverSub{rt: r, pattern: pattern, queue: queue}
		r.subs[k] = sub
		s.eachPatternShard(pattern, func(sh *shard) {
			sh.insert(sub)
		})
		st.write(func() { st.remoteSubs.Add(1) })
		return
	}
	sub, ok := r.subs[k]
	if !ok {
		return
	}
	delete(r.subs, k)
	s.eachPatternShard(pattern, func(sh *shard) {
		sh.remove(sub)
	})
	st.write(func() { st.remoteSubs.Add(^uint64(0)) })
}

// handleRInfo reacts to gossip about a mesh member: dial any advertised
// peer we have no route to. Duplicate dials resolve via the tie-break.
func (s *Server) handleRInfo(fields [][]byte) {
	if len(fields) != 3 {
		return
	}
	id, addr := string(fields[1]), string(fields[2])
	if id == "" || id == s.id || !routableAddr(addr) {
		return
	}
	s.fedMu.Lock()
	_, have := s.routes[id]
	s.fedMu.Unlock()
	if !have {
		s.AddRoute(addr)
	}
}

// handleRMsg parses one forwarded message and delivers it locally. A
// returned error means the stream is unframeable and tears the route
// down.
func (s *Server) handleRMsg(r *route, fields [][]byte) error {
	if len(fields) < 4 {
		r.ln.sendErr("RMSG requires <subject> <origin> <nbytes>")
		return errors.New("broker: malformed RMSG")
	}
	n, ok := parseSize(fields[3])
	if !ok {
		r.ln.sendErr("bad payload size")
		return errors.New("broker: bad payload size")
	}
	// The header fields borrow the reader's buffer, which the payload
	// read below refills — copy them into route-owned scratch first.
	r.subjBuf = append(r.subjBuf[:0], fields[1]...)
	r.originBuf = append(r.originBuf[:0], fields[2]...)
	r.qArena = r.qArena[:0]
	r.qSpans = r.qSpans[:0]
	for _, q := range fields[4:] {
		off := len(r.qArena)
		r.qArena = append(r.qArena, q...)
		r.qSpans = append(r.qSpans, qspan{off: off, n: len(q)})
	}
	pb, err := r.ln.readPayload(n)
	if err != nil {
		return err
	}
	if !validSubjectBytes(r.subjBuf) {
		pb.release()
		r.ln.sendErr("invalid subject")
		return nil
	}
	s.routeInbound(r, pb)
	return nil
}

// routeInbound delivers one forwarded message to local subscribers.
// This is the receiving half of the one-hop rule: remote interests in
// the match result are skipped (never re-forwarded), and a message
// carrying our own origin tag is dropped entirely — together they make
// mesh delivery exactly-once and loop-free. For each queue-group name
// listed in the RMSG, the members of every matching group with that
// name are pooled and one local member is chosen: the origin broker
// already picked this broker as the group's mesh-wide winner.
func (s *Server) routeInbound(r *route, pb *payloadRef) {
	st := &s.stats
	if string(r.originBuf) == s.id {
		pb.release()
		st.write(func() { st.dupsSuppressed.Add(1) })
		return
	}
	subj := r.subjBuf
	plen := uint64(len(pb.data))
	var msgsOut, bytesOut, drops, discs uint64
	sh := s.shards[shardIndexBytes(subj, len(s.shards))]
	sh.mu.Lock()
	rs := sh.matchBytes(subj)
	for _, sub := range rs.plain {
		if sub.rt != nil {
			continue // one-hop rule: never re-forward
		}
		switch sub.client.sendMsg(subj, sub.sid, pb) {
		case sendOK:
			msgsOut++
			bytesOut += plen
		case sendDrop:
			drops++
		case sendDisconnect:
			discs++
		}
	}
	for _, sp := range r.qSpans {
		name := r.qArena[sp.off : sp.off+sp.n]
		r.localQ = r.localQ[:0]
		for _, members := range rs.queues {
			if len(members) == 0 || string(name) != members[0].queue {
				continue
			}
			for _, m := range members {
				if m.rt == nil {
					r.localQ = append(r.localQ, m)
				}
			}
		}
		if len(r.localQ) == 0 {
			continue
		}
		pick := r.localQ[sh.rng.Intn(len(r.localQ))]
		switch pick.client.sendMsg(subj, pick.sid, pb) {
		case sendOK:
			msgsOut++
			bytesOut += plen
		case sendDrop:
			drops++
		case sendDisconnect:
			discs++
		}
	}
	sh.mu.Unlock()
	pb.release()
	st.write(func() {
		st.msgsIn.Add(1)
		st.bytesIn.Add(plen)
		st.msgsOut.Add(msgsOut)
		st.bytesOut.Add(bytesOut)
		if drops > 0 {
			st.slowDrops.Add(drops)
		}
		if discs > 0 {
			st.slowDisconnects.Add(discs)
		}
	})
}

// interestAdd refcounts one local (pattern, queue) interest; the 0→1
// transition broadcasts RS+ to every route.
func (s *Server) interestAdd(pattern, queue string) {
	k := interestKey{pattern: pattern, queue: queue}
	s.fedMu.Lock()
	n := s.localInterest[k] + 1
	s.localInterest[k] = n
	if n == 1 {
		for _, r := range s.routes {
			r.ln.sendLine(rsLine("RS+", k))
		}
	}
	s.fedMu.Unlock()
}

// interestDrop undoes interestAdd; the 1→0 transition broadcasts RS-.
func (s *Server) interestDrop(pattern, queue string) {
	k := interestKey{pattern: pattern, queue: queue}
	s.fedMu.Lock()
	n := s.localInterest[k] - 1
	if n <= 0 {
		delete(s.localInterest, k)
		if n == 0 {
			for _, r := range s.routes {
				r.ln.sendLine(rsLine("RS-", k))
			}
		}
	} else {
		s.localInterest[k] = n
	}
	s.fedMu.Unlock()
}

func rsLine(verb string, k interestKey) string {
	if k.queue == "" {
		return verb + " " + k.pattern
	}
	return verb + " " + k.pattern + " " + k.queue
}

// ensureMonitor starts the heartbeat monitor once the first route
// registers. Callers hold fedMu.
func (s *Server) ensureMonitor() {
	if s.monitorOn {
		return
	}
	s.monitorOn = true
	go s.routeMonitor()
}

// routeMonitor is the failure detector: each interval it PINGs every
// route and closes any route silent past the suspect bound. Closing the
// conn unblocks the route's reader, whose teardown withdraws the peer's
// interest — so the time from silent peer to "no longer routed to" is
// bounded by suspect + one monitor tick.
func (s *Server) routeMonitor() {
	t := time.NewTicker(s.opts.hbInterval)
	defer t.Stop()
	for {
		select {
		case <-s.quit:
			return
		case <-t.C:
		}
		cutoff := time.Now().Add(-s.opts.hbSuspect).UnixNano()
		s.fedMu.Lock()
		rts := make([]*route, 0, len(s.routes))
		for _, r := range s.routes {
			rts = append(rts, r)
		}
		s.fedMu.Unlock()
		for _, r := range rts {
			if r.lastRecv.Load() < cutoff {
				r.ln.conn.Close()
			} else {
				r.ln.sendLine("PING")
			}
		}
	}
}
