// Package broker implements a NATS-style TCP publish/subscribe broker and
// client: subject-based routing with '*'/'>' wildcards and queue groups
// over a line-oriented protocol.
//
// The broker plays two roles in this repository. It is the "conventional
// cloud pub/sub" contrast the paper draws (JMS/WS-Notification-class
// systems offer subject routing but no fine-grained QoS or transport
// configurability), and it gives the runnable examples a real-socket data
// path alongside the simulated DDS/ANT stack.
//
// The data path is built for high fan-out and bounded latency:
// subscriptions live in sharded subject-token tries with per-subject
// match caches (sublist.go); a reader goroutine parses every PUB that is
// already buffered on its socket into one ingest batch and routes the
// batch with one shard-lock acquisition per shard run and one trie/cache
// probe per distinct subject (routeBatch); payload bodies live in a
// refcounted arena (arena.go) shared across the whole fan-out; writer
// goroutines drain bounded per-client queues into vectored writev
// batches (outbound.go); and a publish-admission gauge (admission.go)
// paces unpaced publishers instead of letting internal queues grow into
// seconds of latency.
//
// Wire protocol (text, CRLF-terminated control lines):
//
//	C->S: CONNECT <name>
//	C->S: SUB <subject> [queue] <sid>
//	C->S: UNSUB <sid>
//	C->S: PUB <subject> <nbytes>\r\n<payload>
//	C->S: PING               S->C: PONG
//	S->C: MSG <subject> <sid> <nbytes>\r\n<payload>
//	S->C: -ERR <message>
package broker

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// MaxPayload bounds a single message payload.
const MaxPayload = 1 << 20

// Ingest batching bounds: a reader routes its pending publishes once it
// has this many messages or payload bytes, or as soon as its socket has
// no complete command left buffered (so batching never adds latency —
// it only amortizes work that is already waiting).
const (
	maxIngestBatch = 256
	maxIngestBytes = 256 << 10
)

// ServerStats are cumulative broker counters. A Stats snapshot is
// internally consistent: all fields come from the same seqlock
// generation, so invariants that hold per update batch (e.g. BytesOut
// matching MsgsOut for a fixed payload size) hold in every snapshot.
type ServerStats struct {
	Connections   uint64
	MsgsIn        uint64
	MsgsOut       uint64
	BytesIn       uint64
	BytesOut      uint64
	Subscriptions uint64

	// SlowConsumerDrops counts frames dropped by SlowConsumerDrop;
	// SlowConsumerDisconnects counts clients evicted by
	// SlowConsumerDisconnect.
	SlowConsumerDrops       uint64
	SlowConsumerDisconnects uint64

	// AdmissionWaits counts publish batches that parked on the admission
	// gauge; AdmissionTimeouts counts the subset that gave up waiting and
	// proceeded (see admission.go for why the wait is bounded).
	AdmissionWaits    uint64
	AdmissionTimeouts uint64
}

// counters is the seqlock-guarded stats block. Writers (routeBatch and
// the rare connection/subscription events) serialize on mu and bump seq
// to odd around their field updates; Stats spins until it reads the same
// even seq before and after loading the fields, so a snapshot can never
// mix counters from two different updates. The fields stay atomics so
// the reader's loads are race-clean while a writer is mid-update.
type counters struct {
	mu  sync.Mutex
	seq atomic.Uint64

	connections       atomic.Uint64
	msgsIn            atomic.Uint64
	msgsOut           atomic.Uint64
	bytesIn           atomic.Uint64
	bytesOut          atomic.Uint64
	subscriptions     atomic.Uint64
	slowDrops         atomic.Uint64
	slowDisconnects   atomic.Uint64
	admissionWaits    atomic.Uint64
	admissionTimeouts atomic.Uint64
}

// write runs fn (which updates counter fields) inside one seqlock
// generation.
func (c *counters) write(fn func()) {
	c.mu.Lock()
	c.seq.Add(1)
	fn()
	c.seq.Add(1)
	c.mu.Unlock()
}

// options collects server tuning knobs; all have workable defaults.
type options struct {
	seed             int64
	hasSeed          bool
	shards           int
	queueFrames      int
	queueBytes       int64
	slowPolicy       SlowConsumerPolicy
	admissionBytes   int64
	admissionTimeout time.Duration
	legacy           bool
}

// Option configures a Server at construction time.
type Option func(*options)

// WithSeed fixes the rng seed used for queue-group member picks, making
// pick order reproducible (each routing shard derives its own stream
// from it). Without it the seed comes from the ADAMANT_BROKER_SEED
// environment variable if set, else from the clock.
func WithSeed(seed int64) Option {
	return func(o *options) { o.seed = seed; o.hasSeed = true }
}

// WithShards sets the routing shard count (default 8). More shards mean
// less publish contention across disjoint subject spaces.
func WithShards(n int) Option {
	return func(o *options) {
		if n > 0 {
			o.shards = n
		}
	}
}

// WithWriteQueue bounds each client's outbound queue in frames and
// payload bytes (defaults 16384 frames / 32 MiB). Overflow triggers the
// slow-consumer policy.
func WithWriteQueue(frames int, bytes int64) Option {
	return func(o *options) {
		if frames > 0 {
			o.queueFrames = frames
		}
		if bytes > 0 {
			o.queueBytes = bytes
		}
	}
}

// WithSlowConsumerPolicy selects the overflow policy (default
// SlowConsumerDisconnect).
func WithSlowConsumerPolicy(p SlowConsumerPolicy) Option {
	return func(o *options) { o.slowPolicy = p }
}

// WithPublishAdmission sets the publish-admission window: readers park
// before routing while more than maxBytes of accepted frames are queued
// server-wide, for at most timeout per batch (then proceed, counted in
// ServerStats.AdmissionTimeouts). maxBytes < 0 disables admission; zero
// values keep the defaults (32 MiB window, 1s timeout).
func WithPublishAdmission(maxBytes int64, timeout time.Duration) Option {
	return func(o *options) {
		if maxBytes < 0 {
			o.admissionBytes = -1
		} else if maxBytes > 0 {
			o.admissionBytes = maxBytes
		}
		if timeout > 0 {
			o.admissionTimeout = timeout
		}
	}
}

// WithLegacyDataPlane selects the PR 7/PR 8 delivery path: per-publish
// routing (no ingest batching), per-delivery copies into a bufio.Writer
// (no writev, no zero-copy), and no publish admission. It exists so
// tests can pin wire byte-identity against the old path and so the fleet
// harness can measure the data-plane overhaul like-for-like in one tree;
// it is not meant for production serving.
func WithLegacyDataPlane() Option {
	return func(o *options) { o.legacy = true }
}

// Server is the broker. Create with NewServer, start with Serve or
// ListenAndServe, stop with Shutdown.
type Server struct {
	opts   options
	shards []*shard
	stats  counters
	adm    *admission // nil when admission is disabled
	quit   chan struct{}

	// numSubs is the live logical subscription count (a wildcard-first
	// pattern is stored in every shard but counts once).
	numSubs atomic.Int64

	mu       sync.Mutex
	ln       net.Listener
	clients  map[*serverClient]struct{}
	nextCID  uint64
	shutdown bool
	done     chan struct{}
	doneOnce sync.Once
}

type serverSub struct {
	client  *serverClient
	pattern string
	queue   string
	sid     string
}

// NewServer returns an idle broker.
func NewServer(opts ...Option) *Server {
	o := options{
		shards:           8,
		queueFrames:      defaultQueueFrames,
		queueBytes:       defaultQueueBytes,
		slowPolicy:       SlowConsumerDisconnect,
		admissionBytes:   defaultAdmissionBytes,
		admissionTimeout: defaultAdmissionTimeout,
	}
	for _, fn := range opts {
		fn(&o)
	}
	if !o.hasSeed {
		if env := os.Getenv("ADAMANT_BROKER_SEED"); env != "" {
			if v, err := strconv.ParseInt(env, 10, 64); err == nil {
				o.seed = v
				o.hasSeed = true
			}
		}
	}
	if !o.hasSeed {
		o.seed = time.Now().UnixNano()
	}
	s := &Server{
		opts:    o,
		shards:  make([]*shard, o.shards),
		clients: make(map[*serverClient]struct{}),
		done:    make(chan struct{}),
		quit:    make(chan struct{}),
	}
	if o.admissionBytes > 0 && !o.legacy {
		s.adm = &admission{limit: o.admissionBytes}
	}
	for i := range s.shards {
		s.shards[i] = newShard(o.seed + int64(i))
	}
	return s
}

// ListenAndServe listens on addr ("host:port", ":0" for ephemeral) and
// serves until Shutdown. It returns once the listener is bound; serving
// continues in background goroutines.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("broker: listen %s: %w", addr, err)
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	go s.Serve(ln)
	return nil
}

// Addr returns the bound listener address, or nil before ListenAndServe.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Serve accepts connections on ln until Shutdown.
func (s *Server) Serve(ln net.Listener) {
	defer s.doneOnce.Do(func() { close(s.done) })
	s.mu.Lock()
	if s.shutdown {
		s.mu.Unlock()
		ln.Close()
		return
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed by Shutdown
		}
		if s.startClient(conn) == nil {
			return
		}
	}
}

// startClient registers conn and spawns its reader and writer
// goroutines. It returns nil when the server is shutting down.
func (s *Server) startClient(conn net.Conn) *serverClient {
	s.mu.Lock()
	if s.shutdown {
		s.mu.Unlock()
		conn.Close()
		return nil
	}
	s.nextCID++
	c := &serverClient{srv: s, conn: conn, id: s.nextCID, subs: make(map[string][]*serverSub)}
	c.out.init(s.opts.queueFrames, s.opts.queueBytes, s.adm)
	s.clients[c] = struct{}{}
	s.mu.Unlock()
	st := &s.stats
	st.write(func() { st.connections.Add(1) })
	go c.run()
	if s.opts.legacy {
		go writeLoopLegacy(conn, &c.out)
	} else {
		go writeLoop(conn, &c.out, s.adm)
	}
	return c
}

// Shutdown closes the listener and every client connection.
func (s *Server) Shutdown() {
	s.mu.Lock()
	if s.shutdown {
		s.mu.Unlock()
		return
	}
	s.shutdown = true
	close(s.quit) // wake any publisher parked on admission
	ln := s.ln
	var conns []net.Conn
	for c := range s.clients {
		conns = append(conns, c.conn)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
		<-s.done
	}
	for _, c := range conns {
		c.Close()
	}
}

// Stats returns an internally consistent snapshot of the broker
// counters: the seqlock retry guarantees all fields belong to the same
// update generation (no torn reads across counters mid-publish).
func (s *Server) Stats() ServerStats {
	c := &s.stats
	for {
		s1 := c.seq.Load()
		if s1&1 == 0 {
			snap := ServerStats{
				Connections:             c.connections.Load(),
				MsgsIn:                  c.msgsIn.Load(),
				MsgsOut:                 c.msgsOut.Load(),
				BytesIn:                 c.bytesIn.Load(),
				BytesOut:                c.bytesOut.Load(),
				Subscriptions:           c.subscriptions.Load(),
				SlowConsumerDrops:       c.slowDrops.Load(),
				SlowConsumerDisconnects: c.slowDisconnects.Load(),
				AdmissionWaits:          c.admissionWaits.Load(),
				AdmissionTimeouts:       c.admissionTimeouts.Load(),
			}
			if c.seq.Load() == s1 {
				return snap
			}
		}
		runtime.Gosched()
	}
}

// NumSubscriptions returns the live subscription count.
func (s *Server) NumSubscriptions() int {
	return int(s.numSubs.Load())
}

// admitPublishes applies publish admission before a batch is routed:
// park (off every lock) while the outstanding-bytes gauge is over the
// window, for at most the configured timeout.
func (s *Server) admitPublishes() {
	a := s.adm
	if a == nil || !a.over() {
		return
	}
	st := &s.stats
	st.write(func() { st.admissionWaits.Add(1) })
	if !a.wait(s.opts.admissionTimeout, s.quit) {
		st.write(func() { st.admissionTimeouts.Add(1) })
	}
}

// pendingPub is one parsed-but-unrouted publish in a reader's ingest
// batch: the subject lives at [off, off+n) in the client's subject
// arena, the payload in a refcounted arena buffer (publisher hold).
type pendingPub struct {
	off, n int
	pb     *payloadRef
}

// routeBatch delivers a batch of publishes in order. Consecutive
// messages on the same shard reuse one lock acquisition, consecutive
// messages on the same subject reuse one match result (valid for the
// whole run because sub/unsub needs the same shard lock we hold), and
// the batch's counter updates collapse into a single seqlock write.
// Queue-group subscriptions receive one copy per group, on a member
// chosen by the shard's seeded rng.
func (s *Server) routeBatch(subjArena []byte, batch []pendingPub) {
	var (
		sh      *shard
		shardID = -1
		rs      *routeSet
		subject []byte

		msgsOut, bytesOut, bytesIn uint64
		drops, discs               uint64
	)
	for i := range batch {
		m := &batch[i]
		subj := subjArena[m.off : m.off+m.n]
		idx := shardIndexBytes(subj, len(s.shards))
		if idx != shardID {
			if sh != nil {
				sh.mu.Unlock()
			}
			sh = s.shards[idx]
			sh.mu.Lock()
			shardID = idx
			rs, subject = nil, nil
		}
		if rs == nil || !bytes.Equal(subj, subject) {
			rs = sh.matchBytes(subj)
			subject = subj
		}
		pb := m.pb
		plen := uint64(len(pb.data))
		for _, sub := range rs.plain {
			switch sub.client.sendMsg(subj, sub.sid, pb) {
			case sendOK:
				msgsOut++
				bytesOut += plen
			case sendDrop:
				drops++
			case sendDisconnect:
				discs++
			}
		}
		for _, members := range rs.queues {
			pick := members[sh.rng.Intn(len(members))]
			switch pick.client.sendMsg(subj, pick.sid, pb) {
			case sendOK:
				msgsOut++
				bytesOut += plen
			case sendDrop:
				drops++
			case sendDisconnect:
				discs++
			}
		}
		bytesIn += plen
		pb.release() // drop the publisher hold
		m.pb = nil
	}
	if sh != nil {
		sh.mu.Unlock()
	}
	st := &s.stats
	n := uint64(len(batch))
	st.write(func() {
		st.msgsIn.Add(n)
		st.bytesIn.Add(bytesIn)
		st.msgsOut.Add(msgsOut)
		st.bytesOut.Add(bytesOut)
		if drops > 0 {
			st.slowDrops.Add(drops)
		}
		if discs > 0 {
			st.slowDisconnects.Add(discs)
		}
	})
}

func (s *Server) addSub(sub *serverSub) {
	c := sub.client
	c.smu.Lock()
	c.subs[sub.sid] = append(c.subs[sub.sid], sub)
	c.smu.Unlock()
	s.eachPatternShard(sub.pattern, func(sh *shard) {
		sh.insert(sub)
	})
	st := &s.stats
	st.write(func() { st.subscriptions.Add(1) })
	s.numSubs.Add(1)
}

func (s *Server) removeSub(c *serverClient, sid string) {
	c.smu.Lock()
	subs := c.subs[sid]
	delete(c.subs, sid)
	c.smu.Unlock()
	for _, sub := range subs {
		s.eachPatternShard(sub.pattern, func(sh *shard) {
			sh.remove(sub)
		})
		s.numSubs.Add(-1)
	}
}

// eachPatternShard runs fn under the lock of every shard the pattern
// routes through: one for a literal first token, all for a wildcard.
func (s *Server) eachPatternShard(pattern string, fn func(*shard)) {
	if idx := shardIndex(pattern, len(s.shards)); idx >= 0 {
		sh := s.shards[idx]
		sh.mu.Lock()
		fn(sh)
		sh.mu.Unlock()
		return
	}
	for _, sh := range s.shards {
		sh.mu.Lock()
		fn(sh)
		sh.mu.Unlock()
	}
}

func (s *Server) dropClient(c *serverClient) {
	s.mu.Lock()
	delete(s.clients, c)
	s.mu.Unlock()
	c.smu.Lock()
	all := c.subs
	c.subs = make(map[string][]*serverSub)
	c.smu.Unlock()
	for _, subs := range all {
		for _, sub := range subs {
			s.eachPatternShard(sub.pattern, func(sh *shard) {
				sh.remove(sub)
			})
			s.numSubs.Add(-1)
		}
	}
}

type serverClient struct {
	srv  *Server
	conn net.Conn
	id   uint64
	out  outQueue

	// Ingest batch, reader goroutine only: parsed publishes waiting to be
	// routed, their subjects packed into subjArena.
	pending      []pendingPub
	pendingBytes int
	subjArena    []byte

	smu  sync.Mutex
	subs map[string][]*serverSub // sid -> subs (duplicate sids allowed)
}

func (c *serverClient) run() {
	defer func() {
		// Route fully received publishes before teardown — a pipelined
		// publisher that disconnects right after writing must not lose its
		// tail (same semantics as the PR 7 route-per-publish path).
		c.flushPubs()
		c.srv.dropClient(c)
		// The writer drains queued replies (-ERR, PONG, trailing MSGs),
		// flushes, and closes the connection.
		c.out.close()
	}()
	r := bufio.NewReaderSize(c.conn, 64*1024)
	var fields [8][]byte
	for {
		if len(c.pending) > 0 && !completeLineBuffered(r) {
			// The next read would block (or the buffer holds only a partial
			// line): route what we have instead of sitting on it.
			c.flushPubs()
		}
		line, err := readLineSlice(r)
		if err != nil {
			return
		}
		nf := splitFields(line, fields[:0])
		if len(nf) == 0 {
			continue
		}
		cmd := nf[0]
		switch {
		case asciiFold(cmd, "PUB"):
			if err := c.handlePub(nf, r); err != nil {
				return
			}
		case asciiFold(cmd, "SUB"):
			c.flushPubs() // strict command order: prior PUBs route first
			c.handleSub(nf)
		case asciiFold(cmd, "UNSUB"):
			c.flushPubs()
			if len(nf) != 2 {
				c.sendErr("UNSUB requires <sid>")
				continue
			}
			c.srv.removeSub(c, string(nf[1]))
		case asciiFold(cmd, "PING"):
			// PONG is the client's flush barrier: everything sent before the
			// PING must be fully processed, so route pending publishes first.
			c.flushPubs()
			c.sendLine("PONG")
		case asciiFold(cmd, "CONNECT"):
			// Name is informational only.
		default:
			c.flushPubs()
			c.sendErr("unknown command " + string(cmd))
		}
	}
}

// completeLineBuffered reports whether r already holds a full
// CRLF-terminated line, i.e. whether another command can be parsed
// without blocking. The scan typically ends at the next command's
// terminator a few dozen bytes in.
func completeLineBuffered(r *bufio.Reader) bool {
	n := r.Buffered()
	if n == 0 {
		return false
	}
	buf, err := r.Peek(n)
	if err != nil {
		return false
	}
	return bytes.IndexByte(buf, '\n') >= 0
}

// flushPubs routes the client's pending ingest batch (admission first)
// and resets the batch buffers.
func (c *serverClient) flushPubs() {
	if len(c.pending) == 0 {
		return
	}
	c.srv.admitPublishes()
	c.srv.routeBatch(c.subjArena, c.pending)
	for i := range c.pending {
		c.pending[i].pb = nil
	}
	c.pending = c.pending[:0]
	c.pendingBytes = 0
	c.subjArena = c.subjArena[:0]
}

func (c *serverClient) handleSub(fields [][]byte) {
	var pattern, queue, sid string
	switch len(fields) {
	case 3:
		pattern, sid = string(fields[1]), string(fields[2])
	case 4:
		pattern, queue, sid = string(fields[1]), string(fields[2]), string(fields[3])
	default:
		c.sendErr("SUB requires <subject> [queue] <sid>")
		return
	}
	if err := ValidatePattern(pattern); err != nil {
		c.sendErr(err.Error())
		return
	}
	c.srv.addSub(&serverSub{client: c, pattern: pattern, queue: queue, sid: sid})
}

// handlePub parses one publish into the client's ingest batch. The batch
// is routed when it hits its size bounds, when the socket has nothing
// more buffered (see run), or — to preserve command order — before any
// non-PUB command. A returned error tears the connection down (the
// stream is unframeable).
func (c *serverClient) handlePub(fields [][]byte, r *bufio.Reader) error {
	if len(fields) != 3 {
		c.flushPubs() // error replies keep command order, like any non-PUB
		c.sendErr("PUB requires <subject> <nbytes>")
		return nil
	}
	n, ok := parseSize(fields[2])
	if !ok {
		c.flushPubs()
		c.sendErr("bad payload size")
		return errors.New("broker: bad payload size")
	}
	if len(c.pending) > 0 && r.Buffered() < n+2 {
		// The payload read below will block on the socket; route what we
		// already have first so batching never delays delivery.
		c.flushPubs()
	}
	// The subject slice borrows the reader's buffer, which the payload
	// read below may refill — pack it into the batch's subject arena
	// first.
	subjOff := len(c.subjArena)
	c.subjArena = append(c.subjArena, fields[1]...)
	pb := arenaGet(n)
	if _, err := io.ReadFull(r, pb.data); err != nil {
		pb.release()
		c.subjArena = c.subjArena[:subjOff]
		return err
	}
	if err := consumeCRLF(r); err != nil {
		pb.release()
		c.subjArena = c.subjArena[:subjOff]
		return err
	}
	subject := c.subjArena[subjOff:]
	if !validSubjectBytes(subject) {
		pb.release()
		bad := string(subject)
		c.subjArena = c.subjArena[:subjOff]
		c.flushPubs()
		if err := ValidateSubject(bad); err != nil {
			c.sendErr(err.Error())
		} else {
			c.sendErr("invalid subject")
		}
		return nil
	}
	c.pending = append(c.pending, pendingPub{off: subjOff, n: len(subject), pb: pb})
	c.pendingBytes += n
	if len(c.pending) >= maxIngestBatch || c.pendingBytes >= maxIngestBytes || c.srv.opts.legacy {
		c.flushPubs()
	}
	return nil
}

// sendResult is the outcome of offering one delivery to a client.
type sendResult int

const (
	sendOK sendResult = iota
	sendClosed
	sendDrop
	sendDisconnect
)

// sendMsg enqueues one delivery; the frame header is pooled and the
// frame takes one reference on the shared fan-out payload. The reference
// is taken before enqueue — the writer may drain and release the frame
// the instant enqueue returns — and given back on rejection (which can
// never reach zero: the caller still holds the publisher reference).
func (c *serverClient) sendMsg(subject []byte, sid string, pb *payloadRef) sendResult {
	f := outFrame{hdr: encodeMsgHeader(subject, sid, len(pb.data)), payload: pb.data, pb: pb}
	pb.retain()
	switch c.out.enqueue(f) {
	case enqOK:
		return sendOK
	case enqClosed:
		putHeaderBuf(f.hdr)
		pb.release()
		return sendClosed
	default: // overflow: apply the slow-consumer policy
		putHeaderBuf(f.hdr)
		pb.release()
		if c.srv.opts.slowPolicy == SlowConsumerDrop {
			return sendDrop
		}
		c.out.discard()
		c.conn.Close()
		return sendDisconnect
	}
}

func (c *serverClient) sendLine(line string) {
	f := outFrame{hdr: encodeLine(line)}
	if c.out.enqueue(f) != enqOK {
		putHeaderBuf(f.hdr)
	}
}

func (c *serverClient) sendErr(msg string) { c.sendLine("-ERR " + msg) }

// encodeMsgHeader appends "MSG <subject> <sid> <n>\r\n" to a pooled buf.
func encodeMsgHeader(subject []byte, sid string, n int) *headerBuf {
	h := getHeaderBuf()
	b := h.b
	b = append(b, "MSG "...)
	b = append(b, subject...)
	b = append(b, ' ')
	b = append(b, sid...)
	b = append(b, ' ')
	b = strconv.AppendInt(b, int64(n), 10)
	b = append(b, '\r', '\n')
	h.b = b
	return h
}

// readLineSlice returns the next CRLF- (or LF-) terminated line without
// the terminator. The slice borrows the reader's buffer and is only
// valid until the next read; over-long lines fall back to copying.
func readLineSlice(r *bufio.Reader) ([]byte, error) {
	line, err := r.ReadSlice('\n')
	if err == bufio.ErrBufferFull {
		buf := append([]byte(nil), line...)
		for err == bufio.ErrBufferFull {
			line, err = r.ReadSlice('\n')
			buf = append(buf, line...)
		}
		line = buf
	}
	if err != nil {
		return nil, err
	}
	line = line[:len(line)-1]
	if len(line) > 0 && line[len(line)-1] == '\r' {
		line = line[:len(line)-1]
	}
	return line, nil
}

// splitFields splits on runs of spaces and tabs without allocating.
func splitFields(line []byte, out [][]byte) [][]byte {
	i := 0
	for i < len(line) {
		for i < len(line) && (line[i] == ' ' || line[i] == '\t') {
			i++
		}
		if i >= len(line) {
			break
		}
		j := i
		for j < len(line) && line[j] != ' ' && line[j] != '\t' {
			j++
		}
		out = append(out, line[i:j])
		i = j
	}
	return out
}

// asciiFold reports whether b equals upper (an upper-case ASCII literal)
// ignoring case.
func asciiFold(b []byte, upper string) bool {
	if len(b) != len(upper) {
		return false
	}
	for i := 0; i < len(b); i++ {
		ch := b[i]
		if 'a' <= ch && ch <= 'z' {
			ch -= 'a' - 'A'
		}
		if ch != upper[i] {
			return false
		}
	}
	return true
}

// parseSize parses a payload size in [0, MaxPayload].
func parseSize(b []byte) (int, bool) {
	if len(b) == 0 || len(b) > 8 {
		return 0, false
	}
	n := 0
	for _, ch := range b {
		if ch < '0' || ch > '9' {
			return 0, false
		}
		n = n*10 + int(ch-'0')
	}
	if n > MaxPayload {
		return 0, false
	}
	return n, true
}

// validSubjectBytes is the allocation-free publish-subject check:
// non-empty dot tokens, no wildcards. (Whitespace cannot appear — the
// field splitter already consumed it.)
func validSubjectBytes(b []byte) bool {
	if len(b) == 0 {
		return false
	}
	prev := byte('.')
	for _, ch := range b {
		switch ch {
		case '.':
			if prev == '.' {
				return false
			}
		case '*', '>':
			return false
		}
		prev = ch
	}
	return prev != '.'
}

// readLine reads a CRLF- (or LF-) terminated line without the
// terminator (used by the client's reader, which owns its strings).
func readLine(r *bufio.Reader) (string, error) {
	line, err := r.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(line, "\r\n"), nil
}

func consumeCRLF(r *bufio.Reader) error {
	b, err := r.ReadByte()
	if err != nil {
		return err
	}
	if b == '\r' {
		if b, err = r.ReadByte(); err != nil {
			return err
		}
	}
	if b != '\n' {
		return errors.New("broker: payload not terminated by CRLF")
	}
	return nil
}
