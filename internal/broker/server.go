// Package broker implements a NATS-style TCP publish/subscribe broker and
// client: subject-based routing with '*'/'>' wildcards and queue groups
// over a line-oriented protocol.
//
// The broker plays two roles in this repository. It is the "conventional
// cloud pub/sub" contrast the paper draws (JMS/WS-Notification-class
// systems offer subject routing but no fine-grained QoS or transport
// configurability), and it gives the runnable examples a real-socket data
// path alongside the simulated DDS/ANT stack.
//
// Wire protocol (text, CRLF-terminated control lines):
//
//	C->S: CONNECT <name>
//	C->S: SUB <subject> [queue] <sid>
//	C->S: UNSUB <sid>
//	C->S: PUB <subject> <nbytes>\r\n<payload>
//	C->S: PING               S->C: PONG
//	S->C: MSG <subject> <sid> <nbytes>\r\n<payload>
//	S->C: -ERR <message>
package broker

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"
)

// MaxPayload bounds a single message payload.
const MaxPayload = 1 << 20

// ServerStats are cumulative broker counters.
type ServerStats struct {
	Connections   uint64
	MsgsIn        uint64
	MsgsOut       uint64
	BytesIn       uint64
	BytesOut      uint64
	Subscriptions uint64
}

// Server is the broker. Create with NewServer, start with Serve or
// ListenAndServe, stop with Shutdown.
type Server struct {
	mu       sync.Mutex
	ln       net.Listener
	clients  map[*serverClient]struct{}
	subs     map[*serverSub]struct{}
	nextCID  uint64
	stats    ServerStats
	rng      *rand.Rand
	shutdown bool
	done     chan struct{}
	doneOnce sync.Once
}

type serverSub struct {
	client  *serverClient
	pattern string
	queue   string
	sid     string
}

// NewServer returns an idle broker.
func NewServer() *Server {
	return &Server{
		clients: make(map[*serverClient]struct{}),
		subs:    make(map[*serverSub]struct{}),
		rng:     rand.New(rand.NewSource(time.Now().UnixNano())),
		done:    make(chan struct{}),
	}
}

// ListenAndServe listens on addr ("host:port", ":0" for ephemeral) and
// serves until Shutdown. It returns once the listener is bound; serving
// continues in background goroutines.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("broker: listen %s: %w", addr, err)
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	go s.Serve(ln)
	return nil
}

// Addr returns the bound listener address, or nil before ListenAndServe.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Serve accepts connections on ln until Shutdown.
func (s *Server) Serve(ln net.Listener) {
	defer s.doneOnce.Do(func() { close(s.done) })
	s.mu.Lock()
	if s.shutdown {
		s.mu.Unlock()
		ln.Close()
		return
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed by Shutdown
		}
		s.mu.Lock()
		if s.shutdown {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.nextCID++
		c := &serverClient{srv: s, conn: conn, id: s.nextCID}
		s.clients[c] = struct{}{}
		s.stats.Connections++
		s.mu.Unlock()
		go c.run()
	}
}

// Shutdown closes the listener and every client connection.
func (s *Server) Shutdown() {
	s.mu.Lock()
	if s.shutdown {
		s.mu.Unlock()
		return
	}
	s.shutdown = true
	ln := s.ln
	var conns []net.Conn
	for c := range s.clients {
		conns = append(conns, c.conn)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
		<-s.done
	}
	for _, c := range conns {
		c.Close()
	}
}

// Stats returns a snapshot of the broker counters.
func (s *Server) Stats() ServerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// NumSubscriptions returns the live subscription count.
func (s *Server) NumSubscriptions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.subs)
}

// route delivers a message to every matching subscription; queue-group
// subscriptions receive one copy per group, on a randomly chosen member.
func (s *Server) route(subject string, payload []byte) {
	s.mu.Lock()
	var direct []*serverSub
	queues := make(map[string][]*serverSub)
	for sub := range s.subs {
		if !Match(subject, sub.pattern) {
			continue
		}
		if sub.queue == "" {
			direct = append(direct, sub)
		} else {
			key := sub.queue + " " + sub.pattern
			queues[key] = append(queues[key], sub)
		}
	}
	for _, members := range queues {
		direct = append(direct, members[s.rng.Intn(len(members))])
	}
	s.stats.MsgsIn++
	s.stats.BytesIn += uint64(len(payload))
	s.stats.MsgsOut += uint64(len(direct))
	s.stats.BytesOut += uint64(len(direct) * len(payload))
	s.mu.Unlock()
	for _, sub := range direct {
		sub.client.sendMsg(subject, sub.sid, payload)
	}
}

func (s *Server) addSub(sub *serverSub) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.subs[sub] = struct{}{}
	s.stats.Subscriptions++
}

func (s *Server) removeSub(client *serverClient, sid string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for sub := range s.subs {
		if sub.client == client && sub.sid == sid {
			delete(s.subs, sub)
		}
	}
}

func (s *Server) dropClient(c *serverClient) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.clients, c)
	for sub := range s.subs {
		if sub.client == c {
			delete(s.subs, sub)
		}
	}
}

type serverClient struct {
	srv  *Server
	conn net.Conn
	id   uint64

	wmu sync.Mutex // serializes writes to conn
}

func (c *serverClient) run() {
	defer func() {
		c.conn.Close()
		c.srv.dropClient(c)
	}()
	r := bufio.NewReaderSize(c.conn, 64*1024)
	for {
		line, err := readLine(r)
		if err != nil {
			return
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		switch strings.ToUpper(fields[0]) {
		case "CONNECT":
			// Name is informational only.
		case "PING":
			c.sendLine("PONG")
		case "SUB":
			c.handleSub(fields)
		case "UNSUB":
			if len(fields) != 2 {
				c.sendErr("UNSUB requires <sid>")
				continue
			}
			c.srv.removeSub(c, fields[1])
		case "PUB":
			if err := c.handlePub(fields, r); err != nil {
				return
			}
		default:
			c.sendErr("unknown command " + fields[0])
		}
	}
}

func (c *serverClient) handleSub(fields []string) {
	var pattern, queue, sid string
	switch len(fields) {
	case 3:
		pattern, sid = fields[1], fields[2]
	case 4:
		pattern, queue, sid = fields[1], fields[2], fields[3]
	default:
		c.sendErr("SUB requires <subject> [queue] <sid>")
		return
	}
	if err := ValidatePattern(pattern); err != nil {
		c.sendErr(err.Error())
		return
	}
	c.srv.addSub(&serverSub{client: c, pattern: pattern, queue: queue, sid: sid})
}

func (c *serverClient) handlePub(fields []string, r *bufio.Reader) error {
	if len(fields) != 3 {
		c.sendErr("PUB requires <subject> <nbytes>")
		return nil
	}
	subject := fields[1]
	n, err := strconv.Atoi(fields[2])
	if err != nil || n < 0 || n > MaxPayload {
		c.sendErr("bad payload size")
		return errors.New("broker: bad payload size")
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return err
	}
	if err := consumeCRLF(r); err != nil {
		return err
	}
	if err := ValidateSubject(subject); err != nil {
		c.sendErr(err.Error())
		return nil
	}
	c.srv.route(subject, payload)
	return nil
}

func (c *serverClient) sendMsg(subject, sid string, payload []byte) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	// Failed writes surface as a read error in the client's run loop.
	fmt.Fprintf(c.conn, "MSG %s %s %d\r\n", subject, sid, len(payload))
	c.conn.Write(payload)
	io.WriteString(c.conn, "\r\n")
}

func (c *serverClient) sendLine(line string) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	io.WriteString(c.conn, line+"\r\n")
}

func (c *serverClient) sendErr(msg string) { c.sendLine("-ERR " + msg) }

// readLine reads a CRLF- (or LF-) terminated line without the terminator.
func readLine(r *bufio.Reader) (string, error) {
	line, err := r.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(line, "\r\n"), nil
}

func consumeCRLF(r *bufio.Reader) error {
	b, err := r.ReadByte()
	if err != nil {
		return err
	}
	if b == '\r' {
		if b, err = r.ReadByte(); err != nil {
			return err
		}
	}
	if b != '\n' {
		return errors.New("broker: payload not terminated by CRLF")
	}
	return nil
}
