// Package broker implements a NATS-style TCP publish/subscribe broker and
// client: subject-based routing with '*'/'>' wildcards and queue groups
// over a line-oriented protocol.
//
// The broker plays two roles in this repository. It is the "conventional
// cloud pub/sub" contrast the paper draws (JMS/WS-Notification-class
// systems offer subject routing but no fine-grained QoS or transport
// configurability), and it gives the runnable examples a real-socket data
// path alongside the simulated DDS/ANT stack.
//
// The data path is built for high fan-out: subscriptions live in
// sharded subject-token tries with per-subject match caches (see
// sublist.go), publishes take one shard lock instead of a server-wide
// one, hot counters are atomics, and every client drains a bounded
// outbound queue through a coalescing writer goroutine (see outbound.go)
// so a stalled subscriber can never stall the fan-out.
//
// Wire protocol (text, CRLF-terminated control lines):
//
//	C->S: CONNECT <name>
//	C->S: SUB <subject> [queue] <sid>
//	C->S: UNSUB <sid>
//	C->S: PUB <subject> <nbytes>\r\n<payload>
//	C->S: PING               S->C: PONG
//	S->C: MSG <subject> <sid> <nbytes>\r\n<payload>
//	S->C: -ERR <message>
package broker

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// MaxPayload bounds a single message payload.
const MaxPayload = 1 << 20

// ServerStats are cumulative broker counters.
type ServerStats struct {
	Connections   uint64
	MsgsIn        uint64
	MsgsOut       uint64
	BytesIn       uint64
	BytesOut      uint64
	Subscriptions uint64

	// SlowConsumerDrops counts frames dropped by SlowConsumerDrop;
	// SlowConsumerDisconnects counts clients evicted by
	// SlowConsumerDisconnect.
	SlowConsumerDrops       uint64
	SlowConsumerDisconnects uint64
}

// counters are the hot-path stats, kept as atomics so the publish path
// never takes the server lock.
type counters struct {
	connections     atomic.Uint64
	msgsIn          atomic.Uint64
	msgsOut         atomic.Uint64
	bytesIn         atomic.Uint64
	bytesOut        atomic.Uint64
	subscriptions   atomic.Uint64
	slowDrops       atomic.Uint64
	slowDisconnects atomic.Uint64
}

// options collects server tuning knobs; all have workable defaults.
type options struct {
	seed        int64
	hasSeed     bool
	shards      int
	queueFrames int
	queueBytes  int64
	slowPolicy  SlowConsumerPolicy
}

// Option configures a Server at construction time.
type Option func(*options)

// WithSeed fixes the rng seed used for queue-group member picks, making
// pick order reproducible (each routing shard derives its own stream
// from it). Without it the seed comes from the ADAMANT_BROKER_SEED
// environment variable if set, else from the clock.
func WithSeed(seed int64) Option {
	return func(o *options) { o.seed = seed; o.hasSeed = true }
}

// WithShards sets the routing shard count (default 8). More shards mean
// less publish contention across disjoint subject spaces.
func WithShards(n int) Option {
	return func(o *options) {
		if n > 0 {
			o.shards = n
		}
	}
}

// WithWriteQueue bounds each client's outbound queue in frames and
// payload bytes (defaults 16384 frames / 32 MiB). Overflow triggers the
// slow-consumer policy.
func WithWriteQueue(frames int, bytes int64) Option {
	return func(o *options) {
		if frames > 0 {
			o.queueFrames = frames
		}
		if bytes > 0 {
			o.queueBytes = bytes
		}
	}
}

// WithSlowConsumerPolicy selects the overflow policy (default
// SlowConsumerDisconnect).
func WithSlowConsumerPolicy(p SlowConsumerPolicy) Option {
	return func(o *options) { o.slowPolicy = p }
}

// Server is the broker. Create with NewServer, start with Serve or
// ListenAndServe, stop with Shutdown.
type Server struct {
	opts   options
	shards []*shard
	stats  counters

	// numSubs is the live logical subscription count (a wildcard-first
	// pattern is stored in every shard but counts once).
	numSubs atomic.Int64

	mu       sync.Mutex
	ln       net.Listener
	clients  map[*serverClient]struct{}
	nextCID  uint64
	shutdown bool
	done     chan struct{}
	doneOnce sync.Once
}

type serverSub struct {
	client  *serverClient
	pattern string
	queue   string
	sid     string
}

// NewServer returns an idle broker.
func NewServer(opts ...Option) *Server {
	o := options{
		shards:      8,
		queueFrames: defaultQueueFrames,
		queueBytes:  defaultQueueBytes,
		slowPolicy:  SlowConsumerDisconnect,
	}
	for _, fn := range opts {
		fn(&o)
	}
	if !o.hasSeed {
		if env := os.Getenv("ADAMANT_BROKER_SEED"); env != "" {
			if v, err := strconv.ParseInt(env, 10, 64); err == nil {
				o.seed = v
				o.hasSeed = true
			}
		}
	}
	if !o.hasSeed {
		o.seed = time.Now().UnixNano()
	}
	s := &Server{
		opts:    o,
		shards:  make([]*shard, o.shards),
		clients: make(map[*serverClient]struct{}),
		done:    make(chan struct{}),
	}
	for i := range s.shards {
		s.shards[i] = newShard(o.seed + int64(i))
	}
	return s
}

// ListenAndServe listens on addr ("host:port", ":0" for ephemeral) and
// serves until Shutdown. It returns once the listener is bound; serving
// continues in background goroutines.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("broker: listen %s: %w", addr, err)
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	go s.Serve(ln)
	return nil
}

// Addr returns the bound listener address, or nil before ListenAndServe.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Serve accepts connections on ln until Shutdown.
func (s *Server) Serve(ln net.Listener) {
	defer s.doneOnce.Do(func() { close(s.done) })
	s.mu.Lock()
	if s.shutdown {
		s.mu.Unlock()
		ln.Close()
		return
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed by Shutdown
		}
		if s.startClient(conn) == nil {
			return
		}
	}
}

// startClient registers conn and spawns its reader and writer
// goroutines. It returns nil when the server is shutting down.
func (s *Server) startClient(conn net.Conn) *serverClient {
	s.mu.Lock()
	if s.shutdown {
		s.mu.Unlock()
		conn.Close()
		return nil
	}
	s.nextCID++
	c := &serverClient{srv: s, conn: conn, id: s.nextCID, subs: make(map[string][]*serverSub)}
	c.out.init(s.opts.queueFrames, s.opts.queueBytes)
	s.clients[c] = struct{}{}
	s.mu.Unlock()
	s.stats.connections.Add(1)
	go c.run()
	go writeLoop(conn, &c.out)
	return c
}

// Shutdown closes the listener and every client connection.
func (s *Server) Shutdown() {
	s.mu.Lock()
	if s.shutdown {
		s.mu.Unlock()
		return
	}
	s.shutdown = true
	ln := s.ln
	var conns []net.Conn
	for c := range s.clients {
		conns = append(conns, c.conn)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
		<-s.done
	}
	for _, c := range conns {
		c.Close()
	}
}

// Stats returns a snapshot of the broker counters.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		Connections:             s.stats.connections.Load(),
		MsgsIn:                  s.stats.msgsIn.Load(),
		MsgsOut:                 s.stats.msgsOut.Load(),
		BytesIn:                 s.stats.bytesIn.Load(),
		BytesOut:                s.stats.bytesOut.Load(),
		Subscriptions:           s.stats.subscriptions.Load(),
		SlowConsumerDrops:       s.stats.slowDrops.Load(),
		SlowConsumerDisconnects: s.stats.slowDisconnects.Load(),
	}
}

// NumSubscriptions returns the live subscription count.
func (s *Server) NumSubscriptions() int {
	return int(s.numSubs.Load())
}

// route delivers a message to every matching subscription; queue-group
// subscriptions receive one copy per group, on a member chosen by the
// shard's seeded rng. Only the subject's shard lock is held.
func (s *Server) route(subject, payload []byte) {
	sh := s.shards[shardIndexBytes(subject, len(s.shards))]
	sh.mu.Lock()
	rs := sh.matchBytes(subject)
	out := 0
	for _, sub := range rs.plain {
		if sub.client.sendMsg(subject, sub.sid, payload) {
			out++
		}
	}
	for _, members := range rs.queues {
		pick := members[sh.rng.Intn(len(members))]
		if pick.client.sendMsg(subject, pick.sid, payload) {
			out++
		}
	}
	sh.mu.Unlock()
	s.stats.msgsIn.Add(1)
	s.stats.bytesIn.Add(uint64(len(payload)))
	s.stats.msgsOut.Add(uint64(out))
	s.stats.bytesOut.Add(uint64(out * len(payload)))
}

// matchBytes is shard.match keyed by a borrowed byte slice: the cache
// probe allocates nothing on a hit, and the subject string is only
// materialized on a miss.
func (sh *shard) matchBytes(subject []byte) *routeSet {
	if rs, ok := sh.cache[string(subject)]; ok && rs.gen == sh.gen {
		return rs
	}
	subj := string(subject)
	rs := &routeSet{gen: sh.gen}
	collect(sh.root, subj, rs)
	if len(sh.cache) >= maxCachedSubjects {
		sh.cache = make(map[string]*routeSet)
	}
	sh.cache[subj] = rs
	return rs
}

// shardIndexBytes mirrors shardIndex for a borrowed subject slice.
func shardIndexBytes(subject []byte, n int) int {
	end := len(subject)
	for i := 0; i < end; i++ {
		if subject[i] == '.' {
			end = i
			break
		}
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < end; i++ {
		h ^= uint64(subject[i])
		h *= prime64
	}
	return int(h % uint64(n))
}

func (s *Server) addSub(sub *serverSub) {
	c := sub.client
	c.smu.Lock()
	c.subs[sub.sid] = append(c.subs[sub.sid], sub)
	c.smu.Unlock()
	s.eachPatternShard(sub.pattern, func(sh *shard) {
		sh.insert(sub)
	})
	s.stats.subscriptions.Add(1)
	s.numSubs.Add(1)
}

func (s *Server) removeSub(c *serverClient, sid string) {
	c.smu.Lock()
	subs := c.subs[sid]
	delete(c.subs, sid)
	c.smu.Unlock()
	for _, sub := range subs {
		s.eachPatternShard(sub.pattern, func(sh *shard) {
			sh.remove(sub)
		})
		s.numSubs.Add(-1)
	}
}

// eachPatternShard runs fn under the lock of every shard the pattern
// routes through: one for a literal first token, all for a wildcard.
func (s *Server) eachPatternShard(pattern string, fn func(*shard)) {
	if idx := shardIndex(pattern, len(s.shards)); idx >= 0 {
		sh := s.shards[idx]
		sh.mu.Lock()
		fn(sh)
		sh.mu.Unlock()
		return
	}
	for _, sh := range s.shards {
		sh.mu.Lock()
		fn(sh)
		sh.mu.Unlock()
	}
}

func (s *Server) dropClient(c *serverClient) {
	s.mu.Lock()
	delete(s.clients, c)
	s.mu.Unlock()
	c.smu.Lock()
	all := c.subs
	c.subs = make(map[string][]*serverSub)
	c.smu.Unlock()
	for _, subs := range all {
		for _, sub := range subs {
			s.eachPatternShard(sub.pattern, func(sh *shard) {
				sh.remove(sub)
			})
			s.numSubs.Add(-1)
		}
	}
}

type serverClient struct {
	srv     *Server
	conn    net.Conn
	id      uint64
	out     outQueue
	subjBuf []byte // publish-subject scratch, reader goroutine only

	smu  sync.Mutex
	subs map[string][]*serverSub // sid -> subs (duplicate sids allowed)
}

func (c *serverClient) run() {
	defer func() {
		c.srv.dropClient(c)
		// The writer drains queued replies (-ERR, PONG, trailing MSGs),
		// flushes, and closes the connection.
		c.out.close()
	}()
	r := bufio.NewReaderSize(c.conn, 64*1024)
	var fields [8][]byte
	for {
		line, err := readLineSlice(r)
		if err != nil {
			return
		}
		nf := splitFields(line, fields[:0])
		if len(nf) == 0 {
			continue
		}
		cmd := nf[0]
		switch {
		case asciiFold(cmd, "PUB"):
			if err := c.handlePub(nf, r); err != nil {
				return
			}
		case asciiFold(cmd, "SUB"):
			c.handleSub(nf)
		case asciiFold(cmd, "UNSUB"):
			if len(nf) != 2 {
				c.sendErr("UNSUB requires <sid>")
				continue
			}
			c.srv.removeSub(c, string(nf[1]))
		case asciiFold(cmd, "PING"):
			c.sendLine("PONG")
		case asciiFold(cmd, "CONNECT"):
			// Name is informational only.
		default:
			c.sendErr("unknown command " + string(cmd))
		}
	}
}

func (c *serverClient) handleSub(fields [][]byte) {
	var pattern, queue, sid string
	switch len(fields) {
	case 3:
		pattern, sid = string(fields[1]), string(fields[2])
	case 4:
		pattern, queue, sid = string(fields[1]), string(fields[2]), string(fields[3])
	default:
		c.sendErr("SUB requires <subject> [queue] <sid>")
		return
	}
	if err := ValidatePattern(pattern); err != nil {
		c.sendErr(err.Error())
		return
	}
	c.srv.addSub(&serverSub{client: c, pattern: pattern, queue: queue, sid: sid})
}

func (c *serverClient) handlePub(fields [][]byte, r *bufio.Reader) error {
	if len(fields) != 3 {
		c.sendErr("PUB requires <subject> <nbytes>")
		return nil
	}
	// The subject slice borrows the reader's buffer, which the payload
	// read below may refill — copy it into the client's scratch first.
	c.subjBuf = append(c.subjBuf[:0], fields[1]...)
	subject := c.subjBuf
	n, ok := parseSize(fields[2])
	if !ok {
		c.sendErr("bad payload size")
		return errors.New("broker: bad payload size")
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return err
	}
	if err := consumeCRLF(r); err != nil {
		return err
	}
	if !validSubjectBytes(subject) {
		if err := ValidateSubject(string(subject)); err != nil {
			c.sendErr(err.Error())
		} else {
			c.sendErr("invalid subject")
		}
		return nil
	}
	c.srv.route(subject, payload)
	return nil
}

// sendMsg enqueues one delivery; the frame header is pooled and the
// payload slice is shared across the whole fan-out. Reports whether the
// frame was accepted.
func (c *serverClient) sendMsg(subject []byte, sid string, payload []byte) bool {
	f := outFrame{header: encodeMsgHeader(subject, sid, len(payload)), payload: payload}
	switch c.out.enqueue(f) {
	case enqOK:
		return true
	case enqClosed:
		putHeaderBuf(f.header)
		return false
	default: // overflow: apply the slow-consumer policy
		putHeaderBuf(f.header)
		if c.srv.opts.slowPolicy == SlowConsumerDrop {
			c.srv.stats.slowDrops.Add(1)
			return false
		}
		c.srv.stats.slowDisconnects.Add(1)
		c.out.discard()
		c.conn.Close()
		return false
	}
}

func (c *serverClient) sendLine(line string) {
	f := outFrame{header: encodeLine(line)}
	if c.out.enqueue(f) != enqOK {
		putHeaderBuf(f.header)
	}
}

func (c *serverClient) sendErr(msg string) { c.sendLine("-ERR " + msg) }

// encodeMsgHeader appends "MSG <subject> <sid> <n>\r\n" to a pooled buf.
func encodeMsgHeader(subject []byte, sid string, n int) []byte {
	b := getHeaderBuf()
	b = append(b, "MSG "...)
	b = append(b, subject...)
	b = append(b, ' ')
	b = append(b, sid...)
	b = append(b, ' ')
	b = strconv.AppendInt(b, int64(n), 10)
	b = append(b, '\r', '\n')
	return b
}

// readLineSlice returns the next CRLF- (or LF-) terminated line without
// the terminator. The slice borrows the reader's buffer and is only
// valid until the next read; over-long lines fall back to copying.
func readLineSlice(r *bufio.Reader) ([]byte, error) {
	line, err := r.ReadSlice('\n')
	if err == bufio.ErrBufferFull {
		buf := append([]byte(nil), line...)
		for err == bufio.ErrBufferFull {
			line, err = r.ReadSlice('\n')
			buf = append(buf, line...)
		}
		line = buf
	}
	if err != nil {
		return nil, err
	}
	line = line[:len(line)-1]
	if len(line) > 0 && line[len(line)-1] == '\r' {
		line = line[:len(line)-1]
	}
	return line, nil
}

// splitFields splits on runs of spaces and tabs without allocating.
func splitFields(line []byte, out [][]byte) [][]byte {
	i := 0
	for i < len(line) {
		for i < len(line) && (line[i] == ' ' || line[i] == '\t') {
			i++
		}
		if i >= len(line) {
			break
		}
		j := i
		for j < len(line) && line[j] != ' ' && line[j] != '\t' {
			j++
		}
		out = append(out, line[i:j])
		i = j
	}
	return out
}

// asciiFold reports whether b equals upper (an upper-case ASCII literal)
// ignoring case.
func asciiFold(b []byte, upper string) bool {
	if len(b) != len(upper) {
		return false
	}
	for i := 0; i < len(b); i++ {
		ch := b[i]
		if 'a' <= ch && ch <= 'z' {
			ch -= 'a' - 'A'
		}
		if ch != upper[i] {
			return false
		}
	}
	return true
}

// parseSize parses a payload size in [0, MaxPayload].
func parseSize(b []byte) (int, bool) {
	if len(b) == 0 || len(b) > 8 {
		return 0, false
	}
	n := 0
	for _, ch := range b {
		if ch < '0' || ch > '9' {
			return 0, false
		}
		n = n*10 + int(ch-'0')
	}
	if n > MaxPayload {
		return 0, false
	}
	return n, true
}

// validSubjectBytes is the allocation-free publish-subject check:
// non-empty dot tokens, no wildcards. (Whitespace cannot appear — the
// field splitter already consumed it.)
func validSubjectBytes(b []byte) bool {
	if len(b) == 0 {
		return false
	}
	prev := byte('.')
	for _, ch := range b {
		switch ch {
		case '.':
			if prev == '.' {
				return false
			}
		case '*', '>':
			return false
		}
		prev = ch
	}
	return prev != '.'
}

// readLine reads a CRLF- (or LF-) terminated line without the
// terminator (used by the client's reader, which owns its strings).
func readLine(r *bufio.Reader) (string, error) {
	line, err := r.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(line, "\r\n"), nil
}

func consumeCRLF(r *bufio.Reader) error {
	b, err := r.ReadByte()
	if err != nil {
		return err
	}
	if b == '\r' {
		if b, err = r.ReadByte(); err != nil {
			return err
		}
	}
	if b != '\n' {
		return errors.New("broker: payload not terminated by CRLF")
	}
	return nil
}
