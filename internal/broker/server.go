// Package broker implements a NATS-style TCP publish/subscribe broker and
// client: subject-based routing with '*'/'>' wildcards and queue groups
// over a line-oriented protocol, federated across brokers by inter-broker
// routes with subject-interest propagation.
//
// The broker plays two roles in this repository. It is the "conventional
// cloud pub/sub" contrast the paper draws (JMS/WS-Notification-class
// systems offer subject routing but no fine-grained QoS or transport
// configurability), and it gives the runnable examples a real-socket data
// path alongside the simulated DDS/ANT stack.
//
// The data path is built for high fan-out and bounded latency:
// subscriptions live in sharded subject-token tries with per-subject
// match caches (sublist.go); a reader goroutine parses every PUB that is
// already buffered on its socket into one ingest batch and routes the
// batch with one shard-lock acquisition per shard run and one trie/cache
// probe per distinct subject (routeBatch); payload bodies live in a
// refcounted arena (arena.go) shared across the whole fan-out; writer
// goroutines drain bounded per-client queues into vectored writev
// batches (outbound.go); and a publish-admission gauge (admission.go)
// paces unpaced publishers instead of letting internal queues grow into
// seconds of latency.
//
// Every connection — client or inter-broker route — is built on the same
// link substrate (link.go): framed reader, arena payloads, bounded
// outbound queue, vectored writer. Federation (route.go) adds a ROUTE
// handshake, RS+/RS- interest propagation, origin-tagged RMSG forwarding
// with one-hop dedup, and gossip membership with heartbeat failure
// detection.
//
// Wire protocol (text, CRLF-terminated control lines):
//
//	C->S: CONNECT <name>
//	C->S: SUB <subject> [queue] <sid>
//	C->S: UNSUB <sid>
//	C->S: PUB <subject> <nbytes>\r\n<payload>
//	C->S: PING               S->C: PONG
//	S->C: MSG <subject> <sid> <nbytes>\r\n<payload>
//	S->C: -ERR <message>
//
// Inter-broker route protocol (route.go):
//
//	B->B: ROUTE <serverID> <clusterAddr>
//	B->B: RS+ <pattern> [queue]     RS- <pattern> [queue]
//	B->B: RMSG <subject> <origin> <nbytes> [queue...]\r\n<payload>
//	B->B: RINFO <serverID> <clusterAddr>
//	B->B: PING / PONG
package broker

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// MaxPayload bounds a single message payload.
const MaxPayload = 1 << 20

// Ingest batching bounds: a reader routes its pending publishes once it
// has this many messages or payload bytes, or as soon as its socket has
// no complete command left buffered (so batching never adds latency —
// it only amortizes work that is already waiting).
const (
	maxIngestBatch = 256
	maxIngestBytes = 256 << 10
)

// ServerStats are cumulative broker counters. A Stats snapshot is
// internally consistent: all fields come from the same seqlock
// generation, so invariants that hold per update batch (e.g. BytesOut
// matching MsgsOut for a fixed payload size) hold in every snapshot.
type ServerStats struct {
	Connections   uint64
	MsgsIn        uint64
	MsgsOut       uint64
	BytesIn       uint64
	BytesOut      uint64
	Subscriptions uint64

	// SlowConsumerDrops counts frames dropped by SlowConsumerDrop;
	// SlowConsumerDisconnects counts clients evicted by
	// SlowConsumerDisconnect.
	SlowConsumerDrops       uint64
	SlowConsumerDisconnects uint64

	// AdmissionWaits counts publish batches that parked on the admission
	// gauge; AdmissionTimeouts counts the subset that gave up waiting and
	// proceeded (see admission.go for why the wait is bounded).
	AdmissionWaits    uint64
	AdmissionTimeouts uint64

	// Federation counters (route.go). Routes is the number of live
	// inter-broker routes (a gauge); RemoteSubs is the number of remote
	// interest entries currently installed by peers (a gauge); RoutedMsgs
	// counts RMSG frames forwarded to peers; DupsSuppressed counts
	// inbound routed frames dropped by the origin-tag dedup rule (our own
	// origin echoed back, i.e. a loop a misconfigured mesh would create).
	Routes         uint64
	RemoteSubs     uint64
	RoutedMsgs     uint64
	DupsSuppressed uint64
}

// counters is the seqlock-guarded stats block. Writers (routeBatch and
// the rare connection/subscription events) serialize on mu and bump seq
// to odd around their field updates; Stats spins until it reads the same
// even seq before and after loading the fields, so a snapshot can never
// mix counters from two different updates. The fields stay atomics so
// the reader's loads are race-clean while a writer is mid-update.
type counters struct {
	mu  sync.Mutex
	seq atomic.Uint64

	connections       atomic.Uint64
	msgsIn            atomic.Uint64
	msgsOut           atomic.Uint64
	bytesIn           atomic.Uint64
	bytesOut          atomic.Uint64
	subscriptions     atomic.Uint64
	slowDrops         atomic.Uint64
	slowDisconnects   atomic.Uint64
	admissionWaits    atomic.Uint64
	admissionTimeouts atomic.Uint64
	routes            atomic.Uint64
	remoteSubs        atomic.Uint64
	routedMsgs        atomic.Uint64
	dupsSuppressed    atomic.Uint64
}

// write runs fn (which updates counter fields) inside one seqlock
// generation.
func (c *counters) write(fn func()) {
	c.mu.Lock()
	c.seq.Add(1)
	fn()
	c.seq.Add(1)
	c.mu.Unlock()
}

// options collects server tuning knobs; all have workable defaults.
type options struct {
	seed             int64
	hasSeed          bool
	shards           int
	queueFrames      int
	queueBytes       int64
	slowPolicy       SlowConsumerPolicy
	admissionBytes   int64
	admissionTimeout time.Duration
	legacy           bool

	id          string
	clusterAddr string
	hbInterval  time.Duration
	hbSuspect   time.Duration
}

// Option configures a Server at construction time.
type Option func(*options)

// WithSeed fixes the rng seed used for queue-group member picks, making
// pick order reproducible (each routing shard derives its own stream
// from it). Without it the seed comes from the ADAMANT_BROKER_SEED
// environment variable if set, else from the clock.
func WithSeed(seed int64) Option {
	return func(o *options) { o.seed = seed; o.hasSeed = true }
}

// WithShards sets the routing shard count (default 8). More shards mean
// less publish contention across disjoint subject spaces.
func WithShards(n int) Option {
	return func(o *options) {
		if n > 0 {
			o.shards = n
		}
	}
}

// WithWriteQueue bounds each client's outbound queue in frames and
// payload bytes (defaults 16384 frames / 32 MiB). Overflow triggers the
// slow-consumer policy.
func WithWriteQueue(frames int, bytes int64) Option {
	return func(o *options) {
		if frames > 0 {
			o.queueFrames = frames
		}
		if bytes > 0 {
			o.queueBytes = bytes
		}
	}
}

// WithSlowConsumerPolicy selects the overflow policy (default
// SlowConsumerDisconnect).
func WithSlowConsumerPolicy(p SlowConsumerPolicy) Option {
	return func(o *options) { o.slowPolicy = p }
}

// WithPublishAdmission sets the publish-admission window: readers park
// before routing while more than maxBytes of accepted frames are queued
// server-wide, for at most timeout per batch (then proceed, counted in
// ServerStats.AdmissionTimeouts). maxBytes < 0 disables admission; zero
// values keep the defaults (32 MiB window, 1s timeout).
func WithPublishAdmission(maxBytes int64, timeout time.Duration) Option {
	return func(o *options) {
		if maxBytes < 0 {
			o.admissionBytes = -1
		} else if maxBytes > 0 {
			o.admissionBytes = maxBytes
		}
		if timeout > 0 {
			o.admissionTimeout = timeout
		}
	}
}

// WithLegacyDataPlane selects the PR 7/PR 8 delivery path: per-publish
// routing (no ingest batching), per-delivery copies into a bufio.Writer
// (no writev, no zero-copy), and no publish admission. It exists so
// tests can pin wire byte-identity against the old path and so the fleet
// harness can measure the data-plane overhaul like-for-like in one tree;
// it is not meant for production serving.
func WithLegacyDataPlane() Option {
	return func(o *options) { o.legacy = true }
}

// WithServerID fixes the broker's server ID, the identity used in the
// ROUTE handshake and stamped as the origin tag on every forwarded RMSG.
// IDs must be unique across a mesh and contain no whitespace; the
// default is unique per process+instance.
func WithServerID(id string) Option {
	return func(o *options) {
		if id != "" {
			o.id = id
		}
	}
}

// WithClusterAdvertise sets the address gossiped to peers (RINFO) as
// this broker's route-reachable endpoint. Without it the broker does not
// advertise itself: explicitly configured routes still work, but other
// brokers cannot auto-discover this one.
func WithClusterAdvertise(addr string) Option {
	return func(o *options) { o.clusterAddr = addr }
}

// WithRouteHeartbeat tunes route failure detection: a PING is sent on
// every route each interval, and a route silent for longer than suspect
// is declared dead and torn down (withdrawing the peer's interest).
// Defaults: 500ms interval, 4x interval suspect bound.
func WithRouteHeartbeat(interval, suspect time.Duration) Option {
	return func(o *options) {
		if interval > 0 {
			o.hbInterval = interval
		}
		if suspect > 0 {
			o.hbSuspect = suspect
		}
	}
}

// Server is the broker. Create with NewServer, start with Serve or
// ListenAndServe, stop with Shutdown (abrupt) or DrainShutdown
// (graceful: queued deliveries are flushed first).
type Server struct {
	opts   options
	id     string
	shards []*shard
	stats  counters
	adm    *admission // nil when admission is disabled
	quit   chan struct{}

	// numSubs is the live logical subscription count (a wildcard-first
	// pattern is stored in every shard but counts once).
	numSubs atomic.Int64

	// Federation state (route.go): live routes by peer server ID, the
	// refcounted local interest set propagated to peers, and the set of
	// route targets being dialed. All guarded by fedMu; fedMu is never
	// held together with a shard lock.
	fedMu         sync.Mutex
	routes        map[string]*route
	localInterest map[interestKey]int
	dialing       map[string]bool
	monitorOn     bool

	mu       sync.Mutex
	ln       net.Listener
	routeLns []net.Listener
	clients  map[*serverClient]struct{}
	nextCID  uint64
	shutdown bool
	done     chan struct{}
	doneOnce sync.Once
}

// interestKey identifies one propagated (pattern, queue) interest.
type interestKey struct {
	pattern string
	queue   string
}

// serverSub is one subscription entry in the routing trie: either a
// local client subscription (client set) or a peer broker's propagated
// interest (rt set). Exactly one of client/rt is non-nil.
type serverSub struct {
	client  *serverClient
	rt      *route
	pattern string
	queue   string
	sid     string
}

// serverIDSeq disambiguates default server IDs within one process.
var serverIDSeq atomic.Uint64

// NewServer returns an idle broker.
func NewServer(opts ...Option) *Server {
	o := options{
		shards:           8,
		queueFrames:      defaultQueueFrames,
		queueBytes:       defaultQueueBytes,
		slowPolicy:       SlowConsumerDisconnect,
		admissionBytes:   defaultAdmissionBytes,
		admissionTimeout: defaultAdmissionTimeout,
		clusterAddr:      "-",
		hbInterval:       defaultRouteHeartbeat,
		hbSuspect:        defaultRouteSuspect,
	}
	for _, fn := range opts {
		fn(&o)
	}
	if !o.hasSeed {
		if env := os.Getenv("ADAMANT_BROKER_SEED"); env != "" {
			if v, err := strconv.ParseInt(env, 10, 64); err == nil {
				o.seed = v
				o.hasSeed = true
			}
		}
	}
	if !o.hasSeed {
		o.seed = time.Now().UnixNano()
	}
	if o.id == "" {
		// Unique within the process via the counter, across processes
		// (overwhelmingly) via the clock. WithServerID pins it for tests
		// and multi-host meshes.
		o.id = fmt.Sprintf("s%x.%x", uint64(time.Now().UnixNano())&0xffffffff, serverIDSeq.Add(1))
	}
	if o.clusterAddr == "" {
		o.clusterAddr = "-"
	}
	s := &Server{
		opts:          o,
		id:            o.id,
		shards:        make([]*shard, o.shards),
		clients:       make(map[*serverClient]struct{}),
		routes:        make(map[string]*route),
		localInterest: make(map[interestKey]int),
		dialing:       make(map[string]bool),
		done:          make(chan struct{}),
		quit:          make(chan struct{}),
	}
	if o.admissionBytes > 0 && !o.legacy {
		s.adm = &admission{limit: o.admissionBytes}
	}
	for i := range s.shards {
		s.shards[i] = newShard(o.seed + int64(i))
	}
	return s
}

// ID returns the broker's server ID (the RMSG origin tag).
func (s *Server) ID() string { return s.id }

// ListenAndServe listens on addr ("host:port", ":0" for ephemeral) and
// serves until Shutdown. It returns once the listener is bound; serving
// continues in background goroutines.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("broker: listen %s: %w", addr, err)
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	go s.Serve(ln)
	return nil
}

// ListenRoutes opens a dedicated listener for inter-broker route
// connections (the -cluster-listen port). Routes speak the same framed
// protocol — a connection becomes a route via the ROUTE handshake — so
// this is an isolation knob, not a different stack: client traffic and
// route traffic can be firewalled and provisioned separately.
func (s *Server) ListenRoutes(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("broker: cluster listen %s: %w", addr, err)
	}
	s.mu.Lock()
	if s.shutdown {
		s.mu.Unlock()
		ln.Close()
		return errors.New("broker: server is shut down")
	}
	s.routeLns = append(s.routeLns, ln)
	s.mu.Unlock()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			if s.startClient(conn) == nil {
				return
			}
		}
	}()
	return nil
}

// Addr returns the bound listener address, or nil before ListenAndServe.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// RouteAddr returns the first bound route listener address, or nil when
// routes share the client listener.
func (s *Server) RouteAddr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.routeLns) == 0 {
		return nil
	}
	return s.routeLns[0].Addr()
}

// Serve accepts connections on ln until Shutdown.
func (s *Server) Serve(ln net.Listener) {
	defer s.doneOnce.Do(func() { close(s.done) })
	s.mu.Lock()
	if s.shutdown {
		s.mu.Unlock()
		ln.Close()
		return
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed by Shutdown
		}
		if s.startClient(conn) == nil {
			return
		}
	}
}

// startClient registers conn and spawns its reader and writer
// goroutines. It returns nil when the server is shutting down.
func (s *Server) startClient(conn net.Conn) *serverClient {
	s.mu.Lock()
	if s.shutdown {
		s.mu.Unlock()
		conn.Close()
		return nil
	}
	s.nextCID++
	c := &serverClient{srv: s, id: s.nextCID, subs: make(map[string][]*serverSub)}
	c.link.init(conn, s.opts.queueFrames, s.opts.queueBytes, s.adm)
	s.clients[c] = struct{}{}
	s.mu.Unlock()
	st := &s.stats
	st.write(func() { st.connections.Add(1) })
	go c.run()
	c.startWriter(s.opts.legacy, s.adm)
	return c
}

// Shutdown closes the listeners and every client and route connection.
func (s *Server) Shutdown() {
	conns := s.beginShutdown()
	for _, c := range conns {
		c.Close()
	}
}

// DrainShutdown is the graceful stop: it stops accepting, closes every
// connection's outbound queue so the writer drains and flushes what is
// already queued, and waits up to timeout for the connections to wind
// down before force-closing stragglers. Queued deliveries that had
// already been routed reach their subscribers; a zero timeout degrades
// to Shutdown.
func (s *Server) DrainShutdown(timeout time.Duration) {
	conns := s.beginShutdown()
	if timeout <= 0 {
		for _, c := range conns {
			c.Close()
		}
		return
	}
	s.mu.Lock()
	clients := make([]*serverClient, 0, len(s.clients))
	for c := range s.clients {
		clients = append(clients, c)
	}
	s.mu.Unlock()
	// Closing the queue makes the writer drain the backlog, flush, and
	// close the connection; the reader then unblocks and tears down.
	for _, c := range clients {
		c.out.close()
	}
	deadline := time.Now().Add(timeout)
	for {
		s.mu.Lock()
		n := len(s.clients)
		s.mu.Unlock()
		if n == 0 {
			return
		}
		if time.Now().After(deadline) {
			for _, c := range conns {
				c.Close()
			}
			return
		}
		time.Sleep(time.Millisecond)
	}
}

// beginShutdown flips the shutdown flag, closes the listeners, and
// returns every live connection (clients and routes) without closing
// them — Shutdown and DrainShutdown differ only in what they do next.
func (s *Server) beginShutdown() []net.Conn {
	s.mu.Lock()
	if s.shutdown {
		s.mu.Unlock()
		return nil
	}
	s.shutdown = true
	close(s.quit) // wake parked publishers, route dialers, the monitor
	ln := s.ln
	rlns := s.routeLns
	var conns []net.Conn
	for c := range s.clients {
		conns = append(conns, c.conn)
	}
	s.mu.Unlock()
	s.fedMu.Lock()
	for _, r := range s.routes {
		conns = append(conns, r.ln.conn)
	}
	s.fedMu.Unlock()
	for _, l := range rlns {
		l.Close()
	}
	if ln != nil {
		ln.Close()
		<-s.done
	}
	return conns
}

// Stats returns an internally consistent snapshot of the broker
// counters: the seqlock retry guarantees all fields belong to the same
// update generation (no torn reads across counters mid-publish).
func (s *Server) Stats() ServerStats {
	c := &s.stats
	for {
		s1 := c.seq.Load()
		if s1&1 == 0 {
			snap := ServerStats{
				Connections:             c.connections.Load(),
				MsgsIn:                  c.msgsIn.Load(),
				MsgsOut:                 c.msgsOut.Load(),
				BytesIn:                 c.bytesIn.Load(),
				BytesOut:                c.bytesOut.Load(),
				Subscriptions:           c.subscriptions.Load(),
				SlowConsumerDrops:       c.slowDrops.Load(),
				SlowConsumerDisconnects: c.slowDisconnects.Load(),
				AdmissionWaits:          c.admissionWaits.Load(),
				AdmissionTimeouts:       c.admissionTimeouts.Load(),
				Routes:                  c.routes.Load(),
				RemoteSubs:              c.remoteSubs.Load(),
				RoutedMsgs:              c.routedMsgs.Load(),
				DupsSuppressed:          c.dupsSuppressed.Load(),
			}
			if c.seq.Load() == s1 {
				return snap
			}
		}
		runtime.Gosched()
	}
}

// NumSubscriptions returns the live local subscription count.
func (s *Server) NumSubscriptions() int {
	return int(s.numSubs.Load())
}

// admitPublishes applies publish admission before a batch is routed:
// park (off every lock) while the outstanding-bytes gauge is over the
// window, for at most the configured timeout.
func (s *Server) admitPublishes() {
	a := s.adm
	if a == nil || !a.over() {
		return
	}
	st := &s.stats
	st.write(func() { st.admissionWaits.Add(1) })
	if !a.wait(s.opts.admissionTimeout, s.quit) {
		st.write(func() { st.admissionTimeouts.Add(1) })
	}
}

// pendingPub is one parsed-but-unrouted publish in a reader's ingest
// batch: the subject lives at [off, off+n) in the client's subject
// arena, the payload in a refcounted arena buffer (publisher hold).
type pendingPub struct {
	off, n int
	pb     *payloadRef
}

// fwdEntry is one peer the current message must be forwarded to: plain
// interest, queue-group picks that landed on that peer, or both. One
// RMSG per entry carries it all — the per-peer dedup that makes mesh
// delivery exactly-once.
type fwdEntry struct {
	rt     *route
	queues []string
}

// fwdScratch is a reader goroutine's reusable forwarding accumulator.
// Entries (and their queue-name backing slices) are recycled across
// messages so the forwarding path allocates nothing in steady state.
type fwdScratch struct {
	entries []fwdEntry
	n       int
}

func (f *fwdScratch) reset() {
	for i := 0; i < f.n; i++ {
		f.entries[i].rt = nil
		f.entries[i].queues = f.entries[i].queues[:0]
	}
	f.n = 0
}

// add returns the entry for rt, creating it if this is the first
// delivery decision for that peer in the current message.
func (f *fwdScratch) add(rt *route) *fwdEntry {
	for i := 0; i < f.n; i++ {
		if f.entries[i].rt == rt {
			return &f.entries[i]
		}
	}
	if f.n < len(f.entries) {
		f.entries[f.n].rt = rt
	} else {
		f.entries = append(f.entries, fwdEntry{rt: rt})
	}
	f.n++
	return &f.entries[f.n-1]
}

// addQueue records a queue-group pick for the entry, deduplicating by
// group name (two patterns matching the same group on the same peer
// must not double-deliver).
func (e *fwdEntry) addQueue(name string) {
	for _, q := range e.queues {
		if q == name {
			return
		}
	}
	e.queues = append(e.queues, name)
}

// routeBatch delivers a batch of client publishes in order. Consecutive
// messages on the same shard reuse one lock acquisition, consecutive
// messages on the same subject reuse one match result (valid for the
// whole run because sub/unsub needs the same shard lock we hold), and
// the batch's counter updates collapse into a single seqlock write.
// Queue-group subscriptions receive one copy per group, on a member
// chosen by the shard's seeded rng among local members and peer
// interests alike — the pick that makes queue semantics mesh-wide.
// Matching remote interests collapse into at most one origin-tagged
// RMSG per peer per message (fwdScratch), and forwarded messages are
// delivered only to that peer's local clients (route.go), so a publish
// traverses at most one inter-broker hop and arrives exactly once.
func (s *Server) routeBatch(subjArena []byte, batch []pendingPub, fwd *fwdScratch) {
	var (
		sh      *shard
		shardID = -1
		rs      *routeSet
		subject []byte

		msgsOut, bytesOut, bytesIn uint64
		drops, discs, routed       uint64
	)
	for i := range batch {
		m := &batch[i]
		subj := subjArena[m.off : m.off+m.n]
		idx := shardIndexBytes(subj, len(s.shards))
		if idx != shardID {
			if sh != nil {
				sh.mu.Unlock()
			}
			sh = s.shards[idx]
			sh.mu.Lock()
			shardID = idx
			rs, subject = nil, nil
		}
		if rs == nil || !bytes.Equal(subj, subject) {
			rs = sh.matchBytes(subj)
			subject = subj
		}
		pb := m.pb
		plen := uint64(len(pb.data))
		fwd.reset()
		for _, sub := range rs.plain {
			if sub.rt != nil {
				fwd.add(sub.rt)
				continue
			}
			switch sub.client.sendMsg(subj, sub.sid, pb) {
			case sendOK:
				msgsOut++
				bytesOut += plen
			case sendDrop:
				drops++
			case sendDisconnect:
				discs++
			}
		}
		for _, members := range rs.queues {
			pick := members[sh.rng.Intn(len(members))]
			if pick.rt != nil {
				fwd.add(pick.rt).addQueue(pick.queue)
				continue
			}
			switch pick.client.sendMsg(subj, pick.sid, pb) {
			case sendOK:
				msgsOut++
				bytesOut += plen
			case sendDrop:
				drops++
			case sendDisconnect:
				discs++
			}
		}
		for j := 0; j < fwd.n; j++ {
			e := &fwd.entries[j]
			switch e.rt.sendRMsg(subj, s.id, e.queues, pb) {
			case sendOK:
				routed++
			case sendDisconnect:
				discs++
			}
		}
		bytesIn += plen
		pb.release() // drop the publisher hold
		m.pb = nil
	}
	if sh != nil {
		sh.mu.Unlock()
	}
	st := &s.stats
	n := uint64(len(batch))
	st.write(func() {
		st.msgsIn.Add(n)
		st.bytesIn.Add(bytesIn)
		st.msgsOut.Add(msgsOut)
		st.bytesOut.Add(bytesOut)
		if routed > 0 {
			st.routedMsgs.Add(routed)
		}
		if drops > 0 {
			st.slowDrops.Add(drops)
		}
		if discs > 0 {
			st.slowDisconnects.Add(discs)
		}
	})
}

func (s *Server) addSub(sub *serverSub) {
	c := sub.client
	c.smu.Lock()
	c.subs[sub.sid] = append(c.subs[sub.sid], sub)
	c.smu.Unlock()
	s.eachPatternShard(sub.pattern, func(sh *shard) {
		sh.insert(sub)
	})
	st := &s.stats
	st.write(func() { st.subscriptions.Add(1) })
	s.numSubs.Add(1)
	s.interestAdd(sub.pattern, sub.queue)
}

func (s *Server) removeSub(c *serverClient, sid string) {
	c.smu.Lock()
	subs := c.subs[sid]
	delete(c.subs, sid)
	c.smu.Unlock()
	for _, sub := range subs {
		s.eachPatternShard(sub.pattern, func(sh *shard) {
			sh.remove(sub)
		})
		s.numSubs.Add(-1)
		s.interestDrop(sub.pattern, sub.queue)
	}
}

// eachPatternShard runs fn under the lock of every shard the pattern
// routes through: one for a literal first token, all for a wildcard.
func (s *Server) eachPatternShard(pattern string, fn func(*shard)) {
	if idx := shardIndex(pattern, len(s.shards)); idx >= 0 {
		sh := s.shards[idx]
		sh.mu.Lock()
		fn(sh)
		sh.mu.Unlock()
		return
	}
	for _, sh := range s.shards {
		sh.mu.Lock()
		fn(sh)
		sh.mu.Unlock()
	}
}

// dropClient deregisters c and removes its subscriptions.
func (s *Server) dropClient(c *serverClient) {
	s.mu.Lock()
	delete(s.clients, c)
	s.mu.Unlock()
	s.clearSubs(c)
}

// clearSubs removes every subscription c holds (used on teardown and
// when a connection upgrades to a route, which keeps no client subs).
func (s *Server) clearSubs(c *serverClient) {
	c.smu.Lock()
	all := c.subs
	c.subs = make(map[string][]*serverSub)
	c.smu.Unlock()
	for _, subs := range all {
		for _, sub := range subs {
			s.eachPatternShard(sub.pattern, func(sh *shard) {
				sh.remove(sub)
			})
			s.numSubs.Add(-1)
			s.interestDrop(sub.pattern, sub.queue)
		}
	}
}

type serverClient struct {
	link
	srv *Server
	id  uint64

	// Ingest batch, reader goroutine only: parsed publishes waiting to be
	// routed, their subjects packed into subjArena, and the reusable
	// route-forwarding accumulator.
	pending      []pendingPub
	pendingBytes int
	subjArena    []byte
	fwd          fwdScratch

	smu  sync.Mutex
	subs map[string][]*serverSub // sid -> subs (duplicate sids allowed)
}

func (c *serverClient) run() {
	defer func() {
		// Route fully received publishes before teardown — a pipelined
		// publisher that disconnects right after writing must not lose its
		// tail (same semantics as the PR 7 route-per-publish path).
		c.flushPubs()
		c.srv.dropClient(c)
		// The writer drains queued replies (-ERR, PONG, trailing MSGs),
		// flushes, and closes the connection.
		c.out.close()
	}()
	var fields [8][]byte
	for {
		if len(c.pending) > 0 && !c.completeLineBuffered() {
			// The next read would block (or the buffer holds only a partial
			// line): route what we have instead of sitting on it.
			c.flushPubs()
		}
		line, err := readLineSlice(c.r)
		if err != nil {
			return
		}
		nf := splitFields(line, fields[:0])
		if len(nf) == 0 {
			continue
		}
		cmd := nf[0]
		switch {
		case asciiFold(cmd, "PUB"):
			if err := c.handlePub(nf); err != nil {
				return
			}
		case asciiFold(cmd, "SUB"):
			c.flushPubs() // strict command order: prior PUBs route first
			c.handleSub(nf)
		case asciiFold(cmd, "UNSUB"):
			c.flushPubs()
			if len(nf) != 2 {
				c.sendErr("UNSUB requires <sid>")
				continue
			}
			c.srv.removeSub(c, string(nf[1]))
		case asciiFold(cmd, "PING"):
			// PONG is the client's flush barrier: everything sent before the
			// PING must be fully processed, so route pending publishes first.
			c.flushPubs()
			c.sendLine("PONG")
		case asciiFold(cmd, "CONNECT"):
			// Name is informational only.
		case asciiFold(cmd, "ROUTE"):
			// The peer is another broker: upgrade this connection to a
			// route (route.go). The link — reader position, outbound
			// queue, writer goroutine — carries over; only the command
			// loop changes. acceptRoute returns when the route dies and
			// the deferred client teardown completes the cleanup.
			c.flushPubs()
			c.srv.acceptRoute(c, nf)
			return
		default:
			c.flushPubs()
			c.sendErr("unknown command " + string(cmd))
		}
	}
}

// flushPubs routes the client's pending ingest batch (admission first)
// and resets the batch buffers.
func (c *serverClient) flushPubs() {
	if len(c.pending) == 0 {
		return
	}
	c.srv.admitPublishes()
	c.srv.routeBatch(c.subjArena, c.pending, &c.fwd)
	for i := range c.pending {
		c.pending[i].pb = nil
	}
	c.pending = c.pending[:0]
	c.pendingBytes = 0
	c.subjArena = c.subjArena[:0]
}

func (c *serverClient) handleSub(fields [][]byte) {
	var pattern, queue, sid string
	switch len(fields) {
	case 3:
		pattern, sid = string(fields[1]), string(fields[2])
	case 4:
		pattern, queue, sid = string(fields[1]), string(fields[2]), string(fields[3])
	default:
		c.sendErr("SUB requires <subject> [queue] <sid>")
		return
	}
	if err := ValidatePattern(pattern); err != nil {
		c.sendErr(err.Error())
		return
	}
	c.srv.addSub(&serverSub{client: c, pattern: pattern, queue: queue, sid: sid})
}

// handlePub parses one publish into the client's ingest batch. The batch
// is routed when it hits its size bounds, when the socket has nothing
// more buffered (see run), or — to preserve command order — before any
// non-PUB command. A returned error tears the connection down (the
// stream is unframeable).
func (c *serverClient) handlePub(fields [][]byte) error {
	if len(fields) != 3 {
		c.flushPubs() // error replies keep command order, like any non-PUB
		c.sendErr("PUB requires <subject> <nbytes>")
		return nil
	}
	n, ok := parseSize(fields[2])
	if !ok {
		c.flushPubs()
		c.sendErr("bad payload size")
		return errors.New("broker: bad payload size")
	}
	if len(c.pending) > 0 && c.r.Buffered() < n+2 {
		// The payload read below will block on the socket; route what we
		// already have first so batching never delays delivery.
		c.flushPubs()
	}
	// The subject slice borrows the reader's buffer, which the payload
	// read below may refill — pack it into the batch's subject arena
	// first.
	subjOff := len(c.subjArena)
	c.subjArena = append(c.subjArena, fields[1]...)
	pb, err := c.readPayload(n)
	if err != nil {
		c.subjArena = c.subjArena[:subjOff]
		return err
	}
	subject := c.subjArena[subjOff:]
	if !validSubjectBytes(subject) {
		pb.release()
		bad := string(subject)
		c.subjArena = c.subjArena[:subjOff]
		c.flushPubs()
		if err := ValidateSubject(bad); err != nil {
			c.sendErr(err.Error())
		} else {
			c.sendErr("invalid subject")
		}
		return nil
	}
	c.pending = append(c.pending, pendingPub{off: subjOff, n: len(subject), pb: pb})
	c.pendingBytes += n
	if len(c.pending) >= maxIngestBatch || c.pendingBytes >= maxIngestBytes || c.srv.opts.legacy {
		c.flushPubs()
	}
	return nil
}

// sendResult is the outcome of offering one delivery to a connection.
type sendResult int

const (
	sendOK sendResult = iota
	sendClosed
	sendDrop
	sendDisconnect
)

// sendMsg enqueues one delivery on the client's link; see link.enqueueMsg
// for the reference discipline.
func (c *serverClient) sendMsg(subject []byte, sid string, pb *payloadRef) sendResult {
	return c.enqueueMsg(encodeMsgHeader(subject, sid, len(pb.data)), pb, c.srv.opts.slowPolicy)
}

// validSubjectBytes is the allocation-free publish-subject check:
// non-empty dot tokens, no wildcards. (Whitespace cannot appear — the
// field splitter already consumed it.)
func validSubjectBytes(b []byte) bool {
	if len(b) == 0 {
		return false
	}
	prev := byte('.')
	for _, ch := range b {
		switch ch {
		case '.':
			if prev == '.' {
				return false
			}
		case '*', '>':
			return false
		}
		prev = ch
	}
	return prev != '.'
}
