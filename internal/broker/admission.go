package broker

import (
	"sync"
	"sync/atomic"
	"time"
)

// Publish admission is the broker's backpressure valve. Every accepted
// outbound frame adds its wire size to a server-wide gauge when it is
// enqueued and removes it when its bytes are written to a socket (or the
// frame is discarded with a dying connection). Before a reader goroutine
// routes a batch of publishes it waits, off every lock, until the gauge
// is below the configured window — so an unpaced publisher is paced by
// the drain rate of the fan-out instead of inflating half-second queues
// inside the broker (the PR 7 failure mode the fleet harness measured as
// "latency"). Because the wait happens on the publisher's own reader
// goroutine, the publisher's TCP socket fills and the backpressure
// propagates all the way to the remote writer.
//
// The wait is bounded: a pathological consumer can pin queued bytes
// without draining them (e.g. a stalled peer under SlowConsumerDrop
// whose queue bound exceeds the admission window), and blocking
// publishers forever on it would hand one broken subscriber a veto over
// the whole bus. On timeout the publish proceeds anyway — the per-client
// queue bounds and slow-consumer policies remain the backstop — and the
// timeout is counted in ServerStats.AdmissionTimeouts.

// Admission defaults: the window bounds bytes queued inside the broker
// (32 MiB is one default client write queue), the timeout bounds how
// long a publisher can be parked on a gauge that is not draining.
const (
	defaultAdmissionBytes   = 32 << 20
	defaultAdmissionTimeout = time.Second
)

// admission is the shared gauge plus the wake channel for parked
// publishers.
type admission struct {
	limit int64
	cur   atomic.Int64

	mu   sync.Mutex
	wake chan struct{} // non-nil while publishers are parked; closed on drain
}

// add records bytes entering the pipeline (enqueue of an accepted frame).
func (a *admission) add(n int64) {
	a.cur.Add(n)
}

// done records bytes leaving the pipeline (written or discarded) and
// wakes parked publishers once the gauge falls back under the window.
func (a *admission) done(n int64) {
	if a.cur.Add(-n) >= a.limit {
		return
	}
	a.mu.Lock()
	if a.wake != nil {
		close(a.wake)
		a.wake = nil
	}
	a.mu.Unlock()
}

// over reports whether the gauge is at or above the window.
func (a *admission) over() bool {
	return a.cur.Load() >= a.limit
}

// wait parks the caller until the gauge is under the window, the timeout
// expires, or quit closes. It reports false on timeout.
func (a *admission) wait(timeout time.Duration, quit <-chan struct{}) bool {
	deadline := time.Now().Add(timeout)
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	for {
		a.mu.Lock()
		if !a.over() {
			a.mu.Unlock()
			return true
		}
		ch := a.wake
		if ch == nil {
			ch = make(chan struct{})
			a.wake = ch
		}
		a.mu.Unlock()
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		d := time.Until(deadline)
		if d <= 0 {
			return false
		}
		timer.Reset(d)
		select {
		case <-ch:
		case <-timer.C:
			return false
		case <-quit:
			return true // shutting down; let the reader run to its exit
		}
	}
}
