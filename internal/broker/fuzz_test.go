package broker

import (
	"bytes"
	"net"
	"testing"
	"time"
)

// FuzzMatch asserts subject matching is total and that exact subjects
// always match themselves when valid.
func FuzzMatch(f *testing.F) {
	f.Add("a.b.c", "a.*.c")
	f.Add("x", ">")
	f.Add("", "")
	f.Fuzz(func(t *testing.T, subject, pattern string) {
		_ = Match(subject, pattern) // must not panic
		if ValidateSubject(subject) == nil && !Match(subject, subject) {
			t.Fatalf("valid subject %q does not match itself", subject)
		}
	})
}

// FuzzServerCommand feeds arbitrary bytes to a live server's control-line
// parser over an in-memory connection: SUB/UNSUB/PUB/PING framing,
// oversize and truncated payloads, interleaved garbage. The server must
// neither panic nor wedge — every iteration has to reach clean teardown.
func FuzzServerCommand(f *testing.F) {
	f.Add([]byte("CONNECT x\r\nSUB a.b 1\r\nPUB a.b 2\r\nhi\r\nPING\r\n"))
	f.Add([]byte("SUB jobs.* workers 7\r\nPUB jobs.detect 9\r\npayload-x\r\nUNSUB 7\r\n"))
	f.Add([]byte("PUB a 1048577\r\n"))                 // oversize payload
	f.Add([]byte("PUB a notanumber\r\n"))              // unframeable size
	f.Add([]byte("PUB a 10\r\nshort"))                 // truncated payload
	f.Add([]byte("PUB wild.* 2\r\nhi\r\n"))            // wildcard publish
	f.Add([]byte("SUB a.>.b 1\r\nUNSUB\r\nBOGUS\r\n")) // bad pattern + arity
	f.Add([]byte("pub a 1\r\nx\r\nping\r\n"))          // lower-case commands
	f.Add([]byte("\r\n\r\n  \t \r\nPING\r\n"))
	f.Add([]byte("PUB a 3\r\nxy"))
	// Batched-ingest framing (PR 9): multiple pipelined PUBs in one
	// segment, batches split by interleaved control commands, a zero-byte
	// payload inside a batch, and a batch whose tail is truncated
	// mid-payload (flush-before-blocking path).
	f.Add([]byte("SUB b 1\r\nPUB b 2\r\nhi\r\nPUB b 3\r\nabc\r\nPUB b 0\r\n\r\nPING\r\n"))
	f.Add([]byte("PUB a 1\r\nx\r\nPUB a 1\r\ny\r\nSUB a 9\r\nPUB a 1\r\nz\r\nUNSUB 9\r\n"))
	f.Add([]byte("PUB a 1\r\nx\r\nPUB a 5\r\nab"))
	f.Add([]byte("PUB a 2\r\nok\r\nPUB .bad. 1\r\nq\r\nPUB a 2\r\nok\r\n"))
	f.Add(append(append([]byte("PUB big 2000\r\n"), bytes.Repeat([]byte{'z'}, 2000)...), []byte("\r\nPUB a 1\r\nw\r\nPING\r\n")...))
	f.Fuzz(func(t *testing.T, data []byte) {
		srv := NewServer(WithSeed(1), WithShards(2), WithWriteQueue(64, 1<<20))
		defer srv.Shutdown()
		server, client := net.Pipe()
		if srv.startClient(server) == nil {
			t.Fatal("startClient refused pipe")
		}
		drained := make(chan struct{})
		go func() {
			defer close(drained)
			buf := make([]byte, 4096)
			for {
				if _, err := client.Read(buf); err != nil {
					return
				}
			}
		}()
		// The server may stop reading mid-write (it drops the connection
		// on unframeable input); the deadline keeps the pipe write from
		// wedging the fuzzer.
		client.SetWriteDeadline(time.Now().Add(2 * time.Second))
		_, _ = client.Write(data)
		client.Close()
		select {
		case <-drained:
		case <-time.After(5 * time.Second):
			t.Fatal("server never closed the connection")
		}
	})
}

// FuzzValidatePattern asserts validation is total and consistent: every
// valid publish subject is also a valid subscription pattern.
func FuzzValidatePattern(f *testing.F) {
	f.Add("a.b")
	f.Add("a.>")
	f.Add("*.*")
	f.Fuzz(func(t *testing.T, s string) {
		subErr := ValidateSubject(s)
		patErr := ValidatePattern(s)
		if subErr == nil && patErr != nil {
			t.Fatalf("%q is a valid subject but invalid pattern: %v", s, patErr)
		}
	})
}
