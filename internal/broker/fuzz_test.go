package broker

import "testing"

// FuzzMatch asserts subject matching is total and that exact subjects
// always match themselves when valid.
func FuzzMatch(f *testing.F) {
	f.Add("a.b.c", "a.*.c")
	f.Add("x", ">")
	f.Add("", "")
	f.Fuzz(func(t *testing.T, subject, pattern string) {
		_ = Match(subject, pattern) // must not panic
		if ValidateSubject(subject) == nil && !Match(subject, subject) {
			t.Fatalf("valid subject %q does not match itself", subject)
		}
	})
}

// FuzzValidatePattern asserts validation is total and consistent: every
// valid publish subject is also a valid subscription pattern.
func FuzzValidatePattern(f *testing.F) {
	f.Add("a.b")
	f.Add("a.>")
	f.Add("*.*")
	f.Fuzz(func(t *testing.T, s string) {
		subErr := ValidateSubject(s)
		patErr := ValidatePattern(s)
		if subErr == nil && patErr != nil {
			t.Fatalf("%q is a valid subject but invalid pattern: %v", s, patErr)
		}
	})
}
