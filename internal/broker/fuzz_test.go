package broker

import (
	"bytes"
	"net"
	"testing"
	"time"
)

// FuzzMatch asserts subject matching is total and that exact subjects
// always match themselves when valid.
func FuzzMatch(f *testing.F) {
	f.Add("a.b.c", "a.*.c")
	f.Add("x", ">")
	f.Add("", "")
	f.Fuzz(func(t *testing.T, subject, pattern string) {
		_ = Match(subject, pattern) // must not panic
		if ValidateSubject(subject) == nil && !Match(subject, subject) {
			t.Fatalf("valid subject %q does not match itself", subject)
		}
	})
}

// FuzzServerCommand feeds arbitrary bytes to a live server's control-line
// parser over an in-memory connection: SUB/UNSUB/PUB/PING framing,
// oversize and truncated payloads, interleaved garbage. The server must
// neither panic nor wedge — every iteration has to reach clean teardown.
func FuzzServerCommand(f *testing.F) {
	f.Add([]byte("CONNECT x\r\nSUB a.b 1\r\nPUB a.b 2\r\nhi\r\nPING\r\n"))
	f.Add([]byte("SUB jobs.* workers 7\r\nPUB jobs.detect 9\r\npayload-x\r\nUNSUB 7\r\n"))
	f.Add([]byte("PUB a 1048577\r\n"))                 // oversize payload
	f.Add([]byte("PUB a notanumber\r\n"))              // unframeable size
	f.Add([]byte("PUB a 10\r\nshort"))                 // truncated payload
	f.Add([]byte("PUB wild.* 2\r\nhi\r\n"))            // wildcard publish
	f.Add([]byte("SUB a.>.b 1\r\nUNSUB\r\nBOGUS\r\n")) // bad pattern + arity
	f.Add([]byte("pub a 1\r\nx\r\nping\r\n"))          // lower-case commands
	f.Add([]byte("\r\n\r\n  \t \r\nPING\r\n"))
	f.Add([]byte("PUB a 3\r\nxy"))
	// Batched-ingest framing (PR 9): multiple pipelined PUBs in one
	// segment, batches split by interleaved control commands, a zero-byte
	// payload inside a batch, and a batch whose tail is truncated
	// mid-payload (flush-before-blocking path).
	f.Add([]byte("SUB b 1\r\nPUB b 2\r\nhi\r\nPUB b 3\r\nabc\r\nPUB b 0\r\n\r\nPING\r\n"))
	f.Add([]byte("PUB a 1\r\nx\r\nPUB a 1\r\ny\r\nSUB a 9\r\nPUB a 1\r\nz\r\nUNSUB 9\r\n"))
	f.Add([]byte("PUB a 1\r\nx\r\nPUB a 5\r\nab"))
	f.Add([]byte("PUB a 2\r\nok\r\nPUB .bad. 1\r\nq\r\nPUB a 2\r\nok\r\n"))
	f.Add(append(append([]byte("PUB big 2000\r\n"), bytes.Repeat([]byte{'z'}, 2000)...), []byte("\r\nPUB a 1\r\nw\r\nPING\r\n")...))
	f.Fuzz(func(t *testing.T, data []byte) {
		srv := NewServer(WithSeed(1), WithShards(2), WithWriteQueue(64, 1<<20))
		defer srv.Shutdown()
		server, client := net.Pipe()
		if srv.startClient(server) == nil {
			t.Fatal("startClient refused pipe")
		}
		drained := make(chan struct{})
		go func() {
			defer close(drained)
			buf := make([]byte, 4096)
			for {
				if _, err := client.Read(buf); err != nil {
					return
				}
			}
		}()
		// The server may stop reading mid-write (it drops the connection
		// on unframeable input); the deadline keeps the pipe write from
		// wedging the fuzzer.
		client.SetWriteDeadline(time.Now().Add(2 * time.Second))
		_, _ = client.Write(data)
		client.Close()
		select {
		case <-drained:
		case <-time.After(5 * time.Second):
			t.Fatal("server never closed the connection")
		}
	})
}

// FuzzRouteCommand feeds arbitrary bytes to the inter-broker protocol
// parser: a connection that upgrades via ROUTE and then speaks
// RS+/RS-/RMSG/RINFO/PING, including malformed handshakes, truncated
// origin-tagged payloads, self-origin frames (dedup suppression), and
// interest churn. The server must neither panic nor wedge, and teardown
// must withdraw whatever interest the fuzzed peer installed.
func FuzzRouteCommand(f *testing.F) {
	f.Add([]byte("ROUTE peer1 -\r\nRS+ a.b\r\nRMSG a.b peer1 2\r\nhi\r\nRS- a.b\r\nPING\r\n"))
	f.Add([]byte("ROUTE peer1 127.0.0.1:0\r\nRINFO peer2 127.0.0.1:1\r\nPONG\r\n"))
	f.Add([]byte("ROUTE fuzz -\r\nRS+ jobs.* workers\r\nRMSG jobs.x fuzz 3 workers\r\nabc\r\n"))
	f.Add([]byte("ROUTE fuzz -\r\nRMSG a fuzz notanumber\r\n"))                            // unframeable size
	f.Add([]byte("ROUTE fuzz -\r\nRMSG a fuzz 10\r\nshort"))                               // truncated payload
	f.Add([]byte("ROUTE fuzz -\r\nRMSG .bad. fuzz 1\r\nq\r\nPING\r\n"))                    // invalid subject
	f.Add([]byte("ROUTE srv-under-test -\r\nRMSG a srv-under-test 1\r\nx\r\n"))            // self-origin echo
	f.Add([]byte("ROUTE fuzz -\r\nROUTE fuzz2 -\r\nRS+ a\r\nRS+ a\r\nRS- a\r\nRS- a\r\n")) // dup handshake + idempotence
	f.Add([]byte("ROUTE\r\n"))                                                             // malformed handshake
	f.Add([]byte("SUB a 1\r\nROUTE fuzz -\r\nRS+ a\r\n"))                                  // client subs then upgrade
	f.Add([]byte("route fuzz -\r\nrs+ a.>\r\nrmsg a.x fuzz 0\r\n\r\nBOGUS\r\n"))
	f.Add([]byte("ROUTE fuzz -\r\nRS+ a..b\r\nRS+\r\nRMSG a fuzz\r\n")) // bad pattern + arity
	f.Fuzz(func(t *testing.T, data []byte) {
		srv := NewServer(WithSeed(1), WithShards(2), WithWriteQueue(64, 1<<20),
			WithServerID("srv-under-test"))
		defer srv.Shutdown()
		server, client := net.Pipe()
		if srv.startClient(server) == nil {
			t.Fatal("startClient refused pipe")
		}
		drained := make(chan struct{})
		go func() {
			defer close(drained)
			buf := make([]byte, 4096)
			for {
				if _, err := client.Read(buf); err != nil {
					return
				}
			}
		}()
		client.SetWriteDeadline(time.Now().Add(2 * time.Second))
		_, _ = client.Write(data)
		client.Close()
		select {
		case <-drained:
		case <-time.After(5 * time.Second):
			t.Fatal("server never closed the route connection")
		}
		// Teardown must leave no trace of the fuzzed peer: its interest
		// withdrawn and the route deregistered.
		deadline := time.Now().Add(5 * time.Second)
		for {
			st := srv.Stats()
			if st.Routes == 0 && st.RemoteSubs == 0 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("fuzzed route left state behind: %d routes, %d remote subs",
					st.Routes, st.RemoteSubs)
			}
			time.Sleep(time.Millisecond)
		}
	})
}

// FuzzValidatePattern asserts validation is total and consistent: every
// valid publish subject is also a valid subscription pattern.
func FuzzValidatePattern(f *testing.F) {
	f.Add("a.b")
	f.Add("a.>")
	f.Add("*.*")
	f.Fuzz(func(t *testing.T, s string) {
		subErr := ValidateSubject(s)
		patErr := ValidatePattern(s)
		if subErr == nil && patErr != nil {
			t.Fatalf("%q is a valid subject but invalid pattern: %v", s, patErr)
		}
	})
}
