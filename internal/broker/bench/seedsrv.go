// Package bench pairs the current broker against a faithful copy of the
// seed broker (pre-sharding, pre-coalescing) on the same real-socket
// fan-out workload, so BENCH_broker.json's speedup column is
// like-for-like — the same role the boxed-heap baseline plays for the
// sim kernel in internal/sim/bench.
package bench

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"strconv"
	"strings"
	"sync"

	"adamant/internal/broker"
)

// seedServer is the seed broker's data path, kept verbatim in spirit:
// one global mutex over clients/subs/rng, a linear Match scan over every
// subscription per publish, and three unbuffered conn.Writes per
// delivery under a per-client lock. Protocol handling is trimmed to the
// commands the harness drives (CONNECT/SUB/PUB/PING).
type seedServer struct {
	mu      sync.Mutex
	ln      net.Listener
	clients map[*seedClient]struct{}
	subs    map[*seedSub]struct{}
	rng     *rand.Rand
	done    chan struct{}
	closed  bool
}

type seedSub struct {
	client  *seedClient
	pattern string
	queue   string
	sid     string
}

type seedClient struct {
	srv  *seedServer
	conn net.Conn
	wmu  sync.Mutex
}

func newSeedServer() *seedServer {
	return &seedServer{
		clients: make(map[*seedClient]struct{}),
		subs:    make(map[*seedSub]struct{}),
		rng:     rand.New(rand.NewSource(1)),
		done:    make(chan struct{}),
	}
}

func (s *seedServer) listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	go func() {
		defer close(s.done)
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			s.mu.Lock()
			if s.closed {
				s.mu.Unlock()
				conn.Close()
				return
			}
			c := &seedClient{srv: s, conn: conn}
			s.clients[c] = struct{}{}
			s.mu.Unlock()
			go c.run()
		}
	}()
	return nil
}

func (s *seedServer) addr() string { return s.ln.Addr().String() }

func (s *seedServer) shutdown() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	var conns []net.Conn
	for c := range s.clients {
		conns = append(conns, c.conn)
	}
	s.mu.Unlock()
	s.ln.Close()
	<-s.done
	for _, c := range conns {
		c.Close()
	}
}

// route is the seed hot path: linear scan + per-delivery triple write.
func (s *seedServer) route(subject string, payload []byte) {
	s.mu.Lock()
	var direct []*seedSub
	queues := make(map[string][]*seedSub)
	for sub := range s.subs {
		if !broker.Match(subject, sub.pattern) {
			continue
		}
		if sub.queue == "" {
			direct = append(direct, sub)
		} else {
			key := sub.queue + " " + sub.pattern
			queues[key] = append(queues[key], sub)
		}
	}
	for _, members := range queues {
		direct = append(direct, members[s.rng.Intn(len(members))])
	}
	s.mu.Unlock()
	for _, sub := range direct {
		sub.client.sendMsg(subject, sub.sid, payload)
	}
}

func (c *seedClient) sendMsg(subject, sid string, payload []byte) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	fmt.Fprintf(c.conn, "MSG %s %s %d\r\n", subject, sid, len(payload))
	c.conn.Write(payload)
	io.WriteString(c.conn, "\r\n")
}

func (c *seedClient) sendLine(line string) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	io.WriteString(c.conn, line+"\r\n")
}

func (c *seedClient) run() {
	defer func() {
		c.conn.Close()
		c.srv.mu.Lock()
		delete(c.srv.clients, c)
		for sub := range c.srv.subs {
			if sub.client == c {
				delete(c.srv.subs, sub)
			}
		}
		c.srv.mu.Unlock()
	}()
	r := bufio.NewReaderSize(c.conn, 64*1024)
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return
		}
		fields := strings.Fields(strings.TrimRight(line, "\r\n"))
		if len(fields) == 0 {
			continue
		}
		switch strings.ToUpper(fields[0]) {
		case "CONNECT":
		case "PING":
			c.sendLine("PONG")
		case "SUB":
			var pattern, queue, sid string
			switch len(fields) {
			case 3:
				pattern, sid = fields[1], fields[2]
			case 4:
				pattern, queue, sid = fields[1], fields[2], fields[3]
			default:
				continue
			}
			sub := &seedSub{client: c, pattern: pattern, queue: queue, sid: sid}
			c.srv.mu.Lock()
			c.srv.subs[sub] = struct{}{}
			c.srv.mu.Unlock()
		case "PUB":
			if len(fields) != 3 {
				continue
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil || n < 0 || n > broker.MaxPayload {
				return
			}
			payload := make([]byte, n)
			if _, err := io.ReadFull(r, payload); err != nil {
				return
			}
			if err := seedConsumeCRLF(r); err != nil {
				return
			}
			c.srv.route(fields[1], payload)
		}
	}
}

func seedConsumeCRLF(r *bufio.Reader) error {
	b, err := r.ReadByte()
	if err != nil {
		return err
	}
	if b == '\r' {
		if b, err = r.ReadByte(); err != nil {
			return err
		}
	}
	if b != '\n' {
		return errors.New("payload not terminated by CRLF")
	}
	return nil
}
