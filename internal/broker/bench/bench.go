package bench

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strconv"
	"sync/atomic"
	"time"

	"adamant/internal/broker"
)

// Result is one measured fan-out run against a broker.
type Result struct {
	Msgs             int     `json:"msgs"`
	Deliveries       uint64  `json:"deliveries"`
	Seconds          float64 `json:"seconds"`
	MsgsPerSec       float64 `json:"msgs_per_sec"`
	DeliveriesPerSec float64 `json:"deliveries_per_sec"`
	NsPerDelivery    float64 `json:"ns_per_delivery"`
}

// Comparison pairs the current broker against the seed broker on an
// identical workload: Subs subscriptions spread over Subjects subjects
// and Conns TCP connections, Msgs publishes round-robin across the
// subjects.
type Comparison struct {
	Subs         int     `json:"subs"`
	Subjects     int     `json:"subjects"`
	Conns        int     `json:"conns"`
	Msgs         int     `json:"msgs"`
	PayloadBytes int     `json:"payload_bytes"`
	Current      Result  `json:"current"`
	Seed         Result  `json:"seed"`
	Speedup      float64 `json:"speedup"`
}

// CompareFanout measures routing+delivery throughput on the current
// broker and on the seed baseline with the same driver and returns the
// like-for-like speedup. subs must divide evenly across subjects.
func CompareFanout(subs, subjects, conns, msgs, payload int) (Comparison, error) {
	if subjects <= 0 || subs%subjects != 0 {
		return Comparison{}, fmt.Errorf("subs (%d) must divide evenly over subjects (%d)", subs, subjects)
	}
	cmp := Comparison{Subs: subs, Subjects: subjects, Conns: conns, Msgs: msgs, PayloadBytes: payload}

	srv := broker.NewServer(broker.WithSeed(1))
	if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
		return cmp, err
	}
	cur, err := driveFanout(srv.Addr().String(), subs, subjects, conns, msgs, payload)
	srv.Shutdown()
	if err != nil {
		return cmp, fmt.Errorf("current broker: %w", err)
	}
	cmp.Current = cur

	seed := newSeedServer()
	if err := seed.listen("127.0.0.1:0"); err != nil {
		return cmp, err
	}
	old, err := driveFanout(seed.addr(), subs, subjects, conns, msgs, payload)
	seed.shutdown()
	if err != nil {
		return cmp, fmt.Errorf("seed broker: %w", err)
	}
	cmp.Seed = old

	if old.DeliveriesPerSec > 0 {
		cmp.Speedup = cur.DeliveriesPerSec / old.DeliveriesPerSec
	}
	return cmp, nil
}

// currentFanout measures just the current broker on the comparison
// workload (used by the Go benchmarks).
func currentFanout(subs, subjects, conns, msgs, payload int) (Result, error) {
	srv := broker.NewServer(broker.WithSeed(1))
	if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
		return Result{}, err
	}
	defer srv.Shutdown()
	return driveFanout(srv.Addr().String(), subs, subjects, conns, msgs, payload)
}

// driveFanout runs the workload against any broker speaking the wire
// protocol at addr and times first-publish -> last-delivery.
func driveFanout(addr string, subs, subjects, conns, msgs, payload int) (Result, error) {
	var res Result
	res.Msgs = msgs

	var delivered atomic.Uint64
	subscribers := make([]net.Conn, conns)
	pongs := make([]chan struct{}, conns)
	for i := range subscribers {
		conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
		if err != nil {
			return res, err
		}
		defer conn.Close()
		subscribers[i] = conn
		pongs[i] = make(chan struct{}, 1)
		go countDeliveries(conn, &delivered, pongs[i])
	}

	// Spread the subscriptions: sub j lives on conn j%conns and matches
	// subject "bench.s<j%subjects>".
	for i, conn := range subscribers {
		w := bufio.NewWriterSize(conn, 64*1024)
		for j := i; j < subs; j += conns {
			w.WriteString("SUB bench.s" + strconv.Itoa(j%subjects) + " " + strconv.Itoa(j) + "\r\n")
		}
		if err := w.Flush(); err != nil {
			return res, err
		}
	}
	// PING/PONG barrier so every SUB is processed before timing starts
	// (the reader goroutine forwards the PONG).
	for i, conn := range subscribers {
		if _, err := conn.Write([]byte("PING\r\n")); err != nil {
			return res, err
		}
		select {
		case <-pongs[i]:
		case <-time.After(30 * time.Second):
			return res, fmt.Errorf("conn %d: no PONG after subscribe", i)
		}
	}

	pub, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return res, err
	}
	defer pub.Close()

	perSubject := subs / subjects
	expected := uint64(msgs) * uint64(perSubject)
	body := make([]byte, payload)
	scratch := make([]byte, 0, payload+64)
	pw := bufio.NewWriterSize(pub, 64*1024)

	start := time.Now()
	for i := 0; i < msgs; i++ {
		scratch = scratch[:0]
		scratch = append(scratch, "PUB bench.s"...)
		scratch = strconv.AppendInt(scratch, int64(i%subjects), 10)
		scratch = append(scratch, ' ')
		scratch = strconv.AppendInt(scratch, int64(payload), 10)
		scratch = append(scratch, '\r', '\n')
		scratch = append(scratch, body...)
		scratch = append(scratch, '\r', '\n')
		if _, err := pw.Write(scratch); err != nil {
			return res, err
		}
	}
	if err := pw.Flush(); err != nil {
		return res, err
	}
	deadline := time.Now().Add(120 * time.Second)
	for delivered.Load() < expected {
		if time.Now().After(deadline) {
			return res, fmt.Errorf("timeout: %d of %d deliveries", delivered.Load(), expected)
		}
		time.Sleep(time.Millisecond)
	}
	res.Seconds = time.Since(start).Seconds()
	res.Deliveries = expected
	res.MsgsPerSec = float64(msgs) / res.Seconds
	res.DeliveriesPerSec = float64(expected) / res.Seconds
	res.NsPerDelivery = res.Seconds * 1e9 / float64(expected)
	return res, nil
}

// countDeliveries parses MSG frames off conn, bumping n per message and
// forwarding PONGs to the setup barrier.
func countDeliveries(conn net.Conn, n *atomic.Uint64, pong chan<- struct{}) {
	r := bufio.NewReaderSize(conn, 256*1024)
	var skip []byte
	for {
		line, err := r.ReadSlice('\n')
		if err != nil {
			return
		}
		if len(line) >= 4 && line[0] == 'P' && line[1] == 'O' {
			select {
			case pong <- struct{}{}:
			default:
			}
			continue
		}
		if len(line) < 4 || line[0] != 'M' || line[1] != 'S' || line[2] != 'G' {
			continue
		}
		// Last space-separated field is the payload size.
		sz := 0
		for i := len(line) - 2; i >= 0; i-- {
			if line[i] == ' ' {
				sz, _ = strconv.Atoi(string(line[i+1 : len(line)-2]))
				break
			}
		}
		if cap(skip) < sz+2 {
			skip = make([]byte, sz+2)
		}
		if _, err := io.ReadFull(r, skip[:sz+2]); err != nil {
			return
		}
		n.Add(1)
	}
}
