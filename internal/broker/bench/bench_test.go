package bench

import (
	"testing"
)

// TestFanoutSpeedup is the acceptance pin: at 10k subscriptions the
// rebuilt broker must clear 2x the seed broker's routing+delivery
// throughput. The margin in practice is much larger (trie+cache lookup
// vs a 10k-entry Match scan per publish, coalesced writes vs three
// syscalls per delivery), so 2x holds even on a loaded CI box.
func TestFanoutSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("fan-out comparison is seconds-long; skipped in -short")
	}
	cmp, err := CompareFanout(10_000, 100, 20, 100, 128)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("current %.0f deliveries/s, seed %.0f deliveries/s, speedup %.2fx",
		cmp.Current.DeliveriesPerSec, cmp.Seed.DeliveriesPerSec, cmp.Speedup)
	if cmp.Speedup < 2 {
		t.Errorf("speedup %.2fx over seed broker, want >= 2x", cmp.Speedup)
	}
}

// TestCompareFanoutSmall keeps the driver itself honest at a size that
// runs in milliseconds (both brokers must deliver exactly the expected
// fan-out).
func TestCompareFanoutSmall(t *testing.T) {
	cmp, err := CompareFanout(60, 6, 4, 30, 32)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Current.Deliveries != 300 || cmp.Seed.Deliveries != 300 {
		t.Errorf("deliveries current=%d seed=%d, want 300", cmp.Current.Deliveries, cmp.Seed.Deliveries)
	}
}

// BenchmarkFanout10k measures the current broker alone: b.N publishes
// into a 10k-subscription table (100 subscribers per subject).
func BenchmarkFanout10k(b *testing.B) {
	res, err := currentFanout(10_000, 100, 20, max(b.N, 10), 128)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.DeliveriesPerSec, "deliveries/s")
	b.ReportMetric(res.NsPerDelivery, "ns/delivery")
}
