package broker

import (
	"bytes"
	"encoding/binary"
	"io"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// The data-plane battery pins the PR 9 overhaul: the vectored writer
// must be byte-identical on the wire to the legacy bufio path, the
// refcounted arena must survive release/disconnect races, the hot path
// must stay allocation-free per delivery, publish admission must park
// and (when pinned) time out as documented, and Stats snapshots must be
// torn-read-free.

// wireScript is the publish sequence for the byte-identity test: sizes
// straddle every writer-path boundary — empty, tiny, one under and over
// zeroCopyMin (1024), mid-size, and larger than the 64 KiB coalesce
// buffer — and the subjects alternate so batched routing crosses
// route-set memoization.
var wireScript = []struct {
	subject string
	size    int
}{
	{"wire.a", 0},
	{"wire.a", 1},
	{"wire.b", 512},
	{"wire.a", 1023},
	{"wire.a", 1024},
	{"wire.b", 1025},
	{"wire.a", 4096},
	{"wire.b", 70000},
	{"wire.a", 17},
	{"wire.a", 2048},
}

// scriptPayload fills deterministic, position-dependent bytes so any
// cross-frame corruption (wrong arena buffer, bad iovec split) changes
// the stream.
func scriptPayload(i, size int) []byte {
	p := make([]byte, size)
	for j := range p {
		p[j] = byte(i*131 + j*7)
	}
	return p
}

// captureWireStream runs the script against a server on the given data
// plane and returns the exact bytes the subscriber's socket received.
func captureWireStream(t *testing.T, legacy bool) []byte {
	t.Helper()
	opts := []Option{WithSeed(7)}
	if legacy {
		opts = append(opts, WithLegacyDataPlane())
	}
	srv := NewServer(opts...)
	if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()
	addr := srv.Addr().String()

	sub, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	mustWrite(t, sub, "SUB wire.> 1\r\n")
	waitSubs(t, srv, 1)

	pub, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	// First half goes out as one pipelined burst (exercises batched
	// ingest), the rest one frame at a time (exercises the
	// flush-before-blocking path).
	var burst bytes.Buffer
	var want bytes.Buffer
	for i, m := range wireScript {
		payload := scriptPayload(i, m.size)
		frame := "PUB " + m.subject + " " + strconv.Itoa(m.size) + "\r\n"
		want.WriteString("MSG " + m.subject + " 1 " + strconv.Itoa(m.size) + "\r\n")
		want.Write(payload)
		want.WriteString("\r\n")
		if i < len(wireScript)/2 {
			burst.WriteString(frame)
			burst.Write(payload)
			burst.WriteString("\r\n")
			continue
		}
		if burst.Len() > 0 {
			mustWrite(t, pub, burst.String())
			burst.Reset()
		}
		mustWrite(t, pub, frame+string(payload)+"\r\n")
	}

	got := make([]byte, want.Len())
	sub.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, err := io.ReadFull(sub, got); err != nil {
		t.Fatalf("reading %d-byte stream (legacy=%v): %v", want.Len(), legacy, err)
	}
	// Nothing may follow the scripted deliveries.
	sub.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	var extra [1]byte
	if n, _ := sub.Read(extra[:]); n != 0 {
		t.Fatalf("unexpected trailing byte %q after scripted stream (legacy=%v)", extra[0], legacy)
	}
	if !bytes.Equal(got, want.Bytes()) {
		for i := range got {
			if got[i] != want.Bytes()[i] {
				t.Fatalf("stream (legacy=%v) diverges at byte %d: got %q want %q", legacy, i, got[i], want.Bytes()[i])
			}
		}
	}
	return got
}

// TestWireByteIdentityAcrossDataPlanes is the golden contract of the
// PR 9 rewrite: the vectored zero-copy writer and the legacy bufio
// writer must put exactly the same bytes on the wire, and both must
// match the protocol spelled out by hand in captureWireStream.
func TestWireByteIdentityAcrossDataPlanes(t *testing.T) {
	vectored := captureWireStream(t, false)
	legacy := captureWireStream(t, true)
	if !bytes.Equal(vectored, legacy) {
		t.Fatalf("vectored and legacy data planes produced different byte streams (%d vs %d bytes)", len(vectored), len(legacy))
	}
}

// TestPerClientFIFOOrderMixedPayloads extends the FIFO contract across
// the writer's two paths: payloads above and below zeroCopyMin
// interleave coalesced segments and direct arena iovecs in one writev
// batch, and the delivery order must still be exactly publish order.
func TestPerClientFIFOOrderMixedPayloads(t *testing.T) {
	srv := NewServer(WithSeed(5))
	if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()
	addr := srv.Addr().String()

	sizes := []int{16, 2048, 700, 9000, 64, 40000, 1024, 1023}
	const total = 400
	done := make(chan int, 1)
	next := 0
	sub, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if _, err := sub.Subscribe("mix.>", func(m Msg) {
		want := sizes[next%len(sizes)]
		if len(m.Data) != want || binary.LittleEndian.Uint64(m.Data) != uint64(next) {
			t.Errorf("delivery %d: got %d bytes seq %d, want %d bytes seq %d",
				next, len(m.Data), binary.LittleEndian.Uint64(m.Data), want, next)
			done <- next
			return
		}
		fill := byte(next)
		for _, b := range m.Data[8:] {
			if b != fill {
				t.Errorf("delivery %d: payload corrupted", next)
				done <- next
				return
			}
		}
		next++
		if next == total {
			done <- next
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := sub.Flush(time.Second); err != nil {
		t.Fatal(err)
	}

	pub, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	buf := make([]byte, 40000)
	for i := 0; i < total; i++ {
		p := buf[:sizes[i%len(sizes)]]
		fill := byte(i)
		for j := range p {
			p[j] = fill
		}
		binary.LittleEndian.PutUint64(p, uint64(i))
		subj := "mix.even"
		if i%2 == 1 {
			subj = "mix.odd"
		}
		if err := pub.Publish(subj, p); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case n := <-done:
		if n != total {
			t.Fatalf("stopped after %d of %d", n, total)
		}
	case <-time.After(20 * time.Second):
		t.Fatalf("timed out with %d of %d delivered in order", next, total)
	}
}

// TestArenaReleaseDisconnectStress hammers the arena's refcount
// discipline under -race: publishers fan payloads out to a verifying
// subscriber while a churn goroutine keeps attaching subscribers that
// never read and then tears their sockets down — so writer release,
// slow-consumer discard, and publisher retain race on the same shared
// payload buffers. Any use-after-release shows up as a race report or a
// corrupted payload on the healthy stream.
func TestArenaReleaseDisconnectStress(t *testing.T) {
	srv := NewServer(WithSeed(3), WithWriteQueue(64, 1<<20),
		WithSlowConsumerPolicy(SlowConsumerDisconnect))
	if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()
	addr := srv.Addr().String()

	// delivered[p] paces publisher p: it never runs more than one chunk
	// ahead of what the healthy subscriber has verified, so the healthy
	// queue cannot legitimately overflow — only the churned, never-reading
	// subscribers do.
	var delivered [2]atomic.Int64
	var corrupt atomic.Int64
	healthy, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer healthy.Close()
	if _, err := healthy.Subscribe("st.>", func(m Msg) {
		if len(m.Data) < 8 {
			corrupt.Add(1)
			return
		}
		seq := binary.LittleEndian.Uint64(m.Data)
		fill := byte(seq)
		for _, b := range m.Data[8:] {
			if b != fill {
				corrupt.Add(1)
				return
			}
		}
		if p := int(seq >> 32); p < len(delivered) {
			delivered[p].Add(1)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := healthy.Flush(time.Second); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				return
			}
			conn.Write([]byte("SUB st.> 9\r\n"))
			time.Sleep(2 * time.Millisecond) // let its queue fill / overflow
			conn.Close()
		}
	}()

	// Cycle several size classes so buffers return to their pools and
	// get re-handed to concurrent publishers mid-run.
	sizes := []int{300, 1500, 3000, 9000}
	const perPub, chunk = 304, 8
	var pubs sync.WaitGroup
	for p := 0; p < 2; p++ {
		pubs.Add(1)
		go func(p int) {
			defer pubs.Done()
			pub, err := Dial(addr)
			if err != nil {
				t.Errorf("publisher %d dial: %v", p, err)
				return
			}
			defer pub.Close()
			buf := make([]byte, 9000)
			deadline := time.Now().Add(30 * time.Second)
			for i := 0; i < perPub; i++ {
				seq := uint64(p)<<32 | uint64(i)
				payload := buf[:sizes[i%len(sizes)]]
				fill := byte(seq)
				for j := range payload {
					payload[j] = fill
				}
				binary.LittleEndian.PutUint64(payload, seq)
				if err := pub.Publish("st."+strconv.Itoa(p), payload); err != nil {
					t.Errorf("publisher %d msg %d: %v", p, i, err)
					return
				}
				for i+1-int(delivered[p].Load()) >= chunk {
					if time.Now().After(deadline) {
						t.Errorf("publisher %d stuck at %d delivered of %d sent", p, delivered[p].Load(), i+1)
						return
					}
					time.Sleep(100 * time.Microsecond)
				}
			}
		}(p)
	}
	pubs.Wait()
	close(stop)
	churn.Wait()
	if n := corrupt.Load(); n != 0 {
		t.Fatalf("%d corrupted payloads reached the healthy subscriber", n)
	}
	if v := delivered[0].Load() + delivered[1].Load(); v < perPub {
		t.Fatalf("only %d payloads verified; stress produced too few deliveries", v)
	}
}

// TestDeliveryAllocs pins the server hot path's allocation budget:
// once pools and caches are warm, routing a batch to an 8-way fan-out
// and draining the queues must allocate (amortized) nothing per
// delivery — the arena, header pool, match cache, and queue storage all
// recycle.
func TestDeliveryAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates on the measured path")
	}
	s := NewServer(WithSeed(1))
	const fanout = 8
	clients := make([]*serverClient, fanout)
	for i := range clients {
		c := &serverClient{srv: s, id: uint64(i), subs: make(map[string][]*serverSub)}
		c.out.init(1<<16, 1<<30, nil)
		clients[i] = c
		s.addSub(&serverSub{client: c, pattern: "alloc.bench", sid: "1"})
	}
	subj := []byte("alloc.bench")
	const batchN = 16
	pending := make([]pendingPub, batchN)
	var fwd fwdScratch
	var drain []outFrame
	run := func() {
		for i := range pending {
			pb := arenaGet(512)
			for j := range pb.data {
				pb.data[j] = byte(i)
			}
			pending[i] = pendingPub{off: 0, n: len(subj), pb: pb}
		}
		s.routeBatch(subj, pending, &fwd)
		for _, c := range clients {
			for c.out.pending() {
				drain, _ = c.out.take(drain[:0], maxDrainFrames)
				for i := range drain {
					drain[i].free()
				}
			}
		}
	}
	for i := 0; i < 4; i++ {
		run()
	}
	allocs := testing.AllocsPerRun(100, run)
	perDelivery := allocs / (batchN * fanout)
	if perDelivery > 0.1 {
		t.Errorf("hot path allocates %.3f per delivery (%.1f per %d-msg batch), want amortized zero",
			perDelivery, allocs, batchN)
	}
}

// TestAdmissionTimeoutsUnderPinnedBytes drives the documented worst
// case for publish admission: a stalled pipe subscriber pins queued
// bytes above the window forever, so publish batches must park, time
// out, and proceed — all visible in the counters, with no deadlock.
func TestAdmissionTimeoutsUnderPinnedBytes(t *testing.T) {
	srv := NewServer(WithSeed(1), WithWriteQueue(1024, 1<<20),
		WithSlowConsumerPolicy(SlowConsumerDrop),
		WithPublishAdmission(2048, 20*time.Millisecond))
	defer srv.Shutdown()

	stalled := pipeClient(t, srv)
	mustWrite(t, stalled, "SUB adm.x 1\r\n")
	waitSubs(t, srv, 1)

	pub := pipeClient(t, srv)
	payload := string(bytes.Repeat([]byte{'a'}, 512))
	const total = 40
	for i := 0; i < total; i++ {
		mustWrite(t, pub, "PUB adm.x 512\r\n"+payload+"\r\n")
	}
	deadline := time.Now().Add(10 * time.Second)
	for srv.Stats().MsgsIn != total && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	st := srv.Stats()
	if st.MsgsIn != total {
		t.Fatalf("MsgsIn = %d, want %d (admission must not wedge the publisher)", st.MsgsIn, total)
	}
	if st.AdmissionWaits == 0 {
		t.Error("expected AdmissionWaits > 0 with the gauge pinned over a 2 KiB window")
	}
	if st.AdmissionTimeouts == 0 {
		t.Error("expected AdmissionTimeouts > 0: the pinned gauge can never drain")
	}
}

// TestAdmissionWaitsResolveUnderDrain is the healthy half: with a
// reading subscriber the gauge drains, so parked publishers resume
// without a single timeout even under a window far smaller than the
// traffic.
func TestAdmissionWaitsResolveUnderDrain(t *testing.T) {
	srv := NewServer(WithSeed(1), WithPublishAdmission(2048, 5*time.Second))
	if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()
	addr := srv.Addr().String()

	var got atomic.Int64
	sub, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if _, err := sub.Subscribe("drain.x", func(Msg) { got.Add(1) }); err != nil {
		t.Fatal(err)
	}
	if err := sub.Flush(time.Second); err != nil {
		t.Fatal(err)
	}

	pub, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	payload := make([]byte, 512)
	const total = 200
	for i := 0; i < total; i++ {
		if err := pub.Publish("drain.x", payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := pub.Flush(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for got.Load() != total && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got.Load() != total {
		t.Fatalf("delivered %d of %d", got.Load(), total)
	}
	if st := srv.Stats(); st.AdmissionTimeouts != 0 {
		t.Errorf("AdmissionTimeouts = %d with a draining subscriber, want 0", st.AdmissionTimeouts)
	}
}

// TestAdmissionQuitUnblocks pins the shutdown interaction: a publisher
// parked on the gauge must wake (and report success, so the reader can
// run to its exit) the moment the server's quit channel closes.
func TestAdmissionQuitUnblocks(t *testing.T) {
	a := &admission{limit: 1}
	a.add(10)
	quit := make(chan struct{})
	res := make(chan bool, 1)
	go func() { res <- a.wait(30*time.Second, quit) }()
	time.Sleep(10 * time.Millisecond)
	close(quit)
	select {
	case ok := <-res:
		if !ok {
			t.Error("wait reported timeout on quit, want true")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("wait did not unblock on quit")
	}
}

// TestAdmissionDoneWakes pins the normal wake path: done() crossing
// back under the window releases a parked waiter well before its
// timeout.
func TestAdmissionDoneWakes(t *testing.T) {
	a := &admission{limit: 100}
	a.add(200)
	go func() {
		time.Sleep(20 * time.Millisecond)
		a.done(150)
	}()
	start := time.Now()
	if !a.wait(30*time.Second, nil) {
		t.Fatal("wait timed out, want wake via done()")
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("wait took %v, want prompt wake", d)
	}
}

// TestStatsSnapshotConsistent pins the seqlock: under concurrent load
// with a single subscriber and the drop policy, every snapshot must
// satisfy MsgsOut + SlowConsumerDrops == MsgsIn and the byte counters
// must be exact multiples of the fixed payload size. Field-by-field
// atomic loads (the PR 7 Stats) tear these invariants constantly.
func TestStatsSnapshotConsistent(t *testing.T) {
	srv := NewServer(WithSeed(1), WithSlowConsumerPolicy(SlowConsumerDrop))
	if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()
	addr := srv.Addr().String()

	sub, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if _, err := sub.Subscribe("stat.x", func(Msg) {}); err != nil {
		t.Fatal(err)
	}
	if err := sub.Flush(time.Second); err != nil {
		t.Fatal(err)
	}

	const payloadSize = 128
	const total = 10000
	pubDone := make(chan error, 1)
	go func() {
		pub, err := Dial(addr)
		if err != nil {
			pubDone <- err
			return
		}
		defer pub.Close()
		payload := make([]byte, payloadSize)
		for i := 0; i < total; i++ {
			if err := pub.Publish("stat.x", payload); err != nil {
				pubDone <- err
				return
			}
		}
		pubDone <- pub.Flush(10 * time.Second)
	}()

	deadline := time.Now().Add(30 * time.Second)
	done := false
	for !done || srv.Stats().MsgsIn < total {
		if time.Now().After(deadline) {
			t.Fatalf("timed out at MsgsIn = %d of %d", srv.Stats().MsgsIn, total)
		}
		st := srv.Stats()
		if st.MsgsOut+st.SlowConsumerDrops != st.MsgsIn {
			t.Fatalf("torn snapshot: MsgsOut %d + drops %d != MsgsIn %d",
				st.MsgsOut, st.SlowConsumerDrops, st.MsgsIn)
		}
		if st.BytesIn != st.MsgsIn*payloadSize {
			t.Fatalf("torn snapshot: BytesIn %d != MsgsIn %d * %d", st.BytesIn, st.MsgsIn, payloadSize)
		}
		if st.BytesOut != st.MsgsOut*payloadSize {
			t.Fatalf("torn snapshot: BytesOut %d != MsgsOut %d * %d", st.BytesOut, st.MsgsOut, payloadSize)
		}
		select {
		case err := <-pubDone:
			if err != nil {
				t.Fatal(err)
			}
			done = true
		default:
		}
	}
}
