package broker_test

import (
	"bufio"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"adamant/internal/broker"
)

// rawConn speaks the wire protocol directly, for exercising the server's
// error handling against malformed and hostile input.
type rawConn struct {
	t    *testing.T
	conn net.Conn
	r    *bufio.Reader
}

func dialRaw(t *testing.T, addr string) *rawConn {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &rawConn{t: t, conn: conn, r: bufio.NewReader(conn)}
}

func (c *rawConn) send(s string) {
	c.t.Helper()
	if _, err := c.conn.Write([]byte(s)); err != nil {
		c.t.Fatal(err)
	}
}

func (c *rawConn) expectLine(prefix string) string {
	c.t.Helper()
	if err := c.conn.SetReadDeadline(time.Now().Add(2 * time.Second)); err != nil {
		c.t.Fatal(err)
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		c.t.Fatalf("reading line (want prefix %q): %v", prefix, err)
	}
	line = strings.TrimRight(line, "\r\n")
	if !strings.HasPrefix(line, prefix) {
		c.t.Fatalf("got line %q, want prefix %q", line, prefix)
	}
	return line
}

func TestServerProtocolErrors(t *testing.T) {
	_, addr := startServer(t)
	c := dialRaw(t, addr)

	c.send("BOGUS command\r\n")
	c.expectLine("-ERR unknown command")

	c.send("SUB onlypattern\r\n") // missing sid
	c.expectLine("-ERR SUB requires")

	c.send("SUB a.>.b 1\r\n") // invalid pattern
	c.expectLine("-ERR")

	c.send("UNSUB\r\n") // missing sid
	c.expectLine("-ERR UNSUB requires")

	c.send("PUB missing.size\r\n")
	c.expectLine("-ERR PUB requires")

	// The connection must still be fully usable after all that.
	c.send("PING\r\n")
	c.expectLine("PONG")
}

func TestServerRejectsBadPayloadSize(t *testing.T) {
	_, addr := startServer(t)
	c := dialRaw(t, addr)
	c.send("PUB subj notanumber\r\n")
	c.expectLine("-ERR bad payload size")
	// The server drops the connection after an unframeable PUB (it cannot
	// know where the payload ends).
	if err := c.conn.SetReadDeadline(time.Now().Add(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.r.ReadString('\n'); err == nil {
		t.Error("connection still open after unframeable PUB")
	}
}

func TestServerWildcardPublishRejected(t *testing.T) {
	_, addr := startServer(t)
	c := dialRaw(t, addr)
	c.send("PUB wild.* 2\r\nhi\r\n")
	c.expectLine("-ERR")
	c.send("PING\r\n")
	c.expectLine("PONG")
}

func TestServerQueueSubAndMessageFraming(t *testing.T) {
	srv, addr := startServer(t)
	c := dialRaw(t, addr)
	c.send("CONNECT rawclient\r\n")
	c.send("SUB jobs.* workers 7\r\n")
	c.send("PING\r\n")
	c.expectLine("PONG")
	if srv.NumSubscriptions() != 1 {
		t.Fatalf("subscriptions = %d", srv.NumSubscriptions())
	}

	pub := dial(t, addr)
	if err := pub.Publish("jobs.detect", []byte("payload-x")); err != nil {
		t.Fatal(err)
	}
	c.expectLine("MSG jobs.detect 7 9")
	if err := c.conn.SetReadDeadline(time.Now().Add(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 11) // payload + CRLF
	if _, err := io.ReadFull(c.r, body); err != nil {
		t.Fatal(err)
	}
	if got := string(body); !strings.HasPrefix(got, "payload-x") {
		t.Errorf("payload framing wrong: %q", got)
	}
}

func TestValidateSubjectTable(t *testing.T) {
	valid := []string{"a", "a.b", "sensors.uav1.infrared"}
	for _, s := range valid {
		if err := broker.ValidateSubject(s); err != nil {
			t.Errorf("ValidateSubject(%q) = %v", s, err)
		}
	}
	invalid := []string{"", ".", "a..b", "a b", "a.*", ">", "a\tb", "a\nb"}
	for _, s := range invalid {
		if err := broker.ValidateSubject(s); err == nil {
			t.Errorf("ValidateSubject(%q) accepted", s)
		}
	}
}
