package broker

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// The payload arena makes a published message body a shared, refcounted
// resource: handlePub fills one pooled buffer, the fan-out enqueues that
// same buffer into every matching client's outbound queue, and the
// buffer returns to its size-class pool only when the last holder —
// writer goroutine after the bytes hit the socket, or discard() on a
// slow-consumer teardown — drops its reference. A 10k-way fan-out of a
// 1 MiB payload therefore costs one buffer for its whole lifetime
// instead of one allocation per publish (PR 7) or one copy per delivery
// (the seed broker).
//
// Reference discipline:
//
//   - arenaGet returns the buffer with one reference, the publisher hold.
//   - sendMsg takes a reference *before* enqueueing (never after: the
//     writer may drain and release the frame the instant enqueue returns)
//     and gives it back if the queue rejects the frame. The give-back can
//     never hit zero because the publisher hold is still outstanding.
//   - routeBatch drops the publisher hold once the message has been
//     offered to every matching subscription.
//   - writeLoop / writeLoopLegacy release one reference per frame after
//     the frame's bytes are written (or abandoned on a dead connection);
//     outQueue.discard releases the references of frames it throws away.
//
// The last release returns the buffer to its pool; the refcount is the
// only thing standing between the pool and a use-after-reuse, which is
// exactly what TestArenaReleaseDisconnectStress hammers under -race.

// payloadRef is one refcounted payload buffer. data is the payload-sized
// prefix of the class-sized backing array full.
type payloadRef struct {
	refs  atomic.Int32
	class int32
	full  []byte
	data  []byte
}

// Size classes are powers of two from arenaMinClass bytes up to
// MaxPayload; a request is rounded up to the next class.
const (
	arenaMinShift = 8  // 256 B
	arenaMaxShift = 20 // 1 MiB == MaxPayload
	arenaClasses  = arenaMaxShift - arenaMinShift + 1
)

var arenaPools [arenaClasses]sync.Pool

// arenaClassFor maps a payload size to its size-class index.
func arenaClassFor(n int) int {
	if n <= 1<<arenaMinShift {
		return 0
	}
	return bits.Len(uint(n-1)) - arenaMinShift
}

// arenaGet returns a buffer for an n-byte payload holding one reference
// (the publisher hold). n must be in [0, MaxPayload].
func arenaGet(n int) *payloadRef {
	class := arenaClassFor(n)
	pb, _ := arenaPools[class].Get().(*payloadRef)
	if pb == nil {
		pb = &payloadRef{
			class: int32(class),
			full:  make([]byte, 1<<(class+arenaMinShift)),
		}
	}
	pb.refs.Store(1)
	pb.data = pb.full[:n]
	return pb
}

// retain takes one additional reference. It must be called while the
// caller already owns a reference (see the discipline above).
func (pb *payloadRef) retain() { pb.refs.Add(1) }

// release drops one reference, returning the buffer to its pool when the
// count hits zero. After release the caller must not touch pb.data.
func (pb *payloadRef) release() {
	if pb.refs.Add(-1) == 0 {
		pb.data = nil
		arenaPools[pb.class].Put(pb)
	}
}
