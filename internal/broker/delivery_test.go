package broker_test

import (
	"encoding/binary"
	"net"
	"strconv"
	"sync"
	"testing"
	"time"

	"adamant/internal/broker"
)

// TestPerClientFIFOOrder pins the ordering contract of the writer path:
// everything routed to one client leaves in exactly enqueue order, even
// though delivery now goes through a queue and a separate goroutine.
func TestPerClientFIFOOrder(t *testing.T) {
	_, addr := startServer(t)
	pub := dial(t, addr)
	sub := dial(t, addr)

	const total = 2000
	done := make(chan int, 1)
	next := 0
	if _, err := sub.Subscribe("seq.>", func(m broker.Msg) {
		got, err := strconv.Atoi(string(m.Data))
		if err != nil || got != next {
			t.Errorf("delivery %d carried seq %q (err %v): FIFO order broken", next, m.Data, err)
			done <- next
			return
		}
		next++
		if next == total {
			done <- next
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := sub.Flush(time.Second); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < total; i++ {
		// Alternate subjects so the messages traverse both the cache-hit
		// and multi-entry trie paths while still targeting one client.
		subj := "seq.even"
		if i%2 == 1 {
			subj = "seq.odd"
		}
		if err := pub.Publish(subj, []byte(strconv.Itoa(i))); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case n := <-done:
		if n != total {
			t.Fatalf("stopped after %d of %d", n, total)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("timed out with %d of %d delivered in order", next, total)
	}
}

// TestSeededQueueGroupReproducible pins the satellite: with WithSeed,
// queue-group member picks are identical across independent servers.
func TestSeededQueueGroupReproducible(t *testing.T) {
	assign := func(seed int64) []int {
		srv := broker.NewServer(broker.WithSeed(seed))
		if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		defer srv.Shutdown()
		addr := srv.Addr().String()

		const members, total = 3, 60
		var mu sync.Mutex
		byseq := make([]int, total)
		delivered := 0
		allDone := make(chan struct{})
		var clients []*broker.Client
		for m := 0; m < members; m++ {
			m := m
			c, err := broker.Dial(addr)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			clients = append(clients, c)
			if _, err := c.QueueSubscribe("jobs.x", "grp", func(msg broker.Msg) {
				seq, _ := strconv.Atoi(string(msg.Data))
				mu.Lock()
				byseq[seq] = m
				delivered++
				if delivered == total {
					close(allDone)
				}
				mu.Unlock()
			}); err != nil {
				t.Fatal(err)
			}
			// Flush before subscribing the next member so insertion
			// order (and thus rng pick order) is deterministic.
			if err := c.Flush(time.Second); err != nil {
				t.Fatal(err)
			}
		}
		pub, err := broker.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer pub.Close()
		for i := 0; i < total; i++ {
			if err := pub.Publish("jobs.x", []byte(strconv.Itoa(i))); err != nil {
				t.Fatal(err)
			}
		}
		select {
		case <-allDone:
		case <-time.After(5 * time.Second):
			t.Fatalf("delivered %d of %d", delivered, total)
		}
		return byseq
	}

	a := assign(42)
	b := assign(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seq %d went to member %d in run 1 but %d in run 2: seeded pick order not reproducible", i, a[i], b[i])
		}
	}
	// A different seed should (overwhelmingly) give a different order;
	// if not, the seed isn't reaching the rng at all.
	c := assign(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("seed 42 and 43 produced identical pick sequences")
	}
}

// TestPublishZeroAlloc pins the client-side publish path at zero
// allocations per message once the scratch buffer has warmed up.
func TestPublishZeroAlloc(t *testing.T) {
	// net.Pipe with a discarding peer isolates the client's own
	// allocations from server-side work.
	client, peer := net.Pipe()
	go func() {
		buf := make([]byte, 64*1024)
		for {
			if _, err := peer.Read(buf); err != nil {
				return
			}
		}
	}()
	c, err := broker.NewClient(client)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	payload := make([]byte, 512)
	binary.LittleEndian.PutUint64(payload, 12345)
	// Warm the scratch buffer.
	for i := 0; i < 4; i++ {
		if err := c.Publish("bench.alloc", payload); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := c.Publish("bench.alloc", payload); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("Publish allocates %.2f per message, want 0", allocs)
	}
}
