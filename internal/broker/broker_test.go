package broker_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"adamant/internal/broker"
)

func startServer(t *testing.T) (*broker.Server, string) {
	t.Helper()
	srv := broker.NewServer()
	if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Shutdown)
	return srv, srv.Addr().String()
}

func dial(t *testing.T, addr string) *broker.Client {
	t.Helper()
	c, err := broker.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestPublishSubscribe(t *testing.T) {
	_, addr := startServer(t)
	pub := dial(t, addr)
	sub := dial(t, addr)

	var mu sync.Mutex
	var got []broker.Msg
	if _, err := sub.Subscribe("sensors.infrared", func(m broker.Msg) {
		mu.Lock()
		got = append(got, m)
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	if err := sub.Flush(time.Second); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := pub.Publish("sensors.infrared", []byte(fmt.Sprintf("scan-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := pub.Flush(time.Second); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n == 10 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 10 {
		t.Fatalf("got %d messages, want 10", len(got))
	}
	if got[0].Subject != "sensors.infrared" || string(got[0].Data) != "scan-0" {
		t.Errorf("first message = %+v", got[0])
	}
}

func TestWildcardMatching(t *testing.T) {
	_, addr := startServer(t)
	pub := dial(t, addr)
	sub := dial(t, addr)

	var star, full, exact atomic.Int64
	mustSub := func(pattern string, ctr *atomic.Int64) {
		t.Helper()
		if _, err := sub.Subscribe(pattern, func(broker.Msg) { ctr.Add(1) }); err != nil {
			t.Fatal(err)
		}
	}
	mustSub("sensors.*.infrared", &star)
	mustSub("sensors.>", &full)
	mustSub("sensors.uav1.infrared", &exact)
	if err := sub.Flush(time.Second); err != nil {
		t.Fatal(err)
	}

	publish := func(subj string) {
		t.Helper()
		if err := pub.Publish(subj, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	publish("sensors.uav1.infrared") // all three
	publish("sensors.uav2.infrared") // star + full
	publish("sensors.uav1.video")    // full only
	publish("other.uav1.infrared")   // none
	if err := pub.Flush(time.Second); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	if star.Load() != 2 || full.Load() != 3 || exact.Load() != 1 {
		t.Errorf("star=%d full=%d exact=%d, want 2/3/1", star.Load(), full.Load(), exact.Load())
	}
}

func TestQueueGroupsLoadBalance(t *testing.T) {
	_, addr := startServer(t)
	pub := dial(t, addr)
	var counts [3]atomic.Int64
	for i := 0; i < 3; i++ {
		i := i
		worker := dial(t, addr)
		if _, err := worker.QueueSubscribe("jobs.detect", "workers", func(broker.Msg) {
			counts[i].Add(1)
		}); err != nil {
			t.Fatal(err)
		}
		if err := worker.Flush(time.Second); err != nil {
			t.Fatal(err)
		}
	}
	const total = 90
	for i := 0; i < total; i++ {
		if err := pub.Publish("jobs.detect", []byte("job")); err != nil {
			t.Fatal(err)
		}
	}
	if err := pub.Flush(time.Second); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	sum := func() int64 { return counts[0].Load() + counts[1].Load() + counts[2].Load() }
	for sum() < total && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if sum() != total {
		t.Fatalf("queue group delivered %d, want exactly %d (one member per message)", sum(), total)
	}
	for i := range counts {
		if counts[i].Load() == 0 {
			t.Errorf("worker %d starved (0 of %d)", i, total)
		}
	}
}

func TestUnsubscribe(t *testing.T) {
	_, addr := startServer(t)
	pub := dial(t, addr)
	sub := dial(t, addr)
	var n atomic.Int64
	s, err := sub.Subscribe("a.b", func(broker.Msg) { n.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Flush(time.Second); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish("a.b", nil); err != nil {
		t.Fatal(err)
	}
	if err := pub.Flush(time.Second); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if err := s.Unsubscribe(); err != nil {
		t.Fatal(err)
	}
	if err := sub.Flush(time.Second); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish("a.b", nil); err != nil {
		t.Fatal(err)
	}
	if err := pub.Flush(time.Second); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if n.Load() != 1 {
		t.Errorf("received %d messages, want 1 (post-unsubscribe publish must not arrive)", n.Load())
	}
}

func TestLargePayload(t *testing.T) {
	_, addr := startServer(t)
	pub := dial(t, addr)
	sub := dial(t, addr)
	payload := make([]byte, 256*1024)
	for i := range payload {
		payload[i] = byte(i)
	}
	ch := make(chan []byte, 1)
	if _, err := sub.Subscribe("big", func(m broker.Msg) { ch <- m.Data }); err != nil {
		t.Fatal(err)
	}
	if err := sub.Flush(time.Second); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish("big", payload); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-ch:
		if len(got) != len(payload) {
			t.Fatalf("payload length %d, want %d", len(got), len(payload))
		}
		for i := range got {
			if got[i] != payload[i] {
				t.Fatalf("payload corrupted at %d", i)
			}
		}
	case <-time.After(2 * time.Second):
		t.Fatal("large payload never arrived")
	}
}

func TestOversizePayloadRejected(t *testing.T) {
	_, addr := startServer(t)
	pub := dial(t, addr)
	if err := pub.Publish("big", make([]byte, broker.MaxPayload+1)); err == nil {
		t.Error("oversize publish should error client-side")
	}
}

func TestInvalidSubjects(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)
	if err := c.Publish("with space", nil); err == nil {
		t.Error("subject with space should error")
	}
	if err := c.Publish("wild.*", nil); err == nil {
		t.Error("publish with wildcard should error")
	}
	if err := c.Publish("", nil); err == nil {
		t.Error("empty subject should error")
	}
	if _, err := c.Subscribe("a..b", func(broker.Msg) {}); err == nil {
		t.Error("empty token pattern should error")
	}
	if _, err := c.Subscribe("a.>.b", func(broker.Msg) {}); err == nil {
		t.Error("non-final '>' should error")
	}
	if _, err := c.Subscribe("a.b", nil); err == nil {
		t.Error("nil handler should error")
	}
	if _, err := c.QueueSubscribe("a.b", "", func(broker.Msg) {}); err == nil {
		t.Error("empty queue group should error")
	}
}

func TestServerStats(t *testing.T) {
	srv, addr := startServer(t)
	pub := dial(t, addr)
	sub := dial(t, addr)
	if _, err := sub.Subscribe("s", func(broker.Msg) {}); err != nil {
		t.Fatal(err)
	}
	if err := sub.Flush(time.Second); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish("s", []byte("12345")); err != nil {
		t.Fatal(err)
	}
	if err := pub.Flush(time.Second); err != nil {
		t.Fatal(err)
	}
	st := srv.Stats()
	if st.Connections != 2 || st.MsgsIn != 1 || st.MsgsOut != 1 || st.BytesIn != 5 {
		t.Errorf("stats = %+v", st)
	}
	if srv.NumSubscriptions() != 1 {
		t.Errorf("NumSubscriptions = %d", srv.NumSubscriptions())
	}
}

func TestClientDisconnectCleansSubscriptions(t *testing.T) {
	srv, addr := startServer(t)
	sub := dial(t, addr)
	if _, err := sub.Subscribe("x", func(broker.Msg) {}); err != nil {
		t.Fatal(err)
	}
	if err := sub.Flush(time.Second); err != nil {
		t.Fatal(err)
	}
	if err := sub.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for srv.NumSubscriptions() != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n := srv.NumSubscriptions(); n != 0 {
		t.Errorf("NumSubscriptions = %d after disconnect, want 0", n)
	}
}

func TestClientCloseIdempotentAndFailsAfter(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
	if _, err := c.Subscribe("a", func(broker.Msg) {}); err == nil {
		t.Error("subscribe after close should error")
	}
	if err := c.Flush(time.Second); err == nil {
		t.Error("flush after close should error")
	}
}

func TestShutdownIdempotent(t *testing.T) {
	srv, _ := startServer(t)
	srv.Shutdown()
	srv.Shutdown()
}

func TestMatch(t *testing.T) {
	tests := []struct {
		subject, pattern string
		want             bool
	}{
		{"a.b.c", "a.b.c", true},
		{"a.b.c", "a.*.c", true},
		{"a.b.c", "a.>", true},
		{"a", "a.>", false}, // '>' needs at least one token
		{"a.b", "a.b.c", false},
		{"a.b.c", "a.b", false},
		{"a.b.c", "*.*.*", true},
		{"a.b.c", ">", true},
		{"a.x.c", "a.b.c", false},
	}
	for _, tt := range tests {
		if got := broker.Match(tt.subject, tt.pattern); got != tt.want {
			t.Errorf("Match(%q, %q) = %v, want %v", tt.subject, tt.pattern, got, tt.want)
		}
	}
}

func TestConcurrentPublishers(t *testing.T) {
	_, addr := startServer(t)
	sub := dial(t, addr)
	var n atomic.Int64
	if _, err := sub.Subscribe("load.>", func(broker.Msg) { n.Add(1) }); err != nil {
		t.Fatal(err)
	}
	if err := sub.Flush(time.Second); err != nil {
		t.Fatal(err)
	}
	const pubs, each = 4, 100
	var wg sync.WaitGroup
	for p := 0; p < pubs; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := broker.Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for i := 0; i < each; i++ {
				if err := c.Publish(fmt.Sprintf("load.p%d", p), []byte("x")); err != nil {
					t.Error(err)
					return
				}
			}
			if err := c.Flush(2 * time.Second); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	deadline := time.Now().Add(3 * time.Second)
	for n.Load() < pubs*each && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n.Load() != pubs*each {
		t.Errorf("received %d, want %d", n.Load(), pubs*each)
	}
}
