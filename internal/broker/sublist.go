package broker

import (
	"bytes"
	"math/rand"
	"sort"
	"strings"
	"sync"
)

// Routing is sharded: subscriptions whose pattern starts with a literal
// token live in exactly one shard (picked by hashing that token), and a
// publish on subject "a.b.c" only takes the lock of shard hash("a") — so
// publishes on disjoint subject spaces never contend. Patterns whose
// first token is a wildcard ('*' or '>') can match any subject, so they
// are inserted into every shard; a publish still consults exactly one.
//
// Inside a shard, subscriptions are stored in a subject-token trie: each
// trie edge is one token, with '*' and '>' as ordinary edge labels. A
// match walks the subject's tokens, following at most the literal edge
// and the '*' edge per level, and collects '>'-terminals whenever at
// least one token remains. On top of the trie sits a per-shard match
// cache keyed by the concrete subject; every sub/unsub in the shard bumps
// a generation counter, and cached entries are revalidated against it on
// lookup, so the cache never needs explicit invalidation lists.

// maxCachedSubjects caps a shard's match cache; when full, the whole map
// is dropped (a publish-path cache rebuild is cheap and self-limiting).
const maxCachedSubjects = 8192

// shard is one routing shard: a trie, its match cache, and the rng used
// for queue-group member picks (per-shard so picks never take a global
// lock).
type shard struct {
	mu    sync.Mutex
	root  *trieNode
	cache map[string]*routeSet
	gen   uint64
	rng   *rand.Rand
}

// trieNode is one token position. Terminal subscriptions (patterns that
// end here) are split into plain subs and queue groups; children are
// keyed by the next token, with "*" and ">" as literal keys.
type trieNode struct {
	next  map[string]*trieNode
	psubs []*serverSub
	qsubs map[string][]*serverSub
}

func (n *trieNode) empty() bool {
	return len(n.next) == 0 && len(n.psubs) == 0 && len(n.qsubs) == 0
}

// routeSet is the flattened match result for one concrete subject: the
// plain subscriptions plus one member-slice per (pattern, queue) group.
// A cached routeSet is only trusted while its gen matches the shard's.
type routeSet struct {
	gen    uint64
	plain  []*serverSub
	queues [][]*serverSub
}

func newShard(seed int64) *shard {
	return &shard{
		root:  &trieNode{},
		cache: make(map[string]*routeSet),
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// shardIndex maps a subject or pattern to its shard by FNV-1a over the
// first token. Wildcard first tokens return -1, meaning "all shards".
func shardIndex(subjectOrPattern string, n int) int {
	tok := subjectOrPattern
	if i := strings.IndexByte(tok, '.'); i >= 0 {
		tok = tok[:i]
	}
	if tok == "*" || tok == ">" {
		return -1
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(tok); i++ {
		h ^= uint64(tok[i])
		h *= prime64
	}
	return int(h % uint64(n))
}

// shardIndexBytes is shardIndex for the publish hot path: concrete
// subjects cannot start with a wildcard token (validated at ingest), so
// it always lands on one shard and never allocates.
func shardIndexBytes(subject []byte, n int) int {
	tok := subject
	if i := bytes.IndexByte(tok, '.'); i >= 0 {
		tok = tok[:i]
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(tok); i++ {
		h ^= uint64(tok[i])
		h *= prime64
	}
	return int(h % uint64(n))
}

// insert adds sub under its pattern. Caller holds sh.mu.
func (sh *shard) insert(sub *serverSub) {
	n := sh.root
	rest := sub.pattern
	for {
		tok, tail, more := nextToken(rest)
		child := n.next[tok]
		if child == nil {
			child = &trieNode{}
			if n.next == nil {
				n.next = make(map[string]*trieNode)
			}
			n.next[tok] = child
		}
		n = child
		if !more {
			break
		}
		rest = tail
	}
	if sub.queue == "" {
		n.psubs = append(n.psubs, sub)
	} else {
		if n.qsubs == nil {
			n.qsubs = make(map[string][]*serverSub)
		}
		n.qsubs[sub.queue] = append(n.qsubs[sub.queue], sub)
	}
	sh.gen++
}

// remove deletes sub by identity and prunes now-empty trie nodes.
// Caller holds sh.mu. Reports whether the sub was present.
func (sh *shard) remove(sub *serverSub) bool {
	// Record the path so empty nodes can be pruned bottom-up.
	type step struct {
		node *trieNode
		tok  string
	}
	var path [16]step
	depth := 0
	n := sh.root
	rest := sub.pattern
	for {
		tok, tail, more := nextToken(rest)
		child := n.next[tok]
		if child == nil {
			return false
		}
		if depth < len(path) {
			path[depth] = step{n, tok}
		}
		depth++
		n = child
		if !more {
			break
		}
		rest = tail
	}
	// Patterns deeper than the path scratch are removed but not pruned;
	// the stranded interior nodes are harmless and reclaimed on reuse.
	prune := depth <= len(path)
	removed := false
	if sub.queue == "" {
		for i, s := range n.psubs {
			if s == sub {
				n.psubs[i] = n.psubs[len(n.psubs)-1]
				n.psubs = n.psubs[:len(n.psubs)-1]
				removed = true
				break
			}
		}
	} else if members := n.qsubs[sub.queue]; members != nil {
		for i, s := range members {
			if s == sub {
				members[i] = members[len(members)-1]
				n.qsubs[sub.queue] = members[:len(members)-1]
				removed = true
				break
			}
		}
		if len(n.qsubs[sub.queue]) == 0 {
			delete(n.qsubs, sub.queue)
		}
	}
	if !removed {
		return false
	}
	if prune {
		for i := depth - 1; i >= 0 && n.empty(); i-- {
			delete(path[i].node.next, path[i].tok)
			n = path[i].node
		}
	}
	sh.gen++
	return true
}

// match returns the routeSet for subject, from cache when the generation
// still matches, rebuilding (and re-caching) otherwise. Caller holds
// sh.mu; the returned set is only valid while the lock is held.
func (sh *shard) match(subject string) *routeSet {
	if rs, ok := sh.cache[subject]; ok && rs.gen == sh.gen {
		return rs
	}
	rs := &routeSet{gen: sh.gen}
	collect(sh.root, subject, rs)
	if len(sh.cache) >= maxCachedSubjects {
		sh.cache = make(map[string]*routeSet)
	}
	sh.cache[subject] = rs
	return rs
}

// matchBytes is match for the publish hot path: the cache probe uses the
// compiler's map[string]lookup-by-[]byte optimization, so a cache hit —
// the overwhelmingly common case in steady state — allocates nothing.
// Only a rebuild materializes the subject as a string (for collect and
// the cache key). Caller holds sh.mu.
func (sh *shard) matchBytes(subject []byte) *routeSet {
	if rs, ok := sh.cache[string(subject)]; ok && rs.gen == sh.gen {
		return rs
	}
	subj := string(subject)
	rs := &routeSet{gen: sh.gen}
	collect(sh.root, subj, rs)
	if len(sh.cache) >= maxCachedSubjects {
		sh.cache = make(map[string]*routeSet)
	}
	sh.cache[subj] = rs
	return rs
}

// collect walks the trie for the remaining subject tokens, appending
// matches to rs. rest == "" means all tokens are consumed.
func collect(n *trieNode, rest string, rs *routeSet) {
	if fwc := n.next[">"]; fwc != nil && rest != "" {
		// '>' matches one or more remaining tokens.
		rs.add(fwc)
	}
	if rest == "" {
		rs.add(n)
		return
	}
	tok, tail, _ := nextToken(rest)
	if c := n.next[tok]; c != nil {
		collect(c, tail, rs)
	}
	if c := n.next["*"]; c != nil {
		collect(c, tail, rs)
	}
}

func (rs *routeSet) add(n *trieNode) {
	if len(n.psubs) > 0 {
		rs.plain = append(rs.plain, n.psubs...)
	}
	switch len(n.qsubs) {
	case 0:
	case 1:
		for _, members := range n.qsubs {
			rs.queues = append(rs.queues, members)
		}
	default:
		// Iterate queue groups in sorted name order so the rng pick
		// sequence (and thus seeded runs) is reproducible: Go map
		// iteration order would otherwise vary run to run.
		names := make([]string, 0, len(n.qsubs))
		for name := range n.qsubs {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			rs.queues = append(rs.queues, n.qsubs[name])
		}
	}
}

// nextToken splits the leading dot token off rest. more reports whether
// a tail remains (distinguishing "a" from trailing content).
func nextToken(rest string) (tok, tail string, more bool) {
	if i := strings.IndexByte(rest, '.'); i >= 0 {
		return rest[:i], rest[i+1:], true
	}
	return rest, "", false
}
