//go:build !race

package broker

const raceEnabled = false
