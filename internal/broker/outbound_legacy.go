package broker

import (
	"bufio"
	"net"
)

// writeLoopLegacy is the PR 7/PR 8 delivery path, kept verbatim in
// spirit: every frame's header, payload, and CRLF are copied into a
// bufio.Writer and flushed when the queue runs dry. It exists for two
// reasons: TestWireByteIdentityAcrossDataPlanes pins that the vectored
// writer produces byte-identical client streams, and the fleet harness
// drives it (Config.Legacy) to measure the before/after load–latency
// curve of the PR 9 data plane inside one tree. Selected by
// WithLegacyDataPlane, which also disables ingest batching and publish
// admission so the whole plane matches the PR 8 behavior.
func writeLoopLegacy(conn net.Conn, q *outQueue) {
	bw := bufio.NewWriterSize(conn, writeBufSize)
	var batch []outFrame
	for {
		var closed bool
		batch, closed = q.take(batch[:0], maxDrainFrames)
		if len(batch) == 0 && closed {
			bw.Flush()
			conn.Close()
			return
		}
		ok := true
		for i := range batch {
			f := &batch[i]
			if ok {
				_, err := bw.Write(f.hdr.b)
				if err == nil && f.pb != nil {
					if _, err = bw.Write(f.payload); err == nil {
						_, err = bw.Write(crlf)
					}
				}
				ok = err == nil
			}
			f.free()
		}
		if ok && !q.pending() {
			ok = bw.Flush() == nil
		}
		if !ok {
			// The peer is gone: unblock the reader and drop the rest.
			conn.Close()
			q.discard()
		}
	}
}
