package broker_test

// Federation tests: the 3-broker full mesh from the acceptance criteria.
// Everything here runs real TCP sockets against in-process servers.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"adamant/internal/broker"
)

// startMesh brings up n brokers with explicit full-mesh routes and
// blocks until every broker reports n-1 live routes.
func startMesh(t *testing.T, n int, opts ...broker.Option) ([]*broker.Server, []string) {
	t.Helper()
	servers := make([]*broker.Server, n)
	addrs := make([]string, n)
	for i := range servers {
		o := append([]broker.Option{
			broker.WithSeed(int64(i + 1)),
			broker.WithServerID(fmt.Sprintf("tb%d", i)),
		}, opts...)
		srv := broker.NewServer(o...)
		if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(srv.Shutdown)
		servers[i] = srv
		addrs[i] = srv.Addr().String()
	}
	for i := range servers {
		for j := i + 1; j < n; j++ {
			servers[j].AddRoute(addrs[i])
		}
	}
	waitFor(t, "route formation", func() bool {
		for _, s := range servers {
			if s.Stats().Routes != uint64(n-1) {
				return false
			}
		}
		return true
	})
	return servers, addrs
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestMeshExactlyOnceDelivery is the core federation invariant: a
// publish entering broker A reaches matching subscribers on brokers B
// and C exactly once each, with zero duplicate-suppression events (the
// one-hop rule never even creates a loop in a healthy mesh).
func TestMeshExactlyOnceDelivery(t *testing.T) {
	servers, addrs := startMesh(t, 3)

	type rec struct {
		mu   sync.Mutex
		msgs []string
	}
	recs := make([]*rec, 3)
	clients := make([]*broker.Client, 3)
	for i := range recs {
		r := &rec{}
		recs[i] = r
		c := dial(t, addrs[i])
		clients[i] = c
		if _, err := c.Subscribe("mesh.events.*", func(m broker.Msg) {
			r.mu.Lock()
			r.msgs = append(r.msgs, string(m.Data))
			r.mu.Unlock()
		}); err != nil {
			t.Fatal(err)
		}
		if err := c.Flush(2 * time.Second); err != nil {
			t.Fatal(err)
		}
	}
	// Broker 0 must see remote interest from both peers before the
	// publishes, or early messages legitimately miss remote subscribers.
	waitFor(t, "interest propagation", func() bool {
		return servers[0].Stats().RemoteSubs >= 2
	})

	pub := dial(t, addrs[0])
	const n = 50
	for i := 0; i < n; i++ {
		if err := pub.Publish("mesh.events.tick", []byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := pub.Flush(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "mesh delivery", func() bool {
		for _, r := range recs {
			r.mu.Lock()
			got := len(r.msgs)
			r.mu.Unlock()
			if got < n {
				return false
			}
		}
		return true
	})
	for i, r := range recs {
		r.mu.Lock()
		if len(r.msgs) != n {
			t.Errorf("broker %d subscriber: %d deliveries, want exactly %d", i, len(r.msgs), n)
		}
		seen := make(map[string]int)
		for _, m := range r.msgs {
			seen[m]++
		}
		for m, c := range seen {
			if c != 1 {
				t.Errorf("broker %d subscriber: message %q delivered %d times", i, m, c)
			}
		}
		r.mu.Unlock()
	}

	// Counter-verified dedup: broker 0 forwarded each publish to exactly
	// the two interested peers, and nothing anywhere was suppressed —
	// the topology never produced a duplicate to suppress.
	if routed := servers[0].Stats().RoutedMsgs; routed != 2*n {
		t.Errorf("origin broker RoutedMsgs = %d, want %d (one RMSG per interested peer)", routed, 2*n)
	}
	for i, s := range servers {
		if d := s.Stats().DupsSuppressed; d != 0 {
			t.Errorf("broker %d DupsSuppressed = %d, want 0 in a healthy mesh", i, d)
		}
	}
}

// TestMeshQueueGroupOneMemberMeshWide: a queue group spread across all
// three brokers receives each publish on exactly one member, mesh-wide.
func TestMeshQueueGroupOneMemberMeshWide(t *testing.T) {
	servers, addrs := startMesh(t, 3)

	var total atomic.Uint64
	perBroker := make([]atomic.Uint64, 3)
	for i := range addrs {
		c := dial(t, addrs[i])
		idx := i
		// Two members per broker: six group members mesh-wide.
		for m := 0; m < 2; m++ {
			if _, err := c.QueueSubscribe("jobs.run", "workers", func(broker.Msg) {
				total.Add(1)
				perBroker[idx].Add(1)
			}); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.Flush(2 * time.Second); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "interest propagation", func() bool {
		return servers[0].Stats().RemoteSubs >= 2
	})

	pub := dial(t, addrs[0])
	const n = 300
	for i := 0; i < n; i++ {
		if err := pub.Publish("jobs.run", []byte("job")); err != nil {
			t.Fatal(err)
		}
	}
	if err := pub.Flush(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Exactly n deliveries must arrive; give late duplicates a moment to
	// prove they don't exist before asserting.
	waitFor(t, "queue delivery", func() bool { return total.Load() >= n })
	time.Sleep(50 * time.Millisecond)
	if got := total.Load(); got != n {
		t.Fatalf("queue group received %d deliveries mesh-wide, want exactly %d", got, n)
	}
	// The origin's seeded rng picks among 2 local members and 2 remote
	// peer entries uniformly, so every broker should see a healthy share.
	for i := range perBroker {
		if got := perBroker[i].Load(); got == 0 {
			t.Errorf("broker %d queue members received nothing across %d publishes", i, n)
		}
	}
}

// TestMeshInterestWithdrawalOnBrokerDeath: killing broker B withdraws
// its interest from A within the failure-detection bound, so A stops
// routing to it (RoutedMsgs stops growing) and the rest of the mesh
// keeps working.
func TestMeshInterestWithdrawalOnBrokerDeath(t *testing.T) {
	servers, addrs := startMesh(t, 3,
		broker.WithRouteHeartbeat(25*time.Millisecond, 100*time.Millisecond))

	// One subscriber on each of B and C.
	var cGot atomic.Uint64
	cb := dial(t, addrs[1])
	if _, err := cb.Subscribe("feed.data", func(broker.Msg) {}); err != nil {
		t.Fatal(err)
	}
	if err := cb.Flush(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	cc := dial(t, addrs[2])
	if _, err := cc.Subscribe("feed.data", func(broker.Msg) { cGot.Add(1) }); err != nil {
		t.Fatal(err)
	}
	if err := cc.Flush(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "interest propagation", func() bool {
		return servers[0].Stats().RemoteSubs >= 2
	})

	pub := dial(t, addrs[0])
	if err := pub.Publish("feed.data", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := pub.Flush(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "pre-kill routing", func() bool {
		return servers[0].Stats().RoutedMsgs == 2 && cGot.Load() == 1
	})

	// Kill broker B abruptly. A must tear the route down and withdraw
	// B's interest within the detection bound (suspect + one tick, plus
	// slack for scheduling).
	servers[1].Shutdown()
	detected := make(chan struct{})
	go func() {
		waitFor(t, "route teardown", func() bool {
			st := servers[0].Stats()
			return st.Routes == 1 && st.RemoteSubs == 1
		})
		close(detected)
	}()
	select {
	case <-detected:
	case <-time.After(2 * time.Second):
		t.Fatal("broker A did not withdraw dead peer's interest within the detection bound")
	}

	// A now routes only to C: one more publish adds exactly one RoutedMsg
	// and still reaches C's subscriber.
	if err := pub.Publish("feed.data", []byte("y")); err != nil {
		t.Fatal(err)
	}
	if err := pub.Flush(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "post-kill delivery", func() bool { return cGot.Load() == 2 })
	if routed := servers[0].Stats().RoutedMsgs; routed != 3 {
		t.Errorf("RoutedMsgs after kill = %d, want 3 (dead peer no longer routed to)", routed)
	}
}

// TestMeshGossipFromSeeds: each non-seed broker is given exactly one
// route (to broker 0); gossip + redial must converge every broker to a
// full mesh, proving one seed is enough to join.
func TestMeshGossipFromSeeds(t *testing.T) {
	const n = 3
	// The advertise address must be known at construction, so reserve
	// ephemeral ports in a first pass and rebind with the address fixed
	// (mirrors a deployment's static -cluster-advertise config). The
	// rebind can race another process grabbing the freed port; skip in
	// that unlikely case rather than flake.
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		srv := broker.NewServer()
		if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		addrs[i] = srv.Addr().String()
		srv.Shutdown()
	}
	servers := make([]*broker.Server, n)
	for i := 0; i < n; i++ {
		srv := broker.NewServer(
			broker.WithSeed(int64(i+1)),
			broker.WithServerID(fmt.Sprintf("tg%d", i)),
			broker.WithClusterAdvertise(addrs[i]),
		)
		if err := srv.ListenAndServe(addrs[i]); err != nil {
			t.Skipf("ephemeral port %s re-bind raced: %v", addrs[i], err)
		}
		t.Cleanup(srv.Shutdown)
		servers[i] = srv
	}
	// Only spokes to broker 0 — no configured route between 1 and 2.
	servers[1].AddRoute(addrs[0])
	servers[2].AddRoute(addrs[0])
	waitFor(t, "gossip mesh completion", func() bool {
		for _, s := range servers {
			if s.Stats().Routes != n-1 {
				return false
			}
		}
		return true
	})
}

// TestMeshStatsConsistency: federation counters come from the same
// seqlock as the rest, so snapshots taken mid-traffic stay internally
// consistent (RoutedMsgs never exceeds what MsgsIn could have produced).
func TestMeshStatsConsistency(t *testing.T) {
	servers, addrs := startMesh(t, 2)
	c := dial(t, addrs[1])
	if _, err := c.Subscribe("s.t", func(broker.Msg) {}); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "interest", func() bool { return servers[0].Stats().RemoteSubs >= 1 })

	pub := dial(t, addrs[0])
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			pub.Publish("s.t", []byte("z"))
		}
	}()
	deadline := time.Now().Add(200 * time.Millisecond)
	for time.Now().Before(deadline) {
		st := servers[0].Stats()
		if st.RoutedMsgs > st.MsgsIn {
			t.Fatalf("torn stats snapshot: RoutedMsgs %d > MsgsIn %d", st.RoutedMsgs, st.MsgsIn)
		}
	}
	close(stop)
	wg.Wait()
}
