//go:build race

package broker

// raceEnabled lets allocation-pinning tests skip under -race: the race
// runtime allocates shadow state on the instrumented paths, which is
// not what those tests measure.
const raceEnabled = true
