package broker

import (
	"errors"
	"fmt"
	"strings"
)

// Subject syntax follows the NATS conventions: dot-separated tokens
// ("sensors.uav.infrared"). Subscriptions may use wildcards: '*' matches
// exactly one token, '>' matches one or more trailing tokens and must be
// the final token.

// ValidateSubject checks a publish subject (no wildcards allowed).
func ValidateSubject(s string) error {
	if err := validateTokens(s); err != nil {
		return err
	}
	if strings.ContainsAny(s, "*>") {
		return fmt.Errorf("broker: publish subject %q may not contain wildcards", s)
	}
	return nil
}

// ValidatePattern checks a subscription pattern (wildcards allowed).
func ValidatePattern(s string) error {
	if err := validateTokens(s); err != nil {
		return err
	}
	tokens := strings.Split(s, ".")
	for i, tok := range tokens {
		switch tok {
		case ">":
			if i != len(tokens)-1 {
				return fmt.Errorf("broker: '>' must be the final token in %q", s)
			}
		case "*":
		default:
			if strings.ContainsAny(tok, "*>") {
				return fmt.Errorf("broker: wildcard inside token %q of %q", tok, s)
			}
		}
	}
	return nil
}

func validateTokens(s string) error {
	if s == "" {
		return errors.New("broker: empty subject")
	}
	// Single pass, no strings.Split: this sits on the client's
	// per-publish path and must not allocate.
	prev := byte('.')
	for i := 0; i < len(s); i++ {
		switch ch := s[i]; ch {
		case ' ', '\t', '\r', '\n':
			return fmt.Errorf("broker: subject %q contains whitespace", s)
		case '.':
			if prev == '.' {
				return fmt.Errorf("broker: empty token in subject %q", s)
			}
			prev = ch
		default:
			prev = ch
		}
	}
	if prev == '.' {
		return fmt.Errorf("broker: empty token in subject %q", s)
	}
	return nil
}

// Match reports whether a concrete subject matches a subscription pattern.
func Match(subject, pattern string) bool {
	st := strings.Split(subject, ".")
	pt := strings.Split(pattern, ".")
	for i, p := range pt {
		switch p {
		case ">":
			return i < len(st) // '>' needs at least one remaining token
		case "*":
			if i >= len(st) {
				return false
			}
		default:
			if i >= len(st) || st[i] != p {
				return false
			}
		}
	}
	return len(st) == len(pt)
}
