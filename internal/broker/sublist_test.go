package broker

import (
	"fmt"
	"math/rand"
	"testing"
)

// differential harness: a shard's trie must agree with the reference
// Match on every (subject, pattern) pair.

func shardMatchSubs(sh *shard, subject string) map[*serverSub]bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	rs := sh.matchBytes([]byte(subject))
	got := make(map[*serverSub]bool)
	for _, s := range rs.plain {
		got[s] = true
	}
	for _, members := range rs.queues {
		for _, s := range members {
			got[s] = true
		}
	}
	return got
}

func TestTrieMatchesReferenceMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tokens := []string{"a", "b", "c", "uav1", "infrared", "video"}
	randPattern := func(wild bool) string {
		n := 1 + rng.Intn(4)
		p := ""
		for i := 0; i < n; i++ {
			if i > 0 {
				p += "."
			}
			if wild && rng.Intn(4) == 0 {
				if i == n-1 && rng.Intn(2) == 0 {
					p += ">"
					break
				}
				p += "*"
			} else {
				p += tokens[rng.Intn(len(tokens))]
			}
		}
		return p
	}

	sh := newShard(1)
	var subs []*serverSub
	for i := 0; i < 200; i++ {
		sub := &serverSub{pattern: randPattern(true), sid: fmt.Sprint(i)}
		if ValidatePattern(sub.pattern) != nil {
			continue
		}
		subs = append(subs, sub)
		sh.mu.Lock()
		sh.insert(sub)
		sh.mu.Unlock()
	}
	check := func() {
		for i := 0; i < 300; i++ {
			subject := randPattern(false)
			if ValidateSubject(subject) != nil {
				continue
			}
			got := shardMatchSubs(sh, subject)
			for _, sub := range subs {
				want := Match(subject, sub.pattern)
				if got[sub] != want {
					t.Fatalf("subject %q pattern %q: trie=%v reference=%v",
						subject, sub.pattern, got[sub], want)
				}
			}
		}
	}
	check()
	// Remove half and re-verify: removal and pruning must not disturb
	// the survivors.
	keep := subs[:0]
	for i, sub := range subs {
		if i%2 == 0 {
			sh.mu.Lock()
			if !sh.remove(sub) {
				t.Fatalf("remove(%q) reported missing", sub.pattern)
			}
			sh.mu.Unlock()
		} else {
			keep = append(keep, sub)
		}
	}
	subs = keep
	check()
	// Remove the rest: the trie must prune back to empty.
	for _, sub := range subs {
		sh.mu.Lock()
		sh.remove(sub)
		sh.mu.Unlock()
	}
	subs = nil
	if len(sh.root.next) != 0 {
		t.Errorf("trie not pruned to empty: %d root children", len(sh.root.next))
	}
	check()
}

func TestMatchCacheGeneration(t *testing.T) {
	sh := newShard(1)
	a := &serverSub{pattern: "x.y", sid: "1"}
	sh.mu.Lock()
	sh.insert(a)
	rs1 := sh.matchBytes([]byte("x.y"))
	if len(rs1.plain) != 1 {
		t.Fatalf("plain = %d, want 1", len(rs1.plain))
	}
	// Cache hit must return the identical set while the gen is stable.
	if rs2 := sh.matchBytes([]byte("x.y")); rs2 != rs1 {
		t.Error("cache miss on unchanged generation")
	}
	// Any sub/unsub bumps the generation and invalidates the entry.
	b := &serverSub{pattern: "x.*", sid: "2"}
	sh.insert(b)
	rs3 := sh.matchBytes([]byte("x.y"))
	if rs3 == rs1 {
		t.Error("stale cache entry served after insert")
	}
	if len(rs3.plain) != 2 {
		t.Errorf("plain = %d after wildcard insert, want 2", len(rs3.plain))
	}
	sh.remove(a)
	if rs4 := sh.matchBytes([]byte("x.y")); len(rs4.plain) != 1 {
		t.Errorf("plain = %d after remove, want 1", len(rs4.plain))
	}
	sh.mu.Unlock()
}

func TestShardIndexRouting(t *testing.T) {
	const n = 8
	// A subject and a pattern sharing a first literal token must land on
	// the same shard; wildcard-first patterns go everywhere.
	if shardIndex("sensors.uav1.infrared", n) != shardIndexBytes([]byte("sensors.x"), n) {
		t.Error("subject and pattern with same first token map to different shards")
	}
	if shardIndex("*.uav1", n) != -1 || shardIndex(">", n) != -1 {
		t.Error("wildcard-first pattern should map to all shards (-1)")
	}
	if got := shardIndex("sensors", n); got < 0 || got >= n {
		t.Errorf("shard index %d out of range", got)
	}
}
