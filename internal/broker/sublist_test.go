package broker

import (
	"fmt"
	"math/rand"
	"testing"
)

// differential harness: a shard's trie must agree with the reference
// Match on every (subject, pattern) pair.

func shardMatchSubs(sh *shard, subject string) map[*serverSub]bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	rs := sh.matchBytes([]byte(subject))
	got := make(map[*serverSub]bool)
	for _, s := range rs.plain {
		got[s] = true
	}
	for _, members := range rs.queues {
		for _, s := range members {
			got[s] = true
		}
	}
	return got
}

func TestTrieMatchesReferenceMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tokens := []string{"a", "b", "c", "uav1", "infrared", "video"}
	randPattern := func(wild bool) string {
		n := 1 + rng.Intn(4)
		p := ""
		for i := 0; i < n; i++ {
			if i > 0 {
				p += "."
			}
			if wild && rng.Intn(4) == 0 {
				if i == n-1 && rng.Intn(2) == 0 {
					p += ">"
					break
				}
				p += "*"
			} else {
				p += tokens[rng.Intn(len(tokens))]
			}
		}
		return p
	}

	sh := newShard(1)
	var subs []*serverSub
	for i := 0; i < 200; i++ {
		sub := &serverSub{pattern: randPattern(true), sid: fmt.Sprint(i)}
		if ValidatePattern(sub.pattern) != nil {
			continue
		}
		subs = append(subs, sub)
		sh.mu.Lock()
		sh.insert(sub)
		sh.mu.Unlock()
	}
	check := func() {
		for i := 0; i < 300; i++ {
			subject := randPattern(false)
			if ValidateSubject(subject) != nil {
				continue
			}
			got := shardMatchSubs(sh, subject)
			for _, sub := range subs {
				want := Match(subject, sub.pattern)
				if got[sub] != want {
					t.Fatalf("subject %q pattern %q: trie=%v reference=%v",
						subject, sub.pattern, got[sub], want)
				}
			}
		}
	}
	check()
	// Remove half and re-verify: removal and pruning must not disturb
	// the survivors.
	keep := subs[:0]
	for i, sub := range subs {
		if i%2 == 0 {
			sh.mu.Lock()
			if !sh.remove(sub) {
				t.Fatalf("remove(%q) reported missing", sub.pattern)
			}
			sh.mu.Unlock()
		} else {
			keep = append(keep, sub)
		}
	}
	subs = keep
	check()
	// Remove the rest: the trie must prune back to empty.
	for _, sub := range subs {
		sh.mu.Lock()
		sh.remove(sub)
		sh.mu.Unlock()
	}
	subs = nil
	if len(sh.root.next) != 0 {
		t.Errorf("trie not pruned to empty: %d root children", len(sh.root.next))
	}
	check()
}

func TestMatchCacheGeneration(t *testing.T) {
	sh := newShard(1)
	a := &serverSub{pattern: "x.y", sid: "1"}
	sh.mu.Lock()
	sh.insert(a)
	rs1 := sh.matchBytes([]byte("x.y"))
	if len(rs1.plain) != 1 {
		t.Fatalf("plain = %d, want 1", len(rs1.plain))
	}
	// Cache hit must return the identical set while the gen is stable.
	if rs2 := sh.matchBytes([]byte("x.y")); rs2 != rs1 {
		t.Error("cache miss on unchanged generation")
	}
	// Any sub/unsub bumps the generation and invalidates the entry.
	b := &serverSub{pattern: "x.*", sid: "2"}
	sh.insert(b)
	rs3 := sh.matchBytes([]byte("x.y"))
	if rs3 == rs1 {
		t.Error("stale cache entry served after insert")
	}
	if len(rs3.plain) != 2 {
		t.Errorf("plain = %d after wildcard insert, want 2", len(rs3.plain))
	}
	sh.remove(a)
	if rs4 := sh.matchBytes([]byte("x.y")); len(rs4.plain) != 1 {
		t.Errorf("plain = %d after remove, want 1", len(rs4.plain))
	}
	sh.mu.Unlock()
}

func TestShardIndexRouting(t *testing.T) {
	const n = 8
	// A subject and a pattern sharing a first literal token must land on
	// the same shard; wildcard-first patterns go everywhere.
	if shardIndex("sensors.uav1.infrared", n) != shardIndexBytes([]byte("sensors.x"), n) {
		t.Error("subject and pattern with same first token map to different shards")
	}
	if shardIndex("*.uav1", n) != -1 || shardIndex(">", n) != -1 {
		t.Error("wildcard-first pattern should map to all shards (-1)")
	}
	if got := shardIndex("sensors", n); got < 0 || got >= n {
		t.Errorf("shard index %d out of range", got)
	}
}

// TestUnsubWildcardFirstCleansAllShards pins the replicated-removal
// path: a wildcard-first pattern is inserted into every shard by
// eachPatternShard, so UNSUB must remove it from every shard, prune the
// emptied trie paths, and bump every shard's generation so stale cached
// match results are revalidated away.
func TestUnsubWildcardFirstCleansAllShards(t *testing.T) {
	const shards = 8
	s := NewServer(WithSeed(1), WithShards(shards))
	c := &serverClient{srv: s, subs: make(map[string][]*serverSub)}
	c.out.init(1<<10, 1<<20, nil)
	sub := &serverSub{client: c, pattern: "*.alerts", sid: "w1"}
	s.addSub(sub)

	// One concrete subject per shard, found by hashing candidate first
	// tokens — so every shard's match cache gets primed with an entry
	// that includes the wildcard sub.
	subjects := make([]string, shards)
	for i := 0; len(subjects[i%shards]) == 0 || i < shards; i++ {
		subj := fmt.Sprintf("tok%d.alerts", i)
		idx := shardIndex(subj, shards)
		if subjects[idx] == "" {
			subjects[idx] = subj
		}
		done := true
		for _, s := range subjects {
			if s == "" {
				done = false
				break
			}
		}
		if done {
			break
		}
	}
	gens := make([]uint64, shards)
	for i, sh := range s.shards {
		if !shardMatchSubs(sh, subjects[i])[sub] {
			t.Fatalf("shard %d: wildcard-first sub not matched by %q before UNSUB", i, subjects[i])
		}
		sh.mu.Lock()
		if _, ok := sh.cache[subjects[i]]; !ok {
			t.Fatalf("shard %d: match did not prime the cache", i)
		}
		gens[i] = sh.gen
		sh.mu.Unlock()
	}

	s.removeSub(c, "w1")

	if n := s.NumSubscriptions(); n != 0 {
		t.Fatalf("NumSubscriptions = %d after UNSUB, want 0", n)
	}
	for i, sh := range s.shards {
		if got := shardMatchSubs(sh, subjects[i]); len(got) != 0 {
			t.Errorf("shard %d: %d subs still matched after UNSUB", i, len(got))
		}
		sh.mu.Lock()
		if sh.gen == gens[i] {
			t.Errorf("shard %d: generation unchanged by UNSUB — stale cache entries would survive", i)
		}
		if !sh.root.empty() {
			t.Errorf("shard %d: trie path not pruned after UNSUB", i)
		}
		sh.mu.Unlock()
	}
}
