package broker

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Msg is one message delivered to a subscription handler.
type Msg struct {
	Subject string
	Data    []byte
}

// Handler receives messages for a subscription. Handlers run on the
// client's reader goroutine; slow handlers delay subsequent messages.
type Handler func(Msg)

// Client is a broker client. All methods are safe for concurrent use.
type Client struct {
	conn net.Conn

	wmu     sync.Mutex  // serializes writes, guards scratch and iov
	scratch []byte      // reusable frame-encode buffer
	iov     net.Buffers // reusable writev list for large publishes

	mu      sync.Mutex
	subs    map[string]*Subscription
	nextSID uint64
	pongs   []chan struct{}
	closed  bool
	readErr error
	done    chan struct{}
}

// Dial connects to a broker at addr.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("broker: dial %s: %w", addr, err)
	}
	return NewClient(conn)
}

// NewClient wraps an established connection (useful with net.Pipe in
// tests).
func NewClient(conn net.Conn) (*Client, error) {
	c := &Client{
		conn: conn,
		subs: make(map[string]*Subscription),
		done: make(chan struct{}),
	}
	if err := c.sendLine("CONNECT", "client"); err != nil {
		conn.Close()
		return nil, err
	}
	go c.readLoop()
	return c, nil
}

// Subscription is a live subscription.
type Subscription struct {
	client  *Client
	sid     string
	Pattern string
	Queue   string
	handler Handler
}

// Subscribe registers handler for every message matching pattern.
func (c *Client) Subscribe(pattern string, handler Handler) (*Subscription, error) {
	return c.subscribe(pattern, "", handler)
}

// QueueSubscribe registers handler as a member of the named queue group:
// each message is delivered to exactly one member of the group.
func (c *Client) QueueSubscribe(pattern, queue string, handler Handler) (*Subscription, error) {
	if queue == "" {
		return nil, errors.New("broker: empty queue group")
	}
	return c.subscribe(pattern, queue, handler)
}

func (c *Client) subscribe(pattern, queue string, handler Handler) (*Subscription, error) {
	if handler == nil {
		return nil, errors.New("broker: nil handler")
	}
	if err := ValidatePattern(pattern); err != nil {
		return nil, err
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClientClosed
	}
	c.nextSID++
	sid := strconv.FormatUint(c.nextSID, 10)
	sub := &Subscription{client: c, sid: sid, Pattern: pattern, Queue: queue, handler: handler}
	c.subs[sid] = sub
	c.mu.Unlock()

	var err error
	if queue == "" {
		err = c.sendLine("SUB", pattern, sid)
	} else {
		err = c.sendLine("SUB", pattern, queue, sid)
	}
	if err != nil {
		c.mu.Lock()
		delete(c.subs, sid)
		c.mu.Unlock()
		return nil, err
	}
	return sub, nil
}

// Unsubscribe removes the subscription.
func (s *Subscription) Unsubscribe() error {
	c := s.client
	c.mu.Lock()
	delete(c.subs, s.sid)
	c.mu.Unlock()
	return c.sendLine("UNSUB", s.sid)
}

// Publish sends data on subject.
func (c *Client) Publish(subject string, data []byte) error {
	if err := ValidateSubject(subject); err != nil {
		return err
	}
	if len(data) > MaxPayload {
		return fmt.Errorf("broker: payload %d exceeds max %d", len(data), MaxPayload)
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	b := c.scratch[:0]
	b = append(b, "PUB "...)
	b = append(b, subject...)
	b = append(b, ' ')
	b = strconv.AppendInt(b, int64(len(data)), 10)
	b = append(b, '\r', '\n')
	if len(data) >= clientWritevMin {
		if _, ok := c.conn.(*net.TCPConn); ok {
			// Large payload on a real socket: hand header, payload, and
			// CRLF to one writev instead of copying the payload into
			// scratch. WriteTo consumes its receiver, so pass a copy of the
			// slice header and clear the payload reference afterwards.
			c.scratch = b
			c.iov = append(c.iov[:0], b, data, crlf)
			bufs := c.iov
			_, err := bufs.WriteTo(c.conn)
			for i := range c.iov {
				c.iov[i] = nil
			}
			return err
		}
	}
	// Small payload (or pipe conn): build the whole frame in the reusable
	// scratch buffer — one conn.Write, zero per-publish allocations once
	// the buffer has grown to the working payload size.
	b = append(b, data...)
	b = append(b, '\r', '\n')
	c.scratch = b
	_, err := c.conn.Write(b)
	return err
}

// clientWritevMin is the payload size at which Publish switches from
// copying into scratch to a 3-iovec writev. Below it the memcpy is
// cheaper than the longer iovec walk.
const clientWritevMin = 4096

// Flush round-trips a PING/PONG, guaranteeing the broker has processed
// everything sent before the call.
func (c *Client) Flush(timeout time.Duration) error {
	ch := make(chan struct{}, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClientClosed
	}
	c.pongs = append(c.pongs, ch)
	c.mu.Unlock()
	if err := c.sendLine("PING"); err != nil {
		return err
	}
	// Reuse pooled timers instead of time.After: a fleet doing a flush
	// barrier per publish batch would otherwise allocate a timer (and
	// leave it live until it fires) on every call.
	t := flushTimers.Get().(*time.Timer)
	t.Reset(timeout)
	defer func() {
		if !t.Stop() {
			select {
			case <-t.C:
			default:
			}
		}
		flushTimers.Put(t)
	}()
	select {
	case <-ch:
		return nil
	case <-t.C:
		return errors.New("broker: flush timeout")
	case <-c.done:
		return c.err()
	}
}

// flushTimers pools stopped, drained timers for Flush. A pool (rather
// than one timer per client) keeps concurrent Flush calls on the same
// client correct.
var flushTimers = sync.Pool{New: func() any {
	t := time.NewTimer(time.Hour)
	if !t.Stop() {
		<-t.C
	}
	return t
}}

// ErrClientClosed is returned by operations on a closed client.
var ErrClientClosed = errors.New("broker: client closed")

// Close tears the connection down.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.conn.Close()
	<-c.done
	return err
}

func (c *Client) err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.readErr != nil {
		return c.readErr
	}
	return ErrClientClosed
}

// sendLine writes a space-joined, CRLF-terminated control line through
// the shared scratch buffer (no fmt, no per-call garbage).
func (c *Client) sendLine(words ...string) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	b := c.scratch[:0]
	for i, w := range words {
		if i > 0 {
			b = append(b, ' ')
		}
		b = append(b, w...)
	}
	b = append(b, '\r', '\n')
	c.scratch = b
	_, err := c.conn.Write(b)
	return err
}

func (c *Client) readLoop() {
	defer func() {
		c.mu.Lock()
		c.closed = true
		pongs := c.pongs
		c.pongs = nil
		c.mu.Unlock()
		for _, ch := range pongs {
			close(ch)
		}
		close(c.done)
	}()
	r := bufio.NewReaderSize(c.conn, 64*1024)
	for {
		line, err := readLine(r)
		if err != nil {
			c.mu.Lock()
			c.readErr = err
			c.mu.Unlock()
			return
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "PONG":
			c.mu.Lock()
			if len(c.pongs) > 0 {
				ch := c.pongs[0]
				c.pongs = c.pongs[1:]
				c.mu.Unlock()
				ch <- struct{}{}
			} else {
				c.mu.Unlock()
			}
		case "MSG":
			if len(fields) != 4 {
				continue
			}
			n, err := strconv.Atoi(fields[3])
			if err != nil || n < 0 || n > MaxPayload {
				return
			}
			payload := make([]byte, n)
			if _, err := io.ReadFull(r, payload); err != nil {
				return
			}
			if err := consumeCRLF(r); err != nil {
				return
			}
			c.mu.Lock()
			sub := c.subs[fields[2]]
			c.mu.Unlock()
			if sub != nil {
				sub.handler(Msg{Subject: fields[1], Data: payload})
			}
		case "-ERR":
			// Protocol errors are surfaced on the next Flush; keep reading.
		}
	}
}
