package broker

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"net"
	"strconv"
)

// link is the connection substrate every broker connection role is built
// on: the socket, a framed line reader, and the bounded outbound queue
// drained by a vectored writer goroutine (outbound.go). A serverClient
// (client↔broker) and a route (broker↔broker) are both "a link plus a
// command loop": the framing, the arena-backed payload reads, the
// queue/slow-consumer machinery, and the writer are identical, so the
// wire guarantees — per-connection FIFO in enqueue order, byte-identical
// frames across data planes — hold for both roles by construction.
//
// A serverClient can even *become* a route mid-stream (the ROUTE
// handshake upgrades an accepted connection, see route.go): the link is
// the part that survives the upgrade unchanged — same reader position,
// same outbound queue, same writer goroutine.
type link struct {
	conn net.Conn
	r    *bufio.Reader
	out  outQueue
}

// init wires the link to conn with the server's queue bounds and
// admission gauge. The writer goroutine is started separately
// (startWriter) so tests can drive a link synchronously.
func (l *link) init(conn net.Conn, queueFrames int, queueBytes int64, adm *admission) {
	l.conn = conn
	l.r = bufio.NewReaderSize(conn, 64*1024)
	l.out.init(queueFrames, queueBytes, adm)
}

// startWriter spawns the writer goroutine for the selected data plane.
// The writer owns the final conn.Close, so queued replies reach the peer
// before teardown.
func (l *link) startWriter(legacy bool, adm *admission) {
	if legacy {
		go writeLoopLegacy(l.conn, &l.out)
	} else {
		go writeLoop(l.conn, &l.out, adm)
	}
}

// enqueueMsg enqueues one framed message (header + arena payload + CRLF),
// taking the frame's arena reference before the enqueue (the writer may
// drain and release the frame the instant enqueue returns) and giving it
// back on rejection. Overflow applies the slow-consumer policy: drop the
// frame (sendDrop) or tear the connection down (sendDisconnect).
func (l *link) enqueueMsg(hdr *headerBuf, pb *payloadRef, policy SlowConsumerPolicy) sendResult {
	f := outFrame{hdr: hdr, payload: pb.data, pb: pb}
	pb.retain()
	switch l.out.enqueue(f) {
	case enqOK:
		return sendOK
	case enqClosed:
		putHeaderBuf(f.hdr)
		pb.release()
		return sendClosed
	default: // overflow: apply the slow-consumer policy
		putHeaderBuf(f.hdr)
		pb.release()
		if policy == SlowConsumerDrop {
			return sendDrop
		}
		l.out.discard()
		l.conn.Close()
		return sendDisconnect
	}
}

// sendLine enqueues a CRLF-terminated control line.
func (l *link) sendLine(line string) {
	f := outFrame{hdr: encodeLine(line)}
	if l.out.enqueue(f) != enqOK {
		putHeaderBuf(f.hdr)
	}
}

func (l *link) sendErr(msg string) { l.sendLine("-ERR " + msg) }

// readPayload reads an n-byte payload plus its CRLF terminator into a
// fresh arena buffer, returning it with the one publisher reference. On
// error the reference is dropped and the stream is unframeable.
func (l *link) readPayload(n int) (*payloadRef, error) {
	pb := arenaGet(n)
	if _, err := io.ReadFull(l.r, pb.data); err != nil {
		pb.release()
		return nil, err
	}
	if err := consumeCRLF(l.r); err != nil {
		pb.release()
		return nil, err
	}
	return pb, nil
}

// completeLineBuffered reports whether the link's reader already holds a
// full CRLF-terminated line, i.e. whether another command can be parsed
// without blocking. The scan typically ends at the next command's
// terminator a few dozen bytes in.
func (l *link) completeLineBuffered() bool {
	n := l.r.Buffered()
	if n == 0 {
		return false
	}
	buf, err := l.r.Peek(n)
	if err != nil {
		return false
	}
	return bytes.IndexByte(buf, '\n') >= 0
}

// readLineSlice returns the next CRLF- (or LF-) terminated line without
// the terminator. The slice borrows the reader's buffer and is only
// valid until the next read; over-long lines fall back to copying.
func readLineSlice(r *bufio.Reader) ([]byte, error) {
	line, err := r.ReadSlice('\n')
	if err == bufio.ErrBufferFull {
		buf := append([]byte(nil), line...)
		for err == bufio.ErrBufferFull {
			line, err = r.ReadSlice('\n')
			buf = append(buf, line...)
		}
		line = buf
	}
	if err != nil {
		return nil, err
	}
	line = line[:len(line)-1]
	if len(line) > 0 && line[len(line)-1] == '\r' {
		line = line[:len(line)-1]
	}
	return line, nil
}

// readLine is the allocating (string) variant of readLineSlice, for
// paths off the hot loop (the client reader, tests).
func readLine(r *bufio.Reader) (string, error) {
	line, err := readLineSlice(r)
	if err != nil {
		return "", err
	}
	return string(line), nil
}

// splitFields splits on runs of spaces and tabs without allocating.
func splitFields(line []byte, out [][]byte) [][]byte {
	i := 0
	for i < len(line) {
		for i < len(line) && (line[i] == ' ' || line[i] == '\t') {
			i++
		}
		if i >= len(line) {
			break
		}
		j := i
		for j < len(line) && line[j] != ' ' && line[j] != '\t' {
			j++
		}
		out = append(out, line[i:j])
		i = j
	}
	return out
}

// asciiFold reports whether b equals upper (an upper-case ASCII literal)
// ignoring case.
func asciiFold(b []byte, upper string) bool {
	if len(b) != len(upper) {
		return false
	}
	for i := 0; i < len(b); i++ {
		ch := b[i]
		if 'a' <= ch && ch <= 'z' {
			ch -= 'a' - 'A'
		}
		if ch != upper[i] {
			return false
		}
	}
	return true
}

// parseSize parses a payload size in [0, MaxPayload].
func parseSize(b []byte) (int, bool) {
	if len(b) == 0 || len(b) > 8 {
		return 0, false
	}
	n := 0
	for _, ch := range b {
		if ch < '0' || ch > '9' {
			return 0, false
		}
		n = n*10 + int(ch-'0')
	}
	if n > MaxPayload {
		return 0, false
	}
	return n, true
}

// encodeMsgHeader appends "MSG <subject> <sid> <n>\r\n" to a pooled buf.
func encodeMsgHeader(subject []byte, sid string, n int) *headerBuf {
	h := getHeaderBuf()
	b := h.b
	b = append(b, "MSG "...)
	b = append(b, subject...)
	b = append(b, ' ')
	b = append(b, sid...)
	b = append(b, ' ')
	b = strconv.AppendInt(b, int64(n), 10)
	b = append(b, '\r', '\n')
	h.b = b
	return h
}

func consumeCRLF(r *bufio.Reader) error {
	b, err := r.ReadByte()
	if err != nil {
		return err
	}
	if b == '\r' {
		if b, err = r.ReadByte(); err != nil {
			return err
		}
	}
	if b != '\n' {
		return errors.New("broker: payload not terminated by CRLF")
	}
	return nil
}
