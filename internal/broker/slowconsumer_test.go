package broker

import (
	"bufio"
	"io"
	"net"
	"strconv"
	"testing"
	"time"
)

// The slow-consumer tests run the server over net.Pipe: a pipe has zero
// kernel buffering, so a peer that stops reading stalls the writer
// goroutine deterministically (no dependence on socket buffer sizes)
// and the outbound queue fills to exactly its configured bound.

// pipeClient attaches a raw in-memory connection to srv.
func pipeClient(t *testing.T, srv *Server) net.Conn {
	t.Helper()
	server, client := net.Pipe()
	if srv.startClient(server) == nil {
		t.Fatal("startClient refused connection")
	}
	t.Cleanup(func() { client.Close() })
	return client
}

// drainMsgs reads MSG frames from conn, sending each sequence payload to
// out, until the connection dies.
func drainMsgs(conn net.Conn, out chan<- string) {
	r := bufio.NewReader(conn)
	for {
		line, err := readLine(r)
		if err != nil {
			close(out)
			return
		}
		var fields [8][]byte
		nf := splitFields([]byte(line), fields[:0])
		if len(nf) != 4 || string(nf[0]) != "MSG" {
			continue
		}
		n, _ := strconv.Atoi(string(nf[3]))
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			close(out)
			return
		}
		if err := consumeCRLF(r); err != nil {
			close(out)
			return
		}
		out <- string(payload)
	}
}

func waitSubs(t *testing.T, srv *Server, want int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for srv.NumSubscriptions() != want {
		if time.Now().After(deadline) {
			t.Fatalf("NumSubscriptions = %d, want %d", srv.NumSubscriptions(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

func mustWrite(t *testing.T, conn net.Conn, s string) {
	t.Helper()
	conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Write([]byte(s)); err != nil {
		t.Fatalf("write %q: %v", s, err)
	}
}

// runSlowConsumer drives one stalled and one healthy subscriber on the
// same subject and returns the healthy subscriber's received payloads.
// Publishes are paced in chunks smaller than the queue bound and each
// chunk is awaited from the healthy side before the next one goes out:
// the healthy subscriber thus can never legitimately overflow, while
// the stalled one (whose writer is wedged on its first flush) overflows
// as soon as cumulative traffic passes its queue cap.
func runSlowConsumer(t *testing.T, srv *Server, total int) []string {
	t.Helper()
	stalled := pipeClient(t, srv)
	mustWrite(t, stalled, "SUB flood 1\r\n")
	waitSubs(t, srv, 1)

	healthy := pipeClient(t, srv)
	got := make(chan string, total)
	go drainMsgs(healthy, got)
	mustWrite(t, healthy, "SUB flood 2\r\n")
	waitSubs(t, srv, 2)

	pub := pipeClient(t, srv)
	const chunk = 8
	var msgs []string
	deadline := time.After(10 * time.Second)
	for base := 0; base < total; base += chunk {
		n := min(chunk, total-base)
		for i := base; i < base+n; i++ {
			seq := strconv.Itoa(i)
			mustWrite(t, pub, "PUB flood "+strconv.Itoa(len(seq))+"\r\n"+seq+"\r\n")
		}
		for want := 0; want < n; want++ {
			select {
			case m, ok := <-got:
				if !ok {
					t.Fatalf("healthy subscriber connection died after %d msgs", len(msgs))
				}
				msgs = append(msgs, m)
			case <-deadline:
				t.Fatalf("healthy subscriber got %d of %d msgs", len(msgs), total)
			}
		}
	}
	return msgs
}

func TestSlowConsumerDropDoesNotBlockHealthy(t *testing.T) {
	srv := NewServer(WithSeed(1), WithWriteQueue(16, 1<<20),
		WithSlowConsumerPolicy(SlowConsumerDrop))
	defer srv.Shutdown()

	const total = 200
	msgs := runSlowConsumer(t, srv, total)
	// Healthy subscriber got every message, in publish order.
	for i, m := range msgs {
		if m != strconv.Itoa(i) {
			t.Fatalf("msg %d = %q, out of order", i, m)
		}
	}
	// Counters bump just after the fan-out enqueues, so poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	for srv.Stats().MsgsIn != total && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	st := srv.Stats()
	if st.SlowConsumerDrops == 0 {
		t.Error("expected SlowConsumerDrops > 0 for the stalled subscriber")
	}
	if st.SlowConsumerDisconnects != 0 {
		t.Errorf("SlowConsumerDisconnects = %d under drop policy", st.SlowConsumerDisconnects)
	}
	if st.MsgsIn != total {
		t.Errorf("MsgsIn = %d, want %d", st.MsgsIn, total)
	}
	// The stalled client keeps its subscription under the drop policy.
	if n := srv.NumSubscriptions(); n != 2 {
		t.Errorf("NumSubscriptions = %d, want 2 (drop keeps the client)", n)
	}
}

func TestSlowConsumerDisconnectEvictsStalled(t *testing.T) {
	srv := NewServer(WithSeed(1), WithWriteQueue(16, 1<<20),
		WithSlowConsumerPolicy(SlowConsumerDisconnect))
	defer srv.Shutdown()

	const total = 200
	msgs := runSlowConsumer(t, srv, total)
	if len(msgs) != total {
		t.Fatalf("healthy got %d, want %d", len(msgs), total)
	}
	st := srv.Stats()
	if st.SlowConsumerDisconnects == 0 {
		t.Error("expected SlowConsumerDisconnects > 0")
	}
	// The stalled client's subscription is torn down after eviction.
	deadline := time.Now().Add(2 * time.Second)
	for srv.NumSubscriptions() != 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n := srv.NumSubscriptions(); n != 1 {
		t.Errorf("NumSubscriptions = %d after eviction, want 1", n)
	}
}
