package broker

import (
	"net"
	"sync"
)

// Delivery never writes to the socket from the publish path. Each client
// owns a bounded outbound queue drained by a single writer goroutine;
// that single drain goroutine is also the FIFO argument: frames enter
// the queue in route order under the shard lock and leave in queue order
// on one goroutine, so per-client delivery order is exactly enqueue
// order no matter how the writer batches the bytes.
//
// The writer is vectored (PR 9): instead of copying header, payload, and
// CRLF into a bufio.Writer per delivery, it drains the queue in bounded
// chunks and assembles a net.Buffers batch — small frames are coalesced
// into one reusable 64 KiB buffer (one memcpy, one iovec), large payloads
// ride as their own iovec straight out of the shared refcounted arena
// buffer (zero copies between the publisher's socket read and the
// kernel). One writev syscall then moves the whole chunk. The wire bytes
// are identical to the PR 7 bufio path (test-enforced against
// writeLoopLegacy in outbound_legacy.go); only the number of copies and
// syscalls changes.
//
// The queue is bounded in both frames and payload bytes. When a client
// stops reading and its queue fills, the configured SlowConsumerPolicy
// decides: drop the new frame and count it (SlowConsumerDrop), or close
// the connection (SlowConsumerDisconnect, the default — a stalled
// subscriber is evicted rather than silently lossy). Either way the
// publish path never blocks on one stalled subscriber.

// SlowConsumerPolicy selects what happens when a client's outbound
// queue overflows.
type SlowConsumerPolicy int

const (
	// SlowConsumerDisconnect closes the overflowing client's connection
	// (counted in ServerStats.SlowConsumerDisconnects).
	SlowConsumerDisconnect SlowConsumerPolicy = iota
	// SlowConsumerDrop drops the frame that would overflow and keeps the
	// connection (counted in ServerStats.SlowConsumerDrops).
	SlowConsumerDrop
)

// Defaults for the per-client outbound queue and the writer's batching.
const (
	defaultQueueFrames = 16384
	defaultQueueBytes  = 32 << 20
	writeBufSize       = 64 * 1024

	// maxDrainFrames bounds one writer drain chunk: it caps the iovec
	// list (&le; 2*maxDrainFrames+1 entries) and sets the granularity at
	// which admission bytes are returned to the gauge.
	maxDrainFrames = 1024

	// zeroCopyMin is the payload size at which a frame stops being
	// memcpy'd into the coalesce buffer and becomes its own iovec
	// referencing the shared arena buffer. Below it, the copy is cheaper
	// than growing the iovec list the kernel must walk.
	zeroCopyMin = 1024
)

// outFrame is one queued write: hdr is a pooled buffer holding either
// a full control line (pb nil) or a MSG header; for MSG frames payload
// (the arena buffer's data, on which the frame holds one reference)
// follows, then CRLF.
type outFrame struct {
	hdr     *headerBuf
	payload []byte
	pb      *payloadRef
}

func (f *outFrame) size() int64 {
	n := int64(len(f.hdr.b))
	if f.pb != nil {
		n += int64(len(f.payload)) + 2
	}
	return n
}

// free releases everything the frame holds: the pooled header and the
// frame's arena reference. The caller must account the admission bytes
// separately (the release points differ between writer and discard).
func (f *outFrame) free() {
	putHeaderBuf(f.hdr)
	if f.pb != nil {
		f.pb.release()
	}
	*f = outFrame{}
}

// enqueue outcomes.
type enqResult int

const (
	enqOK enqResult = iota
	enqOverflow
	enqClosed
)

// outQueue is the bounded frame queue between routeBatch and a client's
// writer goroutine. It is a head-indexed slice ring so the writer can
// take bounded chunks (maxDrainFrames) without shifting the remainder.
type outQueue struct {
	mu        sync.Mutex
	cond      sync.Cond
	frames    []outFrame
	head      int
	bytes     int64
	maxFrames int
	maxBytes  int64
	closed    bool
	gauge     *admission // nil when admission is disabled
}

func (q *outQueue) init(maxFrames int, maxBytes int64, gauge *admission) {
	q.cond.L = &q.mu
	q.maxFrames = maxFrames
	q.maxBytes = maxBytes
	q.gauge = gauge
}

func (q *outQueue) enqueue(f outFrame) enqResult {
	sz := f.size()
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return enqClosed
	}
	if len(q.frames)-q.head >= q.maxFrames || q.bytes+sz > q.maxBytes {
		q.mu.Unlock()
		return enqOverflow
	}
	wasEmpty := len(q.frames) == q.head
	if q.head > 0 && len(q.frames) == cap(q.frames) {
		n := copy(q.frames, q.frames[q.head:])
		clearFrames(q.frames[n:])
		q.frames = q.frames[:n]
		q.head = 0
	}
	q.frames = append(q.frames, f)
	q.bytes += sz
	// Admission accounting must happen under q.mu: a concurrent discard
	// (slow-consumer disconnect from another shard's batch) walks the
	// queued frames and returns their bytes, so the add and the walk have
	// to be ordered.
	if q.gauge != nil {
		q.gauge.add(sz)
	}
	q.mu.Unlock()
	if wasEmpty {
		q.cond.Signal()
	}
	return enqOK
}

// take blocks until frames are pending or the queue is closed, then
// moves up to max pending frames into dst. A (empty, true) return means
// closed and fully drained.
func (q *outQueue) take(dst []outFrame, max int) ([]outFrame, bool) {
	q.mu.Lock()
	for len(q.frames) == q.head && !q.closed {
		q.cond.Wait()
	}
	n := len(q.frames) - q.head
	if n > max {
		n = max
	}
	var taken int64
	for i := q.head; i < q.head+n; i++ {
		taken += q.frames[i].size()
		dst = append(dst, q.frames[i])
		q.frames[i] = outFrame{}
	}
	q.head += n
	q.bytes -= taken
	if q.head == len(q.frames) {
		q.frames = q.frames[:0]
		q.head = 0
	}
	closed := q.closed
	q.mu.Unlock()
	return dst, closed
}

func (q *outQueue) pending() bool {
	q.mu.Lock()
	n := len(q.frames) - q.head
	q.mu.Unlock()
	return n > 0
}

// close marks the queue closed. The writer drains what is already queued
// (flushing it) and then closes the connection.
func (q *outQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Signal()
}

// discard marks the queue closed and throws away anything pending —
// used on write errors and slow-consumer eviction, when the bytes can no
// longer reach the peer. Dropped frames return their arena references
// and admission bytes.
func (q *outQueue) discard() {
	q.mu.Lock()
	q.closed = true
	var dropped int64
	for i := q.head; i < len(q.frames); i++ {
		dropped += q.frames[i].size()
		q.frames[i].free()
	}
	q.frames = q.frames[:0]
	q.head = 0
	q.bytes = 0
	gauge := q.gauge
	q.mu.Unlock()
	if gauge != nil && dropped > 0 {
		gauge.done(dropped)
	}
	q.cond.Signal()
}

func clearFrames(fs []outFrame) {
	for i := range fs {
		fs[i] = outFrame{}
	}
}

// headerBuf is a pooled header/control-line buffer. The pool hands out
// the struct pointer itself so a get/put cycle never boxes a slice
// header (an interface-conversion alloc per frame would dominate the
// hot path the arena just de-allocated).
type headerBuf struct{ b []byte }

// headerPool recycles the small per-frame header/control-line buffers,
// mirroring the udpnet encode-buffer reuse from the transport layer.
var headerPool = sync.Pool{
	New: func() any {
		return &headerBuf{b: make([]byte, 0, 64)}
	},
}

func getHeaderBuf() *headerBuf {
	h := headerPool.Get().(*headerBuf)
	h.b = h.b[:0]
	return h
}

func putHeaderBuf(h *headerBuf) {
	if h == nil {
		return
	}
	if cap(h.b) > 4096 {
		h.b = nil // don't hoard buffers grown by long subjects
	}
	headerPool.Put(h)
}

// encodeLine appends a control line + CRLF to a pooled buf.
func encodeLine(line string) *headerBuf {
	h := getHeaderBuf()
	h.b = append(h.b, line...)
	h.b = append(h.b, '\r', '\n')
	return h
}

var crlf = []byte("\r\n")

// vectorBatch owns the reusable buffers one writer goroutine needs to
// turn a chunk of frames into a writev call: the coalesce buffer for
// small frames and the iovec list.
type vectorBatch struct {
	coal []byte
	iov  net.Buffers
}

func newVectorBatch() *vectorBatch {
	return &vectorBatch{
		coal: make([]byte, 0, writeBufSize),
		iov:  make(net.Buffers, 0, 64),
	}
}

// write sends frames[0:n] to conn preserving order and wire bytes:
// headers and small payloads are appended to the coalesce buffer (each
// contiguous run becomes one iovec), payloads >= zeroCopyMin are
// referenced directly. When the coalesce buffer fills mid-chunk the
// accumulated iovecs are flushed and assembly continues, so any frame
// mix terminates.
func (v *vectorBatch) write(conn net.Conn, frames []outFrame) error {
	coal := v.coal[:0]
	iov := v.iov[:0]
	mark := 0 // start of the coalesce segment not yet in iov

	flush := func() error {
		if len(coal) > mark {
			iov = append(iov, coal[mark:])
		}
		if len(iov) == 0 {
			return nil
		}
		var err error
		if len(iov) == 1 {
			_, err = conn.Write(iov[0])
		} else {
			bufs := iov // WriteTo consumes its receiver; keep iov's header
			_, err = bufs.WriteTo(conn)
		}
		for i := range iov {
			iov[i] = nil
		}
		iov = iov[:0]
		coal = coal[:0]
		mark = 0
		return err
	}
	// fit flushes early if n more coalesced bytes would overflow the
	// buffer; oversize spills (n > cap even when empty) grow it once.
	fit := func(n int) error {
		if len(coal)+n <= cap(coal) {
			return nil
		}
		if err := flush(); err != nil {
			return err
		}
		if n > cap(coal) {
			coal = make([]byte, 0, n)
		}
		return nil
	}

	var err error
	for i := range frames {
		f := &frames[i]
		hdr := f.hdr.b
		if f.pb != nil && len(f.payload) >= zeroCopyMin {
			if err = fit(len(hdr)); err != nil {
				break
			}
			coal = append(coal, hdr...)
			iov = append(iov, coal[mark:])
			mark = len(coal)
			iov = append(iov, f.payload)
			if err = fit(2); err != nil {
				break
			}
			coal = append(coal, crlf...)
			continue
		}
		need := len(hdr) + len(f.payload) + 2
		if err = fit(need); err != nil {
			break
		}
		coal = append(coal, hdr...)
		if f.pb != nil {
			coal = append(coal, f.payload...)
			coal = append(coal, crlf...)
		}
	}
	if err == nil {
		err = flush()
	}
	v.coal = coal[:0]
	v.iov = iov[:0]
	return err
}

// writeLoop is the per-client writer goroutine: it drains the queue in
// bounded chunks, assembles each chunk into a coalesced+zero-copy writev
// batch, and releases every frame's arena reference and admission bytes
// once the chunk is written (or abandoned on error). It owns the final
// conn.Close so that queued protocol replies (-ERR, PONG) reach the peer
// before teardown.
func writeLoop(conn net.Conn, q *outQueue, gauge *admission) {
	vb := newVectorBatch()
	var batch []outFrame
	for {
		var closed bool
		batch, closed = q.take(batch[:0], maxDrainFrames)
		if len(batch) == 0 && closed {
			conn.Close()
			return
		}
		err := vb.write(conn, batch)
		var written int64
		for i := range batch {
			written += batch[i].size()
			batch[i].free()
		}
		if gauge != nil && written > 0 {
			gauge.done(written)
		}
		if err != nil {
			// The peer is gone: unblock the reader and drop the rest.
			conn.Close()
			q.discard()
		}
	}
}
