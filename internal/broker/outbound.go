package broker

import (
	"bufio"
	"net"
	"sync"
)

// Delivery no longer writes to the socket from the publish path. Each
// client owns a bounded outbound queue drained by a single writer
// goroutine into a bufio.Writer: frame header, payload, and CRLF are
// coalesced into the buffer and flushed only when the queue runs empty
// (or bufio's own size threshold forces it), so a 10k-way fan-out costs
// ~one syscall per client per batch instead of three per message. The
// single drain goroutine is also the FIFO argument: frames enter the
// queue in route order under the shard lock and leave in queue order on
// one goroutine, so per-client delivery order is exactly enqueue order.
//
// The queue is bounded in both frames and payload bytes. When a client
// stops reading and its queue fills, the configured SlowConsumerPolicy
// decides: drop the new frame and count it (SlowConsumerDrop), or close
// the connection (SlowConsumerDisconnect, the default — a stalled
// subscriber is evicted rather than silently lossy). Either way the
// publish path never blocks on one stalled subscriber.

// SlowConsumerPolicy selects what happens when a client's outbound
// queue overflows.
type SlowConsumerPolicy int

const (
	// SlowConsumerDisconnect closes the overflowing client's connection
	// (counted in ServerStats.SlowConsumerDisconnects).
	SlowConsumerDisconnect SlowConsumerPolicy = iota
	// SlowConsumerDrop drops the frame that would overflow and keeps the
	// connection (counted in ServerStats.SlowConsumerDrops).
	SlowConsumerDrop
)

// Defaults for the per-client outbound queue and the writer's buffer.
const (
	defaultQueueFrames = 16384
	defaultQueueBytes  = 32 << 20
	writeBufSize       = 64 * 1024
)

// outFrame is one queued write: header is a pooled buffer holding either
// a full control line (payload nil) or a MSG header; for MSG frames the
// shared fan-out payload follows, then CRLF.
type outFrame struct {
	header  []byte
	payload []byte
}

func (f outFrame) size() int64 {
	n := int64(len(f.header))
	if f.payload != nil {
		n += int64(len(f.payload)) + 2
	}
	return n
}

// enqueue outcomes.
type enqResult int

const (
	enqOK enqResult = iota
	enqOverflow
	enqClosed
)

// outQueue is the bounded frame queue between route() and a client's
// writer goroutine.
type outQueue struct {
	mu        sync.Mutex
	cond      sync.Cond
	frames    []outFrame
	bytes     int64
	maxFrames int
	maxBytes  int64
	closed    bool
}

func (q *outQueue) init(maxFrames int, maxBytes int64) {
	q.cond.L = &q.mu
	q.maxFrames = maxFrames
	q.maxBytes = maxBytes
}

func (q *outQueue) enqueue(f outFrame) enqResult {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return enqClosed
	}
	if len(q.frames) >= q.maxFrames || q.bytes+f.size() > q.maxBytes {
		q.mu.Unlock()
		return enqOverflow
	}
	wasEmpty := len(q.frames) == 0
	q.frames = append(q.frames, f)
	q.bytes += f.size()
	q.mu.Unlock()
	if wasEmpty {
		q.cond.Signal()
	}
	return enqOK
}

// take blocks until frames are pending or the queue is closed, moving
// everything pending into dst. A (empty, true) return means closed and
// fully drained.
func (q *outQueue) take(dst []outFrame) ([]outFrame, bool) {
	q.mu.Lock()
	for len(q.frames) == 0 && !q.closed {
		q.cond.Wait()
	}
	dst = append(dst, q.frames...)
	for i := range q.frames {
		q.frames[i] = outFrame{}
	}
	q.frames = q.frames[:0]
	q.bytes = 0
	closed := q.closed
	q.mu.Unlock()
	return dst, closed
}

func (q *outQueue) pending() bool {
	q.mu.Lock()
	n := len(q.frames)
	q.mu.Unlock()
	return n > 0
}

// close marks the queue closed. The writer drains what is already queued
// (flushing it) and then closes the connection.
func (q *outQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Signal()
}

// discard marks the queue closed and throws away anything pending —
// used on write errors, when the bytes can no longer reach the peer.
func (q *outQueue) discard() {
	q.mu.Lock()
	q.closed = true
	for i := range q.frames {
		putHeaderBuf(q.frames[i].header)
		q.frames[i] = outFrame{}
	}
	q.frames = q.frames[:0]
	q.bytes = 0
	q.mu.Unlock()
	q.cond.Signal()
}

// headerPool recycles the small per-frame header/control-line buffers,
// mirroring the udpnet encode-buffer reuse from the transport layer.
var headerPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 64)
		return &b
	},
}

func getHeaderBuf() []byte {
	return (*(headerPool.Get().(*[]byte)))[:0]
}

func putHeaderBuf(b []byte) {
	if b == nil || cap(b) > 4096 {
		return // don't hoard buffers grown by long subjects
	}
	headerPool.Put(&b)
}

// encodeLine appends a control line + CRLF to a pooled buf.
func encodeLine(line string) []byte {
	b := getHeaderBuf()
	b = append(b, line...)
	b = append(b, '\r', '\n')
	return b
}

var crlf = []byte("\r\n")

// writeLoop is the per-client writer goroutine: it drains the queue in
// batches, coalesces frames into the buffered writer, and flushes when
// the queue runs dry. It owns the final conn.Close so that queued
// protocol replies (-ERR, PONG) reach the peer before teardown.
func writeLoop(conn net.Conn, q *outQueue) {
	bw := bufio.NewWriterSize(conn, writeBufSize)
	var batch []outFrame
	for {
		var closed bool
		batch, closed = q.take(batch[:0])
		if len(batch) == 0 && closed {
			bw.Flush()
			conn.Close()
			return
		}
		ok := true
		for _, f := range batch {
			if ok {
				_, err := bw.Write(f.header)
				if err == nil && f.payload != nil {
					if _, err = bw.Write(f.payload); err == nil {
						_, err = bw.Write(crlf)
					}
				}
				ok = err == nil
			}
			putHeaderBuf(f.header)
		}
		if ok && !q.pending() {
			ok = bw.Flush() == nil
		}
		if !ok {
			// The peer is gone: unblock the reader and drop the rest.
			conn.Close()
			q.discard()
		}
	}
}
