// Package fleet is the 100k-subscriber scale harness for the broker: it
// multiplexes an arbitrary number of mock subscribers over a small
// number of real TCP connections against an in-process server, stamps
// every publish with a send timestamp, and measures fan-out throughput
// plus p50/p99/p99.9 delivery latency. One Run is one sweep cell of
// BENCH_broker.json (group size x publish rate x payload size).
package fleet

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"adamant/internal/broker"
)

// timestampBytes is the payload prefix carrying the publisher's
// send-time (UnixNano, little-endian); payloads must be at least this
// large so every delivery can be latency-stamped.
const timestampBytes = 8

// minPaceTick is the floor on the publisher's pacing quantum. Sleeping
// per message at sub-millisecond intervals measures the OS timer, not
// the broker: wake-up jitter exceeds the interval and every cell looks
// "behind schedule" regardless of data plane. Instead the paced loop
// wakes at max(interval, minPaceTick), sends every message whose
// intended time has arrived in one batch, and stamps each with its own
// intended time — so quantization adds at most one tick of measured
// latency (identically on both planes) and BehindSchedule only counts
// lag beyond the quantum, i.e. genuine backpressure.
const minPaceTick = 2 * time.Millisecond

// Config describes one fleet run.
type Config struct {
	// Subscribers is the fan-out group size: every subscriber holds one
	// subscription on the same subject, so each publish delivers to all
	// of them.
	Subscribers int
	// Conns is the number of real TCP connections the subscribers are
	// multiplexed over (distinct sids on shared conns). Default 16.
	Conns int
	// PayloadBytes per publish, >= 8 (timestamp prefix). Default 128.
	PayloadBytes int
	// Messages published. Default 100.
	Messages int
	// RateHz paces the publisher; 0 publishes at maximum rate.
	//
	// A paced run is measured open-loop: every payload is stamped with
	// the publisher's *intended* send time (start + i/rate), not the
	// actual write time. If the broker pushes back (admission, TCP) and
	// the publisher falls behind schedule, that stall shows up in the
	// delivery latency instead of silently shifting the measurement
	// window — the coordinated-omission bias the PR 7 harness had.
	// Sends are quantized to max(1/rate, minPaceTick); see minPaceTick.
	// Unpaced runs have no schedule, are stamped at actual send time,
	// and are flagged closed-loop in the Result.
	RateHz int

	// Seed/Shards/QueueFrames/QueueBytes configure the in-process
	// server. The queue defaults are generous (1<<17 frames, 256 MB) so
	// a max-rate burst into a 100k group does not immediately trip the
	// slow-consumer policy; drops that still happen are counted, not
	// hidden — completion waits for delivered+dropped.
	Seed        int64
	Shards      int
	QueueFrames int
	QueueBytes  int64

	// Legacy runs the server on the pre-PR 9 data plane (per-publish
	// routing, bufio copy writer, no admission) for in-tree before/after
	// comparison. AdmissionBytes overrides the publish-admission window
	// (0 = broker default, < 0 = disabled).
	Legacy         bool
	AdmissionBytes int64
}

// Result is one measured sweep cell.
type Result struct {
	Subscribers  int `json:"subscribers"`
	Conns        int `json:"conns"`
	PayloadBytes int `json:"payload_bytes"`
	Messages     int `json:"messages"`
	RateHz       int `json:"rate_hz"`

	// DataPlane is "vectored" (PR 9) or "legacy" (pre-PR 9); OpenLoop
	// reports whether latency was stamped from the intended send
	// schedule (paced runs) or the actual send time (unpaced runs,
	// which are closed-loop and understate latency under saturation).
	DataPlane string `json:"data_plane"`
	OpenLoop  bool   `json:"open_loop"`

	Delivered uint64 `json:"delivered"`
	Dropped   uint64 `json:"dropped"`

	// BehindSchedule counts publishes that went out more than one pacing
	// quantum (max(interval, minPaceTick)) after their intended send
	// time; MaxSendLagMs is the worst observed lag. A large
	// BehindSchedule means the offered rate was not actually sustained —
	// the cell is at or past the saturation knee.
	BehindSchedule uint64  `json:"behind_schedule"`
	MaxSendLagMs   float64 `json:"max_send_lag_ms"`

	Seconds          float64 `json:"seconds"`
	PublishPerSec    float64 `json:"publish_per_sec"`
	DeliveriesPerSec float64 `json:"deliveries_per_sec"`

	LatencyP50Ms  float64 `json:"latency_p50_ms"`
	LatencyP99Ms  float64 `json:"latency_p99_ms"`
	LatencyP999Ms float64 `json:"latency_p999_ms"`
	LatencyMaxMs  float64 `json:"latency_max_ms"`
}

func (c *Config) normalize() error {
	if c.Subscribers <= 0 {
		return fmt.Errorf("fleet: Subscribers must be > 0, got %d", c.Subscribers)
	}
	if c.Conns <= 0 {
		c.Conns = 16
	}
	if c.Conns > c.Subscribers {
		c.Conns = c.Subscribers
	}
	if c.PayloadBytes < timestampBytes {
		c.PayloadBytes = 128
	}
	if c.PayloadBytes > broker.MaxPayload {
		return fmt.Errorf("fleet: PayloadBytes %d exceeds MaxPayload %d", c.PayloadBytes, broker.MaxPayload)
	}
	if c.Messages <= 0 {
		c.Messages = 100
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.QueueFrames <= 0 {
		c.QueueFrames = 1 << 17
	}
	if c.QueueBytes <= 0 {
		c.QueueBytes = 256 << 20
	}
	return nil
}

// Run starts an in-process server, attaches the mock-subscriber fleet,
// publishes cfg.Messages timestamped payloads, and blocks until every
// expected delivery is either received or counted as dropped.
func Run(cfg Config) (Result, error) {
	if err := cfg.normalize(); err != nil {
		return Result{}, err
	}
	res := Result{
		Subscribers:  cfg.Subscribers,
		Conns:        cfg.Conns,
		PayloadBytes: cfg.PayloadBytes,
		Messages:     cfg.Messages,
		RateHz:       cfg.RateHz,
		DataPlane:    "vectored",
		OpenLoop:     cfg.RateHz > 0,
	}

	opts := []broker.Option{
		broker.WithSeed(cfg.Seed),
		broker.WithWriteQueue(cfg.QueueFrames, cfg.QueueBytes),
		broker.WithSlowConsumerPolicy(broker.SlowConsumerDrop),
	}
	if cfg.Shards > 0 {
		opts = append(opts, broker.WithShards(cfg.Shards))
	}
	if cfg.Legacy {
		res.DataPlane = "legacy"
		opts = append(opts, broker.WithLegacyDataPlane())
	}
	if cfg.AdmissionBytes != 0 {
		opts = append(opts, broker.WithPublishAdmission(cfg.AdmissionBytes, 0))
	}
	srv := broker.NewServer(opts...)
	if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
		return res, err
	}
	defer srv.Shutdown()
	addr := srv.Addr().String()

	var delivered atomic.Uint64
	readers := make([]*fleetReader, cfg.Conns)
	var wg sync.WaitGroup
	for i := range readers {
		conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
		if err != nil {
			return res, err
		}
		defer conn.Close()
		r := &fleetReader{conn: conn, delivered: &delivered, pong: make(chan struct{}, 1)}
		readers[i] = r
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.loop()
		}()
	}

	// Subscribe the whole fleet: subscriber j rides conn j%Conns with
	// sid j, all on the one fan-out subject.
	for i, r := range readers {
		w := bufio.NewWriterSize(r.conn, 64*1024)
		for j := i; j < cfg.Subscribers; j += cfg.Conns {
			w.WriteString("SUB fleet.bcast " + strconv.Itoa(j) + "\r\n")
		}
		if err := w.Flush(); err != nil {
			return res, err
		}
	}
	// PING/PONG barrier: every SUB processed before timing starts.
	for i, r := range readers {
		if _, err := r.conn.Write([]byte("PING\r\n")); err != nil {
			return res, err
		}
		select {
		case <-r.pong:
		case <-time.After(60 * time.Second):
			return res, fmt.Errorf("fleet: conn %d: no PONG after subscribe", i)
		}
	}

	pub, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return res, err
	}
	defer pub.Close()
	pw := bufio.NewWriterSize(pub, 64*1024)

	header := []byte("PUB fleet.bcast " + strconv.Itoa(cfg.PayloadBytes) + "\r\n")
	payload := make([]byte, cfg.PayloadBytes)
	var interval time.Duration
	if cfg.RateHz > 0 {
		interval = time.Second / time.Duration(cfg.RateHz)
	}

	expected := uint64(cfg.Messages) * uint64(cfg.Subscribers)
	start := time.Now()
	behind, maxLag, err := publishTimestamped(pw, header, payload, cfg.Messages, interval, start)
	if err != nil {
		return res, err
	}
	res.BehindSchedule = behind
	res.MaxSendLagMs = float64(maxLag) / 1e6

	// Completion: every expected delivery accounted for, received or
	// dropped by the slow-consumer policy. The deadline scales with the
	// cell size (conservative 100k deliveries/s floor).
	deadline := time.Now().Add(60*time.Second + time.Duration(expected/100_000)*time.Second)
	for {
		d := delivered.Load()
		dropped := srv.Stats().SlowConsumerDrops
		if d+dropped >= expected {
			res.Delivered = d
			res.Dropped = dropped
			break
		}
		if time.Now().After(deadline) {
			return res, fmt.Errorf("fleet: timeout, %d delivered + %d dropped of %d expected",
				d, dropped, expected)
		}
		time.Sleep(time.Millisecond)
	}
	res.Seconds = time.Since(start).Seconds()
	res.PublishPerSec = float64(cfg.Messages) / res.Seconds
	res.DeliveriesPerSec = float64(res.Delivered) / res.Seconds

	// Close the subscriber conns so the readers exit, then merge their
	// per-conn histograms.
	for _, r := range readers {
		r.conn.Close()
	}
	wg.Wait()
	var hist Histogram
	for _, r := range readers {
		hist.Merge(&r.hist)
	}
	res.LatencyP50Ms = float64(hist.Quantile(0.50)) / 1e6
	res.LatencyP99Ms = float64(hist.Quantile(0.99)) / 1e6
	res.LatencyP999Ms = float64(hist.Quantile(0.999)) / 1e6
	res.LatencyMaxMs = float64(hist.Max()) / 1e6
	return res, nil
}

// publishTimestamped drives one publisher connection (shared by the
// single-broker and mesh harnesses). With interval > 0 it runs open
// loop: every stamp is the message's *intended* send time
// (start + i*interval). If a flush blocks on broker backpressure the
// next batch goes out late and delivery latency grows by exactly the
// lag, instead of the sample silently moving to a later window. Sends
// are quantized to max(interval, minPaceTick): each wake flushes every
// message due by now, so the batch reaches the wire together — exactly
// the shape the broker's batched ingest path must absorb. behind counts
// publishes more than one quantum late (genuine backpressure), maxLag
// the worst lag. With interval == 0 there is no schedule: stamp actual
// send time and flush per publish (closed loop — a buffered batch would
// stamp timestamps long before the bytes reach the wire and flatter
// latency).
func publishTimestamped(pw *bufio.Writer, header, payload []byte, messages int, interval time.Duration, start time.Time) (behind uint64, maxLag time.Duration, err error) {
	crlfTail := []byte("\r\n")
	if interval <= 0 {
		for i := 0; i < messages; i++ {
			binary.LittleEndian.PutUint64(payload, uint64(time.Now().UnixNano()))
			pw.Write(header)
			pw.Write(payload)
			pw.Write(crlfTail)
			if err := pw.Flush(); err != nil {
				return behind, maxLag, err
			}
		}
		return behind, maxLag, nil
	}
	quantum := interval
	if quantum < minPaceTick {
		quantum = minPaceTick
	}
	for i := 0; i < messages; {
		next := start.Add(time.Duration(i) * interval)
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		now := time.Now()
		due := int(now.Sub(start)/interval) + 1
		if due > messages {
			due = messages
		}
		if due <= i {
			due = i + 1
		}
		for ; i < due; i++ {
			next = start.Add(time.Duration(i) * interval)
			if lag := now.Sub(next); lag > 0 {
				if lag > maxLag {
					maxLag = lag
				}
				if lag > quantum {
					behind++
				}
			}
			binary.LittleEndian.PutUint64(payload, uint64(next.UnixNano()))
			pw.Write(header)
			pw.Write(payload)
			pw.Write(crlfTail)
		}
		if err := pw.Flush(); err != nil {
			return behind, maxLag, err
		}
	}
	return behind, maxLag, nil
}

// fleetReader drains one multiplexed connection: it counts MSG frames,
// stamps per-delivery latency from the payload's timestamp prefix into
// its own histogram, and forwards PONGs to the setup barrier.
type fleetReader struct {
	conn      net.Conn
	delivered *atomic.Uint64
	pong      chan struct{}
	hist      Histogram
}

func (r *fleetReader) loop() {
	br := bufio.NewReaderSize(r.conn, 256*1024)
	var payload []byte
	for {
		line, err := br.ReadSlice('\n')
		if err != nil {
			return
		}
		if len(line) >= 4 && line[0] == 'P' && line[1] == 'O' {
			select {
			case r.pong <- struct{}{}:
			default:
			}
			continue
		}
		if len(line) < 4 || line[0] != 'M' || line[1] != 'S' || line[2] != 'G' {
			continue
		}
		// Last space-separated field of the MSG line is the payload size.
		sz := 0
		for i := len(line) - 2; i >= 0; i-- {
			if line[i] == ' ' {
				sz, _ = strconv.Atoi(string(line[i+1 : len(line)-2]))
				break
			}
		}
		if cap(payload) < sz+2 {
			payload = make([]byte, sz+2)
		}
		if _, err := io.ReadFull(br, payload[:sz+2]); err != nil {
			return
		}
		if sz >= timestampBytes {
			sent := int64(binary.LittleEndian.Uint64(payload))
			if lat := time.Now().UnixNano() - sent; lat >= 0 {
				r.hist.Record(uint64(lat))
			}
		}
		r.delivered.Add(1)
	}
}
