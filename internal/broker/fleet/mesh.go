package fleet

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"adamant/internal/broker"
)

// MeshConfig describes one cross-broker fleet run: an N-broker full
// mesh with the publisher pinned to broker 0 and every subscriber on
// brokers 1..N-1, so each delivery crosses exactly one inter-broker
// route. The measured latency therefore includes the route hop —
// publisher conn → broker 0 → RMSG → subscriber's broker → subscriber —
// which is the number a multi-node deployment actually sees.
type MeshConfig struct {
	// Brokers is the mesh size (≥ 2; default 3). Broker 0 hosts only the
	// publisher; subscribers are split evenly across the rest.
	Brokers int

	// Subscribers is the total fan-out group size across the mesh.
	Subscribers int
	// Conns is the total number of real subscriber TCP connections,
	// split across the subscriber brokers (≥ 1 per broker). Default 16.
	Conns int
	// PayloadBytes / Messages / RateHz as in Config.
	PayloadBytes int
	Messages     int
	RateHz       int

	// Seed/Shards/QueueFrames/QueueBytes as in Config; every broker in
	// the mesh gets the same tuning (seeds offset per broker).
	Seed        int64
	Shards      int
	QueueFrames int
	QueueBytes  int64
}

// MeshResult is one measured mesh cell: the usual fleet metrics plus
// the federation counters that prove the topology did what it claims.
type MeshResult struct {
	Result
	Brokers int `json:"brokers"`

	// RoutedMsgs is broker 0's forwarded-RMSG count: with all
	// subscribers remote it should be Messages × (subscriber brokers
	// holding interest). DupsSuppressed is summed across the mesh and
	// must be 0 in a healthy full mesh — a nonzero value means a
	// forwarded frame came back to its origin.
	RoutedMsgs     uint64 `json:"routed_msgs"`
	DupsSuppressed uint64 `json:"dups_suppressed"`
}

func (c *MeshConfig) normalize() (Config, error) {
	if c.Brokers == 0 {
		c.Brokers = 3
	}
	if c.Brokers < 2 {
		return Config{}, fmt.Errorf("fleet: mesh needs >= 2 brokers, got %d", c.Brokers)
	}
	base := Config{
		Subscribers:  c.Subscribers,
		Conns:        c.Conns,
		PayloadBytes: c.PayloadBytes,
		Messages:     c.Messages,
		RateHz:       c.RateHz,
		Seed:         c.Seed,
		Shards:       c.Shards,
		QueueFrames:  c.QueueFrames,
		QueueBytes:   c.QueueBytes,
	}
	if err := base.normalize(); err != nil {
		return base, err
	}
	if subBrokers := c.Brokers - 1; base.Subscribers < subBrokers {
		return base, fmt.Errorf("fleet: mesh needs >= 1 subscriber per subscriber broker (%d), got %d",
			subBrokers, base.Subscribers)
	}
	return base, nil
}

// RunMesh starts an in-process N-broker full mesh, pins the fleet's
// subscribers to brokers 1..N-1 and the publisher to broker 0, and
// measures cross-broker delivery the same open-loop way Run measures a
// single broker. It blocks until the mesh converges (routes up,
// interest propagated) before the timed window starts.
func RunMesh(cfg MeshConfig) (MeshResult, error) {
	base, err := cfg.normalize()
	if err != nil {
		return MeshResult{}, err
	}
	res := MeshResult{
		Result: Result{
			Subscribers:  base.Subscribers,
			Conns:        base.Conns,
			PayloadBytes: base.PayloadBytes,
			Messages:     base.Messages,
			RateHz:       base.RateHz,
			DataPlane:    "vectored",
			OpenLoop:     base.RateHz > 0,
		},
		Brokers: cfg.Brokers,
	}

	servers := make([]*broker.Server, cfg.Brokers)
	addrs := make([]string, cfg.Brokers)
	for i := range servers {
		opts := []broker.Option{
			broker.WithSeed(base.Seed + int64(i)),
			broker.WithServerID(fmt.Sprintf("mesh%d", i)),
			broker.WithWriteQueue(base.QueueFrames, base.QueueBytes),
			broker.WithSlowConsumerPolicy(broker.SlowConsumerDrop),
		}
		if base.Shards > 0 {
			opts = append(opts, broker.WithShards(base.Shards))
		}
		srv := broker.NewServer(opts...)
		if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
			return res, err
		}
		defer srv.Shutdown()
		servers[i] = srv
		addrs[i] = srv.Addr().String()
	}
	// Explicit full mesh: each pair connected once (the handshake
	// tie-break would also resolve double dials, but there is no reason
	// to create them).
	for i := range servers {
		for j := i + 1; j < len(servers); j++ {
			servers[j].AddRoute(addrs[i])
		}
	}
	if err := waitMesh(servers, func(s *broker.Server) bool {
		return s.Stats().Routes == uint64(cfg.Brokers-1)
	}, "route formation"); err != nil {
		return res, err
	}

	// Split subscribers and their conns across brokers 1..N-1.
	var delivered atomic.Uint64
	var readers []*fleetReader
	var wg sync.WaitGroup
	defer func() {
		for _, r := range readers {
			r.conn.Close()
		}
		wg.Wait()
	}()
	subsLeft, connsLeft := base.Subscribers, base.Conns
	sid := 0
	for b := 1; b < cfg.Brokers; b++ {
		subs := subsLeft / (cfg.Brokers - b)
		subsLeft -= subs
		conns := connsLeft / (cfg.Brokers - b)
		if conns < 1 {
			conns = 1
		}
		if conns > subs {
			conns = subs
		}
		connsLeft -= conns
		for ci := 0; ci < conns; ci++ {
			conn, err := net.DialTimeout("tcp", addrs[b], 5*time.Second)
			if err != nil {
				return res, err
			}
			r := &fleetReader{conn: conn, delivered: &delivered, pong: make(chan struct{}, 1)}
			readers = append(readers, r)
			wg.Add(1)
			go func() {
				defer wg.Done()
				r.loop()
			}()
			w := bufio.NewWriterSize(conn, 64*1024)
			for j := ci; j < subs; j += conns {
				w.WriteString("SUB fleet.bcast " + strconv.Itoa(sid) + "\r\n")
				sid++
			}
			w.WriteString("PING\r\n")
			if err := w.Flush(); err != nil {
				return res, err
			}
			select {
			case <-r.pong:
			case <-time.After(60 * time.Second):
				return res, fmt.Errorf("fleet: broker %d conn %d: no PONG after subscribe", b, ci)
			}
		}
	}
	// Interest barrier: broker 0 must hold the propagated interest from
	// every subscriber broker before the timed window, or the first
	// publishes would silently miss remote subscribers.
	if err := waitMesh(servers[:1], func(s *broker.Server) bool {
		return s.Stats().RemoteSubs >= uint64(cfg.Brokers-1)
	}, "interest propagation"); err != nil {
		return res, err
	}

	pub, err := net.DialTimeout("tcp", addrs[0], 5*time.Second)
	if err != nil {
		return res, err
	}
	defer pub.Close()
	pw := bufio.NewWriterSize(pub, 64*1024)
	header := []byte("PUB fleet.bcast " + strconv.Itoa(base.PayloadBytes) + "\r\n")
	payload := make([]byte, base.PayloadBytes)
	var interval time.Duration
	if base.RateHz > 0 {
		interval = time.Second / time.Duration(base.RateHz)
	}

	expected := uint64(base.Messages) * uint64(base.Subscribers)
	start := time.Now()
	behind, maxLag, err := publishTimestamped(pw, header, payload, base.Messages, interval, start)
	if err != nil {
		return res, err
	}
	res.BehindSchedule = behind
	res.MaxSendLagMs = float64(maxLag) / 1e6

	deadline := time.Now().Add(60*time.Second + time.Duration(expected/100_000)*time.Second)
	for {
		d := delivered.Load()
		var dropped uint64
		for _, s := range servers {
			dropped += s.Stats().SlowConsumerDrops
		}
		if d+dropped >= expected {
			res.Delivered = d
			res.Dropped = dropped
			break
		}
		if time.Now().After(deadline) {
			return res, fmt.Errorf("fleet: mesh timeout, %d delivered + %d dropped of %d expected",
				d, dropped, expected)
		}
		time.Sleep(time.Millisecond)
	}
	res.Seconds = time.Since(start).Seconds()
	res.PublishPerSec = float64(base.Messages) / res.Seconds
	res.DeliveriesPerSec = float64(res.Delivered) / res.Seconds
	res.RoutedMsgs = servers[0].Stats().RoutedMsgs
	for _, s := range servers {
		res.DupsSuppressed += s.Stats().DupsSuppressed
	}

	for _, r := range readers {
		r.conn.Close()
	}
	wg.Wait()
	var hist Histogram
	for _, r := range readers {
		hist.Merge(&r.hist)
	}
	res.LatencyP50Ms = float64(hist.Quantile(0.50)) / 1e6
	res.LatencyP99Ms = float64(hist.Quantile(0.99)) / 1e6
	res.LatencyP999Ms = float64(hist.Quantile(0.999)) / 1e6
	res.LatencyMaxMs = float64(hist.Max()) / 1e6
	return res, nil
}

// waitMesh polls cond on every server until it holds mesh-wide.
func waitMesh(servers []*broker.Server, cond func(*broker.Server) bool, what string) error {
	deadline := time.Now().Add(10 * time.Second)
	for {
		ok := true
		for _, s := range servers {
			if !cond(s) {
				ok = false
				break
			}
		}
		if ok {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("fleet: mesh %s did not converge", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
