package fleet

import (
	"testing"
)

// TestFleetAccounting runs a small fleet over real sockets and checks
// the invariant the harness is built on: every expected delivery is
// accounted for (received or dropped) and latency stamps are sane.
func TestFleetAccounting(t *testing.T) {
	res, err := Run(Config{
		Subscribers:  500,
		Conns:        4,
		PayloadBytes: 64,
		Messages:     100,
		Seed:         7,
	})
	if err != nil {
		t.Fatal(err)
	}
	expected := uint64(100 * 500)
	if res.Delivered+res.Dropped < expected {
		t.Fatalf("delivered %d + dropped %d < expected %d", res.Delivered, res.Dropped, expected)
	}
	if res.Delivered == 0 {
		t.Fatal("no deliveries at all")
	}
	if res.LatencyP50Ms <= 0 {
		t.Errorf("p50 latency %v ms, want > 0", res.LatencyP50Ms)
	}
	if res.LatencyP50Ms > res.LatencyP999Ms {
		t.Errorf("p50 %.3fms > p99.9 %.3fms", res.LatencyP50Ms, res.LatencyP999Ms)
	}
	if res.LatencyMaxMs+0.001 < res.LatencyP999Ms {
		t.Errorf("max %.3fms < p99.9 %.3fms", res.LatencyMaxMs, res.LatencyP999Ms)
	}
	if res.DeliveriesPerSec <= 0 {
		t.Error("no throughput measured")
	}
}

// TestFleetPaced checks the rate limiter: at 50 Hz, 20 messages cannot
// complete faster than ~380ms of pacing.
func TestFleetPaced(t *testing.T) {
	res, err := Run(Config{
		Subscribers:  20,
		Conns:        2,
		PayloadBytes: 16,
		Messages:     20,
		RateHz:       50,
		Seed:         7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Seconds < 0.35 {
		t.Errorf("paced run took %.3fs, want >= 0.35s (19 intervals at 20ms)", res.Seconds)
	}
	if res.PublishPerSec > 60 {
		t.Errorf("publish rate %.1f/s, want <= ~50", res.PublishPerSec)
	}
}

// TestFleetOpenLoopFlag pins the coordinated-omission contract: paced
// runs are open-loop (intended-time stamps, schedule accounting live),
// unpaced runs are flagged closed-loop, and both report their data
// plane.
func TestFleetOpenLoopFlag(t *testing.T) {
	paced, err := Run(Config{
		Subscribers: 50, Conns: 2, PayloadBytes: 16, Messages: 30, RateHz: 200, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !paced.OpenLoop {
		t.Error("paced run not flagged open-loop")
	}
	if paced.DataPlane != "vectored" {
		t.Errorf("data plane %q, want vectored", paced.DataPlane)
	}
	if paced.MaxSendLagMs < 0 {
		t.Errorf("negative send lag %.3f", paced.MaxSendLagMs)
	}

	unpaced, err := Run(Config{
		Subscribers: 50, Conns: 2, PayloadBytes: 16, Messages: 30, Seed: 7, Legacy: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if unpaced.OpenLoop {
		t.Error("unpaced run flagged open-loop; it is closed-loop by construction")
	}
	if unpaced.DataPlane != "legacy" {
		t.Errorf("data plane %q, want legacy", unpaced.DataPlane)
	}
	if unpaced.BehindSchedule != 0 {
		t.Errorf("unpaced run has no schedule, BehindSchedule = %d", unpaced.BehindSchedule)
	}
}

// TestRateSweepWalksLadder smoke-tests the sweep driver: two easy rates
// on a tiny fleet produce two points with sane fields and no knee.
func TestRateSweepWalksLadder(t *testing.T) {
	sw, err := RateSweep(SweepConfig{
		Base:      Config{Subscribers: 30, Conns: 2, PayloadBytes: 16, Seed: 7},
		Rates:     []int{200, 400},
		Seconds:   0.15,
		KneeP99Ms: 10_000, // unreachable on an idle tiny fleet
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Points) != 2 {
		t.Fatalf("got %d points, want 2", len(sw.Points))
	}
	for i, p := range sw.Points {
		if !p.OpenLoop {
			t.Errorf("point %d not open-loop", i)
		}
		if p.LatencyP99Ms <= 0 {
			t.Errorf("point %d has no p99", i)
		}
	}
	if sw.Points[0].RateHz != 200 || sw.Points[1].RateHz != 400 {
		t.Errorf("rates = %d,%d want 200,400", sw.Points[0].RateHz, sw.Points[1].RateHz)
	}
	if sw.KneeRateHz != 0 {
		t.Errorf("knee at %d Hz on an idle fleet with a 10s bound", sw.KneeRateHz)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := uint64(1); i <= 1000; i++ {
		h.Record(i * 1000) // 1us .. 1ms
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d, want 1000", h.Count())
	}
	check := func(q, want float64) {
		t.Helper()
		got := float64(h.Quantile(q))
		// Log-linear buckets with 16 sub-buckets: <= ~7% relative error.
		if got < want*0.9 || got > want*1.1 {
			t.Errorf("q%.3f = %.0f, want within 10%% of %.0f", q, got, want)
		}
	}
	check(0.50, 500_000)
	check(0.99, 990_000)
	check(1.0, 1_000_000)
	if h.Max() != 1_000_000 {
		t.Errorf("max = %d, want 1000000", h.Max())
	}

	var other Histogram
	other.Record(2_000_000)
	h.Merge(&other)
	if h.Count() != 1001 || h.Max() != 2_000_000 {
		t.Errorf("after merge: count=%d max=%d", h.Count(), h.Max())
	}
}

func TestHistogramBucketsMonotone(t *testing.T) {
	prev := -1
	for _, v := range []uint64{0, 1, 15, 16, 17, 31, 32, 100, 1 << 20, 1<<40 + 12345, 1<<63 + 9} {
		b := bucketOf(v)
		if b < prev {
			t.Fatalf("bucketOf(%d) = %d < previous bucket %d", v, b, prev)
		}
		if b < 0 || b >= histBuckets {
			t.Fatalf("bucketOf(%d) = %d out of range", v, b)
		}
		// The representative value must land back in the same bucket
		// neighborhood (within one bucket of rounding).
		rb := bucketOf(bucketValue(b))
		if rb < b-1 || rb > b+1 {
			t.Errorf("bucketValue(%d)=%d maps to bucket %d", b, bucketValue(b), rb)
		}
		prev = b
	}
}
