package fleet

import (
	"testing"
)

// TestFleetAccounting runs a small fleet over real sockets and checks
// the invariant the harness is built on: every expected delivery is
// accounted for (received or dropped) and latency stamps are sane.
func TestFleetAccounting(t *testing.T) {
	res, err := Run(Config{
		Subscribers:  500,
		Conns:        4,
		PayloadBytes: 64,
		Messages:     100,
		Seed:         7,
	})
	if err != nil {
		t.Fatal(err)
	}
	expected := uint64(100 * 500)
	if res.Delivered+res.Dropped < expected {
		t.Fatalf("delivered %d + dropped %d < expected %d", res.Delivered, res.Dropped, expected)
	}
	if res.Delivered == 0 {
		t.Fatal("no deliveries at all")
	}
	if res.LatencyP50Ms <= 0 {
		t.Errorf("p50 latency %v ms, want > 0", res.LatencyP50Ms)
	}
	if res.LatencyP50Ms > res.LatencyP999Ms {
		t.Errorf("p50 %.3fms > p99.9 %.3fms", res.LatencyP50Ms, res.LatencyP999Ms)
	}
	if res.LatencyMaxMs+0.001 < res.LatencyP999Ms {
		t.Errorf("max %.3fms < p99.9 %.3fms", res.LatencyMaxMs, res.LatencyP999Ms)
	}
	if res.DeliveriesPerSec <= 0 {
		t.Error("no throughput measured")
	}
}

// TestFleetPaced checks the rate limiter: at 50 Hz, 20 messages cannot
// complete faster than ~380ms of pacing.
func TestFleetPaced(t *testing.T) {
	res, err := Run(Config{
		Subscribers:  20,
		Conns:        2,
		PayloadBytes: 16,
		Messages:     20,
		RateHz:       50,
		Seed:         7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Seconds < 0.35 {
		t.Errorf("paced run took %.3fs, want >= 0.35s (19 intervals at 20ms)", res.Seconds)
	}
	if res.PublishPerSec > 60 {
		t.Errorf("publish rate %.1f/s, want <= ~50", res.PublishPerSec)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := uint64(1); i <= 1000; i++ {
		h.Record(i * 1000) // 1us .. 1ms
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d, want 1000", h.Count())
	}
	check := func(q, want float64) {
		t.Helper()
		got := float64(h.Quantile(q))
		// Log-linear buckets with 16 sub-buckets: <= ~7% relative error.
		if got < want*0.9 || got > want*1.1 {
			t.Errorf("q%.3f = %.0f, want within 10%% of %.0f", q, got, want)
		}
	}
	check(0.50, 500_000)
	check(0.99, 990_000)
	check(1.0, 1_000_000)
	if h.Max() != 1_000_000 {
		t.Errorf("max = %d, want 1000000", h.Max())
	}

	var other Histogram
	other.Record(2_000_000)
	h.Merge(&other)
	if h.Count() != 1001 || h.Max() != 2_000_000 {
		t.Errorf("after merge: count=%d max=%d", h.Count(), h.Max())
	}
}

func TestHistogramBucketsMonotone(t *testing.T) {
	prev := -1
	for _, v := range []uint64{0, 1, 15, 16, 17, 31, 32, 100, 1 << 20, 1<<40 + 12345, 1<<63 + 9} {
		b := bucketOf(v)
		if b < prev {
			t.Fatalf("bucketOf(%d) = %d < previous bucket %d", v, b, prev)
		}
		if b < 0 || b >= histBuckets {
			t.Fatalf("bucketOf(%d) = %d out of range", v, b)
		}
		// The representative value must land back in the same bucket
		// neighborhood (within one bucket of rounding).
		rb := bucketOf(bucketValue(b))
		if rb < b-1 || rb > b+1 {
			t.Errorf("bucketValue(%d)=%d maps to bucket %d", b, bucketValue(b), rb)
		}
		prev = b
	}
}
