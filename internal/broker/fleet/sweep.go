package fleet

// The rate sweep is how the load–latency curve in BENCH_broker.json is
// produced: walk an ascending ladder of offered publish rates, run one
// open-loop fleet cell per rate (fresh in-process server each time), and
// stop once the broker is past its saturation knee — the point where
// delivery p99 blows through the configured bound or the publisher can
// no longer even offer the load on schedule. Everything up to the knee
// characterizes the service latency of the data plane; the knee itself
// is the capacity number.

import "fmt"

// SweepConfig describes one load–latency rate sweep.
type SweepConfig struct {
	// Base is the cell template; RateHz and Messages are overwritten per
	// point.
	Base Config
	// Rates is the ascending ladder of offered publish rates (Hz).
	Rates []int
	// Seconds is the measured duration per point: each point publishes
	// rate*Seconds messages (min 20). Default 1.0.
	Seconds float64
	// KneeP99Ms stops the ladder after the first point whose delivery
	// p99 exceeds it. 0 means walk the whole ladder regardless.
	KneeP99Ms float64
	// Repeats runs each ladder point up to this many times and keeps the
	// observation with the lowest p99 (default 1). On a shared box,
	// external CPU contention can stall any single run for tens to
	// hundreds of milliseconds and fake a saturation knee; contention
	// only ever *adds* latency, so the least-contaminated repeat is the
	// closest observation of the plane's true behavior. A real knee
	// survives best-of-N — every repeat is saturated.
	Repeats int
}

// Sweep is one plane's measured load–latency curve.
type Sweep struct {
	DataPlane string   `json:"data_plane"`
	Points    []Result `json:"points"`
	// KneeRateHz is the first offered rate past the saturation knee
	// (p99 over bound, or schedule not sustained); 0 if the ladder ended
	// before finding one.
	KneeRateHz int `json:"knee_rate_hz"`
}

// RateSweep walks cfg.Rates in order. progress may be nil.
func RateSweep(cfg SweepConfig, progress func(format string, args ...any)) (Sweep, error) {
	if progress == nil {
		progress = func(string, ...any) {}
	}
	if cfg.Seconds <= 0 {
		cfg.Seconds = 1.0
	}
	if cfg.Repeats <= 0 {
		cfg.Repeats = 1
	}
	sw := Sweep{DataPlane: "vectored"}
	if cfg.Base.Legacy {
		sw.DataPlane = "legacy"
	}
	for _, rate := range cfg.Rates {
		if rate <= 0 {
			return sw, fmt.Errorf("fleet: sweep rate must be > 0, got %d", rate)
		}
		c := cfg.Base
		c.RateHz = rate
		c.Messages = int(float64(rate) * cfg.Seconds)
		if c.Messages < 20 {
			c.Messages = 20
		}
		var res Result
		for rep := 0; rep < cfg.Repeats; rep++ {
			r, err := Run(c)
			if err != nil {
				return sw, fmt.Errorf("fleet: sweep point %d Hz: %w", rate, err)
			}
			if rep == 0 || r.LatencyP99Ms < res.LatencyP99Ms {
				res = r
			}
		}
		sw.Points = append(sw.Points, res)
		progress("  %s %6d Hz: p50 %.3fms p99 %.3fms p99.9 %.3fms (behind %d, lag %.1fms, dropped %d)",
			sw.DataPlane, rate, res.LatencyP50Ms, res.LatencyP99Ms, res.LatencyP999Ms,
			res.BehindSchedule, res.MaxSendLagMs, res.Dropped)
		// Knee detection: the plane is saturated when tail latency
		// escapes the bound or the publisher ran behind schedule for a
		// meaningful fraction of the run.
		behindFrac := float64(res.BehindSchedule) / float64(res.Messages)
		if (cfg.KneeP99Ms > 0 && res.LatencyP99Ms > cfg.KneeP99Ms) || behindFrac > 0.10 {
			sw.KneeRateHz = rate
			progress("  %s knee at %d Hz", sw.DataPlane, rate)
			break
		}
	}
	return sw, nil
}
