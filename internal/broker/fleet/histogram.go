package fleet

import "math/bits"

// Histogram is a log-linear latency histogram: 16 sub-buckets per
// power-of-two octave, so recorded values carry at most ~6% relative
// error while the whole uint64 range fits in under 1000 counters. Each
// reader goroutine owns one (no locking on the record path); they are
// merged once the run completes.
type Histogram struct {
	counts [histBuckets]uint64
	total  uint64
	max    uint64
}

const (
	histSubBits = 4
	histSub     = 1 << histSubBits
	// Octave 0 holds values 0..15 exactly; octaves 1..60 cover the rest
	// of the uint64 range at histSub buckets each.
	histBuckets = 61 * histSub
)

func bucketOf(v uint64) int {
	if v < histSub {
		return int(v)
	}
	exp := bits.Len64(v) - 1 // >= histSubBits
	oct := exp - histSubBits + 1
	sub := int(v>>uint(exp-histSubBits)) & (histSub - 1)
	return oct<<histSubBits | sub
}

// bucketValue returns a representative (midpoint) value for a bucket.
func bucketValue(idx int) uint64 {
	if idx < histSub {
		return uint64(idx)
	}
	oct := idx >> histSubBits
	sub := uint64(idx & (histSub - 1))
	lo := (histSub + sub) << uint(oct-1)
	return lo + 1<<uint(oct-1)/2
}

// Record adds one observation.
func (h *Histogram) Record(v uint64) {
	h.counts[bucketOf(v)]++
	h.total++
	if v > h.max {
		h.max = v
	}
}

// Merge folds other into h.
func (h *Histogram) Merge(other *Histogram) {
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.total += other.total
	if other.max > h.max {
		h.max = other.max
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.total }

// Max returns the largest recorded observation (exact, not bucketed).
func (h *Histogram) Max() uint64 { return h.max }

// Quantile returns the approximate value at quantile q in [0,1].
func (h *Histogram) Quantile(q float64) uint64 {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(h.total-1))
	var seen uint64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		seen += c
		if seen > rank {
			v := bucketValue(i)
			if v > h.max {
				return h.max
			}
			return v
		}
	}
	return h.max
}
