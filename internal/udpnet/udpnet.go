// Package udpnet implements the transport Endpoint over real UDP sockets,
// so the same protocol state machines that run under the deterministic
// simulator also run on a live network. Group "multicast" is realized as
// unicast fan-out over a static address book — appropriate for the ad-hoc
// datacenter deployments the paper targets, and portable to environments
// (containers, clouds) where IP multicast is unavailable.
package udpnet

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"adamant/internal/env"
	"adamant/internal/transport"
	"adamant/internal/wire"
)

// MTU is the maximum payload accepted for one packet (conservatively under
// typical 1500-byte Ethernet MTU after headers).
const MTU = 1400

// Endpoint is a UDP-backed transport endpoint.
type Endpoint struct {
	env     env.Env
	self    wire.NodeID
	conn    *net.UDPConn
	book    map[wire.NodeID]*net.UDPAddr
	peerIDs []wire.NodeID

	mu      sync.Mutex
	handler func(src wire.NodeID, pkt *wire.Packet)
	sendBuf []byte // reusable encode buffer, guarded by mu
	closed  bool
	done    chan struct{}
}

var _ transport.Endpoint = (*Endpoint)(nil)

// New binds a UDP socket at bindAddr (e.g. "127.0.0.1:0") for node self and
// resolves the address book (node ID -> "host:port"). The endpoint posts
// received packets into e, preserving the serial-callback contract.
func New(e env.Env, self wire.NodeID, bindAddr string, book map[wire.NodeID]string) (*Endpoint, error) {
	if e == nil {
		return nil, errors.New("udpnet: nil env")
	}
	laddr, err := net.ResolveUDPAddr("udp", bindAddr)
	if err != nil {
		return nil, fmt.Errorf("udpnet: resolving bind address: %w", err)
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("udpnet: listen: %w", err)
	}
	ep := &Endpoint{
		env:  e,
		self: self,
		conn: conn,
		book: make(map[wire.NodeID]*net.UDPAddr, len(book)),
		done: make(chan struct{}),
	}
	for id, addr := range book {
		ua, err := net.ResolveUDPAddr("udp", addr)
		if err != nil {
			conn.Close()
			return nil, fmt.Errorf("udpnet: resolving node %d address %q: %w", id, addr, err)
		}
		ep.book[id] = ua
		if id != self {
			ep.peerIDs = append(ep.peerIDs, id)
		}
	}
	sort.Slice(ep.peerIDs, func(i, j int) bool { return ep.peerIDs[i] < ep.peerIDs[j] })
	go ep.readLoop()
	return ep, nil
}

// LocalAddr returns the bound socket address (useful with ":0" binds).
func (ep *Endpoint) LocalAddr() *net.UDPAddr { return ep.conn.LocalAddr().(*net.UDPAddr) }

// SetPeerAddr adds or updates a peer's address at runtime (late binding for
// ":0"-bound test clusters).
func (ep *Endpoint) SetPeerAddr(id wire.NodeID, addr *net.UDPAddr) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if _, known := ep.book[id]; !known && id != ep.self {
		ep.peerIDs = append(ep.peerIDs, id)
		sort.Slice(ep.peerIDs, func(i, j int) bool { return ep.peerIDs[i] < ep.peerIDs[j] })
	}
	ep.book[id] = addr
}

// Local implements transport.Endpoint.
func (ep *Endpoint) Local() wire.NodeID { return ep.self }

// MTU implements transport.Endpoint.
func (ep *Endpoint) MTU() int { return MTU }

// Work implements transport.Endpoint (real CPUs charge themselves).
func (ep *Endpoint) Work(time.Duration) time.Duration { return 0 }

// ScaleCPU implements transport.Endpoint as the identity.
func (ep *Endpoint) ScaleCPU(d time.Duration) time.Duration { return d }

// SetHandler implements transport.Endpoint.
func (ep *Endpoint) SetHandler(h func(src wire.NodeID, pkt *wire.Packet)) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	ep.handler = h
}

// Unicast implements transport.Endpoint. Packets are encoded into a
// per-endpoint reusable buffer (instead of a fresh Marshal allocation per
// send), so the steady-state send path does not allocate.
func (ep *Endpoint) Unicast(dst wire.NodeID, pkt *wire.Packet) error {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if ep.closed {
		return transport.ErrClosed
	}
	addr, ok := ep.book[dst]
	if !ok {
		return fmt.Errorf("udpnet: no address for node %d", dst)
	}
	if len(pkt.Payload) > MTU {
		return fmt.Errorf("udpnet: payload %d exceeds MTU %d", len(pkt.Payload), MTU)
	}
	buf, err := pkt.Encode(ep.sendBuf[:0])
	if err != nil {
		return err
	}
	ep.sendBuf = buf[:0]
	if _, err := ep.conn.WriteToUDP(buf, addr); err != nil {
		return fmt.Errorf("udpnet: send to node %d: %w", dst, err)
	}
	return nil
}

// Multicast implements transport.Endpoint via unicast fan-out.
func (ep *Endpoint) Multicast(pkt *wire.Packet) error {
	ep.mu.Lock()
	peers := append([]wire.NodeID(nil), ep.peerIDs...)
	ep.mu.Unlock()
	var firstErr error
	for _, id := range peers {
		if err := ep.Unicast(id, pkt); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Close shuts the socket down and stops the read loop.
func (ep *Endpoint) Close() error {
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		<-ep.done
		return nil
	}
	ep.closed = true
	ep.mu.Unlock()
	err := ep.conn.Close()
	<-ep.done
	return err
}

func (ep *Endpoint) readLoop() {
	defer close(ep.done)
	buf := make([]byte, 64*1024)
	for {
		n, _, err := ep.conn.ReadFromUDP(buf)
		if err != nil {
			return // socket closed
		}
		pkt, err := wire.Decode(buf[:n])
		if err != nil {
			continue // corrupt datagram; UDP loses things, so do we
		}
		clone := pkt.Clone()
		src := clone.Src
		ep.env.Post(func() {
			ep.mu.Lock()
			h := ep.handler
			ep.mu.Unlock()
			if h != nil {
				h(src, clone)
			}
		})
	}
}
