package udpnet_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"adamant/internal/env"
	"adamant/internal/transport"
	"adamant/internal/transport/nakcast"
	"adamant/internal/transport/ricochet"
	"adamant/internal/udpnet"
	"adamant/internal/wire"
)

// cluster spins up n+1 UDP endpoints on loopback (node 0 = sender) with a
// shared RealEnv per node.
type cluster struct {
	envs []*env.RealEnv
	eps  []*udpnet.Endpoint
}

func newCluster(t *testing.T, nodes int) *cluster {
	t.Helper()
	c := &cluster{}
	for i := 0; i < nodes; i++ {
		e := env.NewReal(int64(i + 1))
		ep, err := udpnet.New(e, wire.NodeID(i), "127.0.0.1:0", nil)
		if err != nil {
			t.Fatal(err)
		}
		c.envs = append(c.envs, e)
		c.eps = append(c.eps, ep)
	}
	// Late-bind the full mesh now that ports are known.
	for i, ep := range c.eps {
		for j, other := range c.eps {
			if i != j {
				ep.SetPeerAddr(wire.NodeID(j), other.LocalAddr())
			}
		}
	}
	t.Cleanup(func() {
		for _, ep := range c.eps {
			ep.Close()
		}
		for _, e := range c.envs {
			e.Close()
		}
	})
	return c
}

// onEnv runs fn inside node i's env executor and waits for it — protocol
// instances must be constructed in env-callback context (the env serial-
// execution contract is what lets them go lock-free).
func (c *cluster) onEnv(i int, fn func()) {
	c.envs[i].Post(fn)
	c.envs[i].Barrier()
}

func TestUnicastOverLoopback(t *testing.T) {
	c := newCluster(t, 2)
	got := make(chan *wire.Packet, 1)
	c.eps[1].SetHandler(func(src wire.NodeID, pkt *wire.Packet) {
		if src == 0 {
			got <- pkt
		}
	})
	pkt := &wire.Packet{Type: wire.TypeData, Src: 0, Stream: 1, Seq: 42,
		SentAt: time.Now(), Payload: []byte("over the wire")}
	if err := c.eps[0].Unicast(1, pkt); err != nil {
		t.Fatal(err)
	}
	select {
	case p := <-got:
		if p.Seq != 42 || string(p.Payload) != "over the wire" {
			t.Errorf("got %+v", p)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("packet never arrived")
	}
}

func TestMulticastFanOut(t *testing.T) {
	c := newCluster(t, 4)
	var wg sync.WaitGroup
	wg.Add(3)
	for i := 1; i <= 3; i++ {
		c.eps[i].SetHandler(func(src wire.NodeID, pkt *wire.Packet) { wg.Done() })
	}
	pkt := &wire.Packet{Type: wire.TypeData, Src: 0, Stream: 1, Seq: 1, SentAt: time.Now()}
	if err := c.eps[0].Multicast(pkt); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("multicast did not reach all peers")
	}
}

func TestErrors(t *testing.T) {
	c := newCluster(t, 2)
	pkt := &wire.Packet{Type: wire.TypeData, Src: 0, Stream: 1, Seq: 1, SentAt: time.Now()}
	if err := c.eps[0].Unicast(99, pkt); err == nil {
		t.Error("unknown destination should error")
	}
	big := &wire.Packet{Type: wire.TypeData, Src: 0, Stream: 1, Seq: 1,
		SentAt: time.Now(), Payload: make([]byte, udpnet.MTU+1)}
	if err := c.eps[0].Unicast(1, big); err == nil {
		t.Error("oversize payload should error")
	}
	if _, err := udpnet.New(nil, 0, "127.0.0.1:0", nil); err == nil {
		t.Error("nil env should error")
	}
	if _, err := udpnet.New(c.envs[0], 0, "not-an-addr::", nil); err == nil {
		t.Error("bad bind address should error")
	}
	if _, err := udpnet.New(c.envs[0], 0, "127.0.0.1:0",
		map[wire.NodeID]string{1: "bogus::addr::"}); err == nil {
		t.Error("bad book address should error")
	}
}

func TestCloseIdempotentAndSendAfterClose(t *testing.T) {
	e := env.NewReal(1)
	defer e.Close()
	ep, err := udpnet.New(e, 0, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ep.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ep.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
	pkt := &wire.Packet{Type: wire.TypeData, Src: 0, Stream: 1, Seq: 1, SentAt: time.Now()}
	ep.SetPeerAddr(1, ep.LocalAddr())
	if err := ep.Unicast(1, pkt); err == nil {
		t.Error("send after close should error")
	}
}

// TestNAKcastOverRealUDP runs the full protocol stack over real sockets:
// the same state machine exercised all over the simulator tests.
func TestNAKcastOverRealUDP(t *testing.T) {
	c := newCluster(t, 3)
	var sender *nakcast.Sender
	c.onEnv(0, func() {
		var err error
		sender, err = nakcast.NewSender(transport.Config{
			Env: c.envs[0], Endpoint: c.eps[0], Stream: 7,
		}, nakcast.Options{Timeout: 5 * time.Millisecond})
		if err != nil {
			t.Error(err)
		}
	})
	if sender == nil {
		t.Fatal("sender construction failed")
	}
	var mu sync.Mutex
	counts := map[int]int{}
	for i := 1; i <= 2; i++ {
		i := i
		c.onEnv(i, func() {
			if _, err := nakcast.NewReceiver(transport.Config{
				Env: c.envs[i], Endpoint: c.eps[i], Stream: 7, SenderID: 0,
				Deliver: func(d transport.Delivery) {
					mu.Lock()
					counts[i]++
					mu.Unlock()
				},
			}, nakcast.Options{Timeout: 5 * time.Millisecond}); err != nil {
				t.Error(err)
			}
		})
	}
	const n = 50
	for k := 0; k < n; k++ {
		c.envs[0].Post(func() {
			if err := sender.Publish([]byte(fmt.Sprintf("msg-%d", k))); err != nil {
				t.Error(err)
			}
		})
		time.Sleep(2 * time.Millisecond)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		ok := counts[1] == n && counts[2] == n
		mu.Unlock()
		if ok {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	t.Fatalf("delivery counts = %v, want %d each", counts, n)
}

// TestRicochetOverRealUDP smoke-tests the FEC protocol on real sockets.
func TestRicochetOverRealUDP(t *testing.T) {
	c := newCluster(t, 4)
	receivers := transport.StaticReceivers(1, 2, 3)
	var sender *ricochet.Sender
	c.onEnv(0, func() {
		var err error
		sender, err = ricochet.NewSender(transport.Config{
			Env: c.envs[0], Endpoint: c.eps[0], Stream: 9,
		})
		if err != nil {
			t.Error(err)
		}
	})
	if sender == nil {
		t.Fatal("sender construction failed")
	}
	var mu sync.Mutex
	counts := map[int]int{}
	for i := 1; i <= 3; i++ {
		i := i
		c.onEnv(i, func() {
			if _, err := ricochet.NewReceiver(transport.Config{
				Env: c.envs[i], Endpoint: c.eps[i], Stream: 9, SenderID: 0,
				Receivers: receivers,
				Deliver: func(d transport.Delivery) {
					mu.Lock()
					counts[i]++
					mu.Unlock()
				},
			}, ricochet.Options{R: 4, C: 2}); err != nil {
				t.Error(err)
			}
		})
	}
	const n = 40
	for k := 0; k < n; k++ {
		c.envs[0].Post(func() {
			if err := sender.Publish([]byte("sample")); err != nil {
				t.Error(err)
			}
		})
		time.Sleep(2 * time.Millisecond)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		ok := counts[1] >= n && counts[2] >= n && counts[3] >= n
		mu.Unlock()
		if ok {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	t.Fatalf("delivery counts = %v, want >= %d each", counts, n)
}
