// Package membership provides group membership views and heartbeat-based
// failure detection — two of the configurable transport properties in the
// ANT framework. Ricochet consults the view to pick live repair targets;
// experiments use static views, while the failure-injection tests exercise
// the detector.
package membership

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"adamant/internal/env"
	"adamant/internal/transport"
	"adamant/internal/wire"
)

// View is an immutable snapshot of group membership.
type View struct {
	// Members is the sorted list of live member node IDs.
	Members []wire.NodeID
	// Version increments on every membership change.
	Version uint64
}

// Contains reports whether id is in the view.
func (v View) Contains(id wire.NodeID) bool {
	for _, m := range v.Members {
		if m == id {
			return true
		}
	}
	return false
}

// String implements fmt.Stringer.
func (v View) String() string {
	return fmt.Sprintf("view{v%d, %d members}", v.Version, len(v.Members))
}

// Provider supplies membership views. Implementations: Static, Detector.
type Provider interface {
	// View returns the current membership snapshot.
	View() View
	// Receivers adapts the view to transport.Config.Receivers.
	Receivers() []wire.NodeID
}

// Static is a fixed membership view.
type Static struct {
	view View
}

var _ Provider = (*Static)(nil)

// NewStatic builds a fixed view of the given members.
func NewStatic(members ...wire.NodeID) *Static {
	ms := append([]wire.NodeID(nil), members...)
	sort.Slice(ms, func(i, j int) bool { return ms[i] < ms[j] })
	return &Static{view: View{Members: ms, Version: 1}}
}

// View implements Provider.
func (s *Static) View() View { return s.view }

// Receivers implements Provider.
func (s *Static) Receivers() []wire.NodeID { return s.view.Members }

// DetectorOptions tune a heartbeat failure Detector.
type DetectorOptions struct {
	// Interval is the heartbeat period. Default 100ms.
	Interval time.Duration
	// SuspectAfter is how long without a heartbeat before a peer is
	// declared dead. Default 3.5x Interval.
	SuspectAfter time.Duration
	// UnicastJoinReplies answers a JOIN with a heartbeat unicast to the
	// joiner instead of a multicast to the whole group. The multicast
	// reply spreads liveness in one round but is quadratic in packets —
	// at cold start, when every member joins at once, the reply storm is
	// O(group^2) multicasts and O(group^3) deliveries. Groups of
	// hundreds of nodes should turn this on; the regular heartbeat round
	// repairs whatever a unicast reply does not spread.
	UnicastJoinReplies bool
}

func (o *DetectorOptions) fillDefaults() {
	if o.Interval <= 0 {
		o.Interval = 100 * time.Millisecond
	}
	if o.SuspectAfter <= 0 {
		o.SuspectAfter = o.Interval*3 + o.Interval/2
	}
}

// Detector is a heartbeat-based group membership tracker for one node. All
// participating nodes run one; each multicasts JOIN on start, heartbeats
// every Interval, LEAVE on Close, and removes peers whose heartbeats stop.
//
// The detector shares the node's endpoint through a transport.Mux: pass the
// mux so data-plane protocols keep their own routes.
type Detector struct {
	env      env.Env
	ep       transport.Endpoint
	opts     DetectorOptions
	self     wire.NodeID
	lastSeen map[wire.NodeID]time.Time
	view     View
	onChange func(View)
	inc      uint32
	hbTimer  env.Timer
	closed   bool
}

// NewDetector attaches a detector to mux. onChange (optional) fires on
// every membership change with the new view.
func NewDetector(e env.Env, mux *transport.Mux, opts DetectorOptions, onChange func(View)) (*Detector, error) {
	if e == nil || mux == nil {
		return nil, errors.New("membership: nil env or mux")
	}
	opts.fillDefaults()
	d := &Detector{
		env:      e,
		ep:       mux.Endpoint(),
		opts:     opts,
		self:     mux.Endpoint().Local(),
		lastSeen: make(map[wire.NodeID]time.Time),
	}
	d.view = View{Members: []wire.NodeID{d.self}, Version: 1}
	mux.Handle(wire.TypeJoin, d.onJoin)
	mux.Handle(wire.TypeLeave, d.onLeave)
	mux.Handle(wire.TypeHeartbeat, d.onHeartbeat)
	d.onChange = onChange
	d.announce(wire.TypeJoin)
	d.hbTimer = e.After(opts.Interval, d.tick)
	return d, nil
}

// View implements Provider.
func (d *Detector) View() View { return d.view }

// Receivers implements Provider.
func (d *Detector) Receivers() []wire.NodeID { return d.view.Members }

var _ Provider = (*Detector)(nil)

// Close announces departure and stops the heartbeat timer.
func (d *Detector) Close() error {
	if d.closed {
		return nil
	}
	d.closed = true
	if d.hbTimer != nil {
		d.hbTimer.Stop()
	}
	d.announce(wire.TypeLeave)
	return nil
}

func (d *Detector) announce(t wire.Type) {
	body, err := (&wire.HeartbeatBody{Incarnation: d.inc}).Encode(nil)
	if err != nil {
		return
	}
	// Membership announcements are best-effort; missed ones are repaired
	// by the next heartbeat (or by the suspect timeout on LEAVE loss).
	_ = d.ep.Multicast(&wire.Packet{
		Type:    t,
		Src:     d.self,
		SentAt:  d.env.Now(),
		Payload: body,
	})
}

func (d *Detector) tick() {
	if d.closed {
		return
	}
	d.announce(wire.TypeHeartbeat)
	d.expire()
	d.hbTimer = d.env.After(d.opts.Interval, d.tick)
}

func (d *Detector) expire() {
	now := d.env.Now()
	changed := false
	for id, seen := range d.lastSeen {
		if now.Sub(seen) > d.opts.SuspectAfter {
			delete(d.lastSeen, id)
			changed = true
		}
	}
	if changed {
		d.rebuild()
	}
}

func (d *Detector) onJoin(src wire.NodeID, pkt *wire.Packet) {
	if d.closed || src == d.self {
		return
	}
	_, known := d.lastSeen[src]
	d.lastSeen[src] = d.env.Now()
	if !known {
		d.rebuild()
		// Answer a JOIN with an immediate heartbeat so the joiner learns
		// about us without waiting a full interval.
		if d.opts.UnicastJoinReplies {
			d.reply(src)
		} else {
			d.announce(wire.TypeHeartbeat)
		}
	}
}

// reply unicasts a heartbeat straight to the joiner.
func (d *Detector) reply(dst wire.NodeID) {
	body, err := (&wire.HeartbeatBody{Incarnation: d.inc}).Encode(nil)
	if err != nil {
		return
	}
	_ = d.ep.Unicast(dst, &wire.Packet{
		Type:    wire.TypeHeartbeat,
		Src:     d.self,
		SentAt:  d.env.Now(),
		Payload: body,
	})
}

func (d *Detector) onHeartbeat(src wire.NodeID, pkt *wire.Packet) {
	// Data-plane heartbeats (e.g. NAKcast's) carry a data stream ID and
	// are not membership traffic.
	if d.closed || src == d.self || pkt.Stream != wire.ControlStream {
		return
	}
	_, known := d.lastSeen[src]
	d.lastSeen[src] = d.env.Now()
	if !known {
		d.rebuild()
	}
}

func (d *Detector) onLeave(src wire.NodeID, pkt *wire.Packet) {
	if d.closed || src == d.self {
		return
	}
	if _, known := d.lastSeen[src]; known {
		delete(d.lastSeen, src)
		d.rebuild()
	}
}

func (d *Detector) rebuild() {
	members := make([]wire.NodeID, 0, len(d.lastSeen)+1)
	members = append(members, d.self)
	for id := range d.lastSeen {
		members = append(members, id)
	}
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	d.view = View{Members: members, Version: d.view.Version + 1}
	if d.onChange != nil {
		d.onChange(d.view)
	}
}
