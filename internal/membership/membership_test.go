package membership_test

import (
	"testing"
	"time"

	"adamant/internal/env"
	"adamant/internal/membership"
	"adamant/internal/sim"
	"adamant/internal/transport"
	"adamant/internal/transport/transporttest"
	"adamant/internal/wire"
)

func TestStaticView(t *testing.T) {
	s := membership.NewStatic(3, 1, 2)
	v := s.View()
	if len(v.Members) != 3 || v.Members[0] != 1 || v.Members[2] != 3 {
		t.Errorf("members = %v, want sorted [1 2 3]", v.Members)
	}
	if !v.Contains(2) || v.Contains(9) {
		t.Error("Contains wrong")
	}
	if got := s.Receivers(); len(got) != 3 {
		t.Errorf("Receivers() = %v", got)
	}
	if v.String() == "" {
		t.Error("empty String()")
	}
}

type cluster struct {
	k    *sim.Kernel
	fab  *transporttest.Fabric
	dets []*membership.Detector
}

func newCluster(t *testing.T, n int, opts membership.DetectorOptions) *cluster {
	t.Helper()
	c := &cluster{k: sim.New(5)}
	e := env.NewSim(c.k)
	c.fab = transporttest.New(e, time.Millisecond)
	// Create all endpoints before any detector so JOINs reach everyone.
	for i := 0; i < n; i++ {
		c.fab.Endpoint(wire.NodeID(i))
	}
	for i := 0; i < n; i++ {
		mux := transport.NewMux(c.fab.Endpoint(wire.NodeID(i)))
		d, err := membership.NewDetector(e, mux, opts, nil)
		if err != nil {
			t.Fatal(err)
		}
		c.dets = append(c.dets, d)
	}
	return c
}

func TestDetectorConverges(t *testing.T) {
	c := newCluster(t, 4, membership.DetectorOptions{Interval: 10 * time.Millisecond})
	if err := c.k.RunFor(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	for i, d := range c.dets {
		v := d.View()
		if len(v.Members) != 4 {
			t.Errorf("detector %d sees %d members, want 4: %v", i, len(v.Members), v.Members)
		}
	}
}

func TestGracefulLeave(t *testing.T) {
	c := newCluster(t, 3, membership.DetectorOptions{Interval: 10 * time.Millisecond})
	if err := c.k.RunFor(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := c.dets[2].Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.k.RunFor(20 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		v := c.dets[i].View()
		if len(v.Members) != 2 || v.Contains(2) {
			t.Errorf("detector %d did not process LEAVE: %v", i, v.Members)
		}
	}
}

func TestCrashDetectedByTimeout(t *testing.T) {
	c := newCluster(t, 3, membership.DetectorOptions{
		Interval:     10 * time.Millisecond,
		SuspectAfter: 35 * time.Millisecond,
	})
	if err := c.k.RunFor(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// Crash node 2: drop all its traffic (no LEAVE).
	c.fab.Drop = func(from, to wire.NodeID, pkt *wire.Packet) bool { return from == 2 }
	if err := c.k.RunFor(200 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		v := c.dets[i].View()
		if v.Contains(2) {
			t.Errorf("detector %d still sees crashed node: %v", i, v.Members)
		}
		if len(v.Members) != 2 {
			t.Errorf("detector %d members = %v", i, v.Members)
		}
	}
}

func TestRejoinAfterPartitionHeals(t *testing.T) {
	c := newCluster(t, 2, membership.DetectorOptions{
		Interval:     10 * time.Millisecond,
		SuspectAfter: 35 * time.Millisecond,
	})
	if err := c.k.RunFor(60 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	c.fab.Drop = func(from, to wire.NodeID, pkt *wire.Packet) bool { return from == 1 || to == 1 }
	if err := c.k.RunFor(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if c.dets[0].View().Contains(1) {
		t.Fatal("partitioned node not removed")
	}
	c.fab.Drop = nil
	if err := c.k.RunFor(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if !c.dets[0].View().Contains(1) {
		t.Error("healed node not re-added")
	}
}

func TestOnChangeCallback(t *testing.T) {
	k := sim.New(5)
	e := env.NewSim(k)
	fab := transporttest.New(e, time.Millisecond)
	fab.Endpoint(0)
	fab.Endpoint(1)
	changes := 0
	var last membership.View
	muxA := transport.NewMux(fab.Endpoint(0))
	if _, err := membership.NewDetector(e, muxA, membership.DetectorOptions{
		Interval: 10 * time.Millisecond,
	}, func(v membership.View) { changes++; last = v }); err != nil {
		t.Fatal(err)
	}
	muxB := transport.NewMux(fab.Endpoint(1))
	if _, err := membership.NewDetector(e, muxB,
		membership.DetectorOptions{Interval: 10 * time.Millisecond}, nil); err != nil {
		t.Fatal(err)
	}
	if err := k.RunFor(50 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if changes == 0 {
		t.Fatal("no change callbacks")
	}
	if len(last.Members) != 2 {
		t.Errorf("last view = %v", last.Members)
	}
	if last.Version < 2 {
		t.Errorf("view version = %d, want >= 2", last.Version)
	}
}

func TestDataPlaneHeartbeatsIgnored(t *testing.T) {
	// A NAKcast-style heartbeat on a data stream must not create members.
	k := sim.New(5)
	e := env.NewSim(k)
	fab := transporttest.New(e, time.Millisecond)
	fab.Endpoint(0)
	fab.Endpoint(7)
	mux := transport.NewMux(fab.Endpoint(0))
	d, err := membership.NewDetector(e, mux, membership.DetectorOptions{
		Interval: 10 * time.Millisecond,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	body, err := (&wire.HeartbeatBody{HighSeq: 10}).Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	hb := &wire.Packet{Type: wire.TypeHeartbeat, Src: 7, Stream: 1, SentAt: k.Now(), Payload: body}
	if err := fab.Endpoint(7).Unicast(0, hb); err != nil {
		t.Fatal(err)
	}
	if err := k.RunFor(20 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if d.View().Contains(7) {
		t.Error("data-plane heartbeat created a membership entry")
	}
}

func TestNewDetectorValidation(t *testing.T) {
	if _, err := membership.NewDetector(nil, nil, membership.DetectorOptions{}, nil); err == nil {
		t.Error("nil args should error")
	}
}

func TestDetectorCloseIdempotent(t *testing.T) {
	c := newCluster(t, 2, membership.DetectorOptions{Interval: 10 * time.Millisecond})
	if err := c.dets[0].Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.dets[0].Close(); err != nil {
		t.Errorf("double Close: %v", err)
	}
}
