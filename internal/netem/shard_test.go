package netem

// Differential tests for the lane-sharded network: the same emulated
// workload must produce byte-identical observables (per-node delivery
// traces, traffic counters, drop counts) on the classic single-kernel
// network and on the sharded network at every worker width.

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"adamant/internal/env"
	"adamant/internal/sim"
	"adamant/internal/wire"
)

type delivRec struct {
	src wire.NodeID
	seq uint64
	at  int64
}

type netObs struct {
	deliveries [][]delivRec
	stats      []Stats
}

// shardedWorkloadNet runs a mixed multicast/unicast workload with loss,
// a mid-run partition, and a CPU-scale change, then returns everything a
// protocol could observe. mode "classic" uses New on one kernel; otherwise
// mode is the worker count for NewSharded.
func runNetWorkload(t *testing.T, classic bool, workers int) netObs {
	t.Helper()
	const (
		nodes   = 6
		seed    = 42
		packets = 250
	)

	type driver interface {
		RunFor(time.Duration) error
		Run() error
	}
	var (
		net *Network
		drv driver
		err error
	)
	if classic {
		k := sim.New(seed)
		net, err = New(env.NewSim(k), Config{Bandwidth: Mbps100})
		drv = k
	} else {
		sh := sim.NewSharded(seed, DefaultPropDelay)
		sh.SetWorkers(workers)
		net, err = NewSharded(sh, Config{Bandwidth: Mbps100})
		drv = sh
	}
	if err != nil {
		t.Fatalf("build network: %v", err)
	}

	obs := netObs{deliveries: make([][]delivRec, nodes)}
	for i := 0; i < nodes; i++ {
		nd := net.AddNode(PC3000)
		if i == 0 {
			continue
		}
		nd.SetLoss(10)
		i := i
		var ackSeq uint64
		nd.SetHandler(func(src wire.NodeID, pkt *wire.Packet) {
			obs.deliveries[i] = append(obs.deliveries[i], delivRec{
				src: src, seq: pkt.Seq, at: nd.Env().Now().UnixNano(),
			})
			// Every fifth delivery answers with a unicast, exercising the
			// reverse lane crossing.
			if len(obs.deliveries[i])%5 == 0 {
				ackSeq++
				ack := &wire.Packet{Type: wire.TypeAck, Src: nd.Local(), Stream: 2, Seq: ackSeq}
				if err := nd.Unicast(src, ack); err != nil {
					panic(err)
				}
			}
		})
	}
	sender := net.Node(0)
	sender.SetHandler(func(src wire.NodeID, pkt *wire.Packet) {
		obs.deliveries[0] = append(obs.deliveries[0], delivRec{
			src: src, seq: pkt.Seq, at: sender.Env().Now().UnixNano(),
		})
	})

	// Mid-run knob changes ride each target node's own env, the same way
	// chaos scripts are fanned out.
	n3 := net.Node(3)
	n3.Env().Schedule(31*time.Millisecond, func() { n3.SetPartitioned(true) })
	n3.Env().Schedule(61*time.Millisecond, func() { n3.SetPartitioned(false) })
	n4 := net.Node(4)
	n4.Env().Schedule(41*time.Millisecond, func() { n4.SetProcScale(3.0) })

	pkt := &wire.Packet{Type: wire.TypeData, Src: 0, Stream: 1, Payload: make([]byte, 64)}
	var seq uint64
	var pump func()
	pump = func() {
		seq++
		pkt.Seq = seq
		pkt.SentAt = sender.Env().Now()
		if err := sender.Multicast(pkt); err != nil {
			panic(err)
		}
		if seq < packets {
			sender.Env().Schedule(300*time.Microsecond, pump)
		}
	}
	sender.Env().Schedule(0, pump)

	if err := drv.RunFor(40 * time.Millisecond); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if err := drv.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := 0; i < nodes; i++ {
		obs.stats = append(obs.stats, net.Node(wire.NodeID(i)).Stats())
	}
	return obs
}

// TestNetemShardedMatchesClassic pins mode equivalence: per-node delivery
// streams, arrival times, loss decisions, and counters are identical
// between the classic single-kernel network and the sharded network —
// the emulation model is the same machine, only partitioned differently.
func TestNetemShardedMatchesClassic(t *testing.T) {
	ref := runNetWorkload(t, true, 0)
	got := runNetWorkload(t, false, 1)
	if !reflect.DeepEqual(ref.stats, got.stats) {
		t.Fatalf("stats diverge:\nclassic: %+v\nsharded: %+v", ref.stats, got.stats)
	}
	for i := range ref.deliveries {
		if !reflect.DeepEqual(ref.deliveries[i], got.deliveries[i]) {
			t.Fatalf("node %d deliveries diverge (classic %d, sharded %d)",
				i, len(ref.deliveries[i]), len(got.deliveries[i]))
		}
	}
	var total int
	for _, d := range ref.deliveries {
		total += len(d)
	}
	if total == 0 {
		t.Fatal("workload delivered nothing")
	}
}

// TestNetemShardedWidthInvariance pins the worker-count contract at the
// network layer: identical observables at 1, 2, 4, and 8 workers.
func TestNetemShardedWidthInvariance(t *testing.T) {
	ref := runNetWorkload(t, false, 1)
	for _, workers := range []int{2, 4, 8} {
		got := runNetWorkload(t, false, workers)
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("workers=%d: observables diverge from single-worker run", workers)
		}
	}
}

// TestNewShardedRejectsShortPropDelay pins the conservative precondition:
// a propagation delay below the engine lookahead would let packets arrive
// inside the current window and must be refused up front.
func TestNewShardedRejectsShortPropDelay(t *testing.T) {
	sh := sim.NewSharded(1, DefaultPropDelay)
	if _, err := NewSharded(sh, Config{PropDelay: DefaultPropDelay / 2}); err == nil {
		t.Fatal("NewSharded accepted PropDelay below the lookahead")
	}
	if _, err := NewSharded(sh, Config{}); err != nil {
		t.Fatalf("NewSharded rejected default config: %v", err)
	}
}

// TestShardedNodeLaneWiring checks the node/lane/env bookkeeping the upper
// layers (crucible, chaos fan-out) rely on.
func TestShardedNodeLaneWiring(t *testing.T) {
	sh := sim.NewSharded(1, DefaultPropDelay)
	net, err := NewSharded(sh, Config{})
	if err != nil {
		t.Fatal(err)
	}
	a, b := net.AddNode(PC3000), net.AddNode(PC850)
	if a.Lane() == b.Lane() {
		t.Fatalf("nodes share lane %d", a.Lane())
	}
	if net.Sharded() != sh || net.Env() != nil {
		t.Fatal("mode accessors miswired")
	}
	le, ok := a.Env().(*env.LaneEnv)
	if !ok || le.Lane() != a.Lane() {
		t.Fatalf("node env is %T (lane %d), want LaneEnv on lane %d", a.Env(), le.Lane(), a.Lane())
	}
	if sh.Lanes() != 2 {
		t.Fatalf("engine has %d lanes, want 2", sh.Lanes())
	}
}

func ExampleNewSharded() {
	sh := sim.NewSharded(7, DefaultPropDelay)
	sh.SetWorkers(4)
	net, _ := NewSharded(sh, Config{})
	rx := net.AddNode(PC3000) // lane 0
	tx := net.AddNode(PC3000) // lane 1
	rx.SetHandler(func(src wire.NodeID, pkt *wire.Packet) {
		fmt.Printf("node %d got seq %d from %d\n", rx.Local(), pkt.Seq, src)
	})
	tx.Env().Schedule(0, func() {
		_ = tx.Unicast(rx.Local(), &wire.Packet{Type: wire.TypeData, Src: tx.Local(), Stream: 1, Seq: 1})
	})
	_ = sh.Run()
	// Output: node 0 got seq 1 from 1
}
