// Package netem emulates the cloud computing environment the paper
// provisions from Emulab: a switched LAN of nodes with configurable machine
// type (CPU speed), link bandwidth, and end-host packet loss.
//
// The emulator runs in virtual time on an env.Env (normally a SimEnv) and
// models, per packet:
//
//  1. sender-side CPU cost (middleware marshal + OS send path), serialized
//     on the sending node's CPU and scaled by its machine's CPUFactor;
//  2. egress serialization delay (frame bits / link bandwidth) on a bounded
//     drop-tail egress queue;
//  3. switch store-and-forward plus propagation delay;
//  4. receiver-side CPU cost, serialized on the receiving node's CPU —
//     which is how CPU contention turns into queueing latency on slow
//     machines at high rates;
//  5. loss: end-host random drop of data-bearing packets (the paper's
//     methodology: readers programmatically drop the configured percentage),
//     plus an optional Gilbert-Elliott bursty link-loss model for failure-
//     injection tests.
//
// Multicast follows switched-Ethernet semantics: the sender serializes a
// frame once and the switch replicates it to every other node.
package netem

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"adamant/internal/env"
	"adamant/internal/metrics"
	"adamant/internal/sim"
	"adamant/internal/wire"
)

// Machine describes a compute platform profile. CPUFactor scales every
// CPU cost relative to the reference machine (pc3000 == 1.0).
type Machine struct {
	Name      string
	MHz       int
	RAMMB     int
	CPUFactor float64
}

// Machine profiles. PC850 and PC3000 mirror the Emulab hardware used in the
// paper; PC1500 and PC5000 are interpolated/extrapolated profiles used to
// exercise "environment unknown until runtime" scenarios.
var (
	PC850  = Machine{Name: "pc850", MHz: 850, RAMMB: 256, CPUFactor: 5.0}
	PC1500 = Machine{Name: "pc1500", MHz: 1500, RAMMB: 512, CPUFactor: 2.2}
	PC3000 = Machine{Name: "pc3000", MHz: 3000, RAMMB: 2048, CPUFactor: 1.0}
	PC5000 = Machine{Name: "pc5000", MHz: 5000, RAMMB: 8192, CPUFactor: 0.7}
)

// MachineByName resolves a machine profile by its Emulab-style name.
func MachineByName(name string) (Machine, error) {
	for _, m := range []Machine{PC850, PC1500, PC3000, PC5000} {
		if m.Name == name {
			return m, nil
		}
	}
	return Machine{}, fmt.Errorf("netem: unknown machine type %q", name)
}

// Bandwidth is a link speed in bits per second.
type Bandwidth int64

// LAN bandwidths from the paper's Table 1.
const (
	Mbps10  Bandwidth = 10_000_000
	Mbps100 Bandwidth = 100_000_000
	Gbps1   Bandwidth = 1_000_000_000
)

// String implements fmt.Stringer ("10Mb", "100Mb", "1Gb", else raw bps).
func (b Bandwidth) String() string {
	switch b {
	case Mbps10:
		return "10Mb"
	case Mbps100:
		return "100Mb"
	case Gbps1:
		return "1Gb"
	}
	return fmt.Sprintf("%dbps", int64(b))
}

// BandwidthByName parses the paper's bandwidth labels.
func BandwidthByName(name string) (Bandwidth, error) {
	switch name {
	case "10Mb":
		return Mbps10, nil
	case "100Mb":
		return Mbps100, nil
	case "1Gb":
		return Gbps1, nil
	}
	return 0, fmt.Errorf("netem: unknown bandwidth %q", name)
}

// FrameOverhead is the per-frame Ethernet+IP+UDP overhead in bytes added on
// top of the wire-format packet when modeling serialization and bandwidth.
const FrameOverhead = 54

// CostModel gives per-packet CPU costs on the reference machine
// (CPUFactor 1.0). Costs scale linearly with payload size via the PerKB
// terms and are multiplied by the node's CPUFactor and ProcScale.
type CostModel struct {
	SendBase  time.Duration
	SendPerKB time.Duration
	RecvBase  time.Duration
	RecvPerKB time.Duration
}

// DefaultCostModel approximates a 2005-era QoS pub/sub middleware data path
// (marshal, QoS bookkeeping, socket syscall) on the pc3000 reference node.
var DefaultCostModel = CostModel{
	SendBase:  18 * time.Microsecond,
	SendPerKB: 3 * time.Microsecond,
	RecvBase:  26 * time.Microsecond,
	RecvPerKB: 3 * time.Microsecond,
}

func (c CostModel) sendCost(frameBytes int) time.Duration {
	return c.SendBase + time.Duration(frameBytes)*c.SendPerKB/1024
}

func (c CostModel) recvCost(frameBytes int) time.Duration {
	return c.RecvBase + time.Duration(frameBytes)*c.RecvPerKB/1024
}

// Config parameterizes a Network. The zero value is completed by New with
// the defaults documented on each field.
type Config struct {
	// Bandwidth is the LAN link speed. Default: Gbps1.
	Bandwidth Bandwidth
	// PropDelay is one-way propagation plus switch latency. Default
	// DefaultPropDelay. On a sharded network this is also the conservative
	// lookahead: no packet reaches another node sooner than one propagation
	// time, which is what makes PropDelay-wide time windows safe to run in
	// parallel.
	PropDelay time.Duration
	// MaxQueueDelay bounds each node's egress queueing delay; a frame that
	// would wait longer is dropped (drop-tail). Default 50ms.
	MaxQueueDelay time.Duration
	// Cost is the per-packet CPU cost model. Default DefaultCostModel.
	Cost CostModel
}

// DefaultPropDelay is the default one-way propagation plus switch latency,
// and therefore the default conservative window width of a sharded network.
const DefaultPropDelay = 30 * time.Microsecond

func (c *Config) fillDefaults() {
	if c.Bandwidth == 0 {
		c.Bandwidth = Gbps1
	}
	if c.PropDelay == 0 {
		c.PropDelay = DefaultPropDelay
	}
	if c.MaxQueueDelay == 0 {
		c.MaxQueueDelay = 50 * time.Millisecond
	}
	if c.Cost == (CostModel{}) {
		c.Cost = DefaultCostModel
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Bandwidth < 0 {
		return errors.New("netem: negative bandwidth")
	}
	if c.PropDelay < 0 {
		return errors.New("netem: negative propagation delay")
	}
	if c.MaxQueueDelay < 0 {
		return errors.New("netem: negative max queue delay")
	}
	return nil
}

// Network is a single switched LAN of emulated nodes.
//
// A network runs in one of two modes. The classic mode (New) drives every
// node from one shared env on a single kernel. The sharded mode
// (NewSharded) gives every node its own lane of a sim.Sharded engine —
// per-node state is then only touched by that node's lane, so lanes run in
// parallel under the engine's conservative PropDelay-wide time windows
// while producing the same deterministic behavior at any worker count.
type Network struct {
	env   env.Env // classic mode only; nil when sharded
	sh    *sim.Sharded
	cfg   Config
	nodes []*Node
	// freeIn/freeRx recycle the per-packet dispatch records handed to
	// env.ScheduleArg, so the emulator's hot path (one switch delivery and
	// one CPU-done dispatch per hop) runs closure- and allocation-free in
	// steady state. Single-threaded by the env serialization contract.
	freeIn []*inflight
	freeRx []*rxDispatch
}

// maxFreeDispatch bounds the dispatch-record pools the same way the kernel
// bounds its event free list.
const maxFreeDispatch = 4096

// inflight is a frame traversing the switch: scheduled at transmit time,
// delivered to every target at arrival time by deliverInflight.
type inflight struct {
	net     *Network
	src     wire.NodeID
	pkt     *wire.Packet
	frame   int
	targets []*Node
}

// deliverInflight is the static ScheduleArg callback for switch delivery.
func deliverInflight(a any) {
	f := a.(*inflight)
	for _, t := range f.targets {
		t.receive(f.src, f.pkt, f.frame)
	}
	f.net.putInflight(f)
}

func (n *Network) getInflight() *inflight {
	if ln := len(n.freeIn); ln > 0 {
		f := n.freeIn[ln-1]
		n.freeIn[ln-1] = nil
		n.freeIn = n.freeIn[:ln-1]
		return f
	}
	return &inflight{net: n}
}

func (n *Network) putInflight(f *inflight) {
	f.pkt = nil
	f.targets = f.targets[:0]
	if len(n.freeIn) < maxFreeDispatch {
		n.freeIn = append(n.freeIn, f)
	}
}

// rxDispatch hands a received packet to the node handler once the receiver
// CPU finishes its per-packet cost.
type rxDispatch struct {
	nd  *Node
	src wire.NodeID
	pkt *wire.Packet
}

// dispatchRx is the static ScheduleArg callback for receiver-CPU completion.
// Sharded nodes recycle through their own lane-local pool; classic nodes
// share the network pool as before.
func dispatchRx(a any) {
	d := a.(*rxDispatch)
	nd, src, pkt := d.nd, d.src, d.pkt
	d.nd, d.pkt = nil, nil
	if nd.lane >= 0 {
		if len(nd.freeRx) < maxFreeDispatch {
			nd.freeRx = append(nd.freeRx, d)
		}
	} else if len(nd.net.freeRx) < maxFreeDispatch {
		nd.net.freeRx = append(nd.net.freeRx, d)
	}
	if nd.handler != nil {
		nd.handler(src, pkt)
	}
}

func (n *Network) getRx() *rxDispatch {
	if ln := len(n.freeRx); ln > 0 {
		d := n.freeRx[ln-1]
		n.freeRx[ln-1] = nil
		n.freeRx = n.freeRx[:ln-1]
		return d
	}
	return &rxDispatch{}
}

func (nd *Node) getRx() *rxDispatch {
	if nd.lane < 0 {
		return nd.net.getRx()
	}
	if ln := len(nd.freeRx); ln > 0 {
		d := nd.freeRx[ln-1]
		nd.freeRx[ln-1] = nil
		nd.freeRx = nd.freeRx[:ln-1]
		return d
	}
	return &rxDispatch{}
}

// xArrival carries one frame across a lane boundary: scheduled on the
// sender's lane, delivered on the receiver's. The records go through a
// sync.Pool because Get/Put happen on different workers; pooling order is
// determinism-neutral since every field is rewritten before use.
type xArrival struct {
	nd    *Node
	src   wire.NodeID
	pkt   *wire.Packet
	frame int
}

var xArrivalPool = sync.Pool{New: func() any { return new(xArrival) }}

// deliverXArrival is the cross-lane counterpart of deliverInflight, running
// on the receiving node's lane.
func deliverXArrival(v any) {
	a := v.(*xArrival)
	nd, src, pkt, frame := a.nd, a.src, a.pkt, a.frame
	a.nd, a.pkt = nil, nil
	xArrivalPool.Put(a)
	nd.receive(src, pkt, frame)
}

// New builds a LAN on the given environment.
func New(e env.Env, cfg Config) (*Network, error) {
	if e == nil {
		return nil, errors.New("netem: nil env")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.fillDefaults()
	return &Network{env: e, cfg: cfg}, nil
}

// NewSharded builds a LAN on a lane-sharded engine: every AddNode claims a
// fresh lane, and packets crossing nodes go through the engine's
// conservative window barrier. The engine's lookahead must not exceed the
// configured propagation delay — PropDelay is the guarantee that makes the
// windows safe.
func NewSharded(sh *sim.Sharded, cfg Config) (*Network, error) {
	if sh == nil {
		return nil, errors.New("netem: nil sharded engine")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.fillDefaults()
	if cfg.PropDelay < sh.Lookahead() {
		return nil, fmt.Errorf("netem: propagation delay %v below engine lookahead %v",
			cfg.PropDelay, sh.Lookahead())
	}
	return &Network{sh: sh, cfg: cfg}, nil
}

// Env returns the environment the network runs on in classic mode, nil in
// sharded mode (where each node has its own lane env — see Node.Env).
func (n *Network) Env() env.Env { return n.env }

// Sharded returns the engine a sharded network runs on, nil in classic mode.
func (n *Network) Sharded() *sim.Sharded { return n.sh }

// Config returns the (default-filled) configuration.
func (n *Network) Config() Config { return n.cfg }

// AddNode attaches a node of the given machine type and returns it. Node
// IDs are assigned densely in attachment order. On a sharded network the
// node claims its own engine lane; its loss rng derives from the same
// (seed, name) pair as in classic mode, so a node's drop decisions are the
// same function of its delivery stream in both modes.
func (n *Network) AddNode(m Machine) *Node {
	node := &Node{
		net:       n,
		id:        wire.NodeID(len(n.nodes)),
		machine:   m,
		procScale: 1.0,
		lossTypes: defaultLossMask,
		lane:      -1,
	}
	if n.sh != nil {
		node.lane = n.sh.AddLane()
		node.env = env.NewLane(n.sh, node.lane)
	} else {
		node.env = n.env
	}
	node.rng = node.env.Rand(fmt.Sprintf("netem/node/%d", node.id))
	n.nodes = append(n.nodes, node)
	return node
}

// Node returns the node with the given ID, or nil.
func (n *Network) Node(id wire.NodeID) *Node {
	if int(id) >= len(n.nodes) {
		return nil
	}
	return n.nodes[id]
}

// Nodes returns all attached nodes in ID order. The returned slice is a
// copy.
func (n *Network) Nodes() []*Node {
	return append([]*Node(nil), n.nodes...)
}

// lossMask is a bitset over wire.Type (values 1..15 fit a uint16): one
// branch-free AND per delivered packet instead of a map lookup.
type lossMask uint16

func (m lossMask) has(t wire.Type) bool { return m&(lossMask(1)<<uint(t)) != 0 }

const defaultLossMask = lossMask(1)<<uint(wire.TypeData) |
	lossMask(1)<<uint(wire.TypeRetrans) |
	lossMask(1)<<uint(wire.TypeRepair)

// Stats are cumulative per-node traffic counters.
type Stats struct {
	TxPackets, RxPackets uint64
	TxBytes, RxBytes     uint64
	DroppedLoss          uint64 // end-host/link loss drops
	DroppedQueue         uint64 // egress queue overflows
}

// Node is one emulated host on the LAN. It implements the transport
// Endpoint contract: Unicast, Multicast, Work, SetHandler, Local, MTU.
//
// A node is not safe for concurrent use; all interaction must happen from
// env callbacks, which the env serializes.
type Node struct {
	net *Network
	// env is the node's execution environment: the shared network env in
	// classic mode, the node's own lane env in sharded mode.
	env       env.Env
	lane      int // engine lane, -1 in classic mode
	id        wire.NodeID
	machine   Machine
	procScale float64
	handler   func(src wire.NodeID, pkt *wire.Packet)
	// freeRx is the lane-local dispatch pool used instead of the shared
	// network pool when the node runs sharded.
	freeRx []*rxDispatch

	lossPct   float64
	lossTypes lossMask
	ge        *gilbertElliott
	partition bool

	cpuBusyUntil  time.Time
	linkBusyUntil time.Time

	stats Stats
	rxBW  metrics.Bandwidth
	txBW  metrics.Bandwidth
	rng   *rand.Rand
}

// Local returns the node's ID.
func (nd *Node) Local() wire.NodeID { return nd.id }

// Env returns the environment the node's callbacks run on: the shared
// network env in classic mode, the node's own lane env in sharded mode.
// Components attached to this node (protocol stacks, detectors, chaos
// effects) must schedule through it.
func (nd *Node) Env() env.Env { return nd.env }

// Lane returns the node's engine lane, or -1 in classic mode.
func (nd *Node) Lane() int { return nd.lane }

// Partitioned reports whether the node is currently isolated.
func (nd *Node) Partitioned() bool { return nd.partition }

// LossPct returns the node's configured end-host loss percentage.
func (nd *Node) LossPct() float64 { return nd.lossPct }

// ProcScale returns the node's CPU cost multiplier.
func (nd *Node) ProcScale() float64 { return nd.procScale }

// BurstLossActive reports whether the Gilbert-Elliott model is enabled.
func (nd *Node) BurstLossActive() bool { return nd.ge != nil }

// Machine returns the node's machine profile.
func (nd *Node) Machine() Machine { return nd.machine }

// MTU returns the maximum payload the node will accept for a single send.
func (nd *Node) MTU() int { return 9000 }

// Stats returns a copy of the node's traffic counters.
func (nd *Node) Stats() Stats { return nd.stats }

// RxBandwidth returns the receive-side bandwidth accumulator.
func (nd *Node) RxBandwidth() *metrics.Bandwidth { return &nd.rxBW }

// TxBandwidth returns the transmit-side bandwidth accumulator.
func (nd *Node) TxBandwidth() *metrics.Bandwidth { return &nd.txBW }

// SetProcScale sets an additional multiplier on the node's CPU costs,
// modeling middleware implementation overhead differences (the DDS
// implementation axis of the paper's Table 1). scale <= 0 is reset to 1.
func (nd *Node) SetProcScale(scale float64) {
	if scale <= 0 {
		scale = 1
	}
	nd.procScale = scale
}

// SetLoss configures end-host random drop probability (percent, 0-100) for
// data-bearing packet types (DATA, RETRANS, REPAIR), mirroring the paper's
// methodology of dropping at the receiving data readers.
func (nd *Node) SetLoss(pct float64) {
	if pct < 0 {
		pct = 0
	}
	if pct > 100 {
		pct = 100
	}
	nd.lossPct = pct
}

// SetLossTypes overrides which packet types are subject to end-host loss.
func (nd *Node) SetLossTypes(types ...wire.Type) {
	var m lossMask
	for _, t := range types {
		m |= lossMask(1) << uint(t)
	}
	nd.lossTypes = m
}

// SetBurstLoss enables a Gilbert-Elliott two-state bursty loss model on the
// node's inbound path in addition to (and before) uniform end-host loss.
// pGoodToBad/pBadToGood are per-packet transition probabilities and lossBad
// is the drop probability while in the bad state. Passing zeros disables it.
func (nd *Node) SetBurstLoss(pGoodToBad, pBadToGood, lossBad float64) {
	if pGoodToBad <= 0 {
		nd.ge = nil
		return
	}
	nd.ge = &gilbertElliott{p: pGoodToBad, r: pBadToGood, h: lossBad}
}

// SetPartitioned isolates the node: while true, every packet to or from it
// is dropped (failure injection).
func (nd *Node) SetPartitioned(v bool) { nd.partition = v }

// SetHandler registers the receive callback. The handler runs in env
// callback context; the packet it receives is owned by the handler.
func (nd *Node) SetHandler(h func(src wire.NodeID, pkt *wire.Packet)) { nd.handler = h }

// Work consumes local CPU: cost is at reference-machine speed and is scaled
// by the node's CPUFactor and ProcScale. Subsequent packet processing on
// this node queues behind it. It returns the time until the CPU is free
// again (the scaled cost plus any queueing behind earlier work).
func (nd *Node) Work(cost time.Duration) time.Duration {
	if cost <= 0 {
		return 0
	}
	now := nd.env.Now()
	start := nd.cpuBusyUntil
	if start.Before(now) {
		start = now
	}
	nd.cpuBusyUntil = start.Add(nd.scaled(cost))
	return nd.cpuBusyUntil.Sub(now)
}

func (nd *Node) scaled(d time.Duration) time.Duration {
	return time.Duration(float64(d) * nd.machine.CPUFactor * nd.procScale)
}

// ScaleCPU converts a reference-machine duration to this node's speed
// without occupying the node's CPU.
func (nd *Node) ScaleCPU(d time.Duration) time.Duration { return nd.scaled(d) }

// Unicast sends pkt to dst, modeling the full cost pipeline. It returns an
// error only for malformed packets or unknown destinations; loss and queue
// drops are silent, as on a real network.
func (nd *Node) Unicast(dst wire.NodeID, pkt *wire.Packet) error {
	target := nd.net.Node(dst)
	if target == nil {
		return fmt.Errorf("netem: unicast to unknown node %d", dst)
	}
	if dst == nd.id {
		return errors.New("netem: unicast to self")
	}
	if nd.net.sh != nil {
		return nd.transmitSharded(pkt, target)
	}
	f := nd.net.getInflight()
	f.targets = append(f.targets, target)
	return nd.transmit(f, pkt)
}

// Multicast sends pkt to every other node on the LAN with one egress
// serialization (switched-Ethernet multicast semantics).
func (nd *Node) Multicast(pkt *wire.Packet) error {
	if nd.net.sh != nil {
		return nd.transmitSharded(pkt, nil)
	}
	f := nd.net.getInflight()
	for _, t := range nd.net.nodes {
		if t.id != nd.id {
			f.targets = append(f.targets, t)
		}
	}
	return nd.transmit(f, pkt)
}

// admit runs the sender-side pipeline shared by both modes: MTU check,
// partition drop, sender CPU, drop-tail egress queue, tx accounting. It
// returns the switch arrival time (store-and-forward: a second
// serialization after linkDone, then propagation) and whether the frame
// made it onto the wire. The operation order is part of the determinism
// contract — the classic golden hashes pin it.
func (nd *Node) admit(pkt *wire.Packet) (arrival time.Time, frame int, ok bool, err error) {
	if len(pkt.Payload) > nd.MTU() {
		return time.Time{}, 0, false, fmt.Errorf("netem: payload %d exceeds MTU %d", len(pkt.Payload), nd.MTU())
	}
	now := nd.env.Now()
	frame = pkt.EncodedSize() + FrameOverhead

	if nd.partition {
		nd.stats.DroppedLoss++
		return time.Time{}, frame, false, nil
	}

	// Sender CPU: marshal + send path, serialized on this node's CPU.
	cpuStart := maxTime(now, nd.cpuBusyUntil)
	cpuDone := cpuStart.Add(nd.scaled(nd.net.cfg.Cost.sendCost(frame)))
	nd.cpuBusyUntil = cpuDone

	// Egress serialization on the NIC, after the CPU hands the frame off.
	// Frames that would queue longer than MaxQueueDelay are dropped.
	txTime := serialization(frame, nd.net.cfg.Bandwidth)
	linkStart := maxTime(cpuDone, nd.linkBusyUntil)
	if linkStart.Sub(cpuDone) > nd.net.cfg.MaxQueueDelay {
		nd.stats.DroppedQueue++
		return time.Time{}, frame, false, nil
	}
	linkDone := linkStart.Add(txTime)
	nd.linkBusyUntil = linkDone

	nd.stats.TxPackets++
	nd.stats.TxBytes += uint64(frame)
	nd.txBW.Add(now, frame)

	return linkDone.Add(txTime).Add(nd.net.cfg.PropDelay), frame, true, nil
}

func (nd *Node) transmit(f *inflight, pkt *wire.Packet) error {
	arrival, frame, ok, err := nd.admit(pkt)
	if err != nil || !ok {
		nd.net.putInflight(f)
		return err
	}
	// Every target receives the same clone pointer, matching the previous
	// closure-based dispatch.
	f.src = nd.id
	f.pkt = pkt.Clone()
	f.frame = frame
	nd.env.ScheduleArg(arrival.Sub(nd.env.Now()), deliverInflight, f)
	return nil
}

// transmitSharded is the lane-crossing delivery path: one admit on the
// sending lane, then one cross-lane message per target (every target is on
// its own lane). All targets share one read-only clone, the same sharing
// contract the classic multicast path has always imposed. Arrival is at
// least PropDelay >= lookahead in the future, satisfying the engine's
// conservative send bound. target == nil means multicast to all others.
func (nd *Node) transmitSharded(pkt *wire.Packet, target *Node) error {
	arrival, frame, ok, err := nd.admit(pkt)
	if err != nil || !ok {
		return err
	}
	clone := pkt.Clone()
	if target != nil {
		nd.sendLane(target, clone, frame, arrival)
		return nil
	}
	for _, t := range nd.net.nodes {
		if t.id != nd.id {
			nd.sendLane(t, clone, frame, arrival)
		}
	}
	return nil
}

func (nd *Node) sendLane(t *Node, pkt *wire.Packet, frame int, arrival time.Time) {
	a := xArrivalPool.Get().(*xArrival)
	a.nd, a.src, a.pkt, a.frame = t, nd.id, pkt, frame
	nd.net.sh.Send(nd.lane, t.lane, arrival, deliverXArrival, a, nil)
}

func (nd *Node) receive(src wire.NodeID, pkt *wire.Packet, frame int) {
	e := nd.env
	now := e.Now()
	if nd.partition {
		nd.stats.DroppedLoss++
		return
	}
	// Bursty link loss first (applies to all packet types).
	if nd.ge != nil && nd.ge.drop(nd.rng) {
		nd.stats.DroppedLoss++
		return
	}
	// End-host loss for data-bearing packets (paper methodology).
	if nd.lossPct > 0 && nd.lossTypes.has(pkt.Type) {
		if nd.rng.Float64()*100 < nd.lossPct {
			nd.stats.DroppedLoss++
			return
		}
	}
	nd.stats.RxPackets++
	nd.stats.RxBytes += uint64(frame)
	nd.rxBW.Add(now, frame)

	// Receiver CPU: demarshal + dispatch, serialized on this node's CPU.
	cpuStart := maxTime(now, nd.cpuBusyUntil)
	cpuDone := cpuStart.Add(nd.scaled(nd.net.cfg.Cost.recvCost(frame)))
	nd.cpuBusyUntil = cpuDone
	d := nd.getRx()
	d.nd, d.src, d.pkt = nd, src, pkt
	e.ScheduleArg(cpuDone.Sub(now), dispatchRx, d)
}

func serialization(frameBytes int, bw Bandwidth) time.Duration {
	if bw <= 0 {
		return 0
	}
	bits := float64(frameBytes * 8)
	sec := bits / float64(bw)
	return time.Duration(sec * float64(time.Second))
}

func maxTime(a, b time.Time) time.Time {
	if a.After(b) {
		return a
	}
	return b
}

// gilbertElliott is the classic two-state bursty loss channel.
type gilbertElliott struct {
	p, r, h float64 // P(good->bad), P(bad->good), P(drop | bad)
	bad     bool
}

func (g *gilbertElliott) drop(rng *rand.Rand) bool {
	if g.bad {
		if rng.Float64() < g.r {
			g.bad = false
		}
	} else {
		if rng.Float64() < g.p {
			g.bad = true
		}
	}
	return g.bad && rng.Float64() < g.h
}
