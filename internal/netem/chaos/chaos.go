// Package chaos is a deterministic, discrete-event fault schedule engine
// for the netem LAN emulator. A Scenario is a named script of timed fault
// events — partitions and heals, link flaps, loss ramps, Gilbert-Elliott
// burst windows, node crashes and restarts, CPU-scale squeezes — applied
// through the existing netem.Node knobs via env.Env timers, so the same
// scenario replays bit-identically for a given simulation seed.
//
// Scenarios are plain data (no closures), which makes them trivially
// fuzzable and lets checkers reason about them statically: EndState replays
// a scenario's knob effects without running the simulator to derive which
// nodes end the run down and whether every transient fault heals.
//
// The transport crucible (internal/transport/conformance) runs every
// registered protocol through the canonical scenario library in this
// package under shared invariant checkers; adamant-verify -chaos exposes
// the same matrix from the command line.
package chaos

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"adamant/internal/env"
	"adamant/internal/netem"
)

// Role selects which node(s) an event targets.
type Role uint8

// Role values.
const (
	// RoleSender targets the publishing node.
	RoleSender Role = iota + 1
	// RoleReceiver targets one receiver: index Target.Index modulo the
	// receiver count, so scenarios stay valid for any group size.
	RoleReceiver
	// RoleAllReceivers targets every receiver.
	RoleAllReceivers
	// RoleEvenReceivers targets receivers 0, 2, 4, ... — the deterministic
	// "half the group" used by split-brain style scenarios.
	RoleEvenReceivers

	maxRole = RoleEvenReceivers
)

var roleNames = [...]string{
	RoleSender:        "sender",
	RoleReceiver:      "receiver",
	RoleAllReceivers:  "receivers",
	RoleEvenReceivers: "even-receivers",
}

// String implements fmt.Stringer.
func (r Role) String() string {
	if int(r) < len(roleNames) && roleNames[r] != "" {
		return roleNames[r]
	}
	return fmt.Sprintf("Role(%d)", uint8(r))
}

// Valid reports whether r is a known role.
func (r Role) Valid() bool { return r >= RoleSender && r <= maxRole }

// Kind enumerates the fault event types.
type Kind uint8

// Kind values.
const (
	// KindPartition isolates the target (every packet to or from it is
	// dropped). A partition is a transient link fault: checkers expect a
	// matching KindHeal before the scenario ends unless the node crashed.
	KindPartition Kind = iota + 1
	// KindHeal reconnects a partitioned target.
	KindHeal
	// KindLoss sets the target's uniform end-host loss to Pct percent.
	KindLoss
	// KindBurst enables a Gilbert-Elliott bursty loss window on the target
	// (PGB, PBG, DropBad transition/drop probabilities).
	KindBurst
	// KindBurstOff disables the Gilbert-Elliott model on the target.
	KindBurstOff
	// KindCrash fails the target like a dead process: the node is isolated
	// exactly as by KindPartition, and Hooks.OnCrash fires so harnesses can
	// model process death. Checkers treat a crashed-and-not-restarted node
	// as legitimately down at scenario end.
	KindCrash
	// KindRestart revives a crashed target: the node reconnects and
	// Hooks.OnRestart fires.
	KindRestart
	// KindCPUScale multiplies the target's CPU costs by Scale (a slow-node
	// squeeze; Scale 1 restores normal speed).
	KindCPUScale

	maxKind = KindCPUScale
)

var kindNames = [...]string{
	KindPartition: "partition",
	KindHeal:      "heal",
	KindLoss:      "loss",
	KindBurst:     "burst",
	KindBurstOff:  "burst-off",
	KindCrash:     "crash",
	KindRestart:   "restart",
	KindCPUScale:  "cpu-scale",
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Valid reports whether k is a known kind.
func (k Kind) Valid() bool { return k >= KindPartition && k <= maxKind }

// Target names the node(s) an event applies to.
type Target struct {
	Role Role
	// Index selects the receiver for RoleReceiver (taken modulo the
	// receiver count); ignored for other roles.
	Index int
}

// Sender, Receiver, AllReceivers and EvenReceivers are Target constructors.
func Sender() Target        { return Target{Role: RoleSender} }
func Receiver(i int) Target { return Target{Role: RoleReceiver, Index: i} }
func AllReceivers() Target  { return Target{Role: RoleAllReceivers} }
func EvenReceivers() Target { return Target{Role: RoleEvenReceivers} }

// Event is one timed fault. The zero value is invalid.
type Event struct {
	// At is the virtual-time offset from scenario start.
	At     time.Duration
	Kind   Kind
	Target Target
	// Pct is the loss percentage for KindLoss.
	Pct float64
	// Scale is the CPU multiplier for KindCPUScale.
	Scale float64
	// PGB, PBG, DropBad parameterize KindBurst (good->bad and bad->good
	// transition probabilities and the drop probability in the bad state).
	PGB, PBG, DropBad float64
}

// Validate reports whether the event is well-formed.
func (ev Event) Validate() error {
	if ev.At < 0 {
		return fmt.Errorf("chaos: negative event time %v", ev.At)
	}
	if !ev.Kind.Valid() {
		return fmt.Errorf("chaos: invalid kind %d", uint8(ev.Kind))
	}
	if !ev.Target.Role.Valid() {
		return fmt.Errorf("chaos: invalid role %d", uint8(ev.Target.Role))
	}
	if ev.Target.Index < 0 {
		return fmt.Errorf("chaos: negative target index %d", ev.Target.Index)
	}
	switch ev.Kind {
	case KindLoss:
		if ev.Pct < 0 || ev.Pct > 100 {
			return fmt.Errorf("chaos: loss pct %v out of [0,100]", ev.Pct)
		}
	case KindBurst:
		for _, p := range []float64{ev.PGB, ev.PBG, ev.DropBad} {
			if p < 0 || p > 1 {
				return fmt.Errorf("chaos: burst probability %v out of [0,1]", p)
			}
		}
	case KindCPUScale:
		if ev.Scale <= 0 {
			return fmt.Errorf("chaos: non-positive cpu scale %v", ev.Scale)
		}
	}
	return nil
}

// Scenario is a named, replayable fault script.
type Scenario struct {
	// Name identifies the scenario in matrices and reports.
	Name string
	// Info is a one-line description for humans.
	Info string
	// Events is the fault script. Events need not be sorted; same-instant
	// events apply in slice order.
	Events []Event
}

// Validate reports whether every event is well-formed.
func (sc Scenario) Validate() error {
	if sc.Name == "" {
		return errors.New("chaos: scenario missing name")
	}
	for i, ev := range sc.Events {
		if err := ev.Validate(); err != nil {
			return fmt.Errorf("event %d: %w", i, err)
		}
	}
	return nil
}

// Horizon returns the time of the latest event (0 for an empty script).
func (sc Scenario) Horizon() time.Duration {
	var h time.Duration
	for _, ev := range sc.Events {
		if ev.At > h {
			h = ev.At
		}
	}
	return h
}

// Nodes binds a scenario to the emulated world.
type Nodes struct {
	Sender    *netem.Node
	Receivers []*netem.Node
}

// Hooks observe schedule execution. All fields are optional.
type Hooks struct {
	// OnCrash fires when a KindCrash event isolates a node. For receiver
	// targets idx is the resolved receiver index; for the sender it is -1.
	OnCrash func(idx int)
	// OnRestart fires when a KindRestart event revives a node, with the
	// same index convention.
	OnRestart func(idx int)
	// OnEvent fires after every event is applied (observability/tracing).
	OnEvent func(ev Event)
}

// resolve maps a target to the concrete receiver indices it covers;
// sender targets return {-1}.
func (t Target) resolve(receivers int) []int {
	switch t.Role {
	case RoleSender:
		return []int{-1}
	case RoleReceiver:
		if receivers == 0 {
			return nil
		}
		return []int{t.Index % receivers}
	case RoleAllReceivers:
		out := make([]int, receivers)
		for i := range out {
			out[i] = i
		}
		return out
	case RoleEvenReceivers:
		var out []int
		for i := 0; i < receivers; i += 2 {
			out = append(out, i)
		}
		return out
	}
	return nil
}

// Schedule arms every event of sc against n on e and returns the scenario
// horizon. Event effects run in env callback context at their virtual
// times; events already due (At == 0) run on the next env dispatch.
func Schedule(e env.Env, n Nodes, sc Scenario, h Hooks) (time.Duration, error) {
	if e == nil {
		return 0, errors.New("chaos: nil env")
	}
	if n.Sender == nil {
		return 0, errors.New("chaos: nil sender node")
	}
	if err := sc.Validate(); err != nil {
		return 0, fmt.Errorf("chaos: scenario %q: %w", sc.Name, err)
	}
	// Stable-sort a copy by time so same-instant events fire in slice
	// order regardless of how the env breaks ties between separately
	// scheduled timers.
	evs := append([]Event(nil), sc.Events...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	for _, ev := range evs {
		ev := ev
		e.Schedule(ev.At, func() { apply(ev, n, h) })
	}
	return sc.Horizon(), nil
}

// ScheduleNodes arms sc with every fault effect scheduled on its target
// node's own env (Node.Env), instead of one shared env. This is the
// required form on a sharded network, where a node's knobs may only be
// touched from that node's lane; on a classic network every Node.Env is
// the same env, so the effects land at the same virtual times as Schedule.
// The differences from Schedule are hook granularity and context: OnEvent
// fires once per (event, resolved node) rather than once per event, and on
// a sharded network hooks run on the target node's lane — they must only
// touch that node's state.
func ScheduleNodes(n Nodes, sc Scenario, h Hooks) (time.Duration, error) {
	if n.Sender == nil {
		return 0, errors.New("chaos: nil sender node")
	}
	if err := sc.Validate(); err != nil {
		return 0, fmt.Errorf("chaos: scenario %q: %w", sc.Name, err)
	}
	evs := append([]Event(nil), sc.Events...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	for _, ev := range evs {
		ev := ev
		for _, idx := range ev.Target.resolve(len(n.Receivers)) {
			idx := idx
			node := n.Sender
			if idx >= 0 {
				node = n.Receivers[idx]
			}
			node.Env().Schedule(ev.At, func() {
				applyKnob(ev, node)
				fireHooks(ev, idx, h)
				if h.OnEvent != nil {
					h.OnEvent(ev)
				}
			})
		}
	}
	return sc.Horizon(), nil
}

// applyKnob turns one event into the node knob call it stands for.
func applyKnob(ev Event, node *netem.Node) {
	switch ev.Kind {
	case KindPartition, KindCrash:
		node.SetPartitioned(true)
	case KindHeal, KindRestart:
		node.SetPartitioned(false)
	case KindLoss:
		node.SetLoss(ev.Pct)
	case KindBurst:
		node.SetBurstLoss(ev.PGB, ev.PBG, ev.DropBad)
	case KindBurstOff:
		node.SetBurstLoss(0, 0, 0)
	case KindCPUScale:
		node.SetProcScale(ev.Scale)
	}
}

// fireHooks raises the crash/restart hooks for one resolved target.
func fireHooks(ev Event, idx int, h Hooks) {
	switch ev.Kind {
	case KindCrash:
		if h.OnCrash != nil {
			h.OnCrash(idx)
		}
	case KindRestart:
		if h.OnRestart != nil {
			h.OnRestart(idx)
		}
	}
}

func apply(ev Event, n Nodes, h Hooks) {
	for _, idx := range ev.Target.resolve(len(n.Receivers)) {
		node := n.Sender
		if idx >= 0 {
			node = n.Receivers[idx]
		}
		applyKnob(ev, node)
		fireHooks(ev, idx, h)
	}
	if h.OnEvent != nil {
		h.OnEvent(ev)
	}
}

// NodeEnd is the statically derived end-of-scenario state of one node.
type NodeEnd struct {
	// Partitioned is true when the node's last partition/crash was never
	// healed/restarted.
	Partitioned bool
	// Crashed is true when the node's last isolation came from KindCrash
	// (a process death, not a link fault) and no restart followed.
	Crashed bool
	// Dirty is true when the node ends the scenario with residual loss,
	// burst loss, or a CPU scale other than 1 — i.e. a fault that never
	// reverted.
	Dirty bool
}

// Down reports whether the node ends the scenario disconnected.
func (ne NodeEnd) Down() bool { return ne.Partitioned || ne.Crashed }

// EndState replays the scenario's knob effects (without the simulator) and
// returns the end state of the sender and of each of the given receivers.
// Checkers use it to decide which invariants apply: convergence is only
// owed by nodes that end the scenario connected and clean.
func (sc Scenario) EndState(receivers int) (sender NodeEnd, recv []NodeEnd) {
	recv = make([]NodeEnd, receivers)
	evs := append([]Event(nil), sc.Events...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	type knobs struct {
		loss  float64
		burst bool
		scale float64
	}
	kn := make([]knobs, receivers+1) // index 0 = sender, 1+i = receiver i
	for i := range kn {
		kn[i].scale = 1
	}
	at := func(idx int) (*NodeEnd, *knobs) {
		if idx < 0 {
			return &sender, &kn[0]
		}
		return &recv[idx], &kn[1+idx]
	}
	for _, ev := range evs {
		for _, idx := range ev.Target.resolve(receivers) {
			ne, k := at(idx)
			switch ev.Kind {
			case KindPartition:
				ne.Partitioned = true
			case KindHeal:
				ne.Partitioned = false
			case KindCrash:
				ne.Partitioned = true
				ne.Crashed = true
			case KindRestart:
				ne.Partitioned = false
				ne.Crashed = false
			case KindLoss:
				k.loss = ev.Pct
			case KindBurst:
				k.burst = ev.PGB > 0
			case KindBurstOff:
				k.burst = false
			case KindCPUScale:
				k.scale = ev.Scale
				if ev.Scale <= 0 {
					k.scale = 1
				}
			}
		}
	}
	for i := range kn {
		ne, k := &sender, &kn[0]
		if i > 0 {
			ne, k = &recv[i-1], &kn[i]
		}
		ne.Dirty = k.loss != 0 || k.burst || k.scale != 1
	}
	return sender, recv
}
