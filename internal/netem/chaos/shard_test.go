package chaos

// Sharded-vs-serial differential coverage for chaos schedules: the same
// fault script applied to the same topology must produce identical node
// states and identical traffic observables whether the world runs on one
// kernel (Schedule) or on per-node lanes of a sharded engine
// (ScheduleNodes), at any worker count.

import (
	"reflect"
	"sort"
	"testing"
	"time"

	"adamant/internal/env"
	"adamant/internal/netem"
	"adamant/internal/sim"
	"adamant/internal/wire"
)

// knobState is the externally visible fault state of one node.
type knobState struct {
	Partitioned bool
	LossPct     float64
	ProcScale   float64
	Burst       bool
}

func snapshotKnobs(net *netem.Network) []knobState {
	var out []knobState
	for _, nd := range net.Nodes() {
		out = append(out, knobState{
			Partitioned: nd.Partitioned(),
			LossPct:     nd.LossPct(),
			ProcScale:   nd.ProcScale(),
			Burst:       nd.BurstLossActive(),
		})
	}
	return out
}

// buildWorld constructs a 1-sender, receivers-receiver world in either
// mode and returns the network, the node binding, and the run driver.
func buildWorld(t testing.TB, classic bool, workers, receivers int, seed int64) (*netem.Network, Nodes, interface {
	RunFor(time.Duration) error
	Run() error
}) {
	t.Helper()
	if classic {
		k := sim.New(seed)
		k.SetEventLimit(5_000_000)
		network, err := netem.New(env.NewSim(k), netem.Config{})
		if err != nil {
			t.Fatal(err)
		}
		n := Nodes{Sender: network.AddNode(netem.PC3000)}
		for i := 0; i < receivers; i++ {
			n.Receivers = append(n.Receivers, network.AddNode(netem.PC3000))
		}
		return network, n, k
	}
	sh := sim.NewSharded(seed, netem.DefaultPropDelay)
	sh.SetWorkers(workers)
	sh.SetEventLimit(5_000_000)
	network, err := netem.NewSharded(sh, netem.Config{})
	if err != nil {
		t.Fatal(err)
	}
	n := Nodes{Sender: network.AddNode(netem.PC3000)}
	for i := 0; i < receivers; i++ {
		n.Receivers = append(n.Receivers, network.AddNode(netem.PC3000))
	}
	return network, n, sh
}

// scaleScenario is the role-heavy script used by the group-size tests:
// every role constructor, crash/restart, and a three-step loss ramp.
var scaleScenario = Scenario{
	Name: "scale-roles",
	Events: []Event{
		{At: 10 * time.Millisecond, Kind: KindLoss, Target: AllReceivers(), Pct: 5},
		{At: 20 * time.Millisecond, Kind: KindPartition, Target: EvenReceivers()},
		{At: 30 * time.Millisecond, Kind: KindCrash, Target: Receiver(123)},
		{At: 35 * time.Millisecond, Kind: KindCrash, Target: Receiver(7)},
		{At: 40 * time.Millisecond, Kind: KindLoss, Target: AllReceivers(), Pct: 15},
		{At: 45 * time.Millisecond, Kind: KindCPUScale, Target: Sender(), Scale: 2},
		{At: 50 * time.Millisecond, Kind: KindRestart, Target: Receiver(7)},
		{At: 60 * time.Millisecond, Kind: KindHeal, Target: EvenReceivers()},
		{At: 70 * time.Millisecond, Kind: KindLoss, Target: AllReceivers(), Pct: 30},
		{At: 80 * time.Millisecond, Kind: KindBurst, Target: Receiver(200), PGB: 0.1, PBG: 0.5, DropBad: 0.4},
	},
}

// TestChaosRoleResolutionAtScale pins the satellite requirement: at group
// size >= 500, role-based targets (partition halves, crashes, loss ramps)
// must resolve to the same node sets under sharded and serial execution.
// The serial run uses Schedule on the shared env; the sharded run uses
// ScheduleNodes across 4 workers. End-of-script knob state must match
// node for node, crash hooks must fire for the same indices, and both must
// agree with the static EndState replay.
func TestChaosRoleResolutionAtScale(t *testing.T) {
	const group = 500

	var classicCrashes []int
	cNet, cNodes, cDrv := buildWorld(t, true, 0, group, 77)
	if _, err := Schedule(cNet.Env(), cNodes, scaleScenario, Hooks{
		OnCrash: func(idx int) { classicCrashes = append(classicCrashes, idx) },
	}); err != nil {
		t.Fatal(err)
	}
	if err := cDrv.RunFor(scaleScenario.Horizon() + time.Millisecond); err != nil {
		t.Fatal(err)
	}

	var shardCrashes []int
	// Hooks run on the target node's lane; crashes of distinct nodes can
	// fire on distinct workers, so the recorder takes a lock and the sets
	// are compared order-insensitively.
	var mu chanLock
	sNet, sNodes, sDrv := buildWorld(t, false, 4, group, 77)
	if _, err := ScheduleNodes(sNodes, scaleScenario, Hooks{
		OnCrash: func(idx int) {
			mu.Lock()
			shardCrashes = append(shardCrashes, idx)
			mu.Unlock()
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := sDrv.RunFor(scaleScenario.Horizon() + time.Millisecond); err != nil {
		t.Fatal(err)
	}

	sort.Ints(classicCrashes)
	sort.Ints(shardCrashes)
	if !reflect.DeepEqual(classicCrashes, shardCrashes) {
		t.Fatalf("crash sets diverge: serial %v, sharded %v", classicCrashes, shardCrashes)
	}
	if want := []int{7, 123}; !reflect.DeepEqual(classicCrashes, want) {
		t.Fatalf("crash set = %v, want %v", classicCrashes, want)
	}

	cKnobs, sKnobs := snapshotKnobs(cNet), snapshotKnobs(sNet)
	for i := range cKnobs {
		if cKnobs[i] != sKnobs[i] {
			t.Fatalf("node %d knob state diverges: serial %+v, sharded %+v", i, cKnobs[i], sKnobs[i])
		}
	}

	// Both must agree with the static replay about who ends the run down.
	sender, recv := scaleScenario.EndState(group)
	if sender.Down() != cKnobs[0].Partitioned {
		t.Fatalf("sender end state: static %v, simulated %v", sender.Down(), cKnobs[0].Partitioned)
	}
	for i, ne := range recv {
		if ne.Down() != cKnobs[1+i].Partitioned {
			t.Fatalf("receiver %d end state: static %v, simulated %v", i, ne.Down(), cKnobs[1+i].Partitioned)
		}
	}
}

// chanLock is a tiny mutex built on a buffered channel, avoiding a sync
// import for one test recorder.
type chanLock struct{ ch chan struct{} }

func (l *chanLock) Lock() {
	if l.ch == nil {
		l.ch = make(chan struct{}, 1)
	}
	l.ch <- struct{}{}
}
func (l *chanLock) Unlock() { <-l.ch }

// FuzzShardedKernel is the engine-level differential fuzzer demanded by
// the sharding work: a randomized topology plus a randomized chaos script
// runs once on the classic single-kernel network and once on the sharded
// network at a fuzzed worker count, under packet traffic with loss and
// reply unicasts. Per-node delivery streams (source, sequence, arrival
// time) and traffic counters must be identical — any divergence means the
// conservative window barrier reordered something observable.
func FuzzShardedKernel(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(2), []byte{})
	f.Add(int64(7), uint8(6), uint8(3), []byte{0, 100, 1, 2, 0, 50, 10, 10})
	f.Add(int64(42), uint8(9), uint8(8), []byte{
		0, 50, 6, 2, 0, 0, 0, 0,
		0, 99, 7, 2, 0, 0, 0, 0,
		1, 0, 6, 1, 0, 0, 0, 0,
	})
	f.Add(int64(-3), uint8(3), uint8(5), []byte{
		0, 10, 3, 3, 0, 255, 0, 0,
		2, 0, 3, 3, 0, 0, 0, 0,
		3, 0, 4, 4, 0, 9, 200, 7,
		0, 1, 8, 2, 1, 255, 0, 0,
	})
	f.Fuzz(func(t *testing.T, seed int64, nodesRaw, workersRaw uint8, script []byte) {
		receivers := 2 + int(nodesRaw%8)
		workers := 1 + int(workersRaw%8)
		sc := Scenario{Name: "fuzz", Events: eventsFromBytes(script)}

		type obs struct {
			deliveries [][]uint64 // per node: (src<<32|seq, arrival) pairs flattened
			stats      []netem.Stats
		}
		run := func(classic bool) (obs, error) {
			network, n, drv := buildWorld(t, classic, workers, receivers, seed)
			var o obs
			o.deliveries = make([][]uint64, receivers+1)
			for i, nd := range append([]*netem.Node{n.Sender}, n.Receivers...) {
				i, nd := i, nd
				if i > 0 {
					nd.SetLoss(7)
				}
				nd.SetHandler(func(src wire.NodeID, pkt *wire.Packet) {
					o.deliveries[i] = append(o.deliveries[i],
						uint64(src)<<32|pkt.Seq&0xffffffff,
						uint64(nd.Env().Now().UnixNano()))
					if i > 0 && len(o.deliveries[i])%8 == 0 {
						_ = nd.Unicast(src, &wire.Packet{
							Type: wire.TypeAck, Src: nd.Local(), Stream: 2, Seq: pkt.Seq,
						})
					}
				})
			}
			var err error
			if classic {
				_, err = Schedule(network.Env(), n, sc, Hooks{})
			} else {
				_, err = ScheduleNodes(n, sc, Hooks{})
			}
			if err != nil {
				return o, err
			}
			pkt := &wire.Packet{Type: wire.TypeData, Src: 0, Stream: 1, Payload: make([]byte, 32)}
			var seq uint64
			var pump func()
			pump = func() {
				seq++
				pkt.Seq = seq
				if err := n.Sender.Multicast(pkt); err != nil {
					panic(err)
				}
				if seq < 40 {
					n.Sender.Env().Schedule(700*time.Microsecond, pump)
				}
			}
			n.Sender.Env().Schedule(0, pump)
			if err := drv.RunFor(20 * time.Millisecond); err != nil {
				t.Fatal(err)
			}
			if err := drv.Run(); err != nil {
				t.Fatal(err)
			}
			for _, nd := range network.Nodes() {
				o.stats = append(o.stats, nd.Stats())
			}
			return o, nil
		}

		ref, refErr := run(true)
		got, gotErr := run(false)
		if (refErr == nil) != (gotErr == nil) {
			t.Fatalf("validation diverges: serial err=%v, sharded err=%v", refErr, gotErr)
		}
		if refErr != nil {
			return // invalid scripts rejected identically by both paths
		}
		if !reflect.DeepEqual(ref.stats, got.stats) {
			t.Fatalf("stats diverge between serial and sharded runs\nserial:  %+v\nsharded: %+v", ref.stats, got.stats)
		}
		if !reflect.DeepEqual(ref.deliveries, got.deliveries) {
			t.Fatal("delivery streams diverge between serial and sharded runs")
		}
	})
}
