package chaos

import (
	"encoding/binary"
	"testing"
	"time"

	"adamant/internal/env"
	"adamant/internal/netem"
	"adamant/internal/sim"
	"adamant/internal/transport"
	"adamant/internal/transport/nakcast"
)

// eventsFromBytes decodes a fuzz input into a fault script. Each event
// consumes 8 bytes; times land in [0, 2s] and numeric knobs in their valid
// ranges, but kinds and roles deliberately range one past the valid enums
// so the fuzzer also exercises Schedule's rejection path.
func eventsFromBytes(data []byte) []Event {
	var evs []Event
	for len(data) >= 8 && len(evs) < 64 {
		at := time.Duration(binary.BigEndian.Uint16(data[:2])) * 2 * time.Second / (1 << 16)
		evs = append(evs, Event{
			At:      at,
			Kind:    Kind(data[2] % (uint8(maxKind) + 2)),
			Target:  Target{Role: Role(data[3] % (uint8(maxRole) + 2)), Index: int(data[4])},
			Pct:     float64(data[5]) * 100 / 255,
			Scale:   0.25 + float64(data[5])/16,
			PGB:     float64(data[6]) / 255,
			PBG:     float64(data[7]) / 255,
			DropBad: float64(data[6]) / 255,
		})
		data = data[8:]
	}
	return evs
}

// FuzzSchedule throws arbitrary fault scripts at a small reliable-transport
// world: whatever the ordering and timing of partitions, crashes, restarts,
// loss and CPU squeezes, the simulation must never panic and must always
// quiesce within the event budget once the publisher closes. An event-limit
// error here means a fault sequence drove a protocol or the engine into a
// livelock — exactly the class of bug the crucible exists to catch.
func FuzzSchedule(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 100, 1, 2, 0, 50, 10, 10}) // one partition
	f.Add([]byte{
		0, 50, 6, 2, 0, 0, 0, 0, // crash receiver 0
		0, 99, 7, 2, 0, 0, 0, 0, // restart it
		1, 0, 6, 1, 0, 0, 0, 0, // crash the sender
	})
	f.Add([]byte{
		0, 10, 3, 3, 0, 255, 0, 0, // 100% loss everywhere
		2, 0, 3, 3, 0, 0, 0, 0, // back to zero
		3, 0, 4, 4, 0, 9, 200, 7, // burst on the even half
		0, 1, 8, 2, 1, 255, 0, 0, // CPU squeeze
	})
	f.Fuzz(func(t *testing.T, data []byte) {
		sc := Scenario{Name: "fuzz", Events: eventsFromBytes(data)}
		kernel := sim.New(11)
		kernel.SetEventLimit(3_000_000)
		e := env.NewSim(kernel)
		network, err := netem.New(e, netem.Config{})
		if err != nil {
			t.Fatal(err)
		}
		n := Nodes{Sender: network.AddNode(netem.PC3000)}
		for i := 0; i < 2; i++ {
			n.Receivers = append(n.Receivers, network.AddNode(netem.PC3000))
		}
		if _, err := Schedule(e, n, sc, Hooks{}); err != nil {
			return // invalid scripts are rejected up front, never armed
		}

		// A reliable transport on top: fault sequences must not wedge its
		// retry machinery either.
		opts := nakcast.Options{Timeout: 5 * time.Millisecond}
		for _, node := range n.Receivers {
			if _, err := nakcast.NewReceiver(transport.Config{
				Env: e, Endpoint: node, Stream: 1, SenderID: n.Sender.Local(),
				Deliver: func(transport.Delivery) {},
			}, opts); err != nil {
				t.Fatal(err)
			}
		}
		sender, err := nakcast.NewSender(transport.Config{
			Env: e, Endpoint: n.Sender, Stream: 1,
		}, opts)
		if err != nil {
			t.Fatal(err)
		}
		const samples = 50
		published := 0
		var tick func()
		tick = func() {
			if published >= samples {
				if err := sender.Close(); err != nil {
					t.Error(err)
				}
				return
			}
			published++
			if err := sender.Publish([]byte{byte(published)}); err != nil {
				t.Error(err)
				return
			}
			e.After(5*time.Millisecond, tick)
		}
		e.Post(tick)

		if err := kernel.Run(); err != nil {
			t.Fatalf("simulation did not quiesce: %v", err)
		}
		if pending := kernel.Pending(); pending != 0 {
			t.Fatalf("%d events still pending after Run", pending)
		}
	})
}
