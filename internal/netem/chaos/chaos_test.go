package chaos

import (
	"testing"
	"time"

	"adamant/internal/env"
	"adamant/internal/netem"
	"adamant/internal/sim"
)

// TestLibraryWellFormed pins the canonical library: unique names, valid
// scripts, horizons inside the standard 4-second publish window, and —
// except for cascade's deliberate permanent crashes — every fault healed
// by scenario end.
func TestLibraryWellFormed(t *testing.T) {
	lib := Library()
	if len(lib) != 8 {
		t.Fatalf("library has %d scenarios, want 8", len(lib))
	}
	names := make(map[string]bool)
	for _, sc := range lib {
		if err := sc.Validate(); err != nil {
			t.Errorf("%s: %v", sc.Name, err)
		}
		if names[sc.Name] {
			t.Errorf("duplicate scenario name %q", sc.Name)
		}
		names[sc.Name] = true
		if h := sc.Horizon(); h > 3500*time.Millisecond {
			t.Errorf("%s: horizon %v exceeds the publish window", sc.Name, h)
		}
		sender, recv := sc.EndState(4)
		if sender.Down() || sender.Dirty {
			t.Errorf("%s: sender ends down/dirty", sc.Name)
		}
		for i, ne := range recv {
			if sc.Name == "cascade" {
				wantCrashed := i <= 2
				if ne.Crashed != wantCrashed {
					t.Errorf("cascade receiver %d: crashed=%v, want %v", i, ne.Crashed, wantCrashed)
				}
				continue
			}
			if ne.Down() {
				t.Errorf("%s: receiver %d ends down (unhealed fault)", sc.Name, i)
			}
			if ne.Dirty {
				t.Errorf("%s: receiver %d ends dirty (unreverted knob)", sc.Name, i)
			}
		}
	}
	if _, ok := ByName("split-brain"); !ok {
		t.Error("ByName failed to find split-brain")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName found a scenario that does not exist")
	}
}

func TestTargetResolve(t *testing.T) {
	if got := Sender().resolve(3); len(got) != 1 || got[0] != -1 {
		t.Errorf("sender resolved to %v", got)
	}
	if got := Receiver(5).resolve(3); len(got) != 1 || got[0] != 2 {
		t.Errorf("receiver 5 mod 3 resolved to %v, want [2]", got)
	}
	if got := AllReceivers().resolve(3); len(got) != 3 {
		t.Errorf("all receivers resolved to %v", got)
	}
	if got := EvenReceivers().resolve(5); len(got) != 3 || got[0] != 0 || got[1] != 2 || got[2] != 4 {
		t.Errorf("even receivers of 5 resolved to %v, want [0 2 4]", got)
	}
	if got := Receiver(1).resolve(0); got != nil {
		t.Errorf("receiver target with no receivers resolved to %v", got)
	}
}

func TestEventValidate(t *testing.T) {
	bad := []Event{
		{At: -time.Second, Kind: KindHeal, Target: Sender()},
		{Kind: Kind(99), Target: Sender()},
		{Kind: KindHeal, Target: Target{Role: Role(77)}},
		{Kind: KindHeal, Target: Target{Role: RoleReceiver, Index: -1}},
		{Kind: KindLoss, Target: Sender(), Pct: 101},
		{Kind: KindBurst, Target: Sender(), PGB: 1.5},
		{Kind: KindCPUScale, Target: Sender(), Scale: 0},
	}
	for i, ev := range bad {
		if err := ev.Validate(); err == nil {
			t.Errorf("event %d (%+v) validated", i, ev)
		}
	}
	good := Event{At: time.Second, Kind: KindLoss, Target: AllReceivers(), Pct: 30}
	if err := good.Validate(); err != nil {
		t.Errorf("good event rejected: %v", err)
	}
}

// TestScheduleSameInstantOrder pins that events scheduled for the same
// virtual instant apply in slice order: a partition immediately followed by
// a heal at the same time must leave the node connected, and the reverse
// must leave it partitioned.
func TestScheduleSameInstantOrder(t *testing.T) {
	run := func(events []Event) []Kind {
		kernel := sim.New(7)
		e := env.NewSim(kernel)
		network, err := netem.New(e, netem.Config{})
		if err != nil {
			t.Fatal(err)
		}
		n := Nodes{Sender: network.AddNode(netem.PC3000),
			Receivers: []*netem.Node{network.AddNode(netem.PC3000)}}
		var applied []Kind
		_, err = Schedule(e, n, Scenario{Name: "order", Events: events},
			Hooks{OnEvent: func(ev Event) { applied = append(applied, ev.Kind) }})
		if err != nil {
			t.Fatal(err)
		}
		if err := kernel.Run(); err != nil {
			t.Fatal(err)
		}
		return applied
	}
	at := 10 * time.Millisecond
	got := run([]Event{
		{At: at, Kind: KindHeal, Target: Receiver(0)},
		{At: at, Kind: KindPartition, Target: Receiver(0)},
		{At: at / 2, Kind: KindPartition, Target: Receiver(0)},
	})
	want := []Kind{KindPartition, KindHeal, KindPartition}
	if len(got) != len(want) {
		t.Fatalf("applied %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("applied %v, want %v (stable time sort violated)", got, want)
		}
	}
}

// TestScheduleHooks pins the crash/restart hook index convention.
func TestScheduleHooks(t *testing.T) {
	kernel := sim.New(9)
	e := env.NewSim(kernel)
	network, err := netem.New(e, netem.Config{})
	if err != nil {
		t.Fatal(err)
	}
	n := Nodes{Sender: network.AddNode(netem.PC3000),
		Receivers: []*netem.Node{network.AddNode(netem.PC3000), network.AddNode(netem.PC3000)}}
	var crashes, restarts []int
	sc := Scenario{Name: "hooks", Events: []Event{
		{At: time.Millisecond, Kind: KindCrash, Target: Receiver(1)},
		{At: 2 * time.Millisecond, Kind: KindCrash, Target: Sender()},
		{At: 3 * time.Millisecond, Kind: KindRestart, Target: Receiver(1)},
	}}
	_, err = Schedule(e, n, sc, Hooks{
		OnCrash:   func(idx int) { crashes = append(crashes, idx) },
		OnRestart: func(idx int) { restarts = append(restarts, idx) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := kernel.Run(); err != nil {
		t.Fatal(err)
	}
	if len(crashes) != 2 || crashes[0] != 1 || crashes[1] != -1 {
		t.Errorf("crash hooks fired for %v, want [1 -1]", crashes)
	}
	if len(restarts) != 1 || restarts[0] != 1 {
		t.Errorf("restart hooks fired for %v, want [1]", restarts)
	}
}

func TestScheduleRejects(t *testing.T) {
	kernel := sim.New(1)
	e := env.NewSim(kernel)
	network, err := netem.New(e, netem.Config{})
	if err != nil {
		t.Fatal(err)
	}
	node := network.AddNode(netem.PC3000)
	ok := Scenario{Name: "ok"}
	if _, err := Schedule(nil, Nodes{Sender: node}, ok, Hooks{}); err == nil {
		t.Error("nil env accepted")
	}
	if _, err := Schedule(e, Nodes{}, ok, Hooks{}); err == nil {
		t.Error("nil sender accepted")
	}
	if _, err := Schedule(e, Nodes{Sender: node}, Scenario{}, Hooks{}); err == nil {
		t.Error("unnamed scenario accepted")
	}
	bad := Scenario{Name: "bad", Events: []Event{{Kind: Kind(0), Target: Sender()}}}
	if _, err := Schedule(e, Nodes{Sender: node}, bad, Hooks{}); err == nil {
		t.Error("invalid event accepted")
	}
}

// TestEndStateRestartClears pins that a restart clears both the partition
// and the crash flag, and that residual knobs mark a node dirty.
func TestEndStateRestartClears(t *testing.T) {
	sc := Scenario{Name: "restart", Events: []Event{
		{At: 1 * time.Millisecond, Kind: KindCrash, Target: Receiver(0)},
		{At: 2 * time.Millisecond, Kind: KindRestart, Target: Receiver(0)},
		{At: 3 * time.Millisecond, Kind: KindLoss, Target: Receiver(1), Pct: 10},
	}}
	_, recv := sc.EndState(2)
	if recv[0].Down() || recv[0].Crashed {
		t.Errorf("restarted receiver still down: %+v", recv[0])
	}
	if !recv[1].Dirty {
		t.Errorf("receiver with residual loss not dirty: %+v", recv[1])
	}
}
