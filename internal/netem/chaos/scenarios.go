package chaos

import "time"

// Library returns the canonical scenario set, in fixed order. Every
// scenario's faults fit inside a 4-second publishing window and — except
// for cascade's permanent crashes — heal by 3.3s, leaving the tail of the
// run for recovery protocols to converge.
//
// The scripts are receiver-count generic: single-receiver targets are
// taken modulo the group size and EvenReceivers adapts to any group.
func Library() []Scenario {
	return []Scenario{
		CalmControl(),
		FlakyReceiver(),
		SplitBrain(),
		LossyRamp(),
		SlowNode(),
		Cascade(),
		SenderBlip(),
		Churn(),
	}
}

// ByName returns the library scenario with the given name, or false.
func ByName(name string) (Scenario, bool) {
	for _, sc := range Library() {
		if sc.Name == name {
			return sc, true
		}
	}
	return Scenario{}, false
}

// CalmControl is the empty script: no faults at all. Every invariant must
// hold trivially and every protocol must deliver 100%; it catches harness
// and checker regressions.
func CalmControl() Scenario {
	return Scenario{
		Name: "calm-control",
		Info: "no faults; every protocol must be perfect",
	}
}

// FlakyReceiver flaps receiver 0's link four times (200 ms outages), then
// subjects it to a Gilbert-Elliott burst-loss window. It exercises
// repeated short partitions and bursty loss on a single group member.
func FlakyReceiver() Scenario {
	ms := time.Millisecond
	ev := []Event{}
	for _, start := range []time.Duration{400 * ms, 900 * ms, 1400 * ms, 1900 * ms} {
		ev = append(ev,
			Event{At: start, Kind: KindPartition, Target: Receiver(0)},
			Event{At: start + 200*ms, Kind: KindHeal, Target: Receiver(0)},
		)
	}
	ev = append(ev,
		Event{At: 2400 * ms, Kind: KindBurst, Target: Receiver(0), PGB: 0.02, PBG: 0.25, DropBad: 1.0},
		Event{At: 3200 * ms, Kind: KindBurstOff, Target: Receiver(0)},
	)
	return Scenario{
		Name:   "flaky-receiver",
		Info:   "receiver 0 link flaps 4x200ms then a burst-loss window",
		Events: ev,
	}
}

// SplitBrain partitions half the receivers (the even-indexed ones) for
// 1.1 seconds. Reliable protocols must backfill everything the partitioned
// half missed after the heal.
func SplitBrain() Scenario {
	ms := time.Millisecond
	return Scenario{
		Name: "split-brain",
		Info: "even receivers partitioned 0.5s-1.6s, then healed",
		Events: []Event{
			{At: 500 * ms, Kind: KindPartition, Target: EvenReceivers()},
			{At: 1600 * ms, Kind: KindHeal, Target: EvenReceivers()},
		},
	}
}

// LossyRamp ramps uniform end-host loss on every receiver up to 30% and
// back down to zero — the paper's loss axis swept within one run.
func LossyRamp() Scenario {
	ms := time.Millisecond
	steps := []struct {
		at  time.Duration
		pct float64
	}{
		{300 * ms, 5}, {800 * ms, 12}, {1300 * ms, 20}, {1800 * ms, 30},
		{2300 * ms, 20}, {2700 * ms, 10}, {3100 * ms, 0},
	}
	ev := make([]Event, len(steps))
	for i, s := range steps {
		ev[i] = Event{At: s.at, Kind: KindLoss, Target: AllReceivers(), Pct: s.pct}
	}
	return Scenario{
		Name:   "lossy-ramp",
		Info:   "uniform loss ramps 0->30%->0 on all receivers",
		Events: ev,
	}
}

// SlowNode squeezes receiver 0's CPU by 8x for two seconds, modeling a
// noisy-neighbor or thermally throttled cloud node.
func SlowNode() Scenario {
	ms := time.Millisecond
	return Scenario{
		Name: "slow-node",
		Info: "receiver 0 CPU 8x slower 0.4s-2.4s",
		Events: []Event{
			{At: 400 * ms, Kind: KindCPUScale, Target: Receiver(0), Scale: 8},
			{At: 2400 * ms, Kind: KindCPUScale, Target: Receiver(0), Scale: 1},
		},
	}
}

// Cascade crashes receivers 0, 1 and 2 in sequence, permanently. Survivors
// must keep all their guarantees and membership must evict the dead.
func Cascade() Scenario {
	ms := time.Millisecond
	return Scenario{
		Name: "cascade",
		Info: "receivers 0,1,2 crash at 0.8s/1.2s/1.6s and stay down",
		Events: []Event{
			{At: 800 * ms, Kind: KindCrash, Target: Receiver(0)},
			{At: 1200 * ms, Kind: KindCrash, Target: Receiver(1)},
			{At: 1600 * ms, Kind: KindCrash, Target: Receiver(2)},
		},
	}
}

// SenderBlip partitions the sender twice for 300 ms and 250 ms. Receivers
// see total silence (no data, no heartbeats) and must neither diverge nor
// give up before the sender returns.
func SenderBlip() Scenario {
	ms := time.Millisecond
	return Scenario{
		Name: "sender-blip",
		Info: "sender partitioned 0.9s-1.2s and 2.0s-2.25s",
		Events: []Event{
			{At: 900 * ms, Kind: KindPartition, Target: Sender()},
			{At: 1200 * ms, Kind: KindHeal, Target: Sender()},
			{At: 2000 * ms, Kind: KindPartition, Target: Sender()},
			{At: 2250 * ms, Kind: KindHeal, Target: Sender()},
		},
	}
}

// Churn rotates 200 ms partitions across the receiver set and finishes
// with a group-wide burst-loss window: constant low-grade turbulence with
// no permanent damage.
func Churn() Scenario {
	ms := time.Millisecond
	ev := []Event{}
	flaps := []struct {
		idx   int
		start time.Duration
	}{
		{0, 600 * ms}, {1, 1000 * ms}, {2, 1400 * ms}, {0, 1800 * ms}, {1, 2200 * ms},
	}
	for _, f := range flaps {
		ev = append(ev,
			Event{At: f.start, Kind: KindPartition, Target: Receiver(f.idx)},
			Event{At: f.start + 200*ms, Kind: KindHeal, Target: Receiver(f.idx)},
		)
	}
	ev = append(ev,
		Event{At: 2600 * ms, Kind: KindBurst, Target: AllReceivers(), PGB: 0.01, PBG: 0.3, DropBad: 0.9},
		Event{At: 3000 * ms, Kind: KindBurstOff, Target: AllReceivers()},
	)
	return Scenario{
		Name:   "churn",
		Info:   "rotating 200ms receiver partitions plus a burst window",
		Events: ev,
	}
}
