package netem

import (
	"strings"
	"testing"
	"time"

	"adamant/internal/env"
	"adamant/internal/sim"
	"adamant/internal/wire"
)

func newTestNet(t *testing.T, cfg Config, seed int64) (*Network, *sim.Kernel) {
	t.Helper()
	k := sim.New(seed)
	n, err := New(env.NewSim(k), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n, k
}

func dataPkt(src wire.NodeID, seq uint64, at time.Time, payload string) *wire.Packet {
	return &wire.Packet{Type: wire.TypeData, Src: src, Stream: 1, Seq: seq,
		SentAt: at, Payload: []byte(payload)}
}

func TestUnicastDelivers(t *testing.T) {
	n, k := newTestNet(t, Config{}, 1)
	a := n.AddNode(PC3000)
	b := n.AddNode(PC3000)
	var got *wire.Packet
	var gotSrc wire.NodeID
	b.SetHandler(func(src wire.NodeID, pkt *wire.Packet) { gotSrc, got = src, pkt })
	if err := a.Unicast(b.Local(), dataPkt(a.Local(), 7, k.Now(), "payload")); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("packet not delivered")
	}
	if gotSrc != a.Local() || got.Seq != 7 || string(got.Payload) != "payload" {
		t.Errorf("got src=%d pkt=%+v", gotSrc, got)
	}
}

func TestUnicastErrors(t *testing.T) {
	n, k := newTestNet(t, Config{}, 1)
	a := n.AddNode(PC3000)
	if err := a.Unicast(99, dataPkt(0, 1, k.Now(), "x")); err == nil {
		t.Error("unicast to unknown node should error")
	}
	if err := a.Unicast(a.Local(), dataPkt(0, 1, k.Now(), "x")); err == nil {
		t.Error("unicast to self should error")
	}
	big := dataPkt(0, 1, k.Now(), strings.Repeat("x", 10000))
	n.AddNode(PC3000)
	if err := a.Unicast(1, big); err == nil {
		t.Error("oversize payload should error")
	}
}

func TestMulticastReachesAllOthers(t *testing.T) {
	n, k := newTestNet(t, Config{}, 1)
	sender := n.AddNode(PC3000)
	const receivers = 5
	got := make([]int, receivers)
	for i := 0; i < receivers; i++ {
		i := i
		r := n.AddNode(PC3000)
		r.SetHandler(func(src wire.NodeID, pkt *wire.Packet) { got[i]++ })
	}
	senderGot := 0
	sender.SetHandler(func(wire.NodeID, *wire.Packet) { senderGot++ })
	if err := sender.Multicast(dataPkt(sender.Local(), 1, k.Now(), "m")); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, g := range got {
		if g != 1 {
			t.Errorf("receiver %d got %d packets, want 1", i, g)
		}
	}
	if senderGot != 0 {
		t.Error("sender received its own multicast")
	}
}

func TestLatencyComponents(t *testing.T) {
	// With known costs the end-to-end latency is deterministic:
	// send CPU + 2x serialization + prop + recv CPU.
	cfg := Config{
		Bandwidth: Mbps100,
		PropDelay: 30 * time.Microsecond,
		Cost: CostModel{SendBase: 10 * time.Microsecond,
			RecvBase: 20 * time.Microsecond},
	}
	n, k := newTestNet(t, cfg, 1)
	a := n.AddNode(PC3000)
	b := n.AddNode(PC3000)
	var deliveredAt time.Time
	b.SetHandler(func(wire.NodeID, *wire.Packet) { deliveredAt = k.Now() })
	pkt := dataPkt(a.Local(), 1, k.Now(), "123456789012") // 12-byte payload
	frame := pkt.EncodedSize() + FrameOverhead
	ser := time.Duration(float64(frame*8) / float64(Mbps100) * float64(time.Second))
	want := k.Now().Add(10*time.Microsecond + 2*ser + 30*time.Microsecond + 20*time.Microsecond)
	if err := a.Unicast(b.Local(), pkt); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if d := deliveredAt.Sub(want); d < -time.Microsecond || d > time.Microsecond {
		t.Errorf("delivered at %v, want %v (delta %v)", deliveredAt, want, d)
	}
}

func TestSlowMachineHasHigherLatency(t *testing.T) {
	measure := func(m Machine) time.Duration {
		k := sim.New(1)
		n, err := New(env.NewSim(k), Config{})
		if err != nil {
			t.Fatal(err)
		}
		a := n.AddNode(m)
		b := n.AddNode(m)
		var at time.Time
		b.SetHandler(func(wire.NodeID, *wire.Packet) { at = k.Now() })
		start := k.Now()
		if err := a.Unicast(b.Local(), dataPkt(a.Local(), 1, start, "x")); err != nil {
			t.Fatal(err)
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return at.Sub(start)
	}
	fast, slow := measure(PC3000), measure(PC850)
	if slow <= fast {
		t.Errorf("pc850 latency %v should exceed pc3000 latency %v", slow, fast)
	}
	if ratio := float64(slow) / float64(fast); ratio < 2 {
		t.Errorf("pc850/pc3000 latency ratio = %.2f, want >= 2 (CPU-bound path)", ratio)
	}
}

func TestLowerBandwidthHasHigherLatency(t *testing.T) {
	measure := func(bw Bandwidth) time.Duration {
		k := sim.New(1)
		n, err := New(env.NewSim(k), Config{Bandwidth: bw})
		if err != nil {
			t.Fatal(err)
		}
		a := n.AddNode(PC3000)
		b := n.AddNode(PC3000)
		var at time.Time
		b.SetHandler(func(wire.NodeID, *wire.Packet) { at = k.Now() })
		start := k.Now()
		if err := a.Unicast(b.Local(), dataPkt(a.Local(), 1, start, "x")); err != nil {
			t.Fatal(err)
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return at.Sub(start)
	}
	if m10, g1 := measure(Mbps10), measure(Gbps1); m10 <= g1 {
		t.Errorf("10Mb latency %v should exceed 1Gb latency %v", m10, g1)
	}
}

func TestCPUQueueingUnderLoad(t *testing.T) {
	// Back-to-back packets on a slow receiver must queue on its CPU: the
	// k-th delivery is later than k * recvCost after the first.
	n, k := newTestNet(t, Config{}, 1)
	a := n.AddNode(PC3000)
	b := n.AddNode(PC850)
	var times []time.Time
	b.SetHandler(func(wire.NodeID, *wire.Packet) { times = append(times, k.Now()) })
	for i := 0; i < 10; i++ {
		if err := a.Unicast(b.Local(), dataPkt(a.Local(), uint64(i), k.Now(), "x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(times) != 10 {
		t.Fatalf("delivered %d, want 10", len(times))
	}
	recvCost := time.Duration(float64(DefaultCostModel.RecvBase) * PC850.CPUFactor)
	minSpread := time.Duration(9) * recvCost
	if spread := times[9].Sub(times[0]); spread < minSpread {
		t.Errorf("delivery spread %v, want >= %v (CPU serialization)", spread, minSpread)
	}
}

func TestEndHostLossRate(t *testing.T) {
	n, k := newTestNet(t, Config{}, 42)
	a := n.AddNode(PC3000)
	b := n.AddNode(PC3000)
	b.SetLoss(5)
	got := 0
	b.SetHandler(func(wire.NodeID, *wire.Packet) { got++ })
	const sent = 20000
	for i := 0; i < sent; i++ {
		if err := a.Unicast(b.Local(), dataPkt(a.Local(), uint64(i), k.Now(), "x")); err != nil {
			t.Fatal(err)
		}
		// Space sends out to avoid egress queue drops.
		if err := k.RunFor(time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	lossPct := 100 * float64(sent-got) / float64(sent)
	if lossPct < 4.0 || lossPct > 6.0 {
		t.Errorf("observed loss %.2f%%, want ~5%%", lossPct)
	}
	if drops := b.Stats().DroppedLoss; drops != uint64(sent-got) {
		t.Errorf("DroppedLoss = %d, want %d", drops, sent-got)
	}
}

func TestLossSparesControlPackets(t *testing.T) {
	n, k := newTestNet(t, Config{}, 7)
	a := n.AddNode(PC3000)
	b := n.AddNode(PC3000)
	b.SetLoss(100) // drop all data-bearing packets
	gotData, gotNak := 0, 0
	b.SetHandler(func(_ wire.NodeID, pkt *wire.Packet) {
		switch pkt.Type {
		case wire.TypeData:
			gotData++
		case wire.TypeNak:
			gotNak++
		}
	})
	for i := 0; i < 50; i++ {
		if err := a.Unicast(b.Local(), dataPkt(a.Local(), uint64(i), k.Now(), "x")); err != nil {
			t.Fatal(err)
		}
		nak := &wire.Packet{Type: wire.TypeNak, Src: a.Local(), Stream: 1, SentAt: k.Now()}
		if err := a.Unicast(b.Local(), nak); err != nil {
			t.Fatal(err)
		}
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if gotData != 0 {
		t.Errorf("got %d data packets through 100%% loss", gotData)
	}
	if gotNak != 50 {
		t.Errorf("got %d NAKs, want 50 (control traffic must bypass end-host loss)", gotNak)
	}
}

func TestSetLossClamps(t *testing.T) {
	n, _ := newTestNet(t, Config{}, 1)
	a := n.AddNode(PC3000)
	a.SetLoss(-5)
	if a.lossPct != 0 {
		t.Errorf("negative loss not clamped: %v", a.lossPct)
	}
	a.SetLoss(150)
	if a.lossPct != 100 {
		t.Errorf("loss > 100 not clamped: %v", a.lossPct)
	}
}

func TestPartitionDropsEverything(t *testing.T) {
	n, k := newTestNet(t, Config{}, 1)
	a := n.AddNode(PC3000)
	b := n.AddNode(PC3000)
	got := 0
	b.SetHandler(func(wire.NodeID, *wire.Packet) { got++ })
	b.SetPartitioned(true)
	if err := a.Unicast(b.Local(), dataPkt(a.Local(), 1, k.Now(), "x")); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Error("partitioned node received a packet")
	}
	b.SetPartitioned(false)
	if err := a.Unicast(b.Local(), dataPkt(a.Local(), 2, k.Now(), "x")); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Error("healed node did not receive")
	}
}

func TestBurstLossDropsInBursts(t *testing.T) {
	n, k := newTestNet(t, Config{}, 9)
	a := n.AddNode(PC3000)
	b := n.AddNode(PC3000)
	b.SetBurstLoss(0.02, 0.3, 1.0)
	var outcomes []bool // true = delivered
	received := map[uint64]bool{}
	b.SetHandler(func(_ wire.NodeID, pkt *wire.Packet) { received[pkt.Seq] = true })
	const sent = 5000
	for i := 0; i < sent; i++ {
		if err := a.Unicast(b.Local(), dataPkt(a.Local(), uint64(i), k.Now(), "x")); err != nil {
			t.Fatal(err)
		}
		if err := k.RunFor(time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < sent; i++ {
		outcomes = append(outcomes, received[i])
	}
	losses, runs := 0, 0
	for i := 0; i < len(outcomes); i++ {
		if !outcomes[i] {
			losses++
			if i == 0 || outcomes[i-1] {
				runs++
			}
		}
	}
	if losses == 0 {
		t.Fatal("burst loss model dropped nothing")
	}
	if avgRun := float64(losses) / float64(runs); avgRun < 1.5 {
		t.Errorf("average loss-run length %.2f, want bursty (>= 1.5)", avgRun)
	}
	b.SetBurstLoss(0, 0, 0) // disable must not panic
}

func TestEgressQueueDrop(t *testing.T) {
	// Flood a 10Mb link with big frames and a tiny queue bound: some sends
	// must be dropped at the egress queue.
	cfg := Config{Bandwidth: Mbps10, MaxQueueDelay: time.Millisecond}
	n, k := newTestNet(t, cfg, 1)
	a := n.AddNode(PC3000)
	b := n.AddNode(PC3000)
	got := 0
	b.SetHandler(func(wire.NodeID, *wire.Packet) { got++ })
	payload := strings.Repeat("x", 1200)
	for i := 0; i < 100; i++ {
		if err := a.Unicast(b.Local(), dataPkt(a.Local(), uint64(i), k.Now(), payload)); err != nil {
			t.Fatal(err)
		}
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if a.Stats().DroppedQueue == 0 {
		t.Error("expected egress queue drops under flood")
	}
	if got == 0 {
		t.Error("everything was dropped; queue bound too aggressive")
	}
	if got+int(a.Stats().DroppedQueue) != 100 {
		t.Errorf("delivered %d + dropped %d != 100", got, a.Stats().DroppedQueue)
	}
}

func TestStatsAndBandwidthCounters(t *testing.T) {
	n, k := newTestNet(t, Config{}, 1)
	a := n.AddNode(PC3000)
	b := n.AddNode(PC3000)
	b.SetHandler(func(wire.NodeID, *wire.Packet) {})
	pkt := dataPkt(a.Local(), 1, k.Now(), "hello")
	frame := uint64(pkt.EncodedSize() + FrameOverhead)
	if err := a.Unicast(b.Local(), pkt); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if s := a.Stats(); s.TxPackets != 1 || s.TxBytes != frame {
		t.Errorf("sender stats = %+v", s)
	}
	if s := b.Stats(); s.RxPackets != 1 || s.RxBytes != frame {
		t.Errorf("receiver stats = %+v", s)
	}
	if b.RxBandwidth().Total() != frame {
		t.Errorf("rx bandwidth total = %d, want %d", b.RxBandwidth().Total(), frame)
	}
	if a.TxBandwidth().Total() != frame {
		t.Errorf("tx bandwidth total = %d, want %d", a.TxBandwidth().Total(), frame)
	}
}

func TestWorkConsumesCPU(t *testing.T) {
	n, k := newTestNet(t, Config{}, 1)
	a := n.AddNode(PC3000)
	b := n.AddNode(PC850)
	var first time.Time
	b.SetHandler(func(wire.NodeID, *wire.Packet) {
		if first.IsZero() {
			first = k.Now()
		}
	})
	// Baseline delivery time without Work.
	if err := a.Unicast(b.Local(), dataPkt(a.Local(), 1, k.Now(), "x")); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	baseline := first.Sub(sim.Epoch)

	// Same send with 1ms of reference-cost Work on the receiver first:
	// delivery must shift by >= 4ms (pc850 factor 4).
	k2 := sim.New(1)
	n2, err := New(env.NewSim(k2), Config{})
	if err != nil {
		t.Fatal(err)
	}
	a2 := n2.AddNode(PC3000)
	b2 := n2.AddNode(PC850)
	var first2 time.Time
	b2.SetHandler(func(wire.NodeID, *wire.Packet) {
		if first2.IsZero() {
			first2 = k2.Now()
		}
	})
	b2.Work(time.Millisecond)
	b2.Work(-time.Millisecond) // negative is ignored
	if err := a2.Unicast(b2.Local(), dataPkt(a2.Local(), 1, k2.Now(), "x")); err != nil {
		t.Fatal(err)
	}
	if err := k2.Run(); err != nil {
		t.Fatal(err)
	}
	// The 4ms of scaled Work overlaps the packet's in-flight time, so the
	// shift is 4ms minus the pre-CPU portion of the baseline path.
	shifted := first2.Sub(sim.Epoch)
	if delta := shifted - baseline; delta < 4*time.Millisecond-baseline {
		t.Errorf("Work shifted delivery by %v, want >= %v", delta, 4*time.Millisecond-baseline)
	}
}

func TestProcScale(t *testing.T) {
	n, _ := newTestNet(t, Config{}, 1)
	a := n.AddNode(PC3000)
	a.SetProcScale(2)
	if a.procScale != 2 {
		t.Error("SetProcScale did not stick")
	}
	a.SetProcScale(-1)
	if a.procScale != 1 {
		t.Error("non-positive scale should reset to 1")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() []uint64 {
		k := sim.New(33)
		n, err := New(env.NewSim(k), Config{})
		if err != nil {
			t.Fatal(err)
		}
		a := n.AddNode(PC3000)
		b := n.AddNode(PC3000)
		b.SetLoss(20)
		var seqs []uint64
		b.SetHandler(func(_ wire.NodeID, pkt *wire.Packet) { seqs = append(seqs, pkt.Seq) })
		for i := 0; i < 200; i++ {
			if err := a.Unicast(b.Local(), dataPkt(a.Local(), uint64(i), k.Now(), "x")); err != nil {
				t.Fatal(err)
			}
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return seqs
	}
	x, y := run(), run()
	if len(x) != len(y) {
		t.Fatalf("run lengths differ: %d vs %d", len(x), len(y))
	}
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("runs diverge at %d", i)
		}
	}
}

func TestMachineAndBandwidthLookup(t *testing.T) {
	m, err := MachineByName("pc850")
	if err != nil || m != PC850 {
		t.Errorf("MachineByName(pc850) = %+v, %v", m, err)
	}
	if _, err := MachineByName("pdp11"); err == nil {
		t.Error("unknown machine should error")
	}
	bw, err := BandwidthByName("100Mb")
	if err != nil || bw != Mbps100 {
		t.Errorf("BandwidthByName(100Mb) = %v, %v", bw, err)
	}
	if _, err := BandwidthByName("2Gb"); err == nil {
		t.Error("unknown bandwidth should error")
	}
	if Mbps10.String() != "10Mb" || Gbps1.String() != "1Gb" || Bandwidth(5).String() != "5bps" {
		t.Error("Bandwidth.String labels wrong")
	}
}

func TestConfigValidation(t *testing.T) {
	k := sim.New(1)
	if _, err := New(nil, Config{}); err == nil {
		t.Error("nil env should error")
	}
	if _, err := New(env.NewSim(k), Config{PropDelay: -1}); err == nil {
		t.Error("negative prop delay should error")
	}
	if _, err := New(env.NewSim(k), Config{Bandwidth: -1}); err == nil {
		t.Error("negative bandwidth should error")
	}
	if _, err := New(env.NewSim(k), Config{MaxQueueDelay: -1}); err == nil {
		t.Error("negative queue delay should error")
	}
}

func TestNodeLookup(t *testing.T) {
	n, _ := newTestNet(t, Config{}, 1)
	a := n.AddNode(PC3000)
	if n.Node(a.Local()) != a {
		t.Error("Node lookup failed")
	}
	if n.Node(42) != nil {
		t.Error("unknown node should be nil")
	}
	if len(n.Nodes()) != 1 {
		t.Error("Nodes() wrong length")
	}
}
