package ackcast_test

import (
	"testing"
	"time"

	"adamant/internal/env"
	"adamant/internal/sim"
	"adamant/internal/transport"
	"adamant/internal/transport/ackcast"
	"adamant/internal/transport/transporttest"
	"adamant/internal/wire"
)

type harness struct {
	k        *sim.Kernel
	fab      *transporttest.Fabric
	sender   *ackcast.Sender
	recvs    []*ackcast.Receiver
	delivery [][]transport.Delivery
}

func newHarness(t *testing.T, n int, opts ackcast.Options) *harness {
	t.Helper()
	h := &harness{k: sim.New(1)}
	e := env.NewSim(h.k)
	h.fab = transporttest.New(e, time.Millisecond)
	ids := make([]wire.NodeID, n)
	for i := range ids {
		ids[i] = wire.NodeID(i + 1)
	}
	var err error
	h.sender, err = ackcast.NewSender(transport.Config{
		Env: e, Endpoint: h.fab.Endpoint(0), Stream: 1,
		Receivers: transport.StaticReceivers(ids...),
	}, opts)
	if err != nil {
		t.Fatal(err)
	}
	h.delivery = make([][]transport.Delivery, n)
	for i := 0; i < n; i++ {
		i := i
		r, err := ackcast.NewReceiver(transport.Config{
			Env: e, Endpoint: h.fab.Endpoint(wire.NodeID(i + 1)), Stream: 1, SenderID: 0,
			Deliver: func(d transport.Delivery) { h.delivery[i] = append(h.delivery[i], d) },
		}, opts)
		if err != nil {
			t.Fatal(err)
		}
		h.recvs = append(h.recvs, r)
	}
	return h
}

func TestLosslessOrderedDelivery(t *testing.T) {
	h := newHarness(t, 3, ackcast.Options{})
	for i := 0; i < 50; i++ {
		if err := h.sender.Publish([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.k.RunFor(time.Minute); err != nil {
		t.Fatal(err)
	}
	for i, ds := range h.delivery {
		if len(ds) != 50 {
			t.Fatalf("receiver %d delivered %d, want 50", i, len(ds))
		}
		for j, d := range ds {
			if d.Seq != uint64(j+1) {
				t.Fatalf("receiver %d out of order at %d", i, j)
			}
		}
	}
	if h.sender.InFlight() != 0 {
		t.Errorf("InFlight = %d after full ACK, want 0", h.sender.InFlight())
	}
}

func TestLossRecoveredViaRTO(t *testing.T) {
	h := newHarness(t, 2, ackcast.Options{RTO: 10 * time.Millisecond})
	dropped := false
	h.fab.Drop = func(from, to wire.NodeID, pkt *wire.Packet) bool {
		if pkt.Type == wire.TypeData && pkt.Seq == 2 && to == 1 && !dropped {
			dropped = true
			return true
		}
		return false
	}
	for i := 0; i < 5; i++ {
		if err := h.sender.Publish([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.k.RunFor(time.Minute); err != nil {
		t.Fatal(err)
	}
	ds := h.delivery[0]
	if len(ds) != 5 {
		t.Fatalf("delivered %d, want 5", len(ds))
	}
	if !ds[1].Recovered {
		t.Error("seq 2 should be recovered via retransmission")
	}
	if lat := ds[1].Latency(); lat < 10*time.Millisecond {
		t.Errorf("recovered latency %v, want >= RTO", lat)
	}
}

func TestFlowControlWindow(t *testing.T) {
	h := newHarness(t, 1, ackcast.Options{Window: 4, RTO: 5 * time.Millisecond})
	// Block all ACKs: the sender may send at most Window packets, the rest
	// must queue in the backlog.
	h.fab.Drop = func(from, to wire.NodeID, pkt *wire.Packet) bool {
		return pkt.Type == wire.TypeAck
	}
	for i := 0; i < 10; i++ {
		if err := h.sender.Publish([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.k.RunFor(20 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if got := h.sender.InFlight(); got != 4 {
		t.Errorf("InFlight = %d, want window = 4", got)
	}
	if got := h.sender.Backlog(); got != 6 {
		t.Errorf("Backlog = %d, want 6", got)
	}
	// Unblock ACKs: everything drains.
	h.fab.Drop = nil
	if err := h.k.RunFor(time.Minute); err != nil {
		t.Fatal(err)
	}
	if len(h.delivery[0]) != 10 {
		t.Errorf("delivered %d, want 10 after window opened", len(h.delivery[0]))
	}
	if h.sender.Backlog() != 0 {
		t.Errorf("Backlog = %d after drain", h.sender.Backlog())
	}
}

func TestAckImplosion(t *testing.T) {
	// Every data packet produces one ACK per receiver: with 10 receivers
	// and 20 packets the sender endpoint sees ~200 ACK arrivals. We count
	// ACK traffic via the fabric drop hook (observing, never dropping).
	acks := 0
	h := newHarness(t, 10, ackcast.Options{})
	h.fab.Drop = func(from, to wire.NodeID, pkt *wire.Packet) bool {
		if pkt.Type == wire.TypeAck {
			acks++
		}
		return false
	}
	for i := 0; i < 20; i++ {
		if err := h.sender.Publish(nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.k.RunFor(time.Minute); err != nil {
		t.Fatal(err)
	}
	if acks < 150 {
		t.Errorf("saw %d ACKs; ACK implosion should produce ~200", acks)
	}
}

func TestSenderRequiresReceivers(t *testing.T) {
	k := sim.New(1)
	e := env.NewSim(k)
	fab := transporttest.New(e, time.Millisecond)
	_, err := ackcast.NewSender(transport.Config{Env: e, Endpoint: fab.Endpoint(0)}, ackcast.Options{})
	if err == nil {
		t.Error("sender without Receivers should fail")
	}
}

func TestPublishAfterClose(t *testing.T) {
	h := newHarness(t, 1, ackcast.Options{})
	if err := h.sender.Close(); err != nil {
		t.Fatal(err)
	}
	if err := h.sender.Publish(nil); err == nil {
		t.Error("Publish after Close should error")
	}
	if err := h.recvs[0].Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSpecAndParseOptions(t *testing.T) {
	spec := ackcast.Spec(32, 20*time.Millisecond)
	if spec.String() != "ackcast(rto=20ms,window=32)" {
		t.Errorf("Spec = %q", spec.String())
	}
	o, err := ackcast.ParseOptions(spec.Params)
	if err != nil || o.Window != 32 || o.RTO != 20*time.Millisecond {
		t.Errorf("ParseOptions: %+v, %v", o, err)
	}
	for _, bad := range []transport.Params{
		{"window": "x"}, {"rto": "y"}, {"window": "-1"}, {"rto": "-1ms"},
	} {
		if _, err := ackcast.ParseOptions(bad); err == nil {
			t.Errorf("ParseOptions(%v) should error", bad)
		}
	}
}

func TestFactory(t *testing.T) {
	f := ackcast.Factory()
	if f.Name != ackcast.Name || !f.Props.Has(transport.PropACKReliability|transport.PropFlowControl) {
		t.Error("factory metadata wrong")
	}
}

func TestDuplicateRetransReAcked(t *testing.T) {
	// If an ACK is lost, the sender retransmits an already-delivered
	// packet; the receiver must re-ACK so the sender can advance.
	h := newHarness(t, 1, ackcast.Options{RTO: 5 * time.Millisecond})
	ackDropped := false
	h.fab.Drop = func(from, to wire.NodeID, pkt *wire.Packet) bool {
		if pkt.Type == wire.TypeAck && !ackDropped {
			ackDropped = true
			return true
		}
		return false
	}
	if err := h.sender.Publish(nil); err != nil {
		t.Fatal(err)
	}
	if err := h.k.RunFor(time.Minute); err != nil {
		t.Fatal(err)
	}
	if len(h.delivery[0]) != 1 {
		t.Fatalf("delivered %d, want 1", len(h.delivery[0]))
	}
	if h.sender.InFlight() != 0 {
		t.Errorf("InFlight = %d; re-ACK after duplicate retrans should clear it", h.sender.InFlight())
	}
	if st := h.recvs[0].Stats(); st.Duplicates == 0 {
		t.Error("duplicate retrans not counted")
	}
}

func TestStallGiveUpOnDeadReceiver(t *testing.T) {
	// One receiver stops ACKing entirely (crash): after the stall bound
	// the sender must drop it and drain the backlog for the others.
	h := newHarness(t, 2, ackcast.Options{Window: 8, RTO: 2 * time.Millisecond})
	h.fab.Drop = func(from, to wire.NodeID, pkt *wire.Packet) bool {
		// Node 2 is dead: nothing in, nothing out.
		return from == 2 || to == 2
	}
	for i := 0; i < 40; i++ {
		if err := h.sender.Publish([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.k.RunFor(time.Minute); err != nil {
		t.Fatal(err)
	}
	if got := len(h.delivery[0]); got != 40 {
		t.Errorf("live receiver delivered %d/40; dead peer wedged the window", got)
	}
	if h.sender.Backlog() != 0 {
		t.Errorf("backlog %d after stall give-up", h.sender.Backlog())
	}
	// A late ACK from the dead (dropped) receiver must not resurrect it
	// into the window accounting.
	h.fab.Drop = nil
	body, err := (&wire.AckBody{Cumulative: 1}).Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	ack := &wire.Packet{Type: wire.TypeAck, Src: 2, Stream: 1, SentAt: h.k.Now(), Payload: body}
	if err := h.fab.Endpoint(2).Unicast(0, ack); err != nil {
		t.Fatal(err)
	}
	if err := h.k.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	if h.sender.InFlight() != 0 {
		t.Errorf("InFlight = %d; dead receiver re-admitted", h.sender.InFlight())
	}
}

func TestSenderCloseStillDrains(t *testing.T) {
	// Closing immediately after the last publish must not strand the
	// in-flight window: RTO service continues until fully acked.
	h := newHarness(t, 1, ackcast.Options{Window: 4, RTO: 3 * time.Millisecond})
	dropFirst := true
	h.fab.Drop = func(from, to wire.NodeID, pkt *wire.Packet) bool {
		if pkt.Type == wire.TypeData && pkt.Seq == 1 && dropFirst {
			dropFirst = false
			return true
		}
		return false
	}
	for i := 0; i < 10; i++ {
		if err := h.sender.Publish([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.sender.Close(); err != nil {
		t.Fatal(err)
	}
	if err := h.k.RunFor(time.Minute); err != nil {
		t.Fatal(err)
	}
	if got := len(h.delivery[0]); got != 10 {
		t.Errorf("delivered %d/10 after immediate close", got)
	}
}
