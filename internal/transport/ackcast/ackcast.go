// Package ackcast implements an ACK-based reliable multicast with sender
// flow control — the positive-acknowledgment counterpart to NAKcast in the
// ANT property matrix (ACK-based reliability + flow control).
//
// The sender multicasts data and keeps every packet until all known
// receivers have cumulatively acknowledged it; a sliding window bounds the
// packets in flight, with excess publishes queued in a backlog (flow
// control). A retransmission timer re-sends, per lagging receiver, the
// packets just above its cumulative ACK. Receivers deliver in order and
// acknowledge every arrival.
//
// ACK-based reliability scales poorly with receiver count (ACK implosion:
// every data packet triggers one ACK per receiver), which is why the paper's
// DRE workloads prefer NAK- or FEC-based protocols; ackcast exists as the
// baseline that demonstrates that trade-off in the ablation benchmarks.
package ackcast

import (
	"fmt"
	"time"

	"adamant/internal/env"
	"adamant/internal/transport"
	"adamant/internal/wire"
)

// Name is the protocol's registry/spec name.
const Name = "ackcast"

// Props advertises ackcast's transport properties.
const Props = transport.PropMulticast | transport.PropACKReliability |
	transport.PropOrdered | transport.PropFlowControl

// Defaults for Options fields left zero.
const (
	DefaultWindow = 64
	DefaultRTO    = 50 * time.Millisecond
	// DefaultHistory is the resync ring size in packets: how far behind a
	// re-admitted receiver may be and still catch up from the sender
	// rather than staying expelled (see onAck).
	DefaultHistory    = 1 << 14
	retransBurst      = 32
	ackWork           = 2 * time.Microsecond
	defaultBacklogCap = 1 << 16
	holdbackCap       = 1 << 15
	// maxStallRounds bounds consecutive no-progress RTO rounds before a
	// receiver is declared dead and dropped from the window accounting.
	maxStallRounds = 40
)

// Options are ackcast's tunables.
type Options struct {
	// Window bounds unacknowledged packets in flight (flow control).
	Window int
	// RTO is the retransmission timeout.
	RTO time.Duration
	// History is the sender-side resync ring size in packets. It bounds
	// how far back a rejoining receiver can be served.
	History int
}

func (o *Options) fillDefaults() {
	if o.Window <= 0 {
		o.Window = DefaultWindow
	}
	if o.RTO <= 0 {
		o.RTO = DefaultRTO
	}
	if o.History <= 0 {
		o.History = DefaultHistory
	}
}

// Spec returns the canonical transport.Spec for the protocol.
func Spec(window int, rto time.Duration) transport.Spec {
	return transport.Spec{Name: Name, Params: transport.Params{
		"window": fmt.Sprintf("%d", window),
		"rto":    rto.String(),
	}}
}

// ParseOptions extracts Options from spec params.
func ParseOptions(p transport.Params) (Options, error) {
	var o Options
	var err error
	if o.Window, err = p.Int("window", DefaultWindow); err != nil {
		return o, err
	}
	if o.RTO, err = p.Duration("rto", DefaultRTO); err != nil {
		return o, err
	}
	if o.History, err = p.Int("history", DefaultHistory); err != nil {
		return o, err
	}
	if o.Window <= 0 || o.RTO <= 0 || o.History <= 0 {
		return o, fmt.Errorf("ackcast: non-positive option in %+v", o)
	}
	return o, nil
}

// Factory returns the registry factory for ackcast.
func Factory() *transport.Factory {
	return &transport.Factory{
		Name:  Name,
		Props: Props,
		NewSender: func(cfg transport.Config, params transport.Params) (transport.Sender, error) {
			o, err := ParseOptions(params)
			if err != nil {
				return nil, err
			}
			return NewSender(cfg, o)
		},
		NewReceiver: func(cfg transport.Config, params transport.Params) (transport.Receiver, error) {
			o, err := ParseOptions(params)
			if err != nil {
				return nil, err
			}
			return NewReceiver(cfg, o)
		},
	}
}

// Sender is the writer-side ackcast instance.
type Sender struct {
	cfg  transport.Config
	opts Options

	mux         *transport.Mux
	seq         uint64 // highest seq assigned
	sent        uint64 // highest seq actually sent
	store       map[uint64]storeEntry
	hist        []histEntry // resync ring indexed by seq % History
	backlog     [][]byte
	cums        map[wire.NodeID]uint64 // per-receiver cumulative ACK
	ids         []wire.NodeID          // cums keys in admission order: retransmits must not follow randomized map order, or replays diverge
	arena       transport.Arena
	rto         env.Timer
	lastMin     uint64
	stallRounds int
	closed      bool
}

type storeEntry struct {
	sentAt  time.Time
	payload []byte
}

type histEntry struct {
	seq     uint64
	sentAt  time.Time
	payload []byte
}

var _ transport.Sender = (*Sender)(nil)

// NewSender builds an ackcast sender. cfg.Receivers must enumerate the
// receiver set so the sender knows whose ACKs gate the window.
func NewSender(cfg transport.Config, opts Options) (*Sender, error) {
	if err := cfg.ValidateSender(); err != nil {
		return nil, err
	}
	if cfg.Receivers == nil {
		return nil, fmt.Errorf("ackcast: sender config missing Receivers")
	}
	opts.fillDefaults()
	s := &Sender{
		cfg:     cfg,
		opts:    opts,
		mux:     transport.NewMux(cfg.Endpoint),
		seq:     cfg.BaseSeq,
		sent:    cfg.BaseSeq,
		lastMin: cfg.BaseSeq,
		store:   make(map[uint64]storeEntry),
		hist:    make([]histEntry, opts.History),
		cums:    make(map[wire.NodeID]uint64),
	}
	for _, id := range cfg.Receivers() {
		if id != cfg.Endpoint.Local() {
			// Receivers start acknowledged up to the base, or the window
			// arithmetic would count the previous epochs' sequence space as
			// in flight and wedge the flow control.
			s.cums[id] = cfg.BaseSeq
			s.ids = append(s.ids, id)
		}
	}
	s.mux.Handle(wire.TypeAck, s.onAck)
	return s, nil
}

// Publish implements transport.Sender. When the flow-control window is
// full the sample is queued and sent as ACKs open the window.
func (s *Sender) Publish(payload []byte) error {
	if s.closed {
		return transport.ErrClosed
	}
	if len(s.backlog) >= defaultBacklogCap {
		return fmt.Errorf("ackcast: backlog full (%d samples)", len(s.backlog))
	}
	s.seq++
	s.backlog = append(s.backlog, s.arena.Copy(payload))
	s.pump()
	return nil
}

// Seq implements transport.Sender.
func (s *Sender) Seq() uint64 { return s.seq }

// InFlight returns the number of sent-but-not-fully-acked packets.
func (s *Sender) InFlight() int { return int(s.sent - s.minCum()) }

// Backlog returns the number of samples queued behind the window.
func (s *Sender) Backlog() int { return len(s.backlog) }

// Close implements transport.Sender. Publishing stops immediately;
// retransmission service continues until every receiver has acknowledged
// the in-flight window (or the stall bound gives up on it), so closing the
// writer does not strand recoveries.
func (s *Sender) Close() error {
	s.closed = true
	return nil
}

func (s *Sender) minCum() uint64 {
	first := true
	var m uint64
	for _, c := range s.cums {
		if first || c < m {
			m, first = c, false
		}
	}
	if first {
		return s.sent // no receivers: everything is trivially acked
	}
	return m
}

// pump sends backlog samples while the window has room.
func (s *Sender) pump() {
	for len(s.backlog) > 0 && int(s.sent-s.minCum()) < s.opts.Window {
		payload := s.backlog[0]
		s.backlog = s.backlog[1:]
		s.sent++
		now := s.cfg.Env.Now()
		s.store[s.sent] = storeEntry{sentAt: now, payload: payload}
		s.hist[s.sent%uint64(len(s.hist))] = histEntry{seq: s.sent, sentAt: now, payload: payload}
		pkt := &wire.Packet{
			Type:    wire.TypeData,
			Src:     s.cfg.Endpoint.Local(),
			Stream:  s.cfg.Stream,
			Seq:     s.sent,
			SentAt:  now,
			Payload: payload,
		}
		if err := s.cfg.Endpoint.Multicast(pkt); err != nil {
			return
		}
	}
	s.armRTO()
}

// armRTO arms the retransmission timer if there is unacknowledged data and
// no timer is already pending. It deliberately does NOT reset a pending
// timer: re-arming on every publish would starve retransmission whenever
// the publish interval is shorter than the RTO.
func (s *Sender) armRTO() {
	if s.rto != nil {
		return
	}
	if s.sent > s.minCum() {
		s.rto = s.cfg.Env.After(s.opts.RTO, s.fireRTO)
	}
}

func (s *Sender) fireRTO() {
	s.rto = nil
	// Give up on receivers that make no progress across many RTO rounds
	// (crashed or partitioned); otherwise the timer would spin forever.
	if min := s.minCum(); min > s.lastMin {
		s.lastMin = min
		s.stallRounds = 0
	} else {
		s.stallRounds++
		if s.stallRounds > maxStallRounds {
			kept := s.ids[:0]
			for _, id := range s.ids {
				if s.cums[id] < s.sent {
					delete(s.cums, id)
				} else {
					kept = append(kept, id)
				}
			}
			s.ids = kept
			s.stallRounds = 0
			s.pump()
			return
		}
	}
	for _, id := range s.ids {
		cum := s.cums[id]
		n := 0
		for seq := cum + 1; seq <= s.sent && n < retransBurst; seq++ {
			e, ok := s.entryFor(seq)
			if !ok {
				continue
			}
			retrans := &wire.Packet{
				Type:    wire.TypeRetrans,
				Src:     s.cfg.Endpoint.Local(),
				Stream:  s.cfg.Stream,
				Seq:     seq,
				SentAt:  e.sentAt,
				Payload: e.payload,
			}
			if err := s.cfg.Endpoint.Unicast(id, retrans); err != nil {
				break
			}
			n++
		}
	}
	s.armRTO()
}

// entryFor finds a retransmittable copy of seq: the ACK-gated store first,
// then the resync ring (for packets already acknowledged by the original
// group but owed to a re-admitted receiver).
func (s *Sender) entryFor(seq uint64) (storeEntry, bool) {
	if e, ok := s.store[seq]; ok {
		return e, true
	}
	if h := s.hist[seq%uint64(len(s.hist))]; h.seq == seq && seq != 0 {
		return storeEntry{sentAt: h.sentAt, payload: h.payload}, true
	}
	return storeEntry{}, false
}

// onAck keeps working after Close so the final window drains.
func (s *Sender) onAck(src wire.NodeID, pkt *wire.Packet) {
	if pkt.Stream != s.cfg.Stream {
		return
	}
	body, err := wire.DecodeAck(pkt.Payload)
	if err != nil {
		return
	}
	prev, known := s.cums[src]
	if !known {
		// Unknown source: a late-learned receiver (dynamic membership) or
		// one previously declared dead whose partition healed. Re-admit it
		// only if the resync ring still holds everything it is missing —
		// re-admitting an unservable receiver would wedge the window: its
		// cum could never advance, so the stall detector would just expel
		// it again.
		if body.Cumulative > s.sent || body.Cumulative < s.cfg.BaseSeq {
			return // bogus: acknowledges the future or another epoch's space
		}
		if s.sent-body.Cumulative > uint64(len(s.hist)) {
			return // too far behind the resync ring to ever catch up
		}
		s.cums[src] = body.Cumulative
		s.ids = append(s.ids, src)
		// Rebase the stall detector: the window minimum just dropped to
		// the rejoiner's cum, and its catch-up progress (not the old
		// group's) is what must now count as progress.
		s.lastMin = s.minCum()
		s.stallRounds = 0
		s.armRTO() // the rejoiner is behind: start serving backfill
		return
	}
	if body.Cumulative <= prev {
		return
	}
	s.cums[src] = body.Cumulative
	// Garbage-collect packets every receiver has.
	min := s.minCum()
	for seq := range s.store {
		if seq <= min {
			delete(s.store, seq)
		}
	}
	s.pump()
}

// Receiver is the reader-side ackcast instance: in-order delivery with a
// cumulative ACK per arrival.
type Receiver struct {
	cfg  transport.Config
	opts Options
	mux  *transport.Mux

	nextDeliver uint64
	buf         map[uint64]bufEntry
	arena       transport.Arena
	stats       transport.ReceiverStats
	closed      bool
}

type bufEntry struct {
	sentAt    time.Time
	payload   []byte
	recovered bool
}

var _ transport.Receiver = (*Receiver)(nil)

// NewReceiver builds an ackcast receiver on cfg.Endpoint.
func NewReceiver(cfg transport.Config, opts Options) (*Receiver, error) {
	if err := cfg.ValidateReceiver(); err != nil {
		return nil, err
	}
	opts.fillDefaults()
	r := &Receiver{
		cfg:         cfg,
		opts:        opts,
		mux:         transport.NewMux(cfg.Endpoint),
		nextDeliver: cfg.BaseSeq + 1,
		buf:         make(map[uint64]bufEntry),
	}
	r.mux.Handle(wire.TypeData, r.onData)
	r.mux.Handle(wire.TypeRetrans, r.onData)
	r.mux.Handle(wire.TypeHeartbeat, r.onHeartbeat)
	return r, nil
}

// Stats implements transport.Receiver.
func (r *Receiver) Stats() transport.ReceiverStats { return r.stats }

// Close implements transport.Receiver.
func (r *Receiver) Close() error {
	r.closed = true
	return nil
}

// onHeartbeat answers any sender heartbeat with a fresh cumulative ACK.
// ackcast senders emit no heartbeats of their own; this path exists for the
// hot-swap binding, which injects a synthetic end-of-stream heartbeat so a
// receiver that was partitioned across a swap re-ACKs, gets re-admitted by
// the (closed but still draining) old sender, and receives its backfill.
func (r *Receiver) onHeartbeat(src wire.NodeID, pkt *wire.Packet) {
	if r.closed || pkt.Stream != r.cfg.Stream {
		return
	}
	r.sendAck(src)
}

func (r *Receiver) onData(src wire.NodeID, pkt *wire.Packet) {
	if r.closed || pkt.Stream != r.cfg.Stream || pkt.Seq <= r.cfg.BaseSeq {
		return
	}
	if pkt.Seq < r.nextDeliver {
		r.stats.Duplicates++
		r.sendAck(src) // re-ACK: the sender may have missed an earlier ACK
		return
	}
	if _, dup := r.buf[pkt.Seq]; dup {
		r.stats.Duplicates++
		return
	}
	if len(r.buf) >= holdbackCap {
		r.stats.OutOfWindow++
		return
	}
	r.buf[pkt.Seq] = bufEntry{
		sentAt:    pkt.SentAt,
		payload:   r.arena.Copy(pkt.Payload),
		recovered: pkt.Type == wire.TypeRetrans,
	}
	r.stats.NoteBuffered(len(r.buf))
	for {
		e, ok := r.buf[r.nextDeliver]
		if !ok {
			break
		}
		delete(r.buf, r.nextDeliver)
		r.stats.Delivered++
		if e.recovered {
			r.stats.Recovered++
		}
		r.cfg.Deliver(transport.Delivery{
			Stream:      r.cfg.Stream,
			Seq:         r.nextDeliver,
			Payload:     e.payload,
			SentAt:      e.sentAt,
			DeliveredAt: r.cfg.Env.Now(),
			Recovered:   e.recovered,
		})
		r.nextDeliver++
	}
	r.sendAck(src)
}

func (r *Receiver) sendAck(to wire.NodeID) {
	r.cfg.Endpoint.Work(ackWork)
	body, err := (&wire.AckBody{Cumulative: r.nextDeliver - 1}).Encode(nil)
	if err != nil {
		return
	}
	pkt := &wire.Packet{
		Type:    wire.TypeAck,
		Src:     r.cfg.Endpoint.Local(),
		Stream:  r.cfg.Stream,
		SentAt:  r.cfg.Env.Now(),
		Payload: body,
	}
	// ACK loss is recovered by the RTO path; nothing to do on error.
	_ = r.cfg.Endpoint.Unicast(to, pkt)
}
