// Package transporttest provides an in-memory network fabric for precise,
// deterministic protocol unit tests: fixed delivery delay, no CPU model,
// and a drop hook that lets a test lose exactly the packets it wants
// (e.g. "drop DATA seq 5 to node 2 once").
package transporttest

import (
	"fmt"
	"time"

	"adamant/internal/env"
	"adamant/internal/transport"
	"adamant/internal/wire"
)

// Fabric is a perfect mesh connecting test endpoints.
type Fabric struct {
	env   env.Env
	delay time.Duration
	eps   map[wire.NodeID]*Endpoint

	// Drop, when non-nil, is consulted for every (hop, packet) pair;
	// returning true loses the packet on that hop.
	Drop func(from, to wire.NodeID, pkt *wire.Packet) bool
}

// New builds a fabric delivering packets after the given fixed delay.
func New(e env.Env, delay time.Duration) *Fabric {
	return &Fabric{env: e, delay: delay, eps: make(map[wire.NodeID]*Endpoint)}
}

// Endpoint returns (creating if needed) the endpoint with the given ID.
func (f *Fabric) Endpoint(id wire.NodeID) *Endpoint {
	if ep, ok := f.eps[id]; ok {
		return ep
	}
	ep := &Endpoint{fabric: f, id: id}
	f.eps[id] = ep
	return ep
}

func (f *Fabric) send(from, to wire.NodeID, pkt *wire.Packet) error {
	dst, ok := f.eps[to]
	if !ok {
		return fmt.Errorf("transporttest: unknown node %d", to)
	}
	if f.Drop != nil && f.Drop(from, to, pkt) {
		return nil
	}
	clone := pkt.Clone()
	f.env.After(f.delay, func() {
		if dst.handler != nil {
			dst.handler(from, clone)
		}
	})
	return nil
}

// Endpoint is a fabric attachment implementing transport.Endpoint.
type Endpoint struct {
	fabric  *Fabric
	id      wire.NodeID
	handler func(src wire.NodeID, pkt *wire.Packet)

	// WorkCharged accumulates Work() costs for assertions.
	WorkCharged time.Duration
}

var _ transport.Endpoint = (*Endpoint)(nil)

// Local implements transport.Endpoint.
func (e *Endpoint) Local() wire.NodeID { return e.id }

// MTU implements transport.Endpoint.
func (e *Endpoint) MTU() int { return 64 * 1024 }

// Unicast implements transport.Endpoint.
func (e *Endpoint) Unicast(dst wire.NodeID, pkt *wire.Packet) error {
	if dst == e.id {
		return fmt.Errorf("transporttest: unicast to self")
	}
	return e.fabric.send(e.id, dst, pkt)
}

// Multicast implements transport.Endpoint.
func (e *Endpoint) Multicast(pkt *wire.Packet) error {
	for id := range e.fabric.eps {
		if id == e.id {
			continue
		}
		if err := e.fabric.send(e.id, id, pkt); err != nil {
			return err
		}
	}
	return nil
}

// Work implements transport.Endpoint by recording the charge; the fabric
// models no CPU, so the reported delay is always zero.
func (e *Endpoint) Work(cost time.Duration) time.Duration {
	if cost > 0 {
		e.WorkCharged += cost
	}
	return 0
}

// ScaleCPU implements transport.Endpoint as the identity (the fabric has
// no CPU model).
func (e *Endpoint) ScaleCPU(d time.Duration) time.Duration { return d }

// SetHandler implements transport.Endpoint.
func (e *Endpoint) SetHandler(h func(src wire.NodeID, pkt *wire.Packet)) { e.handler = h }
