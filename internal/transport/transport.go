// Package transport is the Adaptive Network Transports (ANT) framework: a
// pluggable-protocol layer beneath the pub/sub middleware. It defines the
// endpoint abstraction protocols send through, the protocol instance
// interfaces (Sender, Receiver), the property flags protocols advertise
// (multicast, NAK/ACK reliability, FEC, ordering, flow control, membership,
// fault detection), a string Spec format for naming configured protocols
// (e.g. "nakcast(timeout=1ms)", "ricochet(r=4,c=3)"), and a Registry that
// maps specs to factories.
//
// Protocol implementations live in subpackages (ricochet, nakcast, bemcast,
// ackcast) and are pure event-driven state machines: they own no goroutines
// and are driven entirely by endpoint receive callbacks and env timers, so
// they run identically under the deterministic simulator and the real
// clock.
package transport

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"adamant/internal/env"
	"adamant/internal/wire"
)

// Endpoint is the network attachment point a protocol instance sends and
// receives through. netem.Node implements it for simulation; udp.Endpoint
// implements it over real sockets.
//
// Implementations must invoke the receive handler serially (from env
// callbacks), never concurrently.
type Endpoint interface {
	// Local returns this endpoint's node ID.
	Local() wire.NodeID
	// MTU returns the maximum payload size for a single packet.
	MTU() int
	// Unicast sends pkt to one destination.
	Unicast(dst wire.NodeID, pkt *wire.Packet) error
	// Multicast sends pkt to every other node in the group.
	Multicast(pkt *wire.Packet) error
	// Work charges the local CPU with cost at reference-machine speed
	// (used to model protocol processing such as FEC XOR) and returns the
	// scaled time until the CPU is free again — protocols use it to delay
	// deliveries by their own processing time on slow machines. Returns 0
	// on real endpoints.
	Work(cost time.Duration) time.Duration
	// ScaleCPU converts a reference-machine duration to this node's CPU
	// speed without charging the receive path — for work that runs on a
	// background thread (e.g. Ricochet's recovery path). Identity on real
	// endpoints.
	ScaleCPU(d time.Duration) time.Duration
	// SetHandler registers the receive callback. Only one handler is
	// active; use a Mux to share an endpoint among consumers.
	SetHandler(func(src wire.NodeID, pkt *wire.Packet))
}

// Delivery is one sample handed to the application by a Receiver.
type Delivery struct {
	Stream      wire.StreamID
	Seq         uint64
	Payload     []byte
	SentAt      time.Time
	DeliveredAt time.Time
	// Recovered marks samples reconstructed via repair or retransmission
	// rather than received directly.
	Recovered bool
}

// Latency returns the end-to-end delivery latency of the sample.
func (d Delivery) Latency() time.Duration { return d.DeliveredAt.Sub(d.SentAt) }

// DeliverFunc receives samples on the application's behalf. It is called in
// env callback context; implementations must not block.
type DeliverFunc func(Delivery)

// Sender is a protocol's writer-side instance.
type Sender interface {
	// Publish sends one sample to the group.
	Publish(payload []byte) error
	// Seq returns the number of samples published so far.
	Seq() uint64
	// Close releases timers. Publish after Close returns an error.
	Close() error
}

// Receiver is a protocol's reader-side instance.
type Receiver interface {
	// Stats returns a snapshot of the receiver's protocol counters.
	Stats() ReceiverStats
	// Close releases timers and stops delivery.
	Close() error
}

// ReceiverStats are protocol-side counters exposed for tests, experiments,
// and ops visibility.
type ReceiverStats struct {
	Delivered      uint64 // samples handed to the application
	Recovered      uint64 // of Delivered, reconstructed ones
	Duplicates     uint64 // suppressed duplicate receptions
	NaksSent       uint64 // NAKcast: NAK packets sent
	RepairsSent    uint64 // Ricochet: repair packets sent
	RepairsUsed    uint64 // Ricochet: repairs successfully decoded
	RepairsUseless uint64 // Ricochet: repairs that could not decode
	Abandoned      uint64 // samples given up as unrecoverable
	OutOfWindow    uint64 // packets below the receive window
	// MaxBuffered is the high-water mark of the receiver's recovery state
	// (holdback buffers, gap trackers, decode windows, pending repairs) in
	// entries. The chaos crucible asserts it stays bounded by the stream
	// length: repair state that outgrows the data it repairs is a leak.
	MaxBuffered uint64
}

// NoteBuffered records a new recovery-state size observation, keeping the
// MaxBuffered high-water mark.
func (s *ReceiverStats) NoteBuffered(n int) {
	if uint64(n) > s.MaxBuffered {
		s.MaxBuffered = uint64(n)
	}
}

// Properties is the bitset of transport properties a protocol supports,
// mirroring the ANT framework's configurable property list.
type Properties uint32

// Property flags.
const (
	PropMulticast Properties = 1 << iota
	PropNAKReliability
	PropACKReliability
	PropFEC
	PropOrdered
	PropFlowControl
	PropMembership
	PropFaultDetection
)

var propNames = []struct {
	p    Properties
	name string
}{
	{PropMulticast, "multicast"},
	{PropNAKReliability, "nak-reliability"},
	{PropACKReliability, "ack-reliability"},
	{PropFEC, "fec"},
	{PropOrdered, "ordered"},
	{PropFlowControl, "flow-control"},
	{PropMembership, "membership"},
	{PropFaultDetection, "fault-detection"},
}

// Has reports whether p contains all of the given flags.
func (p Properties) Has(flags Properties) bool { return p&flags == flags }

// String implements fmt.Stringer as a "+"-joined flag list.
func (p Properties) String() string {
	var parts []string
	for _, pn := range propNames {
		if p.Has(pn.p) {
			parts = append(parts, pn.name)
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "+")
}

// Config carries everything a protocol instance needs. Senders and
// receivers share the type; fields irrelevant to a side are ignored.
type Config struct {
	// Env supplies time, timers, and named random streams.
	Env env.Env
	// Endpoint is the network attachment. Each protocol instance must own
	// its endpoint handler; share endpoints via Mux.
	Endpoint Endpoint
	// Stream identifies the data stream (topic) this instance serves.
	Stream wire.StreamID
	// SenderID is the node that publishes the stream (NAK target).
	SenderID wire.NodeID
	// Receivers returns the current receiver set, including the local
	// node. Ricochet picks repair targets from it; implementations may
	// call it often, so it should be cheap.
	Receivers func() []wire.NodeID
	// Deliver receives samples (receiver side).
	Deliver DeliverFunc
	// OnLost, when non-nil, is notified of sequence numbers the transport
	// has given up recovering (maps to the DDS SAMPLE_LOST status).
	OnLost func(seq uint64)
	// BaseSeq rebases the instance's sequence space: the sender numbers its
	// first sample BaseSeq+1 and receivers treat sequences <= BaseSeq as
	// out of window. Hot-swap bindings use it so a new protocol generation
	// continues the stream's sequence space from the previous generation's
	// cut; zero (the default) is the classic from-the-start behavior.
	BaseSeq uint64
}

func (c *Config) validateCommon() error {
	if c.Env == nil {
		return errors.New("transport: config missing Env")
	}
	if c.Endpoint == nil {
		return errors.New("transport: config missing Endpoint")
	}
	return nil
}

// ValidateSender checks the fields a sender needs.
func (c *Config) ValidateSender() error { return c.validateCommon() }

// ValidateReceiver checks the fields a receiver needs.
func (c *Config) ValidateReceiver() error {
	if err := c.validateCommon(); err != nil {
		return err
	}
	if c.Deliver == nil {
		return errors.New("transport: receiver config missing Deliver")
	}
	return nil
}

// Params are string protocol parameters parsed from a Spec.
type Params map[string]string

// Int returns the named integer parameter or def if absent.
func (p Params) Int(key string, def int) (int, error) {
	s, ok := p[key]
	if !ok {
		return def, nil
	}
	// strconv.Atoi rather than Sscanf: the whole value must be the
	// integer, so "25%" or "8x" is a spec error instead of silently
	// parsing its numeric prefix.
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("transport: param %s=%q: %w", key, s, err)
	}
	return v, nil
}

// Duration returns the named duration parameter or def if absent.
func (p Params) Duration(key string, def time.Duration) (time.Duration, error) {
	s, ok := p[key]
	if !ok {
		return def, nil
	}
	v, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("transport: param %s=%q: %w", key, s, err)
	}
	return v, nil
}

// Spec names a protocol together with its tuning parameters, e.g.
// "ricochet(r=4,c=3)" or "nakcast(timeout=1ms)". The canonical string form
// sorts parameters alphabetically so equal specs compare equal as strings.
type Spec struct {
	Name   string
	Params Params
}

// String implements fmt.Stringer in canonical form.
func (s Spec) String() string {
	if len(s.Params) == 0 {
		return s.Name
	}
	keys := make([]string, 0, len(s.Params))
	for k := range s.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(s.Name)
	b.WriteByte('(')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(s.Params[k])
	}
	b.WriteByte(')')
	return b.String()
}

// ParseSpec parses the canonical spec syntax: name[(k=v,k=v,...)].
func ParseSpec(s string) (Spec, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Spec{}, errors.New("transport: empty spec")
	}
	open := strings.IndexByte(s, '(')
	if open < 0 {
		if strings.ContainsAny(s, ")=,") {
			return Spec{}, fmt.Errorf("transport: malformed spec %q", s)
		}
		return Spec{Name: s}, nil
	}
	if !strings.HasSuffix(s, ")") {
		return Spec{}, fmt.Errorf("transport: malformed spec %q: missing ')'", s)
	}
	name := s[:open]
	if name == "" {
		return Spec{}, fmt.Errorf("transport: malformed spec %q: empty name", s)
	}
	// The same character restriction as the paren-less path, so every
	// accepted spec's canonical String() re-parses.
	if strings.ContainsAny(name, ")=,") {
		return Spec{}, fmt.Errorf("transport: malformed spec %q", s)
	}
	inner := s[open+1 : len(s)-1]
	params := Params{}
	if inner != "" {
		for _, kv := range strings.Split(inner, ",") {
			k, v, ok := strings.Cut(kv, "=")
			k, v = strings.TrimSpace(k), strings.TrimSpace(v)
			if !ok || k == "" || v == "" {
				return Spec{}, fmt.Errorf("transport: malformed spec param %q in %q", kv, s)
			}
			if _, dup := params[k]; dup {
				return Spec{}, fmt.Errorf("transport: duplicate spec param %q in %q", k, s)
			}
			params[k] = v
		}
	}
	return Spec{Name: name, Params: params}, nil
}

// Factory builds protocol instances for one protocol family.
type Factory struct {
	// Name is the spec name ("ricochet", "nakcast", ...).
	Name string
	// Props advertises the protocol's transport properties.
	Props Properties
	// NewSender builds a writer-side instance.
	NewSender func(cfg Config, params Params) (Sender, error)
	// NewReceiver builds a reader-side instance.
	NewReceiver func(cfg Config, params Params) (Receiver, error)
}

// Registry maps protocol names to factories. The zero value is unusable;
// create with NewRegistry.
type Registry struct {
	factories map[string]*Factory
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{factories: make(map[string]*Factory)}
}

// Register adds a factory. Registering a duplicate or invalid factory is a
// programming error and returns one.
func (r *Registry) Register(f *Factory) error {
	if f == nil || f.Name == "" || f.NewSender == nil || f.NewReceiver == nil {
		return errors.New("transport: invalid factory")
	}
	if _, dup := r.factories[f.Name]; dup {
		return fmt.Errorf("transport: duplicate factory %q", f.Name)
	}
	r.factories[f.Name] = f
	return nil
}

// Lookup returns the factory for name.
func (r *Registry) Lookup(name string) (*Factory, error) {
	f, ok := r.factories[name]
	if !ok {
		return nil, fmt.Errorf("transport: unknown protocol %q", name)
	}
	return f, nil
}

// Names returns the registered protocol names, sorted.
func (r *Registry) Names() []string {
	names := make([]string, 0, len(r.factories))
	for n := range r.factories {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// NewSender instantiates the writer side of spec.
func (r *Registry) NewSender(spec Spec, cfg Config) (Sender, error) {
	f, err := r.Lookup(spec.Name)
	if err != nil {
		return nil, err
	}
	return f.NewSender(cfg, spec.Params)
}

// NewReceiver instantiates the reader side of spec.
func (r *Registry) NewReceiver(spec Spec, cfg Config) (Receiver, error) {
	f, err := r.Lookup(spec.Name)
	if err != nil {
		return nil, err
	}
	return f.NewReceiver(cfg, spec.Params)
}

// ErrClosed is returned by operations on closed protocol instances.
var ErrClosed = errors.New("transport: closed")

// Mux fans one endpoint's receive handler out to multiple consumers by
// packet type, so a membership detector and a protocol instance can share a
// node's endpoint. Every handler registered for a type sees every packet of
// that type; consumers filter by Stream themselves (wire.StreamID 0 is the
// reserved control stream used by membership).
type Mux struct {
	ep       Endpoint
	byType   map[wire.Type][]func(src wire.NodeID, pkt *wire.Packet)
	fallback func(src wire.NodeID, pkt *wire.Packet)
}

// NewMux wraps ep and installs itself as the endpoint handler.
func NewMux(ep Endpoint) *Mux {
	m := &Mux{ep: ep, byType: make(map[wire.Type][]func(src wire.NodeID, pkt *wire.Packet))}
	ep.SetHandler(m.dispatch)
	return m
}

// Handle adds h to the routes for packets of type t.
func (m *Mux) Handle(t wire.Type, h func(src wire.NodeID, pkt *wire.Packet)) {
	m.byType[t] = append(m.byType[t], h)
}

// HandleRest routes packets with no type-specific handler to h.
func (m *Mux) HandleRest(h func(src wire.NodeID, pkt *wire.Packet)) { m.fallback = h }

func (m *Mux) dispatch(src wire.NodeID, pkt *wire.Packet) {
	if hs := m.byType[pkt.Type]; len(hs) > 0 {
		for _, h := range hs {
			h(src, pkt)
		}
		return
	}
	if m.fallback != nil {
		m.fallback(src, pkt)
	}
}

// Endpoint returns the wrapped endpoint (for senders that need Unicast etc).
func (m *Mux) Endpoint() Endpoint { return m.ep }

// StaticReceivers adapts a fixed receiver list to the Config.Receivers
// field.
func StaticReceivers(ids ...wire.NodeID) func() []wire.NodeID {
	fixed := append([]wire.NodeID(nil), ids...)
	return func() []wire.NodeID { return fixed }
}

// arenaChunk is the allocation granularity of Arena. Payloads at or above
// a quarter of it get their own allocation so one big sample cannot waste
// most of a chunk.
const arenaChunk = 4096

// Arena amortizes the per-sample payload copies protocols make when they
// retain data past a receive or publish callback (history buffers, holdback
// queues, deliveries). Copies are carved sequentially from chunk-sized
// blocks, so the 12-byte experiment payloads cost one allocation per ~340
// samples instead of one each. Carved slices are never reused — they stay
// valid (and must be treated as immutable by later writers) for the life of
// the program, exactly like individually allocated copies.
//
// The zero value is ready to use. An Arena is not safe for concurrent use;
// give each protocol instance its own (the env serial-callback contract
// already guarantees single-threaded access).
type Arena struct {
	buf []byte
}

// Copy returns a stable copy of p backed by the arena. Copy(nil) returns
// nil, preserving payload nil-ness.
func (a *Arena) Copy(p []byte) []byte {
	n := len(p)
	if n == 0 {
		return nil
	}
	if n >= arenaChunk/4 {
		return append([]byte(nil), p...)
	}
	if len(a.buf) < n {
		a.buf = make([]byte, arenaChunk)
	}
	c := a.buf[:n:n]
	a.buf = a.buf[n:]
	copy(c, p)
	return c
}
