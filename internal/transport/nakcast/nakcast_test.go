package nakcast_test

import (
	"fmt"
	"testing"
	"time"

	"adamant/internal/env"
	"adamant/internal/sim"
	"adamant/internal/transport"
	"adamant/internal/transport/nakcast"
	"adamant/internal/transport/transporttest"
	"adamant/internal/wire"
)

type harness struct {
	k        *sim.Kernel
	fab      *transporttest.Fabric
	sender   *nakcast.Sender
	recvs    []*nakcast.Receiver
	delivery [][]transport.Delivery
}

// newHarness builds one sender (node 0) and n receivers (nodes 1..n) over a
// 1ms-delay fabric.
func newHarness(t *testing.T, n int, opts nakcast.Options) *harness {
	t.Helper()
	h := &harness{k: sim.New(1)}
	e := env.NewSim(h.k)
	h.fab = transporttest.New(e, time.Millisecond)
	ids := []wire.NodeID{0}
	for i := 1; i <= n; i++ {
		ids = append(ids, wire.NodeID(i))
	}
	var err error
	h.sender, err = nakcast.NewSender(transport.Config{
		Env: e, Endpoint: h.fab.Endpoint(0), Stream: 1,
	}, opts)
	if err != nil {
		t.Fatal(err)
	}
	h.delivery = make([][]transport.Delivery, n)
	for i := 0; i < n; i++ {
		i := i
		r, err := nakcast.NewReceiver(transport.Config{
			Env:      e,
			Endpoint: h.fab.Endpoint(wire.NodeID(i + 1)),
			Stream:   1,
			SenderID: 0,
			Deliver:  func(d transport.Delivery) { h.delivery[i] = append(h.delivery[i], d) },
		}, opts)
		if err != nil {
			t.Fatal(err)
		}
		h.recvs = append(h.recvs, r)
	}
	return h
}

func (h *harness) publishN(t *testing.T, n int, gap time.Duration) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := h.sender.Publish([]byte(fmt.Sprintf("sample-%d", i))); err != nil {
			t.Fatal(err)
		}
		if err := h.k.RunFor(gap); err != nil {
			t.Fatal(err)
		}
	}
}

func (h *harness) finish(t *testing.T) {
	t.Helper()
	if err := h.sender.Close(); err != nil {
		t.Fatal(err)
	}
	if err := h.k.RunFor(10 * time.Second); err != nil {
		t.Fatal(err)
	}
}

func seqs(ds []transport.Delivery) []uint64 {
	out := make([]uint64, len(ds))
	for i, d := range ds {
		out[i] = d.Seq
	}
	return out
}

func TestLosslessInOrderDelivery(t *testing.T) {
	h := newHarness(t, 2, nakcast.Options{Timeout: time.Millisecond})
	h.publishN(t, 20, 5*time.Millisecond)
	h.finish(t)
	for i, ds := range h.delivery {
		if len(ds) != 20 {
			t.Fatalf("receiver %d delivered %d, want 20", i, len(ds))
		}
		for j, d := range ds {
			if d.Seq != uint64(j+1) {
				t.Fatalf("receiver %d out of order: %v", i, seqs(ds))
			}
			if d.Recovered {
				t.Errorf("lossless run marked seq %d recovered", d.Seq)
			}
			if lat := d.Latency(); lat < time.Millisecond || lat > 2*time.Millisecond {
				t.Errorf("seq %d latency %v, want ~1ms", d.Seq, lat)
			}
		}
	}
}

func TestSingleLossRecovered(t *testing.T) {
	h := newHarness(t, 1, nakcast.Options{Timeout: 5 * time.Millisecond})
	dropped := false
	h.fab.Drop = func(from, to wire.NodeID, pkt *wire.Packet) bool {
		if pkt.Type == wire.TypeData && pkt.Seq == 3 && !dropped {
			dropped = true
			return true
		}
		return false
	}
	h.publishN(t, 10, 10*time.Millisecond)
	h.finish(t)
	ds := h.delivery[0]
	if len(ds) != 10 {
		t.Fatalf("delivered %d, want 10: %v", len(ds), seqs(ds))
	}
	for j, d := range ds {
		if d.Seq != uint64(j+1) {
			t.Fatalf("out of order: %v", seqs(ds))
		}
	}
	if !ds[2].Recovered {
		t.Error("seq 3 should be marked recovered")
	}
	// Recovery path: detected when seq 4 arrives (~10ms after seq 3 was
	// sent), + 5ms NAK timeout + ~2ms round trip. The recovered latency
	// must reflect the original send time.
	if lat := ds[2].Latency(); lat < 15*time.Millisecond {
		t.Errorf("recovered latency %v, want >= detection+timeout (~15ms)", lat)
	}
	st := h.recvs[0].Stats()
	if st.NaksSent == 0 {
		t.Error("no NAKs sent")
	}
	if st.Recovered != 1 {
		t.Errorf("Recovered = %d, want 1", st.Recovered)
	}
}

func TestHeadOfLineBlocking(t *testing.T) {
	h := newHarness(t, 1, nakcast.Options{Timeout: 20 * time.Millisecond})
	h.fab.Drop = func(from, to wire.NodeID, pkt *wire.Packet) bool {
		return pkt.Type == wire.TypeData && pkt.Seq == 2
	}
	// Publish 1..4 quickly: 3 and 4 arrive before 2 recovers and must be
	// held back, then released in a burst with inflated latency.
	h.publishN(t, 4, 2*time.Millisecond)
	h.finish(t)
	ds := h.delivery[0]
	if len(ds) != 4 {
		t.Fatalf("delivered %d, want 4", len(ds))
	}
	if got := seqs(ds); got[0] != 1 || got[1] != 2 || got[2] != 3 || got[3] != 4 {
		t.Fatalf("order = %v", got)
	}
	// seq 3's latency must include head-of-line blocking behind seq 2.
	if lat3 := ds[2].Latency(); lat3 < 15*time.Millisecond {
		t.Errorf("seq 3 latency %v; expected HOL blocking behind seq 2 (>= ~20ms)", lat3)
	}
	// And 2,3,4 are delivered at the same instant (the recovery drain).
	if !ds[1].DeliveredAt.Equal(ds[2].DeliveredAt) || !ds[2].DeliveredAt.Equal(ds[3].DeliveredAt) {
		t.Error("HOL drain should deliver blocked samples at the same instant")
	}
}

func TestRetransLossTriggersBackoffRetry(t *testing.T) {
	h := newHarness(t, 1, nakcast.Options{Timeout: 2 * time.Millisecond})
	drops := 0
	h.fab.Drop = func(from, to wire.NodeID, pkt *wire.Packet) bool {
		if pkt.Type == wire.TypeData && pkt.Seq == 2 {
			return true
		}
		if pkt.Type == wire.TypeRetrans && pkt.Seq == 2 && drops < 2 {
			drops++
			return true
		}
		return false
	}
	h.publishN(t, 5, 5*time.Millisecond)
	h.finish(t)
	ds := h.delivery[0]
	if len(ds) != 5 {
		t.Fatalf("delivered %d, want 5: %v", len(ds), seqs(ds))
	}
	st := h.recvs[0].Stats()
	if st.NaksSent < 3 {
		t.Errorf("NaksSent = %d, want >= 3 (two retrans drops)", st.NaksSent)
	}
	if !ds[1].Recovered {
		t.Error("seq 2 should be recovered")
	}
}

func TestAbandonAfterMaxNaks(t *testing.T) {
	h := newHarness(t, 1, nakcast.Options{Timeout: time.Millisecond, MaxNaks: 3})
	h.fab.Drop = func(from, to wire.NodeID, pkt *wire.Packet) bool {
		// seq 2 is permanently unrecoverable.
		return (pkt.Type == wire.TypeData || pkt.Type == wire.TypeRetrans) && pkt.Seq == 2
	}
	h.publishN(t, 5, 3*time.Millisecond)
	h.finish(t)
	ds := h.delivery[0]
	if len(ds) != 4 {
		t.Fatalf("delivered %d, want 4 (seq 2 abandoned): %v", len(ds), seqs(ds))
	}
	got := seqs(ds)
	want := []uint64{1, 3, 4, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	st := h.recvs[0].Stats()
	if st.Abandoned != 1 {
		t.Errorf("Abandoned = %d, want 1", st.Abandoned)
	}
	if st.NaksSent != 3 {
		t.Errorf("NaksSent = %d, want exactly MaxNaks=3", st.NaksSent)
	}
}

func TestTailLossRecoveredViaHeartbeat(t *testing.T) {
	h := newHarness(t, 1, nakcast.Options{Timeout: time.Millisecond, HBInterval: 20 * time.Millisecond})
	dropped := false
	h.fab.Drop = func(from, to wire.NodeID, pkt *wire.Packet) bool {
		if pkt.Type == wire.TypeData && pkt.Seq == 5 && !dropped {
			dropped = true
			return true
		}
		return false
	}
	// seq 5 is the final packet: no later data to reveal the gap, only
	// heartbeats can.
	h.publishN(t, 5, 2*time.Millisecond)
	h.finish(t)
	ds := h.delivery[0]
	if len(ds) != 5 {
		t.Fatalf("delivered %d, want 5 (tail loss must be heartbeat-recovered)", len(ds))
	}
	if !ds[4].Recovered {
		t.Error("tail packet should be marked recovered")
	}
}

func TestEOSHeartbeatSpeedsTailRecovery(t *testing.T) {
	// With a huge HB interval, the EOS heartbeat sent by Close is the only
	// tail-gap signal.
	h := newHarness(t, 1, nakcast.Options{Timeout: time.Millisecond, HBInterval: time.Hour})
	h.fab.Drop = func(from, to wire.NodeID, pkt *wire.Packet) bool {
		return pkt.Type == wire.TypeData && pkt.Seq == 3 && pkt.Src == 0 && to == 1 &&
			pkt.Type != wire.TypeRetrans
	}
	h.publishN(t, 3, 2*time.Millisecond)
	h.finish(t)
	if got := len(h.delivery[0]); got != 3 {
		t.Fatalf("delivered %d, want 3", got)
	}
}

func TestDuplicateSuppression(t *testing.T) {
	h := newHarness(t, 1, nakcast.Options{Timeout: time.Millisecond})
	// Duplicate every data packet.
	h.fab.Drop = func(from, to wire.NodeID, pkt *wire.Packet) bool { return false }
	ep := h.fab.Endpoint(0)
	for i := 0; i < 5; i++ {
		if err := h.sender.Publish([]byte("x")); err != nil {
			t.Fatal(err)
		}
		// Replay the same seq directly.
		dup := &wire.Packet{Type: wire.TypeData, Src: 0, Stream: 1,
			Seq: h.sender.Seq(), SentAt: h.k.Now(), Payload: []byte("x")}
		if err := ep.Multicast(dup); err != nil {
			t.Fatal(err)
		}
		if err := h.k.RunFor(5 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	h.finish(t)
	if got := len(h.delivery[0]); got != 5 {
		t.Errorf("delivered %d, want 5", got)
	}
	if st := h.recvs[0].Stats(); st.Duplicates != 5 {
		t.Errorf("Duplicates = %d, want 5", st.Duplicates)
	}
}

func TestUnorderedMode(t *testing.T) {
	h := newHarness(t, 1, nakcast.Options{Timeout: 50 * time.Millisecond, Unordered: true})
	h.fab.Drop = func(from, to wire.NodeID, pkt *wire.Packet) bool {
		return pkt.Type == wire.TypeData && pkt.Seq == 2
	}
	h.publishN(t, 4, 2*time.Millisecond)
	h.finish(t)
	ds := h.delivery[0]
	if len(ds) != 4 {
		t.Fatalf("delivered %d, want 4", len(ds))
	}
	// 3 and 4 must NOT wait for 2: they are delivered before it.
	pos := map[uint64]int{}
	for i, d := range ds {
		pos[d.Seq] = i
	}
	if pos[3] > pos[2] || pos[4] > pos[2] {
		t.Errorf("unordered mode still blocked: order %v", seqs(ds))
	}
	if lat := ds[pos[3]].Latency(); lat > 5*time.Millisecond {
		t.Errorf("seq 3 latency %v in unordered mode, want ~1ms", lat)
	}
}

func TestSenderHistoryEviction(t *testing.T) {
	h := newHarness(t, 1, nakcast.Options{Timeout: 40 * time.Millisecond, History: 4, MaxNaks: 2})
	h.fab.Drop = func(from, to wire.NodeID, pkt *wire.Packet) bool {
		return pkt.Type == wire.TypeData && pkt.Seq == 1 && to == 1
	}
	// By the time the NAK for seq 1 fires, 8 more packets have evicted it.
	h.publishN(t, 9, 5*time.Millisecond)
	h.finish(t)
	ds := h.delivery[0]
	if len(ds) != 8 {
		t.Fatalf("delivered %d, want 8 (seq 1 unrecoverable)", len(ds))
	}
	if st := h.recvs[0].Stats(); st.Abandoned != 1 {
		t.Errorf("Abandoned = %d, want 1", st.Abandoned)
	}
}

func TestPublishAfterClose(t *testing.T) {
	h := newHarness(t, 1, nakcast.Options{})
	if err := h.sender.Close(); err != nil {
		t.Fatal(err)
	}
	if err := h.sender.Publish([]byte("x")); err == nil {
		t.Error("Publish after Close should error")
	}
	if err := h.sender.Close(); err != nil {
		t.Errorf("double Close: %v", err)
	}
	if err := h.recvs[0].Close(); err != nil {
		t.Fatal(err)
	}
	if err := h.recvs[0].Close(); err != nil {
		t.Errorf("double receiver Close: %v", err)
	}
}

func TestReceiverCloseStopsNaks(t *testing.T) {
	h := newHarness(t, 1, nakcast.Options{Timeout: 5 * time.Millisecond})
	h.fab.Drop = func(from, to wire.NodeID, pkt *wire.Packet) bool {
		return pkt.Type == wire.TypeData && pkt.Seq == 2
	}
	h.publishN(t, 3, 2*time.Millisecond)
	if err := h.recvs[0].Close(); err != nil {
		t.Fatal(err)
	}
	before := h.recvs[0].Stats().NaksSent
	if err := h.k.RunFor(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if after := h.recvs[0].Stats().NaksSent; after != before {
		t.Errorf("NAKs kept flowing after Close: %d -> %d", before, after)
	}
}

func TestSpecAndParseOptions(t *testing.T) {
	spec := nakcast.Spec(time.Millisecond)
	if spec.String() != "nakcast(timeout=1ms)" {
		t.Errorf("Spec = %q", spec.String())
	}
	o, err := nakcast.ParseOptions(spec.Params)
	if err != nil || o.Timeout != time.Millisecond {
		t.Errorf("ParseOptions: %+v, %v", o, err)
	}
	if _, err := nakcast.ParseOptions(transport.Params{"timeout": "bogus"}); err == nil {
		t.Error("bad timeout should error")
	}
	if _, err := nakcast.ParseOptions(transport.Params{"timeout": "-1ms"}); err == nil {
		t.Error("negative timeout should error")
	}
	if _, err := nakcast.ParseOptions(transport.Params{"maxnaks": "x"}); err == nil {
		t.Error("bad maxnaks should error")
	}
	if _, err := nakcast.ParseOptions(transport.Params{"unordered": "1"}); err != nil {
		t.Error("unordered=1 should parse")
	}
}

func TestFactoryBuildsInstances(t *testing.T) {
	f := nakcast.Factory()
	if f.Name != nakcast.Name {
		t.Errorf("factory name %q", f.Name)
	}
	if !transport.Properties(f.Props).Has(transport.PropNAKReliability) {
		t.Error("factory props missing nak-reliability")
	}
	k := sim.New(1)
	e := env.NewSim(k)
	fab := transporttest.New(e, time.Millisecond)
	cfg := transport.Config{Env: e, Endpoint: fab.Endpoint(0), Stream: 1}
	s, err := f.NewSender(cfg, transport.Params{"timeout": "1ms"})
	if err != nil || s == nil {
		t.Fatalf("NewSender: %v", err)
	}
	cfg2 := transport.Config{Env: e, Endpoint: fab.Endpoint(1), Stream: 1,
		Deliver: func(transport.Delivery) {}}
	r, err := f.NewReceiver(cfg2, transport.Params{"timeout": "1ms"})
	if err != nil || r == nil {
		t.Fatalf("NewReceiver: %v", err)
	}
	if _, err := f.NewSender(cfg, transport.Params{"timeout": "zzz"}); err == nil {
		t.Error("bad params should fail sender construction")
	}
}

func TestManyLossesAllRecovered(t *testing.T) {
	// Deterministically drop every 7th data packet to one of three
	// receivers; everything must still arrive, in order.
	h := newHarness(t, 3, nakcast.Options{Timeout: 2 * time.Millisecond})
	h.fab.Drop = func(from, to wire.NodeID, pkt *wire.Packet) bool {
		return pkt.Type == wire.TypeData && to == 2 && pkt.Seq%7 == 0
	}
	h.publishN(t, 100, 3*time.Millisecond)
	h.finish(t)
	for i, ds := range h.delivery {
		if len(ds) != 100 {
			t.Errorf("receiver %d delivered %d, want 100", i, len(ds))
		}
		for j, d := range ds {
			if d.Seq != uint64(j+1) {
				t.Fatalf("receiver %d out of order at %d", i, j)
			}
		}
	}
	if st := h.recvs[1].Stats(); st.Recovered != 14 {
		t.Errorf("receiver 1 Recovered = %d, want 14", st.Recovered)
	}
}
