// Package nakcast implements the ANT framework's NAKcast protocol: a
// NAK-based reliable multicast. The sender multicasts data packets and
// keeps a bounded retransmission history; receivers detect sequence gaps
// (from later data packets or from sender heartbeats), wait a tunable NAK
// timeout, then send a NAK listing the missing ranges; the sender answers
// with unicast retransmissions that preserve the original send timestamps.
//
// The NAK timeout is the protocol's headline tunable — the paper evaluates
// 50 ms, 25 ms, 10 ms, and 1 ms. Smaller timeouts recover faster at the
// cost of more NAK traffic under reordering.
//
// Delivery is in-order by default (the reliability the DDS RELIABLE QoS
// expects), which is where NAKcast's latency profile comes from: a lost
// packet head-of-line blocks its successors until recovery. Unrecoverable
// packets (sender history evicted, or the NAK retry budget exhausted) are
// abandoned so delivery always makes progress.
package nakcast

import (
	"fmt"
	"time"

	"adamant/internal/env"
	"adamant/internal/transport"
	"adamant/internal/wire"
)

// Name is the protocol's registry/spec name.
const Name = "nakcast"

// Props advertises NAKcast's transport properties.
const Props = transport.PropMulticast | transport.PropNAKReliability | transport.PropOrdered

// Defaults for Options fields left zero.
const (
	DefaultTimeout    = 10 * time.Millisecond
	DefaultMaxNaks    = 8
	DefaultHistory    = 1 << 14
	DefaultHBInterval = 100 * time.Millisecond
	// DefaultProcCost models the reference-machine CPU time the receiver
	// spends per data packet on sequencing and holdback bookkeeping (the
	// ANT framework data path without Ricochet's XOR work).
	DefaultProcCost    = 50 * time.Microsecond
	retransWorkPerPkt  = 40 * time.Microsecond
	nakBuildWork       = 30 * time.Microsecond
	defaultHoldbackCap = 1 << 15

	// retransBurst is how many retransmissions a NAK is served
	// synchronously; anything beyond it is queued and paced. Small NAKs
	// (ordinary loss recovery) behave exactly as before; only big
	// backfills after a long partition take the paced path.
	retransBurst = 64
	// retransPace is the interval between paced retransmission bursts.
	// Pacing turns the post-heal backfill from one egress-queue-flooding
	// burst into a bounded trickle the NAK backoff can ride on.
	retransPace = 2 * time.Millisecond
	// maxRetransQueue bounds the sender's pending retransmission queue;
	// excess requests are dropped and recovered by the receiver's next
	// NAK retry.
	maxRetransQueue = 1 << 14
	// maxRetransScan bounds how many history slots one NAK may probe, so
	// a malformed or hostile NAK range (e.g. 1..2^60) cannot stall the
	// sender scanning sequence numbers it never published.
	maxRetransScan = 1 << 16
)

// Options are NAKcast's tunables.
type Options struct {
	// Timeout is the NAK timeout: how long a receiver waits after
	// detecting a gap before NAKing the sender. Retries back off
	// exponentially from this base.
	Timeout time.Duration
	// MaxNaks bounds NAK retries per missing packet before the receiver
	// abandons it.
	MaxNaks int
	// History is the sender-side retransmission buffer size in packets.
	History int
	// HBInterval is the sender heartbeat period used for tail-gap
	// detection.
	HBInterval time.Duration
	// Unordered disables in-order delivery (samples are handed up on
	// arrival; recovery still runs). Used for ablation experiments.
	Unordered bool
	// ProcCost is the per-data-packet receiver processing cost at
	// reference-machine speed; deliveries are delayed by the scaled cost.
	ProcCost time.Duration
}

func (o *Options) fillDefaults() {
	if o.Timeout <= 0 {
		o.Timeout = DefaultTimeout
	}
	if o.MaxNaks <= 0 {
		o.MaxNaks = DefaultMaxNaks
	}
	if o.History <= 0 {
		o.History = DefaultHistory
	}
	if o.HBInterval <= 0 {
		o.HBInterval = DefaultHBInterval
	}
	if o.ProcCost == 0 {
		o.ProcCost = DefaultProcCost
	}
}

// Spec returns the canonical transport.Spec for a NAK timeout, e.g.
// Spec(time.Millisecond) == "nakcast(timeout=1ms)".
func Spec(timeout time.Duration) transport.Spec {
	return transport.Spec{Name: Name, Params: transport.Params{"timeout": timeout.String()}}
}

// ParseOptions extracts Options from spec params.
func ParseOptions(p transport.Params) (Options, error) {
	var o Options
	var err error
	if o.Timeout, err = p.Duration("timeout", DefaultTimeout); err != nil {
		return o, err
	}
	if o.MaxNaks, err = p.Int("maxnaks", DefaultMaxNaks); err != nil {
		return o, err
	}
	if o.History, err = p.Int("history", DefaultHistory); err != nil {
		return o, err
	}
	if o.HBInterval, err = p.Duration("hb", DefaultHBInterval); err != nil {
		return o, err
	}
	if o.ProcCost, err = p.Duration("proc", DefaultProcCost); err != nil {
		return o, err
	}
	unord, err := p.Int("unordered", 0)
	if err != nil {
		return o, err
	}
	o.Unordered = unord != 0
	if o.Timeout <= 0 || o.MaxNaks <= 0 || o.History <= 0 || o.HBInterval <= 0 {
		return o, fmt.Errorf("nakcast: non-positive option in %+v", o)
	}
	return o, nil
}

// Factory returns the registry factory for NAKcast.
func Factory() *transport.Factory {
	return &transport.Factory{
		Name:  Name,
		Props: Props,
		NewSender: func(cfg transport.Config, params transport.Params) (transport.Sender, error) {
			o, err := ParseOptions(params)
			if err != nil {
				return nil, err
			}
			return NewSender(cfg, o)
		},
		NewReceiver: func(cfg transport.Config, params transport.Params) (transport.Receiver, error) {
			o, err := ParseOptions(params)
			if err != nil {
				return nil, err
			}
			return NewReceiver(cfg, o)
		},
	}
}

// Sender is the writer-side NAKcast instance.
type Sender struct {
	cfg    transport.Config
	opts   Options
	mux    *transport.Mux
	seq    uint64
	hist   []histEntry // ring buffer indexed by seq % History
	arena  transport.Arena
	hbTmr  env.Timer
	closed bool

	// Paced retransmission state: backfill requests beyond the synchronous
	// burst budget queue here (deduplicated per destination+seq) and drain
	// retransBurst at a time every retransPace.
	rtq     []retransReq
	rtqSet  map[retransReq]bool
	rtTimer env.Timer
}

// retransReq identifies one queued retransmission.
type retransReq struct {
	dst wire.NodeID
	seq uint64
}

type histEntry struct {
	seq     uint64
	sentAt  time.Time
	payload []byte
}

var _ transport.Sender = (*Sender)(nil)

// NewSender builds a NAKcast sender on cfg.Endpoint.
func NewSender(cfg transport.Config, opts Options) (*Sender, error) {
	if err := cfg.ValidateSender(); err != nil {
		return nil, err
	}
	opts.fillDefaults()
	s := &Sender{
		cfg:    cfg,
		opts:   opts,
		mux:    transport.NewMux(cfg.Endpoint),
		seq:    cfg.BaseSeq,
		hist:   make([]histEntry, opts.History),
		rtqSet: make(map[retransReq]bool),
	}
	s.mux.Handle(wire.TypeNak, s.onNak)
	s.hbTmr = cfg.Env.After(opts.HBInterval, s.heartbeat)
	return s, nil
}

// Publish implements transport.Sender.
func (s *Sender) Publish(payload []byte) error {
	if s.closed {
		return transport.ErrClosed
	}
	s.seq++
	now := s.cfg.Env.Now()
	cp := s.arena.Copy(payload)
	s.hist[s.seq%uint64(len(s.hist))] = histEntry{seq: s.seq, sentAt: now, payload: cp}
	pkt := &wire.Packet{
		Type:    wire.TypeData,
		Src:     s.cfg.Endpoint.Local(),
		Stream:  s.cfg.Stream,
		Seq:     s.seq,
		SentAt:  now,
		Payload: cp,
	}
	return s.cfg.Endpoint.Multicast(pkt)
}

// Seq implements transport.Sender.
func (s *Sender) Seq() uint64 { return s.seq }

// Close implements transport.Sender. It multicasts a final EOS heartbeat so
// receivers can finish tail-loss recovery, then stops the heartbeat timer.
func (s *Sender) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	if s.hbTmr != nil {
		s.hbTmr.Stop()
	}
	s.sendHeartbeat(wire.FlagEOS)
	return nil
}

func (s *Sender) heartbeat() {
	if s.closed {
		return
	}
	s.sendHeartbeat(0)
	s.hbTmr = s.cfg.Env.After(s.opts.HBInterval, s.heartbeat)
}

func (s *Sender) sendHeartbeat(flags uint8) {
	body, err := (&wire.HeartbeatBody{HighSeq: s.seq}).Encode(nil)
	if err != nil {
		return
	}
	pkt := &wire.Packet{
		Type:    wire.TypeHeartbeat,
		Flags:   flags,
		Src:     s.cfg.Endpoint.Local(),
		Stream:  s.cfg.Stream,
		Seq:     s.seq,
		SentAt:  s.cfg.Env.Now(),
		Payload: body,
	}
	// Heartbeat delivery failures surface as slower tail recovery, not
	// correctness loss; nothing useful to do with an error here.
	_ = s.cfg.Endpoint.Multicast(pkt)
}

// onNak serves retransmissions. It deliberately keeps working after Close:
// Close ends publishing and heartbeats, but receivers may still be
// recovering tail losses announced by the EOS heartbeat. The first
// retransBurst packets go out synchronously (ordinary loss recovery);
// larger backfills — a healed partition NAKing hundreds of sequences at
// once — queue and drain at retransPace so the sender cannot flood its own
// egress queue into drop-tail losses the receiver must re-NAK.
func (s *Sender) onNak(src wire.NodeID, pkt *wire.Packet) {
	if pkt.Stream != s.cfg.Stream {
		return
	}
	body, err := wire.DecodeNak(pkt.Payload)
	if err != nil {
		return
	}
	sent, scanned := 0, 0
	for _, r := range body.Ranges {
		hi := r.To
		if hi > s.seq {
			hi = s.seq // never scan past what was published
		}
		for seq := r.From; seq <= hi && scanned < maxRetransScan; seq++ {
			scanned++
			e := s.hist[seq%uint64(len(s.hist))]
			if e.seq != seq || seq == 0 {
				continue // evicted from history or bogus
			}
			if sent < retransBurst {
				if !s.retransmit(src, e) {
					return
				}
				sent++
			} else {
				s.enqueueRetrans(src, seq)
			}
		}
	}
}

// retransmit unicasts one history entry to dst, charging the CPU cost. It
// reports false on endpoint errors (unknown destination).
func (s *Sender) retransmit(dst wire.NodeID, e histEntry) bool {
	s.cfg.Endpoint.Work(retransWorkPerPkt)
	retrans := &wire.Packet{
		Type:    wire.TypeRetrans,
		Src:     s.cfg.Endpoint.Local(),
		Stream:  s.cfg.Stream,
		Seq:     e.seq,
		SentAt:  e.sentAt, // original publish time: latency stays end-to-end
		Payload: e.payload,
	}
	return s.cfg.Endpoint.Unicast(dst, retrans) == nil
}

// enqueueRetrans adds a paced retransmission, deduplicating repeat
// requests (NAK retries for a seq already queued) and dropping beyond the
// queue bound — the receiver's next backoff retry re-requests anything
// dropped here.
func (s *Sender) enqueueRetrans(dst wire.NodeID, seq uint64) {
	key := retransReq{dst: dst, seq: seq}
	if s.rtqSet[key] || len(s.rtq) >= maxRetransQueue {
		return
	}
	s.rtqSet[key] = true
	s.rtq = append(s.rtq, key)
	if s.rtTimer == nil {
		s.rtTimer = s.cfg.Env.After(retransPace, s.fireRetrans)
	}
}

// fireRetrans drains one pacing burst from the retransmission queue.
func (s *Sender) fireRetrans() {
	s.rtTimer = nil
	n := 0
	for len(s.rtq) > 0 && n < retransBurst {
		key := s.rtq[0]
		s.rtq = s.rtq[1:]
		delete(s.rtqSet, key)
		e := s.hist[key.seq%uint64(len(s.hist))]
		if e.seq != key.seq {
			continue // evicted while queued
		}
		s.retransmit(key.dst, e)
		n++
	}
	if len(s.rtq) > 0 {
		s.rtTimer = s.cfg.Env.After(retransPace, s.fireRetrans)
	}
}

// Receiver is the reader-side NAKcast instance.
type Receiver struct {
	cfg  transport.Config
	opts Options
	mux  *transport.Mux

	sender      wire.NodeID // NAK target; tracked from data/heartbeat sources
	nextDeliver uint64      // next seq to deliver in order (1-based)
	maxSeen     uint64
	buf         map[uint64]bufEntry
	missing     map[uint64]*missState
	abandoned   map[uint64]bool
	seen        map[uint64]bool // unordered mode: delivered seqs
	arena       transport.Arena
	eos         bool
	eosHigh     uint64

	nakTimer env.Timer
	emitq    transport.EmitQueue
	stats    transport.ReceiverStats
	closed   bool
}

type bufEntry struct {
	sentAt    time.Time
	payload   []byte
	recovered bool
}

type missState struct {
	naks int
	due  time.Time
}

var _ transport.Receiver = (*Receiver)(nil)

// NewReceiver builds a NAKcast receiver on cfg.Endpoint.
func NewReceiver(cfg transport.Config, opts Options) (*Receiver, error) {
	if err := cfg.ValidateReceiver(); err != nil {
		return nil, err
	}
	opts.fillDefaults()
	r := &Receiver{
		cfg:         cfg,
		opts:        opts,
		mux:         transport.NewMux(cfg.Endpoint),
		sender:      cfg.SenderID,
		nextDeliver: cfg.BaseSeq + 1,
		maxSeen:     cfg.BaseSeq,
		buf:         make(map[uint64]bufEntry),
		missing:     make(map[uint64]*missState),
		abandoned:   make(map[uint64]bool),
		seen:        make(map[uint64]bool),
	}
	r.emitq = transport.NewEmitQueue(cfg.Env, cfg.Deliver, &r.closed)
	r.mux.Handle(wire.TypeData, r.onData)
	r.mux.Handle(wire.TypeRetrans, r.onData)
	r.mux.Handle(wire.TypeHeartbeat, r.onHeartbeat)
	return r, nil
}

// Stats implements transport.Receiver.
func (r *Receiver) Stats() transport.ReceiverStats { return r.stats }

// Close implements transport.Receiver.
func (r *Receiver) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	if r.nakTimer != nil {
		r.nakTimer.Stop()
	}
	return nil
}

func (r *Receiver) onData(src wire.NodeID, pkt *wire.Packet) {
	if r.closed || pkt.Stream != r.cfg.Stream {
		return
	}
	// Track the writer's actual node so NAKs reach it even when the
	// configured SenderID is stale or a different participant writes the
	// topic.
	r.sender = src
	seq := pkt.Seq
	if seq <= r.cfg.BaseSeq {
		return // below this instance's sequence space (covers bogus seq 0)
	}
	if r.isDuplicate(seq) {
		r.stats.Duplicates++
		return
	}
	if len(r.buf) >= defaultHoldbackCap {
		r.stats.OutOfWindow++
		return
	}
	recovered := pkt.Type == wire.TypeRetrans
	r.buf[seq] = bufEntry{
		sentAt:    pkt.SentAt,
		payload:   r.arena.Copy(pkt.Payload),
		recovered: recovered,
	}
	delete(r.missing, seq)
	r.noteHigh(seq, true)
	r.stats.NoteBuffered(len(r.buf) + len(r.missing) + len(r.abandoned))
	r.drain()
}

func (r *Receiver) onHeartbeat(src wire.NodeID, pkt *wire.Packet) {
	if r.closed || pkt.Stream != r.cfg.Stream {
		return
	}
	hb, err := wire.DecodeHeartbeat(pkt.Payload)
	if err != nil {
		return
	}
	r.sender = src
	if pkt.Flags&wire.FlagEOS != 0 {
		r.eos = true
		r.eosHigh = hb.HighSeq
	}
	r.noteHigh(hb.HighSeq, false)
	r.drain()
}

// isDuplicate reports whether seq was already buffered, delivered, or
// abandoned.
func (r *Receiver) isDuplicate(seq uint64) bool {
	if r.abandoned[seq] {
		return true
	}
	if _, buffered := r.buf[seq]; buffered {
		return true
	}
	if r.opts.Unordered {
		return r.seen[seq]
	}
	return seq < r.nextDeliver
}

// noteHigh records a new high watermark, marking any newly discovered gap
// sequences missing and arming the NAK timer. receivedHigh distinguishes a
// data arrival (seq itself is present) from a heartbeat announcement (seq
// itself may be missing too).
func (r *Receiver) noteHigh(seq uint64, receivedHigh bool) {
	if seq <= r.maxSeen {
		return
	}
	now := r.cfg.Env.Now()
	due := now.Add(r.opts.Timeout)
	hi := seq
	if receivedHigh {
		hi = seq - 1
	}
	for m := r.maxSeen + 1; m <= hi; m++ {
		if r.isDuplicate(m) {
			continue
		}
		r.missing[m] = &missState{due: due}
	}
	r.maxSeen = seq
	r.stats.NoteBuffered(len(r.buf) + len(r.missing) + len(r.abandoned))
	r.armNakTimer()
}

// armNakTimer (re)schedules the single NAK timer for the earliest due
// missing packet.
func (r *Receiver) armNakTimer() {
	if r.nakTimer != nil {
		r.nakTimer.Stop()
		r.nakTimer = nil
	}
	if len(r.missing) == 0 {
		return
	}
	var earliest time.Time
	for _, st := range r.missing {
		if earliest.IsZero() || st.due.Before(earliest) {
			earliest = st.due
		}
	}
	d := earliest.Sub(r.cfg.Env.Now())
	if d < 0 {
		d = 0
	}
	r.nakTimer = r.cfg.Env.After(d, r.fireNaks)
}

func (r *Receiver) fireNaks() {
	if r.closed {
		return
	}
	r.nakTimer = nil
	now := r.cfg.Env.Now()
	var dueSeqs []uint64
	for seq, st := range r.missing {
		if !st.due.After(now) {
			dueSeqs = append(dueSeqs, seq)
		}
	}
	if len(dueSeqs) > 0 {
		// Bump retry state; abandon packets whose retry budget is spent.
		var nakSeqs []uint64
		for _, seq := range dueSeqs {
			st := r.missing[seq]
			st.naks++
			if st.naks > r.opts.MaxNaks {
				delete(r.missing, seq)
				r.abandoned[seq] = true
				r.stats.Abandoned++
				if r.cfg.OnLost != nil {
					r.cfg.OnLost(seq)
				}
				continue
			}
			backoff := r.opts.Timeout << uint(st.naks) // exponential from base
			st.due = now.Add(backoff)
			nakSeqs = append(nakSeqs, seq)
		}
		if len(nakSeqs) > 0 {
			r.sendNak(nakSeqs)
		}
		r.drain()
	}
	r.armNakTimer()
}

func (r *Receiver) sendNak(seqs []uint64) {
	ranges := toRanges(seqs)
	if len(ranges) > 255 {
		ranges = ranges[:255]
	}
	body, err := (&wire.NakBody{Ranges: ranges}).Encode(nil)
	if err != nil {
		return
	}
	r.cfg.Endpoint.Work(nakBuildWork)
	pkt := &wire.Packet{
		Type:    wire.TypeNak,
		Src:     r.cfg.Endpoint.Local(),
		Stream:  r.cfg.Stream,
		SentAt:  r.cfg.Env.Now(),
		Payload: body,
	}
	if err := r.cfg.Endpoint.Unicast(r.sender, pkt); err != nil {
		return
	}
	r.stats.NaksSent++
}

// drain delivers in-order (or immediately when Unordered) and skips
// abandoned packets.
func (r *Receiver) drain() {
	if r.opts.Unordered {
		// Deliver everything buffered, lowest first, without waiting.
		for len(r.buf) > 0 {
			seq, ok := minKey(r.buf)
			if !ok {
				break
			}
			r.seen[seq] = true
			r.deliver(seq)
		}
		if len(r.seen) > defaultHoldbackCap {
			for s := range r.seen {
				if s+defaultHoldbackCap < r.maxSeen {
					delete(r.seen, s)
				}
			}
		}
		// Ordered mode prunes abandoned seqs as the delivery cursor passes
		// them; unordered mode has no cursor, so age them out here or the
		// set grows without bound on long streams.
		if len(r.abandoned) > defaultHoldbackCap {
			for s := range r.abandoned {
				if s+defaultHoldbackCap < r.maxSeen {
					delete(r.abandoned, s)
				}
			}
		}
		return
	}
	for r.nextDeliver <= r.maxSeen {
		if _, ok := r.buf[r.nextDeliver]; ok {
			r.deliver(r.nextDeliver)
			r.nextDeliver++
			continue
		}
		if r.abandoned[r.nextDeliver] {
			delete(r.abandoned, r.nextDeliver)
			r.nextDeliver++
			continue
		}
		break
	}
}

func (r *Receiver) deliver(seq uint64) {
	e := r.buf[seq]
	delete(r.buf, seq)
	r.stats.Delivered++
	if e.recovered {
		r.stats.Recovered++
	}
	// Sequencing/holdback bookkeeping consumes CPU; delivery lands when
	// the CPU is done. Bursts released by a recovery stack up naturally.
	delay := r.cfg.Endpoint.Work(r.opts.ProcCost)
	r.emitq.Emit(delay, transport.Delivery{
		Stream:    r.cfg.Stream,
		Seq:       seq,
		Payload:   e.payload,
		SentAt:    e.sentAt,
		Recovered: e.recovered,
	})
}

func minKey(m map[uint64]bufEntry) (uint64, bool) {
	var best uint64
	found := false
	for k := range m {
		if !found || k < best {
			best, found = k, true
		}
	}
	return best, found
}

// toRanges compresses a seq set into sorted inclusive ranges.
func toRanges(seqs []uint64) []wire.SeqRange {
	if len(seqs) == 0 {
		return nil
	}
	sortUint64(seqs)
	var out []wire.SeqRange
	cur := wire.SeqRange{From: seqs[0], To: seqs[0]}
	for _, s := range seqs[1:] {
		if s == cur.To || s == cur.To+1 {
			cur.To = s
			continue
		}
		out = append(out, cur)
		cur = wire.SeqRange{From: s, To: s}
	}
	return append(out, cur)
}

func sortUint64(s []uint64) {
	// Insertion sort: NAK batches are small and often nearly sorted.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
