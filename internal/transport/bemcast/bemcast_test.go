package bemcast_test

import (
	"testing"
	"time"

	"adamant/internal/env"
	"adamant/internal/sim"
	"adamant/internal/transport"
	"adamant/internal/transport/bemcast"
	"adamant/internal/transport/transporttest"
	"adamant/internal/wire"
)

func setup(t *testing.T, n int) (*sim.Kernel, *transporttest.Fabric, *bemcast.Sender,
	[]*bemcast.Receiver, [][]transport.Delivery) {
	t.Helper()
	k := sim.New(1)
	e := env.NewSim(k)
	fab := transporttest.New(e, time.Millisecond)
	s, err := bemcast.NewSender(transport.Config{Env: e, Endpoint: fab.Endpoint(0), Stream: 1})
	if err != nil {
		t.Fatal(err)
	}
	recvs := make([]*bemcast.Receiver, n)
	deliveries := make([][]transport.Delivery, n)
	for i := 0; i < n; i++ {
		i := i
		recvs[i], err = bemcast.NewReceiver(transport.Config{
			Env: e, Endpoint: fab.Endpoint(wire.NodeID(i + 1)), Stream: 1,
			Deliver: func(d transport.Delivery) { deliveries[i] = append(deliveries[i], d) },
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return k, fab, s, recvs, deliveries
}

func TestDeliversToAll(t *testing.T) {
	k, _, s, _, deliveries := setup(t, 3)
	for i := 0; i < 10; i++ {
		if err := s.Publish([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, ds := range deliveries {
		if len(ds) != 10 {
			t.Errorf("receiver %d got %d, want 10", i, len(ds))
		}
	}
	if s.Seq() != 10 {
		t.Errorf("Seq = %d", s.Seq())
	}
}

func TestNoRecovery(t *testing.T) {
	k, fab, s, recvs, deliveries := setup(t, 1)
	fab.Drop = func(from, to wire.NodeID, pkt *wire.Packet) bool { return pkt.Seq == 3 }
	for i := 0; i < 5; i++ {
		if err := s.Publish(nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := k.RunFor(time.Minute); err != nil {
		t.Fatal(err)
	}
	if len(deliveries[0]) != 4 {
		t.Errorf("delivered %d, want 4 (no recovery)", len(deliveries[0]))
	}
	if st := recvs[0].Stats(); st.Recovered != 0 || st.NaksSent != 0 || st.RepairsSent != 0 {
		t.Errorf("best-effort receiver has recovery stats: %+v", st)
	}
}

func TestDuplicateAndStreamFiltering(t *testing.T) {
	k, fab, s, recvs, deliveries := setup(t, 1)
	if err := s.Publish([]byte("x")); err != nil {
		t.Fatal(err)
	}
	dup := &wire.Packet{Type: wire.TypeData, Src: 0, Stream: 1, Seq: 1, SentAt: k.Now()}
	if err := fab.Endpoint(0).Multicast(dup); err != nil {
		t.Fatal(err)
	}
	foreign := &wire.Packet{Type: wire.TypeData, Src: 0, Stream: 2, Seq: 1, SentAt: k.Now()}
	if err := fab.Endpoint(0).Multicast(foreign); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(deliveries[0]) != 1 {
		t.Errorf("delivered %d, want 1", len(deliveries[0]))
	}
	if st := recvs[0].Stats(); st.Duplicates != 1 {
		t.Errorf("Duplicates = %d, want 1", st.Duplicates)
	}
}

func TestWindowEviction(t *testing.T) {
	k, fab, s, recvs, deliveries := setup(t, 1)
	for i := 0; i < bemcast.DefaultWindow+100; i++ {
		if err := s.Publish(nil); err != nil {
			t.Fatal(err)
		}
		if i%500 == 0 {
			if err := k.RunFor(time.Second); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := bemcast.DefaultWindow + 100
	if len(deliveries[0]) != want {
		t.Fatalf("delivered %d, want %d", len(deliveries[0]), want)
	}
	// A packet far below the window must be rejected.
	stale := &wire.Packet{Type: wire.TypeData, Src: 0, Stream: 1, Seq: 1, SentAt: k.Now()}
	if err := fab.Endpoint(0).Multicast(stale); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(deliveries[0]) != want {
		t.Error("stale replay was delivered")
	}
	if st := recvs[0].Stats(); st.OutOfWindow == 0 {
		t.Error("OutOfWindow not counted")
	}
}

func TestCloseSemantics(t *testing.T) {
	_, _, s, recvs, _ := setup(t, 1)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Publish(nil); err == nil {
		t.Error("Publish after Close should error")
	}
	if err := recvs[0].Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFactoryAndSpec(t *testing.T) {
	if bemcast.Spec().String() != "bemcast" {
		t.Errorf("Spec = %q", bemcast.Spec().String())
	}
	f := bemcast.Factory()
	if f.Name != bemcast.Name || !f.Props.Has(transport.PropMulticast) {
		t.Error("factory metadata wrong")
	}
	if _, err := f.NewSender(transport.Config{}, nil); err == nil {
		t.Error("invalid config should fail")
	}
}
