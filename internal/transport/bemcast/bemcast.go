// Package bemcast implements best-effort multicast: the simplest ANT
// transport. The sender multicasts data packets; receivers deliver them on
// arrival with duplicate suppression and no recovery of any kind. It is the
// latency floor and reliability baseline the recovery protocols (Ricochet,
// NAKcast, ackcast) are compared against.
package bemcast

import (
	"adamant/internal/transport"
	"adamant/internal/wire"
)

// Name is the protocol's registry/spec name.
const Name = "bemcast"

// Props advertises best-effort multicast's transport properties.
const Props = transport.PropMulticast

// DefaultWindow is the duplicate-suppression window size in packets.
const DefaultWindow = 4096

// Spec returns the canonical transport.Spec for the protocol.
func Spec() transport.Spec { return transport.Spec{Name: Name} }

// Factory returns the registry factory for best-effort multicast.
func Factory() *transport.Factory {
	return &transport.Factory{
		Name:  Name,
		Props: Props,
		NewSender: func(cfg transport.Config, _ transport.Params) (transport.Sender, error) {
			return NewSender(cfg)
		},
		NewReceiver: func(cfg transport.Config, _ transport.Params) (transport.Receiver, error) {
			return NewReceiver(cfg)
		},
	}
}

// Sender is the writer-side instance.
type Sender struct {
	cfg    transport.Config
	seq    uint64
	arena  transport.Arena
	closed bool
}

var _ transport.Sender = (*Sender)(nil)

// NewSender builds a best-effort sender on cfg.Endpoint.
func NewSender(cfg transport.Config) (*Sender, error) {
	if err := cfg.ValidateSender(); err != nil {
		return nil, err
	}
	return &Sender{cfg: cfg, seq: cfg.BaseSeq}, nil
}

// Publish implements transport.Sender.
func (s *Sender) Publish(payload []byte) error {
	if s.closed {
		return transport.ErrClosed
	}
	s.seq++
	return s.cfg.Endpoint.Multicast(&wire.Packet{
		Type:    wire.TypeData,
		Src:     s.cfg.Endpoint.Local(),
		Stream:  s.cfg.Stream,
		Seq:     s.seq,
		SentAt:  s.cfg.Env.Now(),
		Payload: s.arena.Copy(payload),
	})
}

// Seq implements transport.Sender.
func (s *Sender) Seq() uint64 { return s.seq }

// Close implements transport.Sender.
func (s *Sender) Close() error {
	s.closed = true
	return nil
}

// Receiver is the reader-side instance.
type Receiver struct {
	cfg    transport.Config
	mux    *transport.Mux
	seen   map[uint64]bool
	low    uint64
	arena  transport.Arena
	stats  transport.ReceiverStats
	closed bool
}

var _ transport.Receiver = (*Receiver)(nil)

// NewReceiver builds a best-effort receiver on cfg.Endpoint.
func NewReceiver(cfg transport.Config) (*Receiver, error) {
	if err := cfg.ValidateReceiver(); err != nil {
		return nil, err
	}
	r := &Receiver{cfg: cfg, mux: transport.NewMux(cfg.Endpoint), seen: make(map[uint64]bool), low: cfg.BaseSeq}
	r.mux.Handle(wire.TypeData, r.onData)
	return r, nil
}

// Stats implements transport.Receiver.
func (r *Receiver) Stats() transport.ReceiverStats { return r.stats }

// Close implements transport.Receiver.
func (r *Receiver) Close() error {
	r.closed = true
	return nil
}

func (r *Receiver) onData(_ wire.NodeID, pkt *wire.Packet) {
	if r.closed || pkt.Stream != r.cfg.Stream || pkt.Seq == 0 {
		return
	}
	if pkt.Seq <= r.low {
		r.stats.OutOfWindow++
		return
	}
	if r.seen[pkt.Seq] {
		r.stats.Duplicates++
		return
	}
	r.seen[pkt.Seq] = true
	r.stats.NoteBuffered(len(r.seen))
	if len(r.seen) > DefaultWindow {
		// Evict everything below the window behind the max-ish seq; a
		// simple sweep is fine at this window size.
		cut := pkt.Seq
		if cut > DefaultWindow {
			cut -= DefaultWindow
		} else {
			cut = 0
		}
		for s := range r.seen {
			if s <= cut {
				delete(r.seen, s)
			}
		}
		if cut > r.low {
			r.low = cut
		}
	}
	r.stats.Delivered++
	r.cfg.Deliver(transport.Delivery{
		Stream:      r.cfg.Stream,
		Seq:         pkt.Seq,
		Payload:     r.arena.Copy(pkt.Payload),
		SentAt:      pkt.SentAt,
		DeliveredAt: r.cfg.Env.Now(),
	})
}
