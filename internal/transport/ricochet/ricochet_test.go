package ricochet_test

import (
	"fmt"
	"testing"
	"time"

	"adamant/internal/env"
	"adamant/internal/sim"
	"adamant/internal/transport"
	"adamant/internal/transport/ricochet"
	"adamant/internal/transport/transporttest"
	"adamant/internal/wire"
)

type harness struct {
	k        *sim.Kernel
	e        *env.SimEnv
	fab      *transporttest.Fabric
	sender   *ricochet.Sender
	recvs    []*ricochet.Receiver
	delivery [][]transport.Delivery
}

// classic returns options for fixed-R group semantics: no stagger, no
// flush timer, negligible processing costs — the configuration the
// protocol-mechanics tests are written against.
func classic(o ricochet.Options) ricochet.Options {
	o.Stagger = -1
	o.Flush = -1
	if o.ProcCost == 0 {
		o.ProcCost = 1
	}
	if o.DecodeCost == 0 {
		o.DecodeCost = 1
	}
	return o
}

// newHarness builds one sender (node 0) and n receivers (nodes 1..n) over a
// 1ms-delay fabric.
func newHarness(t *testing.T, n int, opts ricochet.Options) *harness {
	t.Helper()
	h := &harness{k: sim.New(1)}
	h.e = env.NewSim(h.k)
	h.fab = transporttest.New(h.e, time.Millisecond)
	receiverIDs := make([]wire.NodeID, n)
	for i := range receiverIDs {
		receiverIDs[i] = wire.NodeID(i + 1)
	}
	var err error
	h.sender, err = ricochet.NewSender(transport.Config{
		Env: h.e, Endpoint: h.fab.Endpoint(0), Stream: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	h.delivery = make([][]transport.Delivery, n)
	for i := 0; i < n; i++ {
		i := i
		r, err := ricochet.NewReceiver(transport.Config{
			Env:       h.e,
			Endpoint:  h.fab.Endpoint(wire.NodeID(i + 1)),
			Stream:    1,
			SenderID:  0,
			Receivers: transport.StaticReceivers(receiverIDs...),
			Deliver:   func(d transport.Delivery) { h.delivery[i] = append(h.delivery[i], d) },
		}, opts)
		if err != nil {
			t.Fatal(err)
		}
		h.recvs = append(h.recvs, r)
	}
	return h
}

func (h *harness) publishN(t *testing.T, n int, gap time.Duration) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := h.sender.Publish([]byte(fmt.Sprintf("sample-%02d", i))); err != nil {
			t.Fatal(err)
		}
		if err := h.k.RunFor(gap); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.k.RunFor(5 * time.Second); err != nil {
		t.Fatal(err)
	}
}

func find(ds []transport.Delivery, seq uint64) (transport.Delivery, bool) {
	for _, d := range ds {
		if d.Seq == seq {
			return d, true
		}
	}
	return transport.Delivery{}, false
}

func TestLosslessImmediateDelivery(t *testing.T) {
	h := newHarness(t, 3, classic(ricochet.Options{R: 4, C: 2}))
	h.publishN(t, 20, 5*time.Millisecond)
	for i, ds := range h.delivery {
		if len(ds) != 20 {
			t.Fatalf("receiver %d delivered %d, want 20", i, len(ds))
		}
		for _, d := range ds {
			if d.Recovered {
				t.Errorf("receiver %d: seq %d marked recovered in lossless run", i, d.Seq)
			}
			if lat := d.Latency(); lat != time.Millisecond {
				t.Errorf("latency %v, want exactly the fabric delay (immediate delivery)", lat)
			}
		}
	}
}

func TestRepairsAreEmitted(t *testing.T) {
	h := newHarness(t, 3, classic(ricochet.Options{R: 4, C: 2}))
	h.publishN(t, 20, 5*time.Millisecond)
	for i, r := range h.recvs {
		st := r.Stats()
		// 20 packets / R=4 = 5 repair rounds, each to 1..2 distinct peers
		// (C=2 draws with replacement over 2 peers).
		if st.RepairsSent < 5 || st.RepairsSent > 10 {
			t.Errorf("receiver %d RepairsSent = %d, want 5..10", i, st.RepairsSent)
		}
		// Peers received everything directly, so repairs decode nothing.
		if st.RepairsUsed != 0 {
			t.Errorf("receiver %d RepairsUsed = %d, want 0", i, st.RepairsUsed)
		}
		if st.RepairsUseless == 0 {
			t.Errorf("receiver %d saw no repairs at all", i)
		}
	}
}

func TestSingleLossRecoveredLaterally(t *testing.T) {
	h := newHarness(t, 3, classic(ricochet.Options{R: 4, C: 2}))
	h.fab.Drop = func(from, to wire.NodeID, pkt *wire.Packet) bool {
		return pkt.Type == wire.TypeData && pkt.Seq == 2 && to == 1
	}
	h.publishN(t, 12, 5*time.Millisecond)
	ds := h.delivery[0]
	if len(ds) != 12 {
		t.Fatalf("delivered %d, want 12 (seq 2 must be repaired)", len(ds))
	}
	d, ok := find(ds, 2)
	if !ok {
		t.Fatal("seq 2 never delivered")
	}
	if !d.Recovered {
		t.Error("seq 2 not marked recovered")
	}
	if string(d.Payload) != "sample-01" {
		t.Errorf("recovered payload = %q, want %q", d.Payload, "sample-01")
	}
	// Latency reflects the original send time, so it includes the wait for
	// the covering repair (packets 1-4 at 5ms spacing, repair after seq 4).
	if lat := d.Latency(); lat < 10*time.Millisecond {
		t.Errorf("recovered latency %v, want >= ~10ms (repair wait)", lat)
	}
	if st := h.recvs[0].Stats(); st.RepairsUsed != 1 {
		t.Errorf("RepairsUsed = %d, want 1", st.RepairsUsed)
	}
	// Undamaged receivers deliver everything directly.
	for i := 1; i < 3; i++ {
		if len(h.delivery[i]) != 12 {
			t.Errorf("receiver %d delivered %d, want 12", i, len(h.delivery[i]))
		}
	}
}

func TestNoHeadOfLineBlocking(t *testing.T) {
	h := newHarness(t, 3, classic(ricochet.Options{R: 4, C: 2}))
	h.fab.Drop = func(from, to wire.NodeID, pkt *wire.Packet) bool {
		return pkt.Type == wire.TypeData && pkt.Seq == 2 && to == 1
	}
	h.publishN(t, 8, 5*time.Millisecond)
	ds := h.delivery[0]
	d3, ok := find(ds, 3)
	if !ok {
		t.Fatal("seq 3 missing")
	}
	if lat := d3.Latency(); lat != time.Millisecond {
		t.Errorf("seq 3 latency %v; Ricochet must not head-of-line block", lat)
	}
	// Delivery order is arrival order: 3 comes before the recovered 2.
	pos := map[uint64]int{}
	for i, d := range ds {
		pos[d.Seq] = i
	}
	if pos[3] > pos[2] {
		t.Error("seq 3 delivered after recovered seq 2; expected immediate delivery")
	}
}

func TestTwoLossesInOneGroupUnrecoverable(t *testing.T) {
	h := newHarness(t, 3, classic(ricochet.Options{R: 4, C: 2}))
	h.fab.Drop = func(from, to wire.NodeID, pkt *wire.Packet) bool {
		return pkt.Type == wire.TypeData && to == 1 && (pkt.Seq == 2 || pkt.Seq == 3)
	}
	h.publishN(t, 8, 5*time.Millisecond)
	ds := h.delivery[0]
	if _, ok := find(ds, 2); ok {
		t.Error("seq 2 recovered despite double loss in its XOR group")
	}
	if _, ok := find(ds, 3); ok {
		t.Error("seq 3 recovered despite double loss in its XOR group")
	}
	if len(ds) != 6 {
		t.Errorf("delivered %d, want 6 (residual loss is expected)", len(ds))
	}
}

func TestPendingRepairCascade(t *testing.T) {
	// Receiver 1 misses seqs 4 and 5. A repair covering [5..8] first
	// decodes 5, which must then unlock a buffered repair covering [2..5]
	// wait... [1..4] style alignment gives us 4: we inject repairs by hand
	// to exercise the cascade deterministically.
	h := newHarness(t, 2, classic(ricochet.Options{R: 4, C: 1}))
	h.fab.Drop = func(from, to wire.NodeID, pkt *wire.Packet) bool {
		if to != 1 {
			return false
		}
		// Receiver 1 (index 0) loses 4 and 5, and all organic repairs, so
		// only our handcrafted ones count.
		if pkt.Type == wire.TypeData && (pkt.Seq == 4 || pkt.Seq == 5) {
			return true
		}
		return pkt.Type == wire.TypeRepair && pkt.Src != 0
	}
	h.publishN(t, 8, 5*time.Millisecond)
	if len(h.delivery[0]) != 6 {
		t.Fatalf("precondition: delivered %d, want 6", len(h.delivery[0]))
	}

	// Build repairs from the sender's actual packets: repairA covers 2-5
	// (two missing -> stuck), repairB covers 5-8 (one missing -> decodes).
	mkRepair := func(lo, hi uint64) *wire.Packet {
		var rep wire.Repair
		for s := lo; s <= hi; s++ {
			rep.AddPacket(&wire.Packet{
				Seq:     s,
				SentAt:  sim.Epoch.Add(time.Duration(s) * time.Millisecond),
				Payload: []byte(fmt.Sprintf("sample-%02d", s-1)),
			})
		}
		body, err := rep.Encode(nil)
		if err != nil {
			t.Fatal(err)
		}
		return &wire.Packet{Type: wire.TypeRepair, Src: 0, Stream: 1, Seq: hi,
			SentAt: h.k.Now(), Payload: body}
	}
	// The receiver's window holds the *delivered* payloads (its own copies
	// with real SentAt values); our handcrafted packets must XOR-match, so
	// rebuild them from what the receiver actually has: payloads are
	// deterministic and SentAt values come from the sender's publishes.
	// Instead of reverse-engineering timestamps, drive the cascade with the
	// receiver's own data: drop only repairs, then inject the sender-built
	// repair sequence.
	sentAts := make(map[uint64]time.Time)
	for _, d := range h.delivery[0] {
		sentAts[d.Seq] = d.SentAt
	}
	mk := func(lo, hi uint64) *wire.Packet {
		var rep wire.Repair
		for s := lo; s <= hi; s++ {
			at, ok := sentAts[s]
			if !ok {
				// Missing at the receiver: reconstructed from the sibling
				// publish cadence (publishes are 5ms apart starting at
				// Epoch).
				at = sim.Epoch.Add(time.Duration(s-1) * 5 * time.Millisecond)
			}
			rep.AddPacket(&wire.Packet{
				Seq:     s,
				SentAt:  at,
				Payload: []byte(fmt.Sprintf("sample-%02d", s-1)),
			})
		}
		body, err := rep.Encode(nil)
		if err != nil {
			t.Fatal(err)
		}
		return &wire.Packet{Type: wire.TypeRepair, Src: 0, Stream: 1, Seq: hi,
			SentAt: h.k.Now(), Payload: body}
	}
	_ = mkRepair
	h.fab.Drop = nil
	if err := h.fab.Endpoint(0).Unicast(1, mk(2, 5)); err != nil { // stuck: misses 4,5
		t.Fatal(err)
	}
	if err := h.k.RunFor(10 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(h.delivery[0]) != 6 {
		t.Fatalf("stuck repair should not decode yet; delivered %d", len(h.delivery[0]))
	}
	if err := h.fab.Endpoint(0).Unicast(1, mk(5, 8)); err != nil { // decodes 5, cascades to 4
		t.Fatal(err)
	}
	if err := h.k.RunFor(10 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	ds := h.delivery[0]
	if len(ds) != 8 {
		t.Fatalf("cascade failed: delivered %d, want 8", len(ds))
	}
	d4, _ := find(ds, 4)
	d5, _ := find(ds, 5)
	if !d4.Recovered || !d5.Recovered {
		t.Error("cascaded packets not marked recovered")
	}
	if string(d4.Payload) != "sample-03" || string(d5.Payload) != "sample-04" {
		t.Errorf("cascade payloads wrong: %q, %q", d4.Payload, d5.Payload)
	}
}

func TestDuplicateSuppression(t *testing.T) {
	h := newHarness(t, 1, classic(ricochet.Options{R: 4, C: 1}))
	for i := 0; i < 5; i++ {
		if err := h.sender.Publish([]byte("x")); err != nil {
			t.Fatal(err)
		}
		dup := &wire.Packet{Type: wire.TypeData, Src: 0, Stream: 1,
			Seq: h.sender.Seq(), SentAt: h.k.Now(), Payload: []byte("x")}
		if err := h.fab.Endpoint(0).Multicast(dup); err != nil {
			t.Fatal(err)
		}
		if err := h.k.RunFor(5 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(h.delivery[0]); got != 5 {
		t.Errorf("delivered %d, want 5", got)
	}
	if st := h.recvs[0].Stats(); st.Duplicates != 5 {
		t.Errorf("Duplicates = %d, want 5", st.Duplicates)
	}
}

func TestRepairTargetsRespectC(t *testing.T) {
	// 6 receivers, C=2: each repair round sends at most 2 unicasts (C
	// draws with replacement, deduplicated).
	h := newHarness(t, 6, classic(ricochet.Options{R: 4, C: 2}))
	h.publishN(t, 8, 5*time.Millisecond)
	for i, r := range h.recvs {
		if st := r.Stats(); st.RepairsSent < 2 || st.RepairsSent > 4 { // 2 rounds x 1..2
			t.Errorf("receiver %d RepairsSent = %d, want 2..4", i, st.RepairsSent)
		}
	}
}

func TestSingleReceiverNoRepairs(t *testing.T) {
	h := newHarness(t, 1, classic(ricochet.Options{R: 2, C: 3}))
	h.publishN(t, 10, 2*time.Millisecond)
	if st := h.recvs[0].Stats(); st.RepairsSent != 0 {
		t.Errorf("RepairsSent = %d with no peers", st.RepairsSent)
	}
	if len(h.delivery[0]) != 10 {
		t.Errorf("delivered %d, want 10", len(h.delivery[0]))
	}
}

func TestWindowEviction(t *testing.T) {
	h := newHarness(t, 2, classic(ricochet.Options{R: 4, C: 1, Window: 16}))
	h.publishN(t, 100, time.Millisecond)
	if len(h.delivery[0]) != 100 {
		t.Fatalf("delivered %d, want 100", len(h.delivery[0]))
	}
	// Replay an ancient packet: must be rejected as out-of-window.
	stale := &wire.Packet{Type: wire.TypeData, Src: 0, Stream: 1, Seq: 1,
		SentAt: h.k.Now(), Payload: []byte("stale")}
	if err := h.fab.Endpoint(0).Multicast(stale); err != nil {
		t.Fatal(err)
	}
	if err := h.k.RunFor(10 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(h.delivery[0]) != 100 {
		t.Error("stale packet was re-delivered")
	}
	st := h.recvs[0].Stats()
	if st.OutOfWindow == 0 && st.Duplicates == 0 {
		t.Error("stale packet not counted")
	}
}

func TestStreamFiltering(t *testing.T) {
	h := newHarness(t, 1, classic(ricochet.Options{R: 4, C: 1}))
	other := &wire.Packet{Type: wire.TypeData, Src: 0, Stream: 99, Seq: 1,
		SentAt: h.k.Now(), Payload: []byte("other-stream")}
	if err := h.fab.Endpoint(0).Multicast(other); err != nil {
		t.Fatal(err)
	}
	if err := h.k.RunFor(10 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(h.delivery[0]) != 0 {
		t.Error("delivered a packet from a foreign stream")
	}
}

func TestPublishAfterClose(t *testing.T) {
	h := newHarness(t, 1, classic(ricochet.Options{}))
	if err := h.sender.Close(); err != nil {
		t.Fatal(err)
	}
	if err := h.sender.Publish([]byte("x")); err == nil {
		t.Error("Publish after Close should error")
	}
	if err := h.recvs[0].Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSpecAndParseOptions(t *testing.T) {
	spec := ricochet.Spec(4, 3)
	if spec.String() != "ricochet(c=3,r=4)" {
		t.Errorf("Spec = %q", spec.String())
	}
	o, err := ricochet.ParseOptions(spec.Params)
	if err != nil || o.R != 4 || o.C != 3 {
		t.Errorf("ParseOptions: %+v, %v", o, err)
	}
	for _, bad := range []transport.Params{
		{"r": "1"},                // r < 2
		{"c": "0"},                // c < 1
		{"r": "8", "window": "4"}, // window < r
		{"r": "x"},                // unparsable
		{"c": "y"},                // unparsable
		{"window": "zz"},          // unparsable
	} {
		if _, err := ricochet.ParseOptions(bad); err == nil {
			t.Errorf("ParseOptions(%v) should error", bad)
		}
	}
}

func TestFactoryBuildsInstances(t *testing.T) {
	f := ricochet.Factory()
	if f.Name != ricochet.Name || !f.Props.Has(transport.PropFEC) {
		t.Errorf("factory metadata wrong: %q %v", f.Name, f.Props)
	}
	k := sim.New(1)
	e := env.NewSim(k)
	fab := transporttest.New(e, time.Millisecond)
	s, err := f.NewSender(transport.Config{Env: e, Endpoint: fab.Endpoint(0), Stream: 1},
		transport.Params{"r": "4", "c": "3"})
	if err != nil || s == nil {
		t.Fatalf("NewSender: %v", err)
	}
	if _, err := f.NewSender(transport.Config{Env: e, Endpoint: fab.Endpoint(0)},
		transport.Params{"r": "bad"}); err == nil {
		t.Error("bad params should fail")
	}
	r, err := f.NewReceiver(transport.Config{Env: e, Endpoint: fab.Endpoint(1), Stream: 1,
		Receivers: transport.StaticReceivers(1), Deliver: func(transport.Delivery) {}},
		transport.Params{})
	if err != nil || r == nil {
		t.Fatalf("NewReceiver: %v", err)
	}
}

func TestHigherRLowersRepairTrafficButWeakensRecovery(t *testing.T) {
	run := func(r int, dropEvery uint64) (recovered uint64, repairs uint64) {
		h := newHarness(t, 3, classic(ricochet.Options{R: r, C: 2}))
		h.fab.Drop = func(from, to wire.NodeID, pkt *wire.Packet) bool {
			return pkt.Type == wire.TypeData && to == 1 && pkt.Seq%dropEvery == 0
		}
		h.publishN(t, 64, 2*time.Millisecond)
		st := h.recvs[0].Stats()
		return st.Recovered, h.recvs[1].Stats().RepairsSent
	}
	_, repairsR4 := run(4, 9)
	_, repairsR8 := run(8, 9)
	if repairsR8 >= repairsR4 {
		t.Errorf("R=8 repairs (%d) should be fewer than R=4 (%d)", repairsR8, repairsR4)
	}
	recR4, _ := run(4, 9)
	if recR4 == 0 {
		t.Error("R=4 recovered nothing at 1/9 loss")
	}
}
