package ricochet_test

import (
	"testing"
	"time"

	"adamant/internal/transport/ricochet"
	"adamant/internal/wire"
)

func TestFlushEmitsPartialRepairs(t *testing.T) {
	// At a 100ms inter-arrival with an 8ms flush, every packet should be
	// covered by a singleton repair long before the R=4 group would fill.
	h := newHarness(t, 2, ricochet.Options{R: 4, C: 2, Flush: 8 * time.Millisecond,
		Stagger: -1, ProcCost: 1, DecodeCost: 1})
	h.fab.Drop = func(from, to wire.NodeID, pkt *wire.Packet) bool {
		return pkt.Type == wire.TypeData && pkt.Seq == 2 && to == 1
	}
	h.publishN(t, 4, 100*time.Millisecond)
	ds := h.delivery[0]
	if len(ds) != 4 {
		t.Fatalf("delivered %d, want 4 (flush repair must recover seq 2)", len(ds))
	}
	d, ok := find(ds, 2)
	if !ok || !d.Recovered {
		t.Fatal("seq 2 not recovered")
	}
	// Recovery must be flush-bound (~8ms + delivery hops), NOT group-bound
	// (which would be ~300ms at this rate).
	if lat := d.Latency(); lat > 40*time.Millisecond {
		t.Errorf("recovered latency %v; flush-bound recovery should be ~10ms", lat)
	}
}

func TestFlushDisabledKeepsGroupSemantics(t *testing.T) {
	// With Flush < 0 and only 3 of R=4 packets published, no repairs are
	// ever emitted.
	h := newHarness(t, 2, classic(ricochet.Options{R: 4, C: 2}))
	h.publishN(t, 3, 5*time.Millisecond)
	for i, r := range h.recvs {
		if st := r.Stats(); st.RepairsSent != 0 {
			t.Errorf("receiver %d sent %d repairs with flush disabled and partial group", i, st.RepairsSent)
		}
	}
}

func TestStaggerOffsetsGroups(t *testing.T) {
	// With auto stagger, node IDs 1 and 2 skip 1 and 2 packets before
	// their first R=4 group. Publishing 9 packets gives node 1 groups
	// [2..5],[6..9] (2 repairs) and node 2 groups [3..6] (+partial).
	h := newHarness(t, 2, ricochet.Options{R: 4, C: 2, Flush: -1,
		ProcCost: 1, DecodeCost: 1})
	h.publishN(t, 9, 5*time.Millisecond)
	s1 := h.recvs[0].Stats().RepairsSent
	s2 := h.recvs[1].Stats().RepairsSent
	if s1 == 0 {
		t.Error("node 1 emitted no repairs")
	}
	if s1 <= s2 {
		t.Errorf("stagger should give node 1 (offset 1) more completed groups than node 2 (offset 2): %d vs %d", s1, s2)
	}
}

func TestStaggeredPeerRecoversShiftedDoubleLoss(t *testing.T) {
	// Receiver 1 (stagger 1, groups [2..5]...) loses seqs 4 and 5 — a
	// double loss within ITS group. Receiver 2 (stagger 2, groups
	// [3..6],[7..10]) covers 4,5 in separate... both in [3..6]. Receiver 3
	// (stagger 3, groups [4..7]) also has both. Use explicit staggers so
	// peer groups are [5..8] for one peer: then 4 is in no group... This
	// exercises the cascade: peer repairs with shifted boundaries decode
	// one loss, unlocking a buffered repair for the other.
	h := newHarness(t, 3, ricochet.Options{R: 2, C: 3, Flush: -1,
		ProcCost: 1, DecodeCost: 1})
	// R=2, auto stagger by id: node1 offset 1: groups [2,3],[4,5],[6,7]...
	// node2 offset 0 (2%2): [1,2],[3,4],[5,6]... node3 offset 1: like node1.
	h.fab.Drop = func(from, to wire.NodeID, pkt *wire.Packet) bool {
		return pkt.Type == wire.TypeData && to == 1 && (pkt.Seq == 4 || pkt.Seq == 5)
	}
	h.publishN(t, 8, 5*time.Millisecond)
	ds := h.delivery[0]
	if len(ds) != 8 {
		t.Fatalf("delivered %d, want 8 (shifted groups must recover both)", len(ds))
	}
	d4, _ := find(ds, 4)
	d5, _ := find(ds, 5)
	if !d4.Recovered || !d5.Recovered {
		t.Error("double loss not recovered via shifted peer groups")
	}
}

func TestDecodeCostDelaysRecoveredDelivery(t *testing.T) {
	h := newHarness(t, 2, ricochet.Options{R: 2, C: 2, Flush: -1, Stagger: -1,
		ProcCost: 1, DecodeCost: 30 * time.Millisecond})
	h.fab.Drop = func(from, to wire.NodeID, pkt *wire.Packet) bool {
		return pkt.Type == wire.TypeData && pkt.Seq == 1 && to == 1
	}
	h.publishN(t, 2, 5*time.Millisecond)
	d, ok := find(h.delivery[0], 1)
	if !ok {
		t.Fatal("seq 1 not recovered")
	}
	// The fabric's ScaleCPU is identity, so the recovered delivery must be
	// delayed by >= the 30ms decode-path cost.
	if lat := d.Latency(); lat < 30*time.Millisecond {
		t.Errorf("recovered latency %v, want >= 30ms decode-path delay", lat)
	}
	if direct, ok := find(h.delivery[0], 2); ok && direct.Latency() > 5*time.Millisecond {
		t.Errorf("direct delivery latency %v; decode path must not block the receive path", direct.Latency())
	}
}
