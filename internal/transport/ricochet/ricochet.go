// Package ricochet implements the Ricochet transport protocol (Balakrishnan
// et al., NSDI 2007) as used by the ANT framework: a bimodal multicast with
// Lateral Error Correction (LEC), a receiver-to-receiver forward-error-
// correction scheme.
//
// The sender multicasts data packets and never retransmits. Each receiver
// XORs every R directly-received packets into a repair packet and unicasts
// it to C randomly chosen peer receivers. A receiver missing exactly one of
// a repair's covered packets reconstructs it locally — recovery latency is
// receiver-to-receiver, decoupled from the sender's round trip.
//
// R and C are the protocol's tunables (the paper evaluates R=4,C=3 and
// R=8,C=3): R trades repair traffic and CPU against the probability that
// two losses land in one XOR group (unrecoverable by a single repair);
// C trades repair fan-out against per-receiver recovery probability.
//
// Delivery is immediate and unordered (time-critical mode): data packets go
// to the application the instant they arrive, recovered packets when they
// decode. Packets that no repair can reconstruct stay lost — Ricochet
// provides probabilistic, not absolute, reliability; that is exactly the
// latency/reliability trade the composite ReLate2 metrics score.
package ricochet

import (
	"fmt"
	"math/rand"
	"time"

	"adamant/internal/env"
	"adamant/internal/transport"
	"adamant/internal/wire"
)

// Name is the protocol's registry/spec name.
const Name = "ricochet"

// Props advertises Ricochet's transport properties.
const Props = transport.PropMulticast | transport.PropFEC

// Defaults for Options fields left zero.
const (
	DefaultR      = 4
	DefaultC      = 3
	DefaultWindow = 4096

	// DefaultProcCost models the reference-machine CPU time the LEC
	// receiver spends per directly received data packet: window insert,
	// group bookkeeping, XOR accumulation, and its share of repair-stream
	// handling in the managed-runtime Ricochet implementation the paper
	// plugs into DDS. It is the dominant reason Ricochet's latency
	// advantage shrinks on slow (pc850-class) nodes; see DESIGN.md
	// ("calibration targets") for how this constant was fit.
	DefaultProcCost = 300 * time.Microsecond
	// DefaultDecodeCost is the per-recovery lateral-repair path cost at
	// reference speed: buffered-repair scan, XOR reconstruction, and
	// reassembly on the implementation's background recovery thread. It
	// delays recovered deliveries (machine-scaled) without occupying the
	// receive path.
	DefaultDecodeCost = 13 * time.Millisecond
	// DefaultFlush bounds how long a partially filled XOR group may sit
	// before its repair is sent anyway. Without it, recovery latency at
	// low data rates would be R packet intervals; with it, low-rate
	// repairs degenerate toward per-packet lateral copies (Slingshot-
	// style), which is what keeps Ricochet's recovery latency low at
	// 10-25 Hz.
	DefaultFlush = 8 * time.Millisecond

	maxPendingRepairs = 256
	repairBuildWork   = 60 * time.Microsecond
	repairPerByteWork = 20 * time.Nanosecond
	repairRecvWork    = 600 * time.Microsecond
)

// Options are Ricochet's tunables.
type Options struct {
	// R is the number of directly received packets XORed into one repair.
	R int
	// C is the number of peer receivers each repair is sent to.
	C int
	// Window is the receiver packet cache size used for XOR decoding and
	// duplicate suppression.
	Window int
	// ProcCost is the per-data-packet receiver processing cost at
	// reference-machine speed; deliveries are delayed by the scaled cost.
	ProcCost time.Duration
	// DecodeCost is the per-recovery decode cost at reference speed.
	DecodeCost time.Duration
	// Flush bounds the age of a partial XOR group before its repair is
	// emitted anyway. Negative disables the flush timer (classic fixed-R
	// grouping).
	Flush time.Duration
	// Stagger offsets this receiver's first XOR group: 0 derives the
	// offset from the node ID (default; peers' group boundaries then
	// interleave), -1 disables staggering, positive values are explicit.
	Stagger int
}

func (o *Options) fillDefaults() {
	if o.R <= 0 {
		o.R = DefaultR
	}
	if o.C <= 0 {
		o.C = DefaultC
	}
	if o.Window <= 0 {
		o.Window = DefaultWindow
	}
	if o.ProcCost == 0 {
		o.ProcCost = DefaultProcCost
	}
	if o.DecodeCost == 0 {
		o.DecodeCost = DefaultDecodeCost
	}
	if o.Flush == 0 {
		o.Flush = DefaultFlush
	}
}

// staggerFor resolves the initial group offset for a node.
func (o Options) staggerFor(id wire.NodeID) int {
	switch {
	case o.Stagger < 0:
		return 0
	case o.Stagger > 0:
		return o.Stagger % o.R
	default:
		return int(id) % o.R
	}
}

// Spec returns the canonical transport.Spec for an (R, C) pair, e.g.
// Spec(4, 3) == "ricochet(c=3,r=4)".
func Spec(r, c int) transport.Spec {
	return transport.Spec{Name: Name, Params: transport.Params{
		"r": fmt.Sprintf("%d", r),
		"c": fmt.Sprintf("%d", c),
	}}
}

// ParseOptions extracts Options from spec params.
func ParseOptions(p transport.Params) (Options, error) {
	var o Options
	var err error
	if o.R, err = p.Int("r", DefaultR); err != nil {
		return o, err
	}
	if o.C, err = p.Int("c", DefaultC); err != nil {
		return o, err
	}
	if o.Window, err = p.Int("window", DefaultWindow); err != nil {
		return o, err
	}
	if o.ProcCost, err = p.Duration("proc", DefaultProcCost); err != nil {
		return o, err
	}
	if o.DecodeCost, err = p.Duration("decode", DefaultDecodeCost); err != nil {
		return o, err
	}
	if o.Flush, err = p.Duration("flush", DefaultFlush); err != nil {
		return o, err
	}
	if o.Stagger, err = p.Int("stagger", 0); err != nil {
		return o, err
	}
	if o.R < 2 {
		return o, fmt.Errorf("ricochet: r must be >= 2, got %d", o.R)
	}
	if o.C < 1 {
		return o, fmt.Errorf("ricochet: c must be >= 1, got %d", o.C)
	}
	if o.Window < o.R {
		return o, fmt.Errorf("ricochet: window %d smaller than r %d", o.Window, o.R)
	}
	return o, nil
}

// Factory returns the registry factory for Ricochet.
func Factory() *transport.Factory {
	return &transport.Factory{
		Name:  Name,
		Props: Props,
		NewSender: func(cfg transport.Config, params transport.Params) (transport.Sender, error) {
			if _, err := ParseOptions(params); err != nil {
				return nil, err
			}
			return NewSender(cfg)
		},
		NewReceiver: func(cfg transport.Config, params transport.Params) (transport.Receiver, error) {
			o, err := ParseOptions(params)
			if err != nil {
				return nil, err
			}
			return NewReceiver(cfg, o)
		},
	}
}

// Sender is the writer-side Ricochet instance: pure multicast with sequence
// numbering; all recovery is lateral among receivers.
type Sender struct {
	cfg    transport.Config
	seq    uint64
	arena  transport.Arena
	closed bool
}

var _ transport.Sender = (*Sender)(nil)

// NewSender builds a Ricochet sender on cfg.Endpoint.
func NewSender(cfg transport.Config) (*Sender, error) {
	if err := cfg.ValidateSender(); err != nil {
		return nil, err
	}
	return &Sender{cfg: cfg, seq: cfg.BaseSeq}, nil
}

// Publish implements transport.Sender.
func (s *Sender) Publish(payload []byte) error {
	if s.closed {
		return transport.ErrClosed
	}
	s.seq++
	pkt := &wire.Packet{
		Type:    wire.TypeData,
		Src:     s.cfg.Endpoint.Local(),
		Stream:  s.cfg.Stream,
		Seq:     s.seq,
		SentAt:  s.cfg.Env.Now(),
		Payload: s.arena.Copy(payload),
	}
	return s.cfg.Endpoint.Multicast(pkt)
}

// Seq implements transport.Sender.
func (s *Sender) Seq() uint64 { return s.seq }

// Close implements transport.Sender.
func (s *Sender) Close() error {
	s.closed = true
	return nil
}

// Receiver is the reader-side Ricochet instance.
type Receiver struct {
	cfg  transport.Config
	opts Options
	mux  *transport.Mux
	rng  *rand.Rand

	window   map[uint64]*wire.Packet // received + recovered packets, for XOR decode
	lowWater uint64                  // seqs <= lowWater evicted from window
	group    []*wire.Packet          // directly received packets since last repair
	pending  []*wire.Repair          // repairs that could not decode yet
	// stagger skips this many initial receptions before the first XOR
	// group so different receivers' group boundaries interleave (their
	// reception orders differ in practice), which both speeds recovery
	// and lets shifted repairs resolve double losses by cascade.
	stagger    int
	flushTimer env.Timer
	emitq      transport.EmitQueue

	stats  transport.ReceiverStats
	closed bool
}

var _ transport.Receiver = (*Receiver)(nil)

// NewReceiver builds a Ricochet receiver on cfg.Endpoint.
func NewReceiver(cfg transport.Config, opts Options) (*Receiver, error) {
	if err := cfg.ValidateReceiver(); err != nil {
		return nil, err
	}
	opts.fillDefaults()
	r := &Receiver{
		cfg:      cfg,
		opts:     opts,
		mux:      transport.NewMux(cfg.Endpoint),
		rng:      cfg.Env.Rand(fmt.Sprintf("ricochet/%d", cfg.Endpoint.Local())),
		window:   make(map[uint64]*wire.Packet),
		lowWater: cfg.BaseSeq,
		stagger:  opts.staggerFor(cfg.Endpoint.Local()),
	}
	r.emitq = transport.NewEmitQueue(cfg.Env, cfg.Deliver, &r.closed)
	r.mux.Handle(wire.TypeData, r.onData)
	r.mux.Handle(wire.TypeRepair, r.onRepair)
	return r, nil
}

// Stats implements transport.Receiver.
func (r *Receiver) Stats() transport.ReceiverStats { return r.stats }

// Close implements transport.Receiver.
func (r *Receiver) Close() error {
	r.closed = true
	if r.flushTimer != nil {
		r.flushTimer.Stop()
		r.flushTimer = nil
	}
	return nil
}

func (r *Receiver) onData(src wire.NodeID, pkt *wire.Packet) {
	if r.closed || pkt.Stream != r.cfg.Stream || pkt.Seq == 0 {
		return
	}
	if pkt.Seq <= r.lowWater {
		r.stats.OutOfWindow++
		return
	}
	if _, dup := r.window[pkt.Seq]; dup {
		r.stats.Duplicates++
		return
	}
	stored := pkt.Clone()
	r.store(stored)
	// Per-packet LEC processing consumes CPU; delivery lands when the
	// CPU is done with it.
	r.deliverAfter(r.cfg.Endpoint.Work(r.opts.ProcCost), stored, false)

	// Accumulate toward the next repair: every R direct receptions emit
	// one XOR repair to C random peers (lateral error correction). The
	// initial stagger offsets this receiver's group boundaries from its
	// peers'.
	if r.stagger > 0 {
		r.stagger--
	} else {
		r.group = append(r.group, stored)
		if len(r.group) >= r.opts.R {
			r.emitRepair()
		} else if len(r.group) == 1 && r.opts.Flush > 0 {
			// Age-bound the partial group so low-rate streams still get
			// timely repairs.
			r.armFlush()
		}
	}
	r.decodePending()
}

func (r *Receiver) armFlush() {
	if r.flushTimer != nil {
		r.flushTimer.Stop()
	}
	r.flushTimer = r.cfg.Env.After(r.opts.Flush, func() {
		r.flushTimer = nil
		if r.closed || len(r.group) == 0 {
			return
		}
		r.emitRepair()
	})
}

func (r *Receiver) emitRepair() {
	if r.flushTimer != nil {
		r.flushTimer.Stop()
		r.flushTimer = nil
	}
	peers := r.repairTargets()
	defer func() { r.group = r.group[:0] }()
	if len(peers) == 0 {
		return
	}
	var rep wire.Repair
	var bytes int
	for _, p := range r.group {
		rep.AddPacket(p)
		bytes += len(p.Payload)
	}
	r.cfg.Endpoint.Work(repairBuildWork + time.Duration(bytes)*repairPerByteWork)
	body, err := rep.Encode(nil)
	if err != nil {
		return
	}
	pkt := &wire.Packet{
		Type:    wire.TypeRepair,
		Src:     r.cfg.Endpoint.Local(),
		Stream:  r.cfg.Stream,
		Seq:     rep.Seqs[len(rep.Seqs)-1],
		SentAt:  r.cfg.Env.Now(),
		Payload: body,
	}
	for _, peer := range peers {
		if err := r.cfg.Endpoint.Unicast(peer, pkt); err != nil {
			continue
		}
		r.stats.RepairsSent++
	}
}

// repairTargets picks C random peer receivers with replacement (the
// original protocol's random targeting), deduplicated — so a repair may
// reach fewer than C distinct peers. The resulting imperfect coverage is
// part of Ricochet's probabilistic reliability.
func (r *Receiver) repairTargets() []wire.NodeID {
	if r.cfg.Receivers == nil {
		return nil
	}
	all := r.cfg.Receivers()
	peers := make([]wire.NodeID, 0, len(all))
	for _, id := range all {
		if id != r.cfg.Endpoint.Local() {
			peers = append(peers, id)
		}
	}
	if len(peers) <= 1 {
		return peers
	}
	chosen := make(map[wire.NodeID]bool, r.opts.C)
	targets := make([]wire.NodeID, 0, r.opts.C)
	for i := 0; i < r.opts.C; i++ {
		id := peers[r.rng.Intn(len(peers))]
		if !chosen[id] {
			chosen[id] = true
			targets = append(targets, id)
		}
	}
	return targets
}

func (r *Receiver) onRepair(src wire.NodeID, pkt *wire.Packet) {
	if r.closed || pkt.Stream != r.cfg.Stream {
		return
	}
	rep, err := wire.DecodeRepair(pkt.Payload)
	if err != nil {
		return
	}
	r.cfg.Endpoint.Work(repairRecvWork)
	switch r.tryDecode(rep) {
	case decodeDone, decodeUseless:
		// Either recovered a packet (and cascaded) or nothing to recover.
	case decodeStuck:
		if len(r.pending) >= maxPendingRepairs {
			r.pending = r.pending[1:]
		}
		r.pending = append(r.pending, rep)
	}
	r.decodePending()
}

type decodeResult int

const (
	decodeDone decodeResult = iota
	decodeUseless
	decodeStuck
)

// tryDecode attempts to reconstruct from one repair. decodeDone means a
// packet was recovered; decodeUseless means the repair covers nothing
// missing (or is stale); decodeStuck means >= 2 covered packets are missing.
func (r *Receiver) tryDecode(rep *wire.Repair) decodeResult {
	var missingSeq uint64
	missing := 0
	held := make([]*wire.Packet, 0, len(rep.Seqs)-1)
	for _, seq := range rep.Seqs {
		if p, ok := r.window[seq]; ok {
			held = append(held, p)
			continue
		}
		if seq <= r.lowWater {
			// Evicted: we cannot XOR it out, so the repair is dead.
			r.stats.RepairsUseless++
			return decodeUseless
		}
		missing++
		missingSeq = seq
	}
	switch missing {
	case 0:
		r.stats.RepairsUseless++
		return decodeUseless
	case 1:
		// The recovery path runs off the receive thread: scale its cost
		// to this machine without blocking data-packet processing.
		delay := r.cfg.Endpoint.ScaleCPU(r.opts.DecodeCost) + r.cfg.Endpoint.Work(repairRecvWork)
		sentAt, payload, err := rep.Reconstruct(held)
		if err != nil {
			r.stats.RepairsUseless++
			return decodeUseless
		}
		recovered := &wire.Packet{
			Type:    wire.TypeData,
			Flags:   wire.FlagRecovered,
			Stream:  r.cfg.Stream,
			Seq:     missingSeq,
			SentAt:  sentAt,
			Payload: payload,
		}
		r.store(recovered)
		r.deliverAfter(delay, recovered, true)
		r.stats.RepairsUsed++
		return decodeDone
	default:
		return decodeStuck
	}
}

// decodePending retries buffered repairs until a pass makes no progress.
func (r *Receiver) decodePending() {
	for {
		progress := false
		kept := r.pending[:0]
		for _, rep := range r.pending {
			switch r.tryDecode(rep) {
			case decodeDone:
				progress = true
			case decodeUseless:
				// drop
			case decodeStuck:
				kept = append(kept, rep)
			}
		}
		r.pending = kept
		if !progress {
			return
		}
	}
}

func (r *Receiver) store(pkt *wire.Packet) {
	r.window[pkt.Seq] = pkt
	r.stats.NoteBuffered(len(r.window) + len(r.pending))
	if len(r.window) > r.opts.Window {
		r.evict()
	}
}

// evict drops the oldest quarter of the window and advances lowWater. Any
// sequence number passing below the low-water mark without ever having been
// delivered is now permanently unrecoverable and reported via OnLost.
func (r *Receiver) evict() {
	seqs := make([]uint64, 0, len(r.window))
	for s := range r.window {
		seqs = append(seqs, s)
	}
	// Partial selection: find the cutoff at the 25th percentile.
	target := len(seqs) / 4
	if target == 0 {
		target = 1
	}
	cutoff := quickSelect(seqs, target)
	if r.cfg.OnLost != nil {
		for s := r.lowWater + 1; s <= cutoff; s++ {
			if _, held := r.window[s]; !held {
				r.stats.Abandoned++
				r.cfg.OnLost(s)
			}
		}
	}
	for s := range r.window {
		if s <= cutoff {
			delete(r.window, s)
		}
	}
	if cutoff > r.lowWater {
		r.lowWater = cutoff
	}
}

// deliverAfter hands the sample up once the CPU has finished its protocol
// processing (delay as reported by Endpoint.Work).
func (r *Receiver) deliverAfter(delay time.Duration, pkt *wire.Packet, recovered bool) {
	r.stats.Delivered++
	if recovered {
		r.stats.Recovered++
	}
	r.emitq.Emit(delay, transport.Delivery{
		Stream:    r.cfg.Stream,
		Seq:       pkt.Seq,
		Payload:   pkt.Payload,
		SentAt:    pkt.SentAt,
		Recovered: recovered,
	})
}

// quickSelect returns the k-th smallest value (1-based) of s, reordering s.
func quickSelect(s []uint64, k int) uint64 {
	lo, hi := 0, len(s)-1
	for lo < hi {
		pivot := s[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for s[i] < pivot {
				i++
			}
			for s[j] > pivot {
				j--
			}
			if i <= j {
				s[i], s[j] = s[j], s[i]
				i++
				j--
			}
		}
		if k-1 <= j {
			hi = j
		} else if k-1 >= i {
			lo = i
		} else {
			break
		}
	}
	return s[k-1]
}
