package transport

import (
	"fmt"
	"time"

	"adamant/internal/wire"
)

// Splitter multiplexes one physical endpoint among several stream-scoped
// consumers. Each DDS data writer/reader owns one stream, so giving every
// protocol instance a Route(stream) virtual endpoint lets many instances
// share a node's endpoint without fighting over SetHandler.
//
// Packets whose stream has no route go to the control route (stream 0) if
// one exists, else are dropped.
type Splitter struct {
	ep     Endpoint
	routes map[wire.StreamID]*streamEndpoint
}

// NewSplitter wraps ep and installs itself as its handler.
func NewSplitter(ep Endpoint) *Splitter {
	s := &Splitter{ep: ep, routes: make(map[wire.StreamID]*streamEndpoint)}
	ep.SetHandler(s.dispatch)
	return s
}

// Route returns the virtual endpoint for the given stream, creating it on
// first use.
func (s *Splitter) Route(stream wire.StreamID) Endpoint {
	if r, ok := s.routes[stream]; ok {
		return r
	}
	r := &streamEndpoint{parent: s, stream: stream}
	s.routes[stream] = r
	return r
}

// Underlying returns the wrapped physical endpoint.
func (s *Splitter) Underlying() Endpoint { return s.ep }

func (s *Splitter) dispatch(src wire.NodeID, pkt *wire.Packet) {
	if r, ok := s.routes[pkt.Stream]; ok {
		if r.handler != nil {
			r.handler(src, pkt)
		}
		return
	}
	if r, ok := s.routes[wire.ControlStream]; ok && r.handler != nil {
		r.handler(src, pkt)
	}
}

// streamEndpoint is a stream-scoped view of the physical endpoint.
type streamEndpoint struct {
	parent  *Splitter
	stream  wire.StreamID
	handler func(src wire.NodeID, pkt *wire.Packet)
}

var _ Endpoint = (*streamEndpoint)(nil)

func (r *streamEndpoint) Local() wire.NodeID { return r.parent.ep.Local() }
func (r *streamEndpoint) MTU() int           { return r.parent.ep.MTU() }

func (r *streamEndpoint) Unicast(dst wire.NodeID, pkt *wire.Packet) error {
	if pkt.Stream != r.stream {
		return fmt.Errorf("transport: stream endpoint %d cannot send stream %d", r.stream, pkt.Stream)
	}
	return r.parent.ep.Unicast(dst, pkt)
}

func (r *streamEndpoint) Multicast(pkt *wire.Packet) error {
	if pkt.Stream != r.stream {
		return fmt.Errorf("transport: stream endpoint %d cannot send stream %d", r.stream, pkt.Stream)
	}
	return r.parent.ep.Multicast(pkt)
}

func (r *streamEndpoint) Work(cost time.Duration) time.Duration { return r.parent.ep.Work(cost) }

func (r *streamEndpoint) ScaleCPU(d time.Duration) time.Duration { return r.parent.ep.ScaleCPU(d) }

func (r *streamEndpoint) SetHandler(h func(src wire.NodeID, pkt *wire.Packet)) { r.handler = h }
