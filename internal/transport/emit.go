package transport

import (
	"time"

	"adamant/internal/env"
)

// EmitQueue defers Delivery callbacks by a CPU-cost delay (the time
// Endpoint.Work reports until sequencing/holdback bookkeeping finishes)
// without allocating per delivery: deferred records are handed to
// env.ScheduleArg as pooled arguments instead of capturing closures, so the
// per-sample dispatch is allocation-free once the receiver is warm.
//
// An EmitQueue is bound to one receiver: closed points at the receiver's
// closed flag and is consulted at fire time, and DeliveredAt is stamped at
// fire time, both exactly as the closure-based dispatch did.
type EmitQueue struct {
	env     env.Env
	deliver DeliverFunc
	closed  *bool
	free    []*pendingEmit
}

// maxFreeEmits bounds the pool; a recovery burst can briefly queue many
// deliveries behind a slow CPU, but they drain in the same virtual instant.
const maxFreeEmits = 1024

type pendingEmit struct {
	q *EmitQueue
	d Delivery
}

// NewEmitQueue binds a queue to a receiver's deliver callback and closed
// flag. deliver may be nil only if Emit is never called.
func NewEmitQueue(e env.Env, deliver DeliverFunc, closed *bool) EmitQueue {
	return EmitQueue{env: e, deliver: deliver, closed: closed}
}

// emitPending is the static ScheduleArg callback: recycle first, then
// deliver, so a delivery that triggers further protocol work can reuse the
// record immediately.
func emitPending(a any) {
	p := a.(*pendingEmit)
	q := p.q
	d := p.d
	p.q = nil
	p.d = Delivery{}
	if len(q.free) < maxFreeEmits {
		q.free = append(q.free, p)
	}
	if !*q.closed {
		d.DeliveredAt = q.env.Now()
		q.deliver(d)
	}
}

// Emit delivers d after delay. DeliveredAt is stamped when the delivery
// actually fires; a non-positive delay delivers synchronously.
func (q *EmitQueue) Emit(delay time.Duration, d Delivery) {
	if delay <= 0 {
		if !*q.closed {
			d.DeliveredAt = q.env.Now()
			q.deliver(d)
		}
		return
	}
	var p *pendingEmit
	if n := len(q.free); n > 0 {
		p = q.free[n-1]
		q.free[n-1] = nil
		q.free = q.free[:n-1]
	} else {
		p = new(pendingEmit)
	}
	p.q = q
	p.d = d
	q.env.ScheduleArg(delay, emitPending, p)
}
