package transport_test

import (
	"testing"
	"time"

	"adamant/internal/env"
	"adamant/internal/sim"
	"adamant/internal/transport"
	"adamant/internal/transport/transporttest"
	"adamant/internal/wire"
)

func TestSplitterRoutesByStream(t *testing.T) {
	k := sim.New(1)
	e := env.NewSim(k)
	fab := transporttest.New(e, time.Millisecond)
	a, b := fab.Endpoint(0), fab.Endpoint(1)
	split := transport.NewSplitter(b)

	var s1, s2, ctl int
	split.Route(1).SetHandler(func(wire.NodeID, *wire.Packet) { s1++ })
	split.Route(2).SetHandler(func(wire.NodeID, *wire.Packet) { s2++ })
	split.Route(wire.ControlStream).SetHandler(func(wire.NodeID, *wire.Packet) { ctl++ })

	send := func(stream wire.StreamID) {
		pkt := &wire.Packet{Type: wire.TypeData, Src: 0, Stream: stream, Seq: 1, SentAt: k.Now()}
		if err := a.Unicast(1, pkt); err != nil {
			t.Fatal(err)
		}
	}
	send(1)
	send(1)
	send(2)
	send(0)
	send(99) // unrouted -> control route
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if s1 != 2 || s2 != 1 || ctl != 2 {
		t.Errorf("routes saw s1=%d s2=%d ctl=%d, want 2/1/2", s1, s2, ctl)
	}
}

func TestSplitterUnroutedDroppedWithoutControl(t *testing.T) {
	k := sim.New(1)
	e := env.NewSim(k)
	fab := transporttest.New(e, time.Millisecond)
	a, b := fab.Endpoint(0), fab.Endpoint(1)
	split := transport.NewSplitter(b)
	got := 0
	split.Route(1).SetHandler(func(wire.NodeID, *wire.Packet) { got++ })
	pkt := &wire.Packet{Type: wire.TypeData, Src: 0, Stream: 9, Seq: 1, SentAt: k.Now()}
	if err := a.Unicast(1, pkt); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Error("unrouted packet leaked to a stream route")
	}
}

func TestSplitterSendGuards(t *testing.T) {
	k := sim.New(1)
	e := env.NewSim(k)
	fab := transporttest.New(e, time.Millisecond)
	fab.Endpoint(1)
	split := transport.NewSplitter(fab.Endpoint(0))
	route := split.Route(1)
	wrong := &wire.Packet{Type: wire.TypeData, Stream: 2, Seq: 1, SentAt: k.Now()}
	if err := route.Unicast(1, wrong); err == nil {
		t.Error("cross-stream unicast should error")
	}
	if err := route.Multicast(wrong); err == nil {
		t.Error("cross-stream multicast should error")
	}
	right := &wire.Packet{Type: wire.TypeData, Stream: 1, Seq: 1, SentAt: k.Now()}
	if err := route.Multicast(right); err != nil {
		t.Errorf("same-stream multicast: %v", err)
	}
	if route.Local() != 0 || route.MTU() <= 0 {
		t.Error("identity passthrough wrong")
	}
	if split.Underlying().Local() != 0 {
		t.Error("Underlying wrong")
	}
	route.Work(time.Microsecond) // must not panic
	if split.Route(1) != route {
		t.Error("Route should return the same instance for the same stream")
	}
}
