package transport_test

import (
	"testing"
	"time"

	"adamant/internal/env"
	"adamant/internal/sim"
	"adamant/internal/transport"
	"adamant/internal/transport/protocols"
	"adamant/internal/transport/transporttest"
	"adamant/internal/wire"
)

// bindingRig is a one-writer/two-reader fabric with hot-swap bindings on
// both sides.
type bindingRig struct {
	k       *sim.Kernel
	fab     *transporttest.Fabric
	sender  *transport.SenderBinding
	readers [2]*transport.ReceiverBinding
	got     [2][]transport.Delivery
	lost    [2][]uint64
	changes [2][]string
}

func newBindingRig(t *testing.T, initial string) *bindingRig {
	t.Helper()
	reg := protocols.MustRegistry()
	spec, err := transport.ParseSpec(initial)
	if err != nil {
		t.Fatal(err)
	}
	rig := &bindingRig{k: sim.New(1)}
	e := env.NewSim(rig.k)
	rig.fab = transporttest.New(e, time.Millisecond)
	receivers := transport.StaticReceivers(1, 2)

	rig.sender, err = transport.NewSenderBinding(transport.BindingConfig{
		Config: transport.Config{
			Env: e, Endpoint: rig.fab.Endpoint(0), Stream: 1, Receivers: receivers,
		},
		Registry: reg,
		Spec:     spec,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		i := i
		rig.readers[i], err = transport.NewReceiverBinding(transport.BindingConfig{
			Config: transport.Config{
				Env: e, Endpoint: rig.fab.Endpoint(wire.NodeID(i + 1)), Stream: 1,
				SenderID: 0, Receivers: receivers,
				Deliver: func(d transport.Delivery) { rig.got[i] = append(rig.got[i], d) },
				OnLost:  func(seq uint64) { rig.lost[i] = append(rig.lost[i], seq) },
			},
			Registry: reg,
			Spec:     spec,
			OnTransportChanged: func(_ uint16, s transport.Spec) {
				rig.changes[i] = append(rig.changes[i], s.String())
			},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return rig
}

func (rig *bindingRig) publish(t *testing.T, n int, gap time.Duration) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := rig.sender.Publish([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		if err := rig.k.RunFor(gap); err != nil {
			t.Fatal(err)
		}
	}
}

func (rig *bindingRig) finish(t *testing.T) {
	t.Helper()
	if err := rig.sender.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rig.k.RunFor(10 * time.Second); err != nil {
		t.Fatal(err)
	}
}

// checkComplete asserts every receiver saw exactly seqs 1..total, strictly
// ascending (ordering across the swap) when ordered is true, with no
// duplicates either way.
func (rig *bindingRig) checkComplete(t *testing.T, total int, ordered bool) {
	t.Helper()
	for i := 0; i < 2; i++ {
		seen := make(map[uint64]bool, total)
		prev := uint64(0)
		for _, d := range rig.got[i] {
			if seen[d.Seq] {
				t.Errorf("receiver %d: duplicate seq %d", i, d.Seq)
			}
			seen[d.Seq] = true
			if ordered && d.Seq <= prev {
				t.Errorf("receiver %d: seq %d delivered after %d", i, d.Seq, prev)
			}
			prev = d.Seq
		}
		if len(rig.got[i]) != total {
			t.Errorf("receiver %d: delivered %d samples, want %d (lost %v)",
				i, len(rig.got[i]), total, rig.lost[i])
		}
		if st := rig.readers[i].Stats(); st.Delivered != uint64(len(rig.got[i])) {
			t.Errorf("receiver %d: Stats().Delivered = %d, app saw %d", i, st.Delivered, len(rig.got[i]))
		}
	}
}

func TestBindingCalmSwapOrderedToOrdered(t *testing.T) {
	rig := newBindingRig(t, "nakcast(timeout=2ms)")
	rig.publish(t, 20, 2*time.Millisecond)
	if err := rig.sender.Swap(mustSpec(t, "ackcast(window=16,rto=10ms)")); err != nil {
		t.Fatal(err)
	}
	rig.publish(t, 20, 2*time.Millisecond)
	rig.finish(t)

	rig.checkComplete(t, 40, true)
	if rig.sender.Epoch() != 1 || rig.sender.Swaps() != 1 {
		t.Errorf("sender epoch/swaps = %d/%d, want 1/1", rig.sender.Epoch(), rig.sender.Swaps())
	}
	chain := rig.sender.Chain()
	if len(chain) != 2 || chain[1].Cut != 20 || chain[1].Spec != "ackcast(rto=10ms,window=16)" {
		t.Errorf("chain = %+v", chain)
	}
	for i := 0; i < 2; i++ {
		if len(rig.changes[i]) != 1 || rig.changes[i][0] != "ackcast(rto=10ms,window=16)" {
			t.Errorf("receiver %d: TransportChanged calls = %v", i, rig.changes[i])
		}
		epochs := rig.readers[i].Epochs()
		if len(epochs) != 2 {
			t.Fatalf("receiver %d: %d epochs, want 2", i, len(epochs))
		}
		e0 := epochs[0]
		if !e0.Done || !e0.CutKnown || e0.Cut != 20 || e0.Base != 0 {
			t.Errorf("receiver %d: epoch 0 = %+v, want done with (0,20]", i, e0)
		}
	}
}

func TestBindingSwapToUnordered(t *testing.T) {
	rig := newBindingRig(t, "nakcast(timeout=2ms)")
	rig.publish(t, 15, 2*time.Millisecond)
	if err := rig.sender.Swap(mustSpec(t, "ricochet(r=4,c=1)")); err != nil {
		t.Fatal(err)
	}
	rig.publish(t, 15, 2*time.Millisecond)
	rig.finish(t)
	// Ricochet is unordered, so only completeness and uniqueness hold.
	rig.checkComplete(t, 30, false)
}

// TestBindingSwapWithAnnounceLoss drops the first two rebind announcements:
// new-epoch packets arriving before the chain is learned must be parked and
// replayed, not lost — even on the best-effort transport.
func TestBindingSwapWithAnnounceLoss(t *testing.T) {
	rig := newBindingRig(t, "bemcast")
	dropped := 0
	rig.fab.Drop = func(_, _ wire.NodeID, pkt *wire.Packet) bool {
		if pkt.Type == wire.TypeRebind && dropped < 4 {
			dropped++ // two receivers x two announcements
			return true
		}
		return false
	}
	rig.publish(t, 10, 2*time.Millisecond)
	if err := rig.sender.Swap(mustSpec(t, "nakcast(timeout=2ms)")); err != nil {
		t.Fatal(err)
	}
	rig.publish(t, 10, 2*time.Millisecond)
	rig.finish(t)
	if dropped != 4 {
		t.Fatalf("dropped %d announcements, want 4", dropped)
	}
	rig.checkComplete(t, 20, false)
	for i := 0; i < 2; i++ {
		if rig.readers[i].ParkedDrops() != 0 {
			t.Errorf("receiver %d: %d parked drops", i, rig.readers[i].ParkedDrops())
		}
	}
}

// TestBindingSwapDuringLoss drops a mid-stream run of old-epoch DATA to one
// receiver right before the swap: the closed old sender must still serve
// the NAK backfill, and the new epoch's deliveries must wait for it.
func TestBindingSwapDuringLoss(t *testing.T) {
	rig := newBindingRig(t, "nakcast(timeout=2ms)")
	rig.fab.Drop = func(_, to wire.NodeID, pkt *wire.Packet) bool {
		return to == 2 && pkt.Type == wire.TypeData && pkt.Seq >= 16 && pkt.Seq <= 19
	}
	rig.publish(t, 20, 2*time.Millisecond)
	if err := rig.sender.Swap(mustSpec(t, "ackcast(window=16,rto=10ms)")); err != nil {
		t.Fatal(err)
	}
	rig.publish(t, 20, 2*time.Millisecond)
	rig.finish(t)
	rig.checkComplete(t, 40, true)
	for i := 0; i < 2; i++ {
		epochs := rig.readers[i].Epochs()
		if !epochs[0].Done {
			t.Errorf("receiver %d: old epoch never drained: %+v", i, epochs[0])
		}
	}
	// Receiver 1 (node 2) recovered its gap via retransmission.
	if st := rig.readers[1].Stats(); st.Recovered == 0 {
		t.Error("receiver 1 recovered nothing despite dropped packets")
	}
}

// TestBindingFlappingSwaps performs back-to-back swaps (including an empty
// epoch with zero published samples) and checks the whole chain drains.
func TestBindingFlappingSwaps(t *testing.T) {
	rig := newBindingRig(t, "nakcast(timeout=2ms)")
	rig.publish(t, 8, 2*time.Millisecond)
	if err := rig.sender.Swap(mustSpec(t, "ackcast(window=16,rto=10ms)")); err != nil {
		t.Fatal(err)
	}
	// Swap again immediately: epoch 1 ends empty.
	if err := rig.sender.Swap(mustSpec(t, "nakcast(timeout=2ms)")); err != nil {
		t.Fatal(err)
	}
	rig.publish(t, 8, 2*time.Millisecond)
	if err := rig.sender.Swap(mustSpec(t, "bemcast")); err != nil {
		t.Fatal(err)
	}
	rig.publish(t, 8, 2*time.Millisecond)
	rig.finish(t)
	rig.checkComplete(t, 24, false)
	if got := rig.sender.Swaps(); got != 3 {
		t.Errorf("Swaps() = %d, want 3", got)
	}
	for i := 0; i < 2; i++ {
		epochs := rig.readers[i].Epochs()
		if len(epochs) != 4 {
			t.Fatalf("receiver %d: %d epochs, want 4", i, len(epochs))
		}
		if e1 := epochs[1]; !e1.Done || e1.Base != e1.Cut {
			t.Errorf("receiver %d: empty epoch 1 = %+v, want done with empty slice", i, e1)
		}
	}
}

func TestBindingSwapSameSpecIsNoOp(t *testing.T) {
	rig := newBindingRig(t, "nakcast(timeout=2ms)")
	rig.publish(t, 5, 2*time.Millisecond)
	if err := rig.sender.Swap(mustSpec(t, "nakcast(timeout=2ms)")); err != nil {
		t.Fatal(err)
	}
	if rig.sender.Swaps() != 0 || rig.sender.Epoch() != 0 {
		t.Errorf("same-spec swap changed state: swaps=%d epoch=%d", rig.sender.Swaps(), rig.sender.Epoch())
	}
	rig.finish(t)
	rig.checkComplete(t, 5, true)
}

func TestBindingClosedSwapFails(t *testing.T) {
	rig := newBindingRig(t, "bemcast")
	rig.finish(t)
	if err := rig.sender.Swap(mustSpec(t, "nakcast(timeout=2ms)")); err != transport.ErrClosed {
		t.Errorf("Swap after Close = %v, want ErrClosed", err)
	}
}

func TestBindingDrainLatencyReported(t *testing.T) {
	rig := newBindingRig(t, "nakcast(timeout=2ms)")
	rig.fab.Drop = func(_, to wire.NodeID, pkt *wire.Packet) bool {
		return to == 1 && pkt.Type == wire.TypeData && pkt.Seq == 10
	}
	rig.publish(t, 10, 2*time.Millisecond)
	if err := rig.sender.Swap(mustSpec(t, "ackcast(window=16,rto=10ms)")); err != nil {
		t.Fatal(err)
	}
	rig.publish(t, 5, 2*time.Millisecond)
	rig.finish(t)
	rig.checkComplete(t, 15, true)
	// Receiver 0 (node 1) had a tail loss pending at swap time, so its old
	// epoch drained strictly after the handoff.
	if e0 := rig.readers[0].Epochs()[0]; e0.DrainLatency <= 0 {
		t.Errorf("epoch 0 drain latency = %v, want > 0", e0.DrainLatency)
	}
}

func mustSpec(t *testing.T, s string) transport.Spec {
	t.Helper()
	spec, err := transport.ParseSpec(s)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}
