package protocols_test

import (
	"testing"
	"time"

	"adamant/internal/env"
	"adamant/internal/sim"
	"adamant/internal/transport"
	"adamant/internal/transport/protocols"
	"adamant/internal/transport/transporttest"
	"adamant/internal/wire"
)

func TestNewRegistryHasAllProtocols(t *testing.T) {
	reg, err := protocols.NewRegistry()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"ackcast", "bemcast", "fountcast", "nakcast", "ricochet"}
	got := reg.Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
}

func TestMustRegistry(t *testing.T) {
	if protocols.MustRegistry() == nil {
		t.Fatal("MustRegistry returned nil")
	}
}

// TestEveryProtocolEndToEnd runs each registered protocol through the same
// lossless one-sender/two-receiver exchange via the registry path.
func TestEveryProtocolEndToEnd(t *testing.T) {
	specs := []string{
		"bemcast",
		"nakcast(timeout=1ms)",
		"ricochet(r=4,c=2)",
		"ackcast(window=16,rto=10ms)",
	}
	for _, specStr := range specs {
		specStr := specStr
		t.Run(specStr, func(t *testing.T) {
			reg := protocols.MustRegistry()
			spec, err := transport.ParseSpec(specStr)
			if err != nil {
				t.Fatal(err)
			}
			k := sim.New(1)
			e := env.NewSim(k)
			fab := transporttest.New(e, time.Millisecond)
			receivers := transport.StaticReceivers(1, 2)

			s, err := reg.NewSender(spec, transport.Config{
				Env: e, Endpoint: fab.Endpoint(0), Stream: 1, Receivers: receivers,
			})
			if err != nil {
				t.Fatal(err)
			}
			var got [2][]transport.Delivery
			for i := 0; i < 2; i++ {
				i := i
				if _, err := reg.NewReceiver(spec, transport.Config{
					Env: e, Endpoint: fab.Endpoint(wire.NodeID(i + 1)), Stream: 1,
					SenderID: 0, Receivers: receivers,
					Deliver: func(d transport.Delivery) { got[i] = append(got[i], d) },
				}); err != nil {
					t.Fatal(err)
				}
			}
			for n := 0; n < 25; n++ {
				if err := s.Publish([]byte{byte(n)}); err != nil {
					t.Fatal(err)
				}
				if err := k.RunFor(2 * time.Millisecond); err != nil {
					t.Fatal(err)
				}
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			if err := k.RunFor(10 * time.Second); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 2; i++ {
				if len(got[i]) != 25 {
					t.Errorf("receiver %d delivered %d, want 25", i, len(got[i]))
				}
			}
		})
	}
}
