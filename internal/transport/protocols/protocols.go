// Package protocols wires every ANT transport protocol implementation into
// a transport.Registry. It exists so that registration is explicit (no
// init-time side effects) while callers still get the full protocol suite
// from one call.
package protocols

import (
	"fmt"

	"adamant/internal/transport"
	"adamant/internal/transport/ackcast"
	"adamant/internal/transport/bemcast"
	"adamant/internal/transport/fountcast"
	"adamant/internal/transport/nakcast"
	"adamant/internal/transport/ricochet"
)

// NewRegistry returns a registry with every built-in protocol registered:
// ricochet, nakcast, bemcast, ackcast, and fountcast.
func NewRegistry() (*transport.Registry, error) {
	reg := transport.NewRegistry()
	for _, f := range []*transport.Factory{
		ricochet.Factory(),
		nakcast.Factory(),
		bemcast.Factory(),
		ackcast.Factory(),
		fountcast.Factory(),
	} {
		if err := reg.Register(f); err != nil {
			return nil, fmt.Errorf("protocols: %w", err)
		}
	}
	return reg, nil
}

// MustRegistry is NewRegistry for program setup paths where failure is a
// programming error (duplicate registration cannot happen with the fixed
// built-in set).
func MustRegistry() *transport.Registry {
	reg, err := NewRegistry()
	if err != nil {
		panic(err)
	}
	return reg
}
