package conformance

import (
	"testing"

	"adamant/internal/netem/chaos"
)

// TestCrucibleMatrix runs every registered protocol through the full chaos
// scenario library: each cell executes twice (same seed, byte-identical
// outcomes required) and every invariant must hold. In -short mode the
// seed axis shrinks to one.
func TestCrucibleMatrix(t *testing.T) {
	seeds := []int64{1, 2}
	if testing.Short() {
		seeds = []int64{1}
	}
	cells := CrucibleCells(DefaultCrucibleSpecs(), chaos.Library(), seeds)
	results := RunCrucibleMatrix(cells, 0, nil)
	for _, res := range results {
		if res.Err != nil {
			t.Errorf("%s: %v", res.Cell.Name(), res.Err)
			continue
		}
		for _, f := range res.Failures {
			t.Errorf("%s: %s", res.Cell.Name(), f)
		}
	}
}

// TestCrucibleSeedSensitivity pins that the outcome hash responds to the
// seed on a lossy scenario — if two different seeds collide, the hash (and
// with it the replay guarantee) is vacuous.
func TestCrucibleSeedSensitivity(t *testing.T) {
	base := CrucibleScenario{
		Spec:  mustSpec("bemcast"),
		Chaos: chaos.LossyRamp(),
		Seed:  1,
	}
	a, err := ExecuteCrucible(base)
	if err != nil {
		t.Fatal(err)
	}
	base.Seed = 2
	b, err := ExecuteCrucible(base)
	if err != nil {
		t.Fatal(err)
	}
	if a.Hash == b.Hash {
		t.Fatalf("seeds 1 and 2 produced identical outcome hash %s", a.Hash)
	}
}
