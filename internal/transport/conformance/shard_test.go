package conformance

// Crucible-level coverage for the sharded engine. The equivalence tower
// below this file — sim-level (internal/sim/shard_test.go: single-lane
// Sharded is byte-identical to the plain Kernel), netem-level
// (internal/netem/shard_test.go: classic and sharded networks agree on
// every observable), and chaos-level (FuzzShardedKernel) — proves classic
// and sharded execution identical whenever same-instant arrivals from
// distinct sources do not contend for receiver CPU.
//
// The crucible's synchronized heartbeat timers break that precondition on
// purpose: every detector fires at exact multiples of the interval, so at
// tie instants a receiver sees the data packet and several heartbeats
// arrive on the same nanosecond. The classic kernel orders those ties by
// global arming order (the whole causal history threaded through one
// event counter); the sharded engine orders them by (source lane, source
// sequence). Both orders are fully deterministic, but they are different
// orders, so CPU queueing at tie instants shifts delivery timestamps
// between engines. The contract the crucible therefore pins is:
//
//  1. width-invariance: the sharded hash is identical at every worker
//     count (1, 2, 8) — parallelism is invisible;
//  2. replayability: same seed, same hash, every time (RunCell);
//  3. invariant conformance: sharded cells pass the full crucible
//     invariant set, including at group size 500;
//  4. protocol equivalence with classic where it is well-defined: on the
//     calm scenario the delivered sequence streams match exactly.
//
// Sharded cells carry /shards=N in their Name and get their own golden
// hash lines; the classic golden corpus is untouched.

import (
	"testing"
	"time"

	"adamant/internal/netem/chaos"
	"adamant/internal/transport"
)

// TestCrucibleShardWidthInvariance pins the worker-count contract end to
// end: the same cell at 1, 2, and 8 workers hashes identically. Together
// with the sim- and netem-level width tests this is the acceptance bar
// "output byte-identical at any shard count".
func TestCrucibleShardWidthInvariance(t *testing.T) {
	cells := []CrucibleScenario{
		{Spec: mustSpec("bemcast"), Chaos: chaos.CalmControl()},
		{Spec: mustSpec("nakcast(timeout=5ms)"), Chaos: chaos.SplitBrain()},
		{Spec: mustSpec("ackcast(window=64,rto=20ms)"), Chaos: chaos.Cascade()},
		{Spec: mustSpec("ricochet(c=3,r=4)"), Chaos: chaos.LossyRamp()},
		{
			Spec:     mustSpec("bemcast"),
			Chaos:    chaos.CalmControl(),
			Switches: []TransportSwitch{{At: 2000 * time.Millisecond, Spec: mustSpec("nakcast(timeout=5ms)")}},
		},
	}
	for _, base := range cells {
		base := base
		base.Shards = 1
		t.Run(base.Name(), func(t *testing.T) {
			t.Parallel()
			want, err := ExecuteCrucible(base)
			if err != nil {
				t.Fatal(err)
			}
			for _, shards := range []int{2, 8} {
				cell := base
				cell.Shards = shards
				got, err := ExecuteCrucible(cell)
				if err != nil {
					t.Fatalf("shards=%d: %v", shards, err)
				}
				if got.Hash != want.Hash {
					t.Fatalf("shards=%d hash %.12s != shards=1 hash %.12s", shards, got.Hash, want.Hash)
				}
			}
		})
	}
}

// TestCrucibleShardedInvariants holds sharded execution to the full
// crucible invariant set (including the same-seed replay check inside
// RunCell) across a representative spec x scenario slice.
func TestCrucibleShardedInvariants(t *testing.T) {
	cells := []CrucibleScenario{
		{Spec: mustSpec("bemcast"), Chaos: chaos.CalmControl(), Shards: 4},
		{Spec: mustSpec("nakcast(timeout=5ms)"), Chaos: chaos.SplitBrain(), Shards: 4},
		{Spec: mustSpec("ackcast(window=64,rto=20ms)"), Chaos: chaos.Cascade(), Shards: 4},
		{Spec: mustSpec("ricochet(c=3,r=4)"), Chaos: chaos.LossyRamp(), Shards: 4},
	}
	for _, cell := range cells {
		cell := cell
		t.Run(cell.Name(), func(t *testing.T) {
			t.Parallel()
			res := RunCell(cell)
			if res.Err != nil {
				t.Fatalf("execution: %v", res.Err)
			}
			for _, f := range res.Failures {
				t.Error(f)
			}
		})
	}
}

// TestCrucibleShardedMatchesClassicCalm pins cross-engine protocol
// equivalence in the regime where it is well-defined: with no loss and no
// faults there are no rng draws whose order could shift at tie instants,
// so the delivered sequence streams (though not the CPU-queueing
// timestamps) must be identical between the classic kernel and the
// sharded engine.
func TestCrucibleShardedMatchesClassicCalm(t *testing.T) {
	cell := CrucibleScenario{Spec: mustSpec("bemcast"), Chaos: chaos.CalmControl()}
	classic, err := ExecuteCrucible(cell)
	if err != nil {
		t.Fatal(err)
	}
	cell.Shards = 4
	sharded, err := ExecuteCrucible(cell)
	if err != nil {
		t.Fatal(err)
	}
	for i := range classic.Deliveries {
		c, s := classic.Deliveries[i], sharded.Deliveries[i]
		if len(c) != len(s) {
			t.Fatalf("receiver %d: classic delivered %d, sharded %d", i, len(c), len(s))
		}
		for j := range c {
			if c[j].Seq != s[j].Seq {
				t.Fatalf("receiver %d delivery %d: classic seq %d, sharded seq %d", i, j, c[j].Seq, s[j].Seq)
			}
		}
		if classic.Stats[i].Delivered != sharded.Stats[i].Delivered ||
			classic.Stats[i].Duplicates != sharded.Stats[i].Duplicates {
			t.Fatalf("receiver %d stats diverge: classic %+v, sharded %+v", i, classic.Stats[i], sharded.Stats[i])
		}
		if classic.Views[i].String() != sharded.Views[i].String() {
			t.Fatalf("receiver %d membership views diverge: classic %s, sharded %s",
				i, classic.Views[i], sharded.Views[i])
		}
	}
}

// TestCrucibleLargeGroup runs one full 500-receiver cell end to end on the
// sharded engine and holds it to the complete invariant set, including the
// same-seed replay check. This is the scale regime the sharding work
// exists for; the trimmed sample count keeps the cell inside test-suite
// budget while still publishing through the whole chaos horizon.
func TestCrucibleLargeGroup(t *testing.T) {
	if testing.Short() {
		t.Skip("500-receiver cell is seconds of work; skipped in -short")
	}
	cells := LargeGroupCells(
		[]transport.Spec{mustSpec("bemcast")},
		[]chaos.Scenario{chaos.Cascade()},
		[]int64{1}, 8)
	if len(cells) != 1 {
		t.Fatalf("expected one cell, got %d", len(cells))
	}
	cell := cells[0]
	if cell.Receivers != 500 || cell.Shards != 8 {
		t.Fatalf("cell misconfigured: %+v", cell)
	}
	res := RunCell(cell)
	if res.Err != nil {
		t.Fatalf("cell %s failed to execute: %v", cell.Name(), res.Err)
	}
	for _, f := range res.Failures {
		t.Errorf("cell %s: %s", cell.Name(), f)
	}
}
