// Package conformance is a reusable behavioral test suite that every ANT
// transport protocol must pass: delivery completeness, duplicate
// suppression, payload and timestamp integrity, close semantics, recovery
// obligations by advertised property, and deterministic replay. New
// protocol implementations get the whole battery by adding one line to the
// spec list in the package tests.
package conformance

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"testing"
	"time"

	"adamant/internal/env"
	"adamant/internal/netem"
	"adamant/internal/sim"
	"adamant/internal/transport"
	"adamant/internal/transport/protocols"
	"adamant/internal/wire"
)

// Scenario parameterizes one conformance run.
type Scenario struct {
	Spec      transport.Spec
	Receivers int
	Samples   int
	RateHz    float64
	LossPct   float64
	Seed      int64
}

func (sc *Scenario) fillDefaults() {
	if sc.Receivers == 0 {
		sc.Receivers = 3
	}
	if sc.Samples == 0 {
		sc.Samples = 300
	}
	if sc.RateHz == 0 {
		sc.RateHz = 100
	}
	if sc.Seed == 0 {
		sc.Seed = 1
	}
}

// Outcome captures everything a conformance check needs to assert on.
type Outcome struct {
	// Deliveries[i] is receiver i's delivery log in delivery order.
	Deliveries [][]transport.Delivery
	// Stats[i] is receiver i's protocol counters.
	Stats []transport.ReceiverStats
}

// payloadFor derives the deterministic payload for a sequence number so
// integrity can be checked at the receiver without shared state.
func payloadFor(seq uint64) []byte {
	var b [12]byte
	binary.BigEndian.PutUint64(b[:8], seq*2654435761)
	binary.BigEndian.PutUint32(b[8:], uint32(seq))
	return b[:]
}

// Execute runs the scenario on the deterministic simulator and returns the
// outcome.
func Execute(sc Scenario) (Outcome, error) {
	sc.fillDefaults()
	kernel := sim.New(sc.Seed)
	kernel.SetEventLimit(uint64(sc.Samples)*uint64(sc.Receivers)*500 + 1_000_000)
	e := env.NewSim(kernel)
	network, err := netem.New(e, netem.Config{})
	if err != nil {
		return Outcome{}, err
	}
	reg := protocols.MustRegistry()

	senderNode := network.AddNode(netem.PC3000)
	readerNodes := make([]*netem.Node, sc.Receivers)
	ids := make([]wire.NodeID, sc.Receivers)
	for i := range readerNodes {
		readerNodes[i] = network.AddNode(netem.PC3000)
		readerNodes[i].SetLoss(sc.LossPct)
		ids[i] = readerNodes[i].Local()
	}
	receivers := transport.StaticReceivers(ids...)

	out := Outcome{
		Deliveries: make([][]transport.Delivery, sc.Receivers),
		Stats:      make([]transport.ReceiverStats, sc.Receivers),
	}
	instances := make([]transport.Receiver, sc.Receivers)
	for i := range readerNodes {
		i := i
		r, err := reg.NewReceiver(sc.Spec, transport.Config{
			Env: e, Endpoint: readerNodes[i], Stream: 1,
			SenderID: senderNode.Local(), Receivers: receivers,
			Deliver: func(d transport.Delivery) {
				d.Payload = append([]byte(nil), d.Payload...)
				out.Deliveries[i] = append(out.Deliveries[i], d)
			},
		})
		if err != nil {
			return Outcome{}, fmt.Errorf("receiver %d: %w", i, err)
		}
		instances[i] = r
	}
	sender, err := reg.NewSender(sc.Spec, transport.Config{
		Env: e, Endpoint: senderNode, Stream: 1, Receivers: receivers,
	})
	if err != nil {
		return Outcome{}, fmt.Errorf("sender: %w", err)
	}

	period := time.Duration(float64(time.Second) / sc.RateHz)
	published := 0
	var pubErr error
	var tick func()
	tick = func() {
		if published >= sc.Samples {
			pubErr = sender.Close()
			return
		}
		published++
		if err := sender.Publish(payloadFor(uint64(published))); err != nil {
			pubErr = err
			return
		}
		e.After(period, tick)
	}
	e.Post(tick)
	if err := kernel.Run(); err != nil {
		return Outcome{}, err
	}
	if pubErr != nil {
		return Outcome{}, pubErr
	}
	for i, r := range instances {
		out.Stats[i] = r.Stats()
	}
	return out, nil
}

// Check runs the full battery for one scenario. minReliabilityPct is the
// floor the protocol must hit at the scenario's loss rate (100 for
// recovery protocols in lossless runs, lower for best-effort).
func Check(t *testing.T, sc Scenario, minReliabilityPct float64) {
	t.Helper()
	out, err := Execute(sc)
	if err != nil {
		t.Fatalf("%s: %v", sc.Spec, err)
	}
	sc.fillDefaults()
	for i, ds := range out.Deliveries {
		rel := 100 * float64(len(ds)) / float64(sc.Samples)
		if rel < minReliabilityPct {
			t.Errorf("%s receiver %d: reliability %.2f%%, want >= %.2f%%",
				sc.Spec, i, rel, minReliabilityPct)
		}
		if len(ds) > sc.Samples {
			t.Errorf("%s receiver %d: %d deliveries for %d samples (duplicates leaked)",
				sc.Spec, i, len(ds), sc.Samples)
		}
		seen := make(map[uint64]bool, len(ds))
		for _, d := range ds {
			if seen[d.Seq] {
				t.Errorf("%s receiver %d: seq %d delivered twice", sc.Spec, i, d.Seq)
				break
			}
			seen[d.Seq] = true
			if !bytes.Equal(d.Payload, payloadFor(d.Seq)) {
				t.Errorf("%s receiver %d: seq %d payload corrupted", sc.Spec, i, d.Seq)
				break
			}
			if lat := d.Latency(); lat <= 0 || lat > time.Minute {
				t.Errorf("%s receiver %d: seq %d latency %v implausible (SentAt not preserved?)",
					sc.Spec, i, d.Seq, lat)
				break
			}
		}
	}
}

// CheckDeterministic verifies that the same seed reproduces the identical
// delivery log and a different seed does not (for lossy runs).
func CheckDeterministic(t *testing.T, sc Scenario) {
	t.Helper()
	a, err := Execute(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Execute(sc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Deliveries {
		if len(a.Deliveries[i]) != len(b.Deliveries[i]) {
			t.Fatalf("%s: replay diverged at receiver %d (%d vs %d deliveries)",
				sc.Spec, i, len(a.Deliveries[i]), len(b.Deliveries[i]))
		}
		for j := range a.Deliveries[i] {
			da, db := a.Deliveries[i][j], b.Deliveries[i][j]
			if da.Seq != db.Seq || !da.DeliveredAt.Equal(db.DeliveredAt) {
				t.Fatalf("%s: replay diverged at receiver %d delivery %d", sc.Spec, i, j)
			}
		}
	}
}
