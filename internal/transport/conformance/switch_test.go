package conformance

import (
	"testing"
	"time"

	"adamant/internal/netem/chaos"
	"adamant/internal/transport"
)

// TestCrucibleSwitchMatrix runs every registered protocol through the
// hot-swap matrix: a calm switch, a switch at the peak of a loss burst, a
// switch at the moment a partition heals, and back-to-back flapping. Each
// cell executes twice (same seed, byte-identical outcomes required) and
// every chain-aware invariant must hold.
func TestCrucibleSwitchMatrix(t *testing.T) {
	seeds := []int64{1, 2}
	if testing.Short() {
		seeds = []int64{1}
	}
	cells := SwitchCells(DefaultCrucibleSpecs(), seeds)
	results := RunCrucibleMatrix(cells, 0, nil)
	for _, res := range results {
		if res.Err != nil {
			t.Errorf("%s: %v", res.Cell.Name(), res.Err)
			continue
		}
		for _, f := range res.Failures {
			t.Errorf("%s: %s", res.Cell.Name(), f)
		}
	}
}

// TestCrucibleCalmSwitchComplete pins the headline acceptance property
// explicitly: on a calm network, a mid-run swap loses nothing on ANY base
// transport — even best-effort — and every superseded generation reports a
// measured drain latency.
func TestCrucibleCalmSwitchComplete(t *testing.T) {
	for _, spec := range DefaultCrucibleSpecs() {
		spec := spec
		t.Run(spec.String(), func(t *testing.T) {
			cs := CrucibleScenario{
				Spec:     spec,
				Chaos:    chaos.CalmControl(),
				Switches: []TransportSwitch{{At: 2 * time.Second, Spec: SwitchTargetFor(spec)}},
			}
			out, err := ExecuteCrucible(cs)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range CheckCrucible(cs, out) {
				t.Error(e)
			}
			cs.fillDefaults()
			for i, ds := range out.Deliveries {
				if len(ds) != cs.Samples {
					t.Errorf("receiver %d: %d/%d across a calm switch", i, len(ds), cs.Samples)
				}
				eps := out.Epochs[i]
				if len(eps) != 2 {
					t.Fatalf("receiver %d: %d epochs, want 2", i, len(eps))
				}
				if !eps[0].Done || eps[0].DrainLatency < 0 {
					t.Errorf("receiver %d: old generation %+v not cleanly drained", i, eps[0])
				}
			}
		})
	}
}

// TestSwitchCellNaming pins that switch cells are self-describing: the name
// alone must reproduce the cell (spec chain, times, scenario, seed).
func TestSwitchCellNaming(t *testing.T) {
	cs := CrucibleScenario{
		Spec:  mustSpec("nakcast(timeout=5ms)"),
		Chaos: chaos.SplitBrain(),
		Seed:  3,
		Switches: []TransportSwitch{
			{At: 1600 * time.Millisecond, Spec: mustSpec("ackcast(window=64,rto=20ms)")},
		},
	}
	want := "nakcast(timeout=5ms)->ackcast(rto=20ms,window=64)@1.6s/split-brain/seed=3"
	if got := cs.Name(); got != want {
		t.Errorf("Name() = %q, want %q", got, want)
	}
}

// FuzzRebind throws randomized switch schedules and chaos scenarios at the
// crucible: whatever the timing, the chain-aware invariants must hold.
func FuzzRebind(f *testing.F) {
	f.Add(int64(1), uint16(900), uint16(1800), uint8(0), uint8(1), uint8(0))
	f.Add(int64(2), uint16(400), uint16(450), uint8(3), uint8(2), uint8(3))
	f.Add(int64(3), uint16(1600), uint16(1601), uint8(1), uint8(3), uint8(2))
	f.Fuzz(func(t *testing.T, seed int64, at1, at2 uint16, spec1, spec2, scenario uint8) {
		specs := DefaultCrucibleSpecs()
		lib := []chaos.Scenario{chaos.CalmControl(), chaos.SplitBrain(), chaos.LossyRamp(), chaos.Churn()}
		if seed == 0 {
			seed = 1
		}
		// Switch times land inside the shortened 2s publish window (plus a
		// bit of tail), ordered.
		t1 := time.Duration(at1%2200+50) * time.Millisecond
		t2 := time.Duration(at2%2200+50) * time.Millisecond
		if t2 < t1 {
			t1, t2 = t2, t1
		}
		if t2 == t1 {
			t2 += 50 * time.Millisecond
		}
		cs := CrucibleScenario{
			Spec:    specs[int(spec1)%len(specs)],
			Chaos:   lib[int(scenario)%len(lib)],
			Seed:    seed,
			Samples: 200, // 2s at the default 100Hz keeps the fuzz cell fast
			Switches: []TransportSwitch{
				{At: t1, Spec: specs[int(spec2)%len(specs)]},
				{At: t2, Spec: SwitchTargetFor(specs[int(spec2)%len(specs)])},
			},
		}
		out, err := ExecuteCrucible(cs)
		if err != nil {
			t.Fatalf("%s: %v", cs.Name(), err)
		}
		for _, e := range CheckCrucible(cs, out) {
			t.Errorf("%s: %s", cs.Name(), e)
		}
	})
}

var _ = transport.Spec{} // keep the import when test bodies change
