// crucible.go is the transport crucible: every registered protocol is run
// through the chaos scenario library under one shared set of invariant
// checkers. Where the base conformance battery asks "does the protocol work
// on a calm network", the crucible asks "does it keep its advertised
// guarantees while the network is actively hostile — and does it converge,
// quiesce, and stay bounded afterwards".
//
// A crucible cell is (protocol spec, chaos scenario, seed). Executing a
// cell builds a full stack per receiver — netem node, stream splitter,
// heartbeat membership detector on the control stream, protocol receiver on
// the data stream — scripts the scenario through chaos.Schedule, publishes
// a fixed sample stream, and then drains the simulation to quiescence. The
// invariants checked against the outcome:
//
//   - payload integrity: every delivered payload matches its sequence
//     number's canonical bytes; SentAt survives so latency is plausible.
//   - no duplicate delivery, ever, on any transport.
//   - ordered transports deliver strictly increasing sequence numbers.
//   - reliable transports (NAK or ACK reliability) converge to complete
//     delivery on every receiver that ends the scenario connected; crashed
//     receivers must actually have missed the tail.
//   - best-effort transports stay within sanity floors and are perfect on
//     the calm control scenario.
//   - recovery state stays bounded (ReceiverStats.MaxBuffered) and the
//     kernel fully quiesces after detectors close — a protocol that leaks
//     timers or re-arms retransmissions forever fails the cell via the
//     event limit.
//   - membership: survivors evict crashed nodes; fully healed groups
//     converge back to full views.
//
// Every cell is executed twice with the same seed and the two outcomes must
// hash identically (sha256 over the canonical serialization of delivery
// logs, stats, and membership views) — chaos runs are replayable by seed,
// which is what makes a printed failing cell reproducible from its report
// line alone (see EXPERIMENTS.md).
package conformance

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"strings"
	"time"

	"adamant/internal/env"
	"adamant/internal/experiment"
	"adamant/internal/membership"
	"adamant/internal/netem"
	"adamant/internal/netem/chaos"
	"adamant/internal/sim"
	"adamant/internal/transport"
	"adamant/internal/transport/protocols"
	"adamant/internal/wire"
)

// TransportSwitch is one scripted mid-run hot-swap: at At, the sender
// binding drains its current protocol generation and hands the stream off
// to Spec (see transport.SenderBinding).
type TransportSwitch struct {
	At   time.Duration
	Spec transport.Spec
}

// CrucibleScenario parameterizes one crucible cell.
type CrucibleScenario struct {
	Spec      transport.Spec
	Chaos     chaos.Scenario
	Receivers int
	Samples   int
	RateHz    float64
	Seed      int64
	// Settle is how long the simulation keeps running after the later of
	// the publish window and the chaos horizon, before the final drain.
	Settle time.Duration
	// Switches scripts transport hot-swaps during the run, in time order.
	// The invariant checker derives the cell's effective guarantees from
	// the whole protocol chain: ordering and completeness are only global
	// obligations when every generation advertises them.
	Switches []TransportSwitch
	// Shards > 0 runs the cell on the lane-sharded engine (one lane per
	// node) with that many workers; 0 keeps the classic single-kernel
	// execution. The engine's determinism contract makes the outcome hash
	// independent of the value — sharding buys wall-clock time at large
	// group sizes, nothing else.
	Shards int
	// Heartbeat overrides the membership detector interval (default 50ms;
	// SuspectAfter stays at 3.5 intervals). Large-group cells slow the
	// heartbeat down so membership traffic scales with the group instead
	// of quadratically swamping it.
	Heartbeat time.Duration
}

// epochSpecs returns the effective protocol chain: the initial spec plus
// every switch that actually changes the protocol (same-spec swaps are
// binding no-ops and create no epoch).
func (cs CrucibleScenario) epochSpecs() []transport.Spec {
	specs := []transport.Spec{cs.Spec}
	cur := cs.Spec.String()
	for _, sw := range cs.Switches {
		if s := sw.Spec.String(); s != cur {
			specs = append(specs, sw.Spec)
			cur = s
		}
	}
	return specs
}

func (cs *CrucibleScenario) fillDefaults() {
	if cs.Receivers == 0 {
		cs.Receivers = 4
	}
	if cs.Samples == 0 {
		cs.Samples = 400
	}
	if cs.RateHz == 0 {
		cs.RateHz = 100
	}
	if cs.Seed == 0 {
		cs.Seed = 1
	}
	if cs.Settle == 0 {
		cs.Settle = 3 * time.Second
	}
	if cs.Heartbeat == 0 {
		cs.Heartbeat = 50 * time.Millisecond
	}
}

// Name identifies the cell in reports: spec[->spec@t...]/scenario/seed,
// with group-size and shard suffixes when they deviate from the defaults.
func (cs CrucibleScenario) Name() string {
	var b strings.Builder
	b.WriteString(cs.Spec.String())
	for _, sw := range cs.Switches {
		fmt.Fprintf(&b, "->%s@%s", sw.Spec, sw.At)
	}
	fmt.Fprintf(&b, "/%s/seed=%d", cs.Chaos.Name, cs.Seed)
	if cs.Receivers != 0 {
		fmt.Fprintf(&b, "/g=%d", cs.Receivers)
	}
	if cs.Shards != 0 {
		fmt.Fprintf(&b, "/shards=%d", cs.Shards)
	}
	return b.String()
}

// CrucibleOutcome is everything the invariant checkers assert on.
type CrucibleOutcome struct {
	// Deliveries[i] is receiver i's delivery log in delivery order,
	// complete through final quiescence (tail recovery included).
	Deliveries [][]transport.Delivery
	// Stats[i] is receiver i's protocol counters after quiescence.
	Stats []transport.ReceiverStats
	// Views[i] is receiver i's membership view at the end of the scenario
	// (snapshotted before the detectors close, so LEAVEs from shutdown do
	// not pollute it).
	Views []membership.View
	// IDs[i] is receiver i's node ID; SenderID is the publisher's.
	IDs      []wire.NodeID
	SenderID wire.NodeID
	// Epochs[i] is receiver i's transport-generation chain after the drain:
	// which protocols it saw, each generation's sequence slice, and whether
	// and how fast superseded generations drained.
	Epochs [][]transport.EpochInfo
	// Chain is the sender's applied rebind chain — the ground truth the
	// receivers' Epochs are checked against. It can be shorter than the
	// scenario's switch schedule when a switch raced sender shutdown.
	Chain []wire.RebindRecord
	// Hash is the sha256 of the canonical outcome serialization. Two runs
	// of the same cell must produce the same hash.
	Hash string
}

// crucibleDriver is the engine surface the crucible needs: the classic
// single kernel and the lane-sharded engine both satisfy it, and because
// the sharded engine's output is byte-identical to the serial kernel's,
// the cell outcome is independent of which one runs underneath.
type crucibleDriver interface {
	SetEventLimit(uint64)
	RunFor(time.Duration) error
	Run() error
	Pending() int
}

// onDriver is a test hook observing the engine a cell runs on.
var onDriver func(crucibleDriver)

// crucibleEventLimit sizes the quiescence backstop for a cell: the sample
// term bounds protocol traffic, the quadratic term bounds membership
// gossip (every detector multicasts to the whole group each interval), and
// the constant keeps tiny cells from tripping on setup traffic. Large
// groups are dominated by the quadratic term — at 500 receivers a single
// heartbeat interval is 250k packet events.
func crucibleEventLimit(cs CrucibleScenario) uint64 {
	limit := uint64(cs.Samples)*uint64(cs.Receivers)*1000 + 2_000_000
	wall := time.Duration(float64(cs.Samples)/cs.RateHz*float64(time.Second)) +
		cs.Chaos.Horizon() + cs.Settle + 2*time.Second
	intervals := uint64(wall/cs.Heartbeat) + 1
	limit += intervals * uint64(cs.Receivers) * uint64(cs.Receivers) * 8
	return limit
}

// ExecuteCrucible runs one cell to full quiescence and returns the outcome.
func ExecuteCrucible(cs CrucibleScenario) (CrucibleOutcome, error) {
	cs.fillDefaults()
	if err := cs.Chaos.Validate(); err != nil {
		return CrucibleOutcome{}, err
	}
	var (
		drv     crucibleDriver
		network *netem.Network
		err     error
	)
	if cs.Shards > 0 {
		sh := sim.NewSharded(cs.Seed, netem.DefaultPropDelay)
		sh.SetWorkers(cs.Shards)
		network, err = netem.NewSharded(sh, netem.Config{})
		drv = sh
	} else {
		kernel := sim.New(cs.Seed)
		network, err = netem.New(env.NewSim(kernel), netem.Config{})
		drv = kernel
	}
	if err != nil {
		return CrucibleOutcome{}, err
	}
	drv.SetEventLimit(crucibleEventLimit(cs))
	if onDriver != nil {
		onDriver(drv)
	}
	reg := protocols.MustRegistry()

	senderNode := network.AddNode(netem.PC3000)
	readerNodes := make([]*netem.Node, cs.Receivers)
	ids := make([]wire.NodeID, cs.Receivers)
	for i := range readerNodes {
		readerNodes[i] = network.AddNode(netem.PC3000)
		ids[i] = readerNodes[i].Local()
	}

	out := CrucibleOutcome{
		Deliveries: make([][]transport.Delivery, cs.Receivers),
		Stats:      make([]transport.ReceiverStats, cs.Receivers),
		Views:      make([]membership.View, cs.Receivers),
		IDs:        ids,
		SenderID:   senderNode.Local(),
		Epochs:     make([][]transport.EpochInfo, cs.Receivers),
	}

	// Per-receiver stack: splitter so membership (control stream) and the
	// protocol (stream 1) share the node, heartbeat detector, protocol
	// receiver — wrapped in a hot-swap binding — fed by the detector's live
	// view. Every component schedules on its own node's env: under the
	// classic engine that is the one shared kernel env, under the sharded
	// engine it is the node's lane, which keeps each receiver's stack on the
	// lane that owns its netem node.
	detectors := make([]*membership.Detector, cs.Receivers)
	instances := make([]*transport.ReceiverBinding, cs.Receivers)
	for i := range readerNodes {
		i := i
		split := transport.NewSplitter(readerNodes[i])
		ctlMux := transport.NewMux(split.Route(wire.ControlStream))
		det, err := membership.NewDetector(readerNodes[i].Env(), ctlMux, membership.DetectorOptions{
			Interval:     cs.Heartbeat,
			SuspectAfter: cs.Heartbeat * 7 / 2,
			// Large groups answer JOINs with unicasts: the multicast
			// reply storm at cold start is O(group^3) deliveries, which
			// at 500 receivers is more packets than the entire rest of
			// the cell.
			UnicastJoinReplies: cs.Receivers > 64,
		}, nil)
		if err != nil {
			return CrucibleOutcome{}, fmt.Errorf("detector %d: %w", i, err)
		}
		detectors[i] = det
		r, err := transport.NewReceiverBinding(transport.BindingConfig{
			Config: transport.Config{
				Env:       readerNodes[i].Env(),
				Endpoint:  split.Route(1),
				Stream:    1,
				SenderID:  senderNode.Local(),
				Receivers: det.Receivers,
				Deliver: func(d transport.Delivery) {
					d.Payload = append([]byte(nil), d.Payload...)
					out.Deliveries[i] = append(out.Deliveries[i], d)
				},
			},
			Registry: reg,
			Spec:     cs.Spec,
		})
		if err != nil {
			return CrucibleOutcome{}, fmt.Errorf("receiver %d: %w", i, err)
		}
		instances[i] = r
	}
	senderEnv := senderNode.Env()
	sender, err := transport.NewSenderBinding(transport.BindingConfig{
		Config: transport.Config{
			Env: senderEnv, Endpoint: senderNode, Stream: 1,
			Receivers: transport.StaticReceivers(ids...),
		},
		Registry: reg,
		Spec:     cs.Spec,
	})
	if err != nil {
		return CrucibleOutcome{}, fmt.Errorf("sender: %w", err)
	}

	// Chaos fan-out: the classic engine arms the script on the shared env;
	// the sharded engine arms each event on its target node's lane, which is
	// what keeps knob flips inside the lane that owns the node's state.
	crucibleNodes := chaos.Nodes{Sender: senderNode, Receivers: readerNodes}
	var horizon time.Duration
	if cs.Shards > 0 {
		horizon, err = chaos.ScheduleNodes(crucibleNodes, cs.Chaos, chaos.Hooks{})
	} else {
		horizon, err = chaos.Schedule(network.Env(), crucibleNodes, cs.Chaos, chaos.Hooks{})
	}
	if err != nil {
		return CrucibleOutcome{}, err
	}

	// Script the transport switches. A swap failure fails the cell, except
	// ErrClosed: a switch scheduled past the publish window races sender
	// shutdown, and — like Participant.Rebind skipping closed writers — that
	// race resolves as a no-op, not a fault.
	var swapErr error
	for _, sw := range cs.Switches {
		sw := sw
		if sw.At <= 0 {
			return CrucibleOutcome{}, fmt.Errorf("switch to %s at non-positive time %v", sw.Spec, sw.At)
		}
		senderEnv.After(sw.At, func() {
			if err := sender.Swap(sw.Spec); err != nil && !errors.Is(err, transport.ErrClosed) && swapErr == nil {
				swapErr = fmt.Errorf("swap to %s at %v: %w", sw.Spec, sw.At, err)
			}
		})
		if horizon < sw.At+100*time.Millisecond {
			horizon = sw.At + 100*time.Millisecond
		}
	}

	period := time.Duration(float64(time.Second) / cs.RateHz)
	published := 0
	var pubErr error
	var tick func()
	tick = func() {
		if published >= cs.Samples {
			pubErr = sender.Close()
			return
		}
		published++
		if err := sender.Publish(payloadFor(uint64(published))); err != nil {
			pubErr = err
			return
		}
		senderEnv.After(period, tick)
	}
	senderEnv.Post(tick)

	total := time.Duration(cs.Samples) * period
	if horizon > total {
		total = horizon
	}
	total += cs.Settle
	if err := drv.RunFor(total); err != nil {
		return CrucibleOutcome{}, err
	}
	if pubErr != nil {
		return CrucibleOutcome{}, pubErr
	}
	if swapErr != nil {
		return CrucibleOutcome{}, swapErr
	}

	// End-of-scenario membership, before shutdown LEAVEs rewrite it.
	for i, det := range detectors {
		out.Views[i] = det.View()
	}
	// Quiescence: detectors heartbeat forever by design, so close them,
	// then the rest of the world must drain on its own — leaked timers or
	// unbounded retransmission loops hit the event limit and fail here.
	for i, det := range detectors {
		if err := det.Close(); err != nil {
			return CrucibleOutcome{}, fmt.Errorf("detector %d close: %w", i, err)
		}
	}
	if err := drv.Run(); err != nil {
		return CrucibleOutcome{}, fmt.Errorf("drain after close: %w (protocol leaked timers or retransmits forever)", err)
	}
	if pending := drv.Pending(); pending != 0 {
		return CrucibleOutcome{}, fmt.Errorf("%d events still pending after drain", pending)
	}
	for i, r := range instances {
		out.Stats[i] = r.Stats()
		out.Epochs[i] = r.Epochs()
		if err := r.Close(); err != nil {
			return CrucibleOutcome{}, fmt.Errorf("receiver %d close: %w", i, err)
		}
	}
	out.Chain = sender.Chain()
	out.Hash = out.hash()
	return out, nil
}

// hash serializes the outcome canonically and returns its sha256. Delivery
// logs (sequence, timestamps, recovery flag, payload), final stats, and
// membership views all participate: any behavioral divergence between two
// runs of the same cell changes the hash.
func (o *CrucibleOutcome) hash() string {
	h := sha256.New()
	for i, ds := range o.Deliveries {
		fmt.Fprintf(h, "receiver %d id=%d\n", i, o.IDs[i])
		for _, d := range ds {
			fmt.Fprintf(h, "seq=%d sent=%d del=%d rec=%t pay=%x\n",
				d.Seq, d.SentAt.UnixNano(), d.DeliveredAt.UnixNano(), d.Recovered, d.Payload)
		}
		fmt.Fprintf(h, "stats=%+v\n", o.Stats[i])
		for _, ep := range o.Epochs[i] {
			fmt.Fprintf(h, "epoch=%d spec=%s base=%d cut=%d cutKnown=%t done=%t drain=%d\n",
				ep.Epoch, ep.Spec, ep.Base, ep.Cut, ep.CutKnown, ep.Done, ep.DrainLatency)
		}
		fmt.Fprintf(h, "view v%d members=%v\n", o.Views[i].Version, o.Views[i].Members)
	}
	for _, rec := range o.Chain {
		fmt.Fprintf(h, "chain epoch=%d cut=%d spec=%s\n", rec.Epoch, rec.Cut, rec.Spec)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// bestEffortFloorPct is the delivery floor for non-reliable transports on
// faulty scenarios: even best-effort multicast must get at least this share
// through to every receiver that ends the scenario connected, given that
// every library scenario heals within the publish window.
const bestEffortFloorPct = 50.0

// CheckCrucible runs every invariant against one outcome and returns the
// violations (nil when the cell is green).
func CheckCrucible(cs CrucibleScenario, out CrucibleOutcome) []error {
	cs.fillDefaults()
	var errs []error
	fail := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}
	// With a switch chain, ordering and completeness are only global
	// obligations when EVERY generation advertises them: one best-effort
	// epoch in the chain forfeits end-to-end completeness, one unordered
	// epoch forfeits the global ordering guarantee.
	reg := protocols.MustRegistry()
	// The sender's applied chain is the ground truth (a switch scheduled
	// past sender shutdown is a no-op and never enters it); fall back to
	// the scenario schedule for outcomes that predate chain capture.
	epochSpecs := cs.epochSpecs()
	if len(out.Chain) > 0 {
		epochSpecs = epochSpecs[:0]
		for _, rec := range out.Chain {
			spec, err := transport.ParseSpec(rec.Spec)
			if err != nil {
				return []error{fmt.Errorf("sender chain epoch %d: %w", rec.Epoch, err)}
			}
			epochSpecs = append(epochSpecs, spec)
		}
	}
	reliable, ordered := true, true
	for _, spec := range epochSpecs {
		factory, err := reg.Lookup(spec.Name)
		if err != nil {
			return []error{err}
		}
		if !factory.Props.Has(transport.PropNAKReliability) &&
			!factory.Props.Has(transport.PropACKReliability) {
			reliable = false
		}
		if !factory.Props.Has(transport.PropOrdered) {
			ordered = false
		}
	}
	calm := len(cs.Chaos.Events) == 0
	_, ends := cs.Chaos.EndState(cs.Receivers)

	for i, ds := range out.Deliveries {
		end := ends[i]
		// Integrity, duplicates, ordering, timestamp sanity.
		seen := make(map[uint64]bool, len(ds))
		var lastSeq uint64
		var lastAt time.Time
		for j, d := range ds {
			if d.Seq == 0 || d.Seq > uint64(cs.Samples) {
				fail("receiver %d: delivered seq %d outside published range 1..%d", i, d.Seq, cs.Samples)
				break
			}
			if seen[d.Seq] {
				fail("receiver %d: seq %d delivered twice", i, d.Seq)
				break
			}
			seen[d.Seq] = true
			if !bytes.Equal(d.Payload, payloadFor(d.Seq)) {
				fail("receiver %d: seq %d payload corrupted", i, d.Seq)
				break
			}
			if lat := d.Latency(); lat <= 0 || lat > time.Minute {
				fail("receiver %d: seq %d latency %v implausible", i, d.Seq, lat)
				break
			}
			if d.DeliveredAt.Before(lastAt) {
				fail("receiver %d: delivery %d went back in time (%v after %v)", i, j, d.DeliveredAt, lastAt)
				break
			}
			lastAt = d.DeliveredAt
			if ordered {
				if d.Seq <= lastSeq {
					fail("receiver %d: ordered transport delivered seq %d after %d", i, d.Seq, lastSeq)
					break
				}
				lastSeq = d.Seq
			}
		}
		if len(ds) > cs.Samples {
			fail("receiver %d: %d deliveries for %d samples", i, len(ds), cs.Samples)
		}

		// Epoch-chain invariants: every receiver that ends the scenario
		// connected must have learned the full protocol chain, and every
		// superseded generation must have fully drained — a stuck drain
		// means samples are stranded in a closed protocol's recovery state.
		if len(out.Epochs) > i && !end.Down() {
			eps := out.Epochs[i]
			if len(eps) != len(epochSpecs) {
				fail("receiver %d: saw %d transport generations, chain has %d", i, len(eps), len(epochSpecs))
			}
			for j, ep := range eps {
				if j < len(epochSpecs) && ep.Spec.String() != epochSpecs[j].String() {
					fail("receiver %d: generation %d is %s, chain says %s", i, j, ep.Spec, epochSpecs[j])
				}
				if j < len(eps)-1 && !ep.Done {
					fail("receiver %d: superseded generation %d (%s) never drained (covered slice (%d,%d])",
						i, ep.Epoch, ep.Spec, ep.Base, ep.Cut)
				}
			}
		}

		// Stats consistency: counters must agree with the log after the
		// drain, and recovery state must have stayed bounded.
		st := out.Stats[i]
		if st.Delivered != uint64(len(ds)) {
			fail("receiver %d: stats.Delivered=%d but log has %d", i, st.Delivered, len(ds))
		}
		if st.MaxBuffered > uint64(cs.Samples)+64 {
			fail("receiver %d: recovery state peaked at %d buffered entries for a %d-sample stream (unbounded holdback)",
				i, st.MaxBuffered, cs.Samples)
		}

		// Completeness by advertised property and end state.
		switch {
		case end.Crashed:
			// A crashed receiver must actually have missed the tail.
			if len(ds) >= cs.Samples {
				fail("receiver %d: crashed mid-run yet delivered all %d samples (crash ineffective)", i, cs.Samples)
			}
		case end.Down():
			// Partitioned-but-not-crashed at scenario end: no obligation.
		case reliable:
			if len(ds) != cs.Samples {
				fail("receiver %d: reliable transport converged to %d/%d after heal", i, len(ds), cs.Samples)
			}
		case calm:
			if len(ds) != cs.Samples {
				fail("receiver %d: %d/%d on the calm control scenario", i, len(ds), cs.Samples)
			}
		default:
			floor := bestEffortFloorPct
			if cs.Samples < 400 {
				// The calibrated floor assumes the default-length publish
				// window, which outlasts every library scenario's fault
				// interval. Shortened (fuzz) runs can spend most of the
				// window inside a fault, so only liveness is required.
				floor = 1
			}
			if pct := 100 * float64(len(ds)) / float64(cs.Samples); pct < floor {
				fail("receiver %d: best-effort delivery %.1f%% below the %.0f%% floor", i, pct, floor)
			}
		}
	}

	// Membership: survivors must evict receivers that ended crashed, and a
	// fully healed group must converge back to complete views. (The sender
	// runs no detector, so views only ever contain receivers.)
	anyDown := false
	for _, end := range ends {
		if end.Down() {
			anyDown = true
		}
	}
	for i := range out.Views {
		if ends[i].Down() {
			continue // a dead node's own view owes nothing
		}
		for j, end := range ends {
			if end.Crashed {
				if out.Views[i].Contains(out.IDs[j]) {
					fail("receiver %d: still lists crashed receiver %d in its membership view", i, j)
				}
			} else if !anyDown || !end.Down() {
				if !out.Views[i].Contains(out.IDs[j]) {
					fail("receiver %d: healed receiver %d missing from its membership view", i, j)
				}
			}
		}
	}
	return errs
}

// CrucibleResult is one cell's verdict from RunCrucibleMatrix.
type CrucibleResult struct {
	Cell CrucibleScenario
	// Hash is the outcome hash of the first execution.
	Hash string
	// Failures lists invariant violations and replay divergence; empty
	// means the cell is green. Err is set when the cell failed to execute
	// at all (which is itself a crucible failure).
	Failures []string
	Err      error
}

// OK reports whether the cell passed completely.
func (r CrucibleResult) OK() bool { return r.Err == nil && len(r.Failures) == 0 }

// RunCell executes one cell twice with the same seed, demands byte-identical
// outcomes, and checks every invariant.
func RunCell(cs CrucibleScenario) CrucibleResult {
	res := CrucibleResult{Cell: cs}
	first, err := ExecuteCrucible(cs)
	if err != nil {
		res.Err = err
		return res
	}
	res.Hash = first.Hash
	second, err := ExecuteCrucible(cs)
	if err != nil {
		res.Err = fmt.Errorf("rerun: %w", err)
		return res
	}
	if first.Hash != second.Hash {
		res.Failures = append(res.Failures,
			fmt.Sprintf("same-seed rerun diverged: %.12s != %.12s", first.Hash, second.Hash))
	}
	for _, e := range CheckCrucible(cs, first) {
		res.Failures = append(res.Failures, e.Error())
	}
	return res
}

// DefaultCrucibleSpecs returns the canonical protocol matrix: one spec per
// registered protocol, tuned the way the chaos scenarios expect (fast NAK
// timers, a small ACK window so flow control actually engages).
func DefaultCrucibleSpecs() []transport.Spec {
	return []transport.Spec{
		mustSpec("bemcast"),
		mustSpec("nakcast(timeout=5ms)"),
		mustSpec("ackcast(window=64,rto=20ms)"),
		mustSpec("ricochet(c=3,r=4)"),
		mustSpec("fountcast(k=8,oh=25)"),
	}
}

func mustSpec(s string) transport.Spec {
	spec, err := transport.ParseSpec(s)
	if err != nil {
		panic(err)
	}
	return spec
}

// SwitchTargetFor returns the canonical hot-swap destination for a base
// protocol: each hands off to a different protocol family, so the switch
// matrix exercises every kind of epoch boundary (ordered->ordered,
// best-effort->reliable, reliable->FEC).
func SwitchTargetFor(spec transport.Spec) transport.Spec {
	switch spec.Name {
	case "bemcast":
		return mustSpec("nakcast(timeout=5ms)")
	case "nakcast":
		return mustSpec("ackcast(window=64,rto=20ms)")
	case "ackcast":
		return mustSpec("ricochet(c=3,r=4)")
	case "ricochet":
		// Reactive-FEC to proactive-FEC handoff: both generations repair
		// without sender feedback, but across different wire types.
		return mustSpec("fountcast(k=8,oh=25)")
	default: // fountcast and anything unregistered here
		return mustSpec("nakcast(timeout=5ms)")
	}
}

// SwitchCells builds the mid-run hot-swap matrix for the given specs: a
// calm switch, a switch at the peak of a loss ramp, a switch at the moment
// a partition heals, and back-to-back flapping. Every cell runs the full
// crucible invariant set with chain-aware guarantees.
func SwitchCells(specs []transport.Spec, seeds []int64) []CrucibleScenario {
	ms := time.Millisecond
	var cells []CrucibleScenario
	for _, spec := range specs {
		target := SwitchTargetFor(spec)
		shapes := []struct {
			chaos    chaos.Scenario
			switches []TransportSwitch
		}{
			// Calm switch: no faults, so every chain must deliver 100%.
			{chaos.CalmControl(), []TransportSwitch{{At: 2000 * ms, Spec: target}}},
			// Switch at the 30% peak of the loss ramp: the old generation
			// drains through heavy loss while the new one takes over.
			{chaos.LossyRamp(), []TransportSwitch{{At: 1900 * ms, Spec: target}}},
			// Switch at the instant the split-brain partition heals: half
			// the receivers learn about the swap and the missed slice at
			// the same time.
			{chaos.SplitBrain(), []TransportSwitch{{At: 1600 * ms, Spec: target}}},
			// Flapping: three swaps 300ms apart, ending on the target.
			{chaos.CalmControl(), []TransportSwitch{
				{At: 1200 * ms, Spec: target},
				{At: 1500 * ms, Spec: spec},
				{At: 1800 * ms, Spec: target},
			}},
		}
		for _, sh := range shapes {
			for _, seed := range seeds {
				cells = append(cells, CrucibleScenario{
					Spec: spec, Chaos: sh.chaos, Seed: seed, Switches: sh.switches,
				})
			}
		}
	}
	return cells
}

// CrucibleCells builds the full spec x scenario x seed matrix.
func CrucibleCells(specs []transport.Spec, scenarios []chaos.Scenario, seeds []int64) []CrucibleScenario {
	cells := make([]CrucibleScenario, 0, len(specs)*len(scenarios)*len(seeds))
	for _, spec := range specs {
		for _, sc := range scenarios {
			for _, seed := range seeds {
				cells = append(cells, CrucibleScenario{Spec: spec, Chaos: sc, Seed: seed})
			}
		}
	}
	return cells
}

// LargeGroupCells builds the 500-receiver crucible matrix for the sharded
// engine: every spec x scenario x seed cell at group size 500 with a slow
// 250ms heartbeat (membership traffic is O(group^2) per interval; the calm
// 50ms default would drown the data stream at this scale) and a trimmed
// sample count so the whole matrix finishes in CI minutes. shards picks the
// worker width; by the engine's determinism contract it changes wall-clock
// time only, never the outcome hash.
func LargeGroupCells(specs []transport.Spec, scenarios []chaos.Scenario, seeds []int64, shards int) []CrucibleScenario {
	cells := make([]CrucibleScenario, 0, len(specs)*len(scenarios)*len(seeds))
	for _, spec := range specs {
		for _, sc := range scenarios {
			for _, seed := range seeds {
				cells = append(cells, CrucibleScenario{
					Spec:      spec,
					Chaos:     sc,
					Seed:      seed,
					Receivers: 500,
					// 200 samples at the default 100 Hz is a 2 s publish
					// window — past the last library-scenario fault (the
					// cascade's 1.6 s crash), so crash/heal invariants
					// stay meaningful, while keeping a cell's event count
					// in CI budget.
					Samples:   200,
					Heartbeat: 250 * time.Millisecond,
					Shards:    shards,
				})
			}
		}
	}
	return cells
}

// RunCrucibleMatrix fans the cells out over a worker pool (jobs <= 0 means
// GOMAXPROCS) and returns every cell's result in input order. Failing cells
// do not abort the matrix: the caller gets the complete picture.
func RunCrucibleMatrix(cells []CrucibleScenario, jobs int, progress func(done, total int)) []CrucibleResult {
	results := make([]CrucibleResult, len(cells))
	runner := &experiment.Runner{Jobs: jobs, Progress: progress}
	// RunCell never returns an error through ForEach: execution failures
	// are recorded in the cell's result instead.
	_ = runner.ForEach(len(cells), func(i int) error {
		results[i] = RunCell(cells[i])
		return nil
	})
	return results
}
